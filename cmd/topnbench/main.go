// Command topnbench regenerates every table and figure of the
// reproduction (DESIGN.md §4). Each experiment id maps to one runner in
// internal/bench; "all" runs the whole suite in order.
//
// Usage:
//
//	topnbench [-exp all|F1|E1..E12|PAR|DISK|LIVE|LOAD|CHAOS|HOT|REPL|TUNE] [-scale small|full] [-seed N]
//	          [-shards K] [-workers W]
//	          [-persist DIR] [-from DIR] [-pool-pages K]
//	          [-live-seal-docs N] [-live-fanin K] [-live-churn X]
//	          [-load-rate R] [-load-requests N]
//	          [-json out.json] [-compare BASELINE.json] [-wall-tol X]
//
// The PAR experiment exercises the sharded concurrent search layer
// (internal/parallel): -shards picks the document-range shard count and
// -workers the worker-pool bound; the table reports sequential vs.
// parallel wall-clock and the speedup.
//
// The DISK experiment exercises the pluggable storage backend: it
// persists the workload's index as an on-disk segment (or reuses one
// written earlier with -persist via -from DIR), reopens it through a
// buffer pool of -pool-pages frames — deliberately smaller than the
// segment — and verifies the paged engine answers byte-identically to
// the in-memory one while reporting hit rate, page faults, and block
// faults.
//
// The LIVE experiment exercises the live-index layer (internal/live):
// an interleaved insert/delete/update/search workload through
// live.Writer — incremental sealing, tombstoned deletes and updates,
// deterministic tiered merging with dead-document purging, hot-swap
// snapshots — verified byte-identical to a one-shot build over the
// *surviving* documents at the end. -live-seal-docs and -live-fanin
// override the seal threshold and merge fan-in (0 = scale defaults);
// -live-churn sets the per-batch tombstone fraction (half deletes,
// half updates re-ingesting the same content under fresh ids; 0
// disables churn, default 0.2).
//
// The LOAD experiment exercises the serving layer (internal/server,
// the engine behind cmd/topnserve): the workload is ingested into a
// live index served over a real localhost HTTP listener, then an
// open-loop client offers -load-requests requests at -load-rate
// arrivals/second followed by an overload burst that exercises
// admission shedding (429 + Retry-After). Latency quantiles and
// served/shed splits are reported (machine-dependent, gate-exempt via
// the load_ metric prefix); the gated facts are that every request is
// answered and that an unloaded sweep gets answers byte-identical to
// the in-process live.Searcher.
//
// The HOT experiment exercises the cache-amortized query path: a
// repeat-heavy Zipf stream over a churning live index served with and
// without the result/hot-block caches, holding every cached answer
// byte-identical to the uncached one through warm replays, block-cache
// warm passes, and a generation swap that invalidates the result cache
// wholesale; it also enforces the zero-allocation steady-state budget
// of the MaxScore and Progressive hot loops via testing.AllocsPerRun.
//
// The TUNE experiment closes the loop on the paper's cost model: three
// workload shapes (read-heavy, churn-heavy, bursty) each run under the
// adaptive self-tuning policy (internal/tune, calibrated from live
// counters via a deterministic span model) and three static settings.
// Every policy must answer the final probe byte-identically; the gated
// <shape>_adaptive_best metrics assert the adaptive policy's total cost
// (decodes + re-encodes + 1000× pages touched) never exceeds the best
// static's, and decision_digest hashes the tuner's decision log so two
// same-seed runs must match exactly.
//
// -persist DIR builds the workload index at the chosen scale/seed,
// writes it under DIR, and exits; a later `-exp DISK -from DIR` serves
// queries from that segment. -json writes the machine-readable report
// (per-experiment wall-clock, rows, and headline metrics) alongside the
// rendered tables; CI uploads it as an artifact, stamped with commit
// SHA, timestamp, and scale so each artifact is a self-describing
// trajectory point.
//
// -compare BASELINE.json is the regression gate: after the run, the
// fresh report is diffed against the committed baseline — experiment
// set, table shapes, exactness flags, and deterministic counters
// (decodes, skips, faults, hit rates) must match exactly, wall-clock
// within a factor of -wall-tol — and any drift exits nonzero. Refresh
// the baseline deliberately with
// `go run ./cmd/topnbench -exp all -scale small -shards 4 -workers 2 -json BENCH_baseline.json`.
//
// With -exp all, an experiment whose prerequisites are missing (e.g.
// DISK with a -from directory that was never persisted) is skipped with
// a note instead of aborting the suite; requesting it directly still
// fails loudly.
//
// Results print as aligned text tables with the paper's claim noted under
// each; EXPERIMENTS.md records a full-scale run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

var order = []string{"F1", "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "PAR", "DISK", "LIVE", "LOAD", "CHAOS", "HOT", "REPL", "TUNE"}

var runners = map[string]func(bench.Scale, uint64) (*bench.Table, error){
	"F1":  bench.RunF1,
	"E1":  bench.RunE1E2,
	"E2":  bench.RunE1E2, // E1 and E2 share a table (speed and quality columns)
	"E3":  bench.RunE3,
	"E4":  bench.RunE4,
	"E5":  bench.RunE5,
	"E6":  bench.RunE6,
	"E7":  bench.RunE7,
	"E8":  bench.RunE8,
	"E9":  bench.RunE9,
	"E10": bench.RunE10,
	"E11": bench.RunE11,
	"E12": bench.RunE12,
}

// persistIndex builds the workload index and writes it as a segment
// under dir, reporting the segment geometry.
func persistIndex(scale bench.Scale, seed uint64, dir string) error {
	w, err := bench.NewWorkload(scale, seed)
	if err != nil {
		return err
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return err
	}
	start := time.Now()
	idx, err := index.Build(w.Col, pool)
	if err != nil {
		return err
	}
	if err := idx.Persist(dir); err != nil {
		return err
	}

	// Reopen and spot-check one query end to end before telling the
	// user the segment is good; the same FileDisk reports the geometry.
	segPool, fd, err := index.OpenPool(dir, 8)
	if err != nil {
		return err
	}
	defer fd.Close()
	opened, err := index.Open(dir, segPool)
	if err != nil {
		return fmt.Errorf("verification reopen failed: %w", err)
	}
	ms, err := core.NewMaxScore(opened, rank.NewBM25())
	if err != nil {
		return err
	}
	if len(w.Queries) > 0 {
		if _, err := ms.Search(w.Queries[0], 10); err != nil {
			return fmt.Errorf("verification query failed: %w", err)
		}
	}
	fmt.Printf("persisted %s: %d docs, %d terms, %d postings (%d bytes compressed) in %d pages, %s\n",
		index.SegmentPath(dir), idx.Stats.NumDocs, idx.Lex.Size(), idx.TotalPostings(),
		idx.SizeBytes(), fd.NumPages(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve it with: topnbench -exp DISK -scale %s -seed %d -from %s -pool-pages K\n",
		scale, seed, dir)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id (F1, E1..E12, PAR, DISK, LIVE, LOAD, CHAOS, HOT, REPL, TUNE) or 'all'")
	scaleFlag := flag.String("scale", "small", "workload scale: small or full")
	seed := flag.Uint64("seed", 42, "deterministic workload seed")
	shards := flag.Int("shards", 4, "PAR: number of document-range shards")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "PAR: worker-pool size")
	persistDir := flag.String("persist", "", "persist the workload index as a segment under DIR and exit")
	fromDir := flag.String("from", "", "DISK: serve the segment persisted under DIR (same scale/seed) instead of rebuilding")
	poolPages := flag.Int("pool-pages", 0, "DISK: buffer pool capacity in pages (0 = 1/8 of the segment)")
	liveSealDocs := flag.Int("live-seal-docs", 0, "LIVE: seal the write buffer every N documents (0 = scale default)")
	liveFanIn := flag.Int("live-fanin", 0, "LIVE: tiered merge fan-in (0 = default 4)")
	liveChurn := flag.Float64("live-churn", -1, "LIVE: fraction of each batch tombstoned (half deletes, half updates); 0 disables churn, negative = default 0.2")
	loadRate := flag.Float64("load-rate", 0, "LOAD: open-loop arrival rate in requests/second (0 = default 500)")
	loadRequests := flag.Int("load-requests", 0, "LOAD: open-loop request count (0 = scale default)")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	comparePath := flag.String("compare", "", "regression gate: diff this run against the baseline report FILE and exit nonzero on drift")
	wallTol := flag.Float64("wall-tol", 25, "compare: wall-clock regression factor tolerated before the gate trips (<=0 skips timing checks)")
	flag.Parse()

	runners["PAR"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunParallel(s, seed, *shards, *workers)
	}
	runners["DISK"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunDisk(s, seed, *poolPages, *fromDir)
	}
	runners["LIVE"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunLive(s, seed, *liveSealDocs, *liveFanIn, *liveChurn)
	}
	runners["LOAD"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunLoad(s, seed, *loadRate, *loadRequests)
	}
	runners["CHAOS"] = bench.RunChaos
	runners["HOT"] = bench.RunHot
	runners["REPL"] = bench.RunRepl
	runners["TUNE"] = bench.RunTune

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.ScaleSmall
	case "full":
		scale = bench.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "topnbench: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *persistDir != "" {
		if err := persistIndex(scale, *seed, *persistDir); err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: persist: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runAll := *exp == "all"
	ids := order
	if !runAll {
		id := strings.ToUpper(*exp)
		if _, ok := runners[id]; !ok {
			fmt.Fprintf(os.Stderr, "topnbench: unknown experiment %q (want one of %s)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		ids = []string{id}
	}

	report := &bench.Report{Scale: scale.String(), Seed: *seed}
	report.Stamp()
	fmt.Printf("topnbench: scale=%s seed=%d commit=%s\n", scale, *seed, report.GitSHA)
	skipped := map[string]bool{}
	for _, id := range ids {
		start := time.Now()
		tbl, err := runners[id](scale, *seed)
		if err != nil {
			if runAll && errors.Is(err, bench.ErrSkipped) {
				// A missing prerequisite must not take the whole suite
				// down; the note tells the user how to enable it.
				fmt.Printf("\n== %s: skipped ==\n  note: %v\n", id, err)
				skipped[id] = true
				continue
			}
			fmt.Fprintf(os.Stderr, "topnbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		tbl.Render(os.Stdout)
		fmt.Printf("  (%s in %s)\n", id, elapsed.Round(time.Millisecond))
		report.Add(tbl, elapsed)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "topnbench: write report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote machine-readable report to %s\n", *jsonPath)
	}

	if *comparePath != "" {
		baseline, err := readReport(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: compare: %v\n", err)
			os.Exit(1)
		}
		if !runAll || len(skipped) > 0 {
			// The gate covers only what actually ran: a single -exp run
			// gates itself, and an experiment skipped for a missing
			// prerequisite is no drift either (its counters were never
			// produced, not regressed).
			ran := make(map[string]bool, len(report.Experiments))
			for _, e := range report.Experiments {
				ran[e.ID] = true
			}
			kept := baseline.Experiments[:0]
			for _, e := range baseline.Experiments {
				if ran[e.ID] {
					kept = append(kept, e)
				}
			}
			baseline.Experiments = kept
			fmt.Printf("compare: gating the %d experiment(s) that ran against their baseline entries\n", len(kept))
		}
		diffs := bench.CompareReports(baseline, report, bench.CompareOptions{WallTolerance: *wallTol})
		if len(diffs) > 0 {
			fmt.Fprintf(os.Stderr, "topnbench: regression gate FAILED against %s (%d finding(s)):\n", *comparePath, len(diffs))
			for _, d := range diffs {
				fmt.Fprintf(os.Stderr, "  - %s\n", d)
			}
			fmt.Fprintf(os.Stderr, "if the change is intentional, refresh the baseline:\n"+
				"  go run ./cmd/topnbench -exp all -scale %s -seed %d -shards 4 -workers 2 -json %s\n",
				scale, *seed, *comparePath)
			os.Exit(1)
		}
		fmt.Printf("regression gate passed against %s (deterministic counters exact, wall within %.0fx)\n",
			*comparePath, *wallTol)
	}
}

// readReport loads a machine-readable report written with -json.
func readReport(path string) (*bench.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s is not a topnbench report: %w", path, err)
	}
	return &r, nil
}
