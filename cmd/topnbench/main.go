// Command topnbench regenerates every table and figure of the
// reproduction (DESIGN.md §4). Each experiment id maps to one runner in
// internal/bench; "all" runs the whole suite in order.
//
// Usage:
//
//	topnbench [-exp all|F1|E1..E12|PAR] [-scale small|full] [-seed N]
//	          [-shards K] [-workers W]
//
// The PAR experiment exercises the sharded concurrent search layer
// (internal/parallel): -shards picks the document-range shard count and
// -workers the worker-pool bound; the table reports sequential vs.
// parallel wall-clock and the speedup.
//
// Results print as aligned text tables with the paper's claim noted under
// each; EXPERIMENTS.md records a full-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

var order = []string{"F1", "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "PAR"}

var runners = map[string]func(bench.Scale, uint64) (*bench.Table, error){
	"F1":  bench.RunF1,
	"E1":  bench.RunE1E2,
	"E2":  bench.RunE1E2, // E1 and E2 share a table (speed and quality columns)
	"E3":  bench.RunE3,
	"E4":  bench.RunE4,
	"E5":  bench.RunE5,
	"E6":  bench.RunE6,
	"E7":  bench.RunE7,
	"E8":  bench.RunE8,
	"E9":  bench.RunE9,
	"E10": bench.RunE10,
	"E11": bench.RunE11,
	"E12": bench.RunE12,
}

func main() {
	exp := flag.String("exp", "all", "experiment id (F1, E1..E12, PAR) or 'all'")
	scaleFlag := flag.String("scale", "small", "workload scale: small or full")
	seed := flag.Uint64("seed", 42, "deterministic workload seed")
	shards := flag.Int("shards", 4, "PAR: number of document-range shards")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "PAR: worker-pool size")
	flag.Parse()

	runners["PAR"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunParallel(s, seed, *shards, *workers)
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.ScaleSmall
	case "full":
		scale = bench.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "topnbench: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	ids := order
	if *exp != "all" {
		id := strings.ToUpper(*exp)
		if _, ok := runners[id]; !ok {
			fmt.Fprintf(os.Stderr, "topnbench: unknown experiment %q (want one of %s)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		ids = []string{id}
	}

	fmt.Printf("topnbench: scale=%s seed=%d\n", scale, *seed)
	for _, id := range ids {
		start := time.Now()
		tbl, err := runners[id](scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
		fmt.Printf("  (%s in %s)\n", id, time.Since(start).Round(time.Millisecond))
	}
}
