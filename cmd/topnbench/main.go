// Command topnbench regenerates every table and figure of the
// reproduction (DESIGN.md §4). Each experiment id maps to one runner in
// internal/bench; "all" runs the whole suite in order.
//
// Usage:
//
//	topnbench [-exp all|F1|E1..E12|PAR|DISK] [-scale small|full] [-seed N]
//	          [-shards K] [-workers W]
//	          [-persist DIR] [-from DIR] [-pool-pages K]
//	          [-json out.json]
//
// The PAR experiment exercises the sharded concurrent search layer
// (internal/parallel): -shards picks the document-range shard count and
// -workers the worker-pool bound; the table reports sequential vs.
// parallel wall-clock and the speedup.
//
// The DISK experiment exercises the pluggable storage backend: it
// persists the workload's index as an on-disk segment (or reuses one
// written earlier with -persist via -from DIR), reopens it through a
// buffer pool of -pool-pages frames — deliberately smaller than the
// segment — and verifies the paged engine answers byte-identically to
// the in-memory one while reporting hit rate, page faults, and block
// faults.
//
// -persist DIR builds the workload index at the chosen scale/seed,
// writes it under DIR, and exits; a later `-exp DISK -from DIR` serves
// queries from that segment. -json writes the machine-readable report
// (per-experiment wall-clock, rows, and headline metrics) alongside the
// rendered tables; CI uploads it as an artifact.
//
// Results print as aligned text tables with the paper's claim noted under
// each; EXPERIMENTS.md records a full-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

var order = []string{"F1", "E1", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "PAR", "DISK"}

var runners = map[string]func(bench.Scale, uint64) (*bench.Table, error){
	"F1":  bench.RunF1,
	"E1":  bench.RunE1E2,
	"E2":  bench.RunE1E2, // E1 and E2 share a table (speed and quality columns)
	"E3":  bench.RunE3,
	"E4":  bench.RunE4,
	"E5":  bench.RunE5,
	"E6":  bench.RunE6,
	"E7":  bench.RunE7,
	"E8":  bench.RunE8,
	"E9":  bench.RunE9,
	"E10": bench.RunE10,
	"E11": bench.RunE11,
	"E12": bench.RunE12,
}

// persistIndex builds the workload index and writes it as a segment
// under dir, reporting the segment geometry.
func persistIndex(scale bench.Scale, seed uint64, dir string) error {
	w, err := bench.NewWorkload(scale, seed)
	if err != nil {
		return err
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return err
	}
	start := time.Now()
	idx, err := index.Build(w.Col, pool)
	if err != nil {
		return err
	}
	if err := idx.Persist(dir); err != nil {
		return err
	}

	// Reopen and spot-check one query end to end before telling the
	// user the segment is good; the same FileDisk reports the geometry.
	segPool, fd, err := index.OpenPool(dir, 8)
	if err != nil {
		return err
	}
	defer fd.Close()
	opened, err := index.Open(dir, segPool)
	if err != nil {
		return fmt.Errorf("verification reopen failed: %w", err)
	}
	ms, err := core.NewMaxScore(opened, rank.NewBM25())
	if err != nil {
		return err
	}
	if len(w.Queries) > 0 {
		if _, err := ms.Search(w.Queries[0], 10); err != nil {
			return fmt.Errorf("verification query failed: %w", err)
		}
	}
	fmt.Printf("persisted %s: %d docs, %d terms, %d postings (%d bytes compressed) in %d pages, %s\n",
		index.SegmentPath(dir), idx.Stats.NumDocs, idx.Lex.Size(), idx.TotalPostings(),
		idx.SizeBytes(), fd.NumPages(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve it with: topnbench -exp DISK -scale %s -seed %d -from %s -pool-pages K\n",
		scale, seed, dir)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id (F1, E1..E12, PAR, DISK) or 'all'")
	scaleFlag := flag.String("scale", "small", "workload scale: small or full")
	seed := flag.Uint64("seed", 42, "deterministic workload seed")
	shards := flag.Int("shards", 4, "PAR: number of document-range shards")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "PAR: worker-pool size")
	persistDir := flag.String("persist", "", "persist the workload index as a segment under DIR and exit")
	fromDir := flag.String("from", "", "DISK: serve the segment persisted under DIR (same scale/seed) instead of rebuilding")
	poolPages := flag.Int("pool-pages", 0, "DISK: buffer pool capacity in pages (0 = 1/8 of the segment)")
	jsonPath := flag.String("json", "", "write the machine-readable report to this file")
	flag.Parse()

	runners["PAR"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunParallel(s, seed, *shards, *workers)
	}
	runners["DISK"] = func(s bench.Scale, seed uint64) (*bench.Table, error) {
		return bench.RunDisk(s, seed, *poolPages, *fromDir)
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.ScaleSmall
	case "full":
		scale = bench.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "topnbench: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}

	if *persistDir != "" {
		if err := persistIndex(scale, *seed, *persistDir); err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: persist: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ids := order
	if *exp != "all" {
		id := strings.ToUpper(*exp)
		if _, ok := runners[id]; !ok {
			fmt.Fprintf(os.Stderr, "topnbench: unknown experiment %q (want one of %s)\n",
				*exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		ids = []string{id}
	}

	report := &bench.Report{Scale: scale.String(), Seed: *seed}
	fmt.Printf("topnbench: scale=%s seed=%d\n", scale, *seed)
	for _, id := range ids {
		start := time.Now()
		tbl, err := runners[id](scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		tbl.Render(os.Stdout)
		fmt.Printf("  (%s in %s)\n", id, elapsed.Round(time.Millisecond))
		report.Add(tbl, elapsed)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "topnbench: write report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "topnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote machine-readable report to %s\n", *jsonPath)
	}
}
