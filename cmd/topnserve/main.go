// Command topnserve serves a live top-N index over HTTP: the network
// front end of the reproduction's live layer (internal/server over
// internal/live).
//
// Usage:
//
//	topnserve [-addr :8080] [-dir DIR]
//	          [-seed-docs N] [-seed-vocab V] [-seed-mean-len L] [-seed N]
//	          [-follow URL] [-sync-every D]
//	          [-replicas host1:port,host2:port,...]
//	          [-max-inflight K] [-queue-depth Q]
//	          [-rate R] [-burst B]
//	          [-timeout D] [-max-timeout D] [-max-n N]
//	          [-drain-timeout D] [-reverify D]
//	          [-result-cache-bytes B] [-block-cache-bytes B]
//	          [-tune] [-pprof-addr ADDR]
//
// -dir is the live index directory; a temporary directory is used (and
// removed on exit) when omitted. -seed-docs > 0 ingests a synthetic
// Zipf collection at startup so the server answers real queries out of
// the box; with 0 the index starts empty.
//
// Endpoints:
//
//	POST /search          {"terms": ["t12", "t34"], "n": 10, "timeout_ms": 500}
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         serving + index + replication + tuner counters, JSON
//	GET  /tune            self-tuner state: calibrated coefficients, knobs, decision log
//	GET  /repl/manifest   replication wire manifest (any node with an index)
//	GET  /repl/segment/…  immutable segment files, Range-resumable
//
// Replication roles:
//
//   - Default: the node is a leader. Its committed segments are served
//     under /repl/ for followers to pull.
//   - -follow URL: the node is a follower. Its index opens read-only,
//     a background loop polls the leader's manifest ordinal every
//     -sync-every and pulls+installs what changed; searches serve the
//     locally installed generation. Seeding flags are rejected. The
//     /repl/ subtree is still served, so followers can be chained.
//   - -replicas a,b,c: the node is a coordinator. It owns no index;
//     each search scatters to every replica's /search and gathers
//     through a certificate-preserving merge — a lagging or
//     unreachable replica yields "degraded": true with the replica
//     named in the certificate, never a silently stale exact answer.
//
// Overload is shed, not queued: beyond -max-inflight executing and
// -queue-depth waiting requests, /search answers 429 with Retry-After.
// -rate/-burst add a per-client token bucket. SIGINT/SIGTERM trigger a
// graceful drain: in-flight queries finish (bounded by -drain-timeout),
// then the index closes.
//
// Damaged segments degrade, they do not kill: a segment whose pages
// fail past the retry budget is quarantined, searches answer over the
// survivors with "degraded": true and the skipped segments named, and
// a background loop re-verifies quarantined segments every -reverify,
// returning them to service once their media reads clean. /healthz
// reports "degraded" in a 200 body (the replica still serves correct,
// labeled answers); /metrics carries the full fault account.
//
// The query path is cache-amortized: -result-cache-bytes bounds a
// whole-answer cache (invalidated wholesale at every commit, degraded
// answers never cached, concurrent identical queries singleflighted)
// and -block-cache-bytes a TinyLFU hot-block cache shared by every
// segment. Either set to 0 disables that layer; /metrics carries the
// hit/miss/byte account of both.
//
// -tune closes the loop of the paper's cost model on the live server:
// a self-tuner (internal/tune) calibrates the page-weight and
// terms-per-query coefficients from the server's own counters and
// adapts the seal threshold, merge fan-in, and buffer-pool size within
// fixed bounds. Maintenance timing changes; answers never do. GET
// /tune reports the calibrated coefficients, current knob
// recommendations, and the recent decision log.
//
// -pprof-addr exposes net/http/pprof on its own listener and mux —
// never on the serving address, so profiling endpoints are not
// reachable from the query port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/live"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/tune"
)

// options carries every parsed flag into run.
type options struct {
	addr, dir                         string
	seedDocs, seedVocab, seedMean     int
	seed                              uint64
	sealDocs                          int
	follow                            string
	syncEvery                         time.Duration
	replicas                          string
	maxInFlight, queueDepth           int
	rate, burst                       float64
	timeout, maxTimeout               time.Duration
	maxN                              int
	drainTimeout, reverify            time.Duration
	resultCacheBytes, blockCacheBytes int64
	pprofAddr                         string
	tuneOn                            bool
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.dir, "dir", "", "live index directory (default: fresh temp dir, removed on exit)")
	flag.IntVar(&o.seedDocs, "seed-docs", 0, "ingest a synthetic collection of this many documents at startup")
	flag.IntVar(&o.seedVocab, "seed-vocab", 5000, "vocabulary size of the seeded collection")
	flag.IntVar(&o.seedMean, "seed-mean-len", 80, "mean document length of the seeded collection")
	flag.Uint64Var(&o.seed, "seed", 42, "seed of the synthetic collection")
	flag.IntVar(&o.sealDocs, "seal-docs", 0, "live index seal threshold in documents (0 = default)")
	flag.StringVar(&o.follow, "follow", "", "run as a follower of the leader at this base URL (e.g. http://leader:8080)")
	flag.DurationVar(&o.syncEvery, "sync-every", time.Second, "follower manifest poll interval")
	flag.StringVar(&o.replicas, "replicas", "", "run as a coordinator over these comma-separated replica base URLs (no local index)")
	flag.IntVar(&o.maxInFlight, "max-inflight", 16, "maximum concurrently executing searches")
	flag.IntVar(&o.queueDepth, "queue-depth", 64, "maximum searches queued for a slot before shedding")
	flag.Float64Var(&o.rate, "rate", 0, "per-client sustained requests/second (0 = unlimited)")
	flag.Float64Var(&o.burst, "burst", 0, "per-client burst allowance (default 2×rate)")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "default per-query deadline")
	flag.DurationVar(&o.maxTimeout, "max-timeout", 30*time.Second, "cap on the per-query deadline a request may ask for")
	flag.IntVar(&o.maxN, "max-n", 1000, "cap on the result count a request may ask for")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
	flag.DurationVar(&o.reverify, "reverify", 30*time.Second, "quarantined-segment re-verification interval (0 disables)")
	flag.Int64Var(&o.resultCacheBytes, "result-cache-bytes", 64<<20, "query result cache capacity (0 disables)")
	flag.Int64Var(&o.blockCacheBytes, "block-cache-bytes", 32<<20, "hot postings-block cache capacity (0 disables)")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	flag.BoolVar(&o.tuneOn, "tune", false, "self-tune maintenance (seal size, merge fan-in, pool size) from live counters; state on /tune")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "topnserve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.replicas != "" && o.follow != "" {
		return fmt.Errorf("-replicas and -follow are mutually exclusive: a node coordinates or follows, not both")
	}

	// Build the backend for the chosen role. In the two local-index
	// roles w is the index writer; a coordinator owns no index and w
	// stays nil.
	var (
		backend  server.Backend
		w        *live.Writer
		follower *replica.Follower
	)
	switch {
	case o.replicas != "":
		if o.seedDocs > 0 {
			return fmt.Errorf("-seed-docs needs a local index; a coordinator owns none")
		}
		if o.tuneOn {
			return fmt.Errorf("-tune adapts local index maintenance; a coordinator owns no index")
		}
		coord, err := replica.NewCoordinator(strings.Split(o.replicas, ","), nil)
		if err != nil {
			return err
		}
		backend = coord
	default:
		if o.follow != "" && o.seedDocs > 0 {
			return fmt.Errorf("-seed-docs writes, and a follower's index is read-only; seed the leader instead")
		}
		if o.dir == "" {
			tmp, err := os.MkdirTemp("", "topnserve-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			o.dir = tmp
		}
		// -tune attaches the self-tuner: calibration runs on wall-clock
		// spans (no SpanModel), and the knobs move inside fixed bounds so
		// a miscalibrated coefficient can never push the index somewhere
		// unreasonable.
		var tn *tune.Tuner
		if o.tuneOn {
			tn = tune.New(tune.Config{
				SealDocs:   tune.Bounds{Min: 256, Max: 2048},
				MergeFanIn: tune.Bounds{Min: 2, Max: 6},
				PoolPages:  tune.Bounds{Min: 64, Max: 256},
			})
		}
		var err error
		w, err = live.Open(live.Config{
			Dir: o.dir, SealDocs: o.sealDocs, ReverifyEvery: o.reverify,
			ResultCacheBytes: o.resultCacheBytes,
			BlockCacheBytes:  o.blockCacheBytes,
			Follower:         o.follow != "",
			Tune:             tn,
		})
		if err != nil {
			return err
		}
		if o.seedDocs > 0 {
			if err := ingest(w, o.seedDocs, o.seedVocab, o.seedMean, o.seed); err != nil {
				w.Close()
				return err
			}
		}
		backend = server.NewLiveBackend(w)
	}
	// From here on the backend's lifecycle belongs to the server:
	// Shutdown closes it after the drain.

	srv, err := server.New(backend, server.Config{
		MaxInFlight:    o.maxInFlight,
		QueueDepth:     o.queueDepth,
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
		MaxN:           o.maxN,
		RatePerClient:  o.rate,
		Burst:          o.burst,
	})
	if err != nil {
		backend.Close()
		return err
	}
	if w != nil && o.tuneOn {
		srv.SetTuneStats(w.TuneStats)
	}

	// Replication wiring. Every node with an index — leader or follower
	// — serves the /repl/ pull subtree, which is what makes chained
	// replication possible; a follower additionally runs the background
	// sync loop. /metrics reports the role's replication account.
	var syncCancel context.CancelFunc
	syncDone := make(chan struct{})
	switch {
	case o.replicas != "":
		coord := backend.(*replica.Coordinator)
		srv.SetReplStats(coord.ReplStats)
		close(syncDone)
	case o.follow != "":
		leader := replica.NewLeader(w, replica.LeaderConfig{})
		srv.Mount(replica.Prefix+"/", leader)
		follower, err = replica.NewFollower(w, o.follow, replica.FollowerConfig{})
		if err != nil {
			backend.Close()
			return err
		}
		srv.SetReplStats(func() server.ReplicationStats {
			// A follower is also a (chain) leader: merge the pull and
			// serve sides of its account.
			st := follower.Stats()
			ls := leader.Stats()
			st.ManifestsServed = ls.ManifestsServed
			st.FilesServed = ls.FilesServed
			st.BytesServed = ls.BytesServed
			return st
		})
		var syncCtx context.Context
		syncCtx, syncCancel = context.WithCancel(context.Background())
		go func() {
			defer close(syncDone)
			follower.Run(syncCtx, o.syncEvery)
		}()
	default:
		leader := replica.NewLeader(w, replica.LeaderConfig{})
		srv.Mount(replica.Prefix+"/", leader)
		srv.SetReplStats(leader.Stats)
		close(syncDone)
	}
	// stopSync halts the follower loop (and waits it out) before the
	// index starts closing, so no install races the drain.
	stopSync := func() {
		if syncCancel != nil {
			syncCancel()
		}
		<-syncDone
	}

	if o.pprofAddr != "" {
		pl, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			stopSync()
			backend.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// A dedicated mux with explicit registrations: importing
		// net/http/pprof also registers on http.DefaultServeMux, which
		// this program never serves — the profiler is reachable only
		// here, never on the query port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pl)
		defer psrv.Close()
		fmt.Printf("topnserve: pprof on %s\n", pl.Addr())
	}

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		stopSync()
		backend.Close()
		return err
	}
	switch {
	case o.replicas != "":
		fmt.Printf("topnserve: coordinator listening on %s (%d replicas)\n",
			l.Addr(), len(strings.Split(o.replicas, ",")))
	case o.follow != "":
		stats := w.Stats()
		fmt.Printf("topnserve: follower of %s listening on %s (%d docs alive, generation %d, %d segments)\n",
			o.follow, l.Addr(), stats.DocsAlive, stats.Generation, stats.Segments)
	default:
		stats := w.Stats()
		fmt.Printf("topnserve: listening on %s (%d docs alive, generation %d, %d segments)\n",
			l.Addr(), stats.DocsAlive, stats.Generation, stats.Segments)
	}

	// Serve until a signal arrives, then drain.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("topnserve: %v, draining (bound %v)\n", sig, o.drainTimeout)
		stopSync()
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		fmt.Println("topnserve: drained, index closed")
		return nil
	case err := <-errc:
		stopSync()
		backend.Close()
		return err
	}
}

// ingest seeds the live index with a synthetic Zipf collection — the
// same generator the benchmarks use, so term names ("t0", "t1", ...)
// and score distributions match the rest of the reproduction.
func ingest(w *live.Writer, docs, vocab, meanLen int, seed uint64) error {
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: vocab, MeanDocLen: meanLen, Seed: seed,
	})
	if err != nil {
		return err
	}
	for i := range col.Docs {
		d := &col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
		}
		if _, err := w.Add(terms); err != nil {
			return fmt.Errorf("ingest doc %d: %w", i, err)
		}
	}
	return w.Flush()
}
