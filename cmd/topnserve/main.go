// Command topnserve serves a live top-N index over HTTP: the network
// front end of the reproduction's live layer (internal/server over
// internal/live).
//
// Usage:
//
//	topnserve [-addr :8080] [-dir DIR]
//	          [-seed-docs N] [-seed-vocab V] [-seed-mean-len L] [-seed N]
//	          [-max-inflight K] [-queue-depth Q]
//	          [-rate R] [-burst B]
//	          [-timeout D] [-max-timeout D] [-max-n N]
//	          [-drain-timeout D] [-reverify D]
//
// -dir is the live index directory; a temporary directory is used (and
// removed on exit) when omitted. -seed-docs > 0 ingests a synthetic
// Zipf collection at startup so the server answers real queries out of
// the box; with 0 the index starts empty.
//
// Endpoints:
//
//	POST /search   {"terms": ["t12", "t34"], "n": 10, "timeout_ms": 500}
//	GET  /healthz  liveness (503 while draining)
//	GET  /metrics  serving + index counters, JSON
//
// Overload is shed, not queued: beyond -max-inflight executing and
// -queue-depth waiting requests, /search answers 429 with Retry-After.
// -rate/-burst add a per-client token bucket. SIGINT/SIGTERM trigger a
// graceful drain: in-flight queries finish (bounded by -drain-timeout),
// then the index closes.
//
// Damaged segments degrade, they do not kill: a segment whose pages
// fail past the retry budget is quarantined, searches answer over the
// survivors with "degraded": true and the skipped segments named, and
// a background loop re-verifies quarantined segments every -reverify,
// returning them to service once their media reads clean. /healthz
// reports "degraded" in a 200 body (the replica still serves correct,
// labeled answers); /metrics carries the full fault account.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/live"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dir          = flag.String("dir", "", "live index directory (default: fresh temp dir, removed on exit)")
		seedDocs     = flag.Int("seed-docs", 0, "ingest a synthetic collection of this many documents at startup")
		seedVocab    = flag.Int("seed-vocab", 5000, "vocabulary size of the seeded collection")
		seedMeanLen  = flag.Int("seed-mean-len", 80, "mean document length of the seeded collection")
		seed         = flag.Uint64("seed", 42, "seed of the synthetic collection")
		sealDocs     = flag.Int("seal-docs", 0, "live index seal threshold in documents (0 = default)")
		maxInFlight  = flag.Int("max-inflight", 16, "maximum concurrently executing searches")
		queueDepth   = flag.Int("queue-depth", 64, "maximum searches queued for a slot before shedding")
		rate         = flag.Float64("rate", 0, "per-client sustained requests/second (0 = unlimited)")
		burst        = flag.Float64("burst", 0, "per-client burst allowance (default 2×rate)")
		timeout      = flag.Duration("timeout", 2*time.Second, "default per-query deadline")
		maxTimeout   = flag.Duration("max-timeout", 30*time.Second, "cap on the per-query deadline a request may ask for")
		maxN         = flag.Int("max-n", 1000, "cap on the result count a request may ask for")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		reverify     = flag.Duration("reverify", 30*time.Second, "quarantined-segment re-verification interval (0 disables)")
	)
	flag.Parse()
	if err := run(*addr, *dir, *seedDocs, *seedVocab, *seedMeanLen, *seed, *sealDocs,
		*maxInFlight, *queueDepth, *rate, *burst, *timeout, *maxTimeout, *maxN, *drainTimeout, *reverify); err != nil {
		fmt.Fprintln(os.Stderr, "topnserve:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, seedDocs, seedVocab, seedMeanLen int, seed uint64, sealDocs,
	maxInFlight, queueDepth int, rate, burst float64,
	timeout, maxTimeout time.Duration, maxN int, drainTimeout, reverify time.Duration) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "topnserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	w, err := live.Open(live.Config{Dir: dir, SealDocs: sealDocs, ReverifyEvery: reverify})
	if err != nil {
		return err
	}
	// From here on the writer's lifecycle belongs to the server:
	// Shutdown closes it after the drain.

	if seedDocs > 0 {
		if err := ingest(w, seedDocs, seedVocab, seedMeanLen, seed); err != nil {
			w.Close()
			return err
		}
	}

	srv, err := server.New(server.NewLiveBackend(w), server.Config{
		MaxInFlight:    maxInFlight,
		QueueDepth:     queueDepth,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		MaxN:           maxN,
		RatePerClient:  rate,
		Burst:          burst,
	})
	if err != nil {
		w.Close()
		return err
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		w.Close()
		return err
	}
	stats := w.Stats()
	fmt.Printf("topnserve: listening on %s (%d docs alive, generation %d, %d segments)\n",
		l.Addr(), stats.DocsAlive, stats.Generation, stats.Segments)

	// Serve until a signal arrives, then drain.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("topnserve: %v, draining (bound %v)\n", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		fmt.Println("topnserve: drained, index closed")
		return nil
	case err := <-errc:
		w.Close()
		return err
	}
}

// ingest seeds the live index with a synthetic Zipf collection — the
// same generator the benchmarks use, so term names ("t0", "t1", ...)
// and score distributions match the rest of the reproduction.
func ingest(w *live.Writer, docs, vocab, meanLen int, seed uint64) error {
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: vocab, MeanDocLen: meanLen, Seed: seed,
	})
	if err != nil {
		return err
	}
	for i := range col.Docs {
		d := &col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
		}
		if _, err := w.Add(terms); err != nil {
			return fmt.Errorf("ingest doc %d: %w", i, err)
		}
	}
	return w.Flush()
}
