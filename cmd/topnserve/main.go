// Command topnserve serves a live top-N index over HTTP: the network
// front end of the reproduction's live layer (internal/server over
// internal/live).
//
// Usage:
//
//	topnserve [-addr :8080] [-dir DIR]
//	          [-seed-docs N] [-seed-vocab V] [-seed-mean-len L] [-seed N]
//	          [-max-inflight K] [-queue-depth Q]
//	          [-rate R] [-burst B]
//	          [-timeout D] [-max-timeout D] [-max-n N]
//	          [-drain-timeout D] [-reverify D]
//	          [-result-cache-bytes B] [-block-cache-bytes B]
//	          [-pprof-addr ADDR]
//
// -dir is the live index directory; a temporary directory is used (and
// removed on exit) when omitted. -seed-docs > 0 ingests a synthetic
// Zipf collection at startup so the server answers real queries out of
// the box; with 0 the index starts empty.
//
// Endpoints:
//
//	POST /search   {"terms": ["t12", "t34"], "n": 10, "timeout_ms": 500}
//	GET  /healthz  liveness (503 while draining)
//	GET  /metrics  serving + index counters, JSON
//
// Overload is shed, not queued: beyond -max-inflight executing and
// -queue-depth waiting requests, /search answers 429 with Retry-After.
// -rate/-burst add a per-client token bucket. SIGINT/SIGTERM trigger a
// graceful drain: in-flight queries finish (bounded by -drain-timeout),
// then the index closes.
//
// Damaged segments degrade, they do not kill: a segment whose pages
// fail past the retry budget is quarantined, searches answer over the
// survivors with "degraded": true and the skipped segments named, and
// a background loop re-verifies quarantined segments every -reverify,
// returning them to service once their media reads clean. /healthz
// reports "degraded" in a 200 body (the replica still serves correct,
// labeled answers); /metrics carries the full fault account.
//
// The query path is cache-amortized: -result-cache-bytes bounds a
// whole-answer cache (invalidated wholesale at every commit, degraded
// answers never cached, concurrent identical queries singleflighted)
// and -block-cache-bytes a TinyLFU hot-block cache shared by every
// segment. Either set to 0 disables that layer; /metrics carries the
// hit/miss/byte account of both.
//
// -pprof-addr exposes net/http/pprof on its own listener and mux —
// never on the serving address, so profiling endpoints are not
// reachable from the query port.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/live"
	"repro/internal/server"
)

// options carries every parsed flag into run.
type options struct {
	addr, dir                         string
	seedDocs, seedVocab, seedMean     int
	seed                              uint64
	sealDocs                          int
	maxInFlight, queueDepth           int
	rate, burst                       float64
	timeout, maxTimeout               time.Duration
	maxN                              int
	drainTimeout, reverify            time.Duration
	resultCacheBytes, blockCacheBytes int64
	pprofAddr                         string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.dir, "dir", "", "live index directory (default: fresh temp dir, removed on exit)")
	flag.IntVar(&o.seedDocs, "seed-docs", 0, "ingest a synthetic collection of this many documents at startup")
	flag.IntVar(&o.seedVocab, "seed-vocab", 5000, "vocabulary size of the seeded collection")
	flag.IntVar(&o.seedMean, "seed-mean-len", 80, "mean document length of the seeded collection")
	flag.Uint64Var(&o.seed, "seed", 42, "seed of the synthetic collection")
	flag.IntVar(&o.sealDocs, "seal-docs", 0, "live index seal threshold in documents (0 = default)")
	flag.IntVar(&o.maxInFlight, "max-inflight", 16, "maximum concurrently executing searches")
	flag.IntVar(&o.queueDepth, "queue-depth", 64, "maximum searches queued for a slot before shedding")
	flag.Float64Var(&o.rate, "rate", 0, "per-client sustained requests/second (0 = unlimited)")
	flag.Float64Var(&o.burst, "burst", 0, "per-client burst allowance (default 2×rate)")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "default per-query deadline")
	flag.DurationVar(&o.maxTimeout, "max-timeout", 30*time.Second, "cap on the per-query deadline a request may ask for")
	flag.IntVar(&o.maxN, "max-n", 1000, "cap on the result count a request may ask for")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
	flag.DurationVar(&o.reverify, "reverify", 30*time.Second, "quarantined-segment re-verification interval (0 disables)")
	flag.Int64Var(&o.resultCacheBytes, "result-cache-bytes", 64<<20, "query result cache capacity (0 disables)")
	flag.Int64Var(&o.blockCacheBytes, "block-cache-bytes", 32<<20, "hot postings-block cache capacity (0 disables)")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty disables)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "topnserve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.dir == "" {
		tmp, err := os.MkdirTemp("", "topnserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		o.dir = tmp
	}
	w, err := live.Open(live.Config{
		Dir: o.dir, SealDocs: o.sealDocs, ReverifyEvery: o.reverify,
		ResultCacheBytes: o.resultCacheBytes,
		BlockCacheBytes:  o.blockCacheBytes,
	})
	if err != nil {
		return err
	}
	// From here on the writer's lifecycle belongs to the server:
	// Shutdown closes it after the drain.

	if o.seedDocs > 0 {
		if err := ingest(w, o.seedDocs, o.seedVocab, o.seedMean, o.seed); err != nil {
			w.Close()
			return err
		}
	}

	srv, err := server.New(server.NewLiveBackend(w), server.Config{
		MaxInFlight:    o.maxInFlight,
		QueueDepth:     o.queueDepth,
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
		MaxN:           o.maxN,
		RatePerClient:  o.rate,
		Burst:          o.burst,
	})
	if err != nil {
		w.Close()
		return err
	}

	if o.pprofAddr != "" {
		pl, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			w.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// A dedicated mux with explicit registrations: importing
		// net/http/pprof also registers on http.DefaultServeMux, which
		// this program never serves — the profiler is reachable only
		// here, never on the query port.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pl)
		defer psrv.Close()
		fmt.Printf("topnserve: pprof on %s\n", pl.Addr())
	}

	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		w.Close()
		return err
	}
	stats := w.Stats()
	fmt.Printf("topnserve: listening on %s (%d docs alive, generation %d, %d segments)\n",
		l.Addr(), stats.DocsAlive, stats.Generation, stats.Segments)

	// Serve until a signal arrives, then drain.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("topnserve: %v, draining (bound %v)\n", sig, o.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		fmt.Println("topnserve: drained, index closed")
		return nil
	case err := <-errc:
		w.Close()
		return err
	}
}

// ingest seeds the live index with a synthetic Zipf collection — the
// same generator the benchmarks use, so term names ("t0", "t1", ...)
// and score distributions match the rest of the reproduction.
func ingest(w *live.Writer, docs, vocab, meanLen int, seed uint64) error {
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: vocab, MeanDocLen: meanLen, Seed: seed,
	})
	if err != nil {
		return err
	}
	for i := range col.Docs {
		d := &col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
		}
		if _, err := w.Add(terms); err != nil {
			return fmt.Errorf("ingest doc %d: %w", i, err)
		}
	}
	return w.Flush()
}
