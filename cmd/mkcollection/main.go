// Command mkcollection generates a synthetic Zipf document collection (the
// TREC-FT stand-in described in DESIGN.md §2) and writes it to a file that
// examples and external tools can load with collection.Load.
//
// Usage:
//
//	mkcollection -out ft.bin -docs 25000 -vocab 120000 -len 250 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/zipf"
)

func main() {
	out := flag.String("out", "collection.bin", "output file")
	docs := flag.Int("docs", 10000, "number of documents")
	vocab := flag.Int("vocab", 50000, "vocabulary size")
	meanLen := flag.Int("len", 300, "mean document length in tokens")
	zipfS := flag.Float64("zipf", 0, "Zipf exponent (0 = calibrated default)")
	seed := flag.Uint64("seed", 1, "generation seed")
	flag.Parse()

	col, err := collection.Generate(collection.Config{
		NumDocs: *docs, VocabSize: *vocab, MeanDocLen: *meanLen,
		ZipfS: *zipfS, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkcollection: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkcollection: %v\n", err)
		os.Exit(1)
	}
	if err := col.Save(f); err != nil {
		fmt.Fprintf(os.Stderr, "mkcollection: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mkcollection: %v\n", err)
		os.Exit(1)
	}

	freqs := make([]int, 0, col.Lex.Size())
	for id := 0; id < col.Lex.Size(); id++ {
		if cf := col.Lex.Stats(lexicon.TermID(id)).CollFreq; cf > 0 {
			freqs = append(freqs, int(cf))
		}
	}
	s, r2, err := zipf.FitExponent(freqs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkcollection: fit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d docs, %d tokens, %d distinct terms, %d postings\n",
		*out, len(col.Docs), col.TotalTokens, len(freqs), col.Lex.TotalPostings())
	fmt.Printf("rank-frequency fit: s=%.2f (R²=%.3f)\n", s, r2)
}
