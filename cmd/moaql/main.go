// Command moaql is a small interactive shell over the Moa algebra: it
// parses an expression in the paper's surface notation, shows the
// unoptimized and optimized plans with the rewrite trace (which layer
// fired which rule), the cost model's predictions, and the measured
// evaluation work of both plans.
//
// Usage:
//
//	moaql 'select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)'
//	moaql            # read expressions from stdin, one per line
//
// This is Example 1 of the paper made executable.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"repro/internal/cost"
	"repro/internal/moa"
	"repro/internal/optimizer"
)

func main() {
	if len(os.Args) > 1 {
		run(strings.Join(os.Args[1:], " "))
		return
	}
	fmt.Println("moaql: enter expressions, e.g. select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			run(line)
		}
		fmt.Print("> ")
	}
}

func run(input string) {
	reg := moa.NewRegistry()
	expr, err := moa.Parse(input, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parse error: %v\n", err)
		return
	}
	typ, err := reg.TypeOf(expr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "type error: %v\n", err)
		return
	}
	fmt.Printf("input plan : %s : %s\n", expr, typ)

	opt := optimizer.New(reg)
	optimized, traces, err := opt.Optimize(expr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optimizer error: %v\n", err)
		return
	}
	fmt.Printf("optimized  : %s\n", optimized)
	fmt.Print(optimizer.Explain(traces))

	model := cost.NewMoaModel(reg)
	for name, plan := range map[string]*moa.Expr{"input": expr, "optimized": optimized} {
		est, err := model.Estimate(plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cost error (%s): %v\n", name, err)
			return
		}
		fmt.Printf("cost model %-9s: card=%.0f visits=%.0f comparisons=%.0f\n",
			name, est.Card, est.Visits, est.Comparisons)
	}

	for name, plan := range map[string]*moa.Expr{"input": expr, "optimized": optimized} {
		ev := moa.NewEvaluator(reg)
		v, err := ev.Eval(plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eval error (%s): %v\n", name, err)
			return
		}
		fmt.Printf("measured %-11s: visits=%d comparisons=%d result=%s\n",
			name, ev.Counters.ElementsVisited, ev.Counters.Comparisons, v)
	}
}
