// Package stopafter implements Carey & Kossmann's STOP AFTER processing
// strategies ("Reducing the Braking Distance of an SQL Query Engine",
// VLDB 1998), one of the database-side top-N baselines the paper builds
// its State of the Art on.
//
// The modelled query is the classic one from that paper:
//
//	SELECT * FROM r WHERE expensive_pred(r) ORDER BY r.score DESC STOP AFTER n
//
// Two placements of the stop operator are implemented:
//
//   - Conservative: the stop goes above the predicate, where cardinality
//     is certain — every row pays the expensive predicate, then a bounded
//     sort keeps the top n. Always one pass, never restarts.
//   - Aggressive: the stop goes below the predicate with a guessed
//     cardinality k ≥ n — only k rows pay the predicate. If fewer than n
//     survive, the plan *restarts* with a doubled k, re-scanning. Cheap
//     when the predicate passes most rows, expensive when it filters
//     heavily; quantifying that trade-off is experiment E7.
package stopafter

import (
	"fmt"

	"repro/internal/exec"
)

// Result carries the returned rows (descending score) plus the work
// counters of the run.
type Result struct {
	Rows  []exec.Row
	Stats exec.Stats
}

// Conservative evaluates the query with the stop above the filter.
func Conservative(table []exec.Row, pred func(exec.Row) bool, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("stopafter: n = %d must be positive", n)
	}
	var st exec.Stats
	plan := exec.NewStopAfter(
		exec.NewFilter(exec.NewScan(table, &st), pred, &st),
		n, &st)
	rows, err := exec.Drain(plan)
	if err != nil {
		return Result{}, err
	}
	return Result{Rows: rows, Stats: st}, nil
}

// Aggressive evaluates the query with the stop below the filter, guessing
// an initial stop cardinality k and restarting with 2k whenever fewer than
// n rows survive the predicate. The initial guess is derived from the
// optimizer's selectivity estimate: k = n/estSelectivity (clamped to at
// least n), exactly the cardinality reasoning of the original paper.
func Aggressive(table []exec.Row, pred func(exec.Row) bool, n int, estSelectivity float64) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("stopafter: n = %d must be positive", n)
	}
	if estSelectivity <= 0 || estSelectivity > 1 {
		return Result{}, fmt.Errorf("stopafter: selectivity estimate %v out of (0,1]", estSelectivity)
	}
	if len(table) == 0 {
		return Result{}, nil
	}
	var st exec.Stats
	k := int(float64(n) / estSelectivity)
	if k < n {
		k = n
	}
	for {
		if k > len(table) {
			k = len(table)
		}
		// Stop-below-filter: keep the k highest scores without touching
		// the predicate, then filter just those k.
		stop := exec.NewStopAfter(exec.NewScan(table, &st), k, &st)
		plan := exec.NewStopAfter(exec.NewFilter(stop, pred, &st), n, &st)
		rows, err := exec.Drain(plan)
		if err != nil {
			return Result{}, err
		}
		// Correctness argument for accepting: the k kept rows are the k
		// globally highest scores, so any discarded row scores at or below
		// all of them; if ≥ n kept rows pass the predicate, the true top n
		// passing rows are among the kept ones.
		if len(rows) >= n || k == len(table) {
			return Result{Rows: rows, Stats: st}, nil
		}
		st.Restarts++
		k *= 2
	}
}

// Reference computes the exact answer with no stop optimization at all
// (filter everything, keep all, then truncate) — the correctness oracle
// for tests and the unoptimized cost baseline for E7.
func Reference(table []exec.Row, pred func(exec.Row) bool, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("stopafter: n = %d must be positive", n)
	}
	var st exec.Stats
	// Keep every passing row (bounded only by the table size), then cut.
	keep := len(table)
	if keep == 0 {
		keep = 1
	}
	plan := exec.NewStopAfter(
		exec.NewFilter(exec.NewScan(table, &st), pred, &st),
		keep, &st)
	rows, err := exec.Drain(plan)
	if err != nil {
		return Result{}, err
	}
	if len(rows) > n {
		rows = rows[:n]
	}
	return Result{Rows: rows, Stats: st}, nil
}
