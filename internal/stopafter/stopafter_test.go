package stopafter

import (
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/xrand"
)

func table(n int, seed uint64) []exec.Row {
	rng := xrand.New(seed)
	rows := make([]exec.Row, n)
	for i := range rows {
		rows[i] = exec.Row{ID: uint32(i), Score: rng.Float64(), Attr: rng.Float64()}
	}
	return rows
}

// predSel builds a predicate passing roughly the given fraction of rows.
func predSel(sel float64) func(exec.Row) bool {
	return func(r exec.Row) bool { return r.Attr < sel }
}

func sameRows(t *testing.T, name string, got, want []exec.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: position %d is row %d, want %d", name, i, got[i].ID, want[i].ID)
		}
	}
}

func TestBothPoliciesMatchReference(t *testing.T) {
	rows := table(2000, 7)
	for _, sel := range []float64{0.05, 0.3, 0.9} {
		for _, n := range []int{1, 10, 100} {
			ref, err := Reference(rows, predSel(sel), n)
			if err != nil {
				t.Fatal(err)
			}
			cons, err := Conservative(rows, predSel(sel), n)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, "conservative", cons.Rows, ref.Rows)
			aggr, err := Aggressive(rows, predSel(sel), n, sel)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, "aggressive", aggr.Rows, ref.Rows)
		}
	}
}

func TestAggressiveSavesPredicateWork(t *testing.T) {
	// High selectivity (most rows pass): the aggressive plan should pay
	// the predicate on a small fraction of the table.
	rows := table(20000, 9)
	sel := 0.9
	cons, err := Conservative(rows, predSel(sel), 10)
	if err != nil {
		t.Fatal(err)
	}
	aggr, err := Aggressive(rows, predSel(sel), 10, sel)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Stats.PredEvals != 20000 {
		t.Errorf("conservative PredEvals = %d, want full table", cons.Stats.PredEvals)
	}
	if aggr.Stats.PredEvals*100 > cons.Stats.PredEvals {
		t.Errorf("aggressive PredEvals = %d vs conservative %d; expected ~100x fewer",
			aggr.Stats.PredEvals, cons.Stats.PredEvals)
	}
	if aggr.Stats.Restarts != 0 {
		t.Errorf("aggressive restarted %d times with a good estimate", aggr.Stats.Restarts)
	}
}

func TestAggressiveRestartsOnBadEstimate(t *testing.T) {
	// True selectivity is 1%, but the optimizer believes 90%: the first k
	// is far too small and the plan must restart (possibly repeatedly),
	// scanning the table again — Carey & Kossmann's risk case.
	rows := table(5000, 11)
	res, err := Aggressive(rows, predSel(0.01), 20, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Restarts == 0 {
		t.Error("no restart despite wildly optimistic estimate")
	}
	ref, _ := Reference(rows, predSel(0.01), 20)
	sameRows(t, "aggressive-after-restart", res.Rows, ref.Rows)
	// Restarting costs whole re-scans.
	if res.Stats.RowsScanned <= 5000 {
		t.Errorf("RowsScanned = %d; restarts should exceed one scan", res.Stats.RowsScanned)
	}
}

func TestZeroSurvivors(t *testing.T) {
	rows := table(100, 13)
	never := func(exec.Row) bool { return false }
	for name, run := range map[string]func() (Result, error){
		"conservative": func() (Result, error) { return Conservative(rows, never, 5) },
		"aggressive":   func() (Result, error) { return Aggressive(rows, never, 5, 0.5) },
		"reference":    func() (Result, error) { return Reference(rows, never, 5) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%s returned %d rows for an always-false predicate", name, len(res.Rows))
		}
	}
}

func TestValidation(t *testing.T) {
	rows := table(10, 1)
	if _, err := Conservative(rows, predSel(1), 0); err == nil {
		t.Error("conservative accepted n=0")
	}
	if _, err := Aggressive(rows, predSel(1), 0, 0.5); err == nil {
		t.Error("aggressive accepted n=0")
	}
	if _, err := Aggressive(rows, predSel(1), 5, 0); err == nil {
		t.Error("aggressive accepted selectivity 0")
	}
	if _, err := Aggressive(rows, predSel(1), 5, 1.5); err == nil {
		t.Error("aggressive accepted selectivity > 1")
	}
	if _, err := Reference(rows, predSel(1), -1); err == nil {
		t.Error("reference accepted negative n")
	}
}

func TestEmptyTable(t *testing.T) {
	res, err := Aggressive(nil, predSel(0.5), 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty table returned rows")
	}
}

// TestPropertyPoliciesAgree: for random tables, selectivities and n, both
// policies return exactly the reference answer.
func TestPropertyPoliciesAgree(t *testing.T) {
	rng := xrand.New(31)
	if err := quick.Check(func(nRaw, selRaw uint8) bool {
		n := int(nRaw)%50 + 1
		sel := float64(selRaw%100)/100 + 0.005
		rows := table(500, rng.Uint64())
		ref, err := Reference(rows, predSel(sel), n)
		if err != nil {
			return false
		}
		cons, err := Conservative(rows, predSel(sel), n)
		if err != nil {
			return false
		}
		aggr, err := Aggressive(rows, predSel(sel), n, 0.5)
		if err != nil {
			return false
		}
		if len(cons.Rows) != len(ref.Rows) || len(aggr.Rows) != len(ref.Rows) {
			return false
		}
		for i := range ref.Rows {
			if cons.Rows[i].ID != ref.Rows[i].ID || aggr.Rows[i].ID != ref.Rows[i].ID {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
