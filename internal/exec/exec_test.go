package exec

import (
	"testing"

	"repro/internal/xrand"
)

func table(n int, seed uint64) []Row {
	rng := xrand.New(seed)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{ID: uint32(i), Score: rng.Float64(), Attr: rng.Float64()}
	}
	return rows
}

func TestScanProducesAll(t *testing.T) {
	var st Stats
	rows := table(100, 1)
	got, err := Drain(NewScan(rows, &st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("drained %d rows", len(got))
	}
	if st.RowsScanned != 100 {
		t.Errorf("RowsScanned = %d", st.RowsScanned)
	}
	for i := range got {
		if got[i] != rows[i] {
			t.Fatal("scan reordered rows")
		}
	}
}

func TestScanRequiresOpen(t *testing.T) {
	var st Stats
	s := NewScan(table(5, 1), &st)
	if _, _, err := s.Next(); err == nil {
		t.Error("Next before Open succeeded")
	}
}

func TestFilter(t *testing.T) {
	var st Stats
	rows := table(1000, 2)
	pred := func(r Row) bool { return r.Attr > 0.5 }
	got, err := Drain(NewFilter(NewScan(rows, &st), pred, &st))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if pred(r) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("filtered %d rows, want %d", len(got), want)
	}
	if st.PredEvals != 1000 {
		t.Errorf("PredEvals = %d, want 1000", st.PredEvals)
	}
}

func TestStopAfterKeepsTopN(t *testing.T) {
	var st Stats
	rows := table(500, 3)
	got, err := Drain(NewStopAfter(NewScan(rows, &st), 10, &st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("returned %d rows", len(got))
	}
	// Descending and correct membership: nothing outside beats the min.
	min := got[len(got)-1].Score
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("output not descending")
		}
	}
	inTop := map[uint32]bool{}
	for _, r := range got {
		inTop[r.ID] = true
	}
	for _, r := range rows {
		if !inTop[r.ID] && r.Score > min {
			t.Fatalf("row %d with score %v should be in the top 10 (min kept %v)", r.ID, r.Score, min)
		}
	}
}

func TestStopAfterPreservesAttrs(t *testing.T) {
	var st Stats
	rows := []Row{{ID: 1, Score: 0.3, Attr: 42}, {ID: 2, Score: 0.9, Attr: 7}}
	got, err := Drain(NewStopAfter(NewScan(rows, &st), 1, &st))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 2 || got[0].Attr != 7 {
		t.Fatalf("got %+v", got[0])
	}
}

func TestStopAfterValidation(t *testing.T) {
	var st Stats
	op := NewStopAfter(NewScan(nil, &st), 0, &st)
	if err := op.Open(); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestStopAfterFewerRowsThanN(t *testing.T) {
	var st Stats
	got, err := Drain(NewStopAfter(NewScan(table(3, 4), &st), 10, &st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("returned %d rows, want all 3", len(got))
	}
}

func TestLimit(t *testing.T) {
	var st Stats
	got, err := Drain(NewLimit(NewScan(table(100, 5), &st), 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("limit returned %d rows", len(got))
	}
}

func TestPipelineComposition(t *testing.T) {
	// filter → stop-after → limit, all composed.
	var st Stats
	rows := table(2000, 6)
	pred := func(r Row) bool { return r.Attr < 0.9 }
	plan := NewLimit(NewStopAfter(NewFilter(NewScan(rows, &st), pred, &st), 50, &st), 5)
	got, err := Drain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("returned %d rows", len(got))
	}
	// Verify against brute force.
	var best Row
	found := false
	for _, r := range rows {
		if pred(r) && (!found || r.Score > best.Score) {
			best, found = r, true
		}
	}
	if got[0].ID != best.ID {
		t.Errorf("top row %d, want %d", got[0].ID, best.ID)
	}
}

func TestStatsReset(t *testing.T) {
	st := Stats{RowsScanned: 5, PredEvals: 3, Comparisons: 2, Restarts: 1}
	st.Reset()
	if st != (Stats{}) {
		t.Error("reset incomplete")
	}
}
