// Package exec provides a minimal Volcano-style physical operator algebra
// over scored rows. It is the relational substrate on which the two
// database-side top-N baselines cited by the paper run: Carey & Kossmann's
// STOP AFTER plans (internal/stopafter) and Donjerkovic & Ramakrishnan's
// probabilistic top-N (internal/probtopn).
//
// Operators pull rows one at a time through Next and account their work in
// a shared Stats, so experiments can report machine-independent costs
// (rows scanned, predicate evaluations, comparisons) next to wall-clock.
package exec

import (
	"fmt"

	"repro/internal/rank"
	"repro/internal/topk"
)

// Row is a tuple: an id, the score the top-N ranks on, and one extra
// attribute for predicates (the "expensive computed column" of the
// STOP AFTER scenarios).
type Row struct {
	ID    uint32
	Score float64
	Attr  float64
}

// Stats counts the physical work of a plan execution.
type Stats struct {
	RowsScanned int64 // rows produced by table scans
	PredEvals   int64 // predicate evaluations (the expensive part)
	Comparisons int64 // sort/heap comparisons
	Restarts    int64 // plan restarts (aggressive stop-after, prob. top-N)
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// Operator is a Volcano iterator. Open must be called before Next; Close
// releases resources. Operators are single-use: re-Open after Close is not
// supported (build a new plan instead).
type Operator interface {
	Open() error
	Next() (Row, bool, error)
	Close() error
}

// Scan produces the rows of an in-memory table in order.
type Scan struct {
	rows  []Row
	pos   int
	stats *Stats
	open  bool
}

// NewScan returns a scan over rows, counting into stats.
func NewScan(rows []Row, stats *Stats) *Scan {
	return &Scan{rows: rows, stats: stats}
}

// Open implements Operator.
func (s *Scan) Open() error {
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (Row, bool, error) {
	if !s.open {
		return Row{}, false, fmt.Errorf("exec: scan not open")
	}
	if s.pos >= len(s.rows) {
		return Row{}, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	s.stats.RowsScanned++
	return r, true, nil
}

// Close implements Operator.
func (s *Scan) Close() error {
	s.open = false
	return nil
}

// Filter passes rows satisfying pred. Predicate evaluations are counted:
// in the STOP AFTER scenarios the predicate is the expensive part of the
// query, so the baselines' whole purpose is minimizing this counter.
type Filter struct {
	in    Operator
	pred  func(Row) bool
	stats *Stats
}

// NewFilter wraps in with a predicate.
func NewFilter(in Operator, pred func(Row) bool, stats *Stats) *Filter {
	return &Filter{in: in, pred: pred, stats: stats}
}

// Open implements Operator.
func (f *Filter) Open() error { return f.in.Open() }

// Next implements Operator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		r, ok, err := f.in.Next()
		if err != nil || !ok {
			return Row{}, false, err
		}
		f.stats.PredEvals++
		if f.pred(r) {
			return r, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.in.Close() }

// StopAfter is the materializing top-N operator (Carey & Kossmann's
// Sort-Stop): it drains its input into a bounded heap of the n highest
// scores and then emits them in descending order.
type StopAfter struct {
	in      Operator
	n       int
	stats   *Stats
	results []Row
	pos     int
}

// NewStopAfter returns a Sort-Stop over in retaining n rows.
func NewStopAfter(in Operator, n int, stats *Stats) *StopAfter {
	return &StopAfter{in: in, n: n, stats: stats}
}

// Open implements Operator: it materializes the top n immediately.
func (s *StopAfter) Open() error {
	if s.n <= 0 {
		return fmt.Errorf("exec: stop-after cardinality %d must be positive", s.n)
	}
	if err := s.in.Open(); err != nil {
		return err
	}
	h, err := topk.NewHeap(s.n)
	if err != nil {
		return err
	}
	byID := make(map[uint32]Row, s.n)
	for {
		r, ok, err := s.in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.stats.Comparisons++ // heap threshold comparison
		if h.Offer(rank.DocScore{DocID: r.ID, Score: r.Score}) {
			byID[r.ID] = r
		}
	}
	for _, ds := range h.Results() {
		s.results = append(s.results, byID[ds.DocID])
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *StopAfter) Next() (Row, bool, error) {
	if s.pos >= len(s.results) {
		return Row{}, false, nil
	}
	r := s.results[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Operator.
func (s *StopAfter) Close() error { return s.in.Close() }

// Limit passes through at most n rows.
type Limit struct {
	in   Operator
	n    int
	seen int
}

// NewLimit wraps in, truncating after n rows.
func NewLimit(in Operator, n int) *Limit { return &Limit{in: in, n: n} }

// Open implements Operator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.in.Open()
}

// Next implements Operator.
func (l *Limit) Next() (Row, bool, error) {
	if l.seen >= l.n {
		return Row{}, false, nil
	}
	r, ok, err := l.in.Next()
	if err != nil || !ok {
		return Row{}, false, err
	}
	l.seen++
	return r, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.in.Close() }

// Drain opens op, collects every row, and closes it.
func Drain(op Operator) ([]Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	var out []Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, op.Close()
}
