package optimizer

import (
	"strings"
	"testing"

	"repro/internal/moa"
	"repro/internal/xrand"
)

func newOpt() (*Optimizer, *moa.Registry) {
	reg := moa.NewRegistry()
	return New(reg), reg
}

func mustEval(t *testing.T, reg *moa.Registry, e *moa.Expr) (moa.Value, moa.Counters) {
	t.Helper()
	ev := moa.NewEvaluator(reg)
	v, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v, ev.Counters
}

// TestExample1EndToEnd is the paper's Example 1 run through the optimizer:
// the inter-object layer commutes select with projecttobag, and — because
// the literal list is sorted — the intra-object layer then picks the
// binary-search select.
func TestExample1EndToEnd(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 3, 4, 4, 5))
	orig := moa.SelectB(moa.ProjectToBag(l), moa.Int(2), moa.Int(4))

	optimized, traces, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Expect the exact plan shape from the paper (plus physical select).
	if optimized.Op != "list.projecttobag" {
		t.Fatalf("root = %s, want list.projecttobag; plan: %s", optimized.Op, optimized)
	}
	if optimized.Children[0].Op != "list.select.binsearch" {
		t.Fatalf("inner = %s, want list.select.binsearch; plan: %s", optimized.Children[0].Op, optimized)
	}
	// Both layers must appear in the trace.
	var sawInter, sawIntra bool
	for _, tr := range traces {
		if tr.Layer == LayerInterObject {
			sawInter = true
		}
		if tr.Layer == LayerIntraObject {
			sawIntra = true
		}
	}
	if !sawInter || !sawIntra {
		t.Errorf("trace missing layers: inter=%v intra=%v\n%s", sawInter, sawIntra, Explain(traces))
	}
	// Semantics preserved.
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatalf("optimized result %s != original %s", got, want)
	}
	if !moa.Equal(got, moa.NewIntBag(2, 3, 4, 4)) {
		t.Fatalf("result = %s, want {2, 3, 4, 4}", got)
	}
}

func TestExample1WorkReduction(t *testing.T) {
	opt, reg := newOpt()
	xs := make([]int64, 20000)
	for i := range xs {
		xs[i] = int64(i)
	}
	l := moa.Literal(moa.NewIntList(xs...))
	orig := moa.SelectB(moa.ProjectToBag(l), moa.Int(100), moa.Int(200))
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	_, before := mustEval(t, reg, orig)
	_, after := mustEval(t, reg, optimized)
	// The original converts all n elements to a bag and scans them; the
	// optimized plan binary-searches and converts only the selected range.
	if after.ElementsVisited*50 > before.ElementsVisited {
		t.Errorf("visits: %d -> %d; expected a large reduction", before.ElementsVisited, after.ElementsVisited)
	}
	if after.Comparisons*50 > before.Comparisons {
		t.Errorf("comparisons: %d -> %d; expected a large reduction", before.Comparisons, after.Comparisons)
	}
}

func TestUnsortedInputSkipsPhysicalRule(t *testing.T) {
	opt, _ := newOpt()
	l := moa.Literal(moa.NewIntList(5, 1, 4, 2))
	orig := moa.SelectB(moa.ProjectToBag(l), moa.Int(1), moa.Int(4))
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Inter-object pushdown still applies, but the select must remain the
	// scanning variant because the list is not sorted.
	if optimized.Children[0].Op != "list.select" {
		t.Fatalf("plan %s uses %s on an unsorted list", optimized, optimized.Children[0].Op)
	}
}

func TestSortEstablishesProperty(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(5, 1, 4, 2))
	orig := moa.SelectL(moa.SortL(l), moa.Int(1), moa.Int(4))
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != "list.select.binsearch" {
		t.Fatalf("plan %s: select above sort should become binsearch", optimized)
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatal("semantics changed")
	}
}

func TestMergeSelects(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 3, 4, 5, 6, 7, 8))
	orig := moa.SelectL(moa.SelectL(l, moa.Int(2), moa.Int(7)), moa.Int(4), moa.Int(9))
	optimized, traces, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range traces {
		if tr.Rule == "merge-selects" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merge-selects not applied:\n%s", Explain(traces))
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatalf("merge changed semantics: %s vs %s", got, want)
	}
	if !moa.Equal(got, moa.NewIntList(4, 5, 6, 7)) {
		t.Fatalf("result = %s", got)
	}
}

func TestIdempotentSortElision(t *testing.T) {
	opt, _ := newOpt()
	l := moa.Literal(moa.NewIntList(3, 1, 2))
	orig := moa.SortL(moa.SortL(l))
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	// sort(sort(x)) collapses; one sort remains (x unsorted).
	if optimized.Op != "list.sort" || optimized.Children[0].Op != moa.OpLit {
		t.Fatalf("plan = %s, want single sort over literal", optimized)
	}
}

func TestElideSortOnSorted(t *testing.T) {
	opt, _ := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 3))
	optimized, _, err := opt.Optimize(moa.SortL(l))
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != moa.OpLit {
		t.Fatalf("sort over sorted literal not elided: %s", optimized)
	}
}

func TestCountThroughConversions(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 2, 3))
	orig := moa.CountB(moa.ProjectToBag(l))
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != "list.count" {
		t.Fatalf("plan = %s, want list.count", optimized)
	}
	got, after := mustEval(t, reg, optimized)
	if got != moa.Int(4) {
		t.Fatalf("count = %s", got)
	}
	if after.ElementsVisited != 0 {
		t.Errorf("count after elision visited %d elements, want 0", after.ElementsVisited)
	}
}

func TestTopNPushdown(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(4, 8, 1, 9, 3))
	orig := moa.TopNB(moa.ProjectToBag(l), 2)
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != "list.topn" {
		t.Fatalf("plan = %s, want list.topn", optimized)
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatalf("pushdown changed semantics: %s vs %s", got, want)
	}
}

func TestTopNOnSortedUsesSuffix(t *testing.T) {
	opt, reg := newOpt()
	l := moa.Literal(moa.NewIntList(9, 4, 6, 2))
	orig := moa.TopNL(moa.SortL(l), 2)
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != "list.topn.sorted" {
		t.Fatalf("plan = %s, want list.topn.sorted over sort", optimized)
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatalf("%s vs %s", got, want)
	}
}

func TestOptimizeRejectsIllTyped(t *testing.T) {
	opt, _ := newOpt()
	bad := moa.SelectL(moa.Literal(moa.NewIntBag(1)), moa.Int(0), moa.Int(1))
	if _, _, err := opt.Optimize(bad); err == nil {
		t.Error("ill-typed input optimized")
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	opt, _ := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 3))
	orig := moa.SelectB(moa.ProjectToBag(l), moa.Int(1), moa.Int(2))
	snapshot := orig.Clone()
	if _, _, err := opt.Optimize(orig); err != nil {
		t.Fatal(err)
	}
	if !moa.DeepEqual(orig, snapshot) {
		t.Error("Optimize mutated its input")
	}
}

func TestExplainFormat(t *testing.T) {
	opt, _ := newOpt()
	l := moa.Literal(moa.NewIntList(1, 2, 3))
	_, traces, err := opt.Optimize(moa.SelectB(moa.ProjectToBag(l), moa.Int(1), moa.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(traces)
	if !strings.Contains(text, "inter-object") || !strings.Contains(text, "pushdown-select-projecttobag") {
		t.Errorf("explain output missing expected content:\n%s", text)
	}
	if Explain(nil) != "(no rewrites applied)\n" {
		t.Error("empty trace rendering")
	}
}

// genExpr builds a random type-correct expression over INT containers and
// returns it. Depth bounds recursion.
func genExpr(rng *xrand.RNG, depth int) *moa.Expr {
	// Random literal list, sometimes sorted.
	n := rng.Intn(30)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(50))
	}
	lit := moa.NewIntList(xs...)
	e := moa.Literal(lit)
	kind := moa.KindList
	for d := 0; d < depth; d++ {
		lo := moa.Int(int64(rng.Intn(50)))
		hi := moa.Int(int64(rng.Intn(50)))
		switch kind {
		case moa.KindList:
			switch rng.Intn(6) {
			case 0:
				e = moa.SelectL(e, lo, hi)
			case 1:
				e = moa.SortL(e)
			case 2:
				e = moa.TopNL(e, int64(rng.Intn(10)))
			case 3:
				e = moa.ProjectToBag(e)
				kind = moa.KindBag
			case 4:
				e = moa.SelectL(moa.SortL(e), lo, hi)
			case 5:
				e = moa.TopNL(moa.SortL(e), int64(rng.Intn(10)))
			}
		case moa.KindBag:
			switch rng.Intn(4) {
			case 0:
				e = moa.SelectB(e, lo, hi)
			case 1:
				e = moa.ToListB(e)
				kind = moa.KindList
			case 2:
				e = moa.ToSetB(e)
				kind = moa.KindSet
			case 3:
				e = moa.TopNB(e, int64(rng.Intn(10)))
				kind = moa.KindList
			}
		case moa.KindSet:
			switch rng.Intn(2) {
			case 0:
				e = moa.SelectS(e, lo, hi)
			case 1:
				e = moa.ToListS(e)
				kind = moa.KindList
			}
		}
	}
	return e
}

// TestRandomizedSemanticPreservation optimizes random expressions and
// checks the result value never changes — the safety property every rule
// must uphold.
func TestRandomizedSemanticPreservation(t *testing.T) {
	rng := xrand.New(2024)
	opt, reg := newOpt()
	for trial := 0; trial < 400; trial++ {
		e := genExpr(rng, 1+rng.Intn(5))
		if _, err := reg.TypeOf(e); err != nil {
			t.Fatalf("generator produced ill-typed expression %s: %v", e, err)
		}
		optimized, traces, err := opt.Optimize(e)
		if err != nil {
			t.Fatalf("trial %d: optimize %s: %v", trial, e, err)
		}
		want, _ := mustEval(t, reg, e)
		got, _ := mustEval(t, reg, optimized)
		if !moa.Equal(got, want) {
			t.Fatalf("trial %d: %s\noptimized to %s\nresult %s != %s\ntrace:\n%s",
				trial, e, optimized, got, want, Explain(traces))
		}
	}
}

// TestRandomizedWorkNeverIncreasesMuch verifies the optimizer's rewrites
// do not pessimize: total logical work of the optimized plan must not
// exceed the original beyond a small constant slack (binary search on very
// short lists can cost a few extra comparisons).
func TestRandomizedWorkNeverIncreasesMuch(t *testing.T) {
	rng := xrand.New(77)
	opt, reg := newOpt()
	for trial := 0; trial < 200; trial++ {
		e := genExpr(rng, 1+rng.Intn(4))
		optimized, _, err := opt.Optimize(e)
		if err != nil {
			t.Fatal(err)
		}
		_, before := mustEval(t, reg, e)
		_, after := mustEval(t, reg, optimized)
		workBefore := before.ElementsVisited + before.Comparisons
		workAfter := after.ElementsVisited + after.Comparisons
		if workAfter > workBefore+64 {
			t.Fatalf("trial %d: work grew %d -> %d\n%s\n-> %s", trial, workBefore, workAfter, e, optimized)
		}
	}
}
