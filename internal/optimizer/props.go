// Package optimizer implements the paper's Step 2: a three-layer
// rewriting optimizer for the Moa algebra.
//
// The layers, from the paper:
//
//   - the general logical layer applies algebra-wide rules that need no
//     knowledge of specific extensions (selection merging, idempotent
//     sorts, constant folding of counts);
//   - the *inter-object* layer — the paper's novel contribution — rewrites
//     nestings of operators from distinct extensions, such as Example 1's
//     select∘projecttobag commutation, which no per-extension optimizer
//     (including PREDATOR's E-ADTs) can see;
//   - the intra-object layer plays the role of E-ADT optimizers: within
//     one extension it replaces logical operators by cheaper physical
//     variants whose preconditions (sortedness) it can prove.
//
// Rewrites never change results: every rule preserves value semantics, and
// the test suite verifies this property on randomized expressions.
package optimizer

import (
	"repro/internal/moa"
)

// Props derives static physical properties of expressions. Property
// derivation is the knowledge the intra-object layer needs that the type
// system does not carry — here, whether a (sub)expression is guaranteed to
// produce an ascending-sorted LIST.
type Props struct {
	Reg *moa.Registry
}

// SortedAsc reports whether e provably yields a LIST sorted ascending by
// value. The derivation is conservative: false means "unknown", and only
// operators whose contracts guarantee order propagate it.
func (p *Props) SortedAsc(e *moa.Expr) bool {
	switch e.Op {
	case moa.OpLit:
		l, ok := e.Lit.(*moa.List)
		if !ok {
			return false
		}
		// Conservative on incomparable elements: "unknown" is false.
		sorted, err := moa.IsSortedAsc(l)
		return err == nil && sorted
	case "list.sort":
		// Sorting establishes the property unconditionally.
		return true
	case "set.tolist":
		// The SET extension defines its list projection as value-sorted.
		return true
	case "list.select", "list.select.binsearch":
		// Range selection preserves relative order, hence sortedness.
		return p.SortedAsc(e.Children[0])
	case "list.concat":
		// Concatenation of sorted lists is sorted only if provably
		// boundary-compatible, which we cannot see statically.
		return false
	default:
		return false
	}
}
