package optimizer

import (
	"repro/internal/moa"
)

// Layer identifies which optimizer layer a rule belongs to. Layers run in
// the order the paper prescribes: general logical rules first, then the
// inter-object layer, then intra-object physical selection.
type Layer int

// The optimizer layers.
const (
	LayerLogical Layer = iota
	LayerInterObject
	LayerIntraObject
)

// String names the layer for rewrite traces.
func (l Layer) String() string {
	switch l {
	case LayerLogical:
		return "logical"
	case LayerInterObject:
		return "inter-object"
	case LayerIntraObject:
		return "intra-object"
	default:
		return "unknown"
	}
}

// Rule is one rewrite. Apply inspects the root of e and, on match, returns
// the replacement tree and true. Children have already been optimized when
// Apply runs (bottom-up application); rules must not mutate e.
type Rule struct {
	Name  string
	Layer Layer
	Apply func(e *moa.Expr, p *Props) (*moa.Expr, bool)
}

// minValue/maxValue pick bound intersections for select-select merging.
func maxValue(a, b moa.Value) moa.Value {
	if moa.Equal(a, b) {
		return a
	}
	if c, err := moa.Compare(a, b); err == nil && c >= 0 {
		return a
	}
	return b
}

func minValue(a, b moa.Value) moa.Value {
	if moa.Equal(a, b) {
		return a
	}
	if c, err := moa.Compare(a, b); err == nil && c <= 0 {
		return a
	}
	return b
}

// DefaultRules returns the built-in rule set of all three layers.
func DefaultRules() []Rule {
	return []Rule{
		// ---- General logical layer -----------------------------------

		{
			// select(select(x, a, b), c, d) → select(x, max(a,c), min(b,d))
			// within any one extension that has a range select.
			Name: "merge-selects", Layer: LayerLogical,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if !isRangeSelect(e.Op) || len(e.Children) != 1 {
					return nil, false
				}
				c := e.Children[0]
				if c.Op != e.Op {
					return nil, false
				}
				lo := maxValue(e.Params[0], c.Params[0])
				hi := minValue(e.Params[1], c.Params[1])
				return moa.NewExpr(e.Op, []moa.Value{lo, hi}, c.Children[0]), true
			},
		},
		{
			// sort(sort(x)) → sort(x).
			Name: "idempotent-sort", Layer: LayerLogical,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op == "list.sort" && e.Children[0].Op == "list.sort" {
					return e.Children[0], true
				}
				return nil, false
			},
		},
		{
			// projectfield(topnby(x, f, n), f) → topn(projectfield(x, f), n):
			// extracting the ranking key of a by-field top-N equals the
			// plain top-N over the extracted keys. The rewrite moves work
			// from tuple space into atomic space, where the intra-object
			// layer has cheaper physical operators.
			Name: "project-through-topnby", Layer: LayerLogical,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "list.projectfield" || e.Children[0].Op != "list.topnby" {
					return nil, false
				}
				inner := e.Children[0]
				if !moa.Equal(e.Params[0], inner.Params[0]) {
					return nil, false // different field: keep the tuple top-N
				}
				proj := moa.NewExpr("list.projectfield", []moa.Value{e.Params[0]}, inner.Children[0])
				return moa.NewExpr("list.topn", []moa.Value{inner.Params[1]}, proj), true
			},
		},
		{
			// topn(topn(x, a), b) → topn(x, min(a,b)) in the same extension.
			Name: "merge-topn", Layer: LayerLogical,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "list.topn" || e.Children[0].Op != "list.topn" {
					return nil, false
				}
				n := minValue(e.Params[0], e.Children[0].Params[0])
				return moa.NewExpr("list.topn", []moa.Value{n}, e.Children[0].Children[0]), true
			},
		},

		// ---- Inter-object layer (the paper's new contribution) -------

		{
			// Example 1: select(projecttobag(x), lo, hi) →
			//            projecttobag(select(x, lo, hi)).
			// The select moves from the BAG extension into the LIST
			// extension below the structure conversion, where the list's
			// ordering becomes exploitable by the intra-object layer.
			Name: "pushdown-select-projecttobag", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "bag.select" || e.Children[0].Op != "list.projecttobag" {
					return nil, false
				}
				inner := e.Children[0].Children[0]
				sel := moa.NewExpr("list.select", e.Params, inner)
				return moa.NewExpr("list.projecttobag", nil, sel), true
			},
		},
		{
			// select(tolist(x), lo, hi) → tolist(select(x, lo, hi)):
			// the mirror rewrite from LIST into BAG. Selection commutes
			// with the conversion because both sides filter the same
			// multiset; pushing it down shrinks the converted volume.
			Name: "pushdown-select-tolist", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "list.select" || e.Children[0].Op != "bag.tolist" {
					return nil, false
				}
				inner := e.Children[0].Children[0]
				sel := moa.NewExpr("bag.select", e.Params, inner)
				return moa.NewExpr("bag.tolist", nil, sel), true
			},
		},
		{
			// select(toset(x), lo, hi) → toset(select(x, lo, hi)):
			// SET/BAG variant; valid because range selection commutes with
			// duplicate elimination.
			Name: "pushdown-select-toset", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "set.select" || e.Children[0].Op != "bag.toset" {
					return nil, false
				}
				inner := e.Children[0].Children[0]
				sel := moa.NewExpr("bag.select", e.Params, inner)
				return moa.NewExpr("bag.toset", nil, sel), true
			},
		},
		{
			// count(projecttobag(x)) → count(x): structure conversion
			// preserves cardinality, so the conversion can be elided
			// entirely — an inter-object rewrite PREDATOR-style E-ADTs
			// cannot express because the two counts belong to different
			// extensions.
			Name: "count-through-projecttobag", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "bag.count" || e.Children[0].Op != "list.projecttobag" {
					return nil, false
				}
				return moa.NewExpr("list.count", nil, e.Children[0].Children[0]), true
			},
		},
		{
			// count(tolist(x)) → count(x), the mirror image.
			Name: "count-through-tolist", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "list.count" || e.Children[0].Op != "bag.tolist" {
					return nil, false
				}
				return moa.NewExpr("bag.count", nil, e.Children[0].Children[0]), true
			},
		},
		{
			// topn(projecttobag(x), n) → topn(x, n): the paper's "special
			// top N operators... can be seen as special select operators",
			// pushed through structure conversion just like selects. The
			// BAG top-N produces a LIST; the LIST top-N produces the same
			// list directly.
			Name: "pushdown-topn-projecttobag", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "bag.topn" || e.Children[0].Op != "list.projecttobag" {
					return nil, false
				}
				inner := e.Children[0].Children[0]
				return moa.NewExpr("list.topn", e.Params, inner), true
			},
		},
		{
			// topn(tolist(x), n) → topn(x, n): LIST top-N over a converted
			// bag is the BAG extension's own top-N.
			Name: "pushdown-topn-tolist", Layer: LayerInterObject,
			Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
				if e.Op != "list.topn" || e.Children[0].Op != "bag.tolist" {
					return nil, false
				}
				inner := e.Children[0].Children[0]
				return moa.NewExpr("bag.topn", e.Params, inner), true
			},
		},

		// ---- Intra-object layer (E-ADT style physical selection) -----

		{
			// select(x) → binary-search select when x is provably sorted.
			// This is the payoff the paper sketches after Example 1: "the
			// second expression can be evaluated even more efficiently
			// when the system is aware of the ordering of the elements".
			Name: "list-select-binsearch", Layer: LayerIntraObject,
			Apply: func(e *moa.Expr, p *Props) (*moa.Expr, bool) {
				if e.Op != "list.select" || !p.SortedAsc(e.Children[0]) {
					return nil, false
				}
				return moa.NewExpr("list.select.binsearch", e.Params, e.Children[0]), true
			},
		},
		{
			// topn(x, n) → suffix-take when x is provably sorted.
			Name: "list-topn-sorted", Layer: LayerIntraObject,
			Apply: func(e *moa.Expr, p *Props) (*moa.Expr, bool) {
				if e.Op != "list.topn" || !p.SortedAsc(e.Children[0]) {
					return nil, false
				}
				return moa.NewExpr("list.topn.sorted", e.Params, e.Children[0]), true
			},
		},
		{
			// sort(x) → x when x is provably sorted.
			Name: "elide-sort", Layer: LayerIntraObject,
			Apply: func(e *moa.Expr, p *Props) (*moa.Expr, bool) {
				if e.Op != "list.sort" || !p.SortedAsc(e.Children[0]) {
					return nil, false
				}
				return e.Children[0], true
			},
		},
	}
}

// isRangeSelect reports whether op is one of the extensions' logical range
// selections (physical variants excluded: merging across a physical
// operator would discard its precondition analysis).
func isRangeSelect(op string) bool {
	switch op {
	case "list.select", "bag.select", "set.select":
		return true
	}
	return false
}
