package optimizer

import (
	"fmt"

	"repro/internal/moa"
)

// Trace records one applied rewrite for explain output.
type Trace struct {
	Rule   string
	Layer  Layer
	Before string
	After  string
}

// Optimizer rewrites algebra expressions to cheaper equivalents using the
// three-layer rule architecture of the paper.
type Optimizer struct {
	Reg   *moa.Registry
	Props *Props
	rules []Rule
	// MaxPasses bounds fixpoint iteration; the default comfortably covers
	// every rule chain the built-in set can produce.
	MaxPasses int
}

// New returns an optimizer over reg with the default rule set.
func New(reg *moa.Registry) *Optimizer {
	return &Optimizer{
		Reg:       reg,
		Props:     &Props{Reg: reg},
		rules:     DefaultRules(),
		MaxPasses: 16,
	}
}

// AddRule appends a custom rule (an extension registering its own
// optimizations, in Moa's spirit).
func (o *Optimizer) AddRule(r Rule) { o.rules = append(o.rules, r) }

// Rules returns the rules of one layer, preserving order.
func (o *Optimizer) Rules(layer Layer) []Rule {
	var out []Rule
	for _, r := range o.rules {
		if r.Layer == layer {
			out = append(out, r)
		}
	}
	return out
}

// Optimize rewrites e to a fixpoint and returns the result with the
// rewrite trace. The input tree is not modified. The result is always
// type-correct: Optimize type-checks the final tree and fails loudly if a
// rule produced an ill-typed plan (a rule bug, never a user error).
func (o *Optimizer) Optimize(e *moa.Expr) (*moa.Expr, []Trace, error) {
	if _, err := o.Reg.TypeOf(e); err != nil {
		return nil, nil, fmt.Errorf("optimizer: input does not type-check: %w", err)
	}
	cur := e.Clone()
	var traces []Trace
	// Layer order per the paper: logical, inter-object, intra-object.
	// Looping over the whole sequence lets an inter-object rewrite expose
	// new logical opportunities and vice versa.
	for pass := 0; pass < o.MaxPasses; pass++ {
		changed := false
		for _, layer := range []Layer{LayerLogical, LayerInterObject, LayerIntraObject} {
			next, layerTraces := o.applyLayer(cur, layer)
			if len(layerTraces) > 0 {
				changed = true
				traces = append(traces, layerTraces...)
				cur = next
			}
		}
		if !changed {
			break
		}
	}
	if _, err := o.Reg.TypeOf(cur); err != nil {
		return nil, traces, fmt.Errorf("optimizer: produced ill-typed plan %s: %w", cur, err)
	}
	return cur, traces, nil
}

// applyLayer rewrites bottom-up with the rules of a single layer until
// that layer reaches a local fixpoint.
func (o *Optimizer) applyLayer(e *moa.Expr, layer Layer) (*moa.Expr, []Trace) {
	rules := o.Rules(layer)
	var traces []Trace
	for {
		next, tr := o.rewriteOnce(e, rules)
		if tr == nil {
			return e, traces
		}
		traces = append(traces, *tr)
		e = next
	}
}

// rewriteOnce performs the first matching rewrite found in a bottom-up
// traversal, returning the new tree. It returns a nil trace when nothing
// matched.
func (o *Optimizer) rewriteOnce(e *moa.Expr, rules []Rule) (*moa.Expr, *Trace) {
	// Recurse into children first (bottom-up).
	for i, c := range e.Children {
		nc, tr := o.rewriteOnce(c, rules)
		if tr != nil {
			out := shallowCopy(e)
			out.Children[i] = nc
			return out, tr
		}
	}
	for _, r := range rules {
		if next, ok := r.Apply(e, o.Props); ok {
			return next, &Trace{
				Rule:   r.Name,
				Layer:  r.Layer,
				Before: e.String(),
				After:  next.String(),
			}
		}
	}
	return e, nil
}

// shallowCopy duplicates a node, sharing grandchildren.
func shallowCopy(e *moa.Expr) *moa.Expr {
	out := &moa.Expr{Op: e.Op, Lit: e.Lit}
	out.Params = append([]moa.Value(nil), e.Params...)
	out.Children = append([]*moa.Expr(nil), e.Children...)
	return out
}

// Explain renders a rewrite trace as indented text for the shell and the
// examples.
func Explain(traces []Trace) string {
	if len(traces) == 0 {
		return "(no rewrites applied)\n"
	}
	out := ""
	for i, t := range traces {
		out += fmt.Sprintf("%2d. [%s] %s\n      %s\n   -> %s\n", i+1, t.Layer, t.Rule, t.Before, t.After)
	}
	return out
}
