package optimizer

import (
	"testing"

	"repro/internal/moa"
)

// TestCustomExtensionRule verifies the extensibility story the paper's
// architecture depends on: a new extension can register an operator and
// contribute its own rewrite rule, and the optimizer applies it alongside
// the built-in layers.
func TestCustomExtensionRule(t *testing.T) {
	reg := moa.NewRegistry()
	// A toy "stats" extension with a sum over lists.
	err := reg.Register(&moa.OpDef{
		Name: "stats.sum", Extension: "stats", NumChildren: 1, NumParams: 0,
		ResultType: func(children []moa.Type, _ []moa.Value) (moa.Type, error) {
			return moa.Type{Kind: moa.KindInt}, nil
		},
		Eval: func(ev *moa.Evaluator, args, _ []moa.Value) (moa.Value, error) {
			l := args[0].(*moa.List)
			var s int64
			for _, e := range l.Elems {
				s += int64(e.(moa.Int))
			}
			return moa.Int(s), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := New(reg)
	// Inter-object rule contributed by the extension: summing a sorted
	// list is the same as summing the unsorted one — elide the sort.
	opt.AddRule(Rule{
		Name:  "stats-sum-ignores-order",
		Layer: LayerInterObject,
		Apply: func(e *moa.Expr, _ *Props) (*moa.Expr, bool) {
			if e.Op != "stats.sum" || e.Children[0].Op != "list.sort" {
				return nil, false
			}
			return moa.NewExpr("stats.sum", nil, e.Children[0].Children[0]), true
		},
	})
	lit := moa.Literal(moa.NewIntList(3, 1, 2))
	expr := moa.NewExpr("stats.sum", nil, moa.SortL(lit))
	optimized, traces, err := opt.Optimize(expr)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Children[0].Op != moa.OpLit {
		t.Fatalf("custom rule not applied: %s", optimized)
	}
	found := false
	for _, tr := range traces {
		if tr.Rule == "stats-sum-ignores-order" {
			found = true
		}
	}
	if !found {
		t.Error("custom rule missing from trace")
	}
	ev := moa.NewEvaluator(reg)
	v, err := ev.Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	if v != moa.Int(6) {
		t.Errorf("sum = %s", v)
	}
}

// TestStringListSelect exercises the algebra's STR atomics end to end:
// range selection over strings, pushdown, and binary search on a sorted
// string list.
func TestStringListSelect(t *testing.T) {
	reg := moa.NewRegistry()
	opt := New(reg)
	l := &moa.List{Elems: []moa.Value{
		moa.Str("apple"), moa.Str("banana"), moa.Str("cherry"), moa.Str("date"),
	}}
	expr := moa.SelectB(moa.ProjectToBag(moa.Literal(l)), moa.Str("b"), moa.Str("d"))
	optimized, _, err := opt.Optimize(expr)
	if err != nil {
		t.Fatal(err)
	}
	// The literal is sorted, so the full chain should fire.
	if optimized.Children[0].Op != "list.select.binsearch" {
		t.Fatalf("plan = %s", optimized)
	}
	ev := moa.NewEvaluator(reg)
	got, err := ev.Eval(optimized)
	if err != nil {
		t.Fatal(err)
	}
	want := &moa.Bag{Elems: []moa.Value{moa.Str("banana"), moa.Str("cherry")}}
	if !moa.Equal(got, want) {
		t.Errorf("result = %s, want %s", got, want)
	}
}
