package optimizer

import (
	"testing"

	"repro/internal/moa"
)

// rankedDocs builds a LIST<TUPLE<INT,INT>> literal of (doc, score) pairs.
func rankedDocs(pairs ...[2]int64) *moa.Expr {
	l := &moa.List{Elems: make([]moa.Value, len(pairs))}
	for i, p := range pairs {
		l.Elems[i] = moa.NewTuple(moa.Int(p[0]), moa.Int(p[1]))
	}
	return moa.Literal(l)
}

// TestProjectThroughTopNByApplied: the ranked-document motif — "give me
// the top-n scores" phrased over tuples — is rewritten into atomic space
// and preserves semantics.
func TestProjectThroughTopNByApplied(t *testing.T) {
	opt, reg := newOpt()
	docs := rankedDocs([2]int64{1, 40}, [2]int64{2, 95}, [2]int64{3, 60}, [2]int64{4, 10})
	orig := moa.ProjectFieldL(moa.TopNByL(docs, 1, 2), 1)
	optimized, traces, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	applied := false
	for _, tr := range traces {
		if tr.Rule == "project-through-topnby" {
			applied = true
		}
	}
	if !applied {
		t.Fatalf("rule not applied; plan: %s\n%s", optimized, Explain(traces))
	}
	if optimized.Op != "list.topn" {
		t.Fatalf("root = %s, want list.topn", optimized.Op)
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatalf("semantics changed: %s vs %s", got, want)
	}
	if !moa.Equal(got, moa.NewIntList(95, 60)) {
		t.Fatalf("result = %s", got)
	}
}

// TestProjectThroughTopNByDifferentFieldNotApplied: projecting a field
// other than the ranking key must keep the tuple top-N (the identity does
// not hold there).
func TestProjectThroughTopNByDifferentFieldNotApplied(t *testing.T) {
	opt, reg := newOpt()
	docs := rankedDocs([2]int64{1, 40}, [2]int64{2, 95}, [2]int64{3, 60})
	orig := moa.ProjectFieldL(moa.TopNByL(docs, 1, 2), 0) // project doc ids
	optimized, _, err := opt.Optimize(orig)
	if err != nil {
		t.Fatal(err)
	}
	if optimized.Op != "list.projectfield" || optimized.Children[0].Op != "list.topnby" {
		t.Fatalf("plan changed shape unexpectedly: %s", optimized)
	}
	want, _ := mustEval(t, reg, orig)
	got, _ := mustEval(t, reg, optimized)
	if !moa.Equal(got, want) {
		t.Fatal("semantics changed")
	}
	// The answer is the doc ids of the two best-scoring documents.
	if !moa.Equal(got, moa.NewIntList(2, 3)) {
		t.Fatalf("result = %s", got)
	}
}
