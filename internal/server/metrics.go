package server

import (
	"math"
	"sync"
	"time"
)

// latencyBuckets is the number of power-of-two microsecond buckets the
// latency histogram keeps: bucket i counts observations in
// [2^i, 2^(i+1)) microseconds, the last bucket catching everything
// beyond ~1.2 hours. Log-spaced buckets keep the histogram small and
// lock-cheap while resolving the p50/p99 spread the ops endpoints
// report.
const latencyBuckets = 32

// qpsWindow is the length, in seconds, of the sliding window behind the
// qps gauge.
const qpsWindow = 10

// histogram is a log-bucketed latency histogram. One mutex guards it:
// observations are a few arithmetic ops, so contention is negligible
// next to the query work they measure.
type histogram struct {
	mu      sync.Mutex
	buckets [latencyBuckets]int64
	count   int64
	sum     time.Duration
}

func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < latencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// quantile estimates the q-th latency quantile as the midpoint —
// geometric mean of the edges, the natural center of a log-spaced
// bucket — of the bucket holding the q-th observation. Returning the
// top edge instead would overstate the quantile by up to 2× (a p50
// above every observation); the midpoint bounds the error to a factor
// of √2 either way. Zero when the histogram is empty.
func (h *histogram) quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			// Bucket i spans [2^i, 2^(i+1)) µs; its geometric center is
			// 2^i·√2 µs. Computed in nanoseconds to keep sub-µs precision.
			return time.Duration(float64(int64(1)<<uint(i)) * math.Sqrt2 * float64(time.Microsecond))
		}
	}
	return h.sum // unreachable; the last bucket catches everything
}

// Metrics aggregates the serving counters the /metrics endpoint
// exports. The zero value is NOT ready: use newMetrics, which pins the
// start time and clock.
type Metrics struct {
	now   func() time.Time
	start time.Time

	latency histogram

	mu       sync.Mutex
	requests int64 // requests accepted into handling (after parsing)
	served   int64 // queries answered 200
	shed     int64 // rejected 429 by admission or rate limit
	failed   int64 // 4xx/5xx other than shed
	panics   int64 // handler panics recovered
	inFlight int64 // currently executing search requests

	// sliding one-second slots for the windowed qps gauge
	slots    [qpsWindow]int64
	slotBase int64 // unix second of slots[slotIdx]
	slotIdx  int
}

func newMetrics(now func() time.Time) *Metrics {
	if now == nil {
		now = time.Now
	}
	return &Metrics{now: now, start: now()}
}

// advanceLocked rotates the per-second qps slots up to the current
// second, zeroing the seconds skipped.
func (m *Metrics) advanceLocked(sec int64) {
	if m.slotBase == 0 {
		m.slotBase = sec
		return
	}
	for m.slotBase < sec {
		m.slotBase++
		m.slotIdx = (m.slotIdx + 1) % qpsWindow
		m.slots[m.slotIdx] = 0
	}
}

// Request counts one accepted search request and returns a done
// function that records the outcome; exactly one of the outcome
// recorders must be called.
func (m *Metrics) request() {
	sec := m.now().Unix()
	m.mu.Lock()
	m.requests++
	m.inFlight++
	m.advanceLocked(sec)
	m.slots[m.slotIdx]++
	m.mu.Unlock()
}

func (m *Metrics) doneServed(d time.Duration) {
	m.latency.observe(d)
	m.mu.Lock()
	m.served++
	m.inFlight--
	m.mu.Unlock()
}

func (m *Metrics) doneShed() {
	m.mu.Lock()
	m.shed++
	m.inFlight--
	m.mu.Unlock()
}

func (m *Metrics) doneFailed() {
	m.mu.Lock()
	m.failed++
	m.inFlight--
	m.mu.Unlock()
}

func (m *Metrics) recoveredPanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// MetricsSnapshot is the JSON shape of /metrics (server half; the
// backend contributes the index fields).
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Requests  int64   `json:"requests_total"`
	Served    int64   `json:"served_total"`
	Shed      int64   `json:"shed_total"`
	Failed    int64   `json:"failed_total"`
	Panics    int64   `json:"panics_total"`
	InFlight  int64   `json:"in_flight"`
	QPS       float64 `json:"qps"`
	P50Ms     float64 `json:"latency_p50_ms"`
	P99Ms     float64 `json:"latency_p99_ms"`
}

// Snapshot captures the current counters. QPS is the mean arrival rate
// over the trailing window (process lifetime when shorter).
func (m *Metrics) Snapshot() MetricsSnapshot {
	sec := m.now().Unix()
	uptime := m.now().Sub(m.start).Seconds()
	m.mu.Lock()
	m.advanceLocked(sec)
	var windowed int64
	for _, c := range m.slots {
		windowed += c
	}
	s := MetricsSnapshot{
		UptimeSec: uptime,
		Requests:  m.requests,
		Served:    m.served,
		Shed:      m.shed,
		Failed:    m.failed,
		Panics:    m.panics,
		InFlight:  m.inFlight,
	}
	m.mu.Unlock()
	window := float64(qpsWindow)
	if uptime < window {
		window = uptime
	}
	if window > 0 {
		s.QPS = float64(windowed) / window
	}
	s.P50Ms = float64(m.latency.quantile(0.50)) / float64(time.Millisecond)
	s.P99Ms = float64(m.latency.quantile(0.99)) / float64(time.Millisecond)
	return s
}
