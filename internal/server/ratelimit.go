package server

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket: each client key (the remote
// host) accrues rate tokens per second up to burst, and a request
// spends one. The zero-dependency constraint rules out
// golang.org/x/time/rate; this is the same algorithm with an
// injectable clock so tests control time.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	clients map[string]*bucket
	// maxClients bounds the tracked-client map; when exceeded, buckets
	// that have refilled to full (i.e. idle long enough to carry no
	// state) are swept. A full bucket behaves identically to an absent
	// one, so the sweep never changes admission decisions.
	maxClients int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter, or nil when rate <= 0 (disabled;
// the nil receiver allows every request).
func newRateLimiter(rate, burst float64, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{
		rate:       rate,
		burst:      burst,
		now:        now,
		clients:    make(map[string]*bucket),
		maxClients: 10000,
	}
}

// allow reports whether the client may proceed; when it may not,
// retryAfter estimates how long until a token accrues.
func (rl *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if rl == nil {
		return true, 0
	}
	t := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.clients[key]
	if b == nil {
		if len(rl.clients) >= rl.maxClients {
			rl.sweepLocked(t)
		}
		b = &bucket{tokens: rl.burst, last: t}
		rl.clients[key] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rl.rate
	return false, time.Duration(need * float64(time.Second))
}

// sweepLocked drops buckets that have idled back to full.
func (rl *rateLimiter) sweepLocked(t time.Time) {
	for k, b := range rl.clients {
		if b.tokens+t.Sub(b.last).Seconds()*rl.rate >= rl.burst {
			delete(rl.clients, k)
		}
	}
}
