// Package server is the network front end of the live index: an
// HTTP/JSON facade over live.Open that adds the operational hardening
// the in-process API deliberately leaves out — per-request deadlines
// threaded down to postings-block granularity, bounded admission with
// load shedding instead of unbounded queue growth, per-client rate
// limiting, ops endpoints, and graceful drain on shutdown.
//
// The serving layer never re-ranks: a request admitted here produces
// exactly the bytes the in-process live.Searcher would produce for the
// same query against the same snapshot (the LOAD benchmark's
// equivalence gate holds the layer to that), so everything in this
// package is scheduling, not scoring.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/tune"
)

// ErrUnavailable marks a backend that currently has nothing to serve
// from — e.g. a coordinator whose every replica is unreachable. The
// search handler maps it to 503 (retryable) instead of 500.
var ErrUnavailable = errors.New("server: backend unavailable")

// Backend is the slice of the live layer the server drives. It is an
// interface so handler tests can stand in a stub that blocks, fails, or
// panics on command.
type Backend interface {
	// SearchContext evaluates one query against a fresh snapshot,
	// observing ctx at postings-block granularity.
	SearchContext(ctx context.Context, terms []string, n int) (live.Result, error)
	// Stats reports the writer's point-in-time accounting (generation,
	// segment count, document counts).
	Stats() live.WriterStats
	// Counters sums the decode/skip/fault counters across the current
	// snapshot's segments.
	Counters() (decoded, skips, faulted int64)
	// FaultStats reports the fault account of the live index: quarantined
	// segments, retry/fault totals, degraded-query count.
	FaultStats() live.FaultStats
	// CacheStats reports the query-path cache layers' counters: result
	// cache, hot-block cache, and per-generation bound memos.
	CacheStats() live.CacheStats
	// Close releases the backend. The server calls it at the end of
	// Shutdown, after in-flight queries drain.
	Close() error
}

// liveBackend adapts *live.Writer to Backend.
type liveBackend struct {
	w *live.Writer
	s *live.Searcher
}

// NewLiveBackend wraps a live writer as the server's backend.
func NewLiveBackend(w *live.Writer) Backend {
	return &liveBackend{w: w, s: w.Searcher()}
}

func (b *liveBackend) SearchContext(ctx context.Context, terms []string, n int) (live.Result, error) {
	return b.s.SearchContext(ctx, terms, n)
}

func (b *liveBackend) Stats() live.WriterStats { return b.w.Stats() }

func (b *liveBackend) Counters() (decoded, skips, faulted int64) {
	snap, err := b.w.Acquire()
	if err != nil {
		return 0, 0, 0
	}
	defer snap.Close()
	return snap.Counters()
}

func (b *liveBackend) FaultStats() live.FaultStats { return b.w.FaultStats() }

func (b *liveBackend) CacheStats() live.CacheStats { return b.w.CacheStats() }

func (b *liveBackend) Close() error { return b.w.Close() }

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing searches. Default 16.
	MaxInFlight int
	// QueueDepth bounds searches waiting for an execution slot; beyond
	// it requests are shed with 429. Default 64.
	QueueDepth int
	// DefaultTimeout is the per-query deadline when the request carries
	// none. Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a request may ask for. Default 30s.
	MaxTimeout time.Duration
	// MaxN caps the result count a request may ask for. Default 1000.
	MaxN int
	// MaxTerms caps the term count of one query. Default 32.
	MaxTerms int
	// RatePerClient is the sustained per-client request rate
	// (requests/second); 0 disables rate limiting.
	RatePerClient float64
	// Burst is the per-client burst allowance when rate limiting is on.
	// Default 2×RatePerClient (floor 1).
	Burst float64
	// RetryAfter is the Retry-After hint on shed responses. Default 1s.
	RetryAfter time.Duration
	// now is the injectable clock (tests); nil means time.Now.
	now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxN == 0 {
		c.MaxN = 1000
	}
	if c.MaxTerms == 0 {
		c.MaxTerms = 32
	}
	if c.Burst == 0 {
		c.Burst = 2 * c.RatePerClient
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server serves the live index over HTTP. Create with New, attach to a
// listener with Serve (or use Handler for tests), stop with Shutdown.
type Server struct {
	cfg     Config
	backend Backend
	metrics *Metrics
	admit   *admission
	limiter *rateLimiter
	mux     *http.ServeMux
	http    *http.Server

	// replStats, when set, adds the replication role's account to
	// /metrics. See SetReplStats.
	replStats func() ReplicationStats
	// tuneStats, when set, adds the self-tuning account to /metrics and
	// serves it on /tune. See SetTuneStats.
	tuneStats func() tune.Stats

	draining atomic.Bool
}

// New builds a server over backend.
func New(backend Backend, cfg Config) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("server: nil backend")
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:     cfg,
		backend: backend,
		metrics: newMetrics(cfg.now),
		admit:   newAdmission(cfg.MaxInFlight, cfg.QueueDepth),
		limiter: newRateLimiter(cfg.RatePerClient, cfg.Burst, cfg.now),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/search", s.recovered(s.handleSearch))
	s.mux.HandleFunc("/healthz", s.recovered(s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.recovered(s.handleMetrics))
	s.mux.HandleFunc("/tune", s.recovered(s.handleTune))
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// Handler exposes the routing for in-process tests (httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Mount registers an additional handler subtree (e.g. the replication
// pull endpoints under "/repl/") behind the server's panic guard. Call
// it after New and before Serve — the mux is not safe to mutate while
// serving.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mux.HandleFunc(pattern, s.recovered(h.ServeHTTP))
}

// ReplicationStats is the replication role's account on /metrics. Role
// says which shape this process serves ("leader", "follower", or
// "coordinator"); Ordinal is the manifest generation it is at (for a
// coordinator: the newest generation observed across the fleet). The
// remaining counters are role-specific and omitted when zero.
type ReplicationStats struct {
	Role    string `json:"repl_role"`
	Ordinal uint64 `json:"repl_ordinal"`
	// Leader side: pull traffic served to followers.
	ManifestsServed int64 `json:"repl_manifests_served,omitempty"`
	FilesServed     int64 `json:"repl_files_served,omitempty"`
	BytesServed     int64 `json:"repl_bytes_served,omitempty"`
	// Follower side: sync progress against the leader. LagGenerations is
	// leader ordinal minus local ordinal as of the last manifest fetch —
	// 0 means caught up.
	Syncs          int64  `json:"repl_syncs,omitempty"`
	SyncFailures   int64  `json:"repl_sync_failures,omitempty"`
	SegmentsPulled int64  `json:"repl_segments_pulled,omitempty"`
	FilesPulled    int64  `json:"repl_files_pulled,omitempty"`
	BytesPulled    int64  `json:"repl_bytes_pulled,omitempty"`
	CRCRetries     int64  `json:"repl_crc_retries,omitempty"`
	LagGenerations uint64 `json:"repl_lag_generations,omitempty"`
	// Coordinator side: scatter/gather accounting.
	Replicas       int   `json:"repl_replicas,omitempty"`
	Fanouts        int64 `json:"repl_fanouts,omitempty"`
	DegradedMerges int64 `json:"repl_degraded_merges,omitempty"`
}

// SetReplStats installs the replication reporter sampled by /metrics.
// Call it after New and before Serve; nil leaves replication fields off
// the payload (the default for a standalone node).
func (s *Server) SetReplStats(fn func() ReplicationStats) { s.replStats = fn }

// SetTuneStats installs the self-tuning reporter sampled by /metrics
// and served in full (decision log included) on /tune. Call it after
// New and before Serve; nil (the default) answers /tune with a disabled
// tuner and leaves the tune block off /metrics. live.Writer.TuneStats
// is the intended reporter — it is nil-safe, so a statically configured
// node can install it unconditionally.
func (s *Server) SetTuneStats(fn func() tune.Stats) { s.tuneStats = fn }

// handleTune serves the tuner's full observable state: calibrated
// coefficients, knob recommendations, and the recent decision log with
// its running digest — the audit trail behind every adaptive choice.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var st tune.Stats
	if s.tuneStats != nil {
		st = s.tuneStats()
	}
	writeJSON(w, http.StatusOK, st)
}

// Metrics exposes the server's counters (the LOAD benchmark reads them
// directly instead of scraping its own endpoint).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error {
	return s.http.Serve(l)
}

// Shutdown gracefully stops the server: new connections are refused,
// in-flight queries drain (bounded by ctx), and the backend — the live
// index — is closed last, so no query ever observes a closing index.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	if cerr := s.backend.Close(); err == nil {
		err = cerr
	}
	return err
}

// recovered wraps a handler with the panic guard: a panicking handler
// answers 500 and the process keeps serving. The guard is the backstop
// behind the panic-proofing of the library layers — defense in depth,
// not the primary mechanism.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.recoveredPanic()
				debug.PrintStack()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		h(w, r)
	}
}

// searchRequest is the POST /search body.
type searchRequest struct {
	Terms []string `json:"terms"`
	N     int      `json:"n"`
	// TimeoutMS overrides the server's default per-query deadline
	// (capped at MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SearchResponse is the POST /search answer. The degraded fields carry
// the live layer's coverage certificate to the wire: a query that lost
// segments to quarantine still answers 200, but says so explicitly —
// Degraded set, Exact dropped, SegmentsServed < Segments, and the
// skipped segment names listed — never a silent partial answer.
type SearchResponse struct {
	Generation uint64 `json:"generation"`
	Segments   int    `json:"segments"`
	Exact      bool   `json:"exact"`
	// Degraded reports that quarantined segments were skipped and the
	// results cover only SegmentsServed of Segments.
	Degraded bool `json:"degraded,omitempty"`
	// SegmentsServed is how many segments the answer covers; equals
	// Segments unless Degraded.
	SegmentsServed int `json:"segments_served"`
	// SegmentsSkipped names the quarantined segments excluded from this
	// answer; empty unless Degraded.
	SegmentsSkipped []string    `json:"segments_skipped,omitempty"`
	Results         []DocResult `json:"results"`
}

type DocResult struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection owns delivery failures
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// parseSearch validates the request body into a searchRequest. Every
// malformed shape — bad JSON, missing terms, empty term strings,
// non-positive or oversized n, absurd timeouts — is a 400 here, before
// any index machinery runs.
func (s *Server) parseSearch(r *http.Request) (searchRequest, error) {
	var req searchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("malformed body: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return req, fmt.Errorf("trailing data after the request object")
	}
	if len(req.Terms) == 0 {
		return req, fmt.Errorf("terms must be non-empty")
	}
	if len(req.Terms) > s.cfg.MaxTerms {
		return req, fmt.Errorf("%d terms exceeds limit %d", len(req.Terms), s.cfg.MaxTerms)
	}
	for i, t := range req.Terms {
		if t == "" {
			return req, fmt.Errorf("term %d is empty", i)
		}
	}
	if req.N <= 0 {
		return req, fmt.Errorf("n = %d must be positive", req.N)
	}
	if req.N > s.cfg.MaxN {
		return req, fmt.Errorf("n = %d exceeds limit %d", req.N, s.cfg.MaxN)
	}
	if req.TimeoutMS < 0 {
		return req, fmt.Errorf("timeout_ms = %d must be non-negative", req.TimeoutMS)
	}
	return req, nil
}

// clientKey identifies the client for rate limiting: the remote host
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	req, err := s.parseSearch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.metrics.request()
	if ok, retry := s.limiter.allow(clientKey(r)); !ok {
		s.metrics.doneShed()
		s.shed(w, retry)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	release, err := s.admit.acquire(ctx)
	if err != nil {
		if errors.Is(err, ErrShed) {
			s.metrics.doneShed()
			s.shed(w, s.cfg.RetryAfter)
			return
		}
		// The context fired while queued: deadline exhausted in line.
		s.metrics.doneFailed()
		writeError(w, http.StatusGatewayTimeout, "queued past deadline")
		return
	}
	defer release()

	start := s.cfg.now()
	res, err := s.backend.SearchContext(ctx, req.Terms, req.N)
	if err != nil {
		s.metrics.doneFailed()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "query deadline exceeded")
		case errors.Is(err, context.Canceled):
			// The client went away; the status is written into a dead
			// connection, but the accounting still records the abort.
			writeError(w, http.StatusServiceUnavailable, "query cancelled")
		case errors.Is(err, live.ErrClosed):
			writeError(w, http.StatusServiceUnavailable, "index closed")
		case errors.Is(err, ErrUnavailable):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.metrics.doneServed(s.cfg.now().Sub(start))
	writeJSON(w, http.StatusOK, toResponse(res))
}

func toResponse(res live.Result) SearchResponse {
	out := SearchResponse{
		Generation:      res.Generation,
		Segments:        res.Segments,
		Exact:           res.Exact,
		Degraded:        res.Degraded,
		SegmentsServed:  res.Cert.ShardsServed,
		SegmentsSkipped: res.Cert.Skipped,
		Results:         make([]DocResult, len(res.Top)),
	}
	for i, ds := range res.Top {
		out.Results[i] = DocResult{Doc: ds.DocID, Score: ds.Score}
	}
	return out
}

// ResultEqual reports whether an HTTP answer matches an in-process
// live.Result exactly — same documents, same float64 scores, same
// order. The LOAD benchmark's equivalence gate is built on it.
func ResultEqual(resp SearchResponse, res live.Result) bool {
	if len(resp.Results) != len(res.Top) {
		return false
	}
	for i, d := range resp.Results {
		if res.Top[i] != (rank.DocScore{DocID: d.Doc, Score: d.Score}) {
			return false
		}
	}
	return true
}

func (s *Server) shed(w http.ResponseWriter, retry time.Duration) {
	secs := int(retry / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
}

// healthResponse is the GET /healthz body. Degraded is NOT a failure
// state: the index is still answering (with explicit certificates), so
// the status stays 200 — flipping to 503 would tell a load balancer to
// drain a replica that is serving correct, labeled answers. The body
// says what is degraded so operators (and probes that care) can see it.
type healthResponse struct {
	Status              string `json:"status"` // "ok", "degraded", or "draining"
	QuarantinedSegments int    `json:"quarantined_segments,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	fs := s.backend.FaultStats()
	if fs.QuarantinedSegments > 0 {
		writeJSON(w, http.StatusOK, healthResponse{
			Status:              "degraded",
			QuarantinedSegments: fs.QuarantinedSegments,
		})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
}

// fullMetrics is the complete /metrics payload: serving counters plus
// the index-side gauges.
type fullMetrics struct {
	MetricsSnapshot
	Generation   uint64 `json:"generation"`
	Segments     int    `json:"segments"`
	DocsAlive    int64  `json:"docs_alive"`
	DocsAdded    int64  `json:"docs_added"`
	DocsDeleted  int64  `json:"docs_deleted"`
	Decodes      int64  `json:"postings_decoded"`
	Skips        int64  `json:"skips_taken"`
	BlocksFaults int64  `json:"blocks_faulted"`
	// Fault account: degraded serving is visible here before any query
	// notices (Degraded mirrors quarantined_segments > 0).
	Degraded            bool  `json:"degraded"`
	QuarantinedSegments int   `json:"quarantined_segments"`
	Quarantines         int64 `json:"quarantines_total"`
	Recovered           int64 `json:"recovered_total"`
	DegradedQueries     int64 `json:"degraded_queries_total"`
	ReadRetries         int64 `json:"read_retries_total"`
	ReadFaults          int64 `json:"read_faults_total"`
	// Cache account: the three query-path cache layers. All zero when
	// the caches are disabled.
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheBytes         int64 `json:"cache_bytes"`
	CacheEntries       int64 `json:"cache_entries"`
	SingleflightShared int64 `json:"singleflight_shared"`
	BlockCacheHits     int64 `json:"block_cache_hits"`
	BlockCacheMisses   int64 `json:"block_cache_misses"`
	BlockCacheAdmits   int64 `json:"block_cache_admits"`
	BlockCacheEvicts   int64 `json:"block_cache_evicts"`
	BlockCacheBytes    int64 `json:"block_cache_bytes"`
	BoundCacheHits     int64 `json:"bound_cache_hits"`
	BoundCacheMisses   int64 `json:"bound_cache_misses"`
	// Replication account (leader/follower/coordinator roles); absent on
	// a standalone node.
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Self-tuning account (calibrated coefficients and knob state);
	// absent when no tuner reporter is installed or the node runs the
	// static policy. /tune serves the same state with the decision log.
	Tune *tune.Stats `json:"tune,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.backend.Stats()
	decoded, skips, faulted := s.backend.Counters()
	fs := s.backend.FaultStats()
	cs := s.backend.CacheStats()
	var repl *ReplicationStats
	if s.replStats != nil {
		r := s.replStats()
		repl = &r
	}
	var ts *tune.Stats
	if s.tuneStats != nil {
		if t := s.tuneStats(); t.Enabled {
			t.Recent = nil // the decision log lives on /tune, not /metrics
			ts = &t
		}
	}
	writeJSON(w, http.StatusOK, fullMetrics{
		Replication:         repl,
		Tune:                ts,
		MetricsSnapshot:     s.metrics.Snapshot(),
		Generation:          stats.Generation,
		Segments:            stats.Segments,
		DocsAlive:           stats.DocsAlive,
		DocsAdded:           stats.DocsAdded,
		DocsDeleted:         stats.DocsDeleted,
		Decodes:             decoded,
		Skips:               skips,
		BlocksFaults:        faulted,
		Degraded:            fs.QuarantinedSegments > 0,
		QuarantinedSegments: fs.QuarantinedSegments,
		Quarantines:         fs.Quarantines,
		Recovered:           fs.Recovered,
		DegradedQueries:     fs.DegradedQueries,
		ReadRetries:         fs.ReadRetries,
		ReadFaults:          fs.ReadFaults,
		CacheHits:           cs.ResultHits,
		CacheMisses:         cs.ResultMisses,
		CacheBytes:          cs.ResultBytes,
		CacheEntries:        cs.ResultEntries,
		SingleflightShared:  cs.SingleflightShared,
		BlockCacheHits:      cs.BlockHits,
		BlockCacheMisses:    cs.BlockMisses,
		BlockCacheAdmits:    cs.BlockAdmits,
		BlockCacheEvicts:    cs.BlockEvicts,
		BlockCacheBytes:     cs.BlockBytes,
		BoundCacheHits:      cs.BoundHits,
		BoundCacheMisses:    cs.BoundMisses,
	})
}
