package server

import (
	"math"
	"testing"
	"time"
)

// TestHistogramQuantileMidpoint is the regression test for the quantile
// bug: the old code returned the *top* edge of the holding bucket, so a
// reported p50 could exceed every observation by up to 2×. The midpoint
// (geometric mean of the edges) bounds the error to √2 either way; this
// table pins that bound across the bucket range.
func TestHistogramQuantileMidpoint(t *testing.T) {
	cases := []time.Duration{
		1 * time.Microsecond,
		3 * time.Microsecond,
		100 * time.Microsecond,
		1 * time.Millisecond,
		20 * time.Millisecond,
		3 * time.Second,
	}
	const sqrt2 = math.Sqrt2 * (1 + 1e-9) // closed bound, float-tolerant
	for _, d := range cases {
		var h histogram
		h.observe(d)
		got := h.quantile(0.50)
		if ratio := float64(got) / float64(d); ratio > sqrt2 {
			t.Errorf("p50 of a single %v observation is %v (%.3f×): exceeds the √2 bound", d, got, ratio)
		}
		if ratio := float64(d) / float64(got); ratio > sqrt2 {
			t.Errorf("p50 of a single %v observation is %v: understates beyond the √2 bound", d, got)
		}
	}
}

// TestHistogramQuantileInsideBucket: with every observation equal, both
// p50 and p99 must land strictly inside the holding bucket
// [64µs, 128µs) — the pre-fix top-edge answer (128µs) sits outside it,
// above all one thousand observations.
func TestHistogramQuantileInsideBucket(t *testing.T) {
	var h histogram
	for i := 0; i < 1000; i++ {
		h.observe(100 * time.Microsecond)
	}
	for _, q := range []float64{0.50, 0.99} {
		got := h.quantile(q)
		if got < 64*time.Microsecond || got >= 128*time.Microsecond {
			t.Errorf("q%.0f = %v outside the holding bucket [64µs, 128µs)", q*100, got)
		}
	}
}

// TestHistogramQuantileEmptyAndOrder: zero when empty, and quantiles are
// monotone across a spread of observations.
func TestHistogramQuantileEmptyAndOrder(t *testing.T) {
	var h histogram
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v", got)
	}
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(50 * time.Millisecond)
	}
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 >= p99 {
		t.Fatalf("p50 %v not below p99 %v", p50, p99)
	}
	if p99 < 32*time.Millisecond || p99 >= 64*time.Millisecond {
		t.Fatalf("p99 %v missed the tail bucket", p99)
	}
}
