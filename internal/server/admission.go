package server

import (
	"context"
	"errors"
)

// ErrShed reports that the admission queue was full: the request was
// rejected immediately rather than queued. The HTTP layer maps it to
// 429 with a Retry-After hint — shedding, not blocking, is the overload
// contract.
var ErrShed = errors.New("server: overloaded, admission queue full")

// admission is a bounded two-stage admission controller: up to
// maxInFlight requests execute concurrently, up to queueDepth more wait
// for a slot, and everything beyond that is shed instantly. The wait is
// context-bound, so a queued request whose client gives up (or whose
// deadline expires) leaves the queue instead of occupying it.
type admission struct {
	slots chan struct{}
	queue chan struct{} // capacity queueDepth; a held token = a waiter
}

func newAdmission(maxInFlight, queueDepth int) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, queueDepth),
	}
}

// acquire obtains an execution slot, queuing if allowed. It returns a
// release function on success; ErrShed when both the slots and the
// queue are full; ctx.Err() when the context fires while queued.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), nil
	default:
	}
	// No free slot: try to take a queue position without blocking.
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, ErrShed
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) releaseFunc() func() {
	return func() { <-a.slots }
}
