package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/topk"
	"repro/internal/tune"
)

// stubBackend is a scriptable Backend: handler tests make it answer,
// block, fail, or panic on command without any index machinery.
type stubBackend struct {
	search func(ctx context.Context, terms []string, n int) (live.Result, error)
	faults live.FaultStats
	caches live.CacheStats
}

func (b *stubBackend) SearchContext(ctx context.Context, terms []string, n int) (live.Result, error) {
	if b.search != nil {
		return b.search(ctx, terms, n)
	}
	return live.Result{
		Generation: 1, Segments: 1, Exact: true,
		Top: []rank.DocScore{{DocID: 7, Score: 3.5}},
	}, nil
}

func (b *stubBackend) Stats() live.WriterStats                   { return live.WriterStats{} }
func (b *stubBackend) Counters() (decoded, skips, faulted int64) { return 0, 0, 0 }
func (b *stubBackend) FaultStats() live.FaultStats               { return b.faults }
func (b *stubBackend) CacheStats() live.CacheStats               { return b.caches }
func (b *stubBackend) Close() error                              { return nil }

func newTestServer(t *testing.T, backend Backend, cfg Config) *Server {
	t.Helper()
	s, err := New(backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestSearchHappyPath: a valid request returns the backend's answer
// verbatim and counts as served.
func TestSearchHappyPath(t *testing.T) {
	s := newTestServer(t, &stubBackend{}, Config{})
	w := postJSON(s.Handler(), `{"terms": ["t1", "t2"], "n": 5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Doc != 7 || resp.Results[0].Score != 3.5 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if !ResultEqual(resp, live.Result{Top: []rank.DocScore{{DocID: 7, Score: 3.5}}}) {
		t.Fatal("ResultEqual rejected the round-tripped answer")
	}
	if m := s.Metrics().Snapshot(); m.Served != 1 || m.Requests != 1 {
		t.Fatalf("metrics = %+v, want 1 request 1 served", m)
	}
}

// TestSearchMalformedRequests: every malformed shape answers 400 (or
// 405 for the wrong method) before any backend work — the backend here
// fails the test if it is ever reached.
func TestSearchMalformedRequests(t *testing.T) {
	backend := &stubBackend{search: func(context.Context, []string, int) (live.Result, error) {
		t.Error("backend reached by a malformed request")
		return live.Result{}, nil
	}}
	s := newTestServer(t, backend, Config{MaxN: 100, MaxTerms: 4})
	cases := []struct {
		name, body string
		want       int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"wrong type", `{"terms": "t1", "n": 5}`, http.StatusBadRequest},
		{"unknown field", `{"terms": ["t1"], "n": 5, "bogus": 1}`, http.StatusBadRequest},
		{"no terms", `{"n": 5}`, http.StatusBadRequest},
		{"empty terms", `{"terms": [], "n": 5}`, http.StatusBadRequest},
		{"blank term", `{"terms": ["t1", ""], "n": 5}`, http.StatusBadRequest},
		{"too many terms", `{"terms": ["a","b","c","d","e"], "n": 5}`, http.StatusBadRequest},
		{"zero n", `{"terms": ["t1"], "n": 0}`, http.StatusBadRequest},
		{"negative n", `{"terms": ["t1"], "n": -3}`, http.StatusBadRequest},
		{"huge n", `{"terms": ["t1"], "n": 101}`, http.StatusBadRequest},
		{"negative timeout", `{"terms": ["t1"], "n": 5, "timeout_ms": -1}`, http.StatusBadRequest},
		{"trailing garbage", `{"terms": ["t1"], "n": 5}{"again": true}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := postJSON(s.Handler(), c.body)
			if w.Code != c.want {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, c.want, w.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body not JSON with a message: %s", w.Body)
			}
		})
	}
	t.Run("wrong method", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodGet, "/search", nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", w.Code)
		}
	})
	// Malformed requests are refused before accounting: only well-formed
	// traffic reaches the request counter.
	if m := s.Metrics().Snapshot(); m.Requests != 0 {
		t.Fatalf("requests_total = %d after malformed-only traffic, want 0", m.Requests)
	}
}

// TestAdmissionShedsNotBlocks: with the slot and the queue both
// occupied by blocked queries, the next request is rejected 429
// immediately — it must not wait for capacity.
func TestAdmissionShedsNotBlocks(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	backend := &stubBackend{search: func(ctx context.Context, _ []string, _ int) (live.Result, error) {
		entered <- struct{}{}
		select {
		case <-release:
			return live.Result{}, nil
		case <-ctx.Done():
			return live.Result{}, ctx.Err()
		}
	}}
	s := newTestServer(t, backend, Config{MaxInFlight: 1, QueueDepth: 1, RetryAfter: 3 * time.Second})

	var wg sync.WaitGroup
	wg.Add(2)
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			codes[i] = postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`).Code
		}(i)
	}
	<-entered // the slot-holder is executing; the second waits in queue
	// Give the second request time to take the queue position.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	w := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`)
	elapsed := time.Since(start)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", w.Code, w.Body)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v — it blocked instead of rejecting", elapsed)
	}
	if w.Header().Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want %q", w.Header().Get("Retry-After"), "3")
	}

	close(release)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("blocked request %d finished %d, want 200", i, code)
		}
	}
	if m := s.Metrics().Snapshot(); m.Shed != 1 || m.Served != 2 {
		t.Fatalf("metrics = %+v, want served=2 shed=1", m)
	}
}

// TestSearchDeadline: a request whose deadline expires mid-query
// answers 504.
func TestSearchDeadline(t *testing.T) {
	backend := &stubBackend{search: func(ctx context.Context, _ []string, _ int) (live.Result, error) {
		<-ctx.Done()
		return live.Result{}, ctx.Err()
	}}
	s := newTestServer(t, backend, Config{})
	w := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5, "timeout_ms": 20}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
}

// TestPanicRecovery: a panicking backend answers 500, the panic is
// counted, and the server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	boom := true
	backend := &stubBackend{search: func(context.Context, []string, int) (live.Result, error) {
		if boom {
			panic("synthetic backend panic")
		}
		return live.Result{}, nil
	}}
	s := newTestServer(t, backend, Config{})
	if w := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`); w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	boom = false
	if w := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`); w.Code != http.StatusOK {
		t.Fatalf("server dead after panic: status = %d", w.Code)
	}
	if m := s.Metrics().Snapshot(); m.Panics != 1 {
		t.Fatalf("panics_total = %d, want 1", m.Panics)
	}
}

// TestHealthzDraining: /healthz flips to 503 once shutdown begins.
func TestHealthzDraining(t *testing.T) {
	s := newTestServer(t, &stubBackend{}, Config{})
	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthy: status = %d", w.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if w := get("/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: status = %d, want 503", w.Code)
	}
}

// TestMetricsEndpoint: /metrics is JSON carrying both serving and index
// fields.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, &stubBackend{}, Config{})
	postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests_total", "served_total", "shed_total", "latency_p99_ms", "generation", "segments", "postings_decoded"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics payload missing %q (got %s)", key, w.Body)
		}
	}
	if m["served_total"].(float64) != 1 {
		t.Fatalf("served_total = %v, want 1", m["served_total"])
	}
}

// TestDegradedSearchResponse: a degraded live result crosses the wire
// with its certificate intact — 200, Degraded set, Exact dropped, the
// skipped segments named — never a silent partial answer.
func TestDegradedSearchResponse(t *testing.T) {
	backend := &stubBackend{search: func(context.Context, []string, int) (live.Result, error) {
		return live.Result{
			Generation: 3, Segments: 4, Exact: false, Degraded: true,
			Cert: topk.Certificate{Degraded: true, ShardsServed: 3, ShardsTotal: 4, Skipped: []string{"seg-000002"}},
			Top:  []rank.DocScore{{DocID: 9, Score: 1.25}},
		}, nil
	}}
	s := newTestServer(t, backend, Config{})
	w := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: degradation is not a request failure", w.Code)
	}
	var resp SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Exact {
		t.Fatalf("response = %+v, want degraded and not exact", resp)
	}
	if resp.SegmentsServed != 3 || resp.Segments != 4 {
		t.Fatalf("coverage = %d of %d, want 3 of 4", resp.SegmentsServed, resp.Segments)
	}
	if len(resp.SegmentsSkipped) != 1 || resp.SegmentsSkipped[0] != "seg-000002" {
		t.Fatalf("skipped = %v, want the quarantined segment named", resp.SegmentsSkipped)
	}
}

// TestHealthzDegraded: a quarantined segment turns /healthz into
// 200-with-degraded-status — the replica is still serving labeled
// answers, so a load balancer must not drain it — while the body says
// exactly what is wrong.
func TestHealthzDegraded(t *testing.T) {
	backend := &stubBackend{faults: live.FaultStats{QuarantinedSegments: 2}}
	s := newTestServer(t, backend, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200: degraded is serving, not dead", w.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.QuarantinedSegments != 2 {
		t.Fatalf("health = %+v, want degraded with 2 quarantined", h)
	}
}

// TestMetricsFaultFields: /metrics surfaces the backend's fault account.
func TestMetricsFaultFields(t *testing.T) {
	backend := &stubBackend{faults: live.FaultStats{
		QuarantinedSegments: 1, Quarantines: 2, Recovered: 1,
		DegradedQueries: 5, ReadRetries: 7, ReadFaults: 3,
	}}
	s := newTestServer(t, backend, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"quarantined_segments": 1, "quarantines_total": 2, "recovered_total": 1,
		"degraded_queries_total": 5, "read_retries_total": 7, "read_faults_total": 3,
	}
	for key, v := range want {
		if got, ok := m[key].(float64); !ok || got != v {
			t.Errorf("metrics[%q] = %v, want %v", key, m[key], v)
		}
	}
	if deg, ok := m["degraded"].(bool); !ok || !deg {
		t.Errorf("metrics[degraded] = %v, want true", m["degraded"])
	}
}

// TestMetricsCacheFields: /metrics surfaces the backend's cache
// account — result cache, singleflight, block cache, bound memo.
func TestMetricsCacheFields(t *testing.T) {
	backend := &stubBackend{caches: live.CacheStats{
		ResultHits: 10, ResultMisses: 4, ResultBytes: 2048, ResultEntries: 3,
		SingleflightShared: 2,
		BlockHits:          20, BlockMisses: 6, BlockAdmits: 5, BlockEvicts: 1, BlockBytes: 4096,
		BoundHits: 30, BoundMisses: 9,
	}}
	s := newTestServer(t, backend, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var m map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"cache_hits": 10, "cache_misses": 4, "cache_bytes": 2048, "cache_entries": 3,
		"singleflight_shared": 2,
		"block_cache_hits":    20, "block_cache_misses": 6, "block_cache_admits": 5,
		"block_cache_evicts": 1, "block_cache_bytes": 4096,
		"bound_cache_hits": 30, "bound_cache_misses": 9,
	}
	for key, v := range want {
		if got, ok := m[key].(float64); !ok || got != v {
			t.Errorf("metrics[%q] = %v, want %v", key, m[key], v)
		}
	}
}

// TestRateLimitSheds: beyond the per-client burst, requests answer 429
// without touching the backend.
func TestRateLimitSheds(t *testing.T) {
	reached := 0
	backend := &stubBackend{search: func(context.Context, []string, int) (live.Result, error) {
		reached++
		return live.Result{}, nil
	}}
	clock := time.Unix(1000, 0)
	s := newTestServer(t, backend, Config{RatePerClient: 1, Burst: 2, now: func() time.Time { return clock }})
	codes := make([]int, 4)
	for i := range codes {
		codes[i] = postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`).Code
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 || codes[3] != 429 {
		t.Fatalf("codes = %v, want [200 200 429 429]", codes)
	}
	if reached != 2 {
		t.Fatalf("backend reached %d times, want 2", reached)
	}
	// A second of accrual buys exactly one more request.
	clock = clock.Add(time.Second)
	if code := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`).Code; code != 200 {
		t.Fatalf("after refill: %d, want 200", code)
	}
	if code := postJSON(s.Handler(), `{"terms": ["t1"], "n": 5}`).Code; code != 429 {
		t.Fatalf("burst exceeded again: %d, want 429", code)
	}
}

// FuzzSearchHandler hammers the search endpoint with arbitrary bodies:
// whatever arrives, the handler must answer an HTTP status (never
// panic) and only ever hand validated input to the backend.
func FuzzSearchHandler(f *testing.F) {
	f.Add(`{"terms": ["t1"], "n": 5}`)
	f.Add(`{"terms": [], "n": 0}`)
	f.Add(`{"terms": ["a", ""], "n": -1, "timeout_ms": -5}`)
	f.Add(`{"terms": "x"}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`{"terms": ["` + strings.Repeat("x", 4096) + `"], "n": 1}`)

	backend := &stubBackend{search: func(_ context.Context, terms []string, n int) (live.Result, error) {
		if len(terms) == 0 || n <= 0 {
			return live.Result{}, fmt.Errorf("invalid input reached the backend: terms=%v n=%d", terms, n)
		}
		for _, term := range terms {
			if term == "" {
				return live.Result{}, fmt.Errorf("empty term reached the backend")
			}
		}
		return live.Result{}, nil
	}}
	s, err := New(backend, Config{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader([]byte(body)))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest:
		case http.StatusInternalServerError:
			t.Fatalf("500 on body %q: %s", body, w.Body)
		default:
			t.Fatalf("unexpected status %d on body %q", w.Code, body)
		}
	})
}

// TestTuneEndpoint: /tune serves the installed reporter's full state
// (decision log included); without a reporter it answers a disabled
// tuner. /metrics carries the same account minus the log, and omits it
// entirely when the tuner is disabled.
func TestTuneEndpoint(t *testing.T) {
	get := func(s *Server, path string) map[string]interface{} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, w.Code)
		}
		var m map[string]interface{}
		if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return m
	}

	bare := newTestServer(t, &stubBackend{}, Config{})
	if m := get(bare, "/tune"); m["enabled"] != false {
		t.Fatalf("no reporter: /tune enabled = %v, want false", m["enabled"])
	}
	if m := get(bare, "/metrics"); m["tune"] != nil {
		t.Fatalf("no reporter: /metrics carries tune block %v", m["tune"])
	}

	tn := tune.New(tune.Config{
		SpanModel: &tune.SpanModel{DecodeCost: 100 * time.Nanosecond, FaultCost: 100 * time.Microsecond},
		SealDocs:  tune.Bounds{Min: 50, Max: 400},
	})
	for i := 0; i < 20; i++ {
		// Vary both counters so the regression identifies both axes.
		tn.ObserveQuery(3, int64(500+137*i), int64(i%7), tn.StartSpan())
		tn.ObserveWrite()
		tn.SealDocs(100)
	}
	s := newTestServer(t, &stubBackend{}, Config{})
	s.SetTuneStats(tn.Stats)

	tm := get(s, "/tune")
	if tm["enabled"] != true {
		t.Fatalf("/tune enabled = %v, want true", tm["enabled"])
	}
	if pw := tm["page_weight"].(float64); math.Abs(pw-1000) > 1e-6 {
		t.Fatalf("/tune page_weight = %v, want the planted 1000", pw)
	}
	if _, ok := tm["recent_decisions"]; !ok {
		t.Fatalf("/tune payload has no decision log: %v", tm)
	}

	mm := get(s, "/metrics")
	tb, ok := mm["tune"].(map[string]interface{})
	if !ok {
		t.Fatalf("/metrics has no tune block: %v", mm["tune"])
	}
	if tb["queries_observed"].(float64) != 20 || tb["writes_observed"].(float64) != 20 {
		t.Fatalf("tune block counters wrong: %v", tb)
	}
	if _, ok := tb["recent_decisions"]; ok {
		t.Fatal("/metrics tune block must not carry the decision log")
	}
}
