package postings

import "math/bits"

// AliveBitmap tracks which local document ids of a segment are alive.
// It is the delete side of the live index: a tombstoned document stays
// physically present in the segment's postings but is filtered out at
// the iterator seam, so every engine built on Iterator serves only
// surviving documents without any change to its evaluation loop.
//
// A bitmap is immutable once it is visible to searches: the live layer
// mutates a private Clone and swaps the pointer at commit, so an
// in-flight query keeps the deletion view it started with (snapshot
// consistency). The zero id space is [0, Len()); ids outside it read as
// dead.
type AliveBitmap struct {
	n     int
	alive int
	words []uint64
}

// NewAliveBitmap returns a bitmap over n documents, all alive.
func NewAliveBitmap(n int) *AliveBitmap {
	b := &AliveBitmap{n: n, alive: n, words: make([]uint64, (n+63)/64)}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << r) - 1
	}
	return b
}

// RestoreAliveBitmap rebuilds a bitmap from its word image (the
// persisted form). The tail bits beyond n must be zero.
func RestoreAliveBitmap(n int, words []uint64) (*AliveBitmap, bool) {
	if n < 0 || len(words) != (n+63)/64 {
		return nil, false
	}
	b := &AliveBitmap{n: n, words: words}
	if r := n % 64; r != 0 && len(words) > 0 {
		if words[len(words)-1]&^((1<<r)-1) != 0 {
			return nil, false // set bits beyond the document space
		}
	}
	for _, w := range words {
		b.alive += bits.OnesCount64(w)
	}
	return b, true
}

// Len returns the size of the id space the bitmap covers.
func (b *AliveBitmap) Len() int { return b.n }

// AliveCount returns the number of alive documents.
func (b *AliveBitmap) AliveCount() int { return b.alive }

// DeadCount returns the number of dead documents.
func (b *AliveBitmap) DeadCount() int { return b.n - b.alive }

// AllAlive reports whether no document is dead.
func (b *AliveBitmap) AllAlive() bool { return b.alive == b.n }

// Alive reports whether id is alive. Ids outside [0, Len()) are dead.
func (b *AliveBitmap) Alive(id uint32) bool {
	if int(id) >= b.n {
		return false
	}
	return b.words[id>>6]&(1<<(id&63)) != 0
}

// Kill marks id dead, reporting whether it was alive before.
func (b *AliveBitmap) Kill(id uint32) bool {
	if !b.Alive(id) {
		return false
	}
	b.words[id>>6] &^= 1 << (id & 63)
	b.alive--
	return true
}

// Clone returns an independent copy (the copy-on-write step of a
// deletion commit).
func (b *AliveBitmap) Clone() *AliveBitmap {
	return &AliveBitmap{n: b.n, alive: b.alive, words: append([]uint64(nil), b.words...)}
}

// Words exposes the backing word image for persistence. Callers must
// not mutate it.
func (b *AliveBitmap) Words() []uint64 { return b.words }
