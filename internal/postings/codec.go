// Package postings implements compressed inverted-list storage: v-byte
// encoded postings, sequential and skipping iterators, and the non-dense
// (sparse) index the paper proposes in Step 1 to "speed up processing the
// large fragment".
//
// A posting is a (document id, term frequency) pair. Lists are stored
// sorted by document id, with ids delta-encoded and both fields v-byte
// compressed — the standard IR layout of the paper's era (Brown 1995).
// Lists live in a storage.File so every read is accounted as page I/O.
package postings

import (
	"errors"
	"fmt"
)

// Posting is one entry of an inverted list: the document the term occurs
// in and how often it occurs there.
type Posting struct {
	DocID uint32
	TF    uint32
}

// putUvarint appends the v-byte encoding of v to buf and returns the
// extended slice. The encoding stores 7 bits per byte, the high bit
// flagging continuation, least-significant group first.
func putUvarint(buf []byte, v uint32) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// uvarint decodes a v-byte value from buf, returning the value and the
// number of bytes consumed. n == 0 signals truncated input.
func uvarint(buf []byte) (v uint32, n int) {
	var shift uint
	for i, b := range buf {
		if i == 5 {
			return 0, 0 // overlong encoding for a 32-bit value
		}
		v |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// ErrCorrupt is returned when a list's byte stream cannot be decoded.
var ErrCorrupt = errors.New("postings: corrupt list encoding")

// Encode serializes a docID-sorted posting list. The layout is:
//
//	uvarint count
//	count × (uvarint docID-delta, uvarint tf)
//
// The first delta is the first document id itself. Encode rejects lists
// that are not strictly increasing in DocID or that contain zero TFs,
// because both would silently break ranking.
func Encode(ps []Posting) ([]byte, error) {
	buf := putUvarint(nil, uint32(len(ps)))
	prev := int64(-1)
	for i, p := range ps {
		if int64(p.DocID) <= prev {
			return nil, fmt.Errorf("postings: doc ids not strictly increasing at index %d", i)
		}
		if p.TF == 0 {
			return nil, fmt.Errorf("postings: zero term frequency at index %d", i)
		}
		buf = putUvarint(buf, uint32(int64(p.DocID)-prev-1))
		buf = putUvarint(buf, p.TF)
		prev = int64(p.DocID)
	}
	return buf, nil
}

// Decode deserializes an entire encoded list. It is the inverse of Encode.
func Decode(buf []byte) ([]Posting, error) {
	count, n := uvarint(buf)
	if n == 0 {
		return nil, ErrCorrupt
	}
	buf = buf[n:]
	out := make([]Posting, 0, count)
	prev := int64(-1)
	for i := uint32(0); i < count; i++ {
		gap, n := uvarint(buf)
		if n == 0 {
			return nil, ErrCorrupt
		}
		buf = buf[n:]
		tf, n := uvarint(buf)
		if n == 0 {
			return nil, ErrCorrupt
		}
		buf = buf[n:]
		doc := prev + 1 + int64(gap)
		out = append(out, Posting{DocID: uint32(doc), TF: tf})
		prev = doc
	}
	return out, nil
}
