// Package postings implements compressed inverted-list storage: v-byte
// encoded postings laid out in self-describing blocks, bulk block
// decoding, skipping iterators, and the non-dense (sparse) index the
// paper proposes in Step 1 to "speed up processing the large fragment".
//
// A posting is a (document id, term frequency) pair. Lists are stored
// sorted by document id and grouped into blocks of BlockSize postings.
// Each block carries a local header — first document id, posting count,
// payload byte length, and the block's maximum term frequency — so a
// block can be decoded as a unit, skipped without decoding, and bounded
// (via the max TF) without being read at all. Document ids are
// delta-encoded and both fields v-byte compressed — the standard IR
// layout of the paper's era (Brown 1995). Lists live in a storage.File
// so every read is accounted as page I/O.
package postings

import (
	"errors"
	"fmt"
)

// Posting is one entry of an inverted list: the document the term occurs
// in and how often it occurs there.
type Posting struct {
	DocID uint32
	TF    uint32
}

// putUvarint appends the v-byte encoding of v to buf and returns the
// extended slice. The encoding stores 7 bits per byte, the high bit
// flagging continuation, least-significant group first.
func putUvarint(buf []byte, v uint32) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// uvarint decodes a v-byte value from buf, returning the value and the
// number of bytes consumed. n == 0 signals truncated input.
func uvarint(buf []byte) (v uint32, n int) {
	var shift uint
	for i, b := range buf {
		if i == 5 {
			return 0, 0 // overlong encoding for a 32-bit value
		}
		v |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// ErrCorrupt is returned when a list's byte stream cannot be decoded.
var ErrCorrupt = errors.New("postings: corrupt list encoding")

// The block layout. An encoded list is:
//
//	uvarint count                       total postings in the list
//	count/BlockSize × block (last one possibly partial):
//	    uvarint firstDocDelta           block's first doc id, delta-coded
//	                                    against the previous block's first
//	                                    doc id (the id itself for block 0)
//	    uvarint n-1                     postings in the block, minus one
//	    uvarint payloadLen              byte length of the payload below
//	    uvarint maxTF                   largest TF in the block
//	    payload:
//	        uvarint tf[0]               first posting's TF (its doc id is
//	                                    implied by the header)
//	        (n-1) × (uvarint gap, uvarint tf)
//
// Chaining firstDoc against the previous block's *first* doc (not its
// last) means a reader can walk headers alone — header, jump payloadLen,
// header, ... — reconstructing every block boundary and bound without
// decoding any payload. That is what makes the block a unit that can be
// skipped, bounded, or bulk-decoded.

// EncodeBlocks serializes a docID-sorted posting list into the block
// layout in a single pass, emitting the per-block sparse-index entries
// (byte offset, first/last doc, count, max TF) and the list-wide maximum
// TF alongside the bytes — no second encoding walk is needed to learn
// offsets. Encode rejects lists that are not strictly increasing in
// DocID or that contain zero TFs, because both would silently break
// ranking.
func EncodeBlocks(ps []Posting) (body []byte, skips []SkipEntry, maxTF uint32, err error) {
	for i, p := range ps {
		if i > 0 && p.DocID <= ps[i-1].DocID {
			return nil, nil, 0, fmt.Errorf("postings: doc ids not strictly increasing at index %d", i)
		}
		if p.TF == 0 {
			return nil, nil, 0, fmt.Errorf("postings: zero term frequency at index %d", i)
		}
	}
	body = putUvarint(nil, uint32(len(ps)))
	if len(ps) == 0 {
		return body, nil, 0, nil
	}
	numBlocks := (len(ps) + BlockSize - 1) / BlockSize
	skips = make([]SkipEntry, 0, numBlocks)
	payload := make([]byte, 0, 2*BlockSize)
	prevFirst := int64(-1)
	for start := 0; start < len(ps); start += BlockSize {
		end := start + BlockSize
		if end > len(ps) {
			end = len(ps)
		}
		block := ps[start:end]
		var blockMax uint32
		payload = putUvarint(payload[:0], block[0].TF)
		for i := 1; i < len(block); i++ {
			payload = putUvarint(payload, block[i].DocID-block[i-1].DocID-1)
			payload = putUvarint(payload, block[i].TF)
		}
		for _, p := range block {
			if p.TF > blockMax {
				blockMax = p.TF
			}
		}
		if blockMax > maxTF {
			maxTF = blockMax
		}
		skips = append(skips, SkipEntry{
			FirstDoc: block[0].DocID,
			LastDoc:  block[len(block)-1].DocID,
			Offset:   uint32(len(body)),
			Count:    int32(len(block)),
			MaxTF:    blockMax,
		})
		body = putUvarint(body, uint32(int64(block[0].DocID)-prevFirst-1))
		body = putUvarint(body, uint32(len(block)-1))
		body = putUvarint(body, uint32(len(payload)))
		body = putUvarint(body, blockMax)
		body = append(body, payload...)
		prevFirst = int64(block[0].DocID)
	}
	return body, skips, maxTF, nil
}

// Encode serializes a docID-sorted posting list, discarding the block
// metadata EncodeBlocks produces. It exists for callers that only need
// the bytes (round-trip tests, size accounting).
func Encode(ps []Posting) ([]byte, error) {
	body, _, _, err := EncodeBlocks(ps)
	return body, err
}

// decodeBlockHeader parses one block header at buf[pos:], returning the
// block's first doc id, posting count, payload start and length. ok is
// false on any truncation or violated invariant.
func decodeBlockHeader(buf []byte, pos int, prevFirst int64) (firstDoc uint32, count, payloadStart, payloadLen int, maxTF uint32, ok bool) {
	delta, n := uvarint(buf[pos:])
	if n == 0 {
		return 0, 0, 0, 0, 0, false
	}
	pos += n
	nm1, n := uvarint(buf[pos:])
	if n == 0 || nm1 >= BlockSize {
		return 0, 0, 0, 0, 0, false
	}
	pos += n
	plen, n := uvarint(buf[pos:])
	if n == 0 {
		return 0, 0, 0, 0, 0, false
	}
	pos += n
	mtf, n := uvarint(buf[pos:])
	if n == 0 || mtf == 0 {
		return 0, 0, 0, 0, 0, false
	}
	pos += n
	if int(plen) > len(buf)-pos {
		return 0, 0, 0, 0, 0, false
	}
	doc := prevFirst + 1 + int64(delta)
	if doc > int64(^uint32(0)) {
		return 0, 0, 0, 0, 0, false
	}
	return uint32(doc), int(nm1) + 1, pos, int(plen), mtf, true
}

// decodeBlockInto is the one bulk payload-decode loop of the codec,
// with the varint decoding inlined — no per-posting function calls. It
// resumes at payload[pos:] with bn postings already materialized in
// docs/tfs (bn == 0 starts the block at firstDoc), decoding until the
// block's count postings are done, or — when limit is non-nil — until
// the first posting with DocID >= *limit has been materialized. It
// returns the new bn and pos, with ok false on truncation, overlong
// varints, zero TFs, or a TF above the header's max-TF bound.
func decodeBlockInto(payload []byte, pos int, firstDoc uint32, bn, count int, maxTF uint32, limit *uint32, docs, tfs *[BlockSize]uint32) (int, int, bool) {
	var doc uint32
	if bn > 0 {
		doc = docs[bn-1]
	}
	for bn < count {
		if bn > 0 {
			// gap
			var gap, shift uint32
			for {
				if pos >= len(payload) || shift > 28 {
					return bn, pos, false
				}
				b := payload[pos]
				pos++
				gap |= uint32(b&0x7f) << shift
				if b < 0x80 {
					break
				}
				shift += 7
			}
			doc += gap + 1
		} else {
			doc = firstDoc
		}
		// tf
		var tf, shift uint32
		for {
			if pos >= len(payload) || shift > 28 {
				return bn, pos, false
			}
			b := payload[pos]
			pos++
			tf |= uint32(b&0x7f) << shift
			if b < 0x80 {
				break
			}
			shift += 7
		}
		if tf == 0 || tf > maxTF {
			return bn, pos, false
		}
		docs[bn] = doc
		tfs[bn] = tf
		bn++
		if limit != nil && doc >= *limit {
			break
		}
	}
	return bn, pos, true
}

// decodeBlockPayload bulk-decodes one whole block payload into the
// docs/tfs arrays, returning false when the payload is truncated,
// violates its declared length, or exceeds the header's max-TF bound.
func decodeBlockPayload(payload []byte, firstDoc uint32, count int, maxTF uint32, docs, tfs *[BlockSize]uint32) bool {
	bn, pos, ok := decodeBlockInto(payload, 0, firstDoc, 0, count, maxTF, nil, docs, tfs)
	return ok && bn == count && pos == len(payload)
}

// Decode deserializes an entire encoded list. It is the inverse of
// Encode and needs no external metadata: the in-stream block headers
// make the encoding self-describing.
func Decode(buf []byte) ([]Posting, error) {
	count, n := uvarint(buf)
	if n == 0 {
		return nil, ErrCorrupt
	}
	pos := n
	out := make([]Posting, 0, count)
	var docs, tfs [BlockSize]uint32
	prevFirst := int64(-1)
	prevDoc := int64(-1)
	for uint32(len(out)) < count {
		firstDoc, bn, payloadStart, payloadLen, maxTF, ok := decodeBlockHeader(buf, pos, prevFirst)
		if !ok || uint32(len(out)+bn) > count || int64(firstDoc) <= prevDoc {
			return nil, ErrCorrupt
		}
		if !decodeBlockPayload(buf[payloadStart:payloadStart+payloadLen], firstDoc, bn, maxTF, &docs, &tfs) {
			return nil, ErrCorrupt
		}
		for i := 0; i < bn; i++ {
			out = append(out, Posting{DocID: docs[i], TF: tfs[i]})
		}
		prevFirst = int64(firstDoc)
		prevDoc = int64(docs[bn-1])
		pos = payloadStart + payloadLen
	}
	return out, nil
}
