package postings

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/xrand"
)

// pagedFixture builds a file-backed store with random lists, dumps its
// bytes page-aligned to a real file, and reopens them as a paged store
// served through a pool of poolPages frames.
func pagedFixture(t *testing.T, seed uint64, lists, maxLen, poolPages int) (mem, paged *Store, metas []ListMeta) {
	t.Helper()
	buildPool, err := storage.NewPool(storage.NewDisk(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	mem = NewStore(storage.NewFile(buildPool))
	rng := xrand.New(seed)
	for i := 0; i < lists; i++ {
		n := rng.Intn(maxLen)
		ps := make([]Posting, n)
		doc := uint32(0)
		for j := range ps {
			doc += uint32(rng.Intn(20)) + 1
			ps[j] = Posting{DocID: doc, TF: uint32(rng.Intn(9)) + 1}
		}
		meta, err := mem.Put(ps)
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, meta)
	}

	raw, err := io.ReadAll(mem.File().Reader(0, -1))
	if err != nil {
		t.Fatal(err)
	}
	if pad := len(raw) % storage.PageSize; pad != 0 {
		raw = append(raw, make([]byte, storage.PageSize-pad)...)
	}
	path := filepath.Join(t.TempDir(), "postings.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fd, err := storage.OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	pool, err := storage.NewPool(fd, poolPages)
	if err != nil {
		t.Fatal(err)
	}
	paged, err = NewPagedStore(pool, 1, mem.Size())
	if err != nil {
		t.Fatal(err)
	}
	return mem, paged, metas
}

// TestPagedIteratorEquivalence drives the memory and paged backends over
// identical lists — full streaming, ReadAll, and a deterministic seek
// workload — and demands identical postings, identical decode/skip
// counters, and a non-zero fault count only on the paged side. Pool
// capacity 1 is the adversarial case: every block fetch may evict the
// previous page.
func TestPagedIteratorEquivalence(t *testing.T) {
	for _, poolPages := range []int{1, 2, 8} {
		mem, paged, metas := pagedFixture(t, 7, 12, 4*BlockSize, poolPages)
		for li, meta := range metas {
			want, err := mem.ReadAll(meta)
			if err != nil {
				t.Fatal(err)
			}
			got, err := paged.ReadAll(meta)
			if err != nil {
				t.Fatalf("pool=%d list %d: paged ReadAll: %v", poolPages, li, err)
			}
			if len(got) != len(want) {
				t.Fatalf("pool=%d list %d: %d postings, want %d", poolPages, li, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pool=%d list %d posting %d: %v, want %v", poolPages, li, i, got[i], want[i])
				}
			}

			// Streaming equivalence.
			mi, err := mem.NewIterator(meta)
			if err != nil {
				t.Fatal(err)
			}
			pi, err := paged.NewIterator(meta)
			if err != nil {
				t.Fatal(err)
			}
			for mi.Next() {
				if !pi.Next() {
					t.Fatalf("pool=%d list %d: paged iterator ended early", poolPages, li)
				}
				if mi.At() != pi.At() {
					t.Fatalf("pool=%d list %d: %v vs %v", poolPages, li, mi.At(), pi.At())
				}
			}
			if pi.Next() {
				t.Fatalf("pool=%d list %d: paged iterator ran long", poolPages, li)
			}
			if err := pi.Err(); err != nil {
				t.Fatal(err)
			}
			mi.Close()
			pi.Close()

			// Seek equivalence: stride through the doc space.
			mi, _ = mem.NewIterator(meta)
			pi, _ = paged.NewIterator(meta)
			for doc := uint32(0); ; doc += 37 {
				mok := mi.SeekGE(doc)
				pok := pi.SeekGE(doc)
				if mok != pok {
					t.Fatalf("pool=%d list %d SeekGE(%d): %v vs %v", poolPages, li, doc, mok, pok)
				}
				if !mok {
					break
				}
				if mi.At() != pi.At() {
					t.Fatalf("pool=%d list %d SeekGE(%d): %v vs %v", poolPages, li, doc, mi.At(), pi.At())
				}
				doc = mi.At().DocID
			}
			if err := pi.Err(); err != nil {
				t.Fatal(err)
			}
			mi.Close()
			pi.Close()
		}
		if mem.Counters.PostingsDecoded != paged.Counters.PostingsDecoded {
			t.Errorf("pool=%d: decoded %d (paged) != %d (memory)",
				poolPages, paged.Counters.PostingsDecoded, mem.Counters.PostingsDecoded)
		}
		if mem.Counters.SkipsTaken != paged.Counters.SkipsTaken {
			t.Errorf("pool=%d: skips %d (paged) != %d (memory)",
				poolPages, paged.Counters.SkipsTaken, mem.Counters.SkipsTaken)
		}
		if mem.Counters.BlocksFaulted != 0 {
			t.Errorf("memory path faulted %d blocks, want 0", mem.Counters.BlocksFaulted)
		}
		if paged.Counters.BlocksFaulted == 0 {
			t.Errorf("pool=%d: paged path reported zero block faults", poolPages)
		}
	}
}

// TestPagedStoreReadOnly verifies the paged backing rejects writes and
// out-of-region metadata instead of serving garbage.
func TestPagedStoreReadOnly(t *testing.T) {
	_, paged, metas := pagedFixture(t, 3, 4, 64, 4)
	if _, err := paged.Put([]Posting{{DocID: 1, TF: 1}}); err == nil {
		t.Error("Put on a paged store succeeded")
	}
	bad := metas[len(metas)-1]
	bad.Offset = paged.Size() // body starts past the region
	bad.Length = 16
	if _, err := paged.ReadAll(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("out-of-region meta: err = %v, want ErrCorrupt", err)
	}
}
