package postings

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/xrand"
)

func TestUvarintRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		buf := putUvarint(nil, v)
		got, n := uvarint(buf)
		return n == len(buf) && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := putUvarint(nil, 1<<30)
	for cut := 0; cut < len(buf); cut++ {
		if _, n := uvarint(buf[:cut]); n != 0 && cut < len(buf) {
			// Any prefix that still terminates must decode to something;
			// only prefixes ending mid-value must return n==0. A prefix of
			// a multi-byte encoding always has the continuation bit set on
			// its last byte, so n must be 0.
			last := buf[cut-1]
			if last >= 0x80 {
				t.Errorf("truncated input of %d bytes decoded", cut)
			}
		}
	}
	if _, n := uvarint(nil); n != 0 {
		t.Error("empty input decoded")
	}
}

func TestUvarintOverlong(t *testing.T) {
	// Six continuation bytes exceed what a uint32 can need.
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := uvarint(buf); n != 0 {
		t.Error("overlong encoding accepted")
	}
}

func randomList(rng *xrand.RNG, n int) []Posting {
	docs := make(map[uint32]bool, n)
	for len(docs) < n {
		docs[uint32(rng.Intn(1<<22))] = true
	}
	out := make([]Posting, 0, n)
	for d := range docs {
		out = append(out, Posting{DocID: d, TF: uint32(1 + rng.Intn(50))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{0, 1, 2, 10, 127, 128, 129, 1000, 5000} {
		ps := randomList(rng, n)
		buf, err := Encode(ps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ps) {
			t.Fatalf("n=%d: decoded %d postings", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, ps) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode([]Posting{{5, 1}, {5, 1}}); err == nil {
		t.Error("duplicate doc ids accepted")
	}
	if _, err := Encode([]Posting{{5, 1}, {3, 1}}); err == nil {
		t.Error("descending doc ids accepted")
	}
	if _, err := Encode([]Posting{{5, 0}}); err == nil {
		t.Error("zero TF accepted")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	ps := []Posting{{1, 2}, {3, 4}, {100, 5}}
	buf, _ := Encode(ps)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Error("nil input accepted")
	}
}

func TestEncodeCompresses(t *testing.T) {
	// Dense consecutive doc ids with small TFs should cost about 2 bytes
	// per posting, far below the 8-byte struct size.
	ps := make([]Posting, 10000)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i), TF: 1}
	}
	buf, err := Encode(ps)
	if err != nil {
		t.Fatal(err)
	}
	if perPosting := float64(len(buf)) / float64(len(ps)); perPosting > 2.1 {
		t.Errorf("dense list costs %.2f bytes/posting, want about 2", perPosting)
	}
}

func newStore(t testing.TB) *Store {
	t.Helper()
	d := storage.NewDisk()
	p, err := storage.NewPool(d, 256)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(storage.NewFile(p))
}

func TestStorePutReadAll(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(7)
	lists := make([][]Posting, 20)
	metas := make([]ListMeta, 20)
	for i := range lists {
		lists[i] = randomList(rng, 1+rng.Intn(500))
		m, err := s.Put(lists[i])
		if err != nil {
			t.Fatal(err)
		}
		metas[i] = m
	}
	for i := range lists {
		got, err := s.ReadAll(metas[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, lists[i]) {
			t.Fatalf("list %d round trip mismatch", i)
		}
	}
}

func TestIteratorSequential(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(11)
	ps := randomList(rng, 777)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []Posting
	for it.Next() {
		got = append(got, it.At())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatal("iterator did not reproduce the list")
	}
	if it.DocFreq() != len(ps) {
		t.Errorf("DocFreq = %d, want %d", it.DocFreq(), len(ps))
	}
}

// TestBlockIndexBuilt: every non-empty list gets one SkipEntry per block
// (the last possibly partial), and each entry carries the block's exact
// doc range, count, and max TF — the inputs of Block-Max pruning.
func TestBlockIndexBuilt(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(3)
	for _, n := range []int{1, 2, BlockSize - 1, BlockSize, BlockSize + 1,
		2*BlockSize - 1, 2 * BlockSize, 5*BlockSize + 17} {
		ps := randomList(rng, n)
		meta, err := s.Put(ps)
		if err != nil {
			t.Fatal(err)
		}
		wantBlocks := (n + BlockSize - 1) / BlockSize
		if len(meta.Skips) != wantBlocks {
			t.Fatalf("n=%d: %d skip entries, want %d", n, len(meta.Skips), wantBlocks)
		}
		var listMax uint32
		for bi, e := range meta.Skips {
			start := bi * BlockSize
			end := start + int(e.Count)
			if e.FirstDoc != ps[start].DocID || e.LastDoc != ps[end-1].DocID {
				t.Fatalf("n=%d block %d: range [%d,%d], want [%d,%d]",
					n, bi, e.FirstDoc, e.LastDoc, ps[start].DocID, ps[end-1].DocID)
			}
			var blockMax uint32
			for _, p := range ps[start:end] {
				if p.TF > blockMax {
					blockMax = p.TF
				}
			}
			if e.MaxTF != blockMax {
				t.Fatalf("n=%d block %d: maxTF %d, want %d", n, bi, e.MaxTF, blockMax)
			}
			if blockMax > listMax {
				listMax = blockMax
			}
		}
		if meta.MaxTF != listMax {
			t.Fatalf("n=%d: list maxTF %d, want %d", n, meta.MaxTF, listMax)
		}
	}
}

// TestBlockMaxTF: the bound must be exact for covered documents, zero
// for documents provably absent, and never underestimate.
func TestBlockMaxTF(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(29)
	ps := randomList(rng, 3*BlockSize+40)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	present := make(map[uint32]uint32, len(ps))
	for _, p := range ps {
		present[p.DocID] = p.TF
	}
	for probe := uint32(0); probe < ps[len(ps)-1].DocID+5; probe += 3 {
		bound := it.BlockMaxTF(probe)
		if tf, ok := present[probe]; ok && bound < tf {
			t.Fatalf("doc %d: bound %d below actual tf %d", probe, bound, tf)
		}
	}
	if it.BlockMaxTF(ps[len(ps)-1].DocID+1) != 0 {
		t.Error("bound past the last document must be 0")
	}
	if ps[0].DocID > 0 && it.BlockMaxTF(ps[0].DocID-1) != 0 {
		t.Error("bound before the first document must be 0")
	}
}

// TestIteratorClose: Close flushes the batched counters, double Close is
// a no-op, and a closed iterator's buffer can be reused by a new one.
func TestIteratorClose(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(31)
	ps := randomList(rng, 3*BlockSize)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	s.Counters.Reset()
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
	}
	it.NoteBlockSkip() // pending local count that only Close flushes
	it.Close()
	it.Close() // must be a no-op
	if got := s.Counters.LoadPostingsDecoded(); got != int64(len(ps)) {
		t.Errorf("decoded counter %d after close, want %d", got, len(ps))
	}
	if got := s.Counters.LoadSkipsTaken(); got != 1 {
		t.Errorf("skips counter %d after close, want 1", got)
	}
	// The pooled buffer must be reusable without corrupting a new read.
	it2, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	for i := 0; it2.Next(); i++ {
		if it2.At() != ps[i] {
			t.Fatalf("reused buffer diverged at %d", i)
		}
	}
}

func TestSeekGEEquivalence(t *testing.T) {
	// SeekGE through the sparse index must land exactly where a linear
	// scan would, for arbitrary targets.
	s := newStore(t)
	rng := xrand.New(5)
	ps := randomList(rng, 3000)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Skips) == 0 {
		t.Fatal("expected a sparse index")
	}
	targets := []uint32{0, 1, ps[0].DocID, ps[10].DocID, ps[10].DocID + 1,
		ps[1500].DocID, ps[2999].DocID, ps[2999].DocID + 1}
	for i := 0; i < 60; i++ {
		targets = append(targets, uint32(rng.Intn(1<<22)))
	}
	for _, target := range targets {
		it, err := s.NewIterator(meta)
		if err != nil {
			t.Fatal(err)
		}
		ok := it.SeekGE(target)
		defer it.Close()
		// Reference answer by binary search on the decoded list.
		idx := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= target })
		if idx == len(ps) {
			if ok {
				t.Fatalf("target %d: SeekGE found %v, want none", target, it.At())
			}
			continue
		}
		if !ok {
			t.Fatalf("target %d: SeekGE found nothing, want %v", target, ps[idx])
		}
		if it.At() != ps[idx] {
			t.Fatalf("target %d: SeekGE at %v, want %v", target, it.At(), ps[idx])
		}
		// The iterator must still stream the remainder correctly.
		want := idx
		for it.Next() {
			want++
			if want >= len(ps) || it.At() != ps[want] {
				t.Fatalf("target %d: stream after seek diverged at %d", target, want)
			}
		}
	}
}

func TestSeekGESavesDecoding(t *testing.T) {
	s := newStore(t)
	// A long dense list; seeking to the end should decode far fewer
	// postings than the list holds.
	n := 100 * BlockSize
	ps := make([]Posting, n)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i * 3), TF: 1}
	}
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	s.Counters.Reset()
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.SeekGE(ps[n-1].DocID) {
		t.Fatal("seek to last posting failed")
	}
	if dec := s.Counters.PostingsDecoded; dec > int64(2*BlockSize) {
		t.Errorf("seek to end decoded %d postings, want <= %d", dec, 2*BlockSize)
	}
	if s.Counters.SkipsTaken == 0 {
		t.Error("no skips recorded")
	}
}

func TestSeekGEMonotoneCalls(t *testing.T) {
	// Repeated seeks with increasing targets (the intersection pattern)
	// must all land correctly.
	s := newStore(t)
	rng := xrand.New(17)
	ps := randomList(rng, 5000)
	meta, _ := s.Put(ps)
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	step := len(ps) / 37
	for i := 0; i < len(ps); i += step {
		target := ps[i].DocID
		if !it.SeekGE(target) {
			t.Fatalf("monotone seek to %d failed", target)
		}
		if it.At().DocID != target {
			t.Fatalf("monotone seek to %d landed on %d", target, it.At().DocID)
		}
	}
}

func TestIteratorPropertyAgainstDecode(t *testing.T) {
	// Property: for random lists, full iteration == Decode(Encode(list)).
	cfg := &quick.Config{MaxCount: 25}
	rng := xrand.New(23)
	if err := quick.Check(func(seed uint32, size uint16) bool {
		n := int(size)%2000 + 1
		_ = seed
		ps := randomList(rng, n)
		s := newStore(t)
		meta, err := s.Put(ps)
		if err != nil {
			return false
		}
		it, err := s.NewIterator(meta)
		if err != nil {
			return false
		}
		defer it.Close()
		i := 0
		for it.Next() {
			if i >= len(ps) || it.At() != ps[i] {
				return false
			}
			i++
		}
		return i == len(ps) && it.Err() == nil
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBlockCodecProperty is the block codec's property test: for seeded
// random lists — with sizes forced through the interesting boundaries
// (exactly one block, partial blocks, one-past boundaries) — the
// iterator must reproduce Decode(Encode(list)) posting for posting, and
// SeekGE must land exactly where a naive reference search says, from
// both fresh and monotonically advancing iterators.
func TestBlockCodecProperty(t *testing.T) {
	rng := xrand.New(97)
	boundary := []int{1, BlockSize - 1, BlockSize, BlockSize + 1,
		2*BlockSize - 1, 2 * BlockSize, 2*BlockSize + 1}
	cfg := &quick.Config{MaxCount: 40}
	trial := 0
	if err := quick.Check(func(sizeSeed uint16) bool {
		n := int(sizeSeed)%(5*BlockSize) + 1
		if trial < len(boundary) {
			n = boundary[trial]
		}
		trial++
		ps := randomList(rng, n)
		s := newStore(t)
		meta, err := s.Put(ps)
		if err != nil {
			return false
		}
		// Round trip through the standalone decoder.
		body, err := Encode(ps)
		if err != nil {
			return false
		}
		back, err := Decode(body)
		if err != nil || !reflect.DeepEqual(back, ps) {
			return false
		}
		// Iterator equivalence with Decode.
		it, err := s.NewIterator(meta)
		if err != nil {
			return false
		}
		for i := 0; i < len(back); i++ {
			if !it.Next() || it.At() != back[i] {
				it.Close()
				return false
			}
		}
		if it.Next() || it.Err() != nil {
			it.Close()
			return false
		}
		it.Close()
		// SeekGE against the naive reference, fresh iterator per target.
		for k := 0; k < 12; k++ {
			target := uint32(rng.Intn(1 << 22))
			idx := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= target })
			it, err := s.NewIterator(meta)
			if err != nil {
				return false
			}
			ok := it.SeekGE(target)
			if idx == len(ps) {
				if ok {
					it.Close()
					return false
				}
			} else if !ok || it.At() != ps[idx] {
				it.Close()
				return false
			}
			it.Close()
		}
		// Monotone SeekGE sequence on one iterator.
		it, err = s.NewIterator(meta)
		if err != nil {
			return false
		}
		defer it.Close()
		step := n/7 + 1
		for i := 0; i < n; i += step {
			if !it.SeekGE(ps[i].DocID) || it.At() != ps[i] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBlockDecode measures the bulk block decode on the hot path:
// one full iterator pass over a long list, ns/posting being the number
// to watch.
func BenchmarkBlockDecode(b *testing.B) {
	s := newStore(b)
	rng := xrand.New(41)
	ps := randomList(rng, 100*BlockSize)
	meta, err := s.Put(ps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.SetBytes(int64(meta.Length))
	for i := 0; i < b.N; i++ {
		it, err := s.NewIterator(meta)
		if err != nil {
			b.Fatal(err)
		}
		var sink uint64
		for it.Next() {
			sink += uint64(it.At().TF)
		}
		it.Close()
		if sink == 0 {
			b.Fatal("empty iteration")
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := xrand.New(1)
	ps := randomList(rng, 10000)
	buf, _ := Encode(ps)
	b.ResetTimer()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeekGEWithSkips(b *testing.B) {
	s := newStore(b)
	n := 200 * BlockSize
	ps := make([]Posting, n)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i * 2), TF: 1}
	}
	meta, _ := s.Put(ps)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _ := s.NewIterator(meta)
		it.SeekGE(uint32(rng.Intn(2 * n)))
		it.Close()
	}
}
