package postings

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/xrand"
)

func TestUvarintRoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		buf := putUvarint(nil, v)
		got, n := uvarint(buf)
		return n == len(buf) && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	buf := putUvarint(nil, 1<<30)
	for cut := 0; cut < len(buf); cut++ {
		if _, n := uvarint(buf[:cut]); n != 0 && cut < len(buf) {
			// Any prefix that still terminates must decode to something;
			// only prefixes ending mid-value must return n==0. A prefix of
			// a multi-byte encoding always has the continuation bit set on
			// its last byte, so n must be 0.
			last := buf[cut-1]
			if last >= 0x80 {
				t.Errorf("truncated input of %d bytes decoded", cut)
			}
		}
	}
	if _, n := uvarint(nil); n != 0 {
		t.Error("empty input decoded")
	}
}

func TestUvarintOverlong(t *testing.T) {
	// Six continuation bytes exceed what a uint32 can need.
	buf := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, n := uvarint(buf); n != 0 {
		t.Error("overlong encoding accepted")
	}
}

func randomList(rng *xrand.RNG, n int) []Posting {
	docs := make(map[uint32]bool, n)
	for len(docs) < n {
		docs[uint32(rng.Intn(1<<22))] = true
	}
	out := make([]Posting, 0, n)
	for d := range docs {
		out = append(out, Posting{DocID: d, TF: uint32(1 + rng.Intn(50))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{0, 1, 2, 10, 127, 128, 129, 1000, 5000} {
		ps := randomList(rng, n)
		buf, err := Encode(ps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ps) {
			t.Fatalf("n=%d: decoded %d postings", n, len(got))
		}
		if n > 0 && !reflect.DeepEqual(got, ps) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode([]Posting{{5, 1}, {5, 1}}); err == nil {
		t.Error("duplicate doc ids accepted")
	}
	if _, err := Encode([]Posting{{5, 1}, {3, 1}}); err == nil {
		t.Error("descending doc ids accepted")
	}
	if _, err := Encode([]Posting{{5, 0}}); err == nil {
		t.Error("zero TF accepted")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	ps := []Posting{{1, 2}, {3, 4}, {100, 5}}
	buf, _ := Encode(ps)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Error("nil input accepted")
	}
}

func TestEncodeCompresses(t *testing.T) {
	// Dense consecutive doc ids with small TFs should cost about 2 bytes
	// per posting, far below the 8-byte struct size.
	ps := make([]Posting, 10000)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i), TF: 1}
	}
	buf, err := Encode(ps)
	if err != nil {
		t.Fatal(err)
	}
	if perPosting := float64(len(buf)) / float64(len(ps)); perPosting > 2.1 {
		t.Errorf("dense list costs %.2f bytes/posting, want about 2", perPosting)
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	d := storage.NewDisk()
	p, err := storage.NewPool(d, 256)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(storage.NewFile(p))
}

func TestStorePutReadAll(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(7)
	lists := make([][]Posting, 20)
	metas := make([]ListMeta, 20)
	for i := range lists {
		lists[i] = randomList(rng, 1+rng.Intn(500))
		m, err := s.Put(lists[i])
		if err != nil {
			t.Fatal(err)
		}
		metas[i] = m
	}
	for i := range lists {
		got, err := s.ReadAll(metas[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, lists[i]) {
			t.Fatalf("list %d round trip mismatch", i)
		}
	}
}

func TestIteratorSequential(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(11)
	ps := randomList(rng, 777)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	var got []Posting
	for it.Next() {
		got = append(got, it.At())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatal("iterator did not reproduce the list")
	}
	if it.DocFreq() != len(ps) {
		t.Errorf("DocFreq = %d, want %d", it.DocFreq(), len(ps))
	}
}

func TestSkipsBuiltOnlyForLongLists(t *testing.T) {
	s := newStore(t)
	rng := xrand.New(3)
	short, err := s.Put(randomList(rng, 2*BlockSize-1))
	if err != nil {
		t.Fatal(err)
	}
	if short.Skips != nil {
		t.Error("short list received a sparse index")
	}
	long, err := s.Put(randomList(rng, 2*BlockSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Skips) != 2 {
		t.Errorf("long list has %d skip entries, want 2", len(long.Skips))
	}
}

func TestSeekGEEquivalence(t *testing.T) {
	// SeekGE through the sparse index must land exactly where a linear
	// scan would, for arbitrary targets.
	s := newStore(t)
	rng := xrand.New(5)
	ps := randomList(rng, 3000)
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Skips) == 0 {
		t.Fatal("expected a sparse index")
	}
	targets := []uint32{0, 1, ps[0].DocID, ps[10].DocID, ps[10].DocID + 1,
		ps[1500].DocID, ps[2999].DocID, ps[2999].DocID + 1}
	for i := 0; i < 60; i++ {
		targets = append(targets, uint32(rng.Intn(1<<22)))
	}
	for _, target := range targets {
		it, err := s.NewIterator(meta)
		if err != nil {
			t.Fatal(err)
		}
		ok := it.SeekGE(target)
		// Reference answer by binary search on the decoded list.
		idx := sort.Search(len(ps), func(i int) bool { return ps[i].DocID >= target })
		if idx == len(ps) {
			if ok {
				t.Fatalf("target %d: SeekGE found %v, want none", target, it.At())
			}
			continue
		}
		if !ok {
			t.Fatalf("target %d: SeekGE found nothing, want %v", target, ps[idx])
		}
		if it.At() != ps[idx] {
			t.Fatalf("target %d: SeekGE at %v, want %v", target, it.At(), ps[idx])
		}
		// The iterator must still stream the remainder correctly.
		want := idx
		for it.Next() {
			want++
			if want >= len(ps) || it.At() != ps[want] {
				t.Fatalf("target %d: stream after seek diverged at %d", target, want)
			}
		}
	}
}

func TestSeekGESavesDecoding(t *testing.T) {
	s := newStore(t)
	// A long dense list; seeking to the end should decode far fewer
	// postings than the list holds.
	n := 100 * BlockSize
	ps := make([]Posting, n)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i * 3), TF: 1}
	}
	meta, err := s.Put(ps)
	if err != nil {
		t.Fatal(err)
	}
	s.Counters.Reset()
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	if !it.SeekGE(ps[n-1].DocID) {
		t.Fatal("seek to last posting failed")
	}
	if dec := s.Counters.PostingsDecoded; dec > int64(2*BlockSize) {
		t.Errorf("seek to end decoded %d postings, want <= %d", dec, 2*BlockSize)
	}
	if s.Counters.SkipsTaken == 0 {
		t.Error("no skips recorded")
	}
}

func TestSeekGEMonotoneCalls(t *testing.T) {
	// Repeated seeks with increasing targets (the intersection pattern)
	// must all land correctly.
	s := newStore(t)
	rng := xrand.New(17)
	ps := randomList(rng, 5000)
	meta, _ := s.Put(ps)
	it, err := s.NewIterator(meta)
	if err != nil {
		t.Fatal(err)
	}
	step := len(ps) / 37
	for i := 0; i < len(ps); i += step {
		target := ps[i].DocID
		if !it.SeekGE(target) {
			t.Fatalf("monotone seek to %d failed", target)
		}
		if it.At().DocID != target {
			t.Fatalf("monotone seek to %d landed on %d", target, it.At().DocID)
		}
	}
}

func TestIteratorPropertyAgainstDecode(t *testing.T) {
	// Property: for random lists, full iteration == Decode(Encode(list)).
	cfg := &quick.Config{MaxCount: 25}
	rng := xrand.New(23)
	if err := quick.Check(func(seed uint32, size uint16) bool {
		n := int(size)%2000 + 1
		_ = seed
		ps := randomList(rng, n)
		s := newStore(&testing.T{})
		meta, err := s.Put(ps)
		if err != nil {
			return false
		}
		it, err := s.NewIterator(meta)
		if err != nil {
			return false
		}
		i := 0
		for it.Next() {
			if i >= len(ps) || it.At() != ps[i] {
				return false
			}
			i++
		}
		return i == len(ps) && it.Err() == nil
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := xrand.New(1)
	ps := randomList(rng, 10000)
	buf, _ := Encode(ps)
	b.ResetTimer()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeekGEWithSkips(b *testing.B) {
	s := newStore(&testing.T{})
	n := 200 * BlockSize
	ps := make([]Posting, n)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i * 2), TF: 1}
	}
	meta, _ := s.Put(ps)
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, _ := s.NewIterator(meta)
		it.SeekGE(uint32(rng.Intn(2 * n)))
	}
}
