package postings

import (
	"fmt"
	"sync"

	"repro/internal/blockcache"
	"repro/internal/storage"
)

// BlockSource serves byte ranges of one encoded list body. It is the
// seam that makes the storage backend a swappable axis: iterators decode
// blocks through this interface and never assume the body is a resident
// []byte. Two implementations exist — MemorySource (the whole body held
// in one buffer, today's in-RAM path) and PagedSource (blocks faulted in
// from a storage.Pool on demand, the disk-resident path).
//
// The contract: Range(off, n) returns the body bytes [off, off+n), and
// the returned slice is only valid until the next Range or Close call on
// the same source — an iterator holds exactly one block at a time, so a
// paged implementation may reuse one scratch buffer (or repin pages) per
// call. Sources are single-goroutine, like the iterators that own them;
// concurrency comes from opening one iterator per goroutine.
type BlockSource interface {
	// Range returns body bytes [off, off+n). Out-of-bounds requests are
	// corruption (the skip index pointed outside the body) and must
	// return an error, never panic.
	Range(off, n int) ([]byte, error)
	// Faults reports how many Range calls were served by faulting blocks
	// in from paged storage; a memory source reports 0. Iterators fold
	// the tally into Counters.BlocksFaulted.
	Faults() int64
	// Close releases the source's buffers or pages. Range must not be
	// called after Close.
	Close()
}

// Source structs opened on the iterator hot path are pooled: a search
// opens one source per query term, and without recycling those structs
// are the last allocations left on an otherwise alloc-free path. Only
// sources created internally by Store.openSource recycle themselves
// (recycle flag); sources built through the exported constructors stay
// caller-owned.
var (
	memSourcePool    = sync.Pool{New: func() any { return new(MemorySource) }}
	pagedSourcePool  = sync.Pool{New: func() any { return new(PagedSource) }}
	cachedSourcePool = sync.Pool{New: func() any { return new(CachedSource) }}
)

// MemorySource is a BlockSource over a fully resident body. The buffer
// may come from the package's internal pool (iterator open path), in
// which case Close recycles it.
type MemorySource struct {
	body    []byte
	bodyp   *[]byte // pool pointer when body came from getBody; nil otherwise
	recycle bool
}

// NewMemorySource wraps a caller-owned body slice. The source never
// recycles the slice; the caller keeps ownership after Close.
func NewMemorySource(body []byte) *MemorySource {
	return &MemorySource{body: body}
}

// Range returns body[off : off+n].
func (m *MemorySource) Range(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > len(m.body)-n {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte body", ErrCorrupt, off, off+n, len(m.body))
	}
	return m.body[off : off+n], nil
}

// Faults reports 0: nothing is ever faulted in.
func (m *MemorySource) Faults() int64 { return 0 }

// Close recycles the buffer when it came from the internal pool.
func (m *MemorySource) Close() {
	if m.bodyp != nil {
		putBody(m.bodyp)
		m.bodyp = nil
	}
	m.body = nil
	if m.recycle {
		m.recycle = false
		memSourcePool.Put(m)
	}
}

// PagedSource is a BlockSource over a body resident in a page device
// (a persisted segment) served through a buffer pool. Each Range call
// fetches the page-aligned run of pages covering the requested block,
// copies the block's bytes into a reusable scratch buffer, and unpins
// every page before returning — no pin is ever held between calls, so
// iterators work at any pool capacity ≥ 1 and concurrent iterators
// cannot deadlock the pool. Whether a fetch hits the pool cache or goes
// to disk is the pool's working-set policy; the source counts one fault
// per Range regardless (the block had to be assembled from paged
// storage), while the pool's own hit/miss counters attribute the
// physical I/O.
type PagedSource struct {
	pool    *storage.Pool
	base    int64 // absolute byte offset of the body on the device
	length  int   // body length in bytes
	scratch *[]byte
	faults  int64
	recycle bool
}

// NewPagedSource opens a source over the body at absolute device byte
// offset base, spanning length bytes. The device must map page id k to
// bytes [(k-1)*PageSize, k*PageSize), as storage.FileDisk does.
func NewPagedSource(pool *storage.Pool, base int64, length int) (*PagedSource, error) {
	if pool == nil {
		return nil, fmt.Errorf("postings: nil pool")
	}
	if base < 0 || length < 0 {
		return nil, fmt.Errorf("postings: invalid paged body [%d,+%d)", base, length)
	}
	return &PagedSource{pool: pool, base: base, length: length}, nil
}

// Range assembles body bytes [off, off+n) from the covering pages.
func (p *PagedSource) Range(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > p.length-n {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte body", ErrCorrupt, off, off+n, p.length)
	}
	if p.scratch == nil || cap(*p.scratch) < n {
		if p.scratch != nil {
			putBody(p.scratch)
		}
		p.scratch = getBody(n)
	}
	buf := (*p.scratch)[:n]
	abs := p.base + int64(off)
	for filled := 0; filled < n; {
		pid := storage.PageID(abs/storage.PageSize) + 1
		poff := int(abs % storage.PageSize)
		pg, err := p.pool.Fetch(pid)
		if err != nil {
			return nil, fmt.Errorf("postings: fault page %d: %w", pid, err)
		}
		c := copy(buf[filled:], pg.Data()[poff:])
		if err := p.pool.Unpin(pg, false); err != nil {
			return nil, fmt.Errorf("postings: unpin page %d: %w", pid, err)
		}
		filled += c
		abs += int64(c)
	}
	p.faults++
	return buf, nil
}

// Faults reports how many block ranges were faulted in so far.
func (p *PagedSource) Faults() int64 { return p.faults }

// Close recycles the scratch buffer — or, for sources opened by the
// store itself, the whole struct (scratch attached, so the next open
// skips the buffer-pool round trip too).
func (p *PagedSource) Close() {
	if p.recycle {
		p.pool = nil
		p.faults = 0
		p.recycle = false
		pagedSourcePool.Put(p)
		return
	}
	if p.scratch != nil {
		putBody(p.scratch)
		p.scratch = nil
	}
}

// CachedSource layers a shared block cache over a paged body: Range
// serves a resident range from the cache without touching the buffer
// pool (and without counting a fault — the block was not assembled from
// paged storage), and on a miss it faults the range in through the
// inner PagedSource, then offers the bytes to the cache's admission
// policy. The cached bytes are immutable and shared across sources, in
// line with the BlockSource contract (valid only until the next Range —
// callers never write to the returned slice).
//
// CachedSource instances are created only by Store.openSource, which
// keys the cache by the store's immutable space id and the range's
// absolute device offset — two stores over the same space share hits.
type CachedSource struct {
	under PagedSource
	cache *blockcache.Cache
	space uint64
}

// Range returns body bytes [off, off+n), from cache when resident.
func (c *CachedSource) Range(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > c.under.length-n {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte body", ErrCorrupt, off, off+n, c.under.length)
	}
	abs := c.under.base + int64(off)
	if b, ok := c.cache.Get(c.space, abs, n); ok {
		return b, nil
	}
	b, err := c.under.Range(off, n)
	if err != nil {
		return nil, err
	}
	c.cache.Admit(c.space, abs, b)
	return b, nil
}

// Faults reports how many ranges had to be assembled from paged storage
// (cache hits do not count).
func (c *CachedSource) Faults() int64 { return c.under.faults }

// Close recycles the source struct (keeping its scratch buffer).
func (c *CachedSource) Close() {
	c.cache = nil
	c.under.pool = nil
	c.under.faults = 0
	cachedSourcePool.Put(c)
}
