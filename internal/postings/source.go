package postings

import (
	"fmt"

	"repro/internal/storage"
)

// BlockSource serves byte ranges of one encoded list body. It is the
// seam that makes the storage backend a swappable axis: iterators decode
// blocks through this interface and never assume the body is a resident
// []byte. Two implementations exist — MemorySource (the whole body held
// in one buffer, today's in-RAM path) and PagedSource (blocks faulted in
// from a storage.Pool on demand, the disk-resident path).
//
// The contract: Range(off, n) returns the body bytes [off, off+n), and
// the returned slice is only valid until the next Range or Close call on
// the same source — an iterator holds exactly one block at a time, so a
// paged implementation may reuse one scratch buffer (or repin pages) per
// call. Sources are single-goroutine, like the iterators that own them;
// concurrency comes from opening one iterator per goroutine.
type BlockSource interface {
	// Range returns body bytes [off, off+n). Out-of-bounds requests are
	// corruption (the skip index pointed outside the body) and must
	// return an error, never panic.
	Range(off, n int) ([]byte, error)
	// Faults reports how many Range calls were served by faulting blocks
	// in from paged storage; a memory source reports 0. Iterators fold
	// the tally into Counters.BlocksFaulted.
	Faults() int64
	// Close releases the source's buffers or pages. Range must not be
	// called after Close.
	Close()
}

// MemorySource is a BlockSource over a fully resident body. The buffer
// may come from the package's internal pool (iterator open path), in
// which case Close recycles it.
type MemorySource struct {
	body   []byte
	pooled bool
}

// NewMemorySource wraps a caller-owned body slice. The source never
// recycles the slice; the caller keeps ownership after Close.
func NewMemorySource(body []byte) *MemorySource {
	return &MemorySource{body: body}
}

// Range returns body[off : off+n].
func (m *MemorySource) Range(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > len(m.body)-n {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte body", ErrCorrupt, off, off+n, len(m.body))
	}
	return m.body[off : off+n], nil
}

// Faults reports 0: nothing is ever faulted in.
func (m *MemorySource) Faults() int64 { return 0 }

// Close recycles the buffer when it came from the internal pool.
func (m *MemorySource) Close() {
	if m.pooled && m.body != nil {
		putBody(m.body)
	}
	m.body = nil
}

// PagedSource is a BlockSource over a body resident in a page device
// (a persisted segment) served through a buffer pool. Each Range call
// fetches the page-aligned run of pages covering the requested block,
// copies the block's bytes into a reusable scratch buffer, and unpins
// every page before returning — no pin is ever held between calls, so
// iterators work at any pool capacity ≥ 1 and concurrent iterators
// cannot deadlock the pool. Whether a fetch hits the pool cache or goes
// to disk is the pool's working-set policy; the source counts one fault
// per Range regardless (the block had to be assembled from paged
// storage), while the pool's own hit/miss counters attribute the
// physical I/O.
type PagedSource struct {
	pool    *storage.Pool
	base    int64 // absolute byte offset of the body on the device
	length  int   // body length in bytes
	scratch []byte
	faults  int64
}

// NewPagedSource opens a source over the body at absolute device byte
// offset base, spanning length bytes. The device must map page id k to
// bytes [(k-1)*PageSize, k*PageSize), as storage.FileDisk does.
func NewPagedSource(pool *storage.Pool, base int64, length int) (*PagedSource, error) {
	if pool == nil {
		return nil, fmt.Errorf("postings: nil pool")
	}
	if base < 0 || length < 0 {
		return nil, fmt.Errorf("postings: invalid paged body [%d,+%d)", base, length)
	}
	return &PagedSource{pool: pool, base: base, length: length}, nil
}

// Range assembles body bytes [off, off+n) from the covering pages.
func (p *PagedSource) Range(off, n int) ([]byte, error) {
	if off < 0 || n < 0 || off > p.length-n {
		return nil, fmt.Errorf("%w: range [%d,%d) outside %d-byte body", ErrCorrupt, off, off+n, p.length)
	}
	if cap(p.scratch) < n {
		if p.scratch != nil {
			putBody(p.scratch)
		}
		p.scratch = getBody(n)
	}
	buf := p.scratch[:n]
	abs := p.base + int64(off)
	for filled := 0; filled < n; {
		pid := storage.PageID(abs/storage.PageSize) + 1
		poff := int(abs % storage.PageSize)
		pg, err := p.pool.Fetch(pid)
		if err != nil {
			return nil, fmt.Errorf("postings: fault page %d: %w", pid, err)
		}
		c := copy(buf[filled:], pg.Data()[poff:])
		if err := p.pool.Unpin(pg, false); err != nil {
			return nil, fmt.Errorf("postings: unpin page %d: %w", pid, err)
		}
		filled += c
		abs += int64(c)
	}
	p.faults++
	return buf, nil
}

// Faults reports how many block ranges were faulted in so far.
func (p *PagedSource) Faults() int64 { return p.faults }

// Close recycles the scratch buffer.
func (p *PagedSource) Close() {
	if p.scratch != nil {
		putBody(p.scratch)
		p.scratch = nil
	}
}
