package postings

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/storage"
)

// Counters tallies the logical decoding work done while reading lists.
// They complement the storage layer's page counters: pages measure I/O,
// these measure CPU-side decompression effort. Experiments reset and read
// them per query.
//
// All mutations go through atomic operations, so iterators opened from
// concurrent searches over one shared Store can count without racing.
// Reading the fields directly is fine once the concurrent work has been
// joined; use the Load* accessors to sample while searches are running.
type Counters struct {
	PostingsDecoded int64 // individual postings decompressed
	SkipsTaken      int64 // sparse-index jumps that avoided decoding a block
	ListsOpened     int64
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.PostingsDecoded, 0)
	atomic.StoreInt64(&c.SkipsTaken, 0)
	atomic.StoreInt64(&c.ListsOpened, 0)
}

// LoadPostingsDecoded atomically samples the decoded-postings counter.
func (c *Counters) LoadPostingsDecoded() int64 { return atomic.LoadInt64(&c.PostingsDecoded) }

// LoadSkipsTaken atomically samples the skip counter.
func (c *Counters) LoadSkipsTaken() int64 { return atomic.LoadInt64(&c.SkipsTaken) }

// LoadListsOpened atomically samples the lists-opened counter.
func (c *Counters) LoadListsOpened() int64 { return atomic.LoadInt64(&c.ListsOpened) }

// SkipEntry is one entry of a list's non-dense index: the first document
// id of a block and the byte offset of that block within the encoded list
// body. The paper proposes exactly this structure to make the large
// (frequent-terms) fragment cheap to probe: a reader can jump to the block
// that may contain a wanted document instead of decompressing the whole
// list.
type SkipEntry struct {
	FirstDoc uint32
	Offset   uint32
}

// ListMeta describes a stored list: where it lives in the file, its
// document frequency, and its sparse index (nil when the list is short).
type ListMeta struct {
	Offset  int64       // byte offset of the encoded body in the file
	Length  int32       // encoded body length in bytes
	DocFreq int32       // number of postings
	Skips   []SkipEntry // non-dense index over blocks of BlockSize postings
}

// BlockSize is the number of postings per skip block. 128 keeps the sparse
// index below 1% of list size while making a block a few hundred bytes —
// about the granularity of a cache line fetch in the simulated model.
const BlockSize = 128

// Store persists encoded postings lists in a storage.File and serves
// readers over them. One Store backs one index fragment.
//
// Counters must stay the first field: Stores are heap-allocated, so the
// struct's first word is 64-bit aligned, which the atomic int64
// operations on the counters require on 32-bit platforms.
type Store struct {
	Counters Counters
	file     *storage.File
}

// NewStore creates an empty list store writing into file.
func NewStore(file *storage.File) *Store {
	return &Store{file: file}
}

// File exposes the backing file (for size reporting).
func (s *Store) File() *storage.File { return s.file }

// Put encodes and appends a posting list, returning its metadata. Lists
// with more than 2×BlockSize postings get a sparse index.
func (s *Store) Put(ps []Posting) (ListMeta, error) {
	body, err := Encode(ps)
	if err != nil {
		return ListMeta{}, err
	}
	off, err := s.file.Append(body)
	if err != nil {
		return ListMeta{}, err
	}
	meta := ListMeta{Offset: off, Length: int32(len(body)), DocFreq: int32(len(ps))}
	if len(ps) >= 2*BlockSize {
		meta.Skips = buildSkips(ps)
	}
	return meta, nil
}

// buildSkips computes the sparse index by re-walking the encoding and
// recording each block's first document and byte offset within the body.
func buildSkips(ps []Posting) []SkipEntry {
	var skips []SkipEntry
	// Reproduce the byte positions Encode generates.
	buf := putUvarint(nil, uint32(len(ps)))
	prev := int64(-1)
	for i, p := range ps {
		if i%BlockSize == 0 {
			skips = append(skips, SkipEntry{FirstDoc: p.DocID, Offset: uint32(len(buf))})
		}
		buf = putUvarint(buf, uint32(int64(p.DocID)-prev-1))
		buf = putUvarint(buf, p.TF)
		prev = int64(p.DocID)
	}
	return skips
}

// ReadAll decodes an entire stored list.
func (s *Store) ReadAll(meta ListMeta) ([]Posting, error) {
	body := make([]byte, meta.Length)
	if _, err := s.file.ReadAt(body, meta.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	ps, err := Decode(body)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.Counters.ListsOpened, 1)
	atomic.AddInt64(&s.Counters.PostingsDecoded, int64(len(ps)))
	return ps, nil
}

// Iterator streams a stored list in document-id order and supports
// SeekGE via the sparse index. The iterator reads the full encoded body
// once (the page fetches are accounted) but only decodes the blocks it
// visits, which is where the sparse index saves CPU work.
type Iterator struct {
	store   *Store
	meta    ListMeta
	body    []byte
	pos     int   // byte position within body
	prevDoc int64 // last decoded doc id, -1 before the first
	decoded int32 // postings decoded so far
	cur     Posting
	valid   bool
	err     error
}

// NewIterator opens a streaming reader over the list described by meta.
func (s *Store) NewIterator(meta ListMeta) (*Iterator, error) {
	body := make([]byte, meta.Length)
	if _, err := s.file.ReadAt(body, meta.Offset); err != nil && err != io.EOF {
		return nil, err
	}
	atomic.AddInt64(&s.Counters.ListsOpened, 1)
	it := &Iterator{store: s, meta: meta, body: body}
	// Skip the count header.
	_, n := uvarint(body)
	if n == 0 {
		return nil, ErrCorrupt
	}
	it.pos = n
	it.prevDoc = -1
	return it, nil
}

// Next advances to the next posting, returning false at end of list or on
// error (check Err).
func (it *Iterator) Next() bool {
	if it.err != nil || it.decoded >= it.meta.DocFreq {
		it.valid = false
		return false
	}
	gap, n := uvarint(it.body[it.pos:])
	if n == 0 {
		it.err = ErrCorrupt
		it.valid = false
		return false
	}
	it.pos += n
	tf, n := uvarint(it.body[it.pos:])
	if n == 0 {
		it.err = ErrCorrupt
		it.valid = false
		return false
	}
	it.pos += n
	doc := it.prevDoc + 1 + int64(gap)
	it.prevDoc = doc
	it.decoded++
	atomic.AddInt64(&it.store.Counters.PostingsDecoded, 1)
	it.cur = Posting{DocID: uint32(doc), TF: tf}
	it.valid = true
	return true
}

// SeekGE positions the iterator at the first posting with DocID >= doc and
// reports whether one exists. When the list has a sparse index, blocks
// strictly before the target are skipped without decoding.
func (it *Iterator) SeekGE(doc uint32) bool {
	if it.err != nil {
		return false
	}
	if it.valid && it.cur.DocID >= doc {
		return true
	}
	if len(it.meta.Skips) > 0 {
		// Find the last block whose first doc is <= doc; it is the only
		// block that can contain the target. sort.Search finds the first
		// block with FirstDoc > doc.
		idx := sort.Search(len(it.meta.Skips), func(i int) bool {
			return it.meta.Skips[i].FirstDoc > doc
		}) - 1
		if idx >= 0 {
			blockStartCount := int32(idx) * BlockSize
			if blockStartCount > it.decoded {
				// Jump forward: restart decoding at the block boundary.
				skipped := blockStartCount - it.decoded
				it.pos = int(it.meta.Skips[idx].Offset)
				it.prevDoc = int64(it.meta.Skips[idx].FirstDoc) - 1
				// The delta stored at a block boundary is relative to the
				// previous posting; we reconstruct by treating FirstDoc-1
				// as the previous doc, which makes gap+prev+1 == FirstDoc
				// only if the stored gap were 0. It is not, so instead we
				// decode the gap and overwrite: see below.
				it.decoded = blockStartCount
				atomic.AddInt64(&it.store.Counters.SkipsTaken, int64(skipped)/BlockSize)
				// Decode the block's first posting with the known FirstDoc.
				gap, n := uvarint(it.body[it.pos:])
				_ = gap
				if n == 0 {
					it.err = ErrCorrupt
					return false
				}
				it.pos += n
				tf, n := uvarint(it.body[it.pos:])
				if n == 0 {
					it.err = ErrCorrupt
					return false
				}
				it.pos += n
				it.decoded++
				atomic.AddInt64(&it.store.Counters.PostingsDecoded, 1)
				it.prevDoc = int64(it.meta.Skips[idx].FirstDoc)
				it.cur = Posting{DocID: it.meta.Skips[idx].FirstDoc, TF: tf}
				it.valid = true
				if it.cur.DocID >= doc {
					return true
				}
			}
		}
	}
	for it.Next() {
		if it.cur.DocID >= doc {
			return true
		}
	}
	return false
}

// At returns the current posting. Only valid after Next or SeekGE returned
// true.
func (it *Iterator) At() Posting { return it.cur }

// Err reports any decoding error encountered.
func (it *Iterator) Err() error {
	if it.err != nil {
		return fmt.Errorf("postings iterator: %w", it.err)
	}
	return nil
}

// DocFreq returns the total number of postings in the underlying list.
func (it *Iterator) DocFreq() int { return int(it.meta.DocFreq) }
