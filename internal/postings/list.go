package postings

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/blockcache"
	"repro/internal/storage"
)

// Counters tallies the logical decoding work done while reading lists.
// They complement the storage layer's page counters: pages measure I/O,
// these measure CPU-side decompression effort. Experiments reset and read
// them per query.
//
// All mutations go through atomic operations, so iterators opened from
// concurrent searches over one shared Store can count without racing.
// Iterators accumulate their counts locally and flush in batches — once
// per decoded block and on Close — so the hot decode loop performs one
// atomic add per block instead of one per posting. Reading the fields
// directly is fine once the concurrent work has been joined (and its
// iterators closed); use the Load* accessors to sample while searches
// are running.
type Counters struct {
	PostingsDecoded int64 // individual postings decompressed
	SkipsTaken      int64 // blocks skipped or bounded away without decoding
	ListsOpened     int64
	BlocksFaulted   int64 // blocks assembled from paged storage (0 on the memory path)
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.PostingsDecoded, 0)
	atomic.StoreInt64(&c.SkipsTaken, 0)
	atomic.StoreInt64(&c.ListsOpened, 0)
	atomic.StoreInt64(&c.BlocksFaulted, 0)
}

// LoadPostingsDecoded atomically samples the decoded-postings counter.
func (c *Counters) LoadPostingsDecoded() int64 { return atomic.LoadInt64(&c.PostingsDecoded) }

// LoadSkipsTaken atomically samples the skip counter.
func (c *Counters) LoadSkipsTaken() int64 { return atomic.LoadInt64(&c.SkipsTaken) }

// LoadListsOpened atomically samples the lists-opened counter.
func (c *Counters) LoadListsOpened() int64 { return atomic.LoadInt64(&c.ListsOpened) }

// LoadBlocksFaulted atomically samples the block-fault counter.
func (c *Counters) LoadBlocksFaulted() int64 { return atomic.LoadInt64(&c.BlocksFaulted) }

// SkipEntry is one entry of a list's non-dense index, describing one
// block: its document-id range, byte offset within the encoded body,
// posting count, and the largest term frequency inside it. The paper
// proposes exactly this structure to make the large (frequent-terms)
// fragment cheap to probe; the max TF extends it with a per-block score
// bound, so a reader can prove a whole block irrelevant — Block-Max
// pruning — without decoding it.
type SkipEntry struct {
	FirstDoc uint32 // first document id in the block
	LastDoc  uint32 // last document id in the block
	Offset   uint32 // byte offset of the block header within the body
	Count    int32  // postings in the block (1..BlockSize)
	MaxTF    uint32 // largest term frequency in the block
}

// ListMeta describes a stored list: where it lives in the backing store,
// its document frequency, its list-wide maximum TF, and its block index
// (one SkipEntry per block; nil only for empty lists).
type ListMeta struct {
	Offset  int64       // byte offset of the encoded body in the store
	Length  int32       // encoded body length in bytes
	DocFreq int32       // number of postings
	MaxTF   uint32      // largest term frequency in the list
	Skips   []SkipEntry // non-dense index, one entry per block
}

// BlockSize is the number of postings per block. 128 keeps the block
// index below 1% of list size while making a block a few hundred bytes —
// about the granularity of a cache line fetch in the simulated model.
const BlockSize = 128

// bodyPool recycles the per-iterator encoded-body buffers. Bodies vary
// in length, so the pool holds capacity-grown slices that callers
// re-slice to the length they need.
var bodyPool = sync.Pool{New: func() any { return new([]byte) }}

// getBody draws a buffer of length n from the pool. The pointer — not
// the slice — travels between Get and Put: handing the same *[]byte
// back to putBody avoids re-boxing a slice header on every Put, which
// would otherwise be one heap allocation per recycled buffer.
func getBody(n int) *[]byte {
	p := bodyPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBody returns a buffer (by the pointer getBody handed out) to the
// pool.
func putBody(p *[]byte) {
	bodyPool.Put(p)
}

// Store persists encoded postings lists and serves readers over them.
// One Store backs one index fragment. It has two backings:
//
//   - a build-time storage.File (NewStore): lists are appended during
//     indexing and iterators read a list's whole body into one pooled
//     buffer up front (MemorySource) — the in-RAM hot path;
//   - a read-only paged region of a persisted segment (NewPagedStore):
//     iterators fault individual blocks in through the buffer pool on
//     demand (PagedSource), so the pool capacity — not the index size —
//     bounds resident memory.
//
// Counters must stay the first field: Stores are heap-allocated, so the
// struct's first word is 64-bit aligned, which the atomic int64
// operations on the counters require on 32-bit platforms.
type Store struct {
	Counters Counters

	file *storage.File // build backing; nil for paged stores

	pool *storage.Pool // paged backing; nil for file stores
	base int64         // absolute device byte offset of the postings region
	size int64         // region length in bytes

	// cache, when attached to a paged store, serves hot block ranges
	// without touching the pool; space identifies this store's immutable
	// backing region in the (shared) cache's key space.
	cache *blockcache.Cache
	space uint64
}

// SetBlockCache attaches a shared block cache to the store. space must
// identify the store's backing region uniquely and forever (the live
// index uses the segment sequence number) — the cache trusts that a
// (space, offset) pair never names two different byte contents. Only
// paged stores consult the cache; on a file-backed build store the call
// is a no-op. Attach before opening iterators; the store does not
// synchronize the fields.
func (s *Store) SetBlockCache(c *blockcache.Cache, space uint64) {
	s.cache = c
	s.space = space
}

// NewStore creates an empty list store writing into file.
func NewStore(file *storage.File) *Store {
	return &Store{file: file}
}

// NewPagedStore opens a read-only store over an existing postings region
// of a persisted segment: size bytes starting at the page-aligned device
// page firstPage, served block-at-a-time through pool. ListMeta offsets
// are relative to the region, exactly as Put assigned them at build time.
func NewPagedStore(pool *storage.Pool, firstPage storage.PageID, size int64) (*Store, error) {
	if pool == nil {
		return nil, fmt.Errorf("postings: nil pool")
	}
	if firstPage == storage.InvalidPage || size < 0 {
		return nil, fmt.Errorf("postings: invalid paged region (page %d, %d bytes)", firstPage, size)
	}
	return &Store{pool: pool, base: int64(firstPage-1) * storage.PageSize, size: size}, nil
}

// Paged reports whether the store serves a persisted segment region.
func (s *Store) Paged() bool { return s.pool != nil }

// File exposes the backing file (nil for paged stores).
func (s *Store) File() *storage.File { return s.file }

// Size reports the byte volume of the stored lists.
func (s *Store) Size() int64 {
	if s.file != nil {
		return s.file.Size()
	}
	return s.size
}

// Put encodes and appends a posting list, returning its metadata. The
// encoding pass itself emits the block index and the max-TF bounds, so
// nothing is walked twice. Paged stores are read-only.
func (s *Store) Put(ps []Posting) (ListMeta, error) {
	if s.file == nil {
		return ListMeta{}, fmt.Errorf("postings: Put on a read-only paged store")
	}
	body, skips, maxTF, err := EncodeBlocks(ps)
	if err != nil {
		return ListMeta{}, err
	}
	off, err := s.file.Append(body)
	if err != nil {
		return ListMeta{}, err
	}
	return ListMeta{
		Offset:  off,
		Length:  int32(len(body)),
		DocFreq: int32(len(ps)),
		MaxTF:   maxTF,
		Skips:   skips,
	}, nil
}

// openSource opens the BlockSource for one stored list: a MemorySource
// holding the whole body on the file backing, a PagedSource faulting
// blocks through the pool on the paged backing.
func (s *Store) openSource(meta ListMeta) (BlockSource, error) {
	if s.file != nil {
		bp := getBody(int(meta.Length))
		body := *bp
		n, err := s.file.ReadAt(body, meta.Offset)
		if err != nil && err != io.EOF {
			putBody(bp)
			return nil, err
		}
		if n != len(body) {
			// A short read into a recycled buffer would leave another
			// list's stale bytes in the tail; fail fast instead of
			// decoding them.
			putBody(bp)
			return nil, ErrCorrupt
		}
		m := memSourcePool.Get().(*MemorySource)
		m.body, m.bodyp, m.recycle = body, bp, true
		return m, nil
	}
	if meta.Offset < 0 || meta.Offset > s.size-int64(meta.Length) {
		return nil, fmt.Errorf("%w: list body [%d,+%d) outside %d-byte postings region",
			ErrCorrupt, meta.Offset, meta.Length, s.size)
	}
	if s.cache != nil {
		cs := cachedSourcePool.Get().(*CachedSource)
		cs.cache, cs.space = s.cache, s.space
		cs.under.pool = s.pool
		cs.under.base = s.base + meta.Offset
		cs.under.length = int(meta.Length)
		cs.under.faults = 0
		return cs, nil
	}
	ps := pagedSourcePool.Get().(*PagedSource)
	ps.pool, ps.base, ps.length = s.pool, s.base+meta.Offset, int(meta.Length)
	ps.faults, ps.recycle = 0, true
	return ps, nil
}

// ReadAll decodes an entire stored list.
func (s *Store) ReadAll(meta ListMeta) ([]Posting, error) {
	src, err := s.openSource(meta)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	body, err := src.Range(0, int(meta.Length))
	if err != nil {
		return nil, err
	}
	ps, err := Decode(body)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.Counters.ListsOpened, 1)
	atomic.AddInt64(&s.Counters.PostingsDecoded, int64(len(ps)))
	if f := src.Faults(); f != 0 {
		atomic.AddInt64(&s.Counters.BlocksFaulted, f)
	}
	return ps, nil
}

// Iterator streams a stored list in document-id order and supports
// SeekGE via the block index. Blocks are read through a BlockSource —
// the iterator holds exactly one block's bytes at a time and decodes it
// block-at-a-time: on the streaming path a whole block is decoded as a
// unit into the docs/tfs arrays in one bulk loop, while a seek decodes
// only the prefix of the target block up to the wanted document and
// remembers the resume point — later streaming or seeking continues from
// the saved byte position, so no posting is ever decoded twice and a
// probe never pays for the tail of a block it does not need. Callers
// must Close the iterator when done: Close flushes the locally batched
// counters and releases the source. Using an iterator after Close is
// invalid.
type Iterator struct {
	counters *Counters
	src      BlockSource
	meta     ListMeta
	blk      []byte // the open block's bytes (header + payload); source-owned

	block  int // index of the open block in meta.Skips (-1 before the first)
	bi     int // cursor within the decoded prefix of the open block
	bn     int // postings decoded so far in the open block
	bcnt   int // total postings in the open block
	bstart int // offset of the open block's payload within blk
	bpos   int // offset of the next undecoded posting within blk
	bend   int // offset one past the open block's payload within blk
	bmax   uint32
	docs   [BlockSize]uint32
	tfs    [BlockSize]uint32

	localDecoded int64 // counters batched locally, flushed per decode step / on Close
	localSkips   int64
	flushedFault int64 // src.Faults() already folded into counters

	// alive, when set, filters the stream down to live documents: Next
	// and SeekGE step over tombstoned postings, and FirstDoc reports the
	// first alive document. The list-level bounds (MaxTF, BlockMaxTF,
	// LastDoc, DocFreq) deliberately stay unfiltered — they remain valid
	// *upper* bounds over the filtered stream, which is all the pruning
	// machinery requires.
	alive *AliveBitmap

	valid  bool
	done   bool
	closed bool
	err    error
}

// NewIterator opens a streaming reader over the list described by meta.
func (s *Store) NewIterator(meta ListMeta) (*Iterator, error) {
	src, err := s.openSource(meta)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.Counters.ListsOpened, 1)
	return NewIteratorOver(src, meta, &s.Counters), nil
}

// iterPool recycles Iterator structs: the docs/tfs decode arrays make
// an iterator ~1KB, and a search opens one per query term — recycling
// them is most of what makes the steady-state hot path allocation-free.
// The arrays are deliberately not zeroed on reuse; only the decoded
// prefix [0, bn) is ever read.
var iterPool = sync.Pool{New: func() any { return new(Iterator) }}

// NewIteratorOver opens an iterator reading blocks from an arbitrary
// BlockSource. The iterator takes ownership of src (Close closes it) and
// batches its decode/skip/fault counts into counters, which must be
// non-nil. The returned iterator may be recycled from an internal pool;
// it is invalid after Close.
func NewIteratorOver(src BlockSource, meta ListMeta, counters *Counters) *Iterator {
	it := iterPool.Get().(*Iterator)
	it.counters, it.src, it.meta = counters, src, meta
	it.blk = nil
	it.block = -1
	it.bi, it.bn, it.bcnt = 0, 0, 0
	it.bstart, it.bpos, it.bend = 0, 0, 0
	it.bmax = 0
	it.localDecoded, it.localSkips, it.flushedFault = 0, 0, 0
	it.alive = nil
	it.valid, it.done, it.closed = false, false, false
	it.err = nil
	return it
}

// Close flushes the iterator's batched counters, releases the block
// source, and recycles the iterator. Closing twice is a no-op, but any
// other use after Close is invalid — the struct may already be serving
// another list.
func (it *Iterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.flush()
	if it.src != nil {
		it.src.Close()
		it.src = nil
	}
	it.blk = nil
	it.counters = nil
	it.meta = ListMeta{}
	it.alive = nil
	it.err = nil
	iterPool.Put(it)
}

// flush drains the locally accumulated counts into the store's shared
// counters — one atomic add per non-zero counter.
func (it *Iterator) flush() {
	if it.localDecoded != 0 {
		atomic.AddInt64(&it.counters.PostingsDecoded, it.localDecoded)
		it.localDecoded = 0
	}
	if it.localSkips != 0 {
		atomic.AddInt64(&it.counters.SkipsTaken, it.localSkips)
		it.localSkips = 0
	}
	if it.src != nil {
		if f := it.src.Faults(); f != it.flushedFault {
			atomic.AddInt64(&it.counters.BlocksFaulted, f-it.flushedFault)
			it.flushedFault = f
		}
	}
}

// blockExtent returns the byte range [start, end) of block b within the
// body: from its skip-index offset to the next block's (or the body
// end). ok is false when the skip index is inconsistent with the body
// length — corruption, never a programming error.
func (it *Iterator) blockExtent(b int) (start, end int, ok bool) {
	skips := it.meta.Skips
	start = int(skips[b].Offset)
	end = int(it.meta.Length)
	if b+1 < len(skips) {
		end = int(skips[b+1].Offset)
	}
	if start <= 0 || end <= start || end > int(it.meta.Length) {
		return 0, 0, false
	}
	return start, end, true
}

// openBlock fetches block b through the source and parses its header,
// without touching its payload. It returns false at end of list or on
// corruption (check Err).
func (it *Iterator) openBlock(b int) bool {
	if b >= len(it.meta.Skips) {
		it.done = true
		return false
	}
	start, end, ok := it.blockExtent(b)
	if !ok {
		it.err = ErrCorrupt
		return false
	}
	blk, err := it.src.Range(start, end-start)
	if err != nil {
		it.err = err
		return false
	}
	e := it.meta.Skips[b]
	prevFirst := int64(-1)
	if b > 0 {
		prevFirst = int64(it.meta.Skips[b-1].FirstDoc)
	}
	firstDoc, count, payloadStart, payloadLen, maxTF, ok := decodeBlockHeader(blk, 0, prevFirst)
	if !ok || firstDoc != e.FirstDoc || count != int(e.Count) || payloadStart+payloadLen != len(blk) {
		it.err = ErrCorrupt
		return false
	}
	it.blk = blk
	it.block = b
	it.bi = 0
	it.bn = 0
	it.bcnt = count
	it.bstart = payloadStart
	it.bpos = payloadStart
	it.bend = payloadStart + payloadLen
	it.bmax = maxTF
	return true
}

// decodeTo resumes the open block's bulk decode loop (decodeBlockInto,
// shared with the standalone Decode) from the saved byte position. It
// decodes the whole remaining block when limit is nil, or stops after
// materializing the first posting with DocID >= *limit. Newly decoded
// postings are counted once, as one batched counter flush per call.
// Returns false on corruption.
func (it *Iterator) decodeTo(limit *uint32) bool {
	payload := it.blk[it.bstart:it.bend]
	bn, rel, ok := decodeBlockInto(payload, it.bpos-it.bstart,
		it.meta.Skips[it.block].FirstDoc, it.bn, it.bcnt, it.bmax, limit, &it.docs, &it.tfs)
	pos := it.bstart + rel
	if !ok || bn == it.bn {
		it.err = ErrCorrupt
		return false
	}
	if limit != nil {
		if it.docs[bn-1] < *limit {
			// Callers only pass a limit at most the block's indexed
			// LastDoc, so a block that dries up below it is corrupt.
			it.err = ErrCorrupt
			return false
		}
	} else if bn < it.bcnt || pos != it.bend {
		it.err = ErrCorrupt // payload ran dry before its declared count
		return false
	}
	it.localDecoded += int64(bn - it.bn)
	it.bn = bn
	it.bpos = pos
	it.flush() // batch boundary: one atomic add per decode step
	return true
}

// Filter restricts the iterator to documents alive in bm (nil clears
// the filter). It must be set before the first Next/SeekGE/FirstDoc
// call; the live layer wires it through index.Index.WithAlive.
func (it *Iterator) Filter(bm *AliveBitmap) { it.alive = bm }

// Next advances to the next alive posting, returning false at end of
// list or on error (check Err). Without a Filter bitmap every posting
// is alive.
func (it *Iterator) Next() bool {
	for {
		if !it.nextRaw() {
			return false
		}
		if it.alive == nil || it.alive.Alive(it.docs[it.bi]) {
			return true
		}
	}
}

// nextRaw advances to the next stored posting, dead or alive.
func (it *Iterator) nextRaw() bool {
	if it.err != nil || it.done {
		it.valid = false
		return false
	}
	if it.valid && it.bi+1 < it.bn {
		it.bi++
		return true
	}
	if it.block >= 0 && it.bn < it.bcnt {
		// Resume the open block: decode its remainder as one bulk step.
		next := it.bn
		if !it.decodeTo(nil) {
			it.valid = false
			return false
		}
		it.bi = next
		it.valid = true
		return true
	}
	if !it.openBlock(it.block+1) || !it.decodeTo(nil) {
		it.valid = false
		return false
	}
	it.bi = 0
	it.valid = true
	return true
}

// SeekGE positions the iterator at the first alive posting with
// DocID >= doc and reports whether one exists. Blocks strictly before
// the target are skipped without decoding (or fetching), via the block
// index, and the target block is decoded only up to the wanted
// document; with a Filter bitmap the iterator then steps forward over
// tombstoned postings.
func (it *Iterator) SeekGE(doc uint32) bool {
	if !it.seekRaw(doc) {
		return false
	}
	for it.alive != nil && !it.alive.Alive(it.docs[it.bi]) {
		if !it.nextRaw() {
			return false
		}
	}
	return true
}

// seekRaw is SeekGE without the aliveness filter.
func (it *Iterator) seekRaw(doc uint32) bool {
	if it.err != nil || it.done {
		return false
	}
	if it.valid && it.docs[it.bi] >= doc {
		return true
	}
	if it.block >= 0 && it.meta.Skips[it.block].LastDoc >= doc {
		// Target lives in the open block.
		if it.bn > 0 && it.docs[it.bn-1] >= doc {
			// Already decoded: binary search the prefix.
			base := it.bi
			it.bi = base + sort.Search(it.bn-base, func(i int) bool {
				return it.docs[base+i] >= doc
			})
			it.valid = true
			return true
		}
		if !it.decodeTo(&doc) {
			it.valid = false
			return false
		}
		it.bi = it.bn - 1
		it.valid = true
		return true
	}
	// Find the first block whose last document reaches the target; every
	// block before it is provably exhausted below doc.
	lo := it.block + 1
	skips := it.meta.Skips
	nb := lo + sort.Search(len(skips)-lo, func(i int) bool {
		return skips[lo+i].LastDoc >= doc
	})
	if nb >= len(skips) {
		it.localSkips += int64(len(skips) - lo) // bypassed without decoding
		it.done = true
		it.valid = false
		it.flush()
		return false
	}
	it.localSkips += int64(nb - lo)
	if !it.openBlock(nb) || !it.decodeTo(&doc) {
		it.valid = false
		return false
	}
	it.bi = it.bn - 1
	it.valid = true
	return true
}

// BlockMaxTF bounds this term's frequency in document doc without
// decoding anything: it is the max TF of the block whose id range covers
// doc, or 0 when no block can contain doc (the document is certainly
// absent from the list). Callers combine it with a scorer bound to prove
// a probe useless before paying for the block decode — Block-Max-style
// pruning. doc must be at or beyond the iterator's current position (the
// probing pattern: monotone candidates, cursor never ahead of them), so
// the search starts at the open block instead of the list head. The
// bound lives entirely in the in-memory skip index, so on the paged
// backend a pruned probe costs zero page faults.
func (it *Iterator) BlockMaxTF(doc uint32) uint32 {
	skips := it.meta.Skips
	lo := it.block
	if lo < 0 {
		lo = 0
	}
	nb := lo + sort.Search(len(skips)-lo, func(i int) bool {
		return skips[lo+i].LastDoc >= doc
	})
	if nb >= len(skips) || skips[nb].FirstDoc > doc {
		return 0
	}
	return skips[nb].MaxTF
}

// NoteBlockSkip records that the caller proved a block (or a whole
// probe) irrelevant via BlockMaxTF and avoided decoding it. The count is
// batched with the iterator's other counters.
func (it *Iterator) NoteBlockSkip() { it.localSkips++ }

// FirstDoc returns the first alive document id of the list. On the
// unfiltered path it costs nothing (the id lives in the block index);
// with a Filter bitmap whose head document is dead, the iterator must
// decode forward to the first survivor — engines treat the returned id
// as a candidate, and a tombstoned candidate would re-enter results
// with a zero score. ok is false for lists with no (alive) posting.
// Call it before iterating: it may position the iterator.
func (it *Iterator) FirstDoc() (uint32, bool) {
	if len(it.meta.Skips) == 0 {
		return 0, false
	}
	first := it.meta.Skips[0].FirstDoc
	if it.alive == nil {
		return first, true
	}
	if it.valid {
		return it.docs[it.bi], true // already positioned on an alive posting
	}
	if it.block < 0 && it.alive.Alive(first) {
		return first, true
	}
	if !it.SeekGE(first) {
		return 0, false
	}
	return it.docs[it.bi], true
}

// LastDoc returns the last document id of the list without decoding any
// posting. ok is false for empty lists. Probing loops use it to stop
// once their (ascending) candidates pass the list's end.
func (it *Iterator) LastDoc() (uint32, bool) {
	if len(it.meta.Skips) == 0 {
		return 0, false
	}
	return it.meta.Skips[len(it.meta.Skips)-1].LastDoc, true
}

// MaxTF returns the largest term frequency anywhere in the list — the
// list-level counterpart of the per-block bound, used to tighten a
// term's score upper bound.
func (it *Iterator) MaxTF() uint32 { return it.meta.MaxTF }

// At returns the current posting. Only valid after Next or SeekGE returned
// true.
func (it *Iterator) At() Posting {
	return Posting{DocID: it.docs[it.bi], TF: it.tfs[it.bi]}
}

// Err reports any decoding error encountered.
func (it *Iterator) Err() error {
	if it.err != nil {
		return fmt.Errorf("postings iterator: %w", it.err)
	}
	return nil
}

// DocFreq returns the total number of stored postings in the underlying
// list — tombstoned documents included, so on a filtered iterator it is
// an upper bound on what the stream yields.
func (it *Iterator) DocFreq() int { return int(it.meta.DocFreq) }
