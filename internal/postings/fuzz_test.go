package postings

import (
	"testing"
)

// FuzzBlockDecode fuzzes the block codec's decode path: arbitrary bytes
// must never panic or allocate unboundedly — corrupt input fails with
// ErrCorrupt — and any stream that does decode must round-trip: its
// canonical re-encoding decodes to the identical postings, and the
// skip-index metadata emitted alongside agrees with the payload.
func FuzzBlockDecode(f *testing.F) {
	seed := func(ps []Posting) {
		body, _, _, err := EncodeBlocks(ps)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	seed(nil)
	seed([]Posting{{DocID: 0, TF: 1}})
	seed([]Posting{{DocID: 3, TF: 2}, {DocID: 4, TF: 1}, {DocID: 900, TF: 7}})
	long := make([]Posting, 3*BlockSize+5)
	for i := range long {
		long[i] = Posting{DocID: uint32(i * 3), TF: uint32(i%9 + 1)}
	}
	seed(long)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // huge declared count, no blocks
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := Decode(data)
		if err != nil {
			return // corrupt input must fail cleanly, which it just did
		}
		// Decoded postings must satisfy the invariants Encode enforces —
		// otherwise Decode accepted a stream Encode could never produce.
		for i, p := range ps {
			if p.TF == 0 {
				t.Fatalf("decoded zero TF at %d", i)
			}
			if i > 0 && p.DocID <= ps[i-1].DocID {
				t.Fatalf("decoded non-increasing doc ids at %d", i)
			}
		}
		body, skips, maxTF, err := EncodeBlocks(ps)
		if err != nil {
			t.Fatalf("re-encode of decoded postings failed: %v", err)
		}
		back, err := Decode(body)
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if len(back) != len(ps) {
			t.Fatalf("round-trip lost postings: %d != %d", len(back), len(ps))
		}
		var wantMax uint32
		for i := range ps {
			if back[i] != ps[i] {
				t.Fatalf("round-trip posting %d: %+v != %+v", i, back[i], ps[i])
			}
			if ps[i].TF > wantMax {
				wantMax = ps[i].TF
			}
		}
		if maxTF != wantMax {
			t.Fatalf("list max TF %d, postings say %d", maxTF, wantMax)
		}
		total := 0
		for _, sk := range skips {
			total += int(sk.Count)
		}
		if total != len(ps) {
			t.Fatalf("skip index counts %d postings, list has %d", total, len(ps))
		}
	})
}

// FuzzIteratorSeek drives the skipping iterator over fuzzed (body,
// target) pairs through a caller-owned memory source: a corrupt body
// must surface as Err, never a panic, and on valid bodies SeekGE must
// agree with linear iteration.
func FuzzIteratorSeek(f *testing.F) {
	ps := make([]Posting, BlockSize+40)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i * 5), TF: uint32(i%4 + 1)}
	}
	body, skips, maxTF, err := EncodeBlocks(ps)
	if err != nil {
		f.Fatal(err)
	}
	meta := ListMeta{Length: int32(len(body)), DocFreq: int32(len(ps)), MaxTF: maxTF, Skips: skips}
	f.Add(body, uint32(37))
	f.Add(body, uint32(0))
	f.Add(append([]byte(nil), body[:len(body)/2]...), uint32(100))

	f.Fuzz(func(t *testing.T, data []byte, target uint32) {
		if len(data) != len(body) {
			return // the skip index describes exactly this body length
		}
		var counters Counters
		it := NewIteratorOver(NewMemorySource(data), meta, &counters)
		defer it.Close()
		if it.SeekGE(target) {
			if got := it.At(); got.DocID < target {
				t.Fatalf("SeekGE(%d) landed before the target: %d", target, got.DocID)
			}
		}
		for it.Next() {
		}
		_ = it.Err() // corrupt bodies must end here, not in a panic
	})
}
