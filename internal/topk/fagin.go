package topk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rank"
)

// Result is the outcome of a middleware top-N run: the ranked answers and
// the access work it took to compute them.
type Result struct {
	Top      []rank.DocScore
	Accesses AccessStats
}

func validate(sources []Source, n int) error {
	if len(sources) == 0 {
		return fmt.Errorf("topk: no sources")
	}
	if n <= 0 {
		return fmt.Errorf("topk: n = %d must be positive", n)
	}
	return nil
}

// Naive computes the exact top N by exhaustively draining every source —
// the unoptimized evaluation the paper says MM DBMSs are stuck with. It is
// the baseline every experiment compares against.
func Naive(sources []Source, agg Agg, n int) (Result, error) {
	if err := validate(sources, n); err != nil {
		return Result{}, err
	}
	var res Result
	grades := map[uint32][]float64{}
	m := len(sources)
	for i, s := range sources {
		s.Reset()
		for {
			id, g, ok := s.Next()
			res.Accesses.Sorted++
			if !ok {
				break
			}
			v := grades[id]
			if v == nil {
				v = make([]float64, m)
				grades[id] = v
			}
			v[i] = g
		}
	}
	h, _ := NewHeap(n) // n > 0 per validate
	for id, v := range grades {
		h.Offer(rank.DocScore{DocID: id, Score: agg.Combine(v)})
	}
	res.Top = h.Results()
	return res, nil
}

// FA is Fagin's original algorithm: round-robin sorted access until at
// least n objects have been seen in every source, then random access to
// complete the grades of everything seen. Correct for monotone
// aggregations; with independently ordered sources it touches O(k·m·
// N^((m-1)/m)) objects instead of all of them.
func FA(sources []Source, agg Agg, n int) (Result, error) {
	if err := validate(sources, n); err != nil {
		return Result{}, err
	}
	var res Result
	m := len(sources)
	seenBy := make([]map[uint32]float64, m)
	for i, s := range sources {
		s.Reset()
		seenBy[i] = map[uint32]float64{}
	}
	seenCount := map[uint32]int{}
	inAll := 0
	exhausted := 0
	for inAll < n && exhausted < m {
		exhausted = 0
		for i, s := range sources {
			id, g, ok := s.Next()
			res.Accesses.Sorted++
			if !ok {
				exhausted++
				continue
			}
			if _, dup := seenBy[i][id]; !dup {
				seenBy[i][id] = g
				seenCount[id]++
				if seenCount[id] == m {
					inAll++
				}
			}
		}
	}
	// Random-access phase: complete every partially seen object.
	h, _ := NewHeap(n) // n > 0 per validate
	grades := make([]float64, m)
	for id, cnt := range seenCount {
		for i := range sources {
			if g, ok := seenBy[i][id]; ok {
				grades[i] = g
			} else {
				g, _ := sources[i].Lookup(id)
				res.Accesses.Random++
				grades[i] = g
			}
		}
		_ = cnt
		h.Offer(rank.DocScore{DocID: id, Score: agg.Combine(grades)})
	}
	res.Top = h.Results()
	return res, nil
}

// TA is the threshold algorithm: each object discovered by sorted access
// is immediately completed by random access, and the run stops as soon as
// the current n-th best score reaches the threshold — the aggregate of the
// grades at the current sorted-access frontier. TA is instance-optimal
// among algorithms using both access kinds.
func TA(sources []Source, agg Agg, n int) (Result, error) {
	if err := validate(sources, n); err != nil {
		return Result{}, err
	}
	var res Result
	m := len(sources)
	for _, s := range sources {
		s.Reset()
	}
	frontier := make([]float64, m)
	for i := range frontier {
		frontier[i] = math.Inf(1)
	}
	probed := map[uint32]bool{}
	h, _ := NewHeap(n) // n > 0 per validate
	grades := make([]float64, m)
	for {
		exhausted := 0
		for i, s := range sources {
			id, g, ok := s.Next()
			res.Accesses.Sorted++
			if !ok {
				frontier[i] = 0 // no further object can score in this source
				exhausted++
				continue
			}
			frontier[i] = g
			if probed[id] {
				continue
			}
			probed[id] = true
			for j := range sources {
				if j == i {
					grades[j] = g
					continue
				}
				gj, _ := sources[j].Lookup(id)
				res.Accesses.Random++
				grades[j] = gj
			}
			h.Offer(rank.DocScore{DocID: id, Score: agg.Combine(grades)})
		}
		threshold := agg.Combine(frontier)
		if h.Full() {
			if min, ok := h.Min(); ok && min.Score >= threshold {
				break
			}
		}
		if exhausted == m {
			break
		}
	}
	res.Top = h.Results()
	return res, nil
}

// nraCand is the bound administration record NRA keeps per seen object.
type nraCand struct {
	id    uint32
	known []float64
	mask  uint64 // bit i set when source i's grade is known
}

// NRA is the no-random-access algorithm: only sorted access, maintaining a
// lower bound (unknown grades taken as 0) and an upper bound (unknown
// grades taken as the source frontier) per candidate, stopping when the
// n-th best lower bound is at least every other candidate's upper bound.
// This is the purest form of the paper's "upper and lower bound
// administration".
//
// At termination the returned documents are exactly the true top-N set,
// but their scores are the final lower bounds, so the order within the set
// may deviate from the true-score order when bounds are still loose —
// the classical NRA guarantee. Callers needing exact internal order must
// re-score the (small) returned set.
func NRA(sources []Source, agg Agg, n int) (Result, error) {
	if err := validate(sources, n); err != nil {
		return Result{}, err
	}
	var res Result
	m := len(sources)
	if m > 64 {
		return Result{}, fmt.Errorf("topk: NRA supports at most 64 sources, got %d", m)
	}
	for _, s := range sources {
		s.Reset()
	}
	frontier := make([]float64, m)
	for i := range frontier {
		frontier[i] = math.Inf(1)
	}
	cands := map[uint32]*nraCand{}
	fullMask := uint64(1)<<m - 1

	lower := func(c *nraCand) float64 {
		if c.mask == fullMask {
			return agg.Combine(c.known)
		}
		v := make([]float64, m)
		for i := 0; i < m; i++ {
			if c.mask&(1<<i) != 0 {
				v[i] = c.known[i]
			}
		}
		return agg.Combine(v)
	}
	upper := func(c *nraCand) float64 {
		if c.mask == fullMask {
			return agg.Combine(c.known)
		}
		v := make([]float64, m)
		for i := 0; i < m; i++ {
			if c.mask&(1<<i) != 0 {
				v[i] = c.known[i]
			} else {
				v[i] = frontier[i]
			}
		}
		return agg.Combine(v)
	}

	// The stop check costs O(|cands|·m·log|cands|), so running it after
	// every round would make NRA quadratic on large inputs. It runs on a
	// geometric schedule instead: the bound administration stays exact,
	// the algorithm merely performs at most a constant factor of extra
	// sorted accesses past the earliest possible stopping round.
	checkAt := 1
	for round := 0; ; round++ {
		exhausted := 0
		for i, s := range sources {
			id, g, ok := s.Next()
			res.Accesses.Sorted++
			if !ok {
				frontier[i] = 0
				exhausted++
				continue
			}
			frontier[i] = g
			c := cands[id]
			if c == nil {
				c = &nraCand{id: id, known: make([]float64, m)}
				cands[id] = c
			}
			if c.mask&(1<<i) == 0 {
				c.mask |= 1 << i
				c.known[i] = g
			}
		}
		allExhausted := exhausted == m
		if !allExhausted && round < checkAt {
			continue
		}
		checkAt = round + 1 + (round+1)/4 // ~25% growth between checks
		if len(cands) >= n || allExhausted {
			type bound struct {
				c      *nraCand
				lb, ub float64
			}
			bounds := make([]bound, 0, len(cands))
			for _, c := range cands {
				bounds = append(bounds, bound{c, lower(c), upper(c)})
			}
			sort.Slice(bounds, func(a, b int) bool {
				x, y := bounds[a], bounds[b]
				if x.lb != y.lb {
					return x.lb > y.lb
				}
				return x.c.id < y.c.id
			})
			k := n
			if k > len(bounds) {
				k = len(bounds)
			}
			stop := allExhausted
			if !stop && k == n {
				minLB := bounds[k-1].lb
				// Unseen objects are bounded by the frontier aggregate.
				maxOther := agg.Combine(frontier)
				for _, b := range bounds[k:] {
					if b.ub > maxOther {
						maxOther = b.ub
					}
				}
				stop = minLB >= maxOther
			}
			if stop {
				res.Top = make([]rank.DocScore, 0, k)
				for _, b := range bounds[:k] {
					res.Top = append(res.Top, rank.DocScore{DocID: b.c.id, Score: b.lb})
				}
				return res, nil
			}
		}
	}
}
