package topk

import "repro/internal/rank"

// ShardTop is one shard's contribution to a scatter/gather top-N query:
// the shard-local top list (already carrying globally meaningful document
// ids and scores) plus the bound administration the merge needs to decide
// whether the combined answer is provably the exact global top N.
//
// Bound is an upper bound on two quantities at once: how much any
// *reported* score may understate the document's true score, and the
// maximum true score of any shard document the shard never touched. A
// shard that ran to completion (exact evaluation) reports Bound == 0.
// Truncated reports whether the shard held more candidates than it
// returned; a truncated shard may hide documents scoring up to its
// weakest reported score plus Bound.
type ShardTop struct {
	Top       []rank.DocScore
	Bound     float64
	Truncated bool
}

// MergeShards combines per-shard top lists into the global top n,
// maintaining the upper/lower bound administration across shards the same
// way NRA maintains it across sources. It returns the merged ranking and
// an exactness certificate: exact == true guarantees the returned set is
// the true global top N, provided each shard computed its own top list
// for at least n results (document-range sharding makes per-shard results
// disjoint, so the global top N is always a subset of the union of exact
// per-shard top Ns).
//
// The certificate logic: a document excluded from the merged answer is
// either (a) reported by some shard but displaced during the merge — its
// true score is at most its reported score plus that shard's Bound — or
// (b) never reported by its shard, in which case it is bounded by the
// shard's hidden-mass cap (Bound for untouched documents, weakest
// reported score plus Bound when the shard truncated). The answer is
// exact when the merged N-th score is at least every excluded document's
// cap, with ties resolved conservatively: an excluded document whose cap
// *equals* the N-th score only keeps exactness when its shard's Bound is
// zero, because then the deterministic (score, docid) tie-break ordering
// is applied to true scores on both sides.
func MergeShards(shards []ShardTop, n int) (top []rank.DocScore, exact bool) {
	if n <= 0 {
		return nil, false
	}
	h, _ := NewHeap(n) // n > 0 was just checked
	for _, s := range shards {
		for _, ds := range s.Top {
			h.Offer(ds)
		}
	}
	top = h.Results()

	if len(top) == 0 {
		// Nothing reported anywhere: exact iff no shard can be hiding
		// positive-score documents.
		for _, s := range shards {
			if s.Bound > 0 {
				return top, false
			}
		}
		return top, true
	}

	inTop := make(map[uint32]bool, len(top))
	for _, ds := range top {
		inTop[ds.DocID] = true
	}
	nth := top[len(top)-1]
	haveN := len(top) == n

	for _, s := range shards {
		if s.Bound == 0 {
			// Exact shard: reported scores are true scores, so the heap
			// already applied the exact deterministic ordering to any
			// displaced document, and hidden documents rank strictly
			// after everything reported — they only matter when the
			// shard reported fewer than n results while still holding
			// more (an inconsistent input, treated conservatively).
			if s.Truncated && len(s.Top) < n {
				return top, false
			}
			continue
		}
		// (a) Reported-but-displaced documents.
		for _, ds := range s.Top {
			if inTop[ds.DocID] {
				continue
			}
			capScore := rank.DocScore{DocID: ds.DocID, Score: ds.Score + s.Bound}
			if !rank.Less(capScore, nth) {
				return top, false
			}
		}
		// (b) Documents the shard never reported.
		hidden := s.Bound // cap for documents the shard never touched
		if s.Truncated && len(s.Top) > 0 {
			hidden = s.Top[len(s.Top)-1].Score + s.Bound
		}
		if !haveN || hidden >= nth.Score {
			return top, false
		}
	}
	return top, true
}
