// Package topk implements top-N selection machinery: a bounded heap for
// engine-side selection, and the family of middleware algorithms the paper
// builds on — Fagin's algorithm (FA), the threshold algorithm (TA), and
// no-random-access (NRA) with upper/lower bound administration.
//
// The paper's State-of-the-Art section credits "maintaining the proper
// upper and lower bound administration while computing the required
// results" as the basic idea enabling early termination; this package is
// that idea made concrete. All algorithms assume non-negative scores,
// sources sorted by descending score, and a monotone aggregation function.
package topk

import (
	"container/heap"
	"fmt"

	"repro/internal/rank"
)

// Heap keeps the N best DocScores seen so far. It is a bounded min-heap:
// the root is the weakest of the current top N, so a new candidate only
// enters if it beats the root. Ordering (including the deterministic
// doc-id tie-break) follows rank.Less.
type Heap struct {
	n     int
	items docScoreHeap
}

type docScoreHeap []rank.DocScore

func (h docScoreHeap) Len() int            { return len(h) }
func (h docScoreHeap) Less(i, j int) bool  { return rank.Less(h[i], h[j]) }
func (h docScoreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *docScoreHeap) Push(x interface{}) { *h = append(*h, x.(rank.DocScore)) }
func (h *docScoreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewHeap returns a heap retaining the n best offers. A non-positive n
// is reported as an error rather than a panic, so a malformed request
// that slips to this depth surfaces as a failed query, not a crashed
// process.
func NewHeap(n int) (*Heap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topk: heap size %d must be positive", n)
	}
	return &Heap{n: n, items: make(docScoreHeap, 0, n)}, nil
}

// Offer considers ds for the top N. It returns true when ds entered the
// heap (displacing the weakest member if the heap was full).
func (h *Heap) Offer(ds rank.DocScore) bool {
	if len(h.items) < h.n {
		heap.Push(&h.items, ds)
		return true
	}
	if !rank.Less(h.items[0], ds) {
		return false
	}
	h.items[0] = ds
	heap.Fix(&h.items, 0)
	return true
}

// Min returns the weakest member of the current top N, with ok=false while
// the heap is empty.
func (h *Heap) Min() (rank.DocScore, bool) {
	if len(h.items) == 0 {
		return rank.DocScore{}, false
	}
	return h.items[0], true
}

// Full reports whether the heap holds n items; only then is Min a
// meaningful threshold for pruning.
func (h *Heap) Full() bool { return len(h.items) == h.n }

// Len returns the current number of items.
func (h *Heap) Len() int { return len(h.items) }

// Results drains the heap, returning the retained items in ranking order
// (best first). The heap is empty afterwards.
func (h *Heap) Results() []rank.DocScore {
	out := make([]rank.DocScore, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h.items).(rank.DocScore)
	}
	return out
}

// SelectTop returns the k best entries of ds in ranking order without
// modifying ds. It is the O(n log k) selection the engine uses instead of
// sorting full result sets.
func SelectTop(ds []rank.DocScore, k int) []rank.DocScore {
	if k <= 0 {
		return nil
	}
	h, _ := NewHeap(k) // k > 0 was just checked
	for _, d := range ds {
		h.Offer(d)
	}
	return h.Results()
}
