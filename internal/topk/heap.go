// Package topk implements top-N selection machinery: a bounded heap for
// engine-side selection, and the family of middleware algorithms the paper
// builds on — Fagin's algorithm (FA), the threshold algorithm (TA), and
// no-random-access (NRA) with upper/lower bound administration.
//
// The paper's State-of-the-Art section credits "maintaining the proper
// upper and lower bound administration while computing the required
// results" as the basic idea enabling early termination; this package is
// that idea made concrete. All algorithms assume non-negative scores,
// sources sorted by descending score, and a monotone aggregation function.
package topk

import (
	"fmt"

	"repro/internal/rank"
)

// Heap keeps the N best DocScores seen so far. It is a bounded min-heap:
// the root is the weakest of the current top N, so a new candidate only
// enters if it beats the root. Ordering (including the deterministic
// doc-id tie-break) follows rank.Less.
//
// The sift loops are hand-rolled rather than container/heap: the
// standard interface moves every element through interface{} boxing,
// which costs one allocation per Offer on the hottest loop in the
// engine. A Heap is reusable across searches via Reset, and drains into
// a caller-provided buffer via AppendResults — together these keep the
// steady-state search path allocation-free.
type Heap struct {
	n     int
	items []rank.DocScore
}

// NewHeap returns a heap retaining the n best offers. A non-positive n
// is reported as an error rather than a panic, so a malformed request
// that slips to this depth surfaces as a failed query, not a crashed
// process.
func NewHeap(n int) (*Heap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topk: heap size %d must be positive", n)
	}
	return &Heap{n: n, items: make([]rank.DocScore, 0, n)}, nil
}

// Reset empties the heap and re-bounds it to the n best offers, growing
// the backing array only when n exceeds every earlier bound — the
// pooled-engine reuse path.
func (h *Heap) Reset(n int) error {
	if n <= 0 {
		return fmt.Errorf("topk: heap size %d must be positive", n)
	}
	h.n = n
	if cap(h.items) < n {
		h.items = make([]rank.DocScore, 0, n)
	} else {
		h.items = h.items[:0]
	}
	return nil
}

// Offer considers ds for the top N. It returns true when ds entered the
// heap (displacing the weakest member if the heap was full).
func (h *Heap) Offer(ds rank.DocScore) bool {
	if len(h.items) < h.n {
		h.items = append(h.items, ds)
		h.siftUp(len(h.items) - 1)
		return true
	}
	if !rank.Less(h.items[0], ds) {
		return false
	}
	h.items[0] = ds
	h.siftDown(0, len(h.items))
	return true
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !rank.Less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *Heap) siftDown(i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && rank.Less(h.items[r], h.items[l]) {
			m = r
		}
		if !rank.Less(h.items[m], h.items[i]) {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// Min returns the weakest member of the current top N, with ok=false while
// the heap is empty.
func (h *Heap) Min() (rank.DocScore, bool) {
	if len(h.items) == 0 {
		return rank.DocScore{}, false
	}
	return h.items[0], true
}

// SecondMin returns the second-weakest member, with ok=false while the
// heap holds fewer than two items. With a heap bounded at n+1, Min and
// SecondMin are the (n+1)-th and n-th best scores seen — the pair the
// progressive engine's safe-stop test needs, without draining anything.
func (h *Heap) SecondMin() (rank.DocScore, bool) {
	if len(h.items) < 2 {
		return rank.DocScore{}, false
	}
	s := h.items[1]
	if len(h.items) > 2 && rank.Less(h.items[2], s) {
		s = h.items[2]
	}
	return s, true
}

// Full reports whether the heap holds n items; only then is Min a
// meaningful threshold for pruning.
func (h *Heap) Full() bool { return len(h.items) == h.n }

// Len returns the current number of items.
func (h *Heap) Len() int { return len(h.items) }

// Results drains the heap, returning the retained items in ranking order
// (best first). The heap is empty afterwards.
func (h *Heap) Results() []rank.DocScore {
	return h.AppendResults(nil)
}

// AppendResults drains the heap, appending the retained items to dst in
// ranking order (best first) and returning the extended slice. With a
// dst of sufficient capacity it performs no allocation. The heap is
// empty afterwards (its bound n is unchanged).
func (h *Heap) AppendResults(dst []rank.DocScore) []rank.DocScore {
	k := len(h.items)
	start := len(dst)
	if need := start + k; cap(dst) >= need {
		dst = dst[:need]
	} else {
		grown := make([]rank.DocScore, need)
		copy(grown, dst)
		dst = grown
	}
	// Repeatedly pop the weakest remaining item into its final slot,
	// back to front.
	for i := k - 1; i >= 0; i-- {
		min := h.items[0]
		last := len(h.items) - 1
		h.items[0] = h.items[last]
		h.items = h.items[:last]
		if last > 0 {
			h.siftDown(0, last)
		}
		dst[start+i] = min
	}
	return dst
}

// SelectTop returns the k best entries of ds in ranking order without
// modifying ds. It is the O(n log k) selection the engine uses instead of
// sorting full result sets.
func SelectTop(ds []rank.DocScore, k int) []rank.DocScore {
	if k <= 0 {
		return nil
	}
	h, _ := NewHeap(k) // k > 0 was just checked
	for _, d := range ds {
		h.Offer(d)
	}
	return h.Results()
}
