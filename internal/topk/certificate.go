package topk

import "repro/internal/rank"

// Certificate is the explicit form of a scatter/gather answer's
// provenance: whether the merge proved exactness, and — when parts of
// the index could not be served — exactly how much of it the answer
// covers. It exists so degraded-mode serving is never silent: a query
// that completes over K of M segments says so, names what it skipped,
// and drops the exactness claim, instead of failing outright or
// pretending the partial answer is the whole truth.
type Certificate struct {
	// Exact guarantees Top is provably the true top N over the *entire*
	// shard set. It is false whenever Degraded is true: an unserved
	// shard may hide arbitrarily good documents.
	Exact bool
	// Degraded reports that at least one shard was skipped (quarantined
	// or failed) and the answer covers only the shards served.
	Degraded bool
	// ShardsServed / ShardsTotal quantify the coverage: "K of M
	// segments served".
	ShardsServed int
	ShardsTotal  int
	// Skipped names the shards (live segments) that were not served.
	Skipped []string
}

// MergeShardsPartial merges the shard lists that actually ran and
// certifies the answer over the full shard population: served lists
// merge with the same bound administration as MergeShards, total is the
// population size, and skipped names the members that were not served.
// With nothing skipped this is MergeShards plus a full-coverage
// certificate; with skips the certificate is explicitly degraded and
// the exactness claim is dropped regardless of what the bounds proved
// over the survivors.
func MergeShardsPartial(served []ShardTop, n int, skipped []string, total int) ([]rank.DocScore, Certificate) {
	top, exact := MergeShards(served, n)
	cert := Certificate{
		Exact:        exact && len(skipped) == 0,
		Degraded:     len(skipped) > 0,
		ShardsServed: len(served),
		ShardsTotal:  total,
		Skipped:      skipped,
	}
	return top, cert
}
