package topk

import (
	"sort"

	"repro/internal/rank"
)

// Source is one ranked input of a multi-source top-N query — in Fagin's
// middleware model, one subsystem grading every object by one atomic
// criterion (a text ranker, a colour-histogram matcher, ...).
//
// Sorted access streams objects by descending grade; random access probes
// the grade of a known object. Grades must be non-negative and the stream
// must be non-increasing, which the algorithms rely on for termination.
type Source interface {
	// Next returns the next object in descending-grade order, ok=false
	// when exhausted. Implementations count this as one sorted access.
	Next() (id uint32, grade float64, ok bool)
	// Lookup returns the object's grade (0, false when the object does not
	// appear in this source). Counts as one random access.
	Lookup(id uint32) (float64, bool)
	// Reset rewinds sorted access to the beginning.
	Reset()
	// Len returns the number of graded objects.
	Len() int
}

// AccessStats counts the work of a middleware algorithm in Fagin's cost
// model: sorted and random accesses. The experiments report these next to
// wall-clock, since they are the machine-independent quantities the
// original analyses are stated in.
type AccessStats struct {
	Sorted int64
	Random int64
}

// SliceSource is an in-memory Source over explicit (id, grade) pairs; the
// standard implementation used by the MM feature sources and all tests.
type SliceSource struct {
	byRank   []rank.DocScore // descending grade
	byID     map[uint32]float64
	pos      int
	Accesses *AccessStats // optional shared counter; may be nil
}

// NewSliceSource builds a source from arbitrary-order grades. Ties are
// broken by ascending id for determinism.
func NewSliceSource(grades []rank.DocScore) *SliceSource {
	s := &SliceSource{
		byRank: append([]rank.DocScore(nil), grades...),
		byID:   make(map[uint32]float64, len(grades)),
	}
	sort.Slice(s.byRank, func(i, j int) bool { return rank.Less(s.byRank[j], s.byRank[i]) })
	for _, g := range s.byRank {
		s.byID[g.DocID] = g.Score
	}
	return s
}

// Next implements Source.
func (s *SliceSource) Next() (uint32, float64, bool) {
	if s.Accesses != nil {
		s.Accesses.Sorted++
	}
	if s.pos >= len(s.byRank) {
		return 0, 0, false
	}
	g := s.byRank[s.pos]
	s.pos++
	return g.DocID, g.Score, true
}

// Lookup implements Source.
func (s *SliceSource) Lookup(id uint32) (float64, bool) {
	if s.Accesses != nil {
		s.Accesses.Random++
	}
	g, ok := s.byID[id]
	return g, ok
}

// Reset implements Source.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len implements Source.
func (s *SliceSource) Len() int { return len(s.byRank) }

// Agg is a monotone aggregation function combining one grade per source
// into an overall score: if every component grade is >= another vector's,
// the aggregate must be too. Fagin's correctness results hold exactly for
// this class.
type Agg struct {
	Name    string
	Combine func(grades []float64) float64
}

// SumAgg adds grades — the aggregation of additive IR ranking.
func SumAgg() Agg {
	return Agg{Name: "sum", Combine: func(g []float64) float64 {
		var t float64
		for _, v := range g {
			t += v
		}
		return t
	}}
}

// MinAgg is the standard fuzzy conjunction from Fagin's fuzzy-query work.
func MinAgg() Agg {
	return Agg{Name: "min", Combine: func(g []float64) float64 {
		if len(g) == 0 {
			return 0
		}
		m := g[0]
		for _, v := range g[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}}
}

// MaxAgg is the fuzzy disjunction.
func MaxAgg() Agg {
	return Agg{Name: "max", Combine: func(g []float64) float64 {
		var m float64
		for _, v := range g {
			if v > m {
				m = v
			}
		}
		return m
	}}
}

// WeightedSumAgg weights each source, the form used for mixed text+feature
// MM queries (Fagin & Maarek's user-weighted search terms).
func WeightedSumAgg(weights []float64) Agg {
	w := append([]float64(nil), weights...)
	return Agg{Name: "wsum", Combine: func(g []float64) float64 {
		var t float64
		for i, v := range g {
			if i < len(w) {
				t += w[i] * v
			}
		}
		return t
	}}
}
