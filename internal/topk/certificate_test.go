package topk

import (
	"testing"

	"repro/internal/rank"
)

func TestMergeShardsPartialFullCoverage(t *testing.T) {
	shards := []ShardTop{
		{Top: []rank.DocScore{{DocID: 1, Score: 9}, {DocID: 2, Score: 5}}},
		{Top: []rank.DocScore{{DocID: 7, Score: 7}}},
	}
	top, cert := MergeShardsPartial(shards, 2, nil, 2)
	if !cert.Exact || cert.Degraded {
		t.Fatalf("full coverage: cert = %+v, want exact and not degraded", cert)
	}
	if cert.ShardsServed != 2 || cert.ShardsTotal != 2 || len(cert.Skipped) != 0 {
		t.Fatalf("coverage = %+v, want 2 of 2", cert)
	}
	if len(top) != 2 || top[0].DocID != 1 || top[1].DocID != 7 {
		t.Fatalf("top = %v", top)
	}
}

func TestMergeShardsPartialDegraded(t *testing.T) {
	shards := []ShardTop{
		{Top: []rank.DocScore{{DocID: 1, Score: 9}}},
	}
	top, cert := MergeShardsPartial(shards, 1, []string{"seg-000002"}, 2)
	if cert.Exact {
		t.Fatal("a skipped shard must drop the exactness claim")
	}
	if !cert.Degraded {
		t.Fatal("a skipped shard must mark the certificate degraded")
	}
	if cert.ShardsServed != 1 || cert.ShardsTotal != 2 {
		t.Fatalf("coverage = %d of %d, want 1 of 2", cert.ShardsServed, cert.ShardsTotal)
	}
	if len(cert.Skipped) != 1 || cert.Skipped[0] != "seg-000002" {
		t.Fatalf("skipped = %v, want the segment named", cert.Skipped)
	}
	if len(top) != 1 || top[0].DocID != 1 {
		t.Fatalf("the surviving shard's answer must still be served: top = %v", top)
	}
}

func TestMergeShardsPartialAllSkipped(t *testing.T) {
	top, cert := MergeShardsPartial(nil, 5, []string{"seg-000001", "seg-000002"}, 2)
	if len(top) != 0 {
		t.Fatalf("top = %v, want empty", top)
	}
	if cert.Exact || !cert.Degraded || cert.ShardsServed != 0 || cert.ShardsTotal != 2 {
		t.Fatalf("cert = %+v, want fully degraded 0 of 2", cert)
	}
}
