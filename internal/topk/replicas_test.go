package topk

import (
	"errors"
	"testing"

	"repro/internal/rank"
)

func exactAnswer(name string, gen uint64, top ...rank.DocScore) ReplicaAnswer {
	return ReplicaAnswer{
		Name: name, Generation: gen, Top: top,
		Cert: Certificate{Exact: true, ShardsServed: 3, ShardsTotal: 3},
	}
}

func assertTop(t *testing.T, got, want []rank.DocScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged %d results, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: %v, want %v", i, got[i], want[i])
		}
	}
}

// Two full replicas at one generation answer with the same documents;
// the merge must deduplicate, not double-count.
func TestMergeReplicasDeduplicates(t *testing.T) {
	top := []rank.DocScore{ds(7, 9.5), ds(3, 8.0), ds(11, 7.25)}
	merged, cert, gen := MergeReplicas([]ReplicaAnswer{
		exactAnswer("a", 5, top...),
		exactAnswer("b", 5, top...),
	}, 3)
	assertTop(t, merged, top)
	if !cert.Exact || cert.Degraded {
		t.Fatalf("two caught-up exact replicas must merge exact: %+v", cert)
	}
	if cert.ShardsServed != 2 || cert.ShardsTotal != 2 || len(cert.Skipped) != 0 {
		t.Fatalf("coverage: %+v", cert)
	}
	if gen != 5 {
		t.Fatalf("generation %d, want 5", gen)
	}
}

// A replica behind the newest generation is excluded entirely and
// named: its documents may be deleted or rescored in fleet state.
func TestMergeReplicasExcludesStale(t *testing.T) {
	fresh := []rank.DocScore{ds(1, 5.0), ds(2, 4.0)}
	merged, cert, gen := MergeReplicas([]ReplicaAnswer{
		exactAnswer("fresh", 9, fresh...),
		exactAnswer("stale", 8, ds(99, 100.0)), // a score only the old generation believes
	}, 2)
	assertTop(t, merged, fresh)
	if cert.Exact || !cert.Degraded {
		t.Fatalf("a stale replica must degrade the merge: %+v", cert)
	}
	if cert.ShardsServed != 1 || cert.ShardsTotal != 2 {
		t.Fatalf("coverage: %+v", cert)
	}
	if len(cert.Skipped) != 1 || cert.Skipped[0] != "stale" {
		t.Fatalf("skipped: %v", cert.Skipped)
	}
	if gen != 9 {
		t.Fatalf("generation %d, want 9", gen)
	}
}

// An unreachable replica degrades coverage; the others still answer.
func TestMergeReplicasToleratesErrors(t *testing.T) {
	fresh := []rank.DocScore{ds(1, 5.0)}
	merged, cert, _ := MergeReplicas([]ReplicaAnswer{
		{Name: "down", Err: errors.New("connection refused")},
		exactAnswer("up", 4, fresh...),
	}, 1)
	assertTop(t, merged, fresh)
	if cert.Exact || cert.ShardsServed != 1 || len(cert.Skipped) != 1 || cert.Skipped[0] != "down" {
		t.Fatalf("certificate: %+v", cert)
	}
}

// A replica that answered degraded at the newest generation cannot
// vouch for coverage (Skipped, not Served) but its documents carry true
// scores, so they still merge in.
func TestMergeReplicasInternallyDegraded(t *testing.T) {
	merged, cert, _ := MergeReplicas([]ReplicaAnswer{
		exactAnswer("whole", 6, ds(1, 5.0), ds(2, 4.0)),
		{
			Name: "hurt", Generation: 6,
			Top:  []rank.DocScore{ds(9, 6.0)}, // surfaced by the surviving segments
			Cert: Certificate{Degraded: true, ShardsServed: 2, ShardsTotal: 3, Skipped: []string{"seg-000004"}},
		},
	}, 3)
	assertTop(t, merged, []rank.DocScore{ds(9, 6.0), ds(1, 5.0), ds(2, 4.0)})
	if cert.Exact || !cert.Degraded || cert.ShardsServed != 1 {
		t.Fatalf("an internally degraded replica must not count as served: %+v", cert)
	}
	if len(cert.Skipped) != 1 || cert.Skipped[0] != "hurt" {
		t.Fatalf("skipped: %v", cert.Skipped)
	}
}

// With no replica answering there is nothing to serve — and nothing to
// pretend: empty answer, fully degraded certificate.
func TestMergeReplicasAllDown(t *testing.T) {
	merged, cert, gen := MergeReplicas([]ReplicaAnswer{
		{Name: "a", Err: errors.New("refused")},
		{Name: "b", Err: errors.New("reset")},
	}, 5)
	if len(merged) != 0 {
		t.Fatalf("merged %v from zero answers", merged)
	}
	if cert.Exact || !cert.Degraded || cert.ShardsServed != 0 || cert.ShardsTotal != 2 || len(cert.Skipped) != 2 {
		t.Fatalf("certificate: %+v", cert)
	}
	if gen != 0 {
		t.Fatalf("generation %d from zero answers", gen)
	}
}

func TestMergeReplicasZeroN(t *testing.T) {
	merged, cert, _ := MergeReplicas([]ReplicaAnswer{exactAnswer("a", 1, ds(1, 1))}, 0)
	if len(merged) != 0 || !cert.Degraded {
		t.Fatalf("n=0: merged=%v cert=%+v", merged, cert)
	}
}
