package topk

import (
	"reflect"
	"testing"

	"repro/internal/rank"
)

func ds(id uint32, score float64) rank.DocScore { return rank.DocScore{DocID: id, Score: score} }

// TestMergeShards drives the scatter/gather merge through its bound
// administration: exact shards, epsilon-relaxed shards, duplicate scores,
// k > n degeneracies, empty shards, and the single-shard case.
func TestMergeShards(t *testing.T) {
	cases := []struct {
		name      string
		shards    []ShardTop
		n         int
		wantTop   []rank.DocScore
		wantExact bool
	}{
		{
			name: "two exact shards interleave",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 9), ds(2, 5), ds(3, 1)}},
				{Top: []rank.DocScore{ds(10, 8), ds(11, 4), ds(12, 2)}},
			},
			n:         4,
			wantTop:   []rank.DocScore{ds(1, 9), ds(10, 8), ds(2, 5), ds(11, 4)},
			wantExact: true,
		},
		{
			name: "duplicate scores break ties by ascending doc id",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(7, 5), ds(9, 5)}},
				{Top: []rank.DocScore{ds(2, 5), ds(8, 5)}},
			},
			n:         3,
			wantTop:   []rank.DocScore{ds(2, 5), ds(7, 5), ds(8, 5)},
			wantExact: true,
		},
		{
			name: "n larger than total candidates stays exact with zero bounds",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 3)}},
				{Top: []rank.DocScore{ds(2, 2)}},
			},
			n:         10,
			wantTop:   []rank.DocScore{ds(1, 3), ds(2, 2)},
			wantExact: true,
		},
		{
			name: "n larger than total candidates inexact with positive bound",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 3)}},
				{Top: []rank.DocScore{ds(2, 2)}, Bound: 0.5},
			},
			n:         10,
			wantTop:   []rank.DocScore{ds(1, 3), ds(2, 2)},
			wantExact: false,
		},
		{
			name: "empty shards are ignored",
			shards: []ShardTop{
				{},
				{Top: []rank.DocScore{ds(4, 7), ds(5, 6)}},
				{Top: nil},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(4, 7), ds(5, 6)},
			wantExact: true,
		},
		{
			name:      "all shards empty with zero bounds",
			shards:    []ShardTop{{}, {}},
			n:         3,
			wantTop:   []rank.DocScore{},
			wantExact: true,
		},
		{
			name:      "all shards empty but one could hide mass",
			shards:    []ShardTop{{}, {Bound: 0.1}},
			n:         3,
			wantTop:   []rank.DocScore{},
			wantExact: false,
		},
		{
			name: "single shard exact truncated is its own answer",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(3, 9), ds(1, 8)}, Truncated: true},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(3, 9), ds(1, 8)},
			wantExact: true,
		},
		{
			name: "relaxed shard bound below the cutoff keeps exactness",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 9), ds(2, 8)}},
				// Weakest reported 1.0 + bound 0.5 < merged nth 8.
				{Top: []rank.DocScore{ds(10, 1)}, Bound: 0.5, Truncated: true},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(1, 9), ds(2, 8)},
			wantExact: true,
		},
		{
			name: "relaxed shard hidden mass can reach the cutoff",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 9), ds(2, 8)}},
				// Weakest reported 7.9 + bound 0.5 > merged nth 8.
				{Top: []rank.DocScore{ds(10, 7.9)}, Bound: 0.5, Truncated: true},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(1, 9), ds(2, 8)},
			wantExact: false,
		},
		{
			name: "displaced underestimated score can exceed the cutoff",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 9), ds(2, 8)}},
				// Reported 7.8 is below the merged nth, but its true
				// score may reach 8.3.
				{Top: []rank.DocScore{ds(10, 7.8)}, Bound: 0.5},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(1, 9), ds(2, 8)},
			wantExact: false,
		},
		{
			name: "untouched-document bound below cutoff keeps exactness",
			shards: []ShardTop{
				{Top: []rank.DocScore{ds(1, 9), ds(2, 8)}},
				{Top: nil, Bound: 0.5},
			},
			n:         2,
			wantTop:   []rank.DocScore{ds(1, 9), ds(2, 8)},
			wantExact: true,
		},
		{
			name:      "non-positive n yields nothing",
			shards:    []ShardTop{{Top: []rank.DocScore{ds(1, 1)}}},
			n:         0,
			wantTop:   nil,
			wantExact: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, exact := MergeShards(tc.shards, tc.n)
			if len(got) != len(tc.wantTop) {
				t.Fatalf("merged %d results, want %d: %v", len(got), len(tc.wantTop), got)
			}
			for i := range got {
				if got[i] != tc.wantTop[i] {
					t.Errorf("position %d: got %v, want %v", i, got[i], tc.wantTop[i])
				}
			}
			if exact != tc.wantExact {
				t.Errorf("exact = %v, want %v", exact, tc.wantExact)
			}
		})
	}
}

// TestMergeShardsMatchesSelectTop checks the heap path the merge rides
// on: merging exact shards must equal SelectTop over the concatenation.
func TestMergeShardsMatchesSelectTop(t *testing.T) {
	shards := []ShardTop{
		{Top: []rank.DocScore{ds(1, 5), ds(4, 4), ds(6, 3)}},
		{Top: []rank.DocScore{ds(2, 5), ds(3, 4), ds(5, 2)}},
		{Top: []rank.DocScore{ds(7, 4.5)}},
	}
	var all []rank.DocScore
	for _, s := range shards {
		all = append(all, s.Top...)
	}
	for n := 1; n <= len(all)+2; n++ {
		merged, exact := MergeShards(shards, n)
		want := SelectTop(all, n)
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("n=%d: merged %v, want %v", n, merged, want)
		}
		if !exact {
			t.Fatalf("n=%d: zero-bound merge must be exact", n)
		}
	}
}
