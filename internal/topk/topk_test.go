package topk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rank"
	"repro/internal/xrand"
)

func TestHeapBasics(t *testing.T) {
	h, err := NewHeap(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{5, 1, 4, 2, 3} {
		h.Offer(rank.DocScore{DocID: uint32(s), Score: s})
	}
	if !h.Full() {
		t.Fatal("heap should be full")
	}
	res := h.Results()
	want := []float64{5, 4, 3}
	for i, r := range res {
		if r.Score != want[i] {
			t.Fatalf("position %d: score %v, want %v", i, r.Score, want[i])
		}
	}
}

func TestHeapMinThreshold(t *testing.T) {
	h, err := NewHeap(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Min(); ok {
		t.Error("empty heap reported a min")
	}
	h.Offer(rank.DocScore{DocID: 1, Score: 10})
	h.Offer(rank.DocScore{DocID: 2, Score: 20})
	if min, _ := h.Min(); min.Score != 10 {
		t.Errorf("min = %v, want 10", min.Score)
	}
	// A worse offer must be rejected.
	if h.Offer(rank.DocScore{DocID: 3, Score: 5}) {
		t.Error("worse offer accepted into full heap")
	}
	// A better offer displaces the min.
	if !h.Offer(rank.DocScore{DocID: 4, Score: 15}) {
		t.Error("better offer rejected")
	}
	if min, _ := h.Min(); min.Score != 15 {
		t.Errorf("min after displacement = %v, want 15", min.Score)
	}
}

func TestHeapTieBreak(t *testing.T) {
	h, err := NewHeap(1)
	if err != nil {
		t.Fatal(err)
	}
	h.Offer(rank.DocScore{DocID: 9, Score: 1})
	// Same score, lower id ranks higher and must displace.
	if !h.Offer(rank.DocScore{DocID: 3, Score: 1}) {
		t.Error("tie with lower id rejected")
	}
	res := h.Results()
	if res[0].DocID != 3 {
		t.Errorf("kept doc %d, want 3", res[0].DocID)
	}
}

func TestHeapRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewHeap(n); err == nil {
			t.Errorf("NewHeap(%d) accepted a non-positive size", n)
		}
	}
}

func TestSelectTopMatchesSort(t *testing.T) {
	rng := xrand.New(31)
	if err := quick.Check(func(seed uint32) bool {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		ds := make([]rank.DocScore, n)
		for i := range ds {
			ds[i] = rank.DocScore{DocID: uint32(i), Score: float64(rng.Intn(50))}
		}
		got := SelectTop(ds, k)
		ref := append([]rank.DocScore(nil), ds...)
		rank.SortByScore(ref)
		if k > n {
			k = n
		}
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	if SelectTop([]rank.DocScore{{DocID: 1, Score: 1}}, 0) != nil {
		t.Error("SelectTop with k=0 should be nil")
	}
}

// makeSources builds m sources over numObj objects. When correlated is
// true, grades across sources are positively correlated (the easy case for
// early termination on Sum); otherwise independent.
func makeSources(rng *xrand.RNG, m, numObj int, correlated bool) []Source {
	base := make([]float64, numObj)
	for i := range base {
		base[i] = rng.Float64()
	}
	out := make([]Source, m)
	for s := 0; s < m; s++ {
		grades := make([]rank.DocScore, numObj)
		for i := 0; i < numObj; i++ {
			var g float64
			if correlated {
				g = 0.7*base[i] + 0.3*rng.Float64()
			} else {
				g = rng.Float64()
			}
			grades[i] = rank.DocScore{DocID: uint32(i), Score: g}
		}
		out[s] = NewSliceSource(grades)
	}
	return out
}

func sameTop(t *testing.T, name string, got, want []rank.DocScore, checkScores bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].DocID != want[i].DocID {
			t.Fatalf("%s: position %d has doc %d, want %d", name, i, got[i].DocID, want[i].DocID)
		}
		if checkScores && math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("%s: position %d score %v, want %v", name, i, got[i].Score, want[i].Score)
		}
	}
}

// sameSet checks set equality of the returned documents — the guarantee
// NRA provides (order within the set may deviate from true-score order
// because it ranks by lower bounds).
func sameSet(t *testing.T, name string, got, want []rank.DocScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	ids := map[uint32]bool{}
	for _, w := range want {
		ids[w.DocID] = true
	}
	for _, g := range got {
		if !ids[g.DocID] {
			t.Fatalf("%s: doc %d not in the true top set", name, g.DocID)
		}
	}
}

func TestAlgorithmsAgreeWithNaive(t *testing.T) {
	rng := xrand.New(7)
	aggs := []Agg{SumAgg(), MinAgg(), MaxAgg(), WeightedSumAgg([]float64{0.7, 0.2, 0.1, 0.4})}
	for _, m := range []int{1, 2, 3, 4} {
		for _, corr := range []bool{true, false} {
			sources := makeSources(rng, m, 300, corr)
			for _, agg := range aggs {
				for _, n := range []int{1, 5, 20} {
					naive, err := Naive(sources, agg, n)
					if err != nil {
						t.Fatal(err)
					}
					fa, err := FA(sources, agg, n)
					if err != nil {
						t.Fatal(err)
					}
					sameTop(t, "FA/"+agg.Name, fa.Top, naive.Top, true)
					ta, err := TA(sources, agg, n)
					if err != nil {
						t.Fatal(err)
					}
					sameTop(t, "TA/"+agg.Name, ta.Top, naive.Top, true)
					nra, err := NRA(sources, agg, n)
					if err != nil {
						t.Fatal(err)
					}
					// NRA guarantees the right set; its reported scores
					// are lower bounds, not exact values.
					sameSet(t, "NRA/"+agg.Name, nra.Top, naive.Top)
				}
			}
		}
	}
}

func TestTAStopsEarly(t *testing.T) {
	rng := xrand.New(11)
	sources := makeSources(rng, 2, 5000, true)
	ta, err := TA(sources, SumAgg(), 10)
	if err != nil {
		t.Fatal(err)
	}
	naive, _ := Naive(sources, SumAgg(), 10)
	if ta.Accesses.Sorted >= naive.Accesses.Sorted/2 {
		t.Errorf("TA used %d sorted accesses; naive %d — expected a large saving on correlated data",
			ta.Accesses.Sorted, naive.Accesses.Sorted)
	}
}

func TestFAStopsEarly(t *testing.T) {
	rng := xrand.New(13)
	sources := makeSources(rng, 2, 5000, true)
	fa, err := FA(sources, SumAgg(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Accesses.Sorted >= 2*5000 {
		t.Errorf("FA drained the sources (%d sorted accesses)", fa.Accesses.Sorted)
	}
}

func TestNRAUsesNoRandomAccess(t *testing.T) {
	rng := xrand.New(17)
	sources := makeSources(rng, 3, 500, true)
	nra, err := NRA(sources, SumAgg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if nra.Accesses.Random != 0 {
		t.Errorf("NRA performed %d random accesses", nra.Accesses.Random)
	}
}

func TestAlgorithmsValidateInput(t *testing.T) {
	rng := xrand.New(1)
	src := makeSources(rng, 1, 10, false)
	type fn func([]Source, Agg, int) (Result, error)
	for name, f := range map[string]fn{"naive": Naive, "fa": FA, "ta": TA, "nra": NRA} {
		if _, err := f(nil, SumAgg(), 5); err == nil {
			t.Errorf("%s accepted empty sources", name)
		}
		if _, err := f(src, SumAgg(), 0); err == nil {
			t.Errorf("%s accepted n=0", name)
		}
	}
}

func TestNRejectedTooManySources(t *testing.T) {
	srcs := make([]Source, 65)
	for i := range srcs {
		srcs[i] = NewSliceSource([]rank.DocScore{{DocID: 1, Score: 1}})
	}
	if _, err := NRA(srcs, SumAgg(), 1); err == nil {
		t.Error("NRA accepted 65 sources")
	}
}

func TestNLargerThanUniverse(t *testing.T) {
	rng := xrand.New(3)
	sources := makeSources(rng, 2, 8, false)
	for name, f := range map[string]func([]Source, Agg, int) (Result, error){
		"naive": Naive, "fa": FA, "ta": TA, "nra": NRA,
	} {
		res, err := f(sources, SumAgg(), 50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Top) != 8 {
			t.Errorf("%s returned %d results, want all 8", name, len(res.Top))
		}
	}
}

func TestDisjointSources(t *testing.T) {
	// Objects present in only one source: missing grades are 0.
	a := NewSliceSource([]rank.DocScore{{DocID: 1, Score: 0.9}, {DocID: 2, Score: 0.5}})
	b := NewSliceSource([]rank.DocScore{{DocID: 3, Score: 0.8}, {DocID: 2, Score: 0.6}})
	naive, err := Naive([]Source{a, b}, SumAgg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// doc2: 0.5+0.6=1.1; doc1: 0.9; doc3: 0.8
	want := []rank.DocScore{{DocID: 2, Score: 1.1}, {DocID: 1, Score: 0.9}, {DocID: 3, Score: 0.8}}
	sameTop(t, "naive", naive.Top, want, true)
	ta, err := TA([]Source{a, b}, SumAgg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameTop(t, "ta", ta.Top, want, true)
	fa, err := FA([]Source{a, b}, SumAgg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameTop(t, "fa", fa.Top, want, true)
	nra, err := NRA([]Source{a, b}, SumAgg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "nra", nra.Top, want)
}

// TestPropertyAgreement drives the four algorithms over random instances:
// FA and TA must reproduce the naive ranking exactly; NRA must return the
// same document set.
func TestPropertyAgreement(t *testing.T) {
	rng := xrand.New(99)
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(mRaw, nRaw, objRaw uint8, corr bool) bool {
		m := int(mRaw)%4 + 1
		n := int(nRaw)%15 + 1
		numObj := int(objRaw)%100 + 20
		sources := makeSources(rng, m, numObj, corr)
		naive, err := Naive(sources, SumAgg(), n)
		if err != nil {
			return false
		}
		for _, f := range []func([]Source, Agg, int) (Result, error){FA, TA} {
			res, err := f(sources, SumAgg(), n)
			if err != nil {
				return false
			}
			if len(res.Top) != len(naive.Top) {
				return false
			}
			for i := range res.Top {
				if res.Top[i].DocID != naive.Top[i].DocID {
					return false
				}
			}
		}
		nra, err := NRA(sources, SumAgg(), n)
		if err != nil || len(nra.Top) != len(naive.Top) {
			return false
		}
		inTrue := map[uint32]bool{}
		for _, w := range naive.Top {
			inTrue[w.DocID] = true
		}
		for _, g := range nra.Top {
			if !inTrue[g.DocID] {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSourceOrdering(t *testing.T) {
	s := NewSliceSource([]rank.DocScore{{DocID: 5, Score: 0.2}, {DocID: 1, Score: 0.9}, {DocID: 2, Score: 0.9}, {DocID: 3, Score: 0.5}})
	var prev float64 = math.Inf(1)
	var ids []uint32
	for {
		id, g, ok := s.Next()
		if !ok {
			break
		}
		if g > prev {
			t.Fatal("sorted access not descending")
		}
		prev = g
		ids = append(ids, id)
	}
	if ids[0] != 1 || ids[1] != 2 {
		t.Errorf("equal grades must order by ascending id, got %v", ids)
	}
	if g, ok := s.Lookup(3); !ok || g != 0.5 {
		t.Errorf("Lookup(3) = %v,%v", g, ok)
	}
	if _, ok := s.Lookup(99); ok {
		t.Error("Lookup of absent id succeeded")
	}
	s.Reset()
	if id, _, _ := s.Next(); id != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestAggFunctions(t *testing.T) {
	g := []float64{0.2, 0.8, 0.5}
	if got := SumAgg().Combine(g); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("sum = %v", got)
	}
	if got := MinAgg().Combine(g); got != 0.2 {
		t.Errorf("min = %v", got)
	}
	if got := MaxAgg().Combine(g); got != 0.8 {
		t.Errorf("max = %v", got)
	}
	if got := WeightedSumAgg([]float64{1, 0, 2}).Combine(g); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("wsum = %v", got)
	}
	if got := MinAgg().Combine(nil); got != 0 {
		t.Errorf("min of empty = %v", got)
	}
}

func BenchmarkTAvsNaive(b *testing.B) {
	rng := xrand.New(5)
	sources := makeSources(rng, 3, 10000, true)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Naive(sources, SumAgg(), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := TA(sources, SumAgg(), 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
