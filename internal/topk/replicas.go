package topk

import (
	"sort"

	"repro/internal/rank"
)

// ReplicaAnswer is one replica's response to a scattered query. Unlike
// a shard, a replica holds a *full copy* of the index, so replica
// answers overlap: the merge deduplicates by document id instead of
// assuming disjoint id ranges. Generation is the replica's manifest
// ordinal — the replication clock that decides which answers describe
// the same index state.
type ReplicaAnswer struct {
	// Name identifies the replica in the merged certificate's Skipped
	// list (e.g. its URL).
	Name string
	// Generation is the manifest ordinal the replica served from.
	Generation uint64
	// Top is the replica's answer (globally meaningful ids and scores).
	Top []rank.DocScore
	// Cert is the replica's own single-node certificate.
	Cert Certificate
	// Err, when non-nil, marks the replica unreachable or failed; the
	// other fields are ignored.
	Err error
}

// MergeReplicas combines K replica answers into one answer with a
// certificate that never overstates what the fleet proved.
//
// The freshness rule: the fleet's answer is defined over the *newest*
// generation any replica served (maxGen). Replicas at maxGen agree
// byte-for-byte on every document's score — same immutable segments,
// same statistics — so their answers merge by simple deduplication.
// A replica behind maxGen is *stale*: its documents may be deleted,
// rescored, or missing relative to the fleet state, so its answer is
// excluded entirely and the replica is named in Skipped — a lagging
// follower can degrade a merged answer but can never silently age it.
//
// The exactness rule mirrors MergeShardsPartial: the merged answer is
// Exact only when every replica answered, at the same generation, with
// its own Exact certificate. Anything less — an unreachable replica, a
// stale one, or one that itself served degraded — yields Degraded with
// ShardsServed counting only the exact full-coverage answers (a
// replica's internally-degraded documents still merge in: they carry
// true scores and can only improve coverage, but they prove nothing
// about what its quarantined segments hide).
//
// Replicas are full copies, so unlike the shard merge a single exact
// answer at maxGen already proves the true top N: exactness here is a
// statement about fleet coverage, feeding the same Certificate shape
// single-node answers carry.
func MergeReplicas(answers []ReplicaAnswer, n int) ([]rank.DocScore, Certificate, uint64) {
	if n <= 0 {
		return nil, Certificate{Degraded: true, ShardsTotal: len(answers)}, 0
	}
	var maxGen uint64
	anyOK := false
	for _, a := range answers {
		if a.Err == nil && (!anyOK || a.Generation > maxGen) {
			maxGen = a.Generation
			anyOK = true
		}
	}
	cert := Certificate{ShardsTotal: len(answers)}
	if !anyOK {
		for _, a := range answers {
			cert.Skipped = append(cert.Skipped, a.Name)
		}
		cert.Degraded = true
		return nil, cert, 0
	}

	h, _ := NewHeap(n) // n > 0 was just checked
	seen := make(map[uint32]bool)
	for _, a := range answers {
		switch {
		case a.Err != nil, a.Generation != maxGen:
			cert.Skipped = append(cert.Skipped, a.Name)
			continue
		case a.Cert.Exact && !a.Cert.Degraded:
			cert.ShardsServed++
		default:
			// Served, current, but internally degraded: its documents are
			// true-score survivors and merge in, but the replica cannot
			// vouch for full coverage.
			cert.Skipped = append(cert.Skipped, a.Name)
		}
		for _, ds := range a.Top {
			if seen[ds.DocID] {
				continue // same generation ⇒ identical score; drop the duplicate
			}
			seen[ds.DocID] = true
			h.Offer(ds)
		}
	}
	sort.Strings(cert.Skipped)
	cert.Exact = cert.ShardsServed == len(answers)
	cert.Degraded = !cert.Exact
	return h.Results(), cert, maxGen
}
