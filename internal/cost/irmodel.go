package cost

import (
	"fmt"
	"math"

	"repro/internal/storage"
)

// IRPlanCost is the predicted cost of an inverted-file query plan in the
// two currencies the storage substrate measures: page reads and postings
// decoded.
type IRPlanCost struct {
	Pages   float64
	Decodes float64
}

// Weighted combines the two terms into one comparable number. The default
// weight reflects that a page read (8 KiB of I/O) costs on the order of a
// thousand posting decodes; experiments may recalibrate.
func (c IRPlanCost) Weighted(pageWeight float64) float64 {
	return pageWeight*c.Pages + c.Decodes
}

// DefaultPageWeight is the page-read weight used when callers have not
// calibrated their own.
const DefaultPageWeight = 1000

// IRModel predicts inverted-file access costs from term document
// frequencies. Its single parameter — compressed bytes per posting — is
// calibrated from the actual index, after which predictions are pure
// arithmetic over the lexicon statistics available at plan time.
type IRModel struct {
	BytesPerPosting float64
}

// CalibrateIR fits the model to a built index: total compressed bytes over
// total postings.
func CalibrateIR(indexBytes int64, totalPostings int64) (IRModel, error) {
	if totalPostings <= 0 {
		return IRModel{}, fmt.Errorf("cost: cannot calibrate over %d postings", totalPostings)
	}
	if indexBytes <= 0 {
		return IRModel{}, fmt.Errorf("cost: cannot calibrate over %d bytes", indexBytes)
	}
	return IRModel{BytesPerPosting: float64(indexBytes) / float64(totalPostings)}, nil
}

// TermCost predicts the cost of streaming one term's full postings list.
func (m IRModel) TermCost(docFreq int) IRPlanCost {
	if docFreq <= 0 {
		return IRPlanCost{}
	}
	bytes := float64(docFreq) * m.BytesPerPosting
	pages := bytes / storage.PageSize
	if pages < 1 {
		pages = 1 // a list costs at least one page touch
	}
	return IRPlanCost{Pages: pages, Decodes: float64(docFreq)}
}

// PlanCost predicts the cost of a term-at-a-time plan touching the given
// document frequencies (one per accessed list).
func (m IRModel) PlanCost(docFreqs []int) IRPlanCost {
	var total IRPlanCost
	for _, df := range docFreqs {
		c := m.TermCost(df)
		total.Pages += c.Pages
		total.Decodes += c.Decodes
	}
	return total
}

// SparseProbeCost predicts the cost of probing one term's list for a
// candidate set of the given size using the non-dense index instead of a
// full stream. Probes are monotone seeks, so several candidates landing in
// the same skip block share one block decode; the expected number of
// distinct blocks touched follows the classical occupancy estimate
// B·(1-(1-1/B)^c) for c candidates over B blocks, bounded above by the
// full list cost.
func (m IRModel) SparseProbeCost(docFreq, candidates, blockSize int) IRPlanCost {
	if docFreq <= 0 || candidates <= 0 {
		return IRPlanCost{}
	}
	full := m.TermCost(docFreq)
	blocks := float64(docFreq) / float64(blockSize)
	if blocks < 1 {
		return full
	}
	touched := blocks * (1 - math.Pow(1-1/blocks, float64(candidates)))
	probed := touched * float64(blockSize)
	if probed >= full.Decodes {
		return full
	}
	// Page cost: each touched block costs about one page visit, capped at
	// the full list.
	pages := touched
	if pages > full.Pages {
		pages = full.Pages
	}
	if pages < 1 {
		pages = 1
	}
	return IRPlanCost{Pages: pages, Decodes: probed}
}
