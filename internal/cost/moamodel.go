package cost

import (
	"fmt"
	"math"

	"repro/internal/moa"
)

// Estimate is the cost model's prediction for one (sub)expression: output
// cardinality plus the two work counters the evaluator maintains.
// Work figures are cumulative over the subtree.
type Estimate struct {
	Card        float64
	Visits      float64
	Comparisons float64
}

// Work returns the combined work metric used for plan comparison.
func (e Estimate) Work() float64 { return e.Visits + e.Comparisons }

// MoaModel predicts evaluation costs of algebra expressions. Statistics
// come from literal leaves (whose value distributions are fully known at
// plan time — they play the role of base-table statistics); derived
// cardinalities propagate through operators with the classical estimation
// rules. The single model covers all extensions, which is precisely the
// paper's Step 3 argument: because Moa needs no black-box delegation, one
// cost model sees the whole plan.
type MoaModel struct {
	Reg *moa.Registry
	// Buckets for leaf histograms; default 32.
	Buckets int
}

// NewMoaModel returns a model over reg.
func NewMoaModel(reg *moa.Registry) *MoaModel {
	return &MoaModel{Reg: reg, Buckets: 32}
}

// estimateCtx carries the per-node derived statistics.
type estimateCtx struct {
	est  Estimate
	hist *Histogram // value distribution of the output container; may be nil
}

// Estimate predicts the evaluation cost of e.
func (m *MoaModel) Estimate(e *moa.Expr) (Estimate, error) {
	ctx, err := m.walk(e)
	if err != nil {
		return Estimate{}, err
	}
	return ctx.est, nil
}

func (m *MoaModel) walk(e *moa.Expr) (estimateCtx, error) {
	if e.Op == moa.OpLit {
		return m.leaf(e)
	}
	kids := make([]estimateCtx, len(e.Children))
	for i, c := range e.Children {
		k, err := m.walk(c)
		if err != nil {
			return estimateCtx{}, err
		}
		kids[i] = k
	}
	out := estimateCtx{}
	// Work accumulates over children.
	for _, k := range kids {
		out.est.Visits += k.est.Visits
		out.est.Comparisons += k.est.Comparisons
	}
	in := estimateCtx{}
	if len(kids) > 0 {
		in = kids[0]
	}
	n := in.est.Card
	switch e.Op {
	case "list.select", "bag.select", "set.select":
		sel := m.rangeSelectivity(in.hist, e.Params)
		out.est.Card = n * sel
		out.est.Visits += n
		out.est.Comparisons += 2 * n
		out.hist = in.hist // approximation: shape within range preserved
	case "list.select.binsearch":
		sel := m.rangeSelectivity(in.hist, e.Params)
		out.est.Card = n * sel
		out.est.Visits += out.est.Card
		out.est.Comparisons += 2 * log2(n+1)
		out.hist = in.hist
	case "list.sort":
		out.est.Card = n
		out.est.Visits += n
		out.est.Comparisons += n * log2(n+1)
		out.hist = in.hist
	case "list.topn", "bag.topn":
		k := paramN(e)
		out.est.Card = math.Min(n, k)
		out.est.Visits += n
		// Heap threshold check per element plus sift costs for entries.
		out.est.Comparisons += n + math.Min(n, k)*log2(k+1)*2
		out.hist = in.hist
	case "list.topn.sorted":
		k := paramN(e)
		out.est.Card = math.Min(n, k)
		out.est.Visits += out.est.Card
		out.hist = in.hist
	case "list.projecttobag", "bag.tolist":
		out.est.Card = n
		out.est.Visits += n
		out.hist = in.hist
	case "set.tolist":
		out.est.Card = n
		out.est.Visits += n
		out.est.Comparisons += n * log2(n+1)
		out.hist = in.hist
	case "bag.toset":
		// Duplicate elimination: cardinality shrinks by an assumed
		// duplication factor when we lack better knowledge.
		out.est.Card = n * defaultDistinctFraction
		out.est.Visits += n
		out.est.Comparisons += n * log2(n+1)
		out.hist = in.hist
	case "list.topnby":
		k := float64(0)
		if len(e.Params) == 2 {
			if n, ok := e.Params[1].(moa.Int); ok {
				k = float64(n)
			}
		}
		out.est.Card = math.Min(n, k)
		out.est.Visits += n
		out.est.Comparisons += n * log2(n+1) // full stable sort by field
		out.hist = nil
	case "list.projectfield":
		out.est.Card = n
		out.est.Visits += n
		out.hist = nil // field distribution unknown without tuple stats
	case "list.selectby":
		out.est.Card = n * defaultRangeSelectivity
		out.est.Visits += n
		out.est.Comparisons += 2 * n
		out.hist = nil
	case "list.count", "bag.count", "set.count":
		out.est.Card = 1
		out.hist = nil
	case "list.concat", "bag.union":
		out.est.Card = kids[0].est.Card + kids[1].est.Card
		out.est.Visits += out.est.Card
		out.hist = kids[0].hist // approximation
	default:
		return estimateCtx{}, fmt.Errorf("cost: no cost rule for operator %q", e.Op)
	}
	return out, nil
}

// defaultDistinctFraction is the assumed distinct/total ratio when
// eliminating duplicates without statistics.
const defaultDistinctFraction = 0.7

// defaultRangeSelectivity applies when no histogram is available.
const defaultRangeSelectivity = 1.0 / 3

func (m *MoaModel) leaf(e *moa.Expr) (estimateCtx, error) {
	var elems []moa.Value
	switch v := e.Lit.(type) {
	case *moa.List:
		elems = v.Elems
	case *moa.Bag:
		elems = v.Elems
	case *moa.Set:
		elems = v.Elems
	case moa.Int, moa.Float, moa.Str:
		return estimateCtx{est: Estimate{Card: 1}}, nil
	default:
		return estimateCtx{}, fmt.Errorf("cost: unknown literal kind %T", e.Lit)
	}
	ctx := estimateCtx{est: Estimate{Card: float64(len(elems))}}
	// Build a histogram over numeric elements; base "table" statistics.
	vals := make([]float64, 0, len(elems))
	for _, el := range elems {
		switch x := el.(type) {
		case moa.Int:
			vals = append(vals, float64(x))
		case moa.Float:
			vals = append(vals, float64(x))
		}
	}
	if len(vals) > 0 {
		h, err := BuildHistogram(vals, m.Buckets)
		if err == nil {
			ctx.hist = h
		}
	}
	return ctx, nil
}

// rangeSelectivity estimates the fraction of elements within [lo, hi].
func (m *MoaModel) rangeSelectivity(h *Histogram, params []moa.Value) float64 {
	if h == nil || len(params) != 2 || h.Total() == 0 {
		return defaultRangeSelectivity
	}
	lo, okLo := numeric(params[0])
	hi, okHi := numeric(params[1])
	if !okLo || !okHi {
		return defaultRangeSelectivity
	}
	sel := h.EstimateRange(lo, hi) / float64(h.Total())
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func numeric(v moa.Value) (float64, bool) {
	switch x := v.(type) {
	case moa.Int:
		return float64(x), true
	case moa.Float:
		return float64(x), true
	default:
		return 0, false
	}
}

func paramN(e *moa.Expr) float64 {
	if len(e.Params) == 1 {
		if n, ok := e.Params[0].(moa.Int); ok {
			return float64(n)
		}
	}
	return 0
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// ChoosePlan returns the index of the cheapest alternative under the model
// (ties broken by position). This is the cost-based decision procedure the
// optimizer layers call when rewriting alone cannot order plans.
func (m *MoaModel) ChoosePlan(alternatives []*moa.Expr) (int, []Estimate, error) {
	if len(alternatives) == 0 {
		return -1, nil, fmt.Errorf("cost: no alternatives")
	}
	ests := make([]Estimate, len(alternatives))
	best := 0
	for i, alt := range alternatives {
		est, err := m.Estimate(alt)
		if err != nil {
			return -1, nil, err
		}
		ests[i] = est
		if est.Work() < ests[best].Work() {
			best = i
		}
	}
	return best, ests, nil
}
