// Merge planning model: the live store's tiered compaction policy asks
// this package whether replacing a run of small adjacent segments by one
// merged segment pays for itself — the explicit write-cost / read-cost /
// space trade-off of the multi-objective view in PAPERS.md, applied to
// index maintenance debt: every extra segment a query term must visit
// costs at least one page touch and one list open, so fragmentation taxes
// every future query until a merge retires it.
package cost

import (
	"fmt"

	"repro/internal/storage"
)

// SegmentStats summarizes one live segment for merge planning — the
// aggregates the manifest layer has on hand without opening postings.
type SegmentStats struct {
	Docs     int   // documents in the segment
	Postings int64 // stored postings across all lists
	Bytes    int64 // compressed postings bytes
}

// MergeEstimate is the model's verdict on one candidate merge.
type MergeEstimate struct {
	// QueryGain is the predicted weighted cost saved per query by serving
	// one merged segment instead of the run: each query term pays the
	// one-page list floor and a list open in every fragment segment that
	// holds it, and pays them once after the merge.
	QueryGain float64
	// MergeCost is the one-time weighted cost of performing the merge:
	// every input page is read, every output page written, every posting
	// re-encoded.
	MergeCost float64
}

// Worthwhile reports whether the merge amortizes within the given query
// horizon: the one-time merge cost is recovered after at most horizon
// queries enjoy the per-query gain.
func (e MergeEstimate) Worthwhile(horizon int) bool {
	if horizon <= 0 {
		return false
	}
	return e.QueryGain*float64(horizon) >= e.MergeCost
}

// EstimateMerge prices merging a run of adjacent segments, using the
// weighted page/decode currency of IRPlanCost. termsPerQuery is the
// expected number of query terms (the fan-out multiplier on the per-
// segment page floor); pageWeight converts page touches into decode
// units (DefaultPageWeight when unsure).
func EstimateMerge(run []SegmentStats, termsPerQuery int, pageWeight float64) (MergeEstimate, error) {
	if len(run) < 2 {
		return MergeEstimate{}, fmt.Errorf("cost: a merge needs at least two segments, got %d", len(run))
	}
	if termsPerQuery < 1 {
		termsPerQuery = 1
	}
	if pageWeight <= 0 {
		pageWeight = DefaultPageWeight
	}
	var pages, decodes float64
	for _, s := range run {
		if s.Docs < 0 || s.Postings < 0 || s.Bytes < 0 {
			return MergeEstimate{}, fmt.Errorf("cost: negative segment stats %+v", s)
		}
		pages += float64((s.Bytes + storage.PageSize - 1) / storage.PageSize)
		decodes += float64(s.Postings)
	}
	// Per-query gain: (K-1) spared page floors and list opens per term.
	// A list open is priced as one decode batch (BlockSize-ish) — small
	// against the page weight, kept for the decode currency's honesty.
	gain := IRPlanCost{
		Pages:   float64(termsPerQuery) * float64(len(run)-1),
		Decodes: float64(termsPerQuery) * float64(len(run)-1),
	}
	// One-time cost: read every input page, write the merged output
	// (approximately the same volume), re-encode every posting.
	cost := IRPlanCost{Pages: 2 * pages, Decodes: decodes}
	return MergeEstimate{
		QueryGain: gain.Weighted(pageWeight),
		MergeCost: cost.Weighted(pageWeight),
	}, nil
}
