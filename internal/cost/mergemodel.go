// Merge planning model: the live store's tiered compaction policy asks
// this package whether replacing a run of small adjacent segments by one
// merged segment pays for itself — the explicit write-cost / read-cost /
// space trade-off of the multi-objective view in PAPERS.md, applied to
// index maintenance debt: every extra segment a query term must visit
// costs at least one page touch and one list open, so fragmentation taxes
// every future query until a merge retires it.
package cost

import (
	"fmt"

	"repro/internal/storage"
)

// SegmentStats summarizes one live segment for merge planning — the
// aggregates the manifest layer has on hand without opening postings.
type SegmentStats struct {
	Docs     int   // documents in the segment
	Postings int64 // stored postings across all lists, dead ones included
	Bytes    int64 // compressed postings bytes

	// Alive/Stored carry the tombstone picture for purge-aware pricing:
	// Alive live documents out of Stored total. A merge rewrites only the
	// live fraction, so the output-write and re-encode terms scale with
	// Alive/Stored, and every query decodes (then discards) the dead
	// share until a purge retires it. Stored == 0 means "no tombstone
	// information": the segment is priced fully live. Otherwise
	// 0 <= Alive <= Stored must hold.
	Alive  int
	Stored int
}

// liveFrac is the fraction of the segment's stored postings that will
// survive a merge (1 when no tombstone information is attached).
func (s SegmentStats) liveFrac() float64 {
	if s.Stored <= 0 {
		return 1
	}
	return float64(s.Alive) / float64(s.Stored)
}

// MergeEstimate is the model's verdict on one candidate merge.
type MergeEstimate struct {
	// QueryGain is the predicted weighted cost saved per query by serving
	// one merged segment instead of the run: each query term pays the
	// one-page list floor and a list open in every fragment segment that
	// holds it, and pays them once after the merge; on top of that the
	// dead fraction of every input stops taxing each term's decode work.
	QueryGain float64
	// MergeCost is the one-time weighted cost of performing the merge:
	// every input page is read, the surviving volume written back, every
	// surviving posting re-encoded.
	MergeCost float64
}

// Worthwhile reports whether the merge amortizes within the given query
// horizon: the one-time merge cost is recovered after at most horizon
// queries enjoy the per-query gain.
func (e MergeEstimate) Worthwhile(horizon int) bool {
	if horizon <= 0 {
		return false
	}
	return e.QueryGain*float64(horizon) >= e.MergeCost
}

// EstimateMerge prices merging a run of adjacent segments, using the
// weighted page/decode currency of IRPlanCost. termsPerQuery is the
// expected number of query terms (the fan-out multiplier on the per-
// segment page floor) — fractional values are fine, it is typically a
// measured EWMA; pageWeight converts page touches into decode units
// (DefaultPageWeight when unsure).
//
// A single-segment run is a purge rewrite: there is no fan-out saving
// (K−1 = 0), but the dead fraction still prices a per-query gain and a
// discounted rewrite, so heavily tombstoned segments become worthwhile
// on their own.
func EstimateMerge(run []SegmentStats, termsPerQuery float64, pageWeight float64) (MergeEstimate, error) {
	if len(run) < 1 {
		return MergeEstimate{}, fmt.Errorf("cost: a merge needs at least one segment, got %d", len(run))
	}
	if termsPerQuery < 1 {
		termsPerQuery = 1
	}
	if pageWeight <= 0 {
		pageWeight = DefaultPageWeight
	}
	var pagesIn, pagesOut, reencode, deadGain float64
	for _, s := range run {
		if s.Docs < 0 || s.Postings < 0 || s.Bytes < 0 {
			return MergeEstimate{}, fmt.Errorf("cost: negative segment stats %+v", s)
		}
		if s.Alive < 0 || s.Stored < 0 || s.Alive > s.Stored {
			return MergeEstimate{}, fmt.Errorf("cost: inconsistent alive/stored counts %+v", s)
		}
		lf := s.liveFrac()
		pages := float64((s.Bytes + storage.PageSize - 1) / storage.PageSize)
		pagesIn += pages
		pagesOut += lf * pages
		reencode += lf * float64(s.Postings)
		deadGain += 1 - lf
	}
	// Per-query gain: (K-1) spared page floors and list opens per term,
	// plus the dead share of every input's per-term page floor and decode
	// work — dead postings are decoded and then discarded on every query
	// until a merge purges them. A list open is priced as one decode
	// batch (BlockSize-ish) — small against the page weight, kept for the
	// decode currency's honesty.
	perTerm := float64(len(run)-1) + deadGain
	gain := IRPlanCost{
		Pages:   termsPerQuery * perTerm,
		Decodes: termsPerQuery * perTerm,
	}
	// One-time cost: read every input page, write back only the surviving
	// volume, re-encode only the surviving postings. Pricing the full
	// volume here would systematically overprice exactly the purge
	// rewrites that reclaim the most space.
	cost := IRPlanCost{Pages: pagesIn + pagesOut, Decodes: reencode}
	return MergeEstimate{
		QueryGain: gain.Weighted(pageWeight),
		MergeCost: cost.Weighted(pageWeight),
	}, nil
}
