// Package cost implements Step 3 of the paper: a single, centralized cost
// model spanning every extension of the algebra and the IR engine, with no
// delegation to black-box subsystems.
//
// Three pieces live here:
//
//   - equi-depth histograms over value distributions, the statistics
//     backbone for selectivity estimation (also used by the probabilistic
//     top-N baseline);
//   - a cost model over Moa algebra expressions predicting the evaluator's
//     deterministic work counters (element visits, comparisons);
//   - an IR plan cost model predicting page reads and postings decoded
//     for fragmented top-N query plans, which is what the safe/unsafe
//     switch decision of Step 1 consumes.
//
// Experiment E9 measures all three against the real counters.
package cost

import (
	"fmt"
	"sort"
)

// Histogram is an equi-depth (equi-height) histogram: bucket boundaries
// chosen so each bucket holds the same number of observed values. Depth
// rather than width because score distributions in ranking are heavily
// skewed, and equi-depth keeps relative estimation error uniform.
type Histogram struct {
	bounds []float64 // len = buckets+1; bounds[0] = min, bounds[len-1] = max
	depth  float64   // values per bucket
	total  int64
}

// BuildHistogram constructs an equi-depth histogram with the given number
// of buckets. It errors on empty input or non-positive bucket counts.
func BuildHistogram(values []float64, buckets int) (*Histogram, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("cost: cannot build histogram over no values")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("cost: bucket count %d must be positive", buckets)
	}
	if buckets > len(values) {
		buckets = len(values)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	h := &Histogram{
		bounds: make([]float64, buckets+1),
		depth:  float64(len(values)) / float64(buckets),
		total:  int64(len(values)),
	}
	for b := 0; b <= buckets; b++ {
		idx := int(float64(b) * h.depth)
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		h.bounds[b] = sorted[idx]
	}
	h.bounds[buckets] = sorted[len(sorted)-1]
	return h, nil
}

// Total returns the number of values the histogram summarizes.
func (h *Histogram) Total() int64 { return h.total }

// Min and Max return the observed extremes.
func (h *Histogram) Min() float64 { return h.bounds[0] }

// Max returns the largest observed value.
func (h *Histogram) Max() float64 { return h.bounds[len(h.bounds)-1] }

// EstimateAbove estimates how many values are >= v, interpolating linearly
// within the containing bucket.
func (h *Histogram) EstimateAbove(v float64) float64 {
	return float64(h.total) - h.EstimateBelow(v)
}

// EstimateBelow estimates how many values are < v.
func (h *Histogram) EstimateBelow(v float64) float64 {
	if v <= h.bounds[0] {
		return 0
	}
	if v >= h.Max() {
		return float64(h.total)
	}
	// Find the bucket containing v: bounds[i] <= v < bounds[i+1].
	i := sort.SearchFloat64s(h.bounds, v)
	if i > 0 && (i >= len(h.bounds) || h.bounds[i] != v) {
		i--
	}
	if i >= len(h.bounds)-1 {
		i = len(h.bounds) - 2
	}
	lo, hi := h.bounds[i], h.bounds[i+1]
	frac := 0.0
	if hi > lo {
		frac = (v - lo) / (hi - lo)
	}
	return (float64(i) + frac) * h.depth
}

// EstimateRange estimates how many values fall in [lo, hi].
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	est := h.EstimateBelow(hi) - h.EstimateBelow(lo)
	// Nudge for the inclusive upper bound: treat hi as hi+ε by adding the
	// mass exactly at hi when hi is a bucket boundary. The linear model
	// cannot see point masses, so this stays an approximation.
	if est < 0 {
		est = 0
	}
	if est > float64(h.total) {
		est = float64(h.total)
	}
	return est
}

// Quantile returns an estimate of the p-quantile (0 <= p <= 1) of the
// distribution: the value below which a fraction p of the data lies.
func (h *Histogram) Quantile(p float64) float64 {
	if p <= 0 {
		return h.Min()
	}
	if p >= 1 {
		return h.Max()
	}
	pos := p * float64(len(h.bounds)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i >= len(h.bounds)-1 {
		return h.Max()
	}
	return h.bounds[i] + frac*(h.bounds[i+1]-h.bounds[i])
}

// CutoffForTopN returns a score cutoff κ such that the estimated number of
// values >= κ is at least n·inflation. This is the histogram computation
// at the heart of Donjerkovic & Ramakrishnan's probabilistic top-N: the
// inflation factor buys confidence against estimation error, trading a
// bigger candidate set for a lower restart probability.
func (h *Histogram) CutoffForTopN(n int, inflation float64) float64 {
	if inflation < 1 {
		inflation = 1
	}
	need := float64(n) * inflation
	if need >= float64(h.total) {
		return h.Min()
	}
	p := 1 - need/float64(h.total)
	return h.Quantile(p)
}
