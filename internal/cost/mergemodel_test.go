package cost

import "testing"

// TestEstimateMerge: many small segments amortize quickly; the verdict
// scales with the horizon and rejects degenerate input.
func TestEstimateMerge(t *testing.T) {
	small := []SegmentStats{
		{Docs: 100, Postings: 5000, Bytes: 20000},
		{Docs: 100, Postings: 5000, Bytes: 20000},
		{Docs: 110, Postings: 5500, Bytes: 22000},
		{Docs: 90, Postings: 4500, Bytes: 18000},
	}
	est, err := EstimateMerge(small, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if est.QueryGain <= 0 || est.MergeCost <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	// 4 terms × 3 spared page floors × weight 1000 = 12000/query; the
	// one-time cost is a few dozen weighted pages — worthwhile within a
	// thousand queries, not within one.
	if !est.Worthwhile(1000) {
		t.Fatalf("small-segment merge rejected at horizon 1000: %+v", est)
	}
	if est.Worthwhile(1) {
		t.Fatalf("merge amortized after a single query: %+v", est)
	}
	if est.Worthwhile(0) {
		t.Fatal("zero horizon accepted")
	}

	if _, err := EstimateMerge(small[:1], 4, DefaultPageWeight); err == nil {
		t.Fatal("single-segment run accepted")
	}
	if _, err := EstimateMerge([]SegmentStats{{Docs: -1}, {}}, 4, DefaultPageWeight); err == nil {
		t.Fatal("negative stats accepted")
	}
}

// TestEstimateMergeMonotone: a wider run saves more per query but costs
// more to perform.
func TestEstimateMergeMonotone(t *testing.T) {
	seg := SegmentStats{Docs: 100, Postings: 5000, Bytes: 20000}
	two, err := EstimateMerge([]SegmentStats{seg, seg}, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	four, err := EstimateMerge([]SegmentStats{seg, seg, seg, seg}, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if four.QueryGain <= two.QueryGain {
		t.Fatalf("gain not monotone in run length: %+v vs %+v", two, four)
	}
	if four.MergeCost <= two.MergeCost {
		t.Fatalf("cost not monotone in run length: %+v vs %+v", two, four)
	}
}
