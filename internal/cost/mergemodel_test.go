package cost

import "testing"

// TestEstimateMerge: many small segments amortize quickly; the verdict
// scales with the horizon and rejects degenerate input.
func TestEstimateMerge(t *testing.T) {
	small := []SegmentStats{
		{Docs: 100, Postings: 5000, Bytes: 20000},
		{Docs: 100, Postings: 5000, Bytes: 20000},
		{Docs: 110, Postings: 5500, Bytes: 22000},
		{Docs: 90, Postings: 4500, Bytes: 18000},
	}
	est, err := EstimateMerge(small, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if est.QueryGain <= 0 || est.MergeCost <= 0 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	// 4 terms × 3 spared page floors × weight 1000 = 12000/query; the
	// one-time cost is a few dozen weighted pages — worthwhile within a
	// thousand queries, not within one.
	if !est.Worthwhile(1000) {
		t.Fatalf("small-segment merge rejected at horizon 1000: %+v", est)
	}
	if est.Worthwhile(1) {
		t.Fatalf("merge amortized after a single query: %+v", est)
	}
	if est.Worthwhile(0) {
		t.Fatal("zero horizon accepted")
	}

	if _, err := EstimateMerge(nil, 4, DefaultPageWeight); err == nil {
		t.Fatal("empty run accepted")
	}
	if _, err := EstimateMerge([]SegmentStats{{Docs: -1}, {}}, 4, DefaultPageWeight); err == nil {
		t.Fatal("negative stats accepted")
	}
	if _, err := EstimateMerge([]SegmentStats{{Docs: 10, Alive: 5, Stored: 4}}, 4, DefaultPageWeight); err == nil {
		t.Fatal("alive > stored accepted")
	}
	if _, err := EstimateMerge([]SegmentStats{{Docs: 10, Alive: -1, Stored: 4}}, 4, DefaultPageWeight); err == nil {
		t.Fatal("negative alive accepted")
	}
}

// TestEstimateMergeMonotone: a wider run saves more per query but costs
// more to perform.
func TestEstimateMergeMonotone(t *testing.T) {
	seg := SegmentStats{Docs: 100, Postings: 5000, Bytes: 20000}
	two, err := EstimateMerge([]SegmentStats{seg, seg}, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	four, err := EstimateMerge([]SegmentStats{seg, seg, seg, seg}, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if four.QueryGain <= two.QueryGain {
		t.Fatalf("gain not monotone in run length: %+v vs %+v", two, four)
	}
	if four.MergeCost <= two.MergeCost {
		t.Fatalf("cost not monotone in run length: %+v vs %+v", two, four)
	}
}

// TestEstimateMergePurgeAware is the regression test for the merge
// pricing bug: the old model charged `2 × pages` (read everything, write
// the same volume back) and `Postings` re-encodes even when most of the
// run was tombstoned, so exactly the purge rewrites that reclaim the
// most space were starved by Worthwhile. The fixed model scales the
// output-write and re-encode terms by the live fraction and credits the
// per-query dead-decode tax as gain.
func TestEstimateMergePurgeAware(t *testing.T) {
	// A single segment that is half dead must be worthwhile to rewrite at
	// the default horizon. The pre-fix model rejected single-segment runs
	// outright, so a purge rewrite could never even be priced.
	half := []SegmentStats{
		{Docs: 500, Postings: 100000, Bytes: 200 * 4096, Alive: 500, Stored: 1000},
	}
	est, err := EstimateMerge(half, 4, DefaultPageWeight)
	if err != nil {
		t.Fatalf("single-segment purge run rejected: %v", err)
	}
	if !est.Worthwhile(1000) {
		t.Fatalf("50%%-dead segment not worthwhile at the default horizon: %+v", est)
	}

	// Two heavily tombstoned segments, sized so the pre-fix pricing said
	// no (gain 4×1×1001×1000 ≈ 4.0M < cost 2×3000×1000 + 1e6 = 7.0M)
	// and the purge-aware pricing says yes (gain ≈ 11.2M ≥ cost ≈ 3.4M).
	dead := []SegmentStats{
		{Docs: 100, Postings: 500000, Bytes: 1500 * 4096, Alive: 100, Stored: 1000},
		{Docs: 100, Postings: 500000, Bytes: 1500 * 4096, Alive: 100, Stored: 1000},
	}
	est, err = EstimateMerge(dead, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Worthwhile(1000) {
		t.Fatalf("90%%-dead run not worthwhile at horizon 1000: %+v", est)
	}

	// The live fraction must discount the one-time cost: the same run
	// priced fully live costs strictly more and gains strictly less.
	live := []SegmentStats{
		{Docs: 1000, Postings: 500000, Bytes: 1500 * 4096},
		{Docs: 1000, Postings: 500000, Bytes: 1500 * 4096},
	}
	full, err := EstimateMerge(live, 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if est.MergeCost >= full.MergeCost {
		t.Fatalf("tombstoned run not cheaper to rewrite: dead %+v vs live %+v", est, full)
	}
	if est.QueryGain <= full.QueryGain {
		t.Fatalf("tombstoned run not pricing the dead-decode tax as gain: dead %+v vs live %+v", est, full)
	}

	// A fully live single segment has nothing to gain: rewriting it buys
	// no fan-out reduction and frees nothing.
	solo, err := EstimateMerge(live[:1], 4, DefaultPageWeight)
	if err != nil {
		t.Fatal(err)
	}
	if solo.QueryGain != 0 {
		t.Fatalf("fully live single segment priced a gain: %+v", solo)
	}
	if solo.Worthwhile(1 << 30) {
		t.Fatalf("pointless rewrite accepted: %+v", solo)
	}
}
