package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/moa"
	"repro/internal/xrand"
)

func TestBuildHistogramValidation(t *testing.T) {
	if _, err := BuildHistogram(nil, 4); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := BuildHistogram([]float64{1}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := BuildHistogram([]float64{1, 2}, 10); err != nil {
		t.Errorf("buckets > values should clamp, got %v", err)
	}
}

func TestHistogramBasics(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, err := BuildHistogram(vals, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 1000 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Min() != 0 || h.Max() != 999 {
		t.Errorf("range [%v, %v]", h.Min(), h.Max())
	}
	// Uniform data: estimates should track truth closely.
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 1000}, {500, 500}, {999, 0}, {250, 750},
	}
	for _, c := range cases {
		got := h.EstimateAbove(c.v)
		if math.Abs(got-c.want) > 30 {
			t.Errorf("EstimateAbove(%v) = %v, want about %v", c.v, got, c.want)
		}
	}
	if got := h.EstimateRange(100, 200); math.Abs(got-100) > 30 {
		t.Errorf("EstimateRange(100,200) = %v", got)
	}
	if got := h.EstimateRange(200, 100); got != 0 {
		t.Errorf("inverted range = %v", got)
	}
}

func TestHistogramSkewedData(t *testing.T) {
	// Heavy skew: most mass near zero. Equi-depth must stay accurate.
	rng := xrand.New(5)
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.ExpFloat64()
	}
	h, err := BuildHistogram(vals, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 1.0, 2.0} {
		truth := 0
		for _, v := range vals {
			if v >= q {
				truth++
			}
		}
		got := h.EstimateAbove(q)
		if relErr := math.Abs(got-float64(truth)) / float64(len(vals)); relErr > 0.03 {
			t.Errorf("EstimateAbove(%v) = %v, truth %d (rel err %.3f)", q, got, truth, relErr)
		}
	}
}

func TestQuantile(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	h, _ := BuildHistogram(vals, 20)
	if q := h.Quantile(0); q != 0 {
		t.Errorf("Q(0) = %v", q)
	}
	if q := h.Quantile(1); q != 999 {
		t.Errorf("Q(1) = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-500) > 55 {
		t.Errorf("Q(0.5) = %v", q)
	}
}

func TestCutoffForTopN(t *testing.T) {
	rng := xrand.New(7)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	h, _ := BuildHistogram(vals, 64)
	for _, n := range []int{10, 100, 1000} {
		cut := h.CutoffForTopN(n, 1.5)
		above := 0
		for _, v := range vals {
			if v >= cut {
				above++
			}
		}
		if above < n {
			t.Errorf("n=%d: cutoff %v keeps only %d values", n, cut, above)
		}
		if above > 5*n+100 {
			t.Errorf("n=%d: cutoff %v keeps %d values — far too loose", n, cut, above)
		}
	}
	// Asking for more than exists must return the minimum.
	if cut := h.CutoffForTopN(100000, 1); cut != h.Min() {
		t.Errorf("oversized n: cutoff %v, want min", cut)
	}
}

// TestMoaModelPredictsCounters builds random expressions, runs them, and
// checks the model's work prediction is within a reasonable factor of the
// evaluator's true counters — the E9 criterion at unit scale.
func TestMoaModelPredictsCounters(t *testing.T) {
	reg := moa.NewRegistry()
	model := NewMoaModel(reg)
	rng := xrand.New(99)
	checked := 0
	for trial := 0; trial < 300; trial++ {
		e := genExpr(rng)
		est, err := model.Estimate(e)
		if err != nil {
			t.Fatalf("estimate %s: %v", e, err)
		}
		ev := moa.NewEvaluator(reg)
		if _, err := ev.Eval(e); err != nil {
			t.Fatalf("eval %s: %v", e, err)
		}
		actual := float64(ev.Counters.ElementsVisited + ev.Counters.Comparisons)
		if actual < 50 {
			continue // tiny plans: constant factors dominate, skip
		}
		checked++
		if est.Work() > actual*4 || est.Work() < actual/4 {
			t.Errorf("trial %d: %s\npredicted work %.0f, actual %.0f", trial, e, est.Work(), actual)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d non-trivial cases checked", checked)
	}
}

// genExpr builds random expressions mirroring the optimizer tests but
// sized for cost checking.
func genExpr(rng *xrand.RNG) *moa.Expr {
	n := 50 + rng.Intn(500)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(1000))
	}
	e := moa.Literal(moa.NewIntList(xs...))
	kind := moa.KindList
	depth := 1 + rng.Intn(4)
	for d := 0; d < depth; d++ {
		lo := int64(rng.Intn(1000))
		hi := lo + int64(rng.Intn(1000-int(lo)+1))
		switch kind {
		case moa.KindList:
			switch rng.Intn(5) {
			case 0:
				e = moa.SelectL(e, moa.Int(lo), moa.Int(hi))
			case 1:
				e = moa.SortL(e)
			case 2:
				e = moa.TopNL(e, int64(1+rng.Intn(20)))
			case 3:
				e = moa.ProjectToBag(e)
				kind = moa.KindBag
			case 4:
				e = moa.SelectL(moa.SortL(e), moa.Int(lo), moa.Int(hi))
			}
		case moa.KindBag:
			switch rng.Intn(3) {
			case 0:
				e = moa.SelectB(e, moa.Int(lo), moa.Int(hi))
			case 1:
				e = moa.ToListB(e)
				kind = moa.KindList
			case 2:
				e = moa.TopNB(e, int64(1+rng.Intn(20)))
				kind = moa.KindList
			}
		}
	}
	return e
}

// TestMoaModelRanksPlans: the model must order the paper's Example 1 plans
// correctly (rewritten < original), which is what plan choice needs — the
// absolute error matters less than the ordering.
func TestMoaModelRanksPlans(t *testing.T) {
	reg := moa.NewRegistry()
	model := NewMoaModel(reg)
	xs := make([]int64, 5000)
	for i := range xs {
		xs[i] = int64(i)
	}
	l := moa.Literal(moa.NewIntList(xs...))
	orig := moa.SelectB(moa.ProjectToBag(l), moa.Int(10), moa.Int(20))
	rewritten := moa.ProjectToBag(moa.NewExpr("list.select.binsearch",
		[]moa.Value{moa.Int(10), moa.Int(20)}, l))
	best, ests, err := model.ChoosePlan([]*moa.Expr{orig, rewritten})
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("model chose plan %d (work %v vs %v); the rewritten plan is cheaper",
			best, ests[0].Work(), ests[1].Work())
	}
}

func TestMoaModelSelectivity(t *testing.T) {
	reg := moa.NewRegistry()
	model := NewMoaModel(reg)
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(i)
	}
	l := moa.Literal(moa.NewIntList(xs...))
	narrow, err := model.Estimate(moa.SelectL(l, moa.Int(0), moa.Int(9)))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := model.Estimate(moa.SelectL(l, moa.Int(0), moa.Int(899)))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Card > 50 {
		t.Errorf("narrow select estimated %v rows, want about 10", narrow.Card)
	}
	if wide.Card < 700 || wide.Card > 1000 {
		t.Errorf("wide select estimated %v rows, want about 900", wide.Card)
	}
}

func TestChoosePlanValidation(t *testing.T) {
	model := NewMoaModel(moa.NewRegistry())
	if _, _, err := model.ChoosePlan(nil); err == nil {
		t.Error("empty alternatives accepted")
	}
}

func TestCalibrateIR(t *testing.T) {
	if _, err := CalibrateIR(0, 100); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := CalibrateIR(100, 0); err == nil {
		t.Error("zero postings accepted")
	}
	m, err := CalibrateIR(20000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if m.BytesPerPosting != 2 {
		t.Errorf("BytesPerPosting = %v", m.BytesPerPosting)
	}
}

func TestIRModelMonotone(t *testing.T) {
	m := IRModel{BytesPerPosting: 2}
	prev := IRPlanCost{}
	for _, df := range []int{1, 100, 10000, 1000000} {
		c := m.TermCost(df)
		if c.Pages < prev.Pages || c.Decodes <= prev.Decodes-1 {
			t.Errorf("cost not monotone at df=%d", df)
		}
		prev = c
	}
	if c := m.TermCost(0); c.Pages != 0 || c.Decodes != 0 {
		t.Error("df=0 should cost nothing")
	}
	// Minimum one page for any non-empty list.
	if c := m.TermCost(1); c.Pages != 1 {
		t.Errorf("tiny list pages = %v, want 1", c.Pages)
	}
}

func TestIRPlanCost(t *testing.T) {
	m := IRModel{BytesPerPosting: 2}
	single := m.TermCost(5000)
	plan := m.PlanCost([]int{5000, 5000})
	if math.Abs(plan.Pages-2*single.Pages) > 1e-9 || plan.Decodes != 2*single.Decodes {
		t.Error("plan cost must be additive over terms")
	}
	if plan.Weighted(DefaultPageWeight) <= plan.Decodes {
		t.Error("weighted cost must price pages")
	}
}

func TestSparseProbeCost(t *testing.T) {
	m := IRModel{BytesPerPosting: 2}
	full := m.TermCost(1 << 20)
	probe := m.SparseProbeCost(1<<20, 10, 128)
	if probe.Decodes >= full.Decodes {
		t.Error("sparse probing should decode less than a full stream")
	}
	if probe.Pages >= full.Pages {
		t.Error("sparse probing should touch fewer pages")
	}
	// Degenerates to the full cost when candidates are plentiful.
	many := m.SparseProbeCost(1000, 100000, 128)
	if many != m.TermCost(1000) {
		t.Error("oversized candidate set must clamp to full cost")
	}
}

func TestHistogramEstimateProperty(t *testing.T) {
	rng := xrand.New(12)
	if err := quick.Check(func(seed uint32) bool {
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		h, err := BuildHistogram(vals, 16)
		if err != nil {
			return false
		}
		// Estimates are bounded and monotone in the threshold.
		prev := math.Inf(1)
		for _, q := range []float64{-30, -10, 0, 10, 30} {
			e := h.EstimateAbove(q)
			if e < 0 || e > float64(h.Total()) {
				return false
			}
			if e > prev {
				return false
			}
			prev = e
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
