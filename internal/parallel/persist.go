// Shard persistence: a built Searcher can be written to disk as one
// segment per shard plus a small JSON manifest, and reopened later with
// every shard's postings served through its own buffer pool — the
// sharded layer's half of the pluggable-backend contract. A reopened
// Searcher answers byte-identically to the built one: shard bases, the
// global corpus statistics, and each shard's fragment chain all ride
// along in the manifest and segments.
package parallel

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
)

// manifestFile is the Searcher-level metadata next to the shard
// segment directories.
const manifestFile = "searcher.json"

// manifest is the JSON document tying the shard segments together.
type manifest struct {
	Version int             `json:"version"`
	Corpus  rank.CorpusStat `json:"corpus"`
	Shards  []manifestShard `json:"shards"`
}

type manifestShard struct {
	Base uint32 `json:"base"`
	Docs int    `json:"docs"`
	Dir  string `json:"dir"` // relative to the manifest's directory
}

// shardDirName names shard i's segment directory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Persist writes the searcher's shards into dir: one segment directory
// per shard (each shard's fragment chain via index.Persist) and the
// manifest recording shard bases and the global corpus statistics.
func (s *Searcher) Persist(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("parallel: persist: %w", err)
	}
	m := manifest{Version: 1}
	if len(s.shards) > 0 {
		m.Corpus = s.shards[0].engine.Corpus()
	}
	for i, sh := range s.shards {
		sub := shardDirName(i)
		if err := sh.engine.MX.Persist(filepath.Join(dir, sub)); err != nil {
			return fmt.Errorf("parallel: persist shard %d: %w", i, err)
		}
		m.Shards = append(m.Shards, manifestShard{Base: sh.base, Docs: sh.docs, Dir: sub})
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("parallel: persist manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("parallel: persist manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("parallel: persist manifest: %w", err)
	}
	return nil
}

// OpenSearcher reopens a persisted searcher. Each shard gets its own
// FileDisk and a buffer pool of poolPagesPerShard frames, so the whole
// searcher's resident postings working set is bounded by
// shards × poolPagesPerShard pages. cfg supplies the runtime knobs that
// are not part of the persisted state (worker-pool bound; Shards and
// Cuts are fixed by the on-disk layout and ignored). Close the returned
// searcher to release the shard files.
//
// Each in-flight block fault transiently pins one pool page, so a pool
// must hold at least as many frames as the queries concurrently
// faulting from it or Fetch can find every frame pinned. OpenSearcher
// therefore raises poolPagesPerShard to cfg.Workers+2 when it is set
// lower; callers that override Options.Workers per call above
// cfg.Workers should size poolPagesPerShard for that ceiling
// themselves.
func OpenSearcher(dir string, poolPagesPerShard int, scorer rank.Scorer, cfg Config) (*Searcher, error) {
	if scorer == nil {
		return nil, fmt.Errorf("parallel: nil scorer")
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("parallel: open manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("parallel: manifest %s is not valid JSON (corrupt?): %w",
			filepath.Join(dir, manifestFile), err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("parallel: manifest version %d, this build reads version 1", m.Version)
	}
	if len(m.Shards) == 0 {
		return nil, fmt.Errorf("parallel: manifest lists no shards")
	}
	cfg.Shards = len(m.Shards)
	cfg.fillDefaults()
	if floor := cfg.Workers + 2; poolPagesPerShard < floor {
		poolPagesPerShard = floor
	}
	s := &Searcher{cfg: cfg}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()
	for i, ms := range m.Shards {
		pool, fd, err := index.OpenPool(filepath.Join(dir, ms.Dir), poolPagesPerShard)
		if err != nil {
			return nil, fmt.Errorf("parallel: open shard %d: %w", i, err)
		}
		s.closers = append(s.closers, fd)
		mx, err := index.OpenMulti(filepath.Join(dir, ms.Dir), pool)
		if err != nil {
			return nil, fmt.Errorf("parallel: open shard %d: %w", i, err)
		}
		if got := mx.Stats.NumDocs; got != ms.Docs {
			return nil, fmt.Errorf("parallel: shard %d holds %d documents, manifest says %d (corrupt?)", i, got, ms.Docs)
		}
		engine, err := core.NewProgressiveWithCorpus(mx, scorer, m.Corpus)
		if err != nil {
			return nil, fmt.Errorf("parallel: open shard %d: %w", i, err)
		}
		s.shards = append(s.shards, &shard{base: ms.Base, docs: ms.Docs, engine: engine})
	}
	ok = true
	return s, nil
}

// Close releases the shard segment files of a searcher opened with
// OpenSearcher. It is a no-op for searchers built in memory.
func (s *Searcher) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}
