package parallel

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestSearchContextPreCancelled: a cancelled context is refused before
// any shard launches, for single queries and batches alike.
func TestSearchContextPreCancelled(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SearchContext(ctx, f.queries[0], Options{N: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("Search: err = %v, want context.Canceled", err)
	}
	if _, err := s.SearchBatchContext(ctx, f.queries, Options{N: 10}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchBatch: err = %v, want context.Canceled", err)
	}
}

// TestSearchContextMidSearchCancel races concurrent cancellations
// against in-flight fan-out searches (run it with -race): every
// outcome must be either the exact answer or a clean context.Canceled —
// never a partial result or a wedged worker — and the worker goroutines
// must all have unwound afterwards.
func TestSearchContextMidSearchCancel(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 4)
	before := runtime.NumGoroutine()

	const rounds = 50
	for i := 0; i < rounds; i++ {
		q := f.queries[i%len(f.queries)]
		want, err := s.Search(q, Options{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			// Vary the cancellation point from "immediately" to "after
			// the search likely finished".
			time.Sleep(time.Duration(i%5) * 50 * time.Microsecond)
			cancel()
			close(done)
		}()
		res, err := s.SearchContext(ctx, q, Options{N: 10})
		<-done
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: err = %v, want context.Canceled", i, err)
			}
			continue
		}
		if len(res.Top) != len(want.Top) {
			t.Fatalf("round %d: completed search returned %d results, want %d", i, len(res.Top), len(want.Top))
		}
		for j := range want.Top {
			if res.Top[j] != want.Top[j] {
				t.Fatalf("round %d: rank %d diverged under concurrent cancel", i, j)
			}
		}
	}

	// No goroutine may outlive its search: poll briefly to let the last
	// cancelled workers unwind before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation stress", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSearchBatchContextCancelStopsEarly: cancelling a batch mid-run
// returns the context error rather than grinding through the remaining
// queries.
func TestSearchBatchContextCancelStopsEarly(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 2)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	// A long batch: repeat the query set to give the cancel time to land.
	queries := f.queries
	for len(queries) < 400 {
		queries = append(queries, f.queries...)
	}
	if _, err := s.SearchBatchContext(ctx, queries, Options{N: 10, Workers: 2}); err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		return
	}
	// Completing the whole batch before the timer fired is legal (fast
	// machine); nothing to assert beyond "no wrong error".
}
