package parallel

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collection"
	"repro/internal/rank"
	"repro/internal/storage"
)

// TestSearcherPersistRoundTrip persists a sharded searcher and reopens
// it with small per-shard pools, demanding byte-identical merged top-N
// answers, identical exactness certificates, and that the disk-resident
// shards actually page (pools smaller than their segments).
func TestSearcherPersistRoundTrip(t *testing.T) {
	col, err := collection.Generate(collection.Config{
		NumDocs: 400, VocabSize: 6000, MeanDocLen: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 20, MinTerms: 2, MaxTerms: 5, MaxDocFreqFrac: 0.5, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	built, err := NewSearcher(col, pool, rank.NewBM25(), Config{Shards: 3, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := built.Persist(dir); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSearcher(dir, 4, rank.NewBM25(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.NumShards() != built.NumShards() {
		t.Fatalf("%d shards, want %d", opened.NumShards(), built.NumShards())
	}

	for qi, q := range queries {
		want, err := built.Search(q, Options{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		got, err := opened.Search(q, Options{N: 10})
		if err != nil {
			t.Fatalf("query %d over reopened searcher: %v", qi, err)
		}
		if want.Exact != got.Exact || len(want.Top) != len(got.Top) {
			t.Fatalf("query %d: shape diverged across backends", qi)
		}
		for i := range want.Top {
			if want.Top[i] != got.Top[i] {
				t.Fatalf("query %d rank %d: %+v, want %+v", qi, i, got.Top[i], want.Top[i])
			}
		}
	}

	// Batch path over the reopened searcher.
	wb, err := built.SearchBatch(queries, Options{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := opened.SearchBatch(queries, Options{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	for qi := range wb.Results {
		for i := range wb.Results[qi].Top {
			if wb.Results[qi].Top[i] != gb.Results[qi].Top[i] {
				t.Fatalf("batch query %d rank %d diverged", qi, i)
			}
		}
	}
}

// TestOpenSearcherRejectsBadManifest: a garbled or missing manifest must
// fail with a clear error, not panic or return an empty searcher.
func TestOpenSearcherRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenSearcher(dir, 4, rank.NewBM25(), Config{}); err == nil {
		t.Error("missing manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSearcher(dir, 4, rank.NewBM25(), Config{}); err == nil {
		t.Error("garbled manifest accepted")
	}
}
