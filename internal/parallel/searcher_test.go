package parallel

import (
	"math"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

type fixture struct {
	col     *collection.Collection
	pool    *storage.Pool
	queries []collection.Query
	engine  *core.Engine // sequential ModeFull ground truth
}

var cached *fixture

func fix(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	col, err := collection.Generate(collection.Config{
		NumDocs: 1800, VocabSize: 25000, MeanDocLen: 160, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 25, MinTerms: 2, MaxTerms: 6, Seed: 32, MaxDocFreqFrac: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx, err := index.BuildFragmented(col, pool, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := core.NewEngine(fx, rank.NewBM25())
	if err != nil {
		t.Fatal(err)
	}
	cached = &fixture{col: col, pool: pool, queries: queries, engine: engine}
	return cached
}

func newSearcher(t *testing.T, f *fixture, shards int) *Searcher {
	t.Helper()
	s, err := NewSearcher(f.col, f.pool, rank.NewBM25(), Config{Shards: shards, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSearcherValidation(t *testing.T) {
	f := fix(t)
	if _, err := NewSearcher(nil, f.pool, rank.NewBM25(), Config{}); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := NewSearcher(f.col, nil, rank.NewBM25(), Config{}); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := NewSearcher(f.col, f.pool, nil, Config{}); err == nil {
		t.Error("nil scorer accepted")
	}
	if _, err := NewSearcher(f.col, f.pool, rank.NewBM25(), Config{Shards: -2}); err == nil {
		t.Error("negative shard count accepted")
	}
}

func TestSearchValidation(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 2)
	if _, err := s.Search(f.queries[0], Options{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := s.SearchBatch(f.queries, Options{N: -1}); err == nil {
		t.Error("negative N accepted for batch")
	}
}

// TestShardClamp: more shards than documents must clamp, not break.
func TestShardClamp(t *testing.T) {
	col, err := collection.Generate(collection.Config{
		NumDocs: 7, VocabSize: 500, MeanDocLen: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearcher(col, pool, rank.NewBM25(), Config{Shards: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 7 {
		t.Fatalf("shards = %d, want clamp to 7", s.NumShards())
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 3, MinTerms: 1, MaxTerms: 3, Seed: 6, MaxDocFreqFrac: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		res, err := s.Search(q, Options{N: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Error("epsilon 0 search not certified exact")
		}
	}
}

// TestSearchBatchMatchesSearch: the batched API must return exactly what
// query-at-a-time evaluation returns, in input order.
func TestSearchBatchMatchesSearch(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 3)
	opts := Options{N: 10}
	batch, err := s.SearchBatch(f.queries, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(f.queries) {
		t.Fatalf("batch returned %d results for %d queries", len(batch.Results), len(f.queries))
	}
	var wantScanned int64
	for i, q := range f.queries {
		one, err := s.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := batch.Results[i]
		if len(got.Top) != len(one.Top) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(got.Top), len(one.Top))
		}
		for j := range got.Top {
			if got.Top[j] != one.Top[j] {
				t.Fatalf("query %d position %d: batch %v, single %v", i, j, got.Top[j], one.Top[j])
			}
		}
		if got.Exact != one.Exact || got.Stats != one.Stats {
			t.Fatalf("query %d: metadata diverged: %+v vs %+v", i, got, one)
		}
		wantScanned += one.Stats.RowsScanned
	}
	if batch.Total.RowsScanned != wantScanned {
		t.Fatalf("aggregated RowsScanned %d, want %d", batch.Total.RowsScanned, wantScanned)
	}
	if _, err := s.SearchBatch(nil, opts); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestEpsilonRelaxation: positive epsilon may stop early; the result must
// still carry a sound certificate, and epsilon 0 must always be exact.
func TestEpsilonRelaxation(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 3)
	for _, q := range f.queries[:8] {
		exact, err := s.Search(q, Options{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Exact {
			t.Fatalf("query %d: epsilon 0 not certified exact", q.ID)
		}
		relaxed, err := s.Search(q, Options{N: 10, Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.FragmentsUsed > exact.FragmentsUsed {
			t.Fatalf("query %d: relaxed run touched more chain links (%d) than exact (%d)",
				q.ID, relaxed.FragmentsUsed, exact.FragmentsUsed)
		}
		// A certified-exact relaxed answer must actually equal the exact one.
		if relaxed.Exact {
			if len(relaxed.Top) != len(exact.Top) {
				t.Fatalf("query %d: certified answer has %d results, exact %d",
					q.ID, len(relaxed.Top), len(exact.Top))
			}
			for j := range relaxed.Top {
				if relaxed.Top[j].DocID != exact.Top[j].DocID {
					t.Fatalf("query %d position %d: certified %v, exact %v",
						q.ID, j, relaxed.Top[j], exact.Top[j])
				}
			}
		}
	}
}

// scoreTol bounds the floating-point drift allowed between sequential
// and sharded evaluation: the scoring formula inputs are identical, only
// the summation order of per-term contributions differs.
const scoreTol = 1e-9

// sameTopN asserts two rankings agree as sets modulo ties at the cutoff:
// matching positions must agree in score; a document present in only one
// ranking must tie (within tolerance) with the boundary score.
func sameTopN(t *testing.T, label string, got, want []rank.DocScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	if len(want) == 0 {
		return
	}
	inGot := make(map[uint32]float64, len(got))
	for _, ds := range got {
		inGot[ds.DocID] = ds.Score
	}
	inWant := make(map[uint32]float64, len(want))
	for _, ds := range want {
		inWant[ds.DocID] = ds.Score
	}
	boundary := want[len(want)-1].Score
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > scoreTol {
			t.Fatalf("%s position %d: score %v vs %v", label, i, got[i], want[i])
		}
		if _, ok := inGot[want[i].DocID]; !ok {
			// Only boundary ties may differ between the two rankings.
			if math.Abs(want[i].Score-boundary) > scoreTol {
				t.Fatalf("%s: doc %d (score %g) missing from sharded result, boundary %g",
					label, want[i].DocID, want[i].Score, boundary)
			}
		}
		if _, ok := inWant[got[i].DocID]; !ok {
			if math.Abs(got[i].Score-boundary) > scoreTol {
				t.Fatalf("%s: doc %d (score %g) extra in sharded result, boundary %g",
					label, got[i].DocID, got[i].Score, boundary)
			}
		}
	}
}
