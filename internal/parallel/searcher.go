package parallel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/topk"
)

// Config sizes a Searcher.
type Config struct {
	// Shards is the number of contiguous document-range shards (clamped
	// to the collection size). Default 1.
	Shards int
	// Workers bounds the goroutines one Search call spends on shard
	// fan-out and one SearchBatch call spends on queries. The bound is
	// per call: concurrent callers each get their own pool, so a shared
	// Searcher serving C callers runs up to C×Workers goroutines.
	// Default runtime.GOMAXPROCS(0).
	Workers int
	// Cuts are the cumulative postings-volume fractions splitting each
	// shard's fragment chain (see index.BuildMulti). Default {0.05, 0.25}.
	Cuts []float64
}

func (c *Config) fillDefaults() {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Cuts) == 0 {
		c.Cuts = []float64{0.05, 0.25}
	}
}

// Options configures one (or one batch of) sharded search(es).
type Options struct {
	// N is the number of results. Required.
	N int
	// Epsilon relaxes each shard's progressive stopping rule, exactly as
	// in core.ProgressiveOptions. With 0 every shard computes its exact
	// local top N and the merged answer is certified exact.
	Epsilon float64
	// Workers overrides the searcher's configured worker-pool bound for
	// this call (0 keeps Config.Workers). Benchmarks use it to sweep
	// worker counts over one set of shards without rebuilding indexes.
	Workers int
}

// Result is the merged outcome of a sharded search.
type Result struct {
	// Top is the global top N, with global document ids.
	Top []rank.DocScore
	// Exact is the merge's certificate that Top is provably the true
	// global top N (always true when Epsilon == 0).
	Exact bool
	// Cert is the explicit certificate behind Exact, carrying shard
	// coverage. The in-memory sharded searcher always serves every
	// shard (Cert.Degraded is false; a failing shard fails the query),
	// but the type is shared with the live layer, whose quarantine path
	// produces genuinely partial coverage.
	Cert topk.Certificate
	// FragmentsUsed sums the chain links processed across shards — the
	// sharded counterpart of core.ProgressiveResult.FragmentsUsed.
	FragmentsUsed int
	// Stats accounts the work in the operator-algebra vocabulary:
	// RowsScanned counts accumulator entries across shards (the paper's
	// "objects taken into consideration"), Comparisons counts merge-heap
	// offers. PredEvals and Restarts are unused here.
	Stats exec.Stats
}

// Searcher evaluates top-N queries over K document-range shards
// concurrently. It is safe for concurrent use: all per-query state lives
// on the call stack or inside the per-search contexts of the shard
// engines.
type Searcher struct {
	cfg    Config
	shards []*shard

	// closers holds the per-shard segment files of a searcher reopened
	// from disk (see OpenSearcher); nil for searchers built in memory.
	closers []io.Closer
}

// NewSearcher partitions col into cfg.Shards document ranges, builds one
// fragment chain per range on pool, and returns the sharded searcher.
func NewSearcher(col *collection.Collection, pool *storage.Pool, scorer rank.Scorer, cfg Config) (*Searcher, error) {
	if col == nil || pool == nil || scorer == nil {
		return nil, fmt.Errorf("parallel: nil collection, pool, or scorer")
	}
	cfg.fillDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("parallel: shard count %d must be positive", cfg.Shards)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: worker count %d must be positive", cfg.Workers)
	}
	shards, err := buildShards(col, pool, scorer, cfg.Shards, cfg.Cuts)
	if err != nil {
		return nil, err
	}
	return &Searcher{cfg: cfg, shards: shards}, nil
}

// NumShards reports how many shards the searcher actually built (the
// configured count clamped to the collection size).
func (s *Searcher) NumShards() int { return len(s.shards) }

// Workers reports the configured worker-pool bound.
func (s *Searcher) Workers() int { return s.cfg.Workers }

// workersFor resolves the effective worker bound for one call.
func (s *Searcher) workersFor(opts Options) int {
	if opts.Workers > 0 {
		return opts.Workers
	}
	return s.cfg.Workers
}

// Search evaluates q, fanning the shards out over the worker pool and
// merging their answers with bound administration. It is SearchContext
// without cancellation.
func (s *Searcher) Search(q collection.Query, opts Options) (Result, error) {
	return s.SearchContext(context.Background(), q, opts)
}

// SearchContext evaluates q like Search, observing ctx: shard engines
// poll it at postings-block granularity, shards not yet launched when it
// fires are never scheduled, and a shard failure cancels the siblings
// still running — so neither a disconnected caller nor a failed shard
// keeps the fan-out burning CPU.
func (s *Searcher) SearchContext(ctx context.Context, q collection.Query, opts Options) (Result, error) {
	workers := s.workersFor(opts)
	return s.search(ctx, q, opts, workers > 1 && len(s.shards) > 1, workers)
}

// searchSequential evaluates q shard by shard on the calling goroutine.
// SearchBatch uses it so parallelism comes from the query dimension
// without multiplying goroutines per query.
func (s *Searcher) searchSequential(ctx context.Context, q collection.Query, opts Options) (Result, error) {
	return s.search(ctx, q, opts, false, 1)
}

// search runs q over every shard — concurrently through a pool of
// workers goroutines when fanOut is set, inline otherwise — and merges
// the per-shard answers. One body for both paths, so validation,
// option plumbing, and merge inputs cannot diverge.
func (s *Searcher) search(ctx context.Context, q collection.Query, opts Options, fanOut bool, workers int) (Result, error) {
	if opts.N <= 0 {
		return Result{}, fmt.Errorf("parallel: N = %d must be positive", opts.N)
	}
	// A shard error cancels the sibling shards through this derived
	// context; ctx.Err() stays the caller's own signal.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	shardRes := make([]core.ProgressiveResult, len(s.shards))
	shardErr := make([]error, len(s.shards))
	popts := core.ProgressiveOptions{N: opts.N, Epsilon: opts.Epsilon}
	runShard := func(i int, sh *shard) {
		shardRes[i], shardErr[i] = sh.engine.SearchContext(sctx, q, popts)
		if shardErr[i] != nil {
			cancel()
		}
	}
	if fanOut {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, sh := range s.shards {
			if sctx.Err() != nil {
				shardErr[i] = sctx.Err()
				continue // stop scheduling: a sibling failed or the caller left
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, sh *shard) {
				defer wg.Done()
				defer func() { <-sem }()
				runShard(i, sh)
			}(i, sh)
		}
		wg.Wait()
	} else {
		for i, sh := range s.shards {
			if sctx.Err() != nil {
				shardErr[i] = sctx.Err()
				continue
			}
			runShard(i, sh)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return s.merge(shardRes, shardErr, opts.N)
}

// merge remaps shard-local document ids to global ids and runs the
// bound-aware top-N merge.
func (s *Searcher) merge(shardRes []core.ProgressiveResult, shardErr []error, n int) (Result, error) {
	// Prefer the root cause: a failing shard cancels its siblings, whose
	// own errors are then mere context noise.
	for _, err := range shardErr {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return Result{}, err
		}
	}
	for _, err := range shardErr {
		if err != nil {
			return Result{}, err
		}
	}
	var res Result
	tops := make([]topk.ShardTop, len(s.shards))
	for i, r := range shardRes {
		base := s.shards[i].base
		top := make([]rank.DocScore, len(r.Top))
		for j, ds := range r.Top {
			top[j] = rank.DocScore{DocID: ds.DocID + base, Score: ds.Score}
		}
		tops[i] = topk.ShardTop{Top: top, Bound: r.RemainingBound, Truncated: r.Truncated}
		res.FragmentsUsed += r.FragmentsUsed
		res.Stats.RowsScanned += int64(r.DocsTouched)
		res.Stats.Comparisons += int64(len(r.Top))
	}
	res.Top, res.Cert = topk.MergeShardsPartial(tops, n, nil, len(s.shards))
	res.Exact = res.Cert.Exact
	return res, nil
}

// BatchResult bundles a batch's per-query answers with the aggregated
// work accounting.
type BatchResult struct {
	Results []Result
	// Total sums the per-query Stats — the batch-level exec.Stats
	// aggregation experiments report next to wall-clock.
	Total exec.Stats
}

// SearchBatch evaluates queries through a bounded worker pool of
// Workers goroutines. Each worker processes whole queries (shards
// evaluated sequentially within the worker), so a batch saturates the
// pool without goroutine multiplication; per-query results come back in
// input order. A shard error aborts the batch: queries not yet started
// when the error surfaces are skipped, and the earliest (by input
// order) error is returned.
func (s *Searcher) SearchBatch(queries []collection.Query, opts Options) (BatchResult, error) {
	return s.SearchBatchContext(context.Background(), queries, opts)
}

// SearchBatchContext evaluates the batch like SearchBatch, observing
// ctx: queries not yet started when it fires are skipped, running ones
// abort at postings-block granularity, and the call returns ctx.Err().
func (s *Searcher) SearchBatchContext(ctx context.Context, queries []collection.Query, opts Options) (BatchResult, error) {
	if opts.N <= 0 {
		return BatchResult{}, fmt.Errorf("parallel: N = %d must be positive", opts.N)
	}
	out := BatchResult{Results: make([]Result, len(queries))}
	if len(queries) == 0 {
		return out, nil
	}
	workers := s.workersFor(opts)
	if workers > len(queries) {
		workers = len(queries)
	}
	errs := make([]error, len(queries))
	jobs := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue // drain without evaluating
				}
				out.Results[i], errs[i] = s.searchSequential(ctx, queries[i], opts)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return BatchResult{}, err
		}
	}
	for i := range out.Results {
		st := out.Results[i].Stats
		out.Total.RowsScanned += st.RowsScanned
		out.Total.PredEvals += st.PredEvals
		out.Total.Comparisons += st.Comparisons
		out.Total.Restarts += st.Restarts
	}
	return out, nil
}
