package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rank"
)

// TestConcurrentSearchRace hammers one shared Searcher from many
// goroutines, mixing Search and SearchBatch, and checks every answer
// against a baseline computed up front. Run under -race this proves the
// shared-index/per-query-state split: the only shared mutable state left
// (buffer pool, decode counters) is synchronized.
func TestConcurrentSearchRace(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 4)
	opts := Options{N: 10}

	baseline := make([]Result, len(f.queries))
	for i, q := range f.queries {
		res, err := s.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g*iters + it) % len(f.queries)
				res, err := s.Search(f.queries[qi], opts)
				if err != nil {
					errc <- err
					return
				}
				if !sameRanking(res.Top, baseline[qi].Top) {
					t.Errorf("goroutine %d iter %d query %d: concurrent result diverged", g, it, qi)
					return
				}
				// Every few iterations, push a whole batch through the
				// bounded worker pool too.
				if it%5 == 0 {
					batch, err := s.SearchBatch(f.queries[:6], opts)
					if err != nil {
						errc <- err
						return
					}
					for j := range batch.Results {
						if !sameRanking(batch.Results[j].Top, baseline[j].Top) {
							t.Errorf("goroutine %d iter %d: batch query %d diverged", g, it, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentEngineRace hammers the underlying core engines directly:
// one Engine and one Progressive instance each serving many goroutines.
// This pins down the per-Search accumulator extraction, independent of
// the sharding layer above.
func TestConcurrentEngineRace(t *testing.T) {
	f := fix(t)
	s := newSearcher(t, f, 2)

	engineBaseline := make([]core.Result, len(f.queries))
	for i, q := range f.queries {
		res, err := f.engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			t.Fatal(err)
		}
		engineBaseline[i] = res
	}
	progressive := s.shards[0].engine
	progBaseline := make([]core.ProgressiveResult, len(f.queries))
	for i, q := range f.queries {
		res, err := progressive.Search(q, core.ProgressiveOptions{N: 10})
		if err != nil {
			t.Fatal(err)
		}
		progBaseline[i] = res
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, 2*goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(f.queries)
				mode := []core.Mode{core.ModeFull, core.ModeUnsafe, core.ModeSafe}[it%3]
				res, err := f.engine.Search(f.queries[qi], core.Options{N: 10, Mode: mode})
				if err != nil {
					errc <- err
					return
				}
				if mode == core.ModeFull && !sameRanking(res.Top, engineBaseline[qi].Top) {
					t.Errorf("goroutine %d iter %d: concurrent Engine result diverged", g, it)
					return
				}
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + 2*it) % len(f.queries)
				res, err := progressive.Search(f.queries[qi], core.ProgressiveOptions{N: 10})
				if err != nil {
					errc <- err
					return
				}
				if !sameRanking(res.Top, progBaseline[qi].Top) {
					t.Errorf("goroutine %d iter %d: concurrent Progressive result diverged", g, it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// sameRanking compares two result lists exactly (same engine, same
// summation order, so no tolerance is needed).
func sameRanking(a, b []rank.DocScore) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
