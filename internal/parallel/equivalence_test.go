package parallel

import (
	"fmt"
	"testing"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/xrand"
)

// TestShardedMatchesSequentialFull is the sharding correctness anchor:
// across seeded random workloads, shard counts, and scorers, the sharded
// searcher must return the same top-N set (modulo tie order at the score
// boundary) as the sequential engine's exact ModeFull evaluation.
//
// Score equality holds because every shard ranks with global corpus and
// term statistics; only floating-point summation order differs, which
// the comparison tolerates.
func TestShardedMatchesSequentialFull(t *testing.T) {
	rng := xrand.New(99)
	scorers := []rank.Scorer{rank.NewBM25(), rank.NewLM(), rank.TFIDF{}}
	for wl := 0; wl < 3; wl++ {
		seed := rng.Uint64()
		col, err := collection.Generate(collection.Config{
			NumDocs:    600 + rng.Intn(900),
			VocabSize:  8000 + rng.Intn(12000),
			MeanDocLen: 80 + rng.Intn(120),
			Seed:       seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := collection.GenerateQueries(col, collection.QueryConfig{
			NumQueries: 12, MinTerms: 2, MaxTerms: 6,
			MaxDocFreqFrac: 0.05, Seed: seed + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		scorer := scorers[wl%len(scorers)]
		fx, err := index.BuildFragmented(col, pool, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := core.NewEngine(fx, scorer)
		if err != nil {
			t.Fatal(err)
		}
		n := 5 + rng.Intn(15)
		for _, shards := range []int{1, 2, 5} {
			s, err := NewSearcher(col, pool, scorer, Config{Shards: shards, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				want, err := engine.Search(q, core.Options{N: n, Mode: core.ModeFull})
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.Search(q, Options{N: n})
				if err != nil {
					t.Fatal(err)
				}
				if !got.Exact {
					t.Fatalf("workload %d shards %d query %d: epsilon 0 not certified exact",
						wl, shards, q.ID)
				}
				label := fmt.Sprintf("workload %d (%s) shards %d query %d n %d",
					wl, scorer.Name(), shards, q.ID, n)
				sameTopN(t, label, got.Top, want.Top)
			}
		}
	}
}
