// Package parallel is the concurrency-safe, sharded query-execution
// layer over the core engines. It partitions a collection into K
// contiguous document-range shards, builds one fragment chain
// (index.MultiFragmented) per shard, fans a query out to the shards
// through a bounded worker pool, and merges the per-shard top-N answers
// with the bound administration of internal/topk, so the early
// termination of the progressive engine still holds globally.
//
// Two properties make the scatter/gather exact:
//
//  1. every shard ranks with the *global* corpus statistics (document
//     frequencies come from the shared lexicon, collection size and
//     average length are overridden onto each shard engine), so a
//     document's score is identical to what one unsharded engine would
//     compute — the classical distributed-IR global-statistics fix; and
//  2. shards partition the documents, so the global top N is a subset of
//     the union of per-shard top Ns and topk.MergeShards can certify
//     exactness from the per-shard bounds.
package parallel

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// shard is one document range with its private fragment chain and
// progressive engine. Base maps shard-local document ids (0-based, what
// the engine scores with) back to global ids.
type shard struct {
	base   uint32
	docs   int
	engine *core.Progressive
}

// buildShards splits col into k contiguous document ranges and builds a
// fragment chain plus progressive engine per range. Every shard shares
// the collection's lexicon (global term statistics) and the one buffer
// pool underneath, and is forced onto the global corpus statistics so
// scores match unsharded evaluation bit-for-bit in formula inputs.
func buildShards(col *collection.Collection, pool *storage.Pool, scorer rank.Scorer, k int, cuts []float64) ([]*shard, error) {
	numDocs := len(col.Docs)
	if k > numDocs {
		k = numDocs
	}
	if k < 1 {
		k = 1
	}
	corpus := globalCorpus(col)
	shards := make([]*shard, 0, k)
	for i := 0; i < k; i++ {
		// Even split with the remainder spread over the leading shards.
		lo := i * numDocs / k
		hi := (i + 1) * numDocs / k
		sh, err := buildShard(col, pool, scorer, uint32(lo), hi-lo, cuts, corpus)
		if err != nil {
			return nil, fmt.Errorf("parallel: shard %d [%d,%d): %w", i, lo, hi, err)
		}
		shards = append(shards, sh)
	}
	return shards, nil
}

// buildShard materializes one document range [base, base+count) as its
// own sub-collection with shard-local document ids, indexes it, and
// wraps it in a progressive engine pinned to the global corpus
// statistics.
func buildShard(col *collection.Collection, pool *storage.Pool, scorer rank.Scorer, base uint32, count int, cuts []float64, corpus rank.CorpusStat) (*shard, error) {
	localDocs := make([]collection.Document, count)
	for i := 0; i < count; i++ {
		d := col.Docs[int(base)+i] // copy; Terms slices are shared read-only
		d.ID = uint32(i)
		localDocs[i] = d
	}
	sub := &collection.Collection{
		Docs: localDocs,
		Lex:  col.Lex, // shared: term statistics stay global
		// Global aggregates, so index.Stats carries the global average
		// document length into the ranking formulas.
		TotalTokens: col.TotalTokens,
		AvgDocLen:   col.AvgDocLen,
	}
	mx, err := index.BuildMulti(sub, pool, cuts)
	if err != nil {
		return nil, err
	}
	engine, err := core.NewProgressiveWithCorpus(mx, scorer, corpus)
	if err != nil {
		return nil, err
	}
	return &shard{base: base, docs: count, engine: engine}, nil
}

// globalCorpus computes the collection-level statistics every shard must
// rank with. The collection tracks its token total as documents are
// added, so no lexicon scan is needed.
func globalCorpus(col *collection.Collection) rank.CorpusStat {
	return rank.CorpusStat{
		NumDocs:     len(col.Docs),
		AvgDocLen:   col.AvgDocLen,
		TotalTokens: col.TotalTokens,
	}
}
