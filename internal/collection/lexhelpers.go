package collection

import "repro/internal/lexicon"

// lexTermID converts an int index to a TermID; a named helper keeps the
// serialization code readable.
func lexTermID(i int) lexicon.TermID { return lexicon.TermID(i) }

// newLexiconFromNames rebuilds an empty-statistics lexicon with the given
// vocabulary in id order.
func newLexiconFromNames(names []string) *lexicon.Lexicon {
	lex := lexicon.New()
	for _, n := range names {
		lex.Intern(n)
	}
	return lex
}
