package collection

import (
	"math"
	"sort"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/zipf"
)

// smallCfg keeps unit tests fast; statistical assertions use testCol. The
// vocabulary is kept large relative to the corpus, as in real collections,
// so the document-frequency distribution shows the paper's heavy head.
func smallCfg() Config {
	return Config{NumDocs: 500, VocabSize: 20000, MeanDocLen: 150, Seed: 7}
}

var cachedCol *Collection

func testCol(t *testing.T) *Collection {
	t.Helper()
	if cachedCol == nil {
		c, err := Generate(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		cachedCol = c
	}
	return cachedCol
}

func TestGenerateBasicShape(t *testing.T) {
	col := testCol(t)
	if len(col.Docs) != 500 {
		t.Fatalf("docs = %d", len(col.Docs))
	}
	if col.Lex.Size() != 20000 {
		t.Fatalf("lexicon size = %d", col.Lex.Size())
	}
	for i := range col.Docs {
		d := &col.Docs[i]
		if d.ID != uint32(i) {
			t.Fatalf("doc %d has ID %d", i, d.ID)
		}
		var sum int32
		prev := lexicon.TermID(0)
		for j, tf := range d.Terms {
			if tf.TF <= 0 {
				t.Fatalf("doc %d term %d has TF %d", i, j, tf.TF)
			}
			if j > 0 && tf.Term <= prev {
				t.Fatalf("doc %d terms not strictly sorted", i)
			}
			prev = tf.Term
			sum += tf.TF
		}
		if sum != d.Len {
			t.Fatalf("doc %d: Len %d != sum of TFs %d", i, d.Len, sum)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTokens != b.TotalTokens {
		t.Fatal("token counts differ across identical configs")
	}
	for i := range a.Docs {
		if len(a.Docs[i].Terms) != len(b.Docs[i].Terms) {
			t.Fatalf("doc %d shape differs", i)
		}
		for j := range a.Docs[i].Terms {
			if a.Docs[i].Terms[j] != b.Docs[i].Terms[j] {
				t.Fatalf("doc %d term %d differs", i, j)
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg := smallCfg()
	a, _ := Generate(cfg)
	cfg.Seed = 8
	b, _ := Generate(cfg)
	if a.TotalTokens == b.TotalTokens {
		t.Error("different seeds produced identical token counts (suspicious)")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumDocs: -1}); err == nil {
		t.Error("negative NumDocs accepted")
	}
}

func TestDocTFLookup(t *testing.T) {
	col := testCol(t)
	d := &col.Docs[0]
	for _, tf := range d.Terms {
		if got := d.TF(tf.Term); got != tf.TF {
			t.Fatalf("TF(%d) = %d, want %d", tf.Term, got, tf.TF)
		}
	}
	// A term id beyond the vocabulary is certainly absent.
	if d.TF(lexicon.TermID(1<<30)) != 0 {
		t.Error("absent term reported positive TF")
	}
}

func TestLexiconStatsConsistent(t *testing.T) {
	col := testCol(t)
	// Recompute doc freqs by brute force and compare.
	df := make(map[lexicon.TermID]int32)
	var tokens int64
	for i := range col.Docs {
		for _, tf := range col.Docs[i].Terms {
			df[tf.Term]++
			tokens += int64(tf.TF)
		}
	}
	if tokens != col.TotalTokens {
		t.Fatalf("TotalTokens %d != recomputed %d", col.TotalTokens, tokens)
	}
	for id, want := range df {
		if got := col.Lex.Stats(id).DocFreq; got != want {
			t.Fatalf("term %d: DocFreq %d, want %d", id, got, want)
		}
	}
}

// TestZipfShape verifies the generated collection is convincingly Zipfian
// — the statistical foundation of experiment F1 and the whole of Step 1.
func TestZipfShape(t *testing.T) {
	col := testCol(t)
	freqs := make([]int, 0, col.Lex.Size())
	for id := 0; id < col.Lex.Size(); id++ {
		if cf := col.Lex.Stats(lexicon.TermID(id)).CollFreq; cf > 0 {
			freqs = append(freqs, int(cf))
		}
	}
	s, r2, err := zipf.FitExponent(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 || s > 1.8 {
		t.Errorf("fitted Zipf exponent %v outside plausible range", s)
	}
	if r2 < 0.8 {
		t.Errorf("log-log fit R² = %v; collection is not convincingly Zipfian", r2)
	}
}

// TestTailVolume verifies the 5%/95% premise on actual generated data:
// the 95% rarest terms (by doc freq) must carry a small share of postings.
func TestTailVolume(t *testing.T) {
	col := testCol(t)
	byDF := col.Lex.TermsByDocFreq()
	head := len(byDF) / 20 // 5% most frequent terms
	var headPostings, total int64
	for i, id := range byDF {
		df := int64(col.Lex.Stats(id).DocFreq)
		total += df
		if i < head {
			headPostings += df
		}
	}
	tailFrac := 1 - float64(headPostings)/float64(total)
	if tailFrac > 0.12 {
		t.Errorf("95%% rarest terms carry %.1f%% of postings; expected a small tail (Zipf premise)", 100*tailFrac)
	}
}

func TestRankOrderingMatchesTermIDs(t *testing.T) {
	// Terms are interned in rank order, so low ids should on average be
	// more frequent. Check the extremes.
	col := testCol(t)
	var headCF, tailCF int64
	for id := 0; id < 10; id++ {
		headCF += col.Lex.Stats(lexicon.TermID(id)).CollFreq
	}
	for id := col.Lex.Size() - 10; id < col.Lex.Size(); id++ {
		tailCF += col.Lex.Stats(lexicon.TermID(id)).CollFreq
	}
	if headCF <= tailCF {
		t.Errorf("head terms (cf=%d) should dominate tail terms (cf=%d)", headCF, tailCF)
	}
}

func TestGenerateQueriesShape(t *testing.T) {
	col := testCol(t)
	qs, err := GenerateQueries(col, QueryConfig{NumQueries: 30, MinTerms: 2, MaxTerms: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 30 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if len(q.Terms) < 1 || len(q.Terms) > 5 {
			t.Fatalf("query %d has %d terms", q.ID, len(q.Terms))
		}
		if !sort.SliceIsSorted(q.Terms, func(a, b int) bool { return q.Terms[a] < q.Terms[b] }) {
			t.Fatalf("query %d terms unsorted", q.ID)
		}
		for i := 1; i < len(q.Terms); i++ {
			if q.Terms[i] == q.Terms[i-1] {
				t.Fatalf("query %d has duplicate terms", q.ID)
			}
		}
		// Every query term must actually occur in the collection.
		for _, term := range q.Terms {
			if col.Lex.Stats(term).DocFreq == 0 {
				t.Fatalf("query %d contains unseen term %d", q.ID, term)
			}
		}
	}
}

func TestGenerateQueriesValidation(t *testing.T) {
	col := testCol(t)
	if _, err := GenerateQueries(col, QueryConfig{MinTerms: 5, MaxTerms: 3}); err == nil {
		t.Error("MinTerms > MaxTerms accepted")
	}
	empty := &Collection{Lex: lexicon.New()}
	if _, err := GenerateQueries(empty, QueryConfig{}); err == nil {
		t.Error("empty collection accepted")
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	col := testCol(t)
	cfg := QueryConfig{NumQueries: 10, Seed: 9}
	a, _ := GenerateQueries(col, cfg)
	b, _ := GenerateQueries(col, cfg)
	for i := range a {
		if len(a[i].Terms) != len(b[i].Terms) {
			t.Fatal("query generation not deterministic")
		}
		for j := range a[i].Terms {
			if a[i].Terms[j] != b[i].Terms[j] {
				t.Fatal("query generation not deterministic")
			}
		}
	}
}

// TestMatchFraction verifies the paper's motivating observation: a large
// share (around half) of the documents contain at least one query term.
func TestMatchFraction(t *testing.T) {
	col := testCol(t)
	qs, err := GenerateQueries(col, QueryConfig{NumQueries: 20, MinTerms: 3, MaxTerms: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, q := range qs {
		sum += col.MatchFraction(q)
	}
	avg := sum / float64(len(qs))
	if avg < 0.2 || avg > 0.95 {
		t.Errorf("average match fraction %.2f; paper motivates with 'about half'", avg)
	}
}

func TestAvgDocLen(t *testing.T) {
	col := testCol(t)
	if math.Abs(col.AvgDocLen-float64(col.TotalTokens)/float64(len(col.Docs))) > 1e-9 {
		t.Error("AvgDocLen inconsistent with totals")
	}
	if col.AvgDocLen < 75 || col.AvgDocLen > 300 {
		t.Errorf("AvgDocLen = %v, want near configured mean 150", col.AvgDocLen)
	}
}
