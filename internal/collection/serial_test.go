package collection

import (
	"bytes"
	"testing"

	"repro/internal/lexicon"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	col := testCol(t)
	var buf bytes.Buffer
	if err := col.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Docs) != len(col.Docs) {
		t.Fatalf("docs %d, want %d", len(got.Docs), len(col.Docs))
	}
	if got.TotalTokens != col.TotalTokens || got.AvgDocLen != col.AvgDocLen {
		t.Error("aggregate statistics differ")
	}
	if got.Lex.Size() != col.Lex.Size() {
		t.Fatalf("lexicon size %d, want %d", got.Lex.Size(), col.Lex.Size())
	}
	for i := range col.Docs {
		if len(got.Docs[i].Terms) != len(col.Docs[i].Terms) {
			t.Fatalf("doc %d shape differs", i)
		}
		for j := range col.Docs[i].Terms {
			if got.Docs[i].Terms[j] != col.Docs[i].Terms[j] {
				t.Fatalf("doc %d term %d differs", i, j)
			}
		}
	}
	// Lexicon statistics rebuilt exactly.
	for id := 0; id < col.Lex.Size(); id += 97 {
		term := lexicon.TermID(id)
		if got.Lex.Stats(term) != col.Lex.Stats(term) {
			t.Fatalf("term %d stats differ", id)
		}
		if got.Lex.Name(term) != col.Lex.Name(term) {
			t.Fatalf("term %d name differs", id)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a collection"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
