package collection

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// diskForm is the serialized representation of a collection. The lexicon
// is stored as the ordered vocabulary; statistics are rebuilt on load by
// replaying the documents, which keeps the on-disk form free of internal
// invariants.
type diskForm struct {
	Version     int
	VocabNames  []string
	Docs        []Document
	TotalTokens int64
	AvgDocLen   float64
}

const diskVersion = 1

// Save writes the collection in a self-contained binary form.
func (col *Collection) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := make([]string, col.Lex.Size())
	for i := range names {
		names[i] = col.Lex.Name(lexTermID(i))
	}
	form := diskForm{
		Version:     diskVersion,
		VocabNames:  names,
		Docs:        col.Docs,
		TotalTokens: col.TotalTokens,
		AvgDocLen:   col.AvgDocLen,
	}
	if err := gob.NewEncoder(bw).Encode(&form); err != nil {
		return fmt.Errorf("collection: save: %w", err)
	}
	return bw.Flush()
}

// Load reads a collection written by Save, rebuilding the lexicon and its
// statistics.
func Load(r io.Reader) (*Collection, error) {
	var form diskForm
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&form); err != nil {
		return nil, fmt.Errorf("collection: load: %w", err)
	}
	if form.Version != diskVersion {
		return nil, fmt.Errorf("collection: unsupported version %d", form.Version)
	}
	col := &Collection{
		Docs:        form.Docs,
		TotalTokens: form.TotalTokens,
		AvgDocLen:   form.AvgDocLen,
	}
	col.Lex = newLexiconFromNames(form.VocabNames)
	for i := range col.Docs {
		for _, tf := range col.Docs[i].Terms {
			if int(tf.Term) >= len(form.VocabNames) {
				return nil, fmt.Errorf("collection: doc %d references term %d beyond vocabulary", i, tf.Term)
			}
			if err := col.Lex.Record(tf.Term, int(tf.TF)); err != nil {
				return nil, fmt.Errorf("collection: load doc %d: %w", i, err)
			}
		}
	}
	return col, nil
}
