// Package collection generates synthetic document collections with the
// statistical shape of the TREC FT collection the paper's experiments ran
// on, plus TREC-style query workloads over them.
//
// Substitution note (see DESIGN.md §2): we do not have the FT collection,
// but the paper's Step 1 claims depend only on two properties the
// generator reproduces and the test suite verifies:
//
//  1. term occurrences follow a Zipf law, so that the 95% rarest terms
//     account for only ~5% of the postings volume, and
//  2. queries mix frequent and rare terms, so that roughly half the
//     collection matches at least one query term (the paper's motivating
//     observation) while the discriminating power sits in the rare terms.
//
// Document lengths are lognormal around a configurable mean, matching the
// long-tailed length distribution of news articles.
package collection

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/lexicon"
	"repro/internal/xrand"
	"repro/internal/zipf"
)

// TermFreq is one distinct term of a document together with its
// within-document frequency.
type TermFreq struct {
	Term lexicon.TermID
	TF   int32
}

// Document is a bag of words: distinct terms sorted by term id. Len is the
// token count (sum of TFs), kept explicitly because ranking formulas
// normalize by it.
type Document struct {
	ID    uint32
	Terms []TermFreq
	Len   int32
}

// TF returns the document's term frequency for t (0 when absent) using
// binary search over the sorted term slice.
func (d *Document) TF(t lexicon.TermID) int32 {
	i := sort.Search(len(d.Terms), func(i int) bool { return d.Terms[i].Term >= t })
	if i < len(d.Terms) && d.Terms[i].Term == t {
		return d.Terms[i].TF
	}
	return 0
}

// Query is a ranked-retrieval request: a set of distinct query terms.
type Query struct {
	ID    int
	Terms []lexicon.TermID
}

// Collection is a generated corpus: documents, the shared lexicon, and
// aggregate statistics needed by ranking and cost estimation.
type Collection struct {
	Docs        []Document
	Lex         *lexicon.Lexicon
	TotalTokens int64
	AvgDocLen   float64
}

// Config controls generation. Zero values are replaced by the defaults
// documented on each field.
type Config struct {
	NumDocs    int     // number of documents; default 10000
	VocabSize  int     // distinct terms in the language model; default 50000
	ZipfS      float64 // Zipf exponent of term occurrences; default 1.6, calibrated so the 95% rarest terms carry ~5% of postings (the paper's measured split on TREC FT)
	ZipfQ      float64 // Zipf-Mandelbrot flattening; default 2 (softens the very head like real stopword counts)
	MeanDocLen int     // mean tokens per document; default 300
	Seed       uint64  // PRNG seed; default 1
}

func (c *Config) fillDefaults() {
	if c.NumDocs == 0 {
		c.NumDocs = 10000
	}
	if c.VocabSize == 0 {
		c.VocabSize = 50000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.6
	}
	if c.ZipfQ == 0 {
		c.ZipfQ = 2
	}
	if c.MeanDocLen == 0 {
		c.MeanDocLen = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Generate builds a collection according to cfg. Generation is
// deterministic in cfg (including the seed).
func Generate(cfg Config) (*Collection, error) {
	cfg.fillDefaults()
	if cfg.NumDocs < 0 || cfg.VocabSize < 0 || cfg.MeanDocLen < 0 {
		return nil, fmt.Errorf("collection: negative config value: %+v", cfg)
	}
	dist, err := zipf.New(cfg.VocabSize, cfg.ZipfS, cfg.ZipfQ)
	if err != nil {
		return nil, fmt.Errorf("collection: %w", err)
	}
	rng := xrand.New(cfg.Seed)
	lenRNG := rng.Fork()
	termRNG := rng.Fork()

	lex := lexicon.New()
	// Intern rank-named terms eagerly so term id == rank-1, giving tests
	// and debugging a transparent mapping from id to frequency rank.
	for r := 1; r <= cfg.VocabSize; r++ {
		lex.Intern("t" + strconv.Itoa(r))
	}

	col := &Collection{Lex: lex}
	col.Docs = make([]Document, cfg.NumDocs)
	// Lognormal length with sigma chosen for a realistic spread (about
	// half to double the mean covering the bulk of documents).
	const sigma = 0.45
	mu := math.Log(float64(cfg.MeanDocLen)) - sigma*sigma/2

	counts := make(map[lexicon.TermID]int32)
	for i := 0; i < cfg.NumDocs; i++ {
		n := int(math.Exp(mu + sigma*lenRNG.NormFloat64()))
		if n < 10 {
			n = 10
		}
		clear(counts)
		for t := 0; t < n; t++ {
			rank := dist.Sample(termRNG)
			counts[lexicon.TermID(rank-1)]++
		}
		doc := Document{ID: uint32(i), Len: int32(n)}
		doc.Terms = make([]TermFreq, 0, len(counts))
		for id, tf := range counts {
			doc.Terms = append(doc.Terms, TermFreq{Term: id, TF: tf})
		}
		sort.Slice(doc.Terms, func(a, b int) bool { return doc.Terms[a].Term < doc.Terms[b].Term })
		for _, tf := range doc.Terms {
			if err := lex.Record(tf.Term, int(tf.TF)); err != nil {
				return nil, err
			}
		}
		col.Docs[i] = doc
		col.TotalTokens += int64(n)
	}
	if cfg.NumDocs > 0 {
		col.AvgDocLen = float64(col.TotalTokens) / float64(cfg.NumDocs)
	}
	return col, nil
}

// QueryConfig controls workload generation.
type QueryConfig struct {
	NumQueries int // default 50
	MinTerms   int // default 2
	MaxTerms   int // default 6
	// MaxDocFreqFrac excludes terms occurring in more than this fraction
	// of documents from queries, modelling stopword removal; query systems
	// of the paper's era stripped such terms before retrieval. Default 0.25.
	MaxDocFreqFrac float64
	Seed           uint64 // default 2
}

func (c *QueryConfig) fillDefaults() {
	if c.NumQueries == 0 {
		c.NumQueries = 50
	}
	if c.MinTerms == 0 {
		c.MinTerms = 2
	}
	if c.MaxTerms == 0 {
		c.MaxTerms = 6
	}
	if c.MaxDocFreqFrac == 0 {
		c.MaxDocFreqFrac = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
}

// GenerateQueries builds a workload over col. Each query is formed by
// sampling a seed document and drawing distinct terms from it with
// probability proportional to within-document frequency. Sampling from
// real documents (rather than the vocabulary) reproduces the TREC query
// shape: a mix of common and rare terms that is guaranteed to have
// matching documents.
func GenerateQueries(col *Collection, cfg QueryConfig) ([]Query, error) {
	cfg.fillDefaults()
	if len(col.Docs) == 0 {
		return nil, fmt.Errorf("collection: cannot generate queries over an empty collection")
	}
	if cfg.MinTerms > cfg.MaxTerms {
		return nil, fmt.Errorf("collection: MinTerms %d > MaxTerms %d", cfg.MinTerms, cfg.MaxTerms)
	}
	rng := xrand.New(cfg.Seed)
	dfCap := int32(cfg.MaxDocFreqFrac * float64(len(col.Docs)))
	if dfCap < 1 {
		dfCap = 1
	}
	queries := make([]Query, 0, cfg.NumQueries)
	for qi := 0; qi < cfg.NumQueries; qi++ {
		doc := &col.Docs[rng.Intn(len(col.Docs))]
		want := cfg.MinTerms
		if cfg.MaxTerms > cfg.MinTerms {
			want += rng.Intn(cfg.MaxTerms - cfg.MinTerms + 1)
		}
		if want > len(doc.Terms) {
			want = len(doc.Terms)
		}
		picked := map[lexicon.TermID]bool{}
		terms := make([]lexicon.TermID, 0, want)
		// Sampling without replacement, bounded retries. Half the draws
		// are TF-weighted (common topical words), half uniform over the
		// document's distinct terms (rare discriminating words) — the mix
		// real TREC topics show. Stopword-grade terms (df above the cap)
		// are rejected the way a query parser would strip them.
		for attempts := 0; len(terms) < want && attempts < 40*want; attempts++ {
			var cand lexicon.TermID
			if rng.Intn(2) == 0 {
				cand = doc.Terms[rng.Intn(len(doc.Terms))].Term
			} else {
				target := rng.Intn(int(doc.Len)) + 1
				var acc int32
				for _, tf := range doc.Terms {
					acc += tf.TF
					if int(acc) >= target {
						cand = tf.Term
						break
					}
				}
			}
			if !picked[cand] && col.Lex.Stats(cand).DocFreq <= dfCap {
				picked[cand] = true
				terms = append(terms, cand)
			}
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
		queries = append(queries, Query{ID: qi, Terms: terms})
	}
	return queries, nil
}

// MatchFraction returns the fraction of documents containing at least one
// term of q. The paper motivates top-N optimization by noting this is
// typically around one half for IR queries; the harness verifies the
// synthetic workload reproduces that.
func (col *Collection) MatchFraction(q Query) float64 {
	if len(col.Docs) == 0 {
		return 0
	}
	matched := 0
	for i := range col.Docs {
		d := &col.Docs[i]
		for _, t := range q.Terms {
			if d.TF(t) > 0 {
				matched++
				break
			}
		}
	}
	return float64(matched) / float64(len(col.Docs))
}
