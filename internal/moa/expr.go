package moa

import (
	"fmt"
	"strings"
)

// Type describes an algebra value statically: a kind plus, for
// containers, the element type, and for tuples, the field types. The zero
// Type is invalid.
type Type struct {
	Kind   Kind
	Elem   *Type  // element type for LIST/BAG/SET; nil otherwise
	Fields []Type // field types for TUPLE; nil otherwise
}

// String renders the type Moa-style, e.g. LIST<TUPLE<INT, FLT>>.
func (t Type) String() string {
	if t.Kind == KindTuple {
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return fmt.Sprintf("TUPLE<%s>", strings.Join(parts, ", "))
	}
	if t.Elem == nil {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s<%s>", t.Kind, t.Elem)
}

// Equal reports structural type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	if len(t.Fields) != len(o.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	if (t.Elem == nil) != (o.Elem == nil) {
		return false
	}
	if t.Elem == nil {
		return true
	}
	return t.Elem.Equal(*o.Elem)
}

// OpLit is the pseudo-operator of literal leaves.
const OpLit = "lit"

// Expr is a node of a logical (or, after intra-object optimization,
// physical) algebra expression tree. Expressions are immutable by
// convention: rewrites build new nodes rather than mutating.
type Expr struct {
	Op       string  // qualified operator name, e.g. "list.select"; OpLit for leaves
	Lit      Value   // the literal value when Op == OpLit
	Params   []Value // operator parameters (selection bounds, top-N count, ...)
	Children []*Expr
}

// Literal wraps a value as a leaf expression.
func Literal(v Value) *Expr { return &Expr{Op: OpLit, Lit: v} }

// NewExpr builds an operator node.
func NewExpr(op string, params []Value, children ...*Expr) *Expr {
	return &Expr{Op: op, Params: params, Children: children}
}

// Clone returns a deep copy of the expression tree. Values are shared
// (they are immutable by convention).
func (e *Expr) Clone() *Expr {
	c := &Expr{Op: e.Op, Lit: e.Lit}
	c.Params = append([]Value(nil), e.Params...)
	c.Children = make([]*Expr, len(e.Children))
	for i, ch := range e.Children {
		c.Children[i] = ch.Clone()
	}
	return c
}

// DeepEqual reports structural equality of two expression trees.
func DeepEqual(a, b *Expr) bool {
	if a.Op != b.Op || len(a.Params) != len(b.Params) || len(a.Children) != len(b.Children) {
		return false
	}
	if a.Op == OpLit && !Equal(a.Lit, b.Lit) {
		return false
	}
	for i := range a.Params {
		if !Equal(a.Params[i], b.Params[i]) {
			return false
		}
	}
	for i := range a.Children {
		if !DeepEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the tree in the paper's notation:
// select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4).
func (e *Expr) String() string {
	if e.Op == OpLit {
		return e.Lit.String()
	}
	// Strip the extension qualifier for readability; the qualified name is
	// available via Op itself.
	name := e.Op
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	parts := make([]string, 0, len(e.Children)+len(e.Params))
	for _, c := range e.Children {
		parts = append(parts, c.String())
	}
	for _, p := range e.Params {
		parts = append(parts, p.String())
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}

// Size returns the number of nodes in the tree.
func (e *Expr) Size() int {
	n := 1
	for _, c := range e.Children {
		n += c.Size()
	}
	return n
}

// Convenience constructors mirroring the paper's surface syntax. Each
// builds the *logical* operator of the owning extension; physical variants
// are introduced only by the optimizer.

// SelectL builds list.select(child, lo, hi).
func SelectL(child *Expr, lo, hi Value) *Expr {
	return NewExpr("list.select", []Value{lo, hi}, child)
}

// SelectB builds bag.select(child, lo, hi).
func SelectB(child *Expr, lo, hi Value) *Expr {
	return NewExpr("bag.select", []Value{lo, hi}, child)
}

// SelectS builds set.select(child, lo, hi).
func SelectS(child *Expr, lo, hi Value) *Expr {
	return NewExpr("set.select", []Value{lo, hi}, child)
}

// ProjectToBag builds list.projecttobag(child).
func ProjectToBag(child *Expr) *Expr {
	return NewExpr("list.projecttobag", nil, child)
}

// SortL builds list.sort(child), sorting ascending by value.
func SortL(child *Expr) *Expr {
	return NewExpr("list.sort", nil, child)
}

// TopNL builds list.topn(child, n): the n largest elements, descending.
func TopNL(child *Expr, n int64) *Expr {
	return NewExpr("list.topn", []Value{Int(n)}, child)
}

// TopNB builds bag.topn(child, n): the n largest elements as a LIST.
func TopNB(child *Expr, n int64) *Expr {
	return NewExpr("bag.topn", []Value{Int(n)}, child)
}

// ToListB builds bag.tolist(child).
func ToListB(child *Expr) *Expr {
	return NewExpr("bag.tolist", nil, child)
}

// ToSetB builds bag.toset(child).
func ToSetB(child *Expr) *Expr {
	return NewExpr("bag.toset", nil, child)
}

// ToListS builds set.tolist(child), producing a value-sorted LIST.
func ToListS(child *Expr) *Expr {
	return NewExpr("set.tolist", nil, child)
}

// CountL, CountB and CountS build the per-extension cardinality operators.
func CountL(child *Expr) *Expr { return NewExpr("list.count", nil, child) }

// CountB builds bag.count(child).
func CountB(child *Expr) *Expr { return NewExpr("bag.count", nil, child) }

// CountS builds set.count(child).
func CountS(child *Expr) *Expr { return NewExpr("set.count", nil, child) }

// ConcatL builds list.concat(a, b).
func ConcatL(a, b *Expr) *Expr { return NewExpr("list.concat", nil, a, b) }

// UnionB builds bag.union(a, b) (additive multiset union).
func UnionB(a, b *Expr) *Expr { return NewExpr("bag.union", nil, a, b) }
