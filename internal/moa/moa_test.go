package moa

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func eval(t *testing.T, e *Expr) Value {
	t.Helper()
	ev := NewEvaluator(NewRegistry())
	v, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestExample1Semantics reproduces the paper's Example 1 verbatim:
// select([1,2,3,4,4,5], 2, 4) == [2,3,4,4] and
// projecttobag([1,2,3,4,4,5]) == {1,2,3,4,4,5}.
func TestExample1Semantics(t *testing.T) {
	l := NewIntList(1, 2, 3, 4, 4, 5)
	sel := eval(t, SelectL(Literal(l), Int(2), Int(4)))
	if !Equal(sel, NewIntList(2, 3, 4, 4)) {
		t.Errorf("select = %s, want [2, 3, 4, 4]", sel)
	}
	bag := eval(t, ProjectToBag(Literal(l)))
	if !Equal(bag, NewIntBag(1, 2, 3, 4, 4, 5)) {
		t.Errorf("projecttobag = %s", bag)
	}
}

// TestExample1Equivalence verifies the rewrite the paper presents: the two
// nestings produce exactly the same answer.
func TestExample1Equivalence(t *testing.T) {
	l := Literal(NewIntList(1, 2, 3, 4, 4, 5))
	orig := SelectB(ProjectToBag(l), Int(2), Int(4))
	rewritten := ProjectToBag(SelectL(l, Int(2), Int(4)))
	a := eval(t, orig)
	b := eval(t, rewritten)
	if !Equal(a, b) {
		t.Errorf("original %s != rewritten %s", a, b)
	}
	if !Equal(a, NewIntBag(2, 3, 4, 4)) {
		t.Errorf("result = %s, want {2, 3, 4, 4}", a)
	}
}

func TestSelectPreservesListOrder(t *testing.T) {
	l := NewIntList(5, 1, 4, 2, 3)
	got := eval(t, SelectL(Literal(l), Int(2), Int(4)))
	if !Equal(got, NewIntList(4, 2, 3)) {
		t.Errorf("select on unsorted list = %s, want [4, 2, 3] (input order)", got)
	}
}

func TestBinsearchSelectEquivalence(t *testing.T) {
	rng := xrand.New(41)
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(30))
		}
		l := NewIntList(xs...)
		sorted := eval(t, SortL(Literal(l))).(*List)
		lo := Int(int64(rng.Intn(32)) - 1)
		hi := Int(int64(rng.Intn(32)) - 1)
		logical := eval(t, SelectL(Literal(sorted), lo, hi))
		physical := eval(t, NewExpr("list.select.binsearch", []Value{lo, hi}, Literal(sorted)))
		if !Equal(logical, physical) {
			t.Fatalf("trial %d: scan %s != binsearch %s (bounds %s..%s)", trial, logical, physical, lo, hi)
		}
	}
}

func TestBinsearchRejectsUnsorted(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	e := NewExpr("list.select.binsearch", []Value{Int(1), Int(2)}, Literal(NewIntList(3, 1, 2)))
	if _, err := ev.Eval(e); err == nil {
		t.Fatal("binsearch accepted unsorted input with CheckPhysical on")
	}
}

func TestBinsearchCheaper(t *testing.T) {
	xs := make([]int64, 10000)
	for i := range xs {
		xs[i] = int64(i)
	}
	l := Literal(NewIntList(xs...))
	scan := NewEvaluator(NewRegistry())
	if _, err := scan.Eval(SelectL(l, Int(100), Int(120))); err != nil {
		t.Fatal(err)
	}
	bin := NewEvaluator(NewRegistry())
	if _, err := bin.Eval(NewExpr("list.select.binsearch", []Value{Int(100), Int(120)}, l)); err != nil {
		t.Fatal(err)
	}
	if bin.Counters.Comparisons*50 > scan.Counters.Comparisons {
		t.Errorf("binsearch %d comparisons vs scan %d: expected orders of magnitude fewer",
			bin.Counters.Comparisons, scan.Counters.Comparisons)
	}
}

func TestSortAndTopN(t *testing.T) {
	l := NewIntList(3, 1, 4, 1, 5, 9, 2, 6)
	sorted := eval(t, SortL(Literal(l)))
	if !Equal(sorted, NewIntList(1, 1, 2, 3, 4, 5, 6, 9)) {
		t.Errorf("sort = %s", sorted)
	}
	top := eval(t, TopNL(Literal(l), 3))
	if !Equal(top, NewIntList(9, 6, 5)) {
		t.Errorf("topn = %s, want [9, 6, 5]", top)
	}
	if got := eval(t, TopNL(Literal(l), 0)); !Equal(got, NewIntList()) {
		t.Errorf("topn 0 = %s", got)
	}
	if got := eval(t, TopNL(Literal(l), 100)); len(got.(*List).Elems) != 8 {
		t.Errorf("topn beyond length returned %s", got)
	}
}

func TestTopNSortedVariant(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(40)
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(20))
		}
		sorted := eval(t, SortL(Literal(NewIntList(xs...)))).(*List)
		k := int64(rng.Intn(10))
		logical := eval(t, TopNL(Literal(sorted), k))
		physical := eval(t, NewExpr("list.topn.sorted", []Value{Int(k)}, Literal(sorted)))
		if !Equal(logical, physical) {
			t.Fatalf("trial %d: topn %s != topn.sorted %s", trial, logical, physical)
		}
	}
}

func TestBagTopN(t *testing.T) {
	b := NewIntBag(3, 7, 1, 7, 2)
	got := eval(t, TopNB(Literal(b), 2))
	if got.Kind() != KindList {
		t.Fatalf("bag.topn must produce LIST, got %s", got.Kind())
	}
	if !Equal(got, NewIntList(7, 7)) {
		t.Errorf("bag.topn = %s, want [7, 7]", got)
	}
}

func TestBagToSet(t *testing.T) {
	got := eval(t, ToSetB(Literal(NewIntBag(2, 1, 2, 3, 1))))
	s := got.(*Set)
	if len(s.Elems) != 3 {
		t.Fatalf("toset = %s", got)
	}
	want := &Set{Elems: []Value{Int(1), Int(2), Int(3)}}
	if !Equal(got, want) {
		t.Errorf("toset = %s", got)
	}
}

func TestSetToListSorted(t *testing.T) {
	set := ToSetB(Literal(NewIntBag(5, 2, 9, 2)))
	got := eval(t, ToListS(set)).(*List)
	sorted, err := IsSortedAsc(got)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Errorf("set.tolist output not sorted: %s", got)
	}
}

func TestCounts(t *testing.T) {
	if got := eval(t, CountL(Literal(NewIntList(1, 2, 3)))); got != Int(3) {
		t.Errorf("list.count = %s", got)
	}
	if got := eval(t, CountB(Literal(NewIntBag(1, 1)))); got != Int(2) {
		t.Errorf("bag.count = %s", got)
	}
	if got := eval(t, CountS(ToSetB(Literal(NewIntBag(1, 1))))); got != Int(1) {
		t.Errorf("set.count = %s", got)
	}
}

func TestConcatAndUnion(t *testing.T) {
	got := eval(t, ConcatL(Literal(NewIntList(1, 2)), Literal(NewIntList(3))))
	if !Equal(got, NewIntList(1, 2, 3)) {
		t.Errorf("concat = %s", got)
	}
	u := eval(t, UnionB(Literal(NewIntBag(1, 2)), Literal(NewIntBag(2))))
	if !Equal(u, NewIntBag(1, 2, 2)) {
		t.Errorf("union = %s", u)
	}
}

func TestTypeChecking(t *testing.T) {
	reg := NewRegistry()
	l := Literal(NewIntList(1, 2))
	b := Literal(NewIntBag(1))
	cases := []struct {
		name string
		e    *Expr
		want string // expected type string; "" means expect error
	}{
		{"select list", SelectL(l, Int(1), Int(2)), "LIST<INT>"},
		{"projecttobag", ProjectToBag(l), "BAG<INT>"},
		{"bag select", SelectB(b, Int(1), Int(2)), "BAG<INT>"},
		{"toset", ToSetB(b), "SET<INT>"},
		{"count", CountL(l), "INT"},
		{"topn bag to list", TopNB(b, 3), "LIST<INT>"},
		{"select on bag with list op", SelectL(b, Int(1), Int(2)), ""},
		{"projecttobag on bag", ProjectToBag(b), ""},
		{"bound kind mismatch", SelectL(l, Float(1), Int(2)), ""},
		{"count wrong kind", CountB(l), ""},
	}
	for _, c := range cases {
		typ, err := reg.TypeOf(c.e)
		if c.want == "" {
			if err == nil {
				t.Errorf("%s: type checked as %s, want error", c.name, typ)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if typ.String() != c.want {
			t.Errorf("%s: type %s, want %s", c.name, typ, c.want)
		}
	}
}

func TestHeterogeneousLiteralRejected(t *testing.T) {
	reg := NewRegistry()
	bad := &List{Elems: []Value{Int(1), Str("x")}}
	if _, err := reg.TypeOf(Literal(bad)); err == nil {
		t.Error("heterogeneous list type checked")
	}
}

func TestStringRendering(t *testing.T) {
	l := Literal(NewIntList(1, 2, 3, 4, 4, 5))
	e := SelectB(ProjectToBag(l), Int(2), Int(4))
	got := e.String()
	want := "select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCloneAndDeepEqual(t *testing.T) {
	e := SelectB(ProjectToBag(Literal(NewIntList(1, 2))), Int(1), Int(2))
	c := e.Clone()
	if !DeepEqual(e, c) {
		t.Fatal("clone not equal")
	}
	c.Children[0].Op = "list.sort"
	if DeepEqual(e, c) {
		t.Fatal("mutated clone still equal")
	}
	if e.Size() != 3 {
		t.Errorf("Size = %d, want 3", e.Size())
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	err := r.Register(&OpDef{Name: "list.select", Extension: "list"})
	if err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register(&OpDef{Name: OpLit}); err == nil {
		t.Error("reserved name accepted")
	}
	exts := r.Extensions()
	if strings.Join(exts, ",") != "bag,list,set" {
		t.Errorf("extensions = %v", exts)
	}
}

func TestValueEquality(t *testing.T) {
	if !Equal(NewIntBag(1, 2, 2), NewIntBag(2, 1, 2)) {
		t.Error("bags must compare as multisets")
	}
	if Equal(NewIntBag(1, 2), NewIntBag(1, 2, 2)) {
		t.Error("different multiplicities compared equal")
	}
	if Equal(NewIntList(1, 2), NewIntList(2, 1)) {
		t.Error("lists must compare in order")
	}
	if Equal(NewIntList(1), NewIntBag(1)) {
		t.Error("list equals bag")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(Int(1), Str("a")); err == nil {
		t.Error("cross-kind compare accepted")
	}
	if _, err := Compare(NewIntList(1), NewIntList(1)); err == nil {
		t.Error("container compare accepted")
	}
	if c, err := Compare(Str("a"), Str("b")); err != nil || c != -1 {
		t.Errorf("string compare = %d, %v", c, err)
	}
	if c, err := Compare(Float(2), Float(1)); err != nil || c != 1 {
		t.Errorf("float compare = %d, %v", c, err)
	}
}

// TestSelectPushdownProperty is the semantic core of the inter-object
// rule: for any int list and bounds, select(projecttobag(l)) equals
// projecttobag(select(l)).
func TestSelectPushdownProperty(t *testing.T) {
	rng := xrand.New(71)
	if err := quick.Check(func(raw []int8, loRaw, hiRaw int8) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		l := Literal(NewIntList(xs...))
		lo, hi := Int(int64(loRaw)), Int(int64(hiRaw))
		ev := NewEvaluator(NewRegistry())
		a, err := ev.Eval(SelectB(ProjectToBag(l), lo, hi))
		if err != nil {
			return false
		}
		b, err := ev.Eval(ProjectToBag(SelectL(l, lo, hi)))
		if err != nil {
			return false
		}
		_ = rng
		return Equal(a, b)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalErrors(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	if _, err := ev.Eval(NewExpr("nosuch.op", nil)); err == nil {
		t.Error("unknown op evaluated")
	}
	// Arity mismatch.
	if _, err := ev.Eval(NewExpr("list.sort", nil)); err == nil {
		t.Error("missing child accepted")
	}
	// Dynamic kind mismatch.
	if _, err := ev.Eval(NewExpr("list.sort", nil, Literal(NewIntBag(1)))); err == nil {
		t.Error("bag passed to list.sort accepted")
	}
	// Negative topn parameter.
	if _, err := ev.Eval(TopNL(Literal(NewIntList(1)), -1)); err == nil {
		t.Error("negative n accepted")
	}
}

func TestCountersAccumulate(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	l := Literal(NewIntList(1, 2, 3, 4, 5))
	if _, err := ev.Eval(SelectL(l, Int(2), Int(4))); err != nil {
		t.Fatal(err)
	}
	if ev.Counters.ElementsVisited != 5 {
		t.Errorf("visited %d, want 5", ev.Counters.ElementsVisited)
	}
	if ev.Counters.Comparisons == 0 {
		t.Error("no comparisons counted")
	}
	ev.Counters.Reset()
	if ev.Counters.ElementsVisited != 0 {
		t.Error("reset failed")
	}
}
