package moa

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is the TUPLE structure: a fixed-arity record of atomic fields.
// Ranked document lists — the "core business of content based retrieval
// DBMSs" in the paper's words — are LIST<TUPLE> values: each tuple a
// (document id, score, ...) record, the list ordered by relevance.
type Tuple struct {
	Fields []Value
}

// Kind implements Value.
func (*Tuple) Kind() Kind { return KindTuple }

// String implements Value.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// NewTuple builds a tuple of the given atomic fields.
func NewTuple(fields ...Value) *Tuple { return &Tuple{Fields: fields} }

// tupleEqual compares tuples field-wise.
func tupleEqual(a, b *Tuple) bool {
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i := range a.Fields {
		if !Equal(a.Fields[i], b.Fields[i]) {
			return false
		}
	}
	return true
}

// tupleType derives a tuple's type, requiring atomic fields.
func tupleType(t *Tuple) (Type, error) {
	tt := Type{Kind: KindTuple, Fields: make([]Type, len(t.Fields))}
	for i, f := range t.Fields {
		ft, err := typeOfValue(f)
		if err != nil {
			return Type{}, err
		}
		if !ft.Kind.Atomic() {
			return Type{}, fmt.Errorf("moa: tuple field %d is %s; fields must be atomic", i, ft.Kind)
		}
		tt.Fields[i] = ft
	}
	return tt, nil
}

// Tuple-aware operator constructors.

// TopNByL builds list.topnby(child, field, n): the n tuples with the
// largest value in the given field, descending — the ranked-retrieval
// top-N as an algebra operator over LIST<TUPLE>.
func TopNByL(child *Expr, field, n int64) *Expr {
	return NewExpr("list.topnby", []Value{Int(field), Int(n)}, child)
}

// ProjectFieldL builds list.projectfield(child, field): LIST<TUPLE> →
// LIST of the field's atomic values, order preserved.
func ProjectFieldL(child *Expr, field int64) *Expr {
	return NewExpr("list.projectfield", []Value{Int(field)}, child)
}

// SelectByL builds list.selectby(child, field, lo, hi): range selection on
// one tuple field, order preserved.
func SelectByL(child *Expr, field int64, lo, hi Value) *Expr {
	return NewExpr("list.selectby", []Value{Int(field), lo, hi}, child)
}

// registerTupleOps adds the tuple-aware LIST operators. Called from
// NewRegistry alongside the structure extensions.
func registerTupleOps(r *Registry) {
	mustRegister := r.registerOrRecord
	tupleListInput := func(op string, children []Type) (Type, int, error) {
		in := children[0]
		if in.Kind != KindList || in.Elem == nil || in.Elem.Kind != KindTuple {
			return Type{}, 0, fmt.Errorf("moa: %s requires LIST<TUPLE>, got %s", op, in)
		}
		return in, len(in.Elem.Fields), nil
	}
	fieldParam := func(op string, p Value, arity int) (int, error) {
		f, ok := p.(Int)
		if !ok || f < 0 || int(f) >= arity {
			return 0, fmt.Errorf("moa: %s field %s out of range for arity %d", op, p, arity)
		}
		return int(f), nil
	}

	mustRegister(&OpDef{
		Name: "list.topnby", Extension: "list", NumChildren: 1, NumParams: 2,
		ResultType: func(children []Type, params []Value) (Type, error) {
			in, arity, err := tupleListInput("list.topnby", children)
			if err != nil {
				return Type{}, err
			}
			if _, err := fieldParam("list.topnby", params[0], arity); err != nil {
				return Type{}, err
			}
			if _, ok := params[1].(Int); !ok {
				return Type{}, fmt.Errorf("moa: list.topnby count must be INT")
			}
			return in, nil
		},
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.topnby", args[0])
			if err != nil {
				return nil, err
			}
			field, err := asIntParam("list.topnby", params[0])
			if err != nil {
				return nil, err
			}
			n, err := asIntParam("list.topnby", params[1])
			if err != nil {
				return nil, err
			}
			keys, err := tupleKeys(l, field)
			if err != nil {
				return nil, err
			}
			// Order indices by descending key (stable on input order for
			// equal keys), then take the first n.
			idx := make([]int, len(l.Elems))
			for i := range idx {
				idx[i] = i
			}
			var cmpErr error
			sort.SliceStable(idx, func(a, b int) bool {
				ev.Counters.Comparisons++
				c, err := Compare(keys[idx[a]], keys[idx[b]])
				if err != nil && cmpErr == nil {
					cmpErr = err
				}
				return c > 0
			})
			if cmpErr != nil {
				return nil, cmpErr
			}
			ev.visit(len(l.Elems))
			if n > len(idx) {
				n = len(idx)
			}
			out := make([]Value, n)
			for i := 0; i < n; i++ {
				out[i] = l.Elems[idx[i]]
			}
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.projectfield", Extension: "list", NumChildren: 1, NumParams: 1,
		ResultType: func(children []Type, params []Value) (Type, error) {
			in, arity, err := tupleListInput("list.projectfield", children)
			if err != nil {
				return Type{}, err
			}
			f, err := fieldParam("list.projectfield", params[0], arity)
			if err != nil {
				return Type{}, err
			}
			elem := in.Elem.Fields[f]
			return Type{Kind: KindList, Elem: &elem}, nil
		},
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.projectfield", args[0])
			if err != nil {
				return nil, err
			}
			field, err := asIntParam("list.projectfield", params[0])
			if err != nil {
				return nil, err
			}
			out := make([]Value, len(l.Elems))
			for i, e := range l.Elems {
				ev.visit(1)
				tp, ok := e.(*Tuple)
				if !ok || field >= len(tp.Fields) {
					return nil, fmt.Errorf("moa: list.projectfield: element %d is not a tuple with field %d", i, field)
				}
				out[i] = tp.Fields[field]
			}
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.selectby", Extension: "list", NumChildren: 1, NumParams: 3,
		ResultType: func(children []Type, params []Value) (Type, error) {
			in, arity, err := tupleListInput("list.selectby", children)
			if err != nil {
				return Type{}, err
			}
			f, err := fieldParam("list.selectby", params[0], arity)
			if err != nil {
				return Type{}, err
			}
			ft := in.Elem.Fields[f]
			for _, p := range params[1:] {
				if p.Kind() != ft.Kind {
					return Type{}, fmt.Errorf("moa: list.selectby bound %s does not match field type %s", p.Kind(), ft.Kind)
				}
			}
			return in, nil
		},
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.selectby", args[0])
			if err != nil {
				return nil, err
			}
			field, err := asIntParam("list.selectby", params[0])
			if err != nil {
				return nil, err
			}
			lo, hi := params[1], params[2]
			out := make([]Value, 0, len(l.Elems)/4)
			for i, e := range l.Elems {
				ev.visit(1)
				tp, ok := e.(*Tuple)
				if !ok || field >= len(tp.Fields) {
					return nil, fmt.Errorf("moa: list.selectby: element %d is not a tuple with field %d", i, field)
				}
				key := tp.Fields[field]
				cl, err := ev.compare(key, lo)
				if err != nil {
					return nil, err
				}
				if cl < 0 {
					continue
				}
				ch, err := ev.compare(key, hi)
				if err != nil {
					return nil, err
				}
				if ch <= 0 {
					out = append(out, e)
				}
			}
			return &List{Elems: out}, nil
		},
	})
}

// tupleKeys extracts one field from every tuple of a LIST<TUPLE>.
func tupleKeys(l *List, field int) ([]Value, error) {
	keys := make([]Value, len(l.Elems))
	for i, e := range l.Elems {
		tp, ok := e.(*Tuple)
		if !ok || field >= len(tp.Fields) {
			return nil, fmt.Errorf("moa: element %d is not a tuple with field %d", i, field)
		}
		keys[i] = tp.Fields[field]
	}
	return keys, nil
}
