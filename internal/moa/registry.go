package moa

import (
	"fmt"
	"sort"
)

// OpDef describes one operator contributed by a structure extension. The
// registry of OpDefs is what makes the algebra extensible in Moa's sense:
// the optimizer layers consult it rather than hard-coding operators, and
// new extensions register without touching the evaluator.
type OpDef struct {
	// Name is the qualified operator name, "extension.op".
	Name string
	// Extension is the owning structure extension ("list", "bag", "set").
	Extension string
	// NumChildren and NumParams fix the arity.
	NumChildren int
	NumParams   int
	// Physical marks variants that only the intra-object optimizer may
	// introduce (they carry preconditions the type system cannot express,
	// e.g. "input list is sorted").
	Physical bool
	// ResultType computes the output type from child types. It also
	// performs input type checking.
	ResultType func(children []Type, params []Value) (Type, error)
	// Eval computes the operator over materialized child values. The
	// evaluator passes itself for cost accounting.
	Eval func(ev *Evaluator, args []Value, params []Value) (Value, error)
}

// Registry maps qualified operator names to definitions.
type Registry struct {
	ops map[string]*OpDef
	// initErr records the first built-in registration failure. NewRegistry
	// keeps its error-free signature for its many call sites; instead of a
	// construction-time panic the defect is held here, Err surfaces it, and
	// Eval/TypeOf refuse to run against a half-built registry.
	initErr error
}

// Err reports whether the registry's built-in extensions registered
// cleanly. A non-nil value means the registry is unusable and every
// evaluation or type-check against it will return this error.
func (r *Registry) Err() error { return r.initErr }

// registerOrRecord adds def like Register but folds a failure into the
// sticky init error instead of panicking — the form the built-in
// extension loaders use during construction.
func (r *Registry) registerOrRecord(def *OpDef) {
	if err := r.Register(def); err != nil && r.initErr == nil {
		r.initErr = err
	}
}

// NewRegistry returns a registry pre-loaded with the built-in LIST, BAG
// and SET extensions.
func NewRegistry() *Registry {
	r := &Registry{ops: make(map[string]*OpDef)}
	registerListExt(r)
	registerBagExt(r)
	registerSetExt(r)
	registerTupleOps(r)
	return r
}

// Register adds an operator definition. It returns an error on duplicate
// names so extensions cannot silently shadow each other.
func (r *Registry) Register(def *OpDef) error {
	if def.Name == "" || def.Name == OpLit {
		return fmt.Errorf("moa: invalid operator name %q", def.Name)
	}
	if _, dup := r.ops[def.Name]; dup {
		return fmt.Errorf("moa: operator %q already registered", def.Name)
	}
	r.ops[def.Name] = def
	return nil
}

// Lookup returns the definition of a qualified operator name.
func (r *Registry) Lookup(name string) (*OpDef, bool) {
	d, ok := r.ops[name]
	return d, ok
}

// Extensions returns the sorted list of extension names present.
func (r *Registry) Extensions() []string {
	seen := map[string]bool{}
	for _, d := range r.ops {
		seen[d.Extension] = true
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// TypeOf type-checks an expression bottom-up and returns its result type.
func (r *Registry) TypeOf(e *Expr) (Type, error) {
	if err := r.initErr; err != nil {
		return Type{}, err
	}
	if e.Op == OpLit {
		return typeOfValue(e.Lit)
	}
	def, ok := r.Lookup(e.Op)
	if !ok {
		return Type{}, fmt.Errorf("moa: unknown operator %q", e.Op)
	}
	if len(e.Children) != def.NumChildren {
		return Type{}, fmt.Errorf("moa: %s expects %d children, got %d", e.Op, def.NumChildren, len(e.Children))
	}
	if len(e.Params) != def.NumParams {
		return Type{}, fmt.Errorf("moa: %s expects %d params, got %d", e.Op, def.NumParams, len(e.Params))
	}
	kids := make([]Type, len(e.Children))
	for i, c := range e.Children {
		t, err := r.TypeOf(c)
		if err != nil {
			return Type{}, err
		}
		kids[i] = t
	}
	return def.ResultType(kids, e.Params)
}

// typeOfValue derives the static type of a runtime value. Containers must
// be element-homogeneous.
func typeOfValue(v Value) (Type, error) {
	switch x := v.(type) {
	case Int, Float, Str:
		return Type{Kind: v.Kind()}, nil
	case *List:
		return containerType(KindList, x.Elems)
	case *Bag:
		return containerType(KindBag, x.Elems)
	case *Set:
		return containerType(KindSet, x.Elems)
	case *Tuple:
		return tupleType(x)
	default:
		return Type{}, fmt.Errorf("moa: value of unknown kind %T", v)
	}
}

func containerType(k Kind, elems []Value) (Type, error) {
	if len(elems) == 0 {
		// Empty containers default to INT elements; the algebra has no
		// polymorphic empty literal.
		return Type{Kind: k, Elem: &Type{Kind: KindInt}}, nil
	}
	et, err := typeOfValue(elems[0])
	if err != nil {
		return Type{}, err
	}
	for _, e := range elems[1:] {
		t, err := typeOfValue(e)
		if err != nil {
			return Type{}, err
		}
		if !t.Equal(et) {
			return Type{}, fmt.Errorf("moa: heterogeneous %s elements: %s vs %s", k, et, t)
		}
	}
	return Type{Kind: k, Elem: &et}, nil
}

// Helper result-type functions shared by the extension registrations.

// wantContainer returns a ResultType function for a unary operator
// requiring input kind in with atomic elements and producing kind out with
// the same element type.
func wantContainer(opName string, in, out Kind) func([]Type, []Value) (Type, error) {
	return func(children []Type, _ []Value) (Type, error) {
		if children[0].Kind != in {
			return Type{}, fmt.Errorf("moa: %s requires %s input, got %s", opName, in, children[0].Kind)
		}
		return Type{Kind: out, Elem: children[0].Elem}, nil
	}
}

// wantRangeSelect type-checks a range selection: container kind k with
// atomic elements, two parameter bounds of the element type.
func wantRangeSelect(opName string, k Kind) func([]Type, []Value) (Type, error) {
	return func(children []Type, params []Value) (Type, error) {
		in := children[0]
		if in.Kind != k {
			return Type{}, fmt.Errorf("moa: %s requires %s input, got %s", opName, k, in.Kind)
		}
		if in.Elem == nil || !in.Elem.Kind.Atomic() {
			return Type{}, fmt.Errorf("moa: %s requires atomic elements, got %s", opName, in)
		}
		for _, p := range params {
			if p.Kind() != in.Elem.Kind {
				return Type{}, fmt.Errorf("moa: %s bound %s does not match element type %s", opName, p.Kind(), in.Elem.Kind)
			}
		}
		return in, nil
	}
}
