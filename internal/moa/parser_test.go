package moa

import (
	"testing"
)

func parse(t *testing.T, s string) *Expr {
	t.Helper()
	e, err := Parse(s, NewRegistry())
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return e
}

func TestParseExample1(t *testing.T) {
	e := parse(t, "select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)")
	if e.Op != "bag.select" {
		t.Fatalf("root op = %s", e.Op)
	}
	if e.Children[0].Op != "list.projecttobag" {
		t.Fatalf("child op = %s", e.Children[0].Op)
	}
	ev := NewEvaluator(NewRegistry())
	v, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, NewIntBag(2, 3, 4, 4)) {
		t.Errorf("result = %s", v)
	}
}

func TestParseRoundTripsThroughString(t *testing.T) {
	// The String rendering of a parsed tree must re-parse to an equal tree.
	inputs := []string{
		"select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)",
		"topn(sort([5, 3, 9]), 2)",
		"count(toset({1, 1, 2}))",
		"tolist(union({1}, {2, 2}))",
		"concat([1], [2, 3])",
	}
	reg := NewRegistry()
	for _, in := range inputs {
		a, err := Parse(in, reg)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		b, err := Parse(a.String(), reg)
		if err != nil {
			t.Fatalf("re-parse %q: %v", a.String(), err)
		}
		if !DeepEqual(a, b) {
			t.Errorf("%q: round trip changed the tree (%s)", in, a)
		}
	}
}

func TestParseOverloadResolution(t *testing.T) {
	cases := []struct {
		in, op string
	}{
		{"select([1,2], 1, 2)", "list.select"},
		{"select({1,2}, 1, 2)", "bag.select"},
		{"select(<1,2>, 1, 2)", "set.select"},
		{"count([1])", "list.count"},
		{"count({1})", "bag.count"},
		{"count(<1>)", "set.count"},
		{"topn({3,1}, 1)", "bag.topn"},
		{"tolist(<1,2>)", "set.tolist"},
	}
	for _, c := range cases {
		if e := parse(t, c.in); e.Op != c.op {
			t.Errorf("%q resolved to %s, want %s", c.in, e.Op, c.op)
		}
	}
}

func TestParseQualifiedNames(t *testing.T) {
	e := parse(t, "list.sort([2,1])")
	if e.Op != "list.sort" {
		t.Fatalf("op = %s", e.Op)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"[1, 2]", NewIntList(1, 2)},
		{"[]", NewIntList()},
		{"{3, 3}", NewIntBag(3, 3)},
		{"[-5]", NewIntList(-5)},
	}
	for _, c := range cases {
		e := parse(t, "sort("+wrapAsList(c.in)+")")
		_ = e
	}
	for _, c := range cases {
		e, err := Parse(c.in, NewRegistry())
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !Equal(e.Lit, c.want) {
			t.Errorf("%q parsed as %s", c.in, e.Lit)
		}
	}
	// Floats.
	e, err := Parse("[1.5, 2.25]", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	l := e.Lit.(*List)
	if l.Elems[0] != Float(1.5) || l.Elems[1] != Float(2.25) {
		t.Errorf("float literal = %s", e.Lit)
	}
}

// wrapAsList passes list inputs through unchanged and wraps others so the
// sort() call type-checks; bags are converted via tolist.
func wrapAsList(in string) string {
	if in[0] == '{' {
		return "tolist(" + in + ")"
	}
	return in
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select(",
		"select([1], 2",
		"select([1], 2, 4) trailing",
		"nosuchop([1])",
		"projecttobag({1})",   // bag has no projecttobag
		"[1, 2",               // unterminated
		"<1, 1>",              // duplicate in set literal
		"select([1], [2], 3)", // container where a parameter belongs
		"sort(3)",             // atomic operand
		"1.2.3",
	}
	reg := NewRegistry()
	for _, in := range bad {
		if _, err := Parse(in, reg); err == nil {
			t.Errorf("%q parsed without error", in)
		}
	}
}

func TestParsedTreesTypeCheck(t *testing.T) {
	reg := NewRegistry()
	inputs := []string{
		"select(projecttobag([1, 2, 3]), 2, 4)",
		"topn(tolist({9, 1, 5}), 2)",
		"count(toset({1, 1, 2}))",
	}
	for _, in := range inputs {
		e, err := Parse(in, reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.TypeOf(e); err != nil {
			t.Errorf("%q: parsed tree does not type check: %v", in, err)
		}
	}
}
