package moa

import (
	"fmt"
	"sort"
)

// Counters tallies the logical work of evaluation. Rewrite experiments
// compare these instead of wall-clock: they are deterministic and
// correspond to the cost model's CPU terms.
type Counters struct {
	ElementsVisited int64 // elements read from an input container
	Comparisons     int64 // value comparisons performed
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Evaluator interprets algebra expressions against a registry.
type Evaluator struct {
	Reg      *Registry
	Counters Counters
	// CheckPhysical verifies the preconditions of physical operators
	// (e.g. sortedness for binary-search select) and fails loudly when an
	// optimizer produced an invalid plan. The verification work is not
	// counted. Tests run with it on; benchmarks may disable it.
	CheckPhysical bool
}

// NewEvaluator returns an evaluator over reg with precondition checking
// enabled.
func NewEvaluator(reg *Registry) *Evaluator {
	return &Evaluator{Reg: reg, CheckPhysical: true}
}

// Eval computes the value of an expression tree bottom-up.
func (ev *Evaluator) Eval(e *Expr) (Value, error) {
	if err := ev.Reg.Err(); err != nil {
		return nil, err
	}
	if e.Op == OpLit {
		return e.Lit, nil
	}
	def, ok := ev.Reg.Lookup(e.Op)
	if !ok {
		return nil, fmt.Errorf("moa: unknown operator %q", e.Op)
	}
	if len(e.Children) != def.NumChildren || len(e.Params) != def.NumParams {
		return nil, fmt.Errorf("moa: %s arity mismatch", e.Op)
	}
	args := make([]Value, len(e.Children))
	for i, c := range e.Children {
		v, err := ev.Eval(c)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return def.Eval(ev, args, e.Params)
}

// visit counts n element reads.
func (ev *Evaluator) visit(n int) { ev.Counters.ElementsVisited += int64(n) }

// compare counts a comparison and performs it.
func (ev *Evaluator) compare(a, b Value) (int, error) {
	ev.Counters.Comparisons++
	return Compare(a, b)
}

func asList(op string, v Value) (*List, error) {
	l, ok := v.(*List)
	if !ok {
		return nil, fmt.Errorf("moa: %s applied to %s, needs LIST", op, v.Kind())
	}
	return l, nil
}

func asBag(op string, v Value) (*Bag, error) {
	b, ok := v.(*Bag)
	if !ok {
		return nil, fmt.Errorf("moa: %s applied to %s, needs BAG", op, v.Kind())
	}
	return b, nil
}

func asSet(op string, v Value) (*Set, error) {
	s, ok := v.(*Set)
	if !ok {
		return nil, fmt.Errorf("moa: %s applied to %s, needs SET", op, v.Kind())
	}
	return s, nil
}

func asIntParam(op string, v Value) (int, error) {
	n, ok := v.(Int)
	if !ok {
		return 0, fmt.Errorf("moa: %s parameter must be INT, got %s", op, v.Kind())
	}
	if n < 0 {
		return 0, fmt.Errorf("moa: %s parameter must be non-negative, got %d", op, int64(n))
	}
	return int(n), nil
}

// rangeScan selects elems with lo <= e <= hi by linear scan, preserving
// input order.
func (ev *Evaluator) rangeScan(elems []Value, lo, hi Value) ([]Value, error) {
	out := make([]Value, 0, len(elems)/4)
	for _, e := range elems {
		ev.visit(1)
		cl, err := ev.compare(e, lo)
		if err != nil {
			return nil, err
		}
		if cl < 0 {
			continue
		}
		ch, err := ev.compare(e, hi)
		if err != nil {
			return nil, err
		}
		if ch <= 0 {
			out = append(out, e)
		}
	}
	return out, nil
}

// topNHeap returns the n largest values in descending order, counting the
// heap's comparisons.
func (ev *Evaluator) topNHeap(elems []Value, n int) ([]Value, error) {
	if n == 0 {
		return nil, nil
	}
	// Min-heap of the current best n.
	h := make([]Value, 0, n)
	less := func(a, b Value) (bool, error) {
		c, err := ev.compare(a, b)
		return c < 0, err
	}
	siftUp := func(i int) error {
		for i > 0 {
			p := (i - 1) / 2
			l, err := less(h[i], h[p])
			if err != nil {
				return err
			}
			if !l {
				return nil
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
		return nil
	}
	siftDown := func(i int) error {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return nil
			}
			if c+1 < len(h) {
				l, err := less(h[c+1], h[c])
				if err != nil {
					return err
				}
				if l {
					c++
				}
			}
			l, err := less(h[c], h[i])
			if err != nil {
				return err
			}
			if !l {
				return nil
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for _, e := range elems {
		ev.visit(1)
		if len(h) < n {
			h = append(h, e)
			if err := siftUp(len(h) - 1); err != nil {
				return nil, err
			}
			continue
		}
		l, err := less(h[0], e)
		if err != nil {
			return nil, err
		}
		if l {
			h[0] = e
			if err := siftDown(0); err != nil {
				return nil, err
			}
		}
	}
	// Drain ascending, then reverse for descending output.
	out := make([]Value, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		if len(h) > 0 {
			if err := siftDown(0); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// countingSort sorts ascending while counting comparisons. Incomparable
// elements (possible only when a value bypassed type checking) surface as
// an error after the sort instead of a panic inside it.
func (ev *Evaluator) countingSort(elems []Value) ([]Value, error) {
	out := append([]Value(nil), elems...)
	var cmpErr error
	sort.SliceStable(out, func(i, j int) bool {
		ev.Counters.Comparisons++
		c, err := Compare(out[i], out[j])
		if err != nil && cmpErr == nil {
			cmpErr = err
		}
		return c < 0
	})
	if cmpErr != nil {
		return nil, cmpErr
	}
	return out, nil
}

func registerListExt(r *Registry) {
	mustRegister := r.registerOrRecord
	mustRegister(&OpDef{
		Name: "list.select", Extension: "list", NumChildren: 1, NumParams: 2,
		ResultType: wantRangeSelect("list.select", KindList),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.select", args[0])
			if err != nil {
				return nil, err
			}
			out, err := ev.rangeScan(l.Elems, params[0], params[1])
			if err != nil {
				return nil, err
			}
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.select.binsearch", Extension: "list", NumChildren: 1, NumParams: 2,
		Physical:   true,
		ResultType: wantRangeSelect("list.select.binsearch", KindList),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.select.binsearch", args[0])
			if err != nil {
				return nil, err
			}
			if ev.CheckPhysical {
				sorted, err := IsSortedAsc(l)
				if err != nil {
					return nil, err
				}
				if !sorted {
					return nil, fmt.Errorf("moa: list.select.binsearch precondition violated: input not sorted")
				}
			}
			lo, hi := params[0], params[1]
			var cmpErr error
			// First index with elem >= lo.
			start := sort.Search(len(l.Elems), func(i int) bool {
				ev.Counters.Comparisons++
				c, err := Compare(l.Elems[i], lo)
				if err != nil && cmpErr == nil {
					cmpErr = err
				}
				return c >= 0
			})
			// First index with elem > hi.
			end := sort.Search(len(l.Elems), func(i int) bool {
				ev.Counters.Comparisons++
				c, err := Compare(l.Elems[i], hi)
				if err != nil && cmpErr == nil {
					cmpErr = err
				}
				return c > 0
			})
			if cmpErr != nil {
				return nil, cmpErr
			}
			if end < start {
				end = start
			}
			out := make([]Value, end-start)
			copy(out, l.Elems[start:end])
			ev.visit(end - start)
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.projecttobag", Extension: "list", NumChildren: 1, NumParams: 0,
		ResultType: wantContainer("list.projecttobag", KindList, KindBag),
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			l, err := asList("list.projecttobag", args[0])
			if err != nil {
				return nil, err
			}
			ev.visit(len(l.Elems))
			return &Bag{Elems: append([]Value(nil), l.Elems...)}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.sort", Extension: "list", NumChildren: 1, NumParams: 0,
		ResultType: wantContainer("list.sort", KindList, KindList),
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			l, err := asList("list.sort", args[0])
			if err != nil {
				return nil, err
			}
			ev.visit(len(l.Elems))
			sorted, err := ev.countingSort(l.Elems)
			if err != nil {
				return nil, err
			}
			return &List{Elems: sorted}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.topn", Extension: "list", NumChildren: 1, NumParams: 1,
		ResultType: wantContainer("list.topn", KindList, KindList),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.topn", args[0])
			if err != nil {
				return nil, err
			}
			n, err := asIntParam("list.topn", params[0])
			if err != nil {
				return nil, err
			}
			out, err := ev.topNHeap(l.Elems, n)
			if err != nil {
				return nil, err
			}
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.topn.sorted", Extension: "list", NumChildren: 1, NumParams: 1,
		Physical:   true,
		ResultType: wantContainer("list.topn.sorted", KindList, KindList),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			l, err := asList("list.topn.sorted", args[0])
			if err != nil {
				return nil, err
			}
			n, err := asIntParam("list.topn.sorted", params[0])
			if err != nil {
				return nil, err
			}
			if ev.CheckPhysical {
				sorted, err := IsSortedAsc(l)
				if err != nil {
					return nil, err
				}
				if !sorted {
					return nil, fmt.Errorf("moa: list.topn.sorted precondition violated: input not sorted")
				}
			}
			if n > len(l.Elems) {
				n = len(l.Elems)
			}
			out := make([]Value, n)
			for i := 0; i < n; i++ {
				out[i] = l.Elems[len(l.Elems)-1-i]
			}
			ev.visit(n)
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.count", Extension: "list", NumChildren: 1, NumParams: 0,
		ResultType: func(children []Type, _ []Value) (Type, error) {
			if children[0].Kind != KindList {
				return Type{}, fmt.Errorf("moa: list.count requires LIST, got %s", children[0].Kind)
			}
			return Type{Kind: KindInt}, nil
		},
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			l, err := asList("list.count", args[0])
			if err != nil {
				return nil, err
			}
			return Int(len(l.Elems)), nil
		},
	})
	mustRegister(&OpDef{
		Name: "list.concat", Extension: "list", NumChildren: 2, NumParams: 0,
		ResultType: func(children []Type, _ []Value) (Type, error) {
			if children[0].Kind != KindList || children[1].Kind != KindList {
				return Type{}, fmt.Errorf("moa: list.concat requires LIST inputs")
			}
			if !children[0].Equal(children[1]) {
				return Type{}, fmt.Errorf("moa: list.concat element types differ: %s vs %s", children[0], children[1])
			}
			return children[0], nil
		},
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			a, err := asList("list.concat", args[0])
			if err != nil {
				return nil, err
			}
			b, err := asList("list.concat", args[1])
			if err != nil {
				return nil, err
			}
			ev.visit(len(a.Elems) + len(b.Elems))
			out := make([]Value, 0, len(a.Elems)+len(b.Elems))
			out = append(out, a.Elems...)
			out = append(out, b.Elems...)
			return &List{Elems: out}, nil
		},
	})
}

func registerBagExt(r *Registry) {
	mustRegister := r.registerOrRecord
	mustRegister(&OpDef{
		Name: "bag.select", Extension: "bag", NumChildren: 1, NumParams: 2,
		ResultType: wantRangeSelect("bag.select", KindBag),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			b, err := asBag("bag.select", args[0])
			if err != nil {
				return nil, err
			}
			out, err := ev.rangeScan(b.Elems, params[0], params[1])
			if err != nil {
				return nil, err
			}
			return &Bag{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "bag.topn", Extension: "bag", NumChildren: 1, NumParams: 1,
		ResultType: wantContainer("bag.topn", KindBag, KindList),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			b, err := asBag("bag.topn", args[0])
			if err != nil {
				return nil, err
			}
			n, err := asIntParam("bag.topn", params[0])
			if err != nil {
				return nil, err
			}
			out, err := ev.topNHeap(b.Elems, n)
			if err != nil {
				return nil, err
			}
			return &List{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "bag.tolist", Extension: "bag", NumChildren: 1, NumParams: 0,
		ResultType: wantContainer("bag.tolist", KindBag, KindList),
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			b, err := asBag("bag.tolist", args[0])
			if err != nil {
				return nil, err
			}
			ev.visit(len(b.Elems))
			return &List{Elems: append([]Value(nil), b.Elems...)}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "bag.toset", Extension: "bag", NumChildren: 1, NumParams: 0,
		ResultType: wantContainer("bag.toset", KindBag, KindSet),
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			b, err := asBag("bag.toset", args[0])
			if err != nil {
				return nil, err
			}
			ev.visit(len(b.Elems))
			sorted, err := ev.countingSort(b.Elems)
			if err != nil {
				return nil, err
			}
			out := make([]Value, 0, len(sorted))
			for i, e := range sorted {
				if i > 0 {
					c, err := Compare(e, sorted[i-1])
					if err != nil {
						return nil, err
					}
					if c == 0 {
						continue
					}
				}
				out = append(out, e)
			}
			return &Set{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "bag.count", Extension: "bag", NumChildren: 1, NumParams: 0,
		ResultType: func(children []Type, _ []Value) (Type, error) {
			if children[0].Kind != KindBag {
				return Type{}, fmt.Errorf("moa: bag.count requires BAG, got %s", children[0].Kind)
			}
			return Type{Kind: KindInt}, nil
		},
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			b, err := asBag("bag.count", args[0])
			if err != nil {
				return nil, err
			}
			return Int(len(b.Elems)), nil
		},
	})
	mustRegister(&OpDef{
		Name: "bag.union", Extension: "bag", NumChildren: 2, NumParams: 0,
		ResultType: func(children []Type, _ []Value) (Type, error) {
			if children[0].Kind != KindBag || children[1].Kind != KindBag {
				return Type{}, fmt.Errorf("moa: bag.union requires BAG inputs")
			}
			if !children[0].Equal(children[1]) {
				return Type{}, fmt.Errorf("moa: bag.union element types differ")
			}
			return children[0], nil
		},
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			a, err := asBag("bag.union", args[0])
			if err != nil {
				return nil, err
			}
			b, err := asBag("bag.union", args[1])
			if err != nil {
				return nil, err
			}
			ev.visit(len(a.Elems) + len(b.Elems))
			out := make([]Value, 0, len(a.Elems)+len(b.Elems))
			out = append(out, a.Elems...)
			out = append(out, b.Elems...)
			return &Bag{Elems: out}, nil
		},
	})
}

func registerSetExt(r *Registry) {
	mustRegister := r.registerOrRecord
	mustRegister(&OpDef{
		Name: "set.select", Extension: "set", NumChildren: 1, NumParams: 2,
		ResultType: wantRangeSelect("set.select", KindSet),
		Eval: func(ev *Evaluator, args, params []Value) (Value, error) {
			s, err := asSet("set.select", args[0])
			if err != nil {
				return nil, err
			}
			out, err := ev.rangeScan(s.Elems, params[0], params[1])
			if err != nil {
				return nil, err
			}
			return &Set{Elems: out}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "set.tolist", Extension: "set", NumChildren: 1, NumParams: 0,
		ResultType: wantContainer("set.tolist", KindSet, KindList),
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			s, err := asSet("set.tolist", args[0])
			if err != nil {
				return nil, err
			}
			ev.visit(len(s.Elems))
			// Canonical (value-sorted) order: SET has no order of its own,
			// so the extension defines the projection deterministically.
			sorted, err := ev.countingSort(s.Elems)
			if err != nil {
				return nil, err
			}
			return &List{Elems: sorted}, nil
		},
	})
	mustRegister(&OpDef{
		Name: "set.count", Extension: "set", NumChildren: 1, NumParams: 0,
		ResultType: func(children []Type, _ []Value) (Type, error) {
			if children[0].Kind != KindSet {
				return Type{}, fmt.Errorf("moa: set.count requires SET, got %s", children[0].Kind)
			}
			return Type{Kind: KindInt}, nil
		},
		Eval: func(ev *Evaluator, args, _ []Value) (Value, error) {
			s, err := asSet("set.count", args[0])
			if err != nil {
				return nil, err
			}
			return Int(len(s.Elems)), nil
		},
	})
}
