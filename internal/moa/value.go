// Package moa implements a structured object algebra in the style of Moa
// [BWK98], the extensible algebra the paper targets: a small set of
// structure extensions (ATOMIC, TUPLE, LIST, BAG, SET), each contributing
// its own operators to a shared registry, with typed expression trees
// evaluated by an instrumented interpreter.
//
// The package is the substrate for Step 2 of the paper: the inter-object
// optimizer rewrites expressions that nest operators from *different*
// extensions (the select/projecttobag of Example 1), and the intra-object
// (E-ADT style) optimizers replace an extension's logical operators with
// cheaper physical variants (binary-search select on sorted lists). The
// evaluator counts element visits and comparisons so experiments can
// demonstrate the rewrites' effect without resorting to wall-clock noise.
package moa

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a structure extension. Each container kind corresponds
// to one extension registered in the operator registry.
type Kind uint8

// The structure kinds of the algebra.
const (
	KindInvalid Kind = iota
	KindInt          // ATOMIC integer
	KindFloat        // ATOMIC float
	KindStr          // ATOMIC string
	KindList         // LIST: ordered, duplicates allowed
	KindBag          // BAG: unordered, duplicates allowed
	KindSet          // SET: unordered, no duplicates
	KindTuple        // TUPLE: fixed-arity record of atomics
)

// String returns the Moa-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLT"
	case KindStr:
		return "STR"
	case KindList:
		return "LIST"
	case KindBag:
		return "BAG"
	case KindSet:
		return "SET"
	case KindTuple:
		return "TUPLE"
	default:
		return "INVALID"
	}
}

// Atomic reports whether the kind is a scalar.
func (k Kind) Atomic() bool { return k == KindInt || k == KindFloat || k == KindStr }

// Value is an algebra value: an atomic or a container of values.
type Value interface {
	Kind() Kind
	String() string
}

// Int is the ATOMIC integer value.
type Int int64

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// String implements Value.
func (v Int) String() string { return fmt.Sprintf("%d", int64(v)) }

// Float is the ATOMIC float value.
type Float float64

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// String implements Value.
func (v Float) String() string { return fmt.Sprintf("%g", float64(v)) }

// Str is the ATOMIC string value.
type Str string

// Kind implements Value.
func (Str) Kind() Kind { return KindStr }

// String implements Value.
func (v Str) String() string { return fmt.Sprintf("%q", string(v)) }

// List is the LIST structure: an ordered sequence with duplicates. Order
// is semantically significant — the property the inter-object optimizer
// exploits.
type List struct {
	Elems []Value
}

// Kind implements Value.
func (*List) Kind() Kind { return KindList }

// String implements Value.
func (l *List) String() string { return "[" + joinValues(l.Elems) + "]" }

// Bag is the BAG structure: duplicates allowed, order formally absent.
// The representation keeps an order for determinism, but no operator's
// semantics may depend on it.
type Bag struct {
	Elems []Value
}

// Kind implements Value.
func (*Bag) Kind() Kind { return KindBag }

// String implements Value. Elements print in canonical (sorted) order so
// equal bags print equally.
func (b *Bag) String() string {
	canon := append([]Value(nil), b.Elems...)
	sortValues(canon)
	return "{" + joinValues(canon) + "}"
}

// Set is the SET structure: no duplicates, no order.
type Set struct {
	Elems []Value // invariant: no two compare equal
}

// Kind implements Value.
func (*Set) Kind() Kind { return KindSet }

// String implements Value.
func (s *Set) String() string {
	canon := append([]Value(nil), s.Elems...)
	sortValues(canon)
	return "<" + joinValues(canon) + ">"
}

func joinValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

// Compare orders two atomic values of the same kind: -1, 0, +1. It returns
// an error for containers or mismatched kinds; the algebra's range
// operators are defined only over comparable atomics.
func Compare(a, b Value) (int, error) {
	if a.Kind() != b.Kind() {
		return 0, fmt.Errorf("moa: cannot compare %s with %s", a.Kind(), b.Kind())
	}
	switch x := a.(type) {
	case Int:
		y := b.(Int)
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case Float:
		y := b.(Float)
		switch {
		case x < y:
			return -1, nil
		case x > y:
			return 1, nil
		}
		return 0, nil
	case Str:
		return strings.Compare(string(x), string(b.(Str))), nil
	default:
		return 0, fmt.Errorf("moa: %s values are not comparable", a.Kind())
	}
}

// sortValues orders values for canonical printing and multiset
// comparison: atomics by Compare, anything else (tuples) by rendered
// string, which is stable and total.
func sortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		if c, err := Compare(vs[i], vs[j]); err == nil {
			return c < 0
		}
		return vs[i].String() < vs[j].String()
	})
}

// Equal reports deep semantic equality: lists compare in order, bags and
// sets as multisets/sets.
func Equal(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case Int, Float, Str:
		return a == b
	case *List:
		y := b.(*List)
		if len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Bag:
		return multisetEqual(x.Elems, b.(*Bag).Elems)
	case *Set:
		return multisetEqual(x.Elems, b.(*Set).Elems)
	case *Tuple:
		return tupleEqual(x, b.(*Tuple))
	default:
		return false
	}
}

func multisetEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]Value(nil), a...)
	cb := append([]Value(nil), b...)
	sortValues(ca)
	sortValues(cb)
	for i := range ca {
		if !Equal(ca[i], cb[i]) {
			return false
		}
	}
	return true
}

// IsSortedAsc reports whether a list's elements are in non-decreasing
// order. It is the runtime ground truth behind the optimizer's static
// sortedness property. Incomparable elements are an error, not a panic:
// the check runs against values that may have bypassed type checking.
func IsSortedAsc(l *List) (bool, error) {
	for i := 1; i < len(l.Elems); i++ {
		c, err := Compare(l.Elems[i-1], l.Elems[i])
		if err != nil {
			return false, err
		}
		if c > 0 {
			return false, nil
		}
	}
	return true, nil
}

// NewIntList builds a LIST of Ints — a convenience for tests and examples
// mirroring the paper's Example 1 notation.
func NewIntList(xs ...int64) *List {
	l := &List{Elems: make([]Value, len(xs))}
	for i, x := range xs {
		l.Elems[i] = Int(x)
	}
	return l
}

// NewIntBag builds a BAG of Ints.
func NewIntBag(xs ...int64) *Bag {
	b := &Bag{Elems: make([]Value, len(xs))}
	for i, x := range xs {
		b.Elems[i] = Int(x)
	}
	return b
}
