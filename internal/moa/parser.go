package moa

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an expression in the paper's surface notation, e.g.
//
//	select(projecttobag([1, 2, 3, 4, 4, 5]), 2, 4)
//
// Container literals: [..] is a LIST, {..} a BAG, <..> a SET; elements are
// int or float atomics (floats when any element contains a '.').
// Unqualified operator names (select, topn, count, ...) are resolved to
// the owning extension from the input type, exactly as Moa's overload
// resolution works: the structure of the operand decides which extension's
// operator applies.
func Parse(input string, reg *Registry) (*Expr, error) {
	p := &parser{src: input, reg: reg}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("moa: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return e, nil
}

type parser struct {
	src string
	pos int
	reg *Registry
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("moa: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) parseExpr() (*Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '[':
		return p.parseContainer('[', ']', KindList)
	case c == '{':
		return p.parseContainer('{', '}', KindBag)
	case c == '<':
		return p.parseContainer('<', '>', KindSet)
	case c == '-' || unicode.IsDigit(rune(c)):
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return Literal(v), nil
	case unicode.IsLetter(rune(c)):
		return p.parseCall()
	default:
		return nil, fmt.Errorf("moa: unexpected character %q at offset %d", string(c), p.pos)
	}
}

func (p *parser) parseContainer(open, close byte, kind Kind) (*Expr, error) {
	if err := p.expect(open); err != nil {
		return nil, err
	}
	var elems []Value
	p.skipSpace()
	if p.peek() == close {
		p.pos++
	} else {
		for {
			v, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			elems = append(elems, v)
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			if err := p.expect(close); err != nil {
				return nil, err
			}
			break
		}
	}
	switch kind {
	case KindList:
		return Literal(&List{Elems: elems}), nil
	case KindBag:
		return Literal(&Bag{Elems: elems}), nil
	default:
		// SET literal: enforce the no-duplicates invariant at parse time.
		s := &Set{}
		for _, e := range elems {
			dup := false
			for _, have := range s.Elems {
				if Equal(e, have) {
					dup = true
					break
				}
			}
			if dup {
				return nil, fmt.Errorf("moa: duplicate element %s in SET literal", e)
			}
			s.Elems = append(s.Elems, e)
		}
		return Literal(s), nil
	}
}

func (p *parser) parseNumber() (Value, error) {
	p.skipSpace()
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if unicode.IsDigit(rune(c)) {
			p.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			p.pos++
			continue
		}
		break
	}
	text := p.src[start:p.pos]
	if text == "" || text == "-" {
		return nil, fmt.Errorf("moa: expected number at offset %d", start)
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("moa: bad float %q: %w", text, err)
		}
		return Float(f), nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("moa: bad integer %q: %w", text, err)
	}
	return Int(i), nil
}

func (p *parser) parseIdent() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '.' || c == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) parseCall() (*Expr, error) {
	name := p.parseIdent()
	if err := p.expect('('); err != nil {
		return nil, err
	}
	// First argument is always the (only, in this algebra) child
	// expression; remaining arguments are atomic parameters.
	var children []*Expr
	var params []Value
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	children = append(children, first)
	for {
		p.skipSpace()
		if p.peek() != ',' {
			break
		}
		p.pos++
		p.skipSpace()
		// Binary structural operators (concat, union) take a second
		// expression; everything else takes atomic parameters.
		if isBinaryOp(name) && len(children) < 2 {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			children = append(children, e)
			continue
		}
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		params = append(params, v)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	op, err := p.resolve(name, children)
	if err != nil {
		return nil, err
	}
	return NewExpr(op, params, children...), nil
}

func isBinaryOp(name string) bool { return name == "concat" || name == "union" }

// resolve maps an unqualified surface name to the extension operator that
// accepts the first child's structure kind.
func (p *parser) resolve(name string, children []*Expr) (string, error) {
	if strings.Contains(name, ".") {
		if _, ok := p.reg.Lookup(name); !ok {
			return "", fmt.Errorf("moa: unknown operator %q", name)
		}
		return name, nil
	}
	if len(children) == 0 {
		return "", fmt.Errorf("moa: operator %q needs an operand", name)
	}
	t, err := p.reg.TypeOf(children[0])
	if err != nil {
		return "", err
	}
	var ext string
	switch t.Kind {
	case KindList:
		ext = "list"
	case KindBag:
		ext = "bag"
	case KindSet:
		ext = "set"
	default:
		return "", fmt.Errorf("moa: operator %q applied to %s", name, t.Kind)
	}
	qualified := ext + "." + name
	if _, ok := p.reg.Lookup(qualified); !ok {
		return "", fmt.Errorf("moa: extension %s has no operator %q", ext, name)
	}
	return qualified, nil
}
