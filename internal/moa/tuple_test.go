package moa

import (
	"testing"

	"repro/internal/xrand"
)

// rankedList builds a LIST<TUPLE> of (docID, score) records — the ranked
// document list the paper calls the core business of content-based
// retrieval DBMSs.
func rankedList(pairs ...[2]int64) *List {
	l := &List{Elems: make([]Value, len(pairs))}
	for i, p := range pairs {
		l.Elems[i] = NewTuple(Int(p[0]), Int(p[1]))
	}
	return l
}

func TestTupleTypeChecking(t *testing.T) {
	reg := NewRegistry()
	l := Literal(rankedList([2]int64{1, 50}, [2]int64{2, 90}))
	typ, err := reg.TypeOf(l)
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "LIST<TUPLE<INT, INT>>" {
		t.Errorf("type = %s", typ)
	}
	if typ2, err := reg.TypeOf(TopNByL(l, 1, 2)); err != nil || !typ2.Equal(typ) {
		t.Errorf("topnby type = %v err = %v", typ2, err)
	}
	if typ3, err := reg.TypeOf(ProjectFieldL(l, 1)); err != nil || typ3.String() != "LIST<INT>" {
		t.Errorf("projectfield type = %v err = %v", typ3, err)
	}
	// Field out of range.
	if _, err := reg.TypeOf(TopNByL(l, 5, 2)); err == nil {
		t.Error("out-of-range field accepted")
	}
	// Non-tuple input.
	if _, err := reg.TypeOf(TopNByL(Literal(NewIntList(1, 2)), 0, 1)); err == nil {
		t.Error("atomic list accepted by topnby")
	}
	// Heterogeneous tuple list.
	bad := &List{Elems: []Value{NewTuple(Int(1)), NewTuple(Str("x"))}}
	if _, err := reg.TypeOf(Literal(bad)); err == nil {
		t.Error("heterogeneous tuple list accepted")
	}
	// Nested container in tuple field.
	nested := NewTuple(Int(1), NewIntList(2))
	if _, err := reg.TypeOf(Literal(&List{Elems: []Value{nested}})); err == nil {
		t.Error("container field accepted")
	}
}

func TestTopNByRanksDocuments(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	docs := rankedList(
		[2]int64{10, 30}, [2]int64{11, 90}, [2]int64{12, 55},
		[2]int64{13, 90}, [2]int64{14, 10},
	)
	got, err := ev.Eval(TopNByL(Literal(docs), 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Descending by score; equal scores keep input order (doc 11 before 13).
	want := rankedList([2]int64{11, 90}, [2]int64{13, 90}, [2]int64{12, 55})
	if !Equal(got, want) {
		t.Errorf("topnby = %s, want %s", got, want)
	}
}

func TestProjectFieldAndSelectBy(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	docs := rankedList([2]int64{10, 30}, [2]int64{11, 90}, [2]int64{12, 55})
	ids, err := ev.Eval(ProjectFieldL(Literal(docs), 0))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ids, NewIntList(10, 11, 12)) {
		t.Errorf("ids = %s", ids)
	}
	hits, err := ev.Eval(SelectByL(Literal(docs), 1, Int(40), Int(95)))
	if err != nil {
		t.Fatal(err)
	}
	want := rankedList([2]int64{11, 90}, [2]int64{12, 55})
	if !Equal(hits, want) {
		t.Errorf("selectby = %s, want %s", hits, want)
	}
}

// TestProjectThroughTopNByRule verifies the new logical rule preserves
// semantics and is applied by the optimizer. (The optimizer lives in its
// own package; here we check the algebraic identity the rule relies on.)
func TestProjectThroughTopNByIdentity(t *testing.T) {
	rng := xrand.New(811)
	reg := NewRegistry()
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30)
		pairs := make([][2]int64, n)
		for i := range pairs {
			pairs[i] = [2]int64{int64(i), int64(rng.Intn(50))}
		}
		docs := Literal(rankedList(pairs...))
		k := int64(rng.Intn(10))
		ev := NewEvaluator(reg)
		a, err := ev.Eval(ProjectFieldL(TopNByL(docs, 1, k), 1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := ev.Eval(TopNL(ProjectFieldL(docs, 1), k))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(a, b) {
			t.Fatalf("trial %d: identity broken: %s vs %s", trial, a, b)
		}
	}
}

func TestTupleEquality(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	b := NewTuple(Int(1), Str("x"))
	c := NewTuple(Int(1), Str("y"))
	if !Equal(a, b) {
		t.Error("equal tuples not equal")
	}
	if Equal(a, c) {
		t.Error("different tuples equal")
	}
	if Equal(a, NewTuple(Int(1))) {
		t.Error("different arity equal")
	}
	// Bags of tuples: canonical comparison must not panic.
	bag1 := &Bag{Elems: []Value{a, c}}
	bag2 := &Bag{Elems: []Value{c, b}}
	if !Equal(bag1, bag2) {
		t.Error("tuple bags should compare as multisets")
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(Int(7), Float(0.5))
	if tp.String() != "(7, 0.5)" {
		t.Errorf("String = %s", tp.String())
	}
	if tp.Kind() != KindTuple {
		t.Error("wrong kind")
	}
	if KindTuple.Atomic() {
		t.Error("tuple must not be atomic")
	}
}

func TestTupleEvalErrors(t *testing.T) {
	ev := NewEvaluator(NewRegistry())
	// topnby over non-tuples fails dynamically too.
	if _, err := ev.Eval(NewExpr("list.topnby", []Value{Int(0), Int(1)}, Literal(NewIntList(1)))); err == nil {
		t.Error("dynamic non-tuple input accepted")
	}
	// Negative count.
	docs := Literal(rankedList([2]int64{1, 2}))
	if _, err := ev.Eval(NewExpr("list.topnby", []Value{Int(0), Int(-1)}, docs)); err == nil {
		t.Error("negative count accepted")
	}
}
