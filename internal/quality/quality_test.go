package quality

import (
	"math"
	"testing"

	"repro/internal/rank"
)

func ds(ids ...uint32) []rank.DocScore {
	out := make([]rank.DocScore, len(ids))
	for i, id := range ids {
		out[i] = rank.DocScore{DocID: id, Score: float64(len(ids) - i)}
	}
	return out
}

func TestPrecisionAt(t *testing.T) {
	q := NewQrels(ds(1, 2, 3, 4))
	results := ds(1, 9, 2, 8, 3)
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1.0},
		{2, 0.5},
		{3, 2.0 / 3},
		{5, 3.0 / 5},
		{10, 3.0 / 10}, // missing tail counts as misses
		{0, 0},
	}
	for _, c := range cases {
		if got := q.PrecisionAt(results, c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P@%d = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestRecallAt(t *testing.T) {
	q := NewQrels(ds(1, 2, 3, 4))
	results := ds(1, 9, 2)
	if got := q.RecallAt(results, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R@3 = %v, want 0.5", got)
	}
	if got := q.RecallAt(results, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("R@1 = %v, want 0.25", got)
	}
	empty := NewQrels(nil)
	if got := empty.RecallAt(results, 3); got != 0 {
		t.Errorf("recall with empty qrels = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	q := NewQrels(ds(1, 2))
	// Relevant at positions 1 and 3: AP = (1/1 + 2/3)/2.
	results := ds(1, 9, 2)
	want := (1.0 + 2.0/3) / 2
	if got := q.AveragePrecision(results); math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, want)
	}
	// Perfect ranking has AP 1.
	if got := q.AveragePrecision(ds(1, 2)); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AP = %v", got)
	}
	// No relevant retrieved: AP 0.
	if got := q.AveragePrecision(ds(7, 8, 9)); got != 0 {
		t.Errorf("AP with no hits = %v", got)
	}
}

func TestOverlap(t *testing.T) {
	q := NewQrels(ds(1, 2, 3))
	if got := q.Overlap(ds(1, 2, 9), 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("overlap = %v, want 2/3", got)
	}
	// k larger than qrels: denominator is |relevant|.
	if got := q.Overlap(ds(1, 2, 3, 9, 8), 5); math.Abs(got-1) > 1e-12 {
		t.Errorf("overlap with k>|rel| = %v, want 1", got)
	}
	if got := q.Overlap(nil, 0); got != 0 {
		t.Errorf("overlap k=0 = %v", got)
	}
	if got := NewQrels(nil).Overlap(ds(1), 1); got != 0 {
		t.Errorf("overlap with empty qrels = %v", got)
	}
}

func TestIdenticalRankingIsPerfect(t *testing.T) {
	truth := ds(5, 3, 8, 1)
	q := NewQrels(truth)
	if p := q.PrecisionAt(truth, 4); p != 1 {
		t.Errorf("P@4 of identical ranking = %v", p)
	}
	if r := q.RecallAt(truth, 4); r != 1 {
		t.Errorf("R@4 of identical ranking = %v", r)
	}
	if ap := q.AveragePrecision(truth); ap != 1 {
		t.Errorf("AP of identical ranking = %v", ap)
	}
}

func TestEvaluatorAggregation(t *testing.T) {
	e, err := NewEvaluator(2)
	if err != nil {
		t.Fatal(err)
	}
	q1 := NewQrels(ds(1, 2))
	q2 := NewQrels(ds(3, 4))
	e.Add(q1, ds(1, 2)) // P@2 = 1
	e.Add(q2, ds(9, 8)) // P@2 = 0
	s := e.Summary()
	if s.Queries != 2 {
		t.Errorf("Queries = %d", s.Queries)
	}
	if math.Abs(s.MeanPrecision-0.5) > 1e-12 {
		t.Errorf("MeanPrecision = %v, want 0.5", s.MeanPrecision)
	}
	if math.Abs(s.MAP-0.5) > 1e-12 {
		t.Errorf("MAP = %v, want 0.5", s.MAP)
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(0); err == nil {
		t.Error("cutoff 0 accepted")
	}
	e, _ := NewEvaluator(5)
	if s := e.Summary(); s.Queries != 0 || s.MAP != 0 {
		t.Error("empty evaluator summary not zero")
	}
}
