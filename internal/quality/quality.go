// Package quality measures answer quality of optimized top-N runs against
// ground truth, quantifying the paper's safe/unsafe distinction: unsafe
// techniques "might lower the answer quality (e.g. precision and/or
// recall)" while safe ones must not.
//
// Ground truth (the qrels) for the synthetic workloads is the exhaustive
// ranking over the unfragmented index — the unoptimized computation whose
// answers an optimization must preserve. This is exactly how [VH99]
// quantified the quality drop of the fragment-only technique.
package quality

import (
	"fmt"

	"repro/internal/rank"
)

// Qrels is the relevant-document set of one query, usually the top-N of an
// exhaustive run.
type Qrels struct {
	Relevant map[uint32]bool
}

// NewQrels builds qrels from a ranked ground-truth answer list.
func NewQrels(truth []rank.DocScore) Qrels {
	q := Qrels{Relevant: make(map[uint32]bool, len(truth))}
	for _, d := range truth {
		q.Relevant[d.DocID] = true
	}
	return q
}

// PrecisionAt returns the fraction of the first k results that are
// relevant. k beyond len(results) treats the missing tail as misses,
// matching trec_eval behaviour.
func (q Qrels) PrecisionAt(results []rank.DocScore, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(results); i++ {
		if q.Relevant[results[i].DocID] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAt returns the fraction of relevant documents retrieved within the
// first k results.
func (q Qrels) RecallAt(results []rank.DocScore, k int) float64 {
	if len(q.Relevant) == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(results); i++ {
		if q.Relevant[results[i].DocID] {
			hits++
		}
	}
	return float64(hits) / float64(len(q.Relevant))
}

// AveragePrecision returns the mean of precision values at each relevant
// result's position — the standard single-number TREC quality metric.
func (q Qrels) AveragePrecision(results []rank.DocScore) float64 {
	if len(q.Relevant) == 0 {
		return 0
	}
	hits := 0
	var sum float64
	for i, r := range results {
		if q.Relevant[r.DocID] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(q.Relevant))
}

// Overlap returns |top-k(results) ∩ relevant| / min(k, |relevant|): the
// symmetric set agreement used when ground truth and answer have the same
// cardinality.
func (q Qrels) Overlap(results []rank.DocScore, k int) float64 {
	if k <= 0 {
		return 0
	}
	denom := k
	if len(q.Relevant) < denom {
		denom = len(q.Relevant)
	}
	if denom == 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(results); i++ {
		if q.Relevant[results[i].DocID] {
			hits++
		}
	}
	return float64(hits) / float64(denom)
}

// Summary aggregates metrics over a workload.
type Summary struct {
	Queries       int
	MeanPrecision float64 // mean P@k
	MeanRecall    float64 // mean R@k
	MAP           float64 // mean average precision
	MeanOverlap   float64
}

// Evaluator accumulates per-query metrics into a workload Summary.
type Evaluator struct {
	k       int
	n       int
	sumP    float64
	sumR    float64
	sumAP   float64
	sumOvlp float64
}

// NewEvaluator returns an evaluator computing metrics at cutoff k.
func NewEvaluator(k int) (*Evaluator, error) {
	if k <= 0 {
		return nil, fmt.Errorf("quality: cutoff %d must be positive", k)
	}
	return &Evaluator{k: k}, nil
}

// Add records one query's results against its qrels.
func (e *Evaluator) Add(q Qrels, results []rank.DocScore) {
	e.n++
	e.sumP += q.PrecisionAt(results, e.k)
	e.sumR += q.RecallAt(results, e.k)
	e.sumAP += q.AveragePrecision(results)
	e.sumOvlp += q.Overlap(results, e.k)
}

// Summary returns the aggregated metrics.
func (e *Evaluator) Summary() Summary {
	if e.n == 0 {
		return Summary{}
	}
	n := float64(e.n)
	return Summary{
		Queries:       e.n,
		MeanPrecision: e.sumP / n,
		MeanRecall:    e.sumR / n,
		MAP:           e.sumAP / n,
		MeanOverlap:   e.sumOvlp / n,
	}
}
