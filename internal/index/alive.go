// Alive-bitmap sidecars. A segment's tombstones are persisted next to
// its postings as a small versioned file — magic, document count, the
// bitmap words, and a trailing CRC-32 — written atomically (temp file +
// rename, fsync'd). The live layer writes a new version on every
// deletion commit and records the version in its manifest; a file the
// manifest does not reference is a crash leftover and is garbage-
// collected on reopen, exactly like an unreferenced segment directory.
package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/postings"
	"repro/internal/storage"
)

var aliveMagic = [8]byte{'T', 'O', 'P', 'N', 'A', 'L', 'V', '1'}

// WriteAlive persists bm durably at path (temp file + fsync + rename +
// directory fsync — a tombstone must survive power loss once its commit
// returns).
func WriteAlive(path string, bm *postings.AliveBitmap) error {
	words := bm.Words()
	buf := make([]byte, 0, 16+8*len(words)+4)
	buf = append(buf, aliveMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bm.Len()))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if err := storage.AtomicWriteFile(path, buf); err != nil {
		return fmt.Errorf("index: write alive bitmap: %w", err)
	}
	return nil
}

// ReadAlive loads and verifies a bitmap persisted with WriteAlive. The
// caller states how many documents it must cover; any mismatch,
// truncation, or checksum failure is reported as corruption rather than
// served as a wrong deletion view.
func ReadAlive(path string, wantDocs int) (*postings.AliveBitmap, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("index: read alive bitmap: %w", err)
	}
	if len(raw) < 20 || string(raw[:8]) != string(aliveMagic[:]) {
		return nil, fmt.Errorf("index: %s is not an alive bitmap (corrupt?)", path)
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("index: alive bitmap %s fails its checksum: corrupt", path)
	}
	n := binary.LittleEndian.Uint64(body[8:16])
	if n != uint64(wantDocs) {
		return nil, fmt.Errorf("index: alive bitmap %s covers %d documents, segment holds %d: corrupt",
			path, n, wantDocs)
	}
	wordBytes := body[16:]
	if len(wordBytes) != 8*((wantDocs+63)/64) {
		return nil, fmt.Errorf("index: alive bitmap %s has %d payload bytes for %d documents: corrupt",
			path, len(wordBytes), wantDocs)
	}
	words := make([]uint64, len(wordBytes)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(wordBytes[8*i:])
	}
	bm, ok := postings.RestoreAliveBitmap(wantDocs, words)
	if !ok {
		return nil, fmt.Errorf("index: alive bitmap %s sets bits beyond its document space: corrupt", path)
	}
	return bm, nil
}
