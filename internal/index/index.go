// Package index builds inverted indexes over document collections and
// implements the paper's Step 1: horizontal fragmentation of the inverted
// file by term document frequency.
//
// An unfragmented Index stores one compressed postings list per term. A
// Fragmented index splits the same lists into two physical fragments:
//
//   - the small fragment holds the rare, high-information terms — in the
//     paper's TREC FT experiment about 5% of the postings volume covering
//     the 95% "most interesting" terms;
//   - the large fragment holds the few very frequent terms that dominate
//     storage and contribute little to ranking.
//
// Queries that touch only the small fragment are fast but may lose quality
// (the unsafe technique); the core engine layered above decides when the
// large fragment must be consulted too (the safe technique).
package index

import (
	"fmt"

	"repro/internal/blockcache"
	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/storage"
)

// Stats carries the collection-level numbers ranking formulas need.
type Stats struct {
	NumDocs   int
	AvgDocLen float64
	// TotalTokens is the collection's total token count, recorded once at
	// build time so engine constructors never rescan the lexicon for it.
	TotalTokens int64
	DocLens     []int32 // indexed by document id
}

// Corpus packages the statistics as the ranking layer's CorpusStat.
func (s *Stats) Corpus() rank.CorpusStat {
	return rank.CorpusStat{
		NumDocs:     s.NumDocs,
		AvgDocLen:   s.AvgDocLen,
		TotalTokens: s.TotalTokens,
	}
}

// DocLen returns the token count of document id (0 when out of range).
func (s *Stats) DocLen(id uint32) int32 {
	if int(id) >= len(s.DocLens) {
		return 0
	}
	return s.DocLens[id]
}

// Index is an unfragmented inverted index: one postings list per term.
type Index struct {
	Lex   *lexicon.Lexicon
	Stats Stats

	store *postings.Store
	metas []postings.ListMeta // indexed by TermID; DocFreq==0 means no list

	// alive, when set (WithAlive), filters every Reader and Postings call
	// down to live documents. The per-term metadata (DocFreq, MaxTF,
	// block bounds) deliberately stays unfiltered: those numbers are only
	// ever used as upper bounds, and a superset bound is still a bound.
	alive *postings.AliveBitmap
}

// Build constructs an unfragmented index over col, storing lists in a file
// allocated from pool.
func Build(col *collection.Collection, pool *storage.Pool) (*Index, error) {
	idx := &Index{
		Lex:   col.Lex,
		store: postings.NewStore(storage.NewFile(pool)),
		metas: make([]postings.ListMeta, col.Lex.Size()),
	}
	idx.Stats = statsOf(col)
	byTerm := invert(col)
	for termID, ps := range byTerm {
		if len(ps) == 0 {
			continue
		}
		meta, err := idx.store.Put(ps)
		if err != nil {
			return nil, fmt.Errorf("index: term %d: %w", termID, err)
		}
		idx.metas[termID] = meta
	}
	return idx, nil
}

// statsOf extracts ranking statistics from a collection.
func statsOf(col *collection.Collection) Stats {
	s := Stats{NumDocs: len(col.Docs), AvgDocLen: col.AvgDocLen, TotalTokens: col.TotalTokens}
	s.DocLens = make([]int32, len(col.Docs))
	for i := range col.Docs {
		s.DocLens[i] = col.Docs[i].Len
	}
	return s
}

// invert produces docID-sorted postings per term. Documents are visited in
// id order, so the per-term slices come out sorted without an extra sort.
func invert(col *collection.Collection) [][]postings.Posting {
	byTerm := make([][]postings.Posting, col.Lex.Size())
	for i := range col.Docs {
		d := &col.Docs[i]
		for _, tf := range d.Terms {
			byTerm[tf.Term] = append(byTerm[tf.Term], postings.Posting{DocID: d.ID, TF: uint32(tf.TF)})
		}
	}
	return byTerm
}

// WithLexicon returns a shallow view of the index that reads term
// statistics from lex instead of the index's own lexicon. lex must be an
// append-only extension of the build-time lexicon (same ids for every
// term the index knows — the contract lexicon.Clone snapshots preserve);
// the live layer uses this to rank an immutable sealed segment with the
// current global statistics. Postings, metadata, and counters are shared
// with the receiver; only the statistics source changes. Query terms
// interned after the segment was sealed have ids beyond the segment's
// meta table and simply resolve to "no postings here".
func (ix *Index) WithLexicon(lex *lexicon.Lexicon) (*Index, error) {
	if lex == nil {
		return nil, fmt.Errorf("index: nil lexicon")
	}
	if lex.Size() < ix.Lex.Size() {
		return nil, fmt.Errorf("index: lexicon with %d terms cannot cover an index of %d terms",
			lex.Size(), ix.Lex.Size())
	}
	// Spot-check the extension contract at the id-space boundaries; a full
	// scan would be O(vocabulary) per generation for a pure programming-
	// error guard.
	if n := ix.Lex.Size(); n > 0 {
		if lex.Name(0) != ix.Lex.Name(0) || lex.Name(lexicon.TermID(n-1)) != ix.Lex.Name(lexicon.TermID(n-1)) {
			return nil, fmt.Errorf("index: lexicon is not an extension of the index's own (term ids diverge)")
		}
	}
	cp := *ix
	cp.Lex = lex
	return &cp, nil
}

// WithAlive returns a shallow view of the index whose readers skip
// documents dead in alive — the deletion seam of the live layer. The
// bitmap must cover exactly the index's document space. Like
// WithLexicon, postings, metadata, and counters are shared with the
// receiver; a nil bitmap returns an unfiltered view.
func (ix *Index) WithAlive(alive *postings.AliveBitmap) (*Index, error) {
	cp := *ix
	if alive == nil {
		cp.alive = nil
		return &cp, nil
	}
	if alive.Len() != ix.Stats.NumDocs {
		return nil, fmt.Errorf("index: alive bitmap covers %d documents, index holds %d",
			alive.Len(), ix.Stats.NumDocs)
	}
	cp.alive = alive
	return &cp, nil
}

// Reader opens an iterator over the postings of term. It returns ok=false
// when the term has no postings. On a WithAlive view the iterator skips
// tombstoned documents.
func (ix *Index) Reader(term lexicon.TermID) (*postings.Iterator, bool, error) {
	if int(term) >= len(ix.metas) || ix.metas[term].DocFreq == 0 {
		return nil, false, nil
	}
	it, err := ix.store.NewIterator(ix.metas[term])
	if err != nil {
		return nil, false, err
	}
	it.Filter(ix.alive)
	return it, true, nil
}

// Postings decodes the full list of term (nil when absent), filtered to
// alive documents on a WithAlive view.
func (ix *Index) Postings(term lexicon.TermID) ([]postings.Posting, error) {
	if int(term) >= len(ix.metas) || ix.metas[term].DocFreq == 0 {
		return nil, nil
	}
	ps, err := ix.store.ReadAll(ix.metas[term])
	if err != nil || ix.alive == nil {
		return ps, err
	}
	out := ps[:0]
	for _, p := range ps {
		if ix.alive.Alive(p.DocID) {
			out = append(out, p)
		}
	}
	return out, nil
}

// DocFreq returns the document frequency of term in the index.
func (ix *Index) DocFreq(term lexicon.TermID) int {
	if int(term) >= len(ix.metas) {
		return 0
	}
	return int(ix.metas[term].DocFreq)
}

// MaxTF returns the largest within-document frequency of term anywhere
// in the index (0 when the term has no postings) — the list-level score
// bound input.
func (ix *Index) MaxTF(term lexicon.TermID) uint32 {
	if int(term) >= len(ix.metas) {
		return 0
	}
	return ix.metas[term].MaxTF
}

// SetBlockCache attaches a shared block cache to the index's postings
// store under the given space tag (which must be unique for the store's
// lifetime — segment sequence numbers qualify). Views made with
// WithLexicon or WithAlive share the store, so one call covers them all.
// Only paged stores consult the cache; attach before opening readers.
func (ix *Index) SetBlockCache(c *blockcache.Cache, space uint64) {
	ix.store.SetBlockCache(c, space)
}

// Counters exposes the decoding-work counters of the backing store.
func (ix *Index) Counters() *postings.Counters { return &ix.store.Counters }

// SizeBytes reports the compressed size of all lists.
func (ix *Index) SizeBytes() int64 { return ix.store.Size() }

// TotalPostings returns the number of postings stored.
func (ix *Index) TotalPostings() int64 {
	var n int64
	for _, m := range ix.metas {
		n += int64(m.DocFreq)
	}
	return n
}
