// Segment compaction: Merge concatenates the postings of adjacent
// document-range indexes into one, the index-layer half of the live
// store's background merge. Inputs hold local document ids over disjoint
// contiguous ranges (input i covering [offset_i, offset_i+NumDocs_i) of
// the merged space, offsets being the running document total); the output
// re-encodes every list block-aligned over the merged id space, so it is
// indistinguishable from an index built over the concatenated documents
// in one shot — the property the live equivalence tests pin down.
//
// Merge is also the purge point of the delete path: tombstoned documents
// (dead in the per-input alive bitmaps) are dropped from every output
// list and their document lengths zeroed, which reclaims their postings
// space and re-tightens every block-max / list-max-TF bound the pruning
// engines read. Purged documents leave holes in the id space — the
// output's NumDocs stays the full span, so surviving documents keep
// their ids forever and the live layer's base arithmetic never shifts.
package index

import (
	"fmt"

	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
)

// Merge builds one index holding the alive postings of inputs, in input
// order, with document ids shifted onto a shared contiguous space.
// alive[i] filters input i (nil bitmap — or a nil slice — keeps every
// document). lex is the lexicon the merged index reads statistics from;
// it must be an append-only extension of every input's build-time
// lexicon (the live writer passes a frozen clone of its master
// lexicon). Lists are stored in ascending term-id order, exactly as
// Build lays them out. A single input is allowed: that is a purge
// rewrite, compacting one segment's tombstones in place.
func Merge(inputs []*Index, alive []*postings.AliveBitmap, lex *lexicon.Lexicon, pool *storage.Pool) (*Index, error) {
	if len(inputs) < 1 {
		return nil, fmt.Errorf("index: merge needs at least one input")
	}
	if lex == nil || pool == nil {
		return nil, fmt.Errorf("index: merge: nil lexicon or pool")
	}
	if alive != nil && len(alive) != len(inputs) {
		return nil, fmt.Errorf("index: merge: %d inputs but %d alive bitmaps", len(inputs), len(alive))
	}
	out := &Index{
		Lex:   lex,
		store: postings.NewStore(storage.NewFile(pool)),
		metas: make([]postings.ListMeta, lex.Size()),
	}
	bm := func(i int) *postings.AliveBitmap {
		if alive == nil {
			return nil
		}
		return alive[i]
	}
	offsets := make([]uint32, len(inputs))
	var docs int64
	maxTerms := 0
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("index: merge: nil input %d", i)
		}
		if in.Lex.Size() > lex.Size() {
			return nil, fmt.Errorf("index: merge: input %d knows %d terms, lexicon only %d",
				i, in.Lex.Size(), lex.Size())
		}
		if b := bm(i); b != nil && b.Len() != in.Stats.NumDocs {
			return nil, fmt.Errorf("index: merge: input %d bitmap covers %d documents, index holds %d",
				i, b.Len(), in.Stats.NumDocs)
		}
		if in.Lex.Size() > maxTerms {
			maxTerms = in.Lex.Size()
		}
		offsets[i] = uint32(docs)
		docs += int64(in.Stats.NumDocs)
		out.Stats.NumDocs += in.Stats.NumDocs
		// Document lengths of purged documents are zeroed — the marker
		// later opens use to tell "purged hole" from "deleted but still
		// stored". TotalTokens counts alive tokens only.
		b := bm(i)
		for id, dl := range in.Stats.DocLens {
			if b != nil && !b.Alive(uint32(id)) {
				dl = 0
			}
			out.Stats.DocLens = append(out.Stats.DocLens, dl)
			out.Stats.TotalTokens += int64(dl)
		}
	}
	if docs > int64(^uint32(0)) {
		return nil, fmt.Errorf("index: merge: %d documents overflow the id space", docs)
	}
	if out.Stats.NumDocs > 0 {
		out.Stats.AvgDocLen = float64(out.Stats.TotalTokens) / float64(out.Stats.NumDocs)
	}

	// One term at a time, ascending: decode each input's list (inputs may
	// be paged segments; ReadAll streams through their pools), drop the
	// dead, shift the ids, re-encode. Input ranges are disjoint and
	// ordered, so the concatenation is already docID-sorted. Terms
	// interned after the newest input was sealed (ids beyond every
	// input's lexicon) cannot have postings here, so the loop stops at
	// the inputs' bound, not the master's — on a long-lived index the
	// master can dwarf the small early segments a merge compacts.
	merged := make([]postings.Posting, 0, postings.BlockSize)
	for t := 0; t < maxTerms; t++ {
		merged = merged[:0]
		for i, in := range inputs {
			ps, err := in.Postings(lexicon.TermID(t))
			if err != nil {
				return nil, fmt.Errorf("index: merge input %d term %d: %w", i, t, err)
			}
			b := bm(i)
			for _, p := range ps {
				if b != nil && !b.Alive(p.DocID) {
					continue
				}
				merged = append(merged, postings.Posting{DocID: p.DocID + offsets[i], TF: p.TF})
			}
		}
		if len(merged) == 0 {
			continue
		}
		meta, err := out.store.Put(merged)
		if err != nil {
			return nil, fmt.Errorf("index: merge term %d: %w", t, err)
		}
		out.metas[t] = meta
	}
	return out, nil
}
