package index

import (
	"os"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/storage"
	"repro/internal/xrand"
)

// segCollection generates a deterministic random collection for
// segment tests.
func segCollection(t *testing.T, seed uint64, docs int) *collection.Collection {
	t.Helper()
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: 4000, MeanDocLen: 80, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func buildPool(t *testing.T) *storage.Pool {
	t.Helper()
	p, err := storage.NewPool(storage.NewDisk(), 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// openSmallPool opens dir with a pool deliberately smaller than the
// segment, asserting that the paging machinery is actually exercised.
func openSmallPool(t *testing.T, dir string) *storage.Pool {
	t.Helper()
	pool, fd, err := OpenPool(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Close() })
	if fd.NumPages() <= pool.Capacity() {
		t.Fatalf("segment holds %d pages, not larger than the %d-frame pool — test would not exercise paging",
			fd.NumPages(), pool.Capacity())
	}
	return pool
}

func equalLexicons(t *testing.T, a, b *lexicon.Lexicon) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("lexicon size %d != %d", b.Size(), a.Size())
	}
	for id := 0; id < a.Size(); id++ {
		tid := lexicon.TermID(id)
		if a.Name(tid) != b.Name(tid) {
			t.Fatalf("term %d name %q != %q", id, b.Name(tid), a.Name(tid))
		}
		if a.Stats(tid) != b.Stats(tid) {
			t.Fatalf("term %d stats %+v != %+v", id, b.Stats(tid), a.Stats(tid))
		}
	}
}

func equalStats(t *testing.T, a, b Stats) {
	t.Helper()
	if a.NumDocs != b.NumDocs || a.AvgDocLen != b.AvgDocLen || a.TotalTokens != b.TotalTokens {
		t.Fatalf("stats %+v != %+v", b, a)
	}
	if len(a.DocLens) != len(b.DocLens) {
		t.Fatalf("%d doc lens, want %d", len(b.DocLens), len(a.DocLens))
	}
	for i := range a.DocLens {
		if a.DocLens[i] != b.DocLens[i] {
			t.Fatalf("doc %d len %d != %d", i, b.DocLens[i], a.DocLens[i])
		}
	}
}

// TestSegmentRoundTripProperty persists random unfragmented indexes and
// reopens them through a pool smaller than the segment, demanding the
// lexicon, corpus statistics, and every posting come back equal.
func TestSegmentRoundTripProperty(t *testing.T) {
	rng := xrand.New(99)
	for round := 0; round < 3; round++ {
		seed := rng.Uint64()
		col := segCollection(t, seed, 150+int(seed%100))
		built, err := Build(col, buildPool(t))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := built.Persist(dir); err != nil {
			t.Fatal(err)
		}
		opened, err := Open(dir, openSmallPool(t, dir))
		if err != nil {
			t.Fatal(err)
		}

		equalLexicons(t, built.Lex, opened.Lex)
		equalStats(t, built.Stats, opened.Stats)
		if got, want := opened.TotalPostings(), built.TotalPostings(); got != want {
			t.Fatalf("round %d: %d postings, want %d", round, got, want)
		}
		for id := 0; id < built.Lex.Size(); id++ {
			tid := lexicon.TermID(id)
			if opened.DocFreq(tid) != built.DocFreq(tid) || opened.MaxTF(tid) != built.MaxTF(tid) {
				t.Fatalf("round %d term %d: df/maxTF mismatch", round, id)
			}
			want, err := built.Postings(tid)
			if err != nil {
				t.Fatal(err)
			}
			got, err := opened.Postings(tid)
			if err != nil {
				t.Fatalf("round %d term %d: %v", round, id, err)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d term %d: %d postings, want %d", round, id, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d term %d posting %d: %v != %v", round, id, i, got[i], want[i])
				}
			}
		}
		if opened.Counters().BlocksFaulted == 0 {
			t.Error("paged reads reported zero block faults")
		}
	}
}

// TestSegmentRoundTripFragmented checks the two-fragment flavor: the
// fragmentation predicate and both fragments' contents survive the trip.
func TestSegmentRoundTripFragmented(t *testing.T) {
	col := segCollection(t, 17, 250)
	fx, err := BuildFragmented(col, buildPool(t), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := fx.Persist(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenFragmented(dir, openSmallPool(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if got.DFThreshold != fx.DFThreshold || got.BoundaryID != fx.BoundaryID {
		t.Fatalf("predicate (%d,%d) != (%d,%d)", got.DFThreshold, got.BoundaryID, fx.DFThreshold, fx.BoundaryID)
	}
	if got.SmallFraction() != fx.SmallFraction() {
		t.Fatalf("small fraction %v != %v", got.SmallFraction(), fx.SmallFraction())
	}
	equalLexicons(t, fx.Lex, got.Lex)
	equalStats(t, fx.Stats, got.Stats)
	for id := 0; id < col.Lex.Size(); id++ {
		tid := lexicon.TermID(id)
		if fx.Small.Has(tid) != got.Small.Has(tid) || fx.Large.Has(tid) != got.Large.Has(tid) {
			t.Fatalf("term %d changed fragments", id)
		}
		frag, openedFrag := fx.FragmentOf(tid), got.FragmentOf(tid)
		if (frag == nil) != (openedFrag == nil) {
			t.Fatalf("term %d presence mismatch", id)
		}
		if frag == nil {
			continue
		}
		want, err := frag.Postings(tid)
		if err != nil {
			t.Fatal(err)
		}
		have, err := openedFrag.Postings(tid)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(have) {
			t.Fatalf("term %d: %d postings, want %d", id, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("term %d posting %d: %v != %v", id, i, have[i], want[i])
			}
		}
	}
}

// TestSegmentRoundTripMulti checks the fragment-chain flavor, including
// the term→fragment assignment.
func TestSegmentRoundTripMulti(t *testing.T) {
	col := segCollection(t, 23, 250)
	mx, err := BuildMulti(col, buildPool(t), []float64{0.05, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := mx.Persist(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenMulti(dir, openSmallPool(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fragments) != len(mx.Fragments) {
		t.Fatalf("%d fragments, want %d", len(got.Fragments), len(mx.Fragments))
	}
	equalLexicons(t, mx.Lex, got.Lex)
	equalStats(t, mx.Stats, got.Stats)
	if got.TotalPostings() != mx.TotalPostings() {
		t.Fatalf("%d postings, want %d", got.TotalPostings(), mx.TotalPostings())
	}
	for id := 0; id < col.Lex.Size(); id++ {
		tid := lexicon.TermID(id)
		if got.FragmentIndexOf(tid) != mx.FragmentIndexOf(tid) {
			t.Fatalf("term %d assigned to fragment %d, want %d", id, got.FragmentIndexOf(tid), mx.FragmentIndexOf(tid))
		}
		if got.DocFreq(tid) != mx.DocFreq(tid) || got.MaxTF(tid) != mx.MaxTF(tid) {
			t.Fatalf("term %d df/maxTF mismatch", id)
		}
	}
}

// TestSegmentFlavorMismatch: opening a segment with the wrong flavor
// accessor must fail cleanly, not misinterpret sections.
func TestSegmentFlavorMismatch(t *testing.T) {
	col := segCollection(t, 31, 120)
	built, err := Build(col, buildPool(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Persist(dir); err != nil {
		t.Fatal(err)
	}
	pool, fd, err := OpenPool(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	if _, err := OpenFragmented(dir, pool); err == nil {
		t.Error("OpenFragmented accepted a plain segment")
	}
	if _, err := OpenMulti(dir, pool); err == nil {
		t.Error("OpenMulti accepted a plain segment")
	}
	if _, err := Open(dir, nil); err == nil || !strings.Contains(err.Error(), "nil pool") {
		t.Errorf("Open with nil pool: err = %v", err)
	}
}

// TestSegmentCorruption flips one byte inside every section payload (and
// the superblock) of a persisted segment and demands Open fail with a
// diagnosable error each time; truncated files must be rejected before
// any section is interpreted.
func TestSegmentCorruption(t *testing.T) {
	col := segCollection(t, 41, 150)
	built, err := Build(col, buildPool(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := built.Persist(dir); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(SegmentPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// Learn the section extents so every flip lands inside a checksummed
	// payload, never in page padding.
	pool, fd, err := OpenPool(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := readSuperblock(pool)
	if err != nil {
		t.Fatal(err)
	}
	fd.Close()

	targets := []struct {
		name string
		off  int64
	}{
		{"superblock magic", 2},
		{"superblock directory", 64},
	}
	for _, s := range sb.sections {
		base := int64(s.startPage-1) * storage.PageSize
		targets = append(targets,
			struct {
				name string
				off  int64
			}{kindName(s.kind), base},
			struct {
				name string
				off  int64
			}{kindName(s.kind) + " middle", base + s.length/2},
		)
	}

	for _, tc := range targets {
		t.Run(tc.name, func(t *testing.T) {
			corrupt := append([]byte(nil), pristine...)
			corrupt[tc.off] ^= 0x5a
			cdir := t.TempDir()
			if err := os.WriteFile(SegmentPath(cdir), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			pool, fd, err := OpenPool(cdir, 8)
			if err != nil {
				return // rejected even earlier: fine
			}
			defer fd.Close()
			if _, err := Open(cdir, pool); err == nil {
				t.Fatalf("Open accepted a segment with byte %d flipped", tc.off)
			} else if !strings.Contains(err.Error(), "corrupt") &&
				!strings.Contains(err.Error(), "segment") {
				t.Errorf("error does not identify corruption: %v", err)
			}
		})
	}

	t.Run("truncated to partial page", func(t *testing.T) {
		cdir := t.TempDir()
		if err := os.WriteFile(SegmentPath(cdir), pristine[:len(pristine)-100], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenPool(cdir, 8); err == nil {
			t.Fatal("OpenPool accepted a truncated (non page-multiple) segment")
		}
	})
	t.Run("truncated by whole pages", func(t *testing.T) {
		cdir := t.TempDir()
		if err := os.WriteFile(SegmentPath(cdir), pristine[:len(pristine)-2*storage.PageSize], 0o644); err != nil {
			t.Fatal(err)
		}
		pool, fd, err := OpenPool(cdir, 8)
		if err != nil {
			return
		}
		defer fd.Close()
		if _, err := Open(cdir, pool); err == nil {
			t.Fatal("Open accepted a segment missing its tail pages")
		}
	})
	t.Run("empty file", func(t *testing.T) {
		cdir := t.TempDir()
		if err := os.WriteFile(SegmentPath(cdir), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenPool(cdir, 8); err == nil {
			t.Fatal("OpenPool accepted an empty segment")
		}
	})
}

func kindName(kind uint32) string {
	switch kind {
	case secLexicon:
		return "lexicon"
	case secStats:
		return "stats"
	case secMeta:
		return "meta"
	case secPostings:
		return "postings"
	}
	return "unknown"
}
