package index

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/storage"
)

func testCollection(t *testing.T) *collection.Collection {
	t.Helper()
	col, err := collection.Generate(collection.Config{
		NumDocs: 400, VocabSize: 8000, MeanDocLen: 120, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func newTestPool(t *testing.T) *storage.Pool {
	t.Helper()
	p, err := storage.NewPool(storage.NewDisk(), 4096)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildRoundTrip(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	// Every document's terms must be findable through the index with the
	// recorded TF.
	for i := range col.Docs {
		if i%37 != 0 {
			continue // sample for speed
		}
		d := &col.Docs[i]
		for _, tf := range d.Terms {
			ps, err := idx.Postings(tf.Term)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, p := range ps {
				if p.DocID == d.ID {
					if p.TF != uint32(tf.TF) {
						t.Fatalf("doc %d term %d: TF %d, want %d", d.ID, tf.Term, p.TF, tf.TF)
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %d missing from list of term %d", d.ID, tf.Term)
			}
		}
	}
}

func TestIndexDocFreqMatchesLexicon(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < col.Lex.Size(); id += 13 {
		term := lexicon.TermID(id)
		if got, want := idx.DocFreq(term), int(col.Lex.Stats(term).DocFreq); got != want {
			t.Fatalf("term %d: index df %d, lexicon df %d", id, got, want)
		}
	}
}

func TestIndexStats(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Stats.NumDocs != len(col.Docs) {
		t.Errorf("NumDocs = %d", idx.Stats.NumDocs)
	}
	if idx.Stats.AvgDocLen != col.AvgDocLen {
		t.Errorf("AvgDocLen = %v, want %v", idx.Stats.AvgDocLen, col.AvgDocLen)
	}
	for i := range col.Docs {
		if idx.Stats.DocLen(col.Docs[i].ID) != col.Docs[i].Len {
			t.Fatalf("doc %d length mismatch", i)
		}
	}
	if idx.Stats.DocLen(1<<30) != 0 {
		t.Error("out-of-range doc length should be 0")
	}
	if idx.TotalPostings() != col.Lex.TotalPostings() {
		t.Errorf("TotalPostings %d != lexicon %d", idx.TotalPostings(), col.Lex.TotalPostings())
	}
}

func TestReaderAbsentTerm(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	// Find a term with zero df (vocab is larger than what 400 docs use).
	for id := 0; id < col.Lex.Size(); id++ {
		if col.Lex.Stats(lexicon.TermID(id)).DocFreq == 0 {
			if _, ok, err := idx.Reader(lexicon.TermID(id)); ok || err != nil {
				t.Fatalf("absent term: ok=%v err=%v", ok, err)
			}
			return
		}
	}
	t.Skip("no unused term found")
}

func TestCompressionEffective(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	bytesPerPosting := float64(idx.SizeBytes()) / float64(idx.TotalPostings())
	if bytesPerPosting > 4 {
		t.Errorf("%.2f bytes/posting; v-byte should stay well under 4", bytesPerPosting)
	}
}

func TestBuildFragmentedPartition(t *testing.T) {
	col := testCollection(t)
	fx, err := BuildFragmented(col, newTestPool(t), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Partition: every indexed term in exactly one fragment.
	for id := 0; id < col.Lex.Size(); id++ {
		term := lexicon.TermID(id)
		df := int(col.Lex.Stats(term).DocFreq)
		inSmall, inLarge := fx.Small.Has(term), fx.Large.Has(term)
		if df == 0 {
			if inSmall || inLarge {
				t.Fatalf("term %d has no postings but is in a fragment", id)
			}
			continue
		}
		if inSmall == inLarge {
			t.Fatalf("term %d: small=%v large=%v, want exactly one", id, inSmall, inLarge)
		}
		if fx.DocFreq(term) != df {
			t.Fatalf("term %d: fragmented df %d, want %d", id, fx.DocFreq(term), df)
		}
		// Membership must follow the (df, id) fragmentation predicate.
		if inSmall != fx.inSmall(term, int32(df)) {
			t.Fatalf("term %d with df %d: membership contradicts predicate", id, df)
		}
	}
	// Volumes add up.
	if fx.Small.TotalPostings()+fx.Large.TotalPostings() != col.Lex.TotalPostings() {
		t.Error("fragment postings do not sum to the unfragmented total")
	}
}

func TestFragmentedVolumeTarget(t *testing.T) {
	col := testCollection(t)
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20} {
		fx, err := BuildFragmented(col, newTestPool(t), frac)
		if err != nil {
			t.Fatal(err)
		}
		got := fx.SmallFraction()
		// The realized fraction undershoots by at most one term's postings
		// (we stop before exceeding the budget), so it must sit just below
		// the target.
		if got > frac+1e-9 {
			t.Errorf("frac %v: realized %v exceeds target", frac, got)
		}
		if got < 0.9*frac {
			t.Errorf("frac %v: realized %v is far below target", frac, got)
		}
	}
}

// TestFragmentedPaperShape verifies the headline physical claim: at the 5%
// volume point, the small fragment holds the majority of the distinct
// terms (the paper: "the 95% most interesting terms"). At this unit-test
// scale (400 docs) the hapax group alone exceeds the volume budget, so the
// share is around one half; the experiment-scale run in the bench harness
// reaches the paper's ~95%.
func TestFragmentedPaperShape(t *testing.T) {
	col := testCollection(t)
	fx, err := BuildFragmented(col, newTestPool(t), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	totalTerms := fx.Small.NumTerms() + fx.Large.NumTerms()
	termShare := float64(fx.Small.NumTerms()) / float64(totalTerms)
	if termShare < 0.45 {
		t.Errorf("small fragment holds %.1f%% of terms; expected at least the hapax mass", 100*termShare)
	}
	if fx.SmallFraction() > 0.05 {
		t.Errorf("small fragment volume %.3f exceeds 5%% target", fx.SmallFraction())
	}
}

func TestFragmentedExtremes(t *testing.T) {
	col := testCollection(t)
	zero, err := BuildFragmented(col, newTestPool(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Small.NumTerms() != 0 {
		t.Error("frac 0 should put everything in the large fragment")
	}
	one, err := BuildFragmented(col, newTestPool(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Large.NumTerms() != 0 {
		t.Error("frac 1 should put everything in the small fragment")
	}
	if _, err := BuildFragmented(col, newTestPool(t), -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := BuildFragmented(col, newTestPool(t), 1.1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestFragmentedReadersAgreeWithUnfragmented(t *testing.T) {
	col := testCollection(t)
	idx, err := Build(col, newTestPool(t))
	if err != nil {
		t.Fatal(err)
	}
	fx, err := BuildFragmented(col, newTestPool(t), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < col.Lex.Size(); id += 7 {
		term := lexicon.TermID(id)
		want, err := idx.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		frag := fx.FragmentOf(term)
		if frag == nil {
			if want != nil {
				t.Fatalf("term %d present unfragmented but in no fragment", id)
			}
			continue
		}
		got, err := frag.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("term %d: fragment list length %d, want %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("term %d posting %d differs", id, i)
			}
		}
	}
}

func TestResetCounters(t *testing.T) {
	col := testCollection(t)
	fx, err := BuildFragmented(col, newTestPool(t), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Touch a list in each fragment, then reset.
	for id := 0; id < col.Lex.Size(); id++ {
		term := lexicon.TermID(id)
		if f := fx.FragmentOf(term); f != nil {
			if _, err := f.Postings(term); err != nil {
				t.Fatal(err)
			}
		}
	}
	fx.ResetCounters()
	if fx.Small.Counters().PostingsDecoded != 0 || fx.Large.Counters().PostingsDecoded != 0 {
		t.Error("counters not reset")
	}
}
