package index

import (
	"testing"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
)

// splitCollection cuts col into contiguous document-range parts with
// local ids, sharing the lexicon (the live layer's seal shape).
func splitCollection(col *collection.Collection, cuts ...int) []*collection.Collection {
	var parts []*collection.Collection
	prev := 0
	bounds := append(append([]int{}, cuts...), len(col.Docs))
	for _, hi := range bounds {
		docs := make([]collection.Document, hi-prev)
		var tokens int64
		for i := range docs {
			d := col.Docs[prev+i]
			d.ID = uint32(i)
			docs[i] = d
			tokens += int64(d.Len)
		}
		part := &collection.Collection{Docs: docs, Lex: col.Lex, TotalTokens: tokens}
		if len(docs) > 0 {
			part.AvgDocLen = float64(tokens) / float64(len(docs))
		}
		parts = append(parts, part)
		prev = hi
	}
	return parts
}

// TestMergeMatchesOneShot: merging adjacent document-range indexes must
// reproduce a one-shot build over the concatenated documents exactly —
// postings, metadata, statistics, and encoded bytes.
func TestMergeMatchesOneShot(t *testing.T) {
	col, err := collection.Generate(collection.Config{NumDocs: 240, VocabSize: 3000, MeanDocLen: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	parts := splitCollection(col, 70, 150)
	inputs := make([]*Index, len(parts))
	for i, p := range parts {
		if inputs[i], err = Build(p, pool); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(inputs, nil, col.Lex, pool)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}

	if merged.Stats.NumDocs != oneShot.Stats.NumDocs ||
		merged.Stats.TotalTokens != oneShot.Stats.TotalTokens ||
		merged.Stats.AvgDocLen != oneShot.Stats.AvgDocLen {
		t.Fatalf("stats diverge: %+v vs %+v", merged.Stats, oneShot.Stats)
	}
	for i, dl := range oneShot.Stats.DocLens {
		if merged.Stats.DocLens[i] != dl {
			t.Fatalf("doc %d length %d, want %d", i, merged.Stats.DocLens[i], dl)
		}
	}
	if merged.SizeBytes() != oneShot.SizeBytes() {
		t.Fatalf("compressed size %d, want %d", merged.SizeBytes(), oneShot.SizeBytes())
	}
	if merged.TotalPostings() != oneShot.TotalPostings() {
		t.Fatalf("postings %d, want %d", merged.TotalPostings(), oneShot.TotalPostings())
	}
	for id := 0; id < col.Lex.Size(); id++ {
		term := lexicon.TermID(id)
		if merged.DocFreq(term) != oneShot.DocFreq(term) || merged.MaxTF(term) != oneShot.MaxTF(term) {
			t.Fatalf("term %d meta diverges: df %d/%d maxTF %d/%d", id,
				merged.DocFreq(term), oneShot.DocFreq(term), merged.MaxTF(term), oneShot.MaxTF(term))
		}
		if merged.DocFreq(term) == 0 {
			continue
		}
		a, err := merged.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oneShot.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("term %d: %d postings, want %d", id, len(a), len(b))
		}
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("term %d posting %d: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

// TestMergeValidation: degenerate inputs fail cleanly.
func TestMergeValidation(t *testing.T) {
	col, err := collection.Generate(collection.Config{NumDocs: 20, VocabSize: 200, MeanDocLen: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(nil, nil, col.Lex, pool); err == nil {
		t.Fatal("zero-input merge accepted")
	}
	if _, err := Merge([]*Index{idx, nil}, nil, col.Lex, pool); err == nil {
		t.Fatal("nil input accepted")
	}
	small := lexicon.New()
	if _, err := Merge([]*Index{idx, idx}, nil, small, pool); err == nil {
		t.Fatal("undersized lexicon accepted")
	}
	if _, err := Merge([]*Index{idx, idx}, make([]*postings.AliveBitmap, 1), col.Lex, pool); err == nil {
		t.Fatal("bitmap count mismatch accepted")
	}
	if _, err := Merge([]*Index{idx}, []*postings.AliveBitmap{postings.NewAliveBitmap(3)}, col.Lex, pool); err == nil {
		t.Fatal("undersized bitmap accepted")
	}
}

// TestMergePurge: merging with alive bitmaps must drop tombstoned
// documents' postings and zero their lengths while keeping every
// surviving document's id — byte-identical to a one-shot build over the
// same collection with the dead documents replaced by empty slots.
func TestMergePurge(t *testing.T) {
	col, err := collection.Generate(collection.Config{NumDocs: 240, VocabSize: 3000, MeanDocLen: 60, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	parts := splitCollection(col, 70, 150)
	inputs := make([]*Index, len(parts))
	for i, p := range parts {
		if inputs[i], err = Build(p, pool); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone a deterministic scatter of documents, including a run at
	// a part boundary; part 1 keeps everything (nil bitmap allowed).
	alives := make([]*postings.AliveBitmap, len(parts))
	holed := *col
	holed.Docs = append([]collection.Document(nil), col.Docs...)
	killGlobal := func(g uint32) {
		d := collection.Document{ID: holed.Docs[g].ID}
		holed.TotalTokens -= int64(holed.Docs[g].Len)
		holed.Docs[g] = d
	}
	offsets := []uint32{0, 70, 150}
	for pi, kills := range [][]uint32{{0, 3, 17, 68, 69}, nil, {0, 1, 2, 44, 89}} {
		if kills == nil {
			continue
		}
		alives[pi] = postings.NewAliveBitmap(len(parts[pi].Docs))
		for _, local := range kills {
			alives[pi].Kill(local)
			killGlobal(offsets[pi] + local)
		}
	}
	holed.AvgDocLen = float64(holed.TotalTokens) / float64(len(holed.Docs))

	merged, err := Merge(inputs, alives, col.Lex, pool)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Build(&holed, pool)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Stats.NumDocs != oneShot.Stats.NumDocs ||
		merged.Stats.TotalTokens != oneShot.Stats.TotalTokens ||
		merged.Stats.AvgDocLen != oneShot.Stats.AvgDocLen {
		t.Fatalf("stats diverge: %+v vs %+v", merged.Stats, oneShot.Stats)
	}
	for i, dl := range oneShot.Stats.DocLens {
		if merged.Stats.DocLens[i] != dl {
			t.Fatalf("doc %d length %d, want %d", i, merged.Stats.DocLens[i], dl)
		}
	}
	if merged.SizeBytes() != oneShot.SizeBytes() {
		t.Fatalf("compressed size %d, want %d (purge must reclaim dead postings)", merged.SizeBytes(), oneShot.SizeBytes())
	}
	for id := 0; id < col.Lex.Size(); id++ {
		term := lexicon.TermID(id)
		if merged.DocFreq(term) != oneShot.DocFreq(term) || merged.MaxTF(term) != oneShot.MaxTF(term) {
			t.Fatalf("term %d meta diverges: df %d/%d maxTF %d/%d", id,
				merged.DocFreq(term), oneShot.DocFreq(term), merged.MaxTF(term), oneShot.MaxTF(term))
		}
		a, err := merged.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		b, err := oneShot.Postings(term)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("term %d: %d postings, want %d", id, len(a), len(b))
		}
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("term %d posting %d: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

// TestWithLexicon: the statistics-override view shares postings but
// reads term stats from the extension; non-extensions are rejected.
func TestWithLexicon(t *testing.T) {
	col, err := collection.Generate(collection.Config{NumDocs: 30, VocabSize: 300, MeanDocLen: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(col, pool)
	if err != nil {
		t.Fatal(err)
	}
	ext := col.Lex.Clone()
	extra := ext.Intern("brand-new-term")
	if err := ext.Record(extra, 3); err != nil {
		t.Fatal(err)
	}
	view, err := idx.WithLexicon(ext)
	if err != nil {
		t.Fatal(err)
	}
	if view.Lex != ext {
		t.Fatal("view does not read the extension lexicon")
	}
	if _, ok, err := view.Reader(extra); err != nil || ok {
		t.Fatalf("term beyond the segment's meta table must read as absent (ok=%v err=%v)", ok, err)
	}
	if view.TotalPostings() != idx.TotalPostings() {
		t.Fatal("view does not share the postings")
	}
	if _, err := idx.WithLexicon(nil); err == nil {
		t.Fatal("nil lexicon accepted")
	}
	foreign := lexicon.New()
	foreign.Intern("zzz")
	if _, err := idx.WithLexicon(foreign); err == nil {
		t.Fatal("non-extension lexicon accepted")
	}
}
