package index

import (
	"testing"
	"testing/quick"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/storage"
	"repro/internal/xrand"
)

// TestFragmentationInvariantsProperty drives BuildFragmented over random
// collections and fractions, asserting the structural invariants that
// every experiment relies on: exact partition, volume within target, and
// content equality with the unfragmented index.
func TestFragmentationInvariantsProperty(t *testing.T) {
	rng := xrand.New(303)
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(func(seedRaw uint16, fracRaw uint8) bool {
		col, err := collection.Generate(collection.Config{
			NumDocs:    100 + rng.Intn(200),
			VocabSize:  2000 + rng.Intn(4000),
			MeanDocLen: 60,
			Seed:       uint64(seedRaw) + 1,
		})
		if err != nil {
			return false
		}
		frac := float64(fracRaw%90+5) / 100 // 5%..94%
		pool, err := storage.NewPool(storage.NewDisk(), 1<<13)
		if err != nil {
			return false
		}
		fx, err := BuildFragmented(col, pool, frac)
		if err != nil {
			return false
		}
		// Partition + volume.
		if fx.Small.TotalPostings()+fx.Large.TotalPostings() != col.Lex.TotalPostings() {
			return false
		}
		if fx.SmallFraction() > frac+1e-9 {
			return false
		}
		// Spot-check content equality on a sample of terms.
		for trial := 0; trial < 30; trial++ {
			term := lexicon.TermID(rng.Intn(col.Lex.Size()))
			df := int(col.Lex.Stats(term).DocFreq)
			frag := fx.FragmentOf(term)
			if df == 0 {
				if frag != nil {
					return false
				}
				continue
			}
			if frag == nil || frag.DocFreq(term) != df {
				return false
			}
			ps, err := frag.Postings(term)
			if err != nil || len(ps) != df {
				return false
			}
			// Doc ids strictly ascending, TFs positive.
			for i, p := range ps {
				if p.TF == 0 || (i > 0 && ps[i].DocID <= ps[i-1].DocID) {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMultiChainInvariantsProperty does the same for fragment chains.
func TestMultiChainInvariantsProperty(t *testing.T) {
	rng := xrand.New(304)
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(func(seedRaw uint16) bool {
		col, err := collection.Generate(collection.Config{
			NumDocs:    150,
			VocabSize:  4000,
			MeanDocLen: 60,
			Seed:       uint64(seedRaw) + 1,
		})
		if err != nil {
			return false
		}
		pool, err := storage.NewPool(storage.NewDisk(), 1<<13)
		if err != nil {
			return false
		}
		// Random increasing cuts.
		a := 0.02 + 0.2*rng.Float64()
		b := a + 0.05 + 0.3*rng.Float64()
		if b >= 1 {
			b = 0.95
		}
		mx, err := BuildMulti(col, pool, []float64{a, b})
		if err != nil {
			return false
		}
		if mx.TotalPostings() != col.Lex.TotalPostings() {
			return false
		}
		// Every indexed term in exactly one fragment, df consistent.
		for id := 0; id < col.Lex.Size(); id += 17 {
			term := lexicon.TermID(id)
			df := int(col.Lex.Stats(term).DocFreq)
			fi := mx.FragmentIndexOf(term)
			if df == 0 {
				if fi != -1 {
					return false
				}
				continue
			}
			if fi < 0 || fi >= len(mx.Fragments) {
				return false
			}
			count := 0
			for _, f := range mx.Fragments {
				if f.Has(term) {
					count++
				}
			}
			if count != 1 || mx.DocFreq(term) != df {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
