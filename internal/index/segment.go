// On-disk segment format and lifecycle. A segment is one file laid out
// in storage.PageSize pages so a buffer pool can serve it page by page:
//
//	page 0:            superblock — magic, version, page size, index
//	                   flavor (plain / fragmented / multi), fragmentation
//	                   parameters, and the section directory (kind,
//	                   fragment, start page, byte length, CRC-32 per
//	                   section), closed by a CRC-32 of the superblock
//	                   bytes themselves
//	pages 1..:         sections, each starting on a page boundary and
//	                   zero-padded to one:
//	                     LEXICON    term strings + per-term statistics
//	                     STATS      corpus statistics + document lengths
//	                     per fragment, in chain order:
//	                       META       per-term list metadata — body
//	                                  offset/length, document frequency,
//	                                  list max TF, and the full block skip
//	                                  index (first/last doc, offset,
//	                                  count, block max TF)
//	                     POSTINGS   the fragment's encoded block-max
//	                                postings bodies, byte-for-byte as the
//	                                build-time store laid them out
//
// Persist writes the segment atomically (temp file + rename, fsync'd).
// Open replays the metadata sections into memory, verifies every
// section's checksum — any flipped bit or truncation fails Open with a
// clear error instead of surfacing as garbage results — and serves the
// postings sections lazily through the caller's buffer pool: iterators
// fault individual blocks in via postings.PagedSource, so the pool
// capacity, not the index size, bounds resident memory. Integer fields
// are uvarint-coded in sections and fixed-width little-endian in the
// superblock.
package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
)

// SegmentFile is the name of the segment file inside a segment directory.
const SegmentFile = "segment.topn"

// SegmentPath returns the path of the segment file under dir.
func SegmentPath(dir string) string { return filepath.Join(dir, SegmentFile) }

const (
	segVersion = 1

	flavorPlain      = 1
	flavorFragmented = 2
	flavorMulti      = 3

	secLexicon  = 1
	secStats    = 2
	secMeta     = 3
	secPostings = 4
	// secFragMap persists MultiFragmented's term→fragment assignment. It
	// is not derivable from the meta sections: a sharded build assigns
	// every globally occurring term a fragment even when the shard's
	// document range never materializes a list for it, and engines rely
	// on that assignment (multi flavor only).
	secFragMap = 5
)

var segMagic = [8]byte{'T', 'O', 'P', 'N', 'S', 'E', 'G', '1'}

// section is one directory entry of the superblock.
type section struct {
	kind      uint32
	frag      uint32 // fragment ordinal for META/POSTINGS; 0 otherwise
	startPage storage.PageID
	length    int64
	crc       uint32
}

// superblock is the parsed page-0 header.
type superblock struct {
	flavor      uint32
	dfThreshold int32
	boundaryID  uint32
	numFrags    int
	sections    []section
}

// pagesFor returns how many pages n bytes occupy once zero-padded.
func pagesFor(n int64) int64 {
	return (n + storage.PageSize - 1) / storage.PageSize
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

// segWriter appends page-aligned sections to a segment file whose first
// page is reserved for the superblock.
type segWriter struct {
	f        *os.File
	nextPage int64 // 0-based page index of the next section start
	sections []section
}

// addSection streams length bytes from r into the file as one section,
// computing its checksum and padding to a page boundary.
func (w *segWriter) addSection(kind, frag uint32, r io.Reader, length int64) error {
	crc := crc32.NewIEEE()
	n, err := io.Copy(w.f, io.TeeReader(io.LimitReader(r, length), crc))
	if err != nil {
		return fmt.Errorf("index: write section: %w", err)
	}
	if n != length {
		return fmt.Errorf("index: section produced %d bytes, expected %d", n, length)
	}
	if pad := length % storage.PageSize; pad != 0 {
		if _, err := w.f.Write(make([]byte, storage.PageSize-pad)); err != nil {
			return fmt.Errorf("index: pad section: %w", err)
		}
	}
	w.sections = append(w.sections, section{
		kind:      kind,
		frag:      frag,
		startPage: storage.PageID(w.nextPage + 1), // page ids are 1-based
		length:    length,
		crc:       crc.Sum32(),
	})
	w.nextPage += pagesFor(length)
	return nil
}

// addBytes writes an in-memory section payload.
func (w *segWriter) addBytes(kind, frag uint32, payload []byte) error {
	return w.addSection(kind, frag, bytes.NewReader(payload), int64(len(payload)))
}

// encodeSuperblock serializes the superblock into one page.
func encodeSuperblock(sb superblock, sections []section) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(segMagic[:])
	for _, v := range []uint32{
		segVersion,
		storage.PageSize,
		sb.flavor,
		uint32(sb.dfThreshold),
		sb.boundaryID,
		uint32(sb.numFrags),
		uint32(len(sections)),
	} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	for _, s := range sections {
		for _, v := range []uint32{s.kind, s.frag, uint32(s.startPage)} {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				return nil, err
			}
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(s.length)); err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, s.crc); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(buf.Bytes())); err != nil {
		return nil, err
	}
	if buf.Len() > storage.PageSize {
		return nil, fmt.Errorf("index: superblock needs %d bytes, exceeds one %d-byte page (too many fragments)",
			buf.Len(), storage.PageSize)
	}
	page := make([]byte, storage.PageSize)
	copy(page, buf.Bytes())
	return page, nil
}

// fragPayload is one fragment's persistable content: its term metadata in
// ascending term order and the store holding the encoded bodies.
type fragPayload struct {
	terms []lexicon.TermID
	metas []postings.ListMeta
	store *postings.Store
}

// persistSegment writes a whole segment atomically into dir. fragMap is
// the encoded term→fragment assignment (multi flavor only; nil to omit).
func persistSegment(dir string, sb superblock, lex *lexicon.Lexicon, stats *Stats, frags []fragPayload, fragMap []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("index: persist: %w", err)
	}
	tmp := SegmentPath(dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("index: persist: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	// Reserve page 0 for the superblock.
	if _, err := f.Write(make([]byte, storage.PageSize)); err != nil {
		return fmt.Errorf("index: persist: %w", err)
	}
	w := &segWriter{f: f, nextPage: 1}

	if err := w.addBytes(secLexicon, 0, encodeLexicon(lex)); err != nil {
		return err
	}
	if err := w.addBytes(secStats, 0, encodeStats(stats)); err != nil {
		return err
	}
	if fragMap != nil {
		if err := w.addBytes(secFragMap, 0, fragMap); err != nil {
			return err
		}
	}
	for i, fp := range frags {
		if fp.store.Paged() {
			return fmt.Errorf("index: persist: fragment %d is already disk-backed", i)
		}
		if err := w.addBytes(secMeta, uint32(i), encodeMetas(fp.terms, fp.metas)); err != nil {
			return err
		}
		size := fp.store.Size()
		if err := w.addSection(secPostings, uint32(i), fp.store.File().Reader(0, -1), size); err != nil {
			return err
		}
	}

	sbPage, err := encodeSuperblock(sb, w.sections)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(sbPage, 0); err != nil {
		return fmt.Errorf("index: persist superblock: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("index: persist sync: %w", err)
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return fmt.Errorf("index: persist close: %w", err)
	}
	f = nil
	if err := os.Rename(tmp, SegmentPath(dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: persist rename: %w", err)
	}
	return nil
}

// putU appends a 64-bit uvarint.
func putU(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// encodeLexicon serializes the term dictionary with its statistics.
func encodeLexicon(lex *lexicon.Lexicon) []byte {
	buf := putU(nil, uint64(lex.Size()))
	for id := 0; id < lex.Size(); id++ {
		name := lex.Name(lexicon.TermID(id))
		st := lex.Stats(lexicon.TermID(id))
		buf = putU(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = putU(buf, uint64(st.DocFreq))
		buf = putU(buf, uint64(st.CollFreq))
	}
	return buf
}

// encodeStats serializes the corpus statistics and document lengths.
func encodeStats(s *Stats) []byte {
	buf := putU(nil, uint64(s.NumDocs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.AvgDocLen))
	buf = putU(buf, uint64(s.TotalTokens))
	buf = putU(buf, uint64(len(s.DocLens)))
	for _, dl := range s.DocLens {
		buf = putU(buf, uint64(dl))
	}
	return buf
}

// encodeMetas serializes one fragment's per-term list metadata, skip
// index included, in ascending term order (the caller guarantees terms
// is sorted — determinism of the on-disk bytes depends on it).
func encodeMetas(terms []lexicon.TermID, metas []postings.ListMeta) []byte {
	buf := putU(nil, uint64(len(terms)))
	for i, t := range terms {
		m := metas[i]
		buf = putU(buf, uint64(t))
		buf = putU(buf, uint64(m.Offset))
		buf = putU(buf, uint64(m.Length))
		buf = putU(buf, uint64(m.DocFreq))
		buf = putU(buf, uint64(m.MaxTF))
		buf = putU(buf, uint64(len(m.Skips)))
		for _, sk := range m.Skips {
			buf = putU(buf, uint64(sk.FirstDoc))
			buf = putU(buf, uint64(sk.LastDoc))
			buf = putU(buf, uint64(sk.Offset))
			buf = putU(buf, uint64(sk.Count))
			buf = putU(buf, uint64(sk.MaxTF))
		}
	}
	return buf
}

// Persist writes the unfragmented index as a segment into dir.
func (ix *Index) Persist(dir string) error {
	terms, metas := packMetaSlice(ix.metas)
	return persistSegment(dir,
		superblock{flavor: flavorPlain, numFrags: 1},
		ix.Lex, &ix.Stats,
		[]fragPayload{{terms: terms, metas: metas, store: ix.store}}, nil)
}

// Persist writes the two-fragment index as a segment into dir. The
// fragmentation predicate (DF threshold, boundary id) rides along in the
// superblock, so the reopened index answers Coverage and FragmentOf
// exactly as the built one.
func (fx *Fragmented) Persist(dir string) error {
	small := packMetaMap(fx.Small.metas)
	large := packMetaMap(fx.Large.metas)
	return persistSegment(dir,
		superblock{
			flavor:      flavorFragmented,
			dfThreshold: fx.DFThreshold,
			boundaryID:  uint32(fx.BoundaryID),
			numFrags:    2,
		},
		fx.Lex, &fx.Stats,
		[]fragPayload{
			{terms: small.terms, metas: small.metas, store: fx.Small.store},
			{terms: large.terms, metas: large.metas, store: fx.Large.store},
		}, nil)
}

// Persist writes the fragment chain as a segment into dir, one
// META/POSTINGS section pair per chain link in rarest-first order, plus
// the term→fragment assignment map.
func (mx *MultiFragmented) Persist(dir string) error {
	frags := make([]fragPayload, len(mx.Fragments))
	for i, f := range mx.Fragments {
		p := packMetaMap(f.metas)
		frags[i] = fragPayload{terms: p.terms, metas: p.metas, store: f.store}
	}
	return persistSegment(dir,
		superblock{flavor: flavorMulti, numFrags: len(mx.Fragments)},
		mx.Lex, &mx.Stats, frags, encodeFragMap(mx.fragOf))
}

// encodeFragMap serializes the term→fragment assignment, shifting by one
// so -1 (unassigned) encodes as 0.
func encodeFragMap(fragOf []int8) []byte {
	buf := putU(nil, uint64(len(fragOf)))
	for _, fi := range fragOf {
		buf = putU(buf, uint64(fi+1))
	}
	return buf
}

// decodeFragMap is the inverse of encodeFragMap.
func decodeFragMap(payload []byte, lexSize, numFrags int) ([]int8, error) {
	r := &segReader{b: payload}
	n, err := r.u()
	if err != nil {
		return nil, err
	}
	if n != uint64(lexSize) {
		return nil, fmt.Errorf("index: fragment map covers %d terms, lexicon has %d: corrupt segment", n, lexSize)
	}
	out := make([]int8, lexSize)
	for i := range out {
		v, err := r.u()
		if err != nil {
			return nil, err
		}
		if v > uint64(numFrags) {
			return nil, fmt.Errorf("index: term %d assigned to fragment %d of %d: corrupt segment", i, int64(v)-1, numFrags)
		}
		out[i] = int8(int64(v) - 1)
	}
	return out, nil
}

// packMetaSlice extracts the non-empty lists of a term-indexed meta
// slice, ascending by construction.
func packMetaSlice(all []postings.ListMeta) ([]lexicon.TermID, []postings.ListMeta) {
	var terms []lexicon.TermID
	var metas []postings.ListMeta
	for id, m := range all {
		if m.DocFreq > 0 {
			terms = append(terms, lexicon.TermID(id))
			metas = append(metas, m)
		}
	}
	return terms, metas
}

type packedMetas struct {
	terms []lexicon.TermID
	metas []postings.ListMeta
}

// packMetaMap sorts a fragment's meta map into ascending term order.
func packMetaMap(m map[lexicon.TermID]postings.ListMeta) packedMetas {
	terms := make([]lexicon.TermID, 0, len(m))
	for t := range m {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
	metas := make([]postings.ListMeta, len(terms))
	for i, t := range terms {
		metas[i] = m[t]
	}
	return packedMetas{terms: terms, metas: metas}
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

// OpenPool opens dir's segment file as a read-only page device with a
// buffer pool of poolPages frames over it — the working set a reopened
// index is allowed to keep resident. The caller owns both: close the
// FileDisk when done with every index opened over the pool.
func OpenPool(dir string, poolPages int) (*storage.Pool, *storage.FileDisk, error) {
	fd, err := storage.OpenFileDisk(SegmentPath(dir))
	if err != nil {
		return nil, nil, err
	}
	pool, err := storage.NewPool(fd, poolPages)
	if err != nil {
		fd.Close()
		return nil, nil, err
	}
	return pool, fd, nil
}

// fetchPage copies one page through the pool.
func fetchPage(pool *storage.Pool, id storage.PageID, buf *[storage.PageSize]byte) error {
	pg, err := pool.Fetch(id)
	if err != nil {
		return err
	}
	*buf = *pg.Data()
	return pool.Unpin(pg, false)
}

// readSuperblock fetches and validates page 0.
func readSuperblock(pool *storage.Pool) (superblock, error) {
	var page [storage.PageSize]byte
	if err := fetchPage(pool, 1, &page); err != nil {
		return superblock{}, fmt.Errorf("index: read superblock: %w", err)
	}
	if !bytes.Equal(page[:8], segMagic[:]) {
		return superblock{}, fmt.Errorf("index: bad magic %q: not a topn segment", page[:8])
	}
	r := bytes.NewReader(page[8:])
	var fixed [7]uint32
	for i := range fixed {
		if err := binary.Read(r, binary.LittleEndian, &fixed[i]); err != nil {
			return superblock{}, fmt.Errorf("index: truncated superblock: %w", err)
		}
	}
	version, pageSize := fixed[0], fixed[1]
	if version != segVersion {
		return superblock{}, fmt.Errorf("index: segment version %d, this build reads version %d", version, segVersion)
	}
	if pageSize != storage.PageSize {
		return superblock{}, fmt.Errorf("index: segment page size %d, this build uses %d", pageSize, storage.PageSize)
	}
	sb := superblock{
		flavor:      fixed[2],
		dfThreshold: int32(fixed[3]),
		boundaryID:  fixed[4],
		numFrags:    int(fixed[5]),
	}
	count := int(fixed[6])
	if count < 2 || count > (storage.PageSize-44)/24 {
		return superblock{}, fmt.Errorf("index: implausible section count %d: corrupt superblock", count)
	}
	for i := 0; i < count; i++ {
		var kind, frag, start uint32
		var length uint64
		var crc uint32
		for _, dst := range []interface{}{&kind, &frag, &start, &length, &crc} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return superblock{}, fmt.Errorf("index: truncated section directory: %w", err)
			}
		}
		sb.sections = append(sb.sections, section{
			kind:      kind,
			frag:      frag,
			startPage: storage.PageID(start),
			length:    int64(length),
			crc:       crc,
		})
	}
	used := int64(len(page)) - int64(r.Len())
	var stored uint32
	if err := binary.Read(r, binary.LittleEndian, &stored); err != nil {
		return superblock{}, fmt.Errorf("index: truncated superblock checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(page[:used]); got != stored {
		return superblock{}, fmt.Errorf("index: superblock checksum mismatch (%08x != %08x): corrupt segment", got, stored)
	}
	return sb, nil
}

// readSection materializes one section's bytes through the pool and
// verifies its checksum.
func readSection(pool *storage.Pool, s section) ([]byte, error) {
	out := make([]byte, s.length)
	var page [storage.PageSize]byte
	for i := int64(0); i < pagesFor(s.length); i++ {
		if err := fetchPage(pool, s.startPage+storage.PageID(i), &page); err != nil {
			return nil, fmt.Errorf("index: section page %d: %w", s.startPage+storage.PageID(i), err)
		}
		copy(out[i*storage.PageSize:], page[:])
	}
	if got := crc32.ChecksumIEEE(out); got != s.crc {
		return nil, fmt.Errorf("index: section checksum mismatch (%08x != %08x): corrupt segment", got, s.crc)
	}
	return out, nil
}

// verifySection streams a section through the pool checking its checksum
// without materializing it — used for postings sections, which stay
// disk-resident after Open.
func verifySection(pool *storage.Pool, s section) error {
	crc := crc32.NewIEEE()
	var page [storage.PageSize]byte
	remaining := s.length
	for i := int64(0); remaining > 0; i++ {
		if err := fetchPage(pool, s.startPage+storage.PageID(i), &page); err != nil {
			return fmt.Errorf("index: section page %d: %w", s.startPage+storage.PageID(i), err)
		}
		n := int64(storage.PageSize)
		if n > remaining {
			n = remaining
		}
		crc.Write(page[:n])
		remaining -= n
	}
	if got := crc.Sum32(); got != s.crc {
		return fmt.Errorf("index: postings section checksum mismatch (%08x != %08x): corrupt segment", got, s.crc)
	}
	return nil
}

// segReader decodes uvarint-coded section payloads.
type segReader struct {
	b   []byte
	pos int
}

func (r *segReader) u() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("index: truncated section payload at byte %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *segReader) take(n int) ([]byte, error) {
	if n < 0 || r.pos > len(r.b)-n {
		return nil, fmt.Errorf("index: truncated section payload at byte %d", r.pos)
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

// decodeLexicon is the inverse of encodeLexicon.
func decodeLexicon(payload []byte) (*lexicon.Lexicon, error) {
	r := &segReader{b: payload}
	n, err := r.u()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("index: lexicon claims %d terms in %d bytes: corrupt segment", n, len(payload))
	}
	names := make([]string, n)
	stats := make([]lexicon.Stats, n)
	for i := range names {
		nl, err := r.u()
		if err != nil {
			return nil, err
		}
		nb, err := r.take(int(nl))
		if err != nil {
			return nil, err
		}
		names[i] = string(nb)
		df, err := r.u()
		if err != nil {
			return nil, err
		}
		cf, err := r.u()
		if err != nil {
			return nil, err
		}
		stats[i] = lexicon.Stats{DocFreq: int32(df), CollFreq: int64(cf)}
	}
	return lexicon.Restore(names, stats)
}

// decodeStats is the inverse of encodeStats.
func decodeStats(payload []byte) (Stats, error) {
	r := &segReader{b: payload}
	var s Stats
	nd, err := r.u()
	if err != nil {
		return s, err
	}
	s.NumDocs = int(nd)
	ab, err := r.take(8)
	if err != nil {
		return s, err
	}
	s.AvgDocLen = math.Float64frombits(binary.LittleEndian.Uint64(ab))
	tt, err := r.u()
	if err != nil {
		return s, err
	}
	s.TotalTokens = int64(tt)
	n, err := r.u()
	if err != nil {
		return s, err
	}
	if n > uint64(len(payload)) {
		return s, fmt.Errorf("index: stats claim %d doc lengths in %d bytes: corrupt segment", n, len(payload))
	}
	s.DocLens = make([]int32, n)
	for i := range s.DocLens {
		dl, err := r.u()
		if err != nil {
			return s, err
		}
		s.DocLens[i] = int32(dl)
	}
	return s, nil
}

// decodeMetas is the inverse of encodeMetas. bodySize is the fragment's
// postings-section length, used to reject metadata pointing outside it.
func decodeMetas(payload []byte, lexSize int, bodySize int64) (packedMetas, error) {
	r := &segReader{b: payload}
	var p packedMetas
	n, err := r.u()
	if err != nil {
		return p, err
	}
	if n > uint64(len(payload)) {
		return p, fmt.Errorf("index: meta section claims %d lists in %d bytes: corrupt segment", n, len(payload))
	}
	p.terms = make([]lexicon.TermID, 0, n)
	p.metas = make([]postings.ListMeta, 0, n)
	prevTerm := int64(-1)
	for i := uint64(0); i < n; i++ {
		vals := make([]uint64, 6)
		for j := range vals {
			if vals[j], err = r.u(); err != nil {
				return p, err
			}
		}
		term, off, length, df, maxTF, numSkips := vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
		if int64(term) <= prevTerm || term >= uint64(lexSize) {
			return p, fmt.Errorf("index: meta term id %d out of order or range: corrupt segment", term)
		}
		prevTerm = int64(term)
		if int64(off) > bodySize-int64(length) {
			return p, fmt.Errorf("index: term %d body [%d,+%d) outside %d-byte postings section: corrupt segment",
				term, off, length, bodySize)
		}
		m := postings.ListMeta{
			Offset:  int64(off),
			Length:  int32(length),
			DocFreq: int32(df),
			MaxTF:   uint32(maxTF),
		}
		if numSkips > uint64(len(payload)) {
			return p, fmt.Errorf("index: term %d claims %d blocks in %d bytes: corrupt segment", term, numSkips, len(payload))
		}
		m.Skips = make([]postings.SkipEntry, numSkips)
		for k := range m.Skips {
			sv := make([]uint64, 5)
			for j := range sv {
				if sv[j], err = r.u(); err != nil {
					return p, err
				}
			}
			m.Skips[k] = postings.SkipEntry{
				FirstDoc: uint32(sv[0]),
				LastDoc:  uint32(sv[1]),
				Offset:   uint32(sv[2]),
				Count:    int32(sv[3]),
				MaxTF:    uint32(sv[4]),
			}
		}
		p.terms = append(p.terms, lexicon.TermID(term))
		p.metas = append(p.metas, m)
	}
	return p, nil
}

// openedSegment bundles everything the flavor-specific Open functions
// assemble their index from.
type openedSegment struct {
	sb      superblock
	lex     *lexicon.Lexicon
	stats   Stats
	frags   []openedFrag
	fragMap []int8 // multi flavor only
}

type openedFrag struct {
	packed packedMetas
	store  *postings.Store
}

// openSegment reads and verifies a whole segment through pool: metadata
// sections are materialized, postings sections are checksum-verified in
// a streaming pass and then served lazily via paged stores.
func openSegment(dir string, pool *storage.Pool) (*openedSegment, error) {
	if pool == nil {
		return nil, fmt.Errorf("index: open %s: nil pool (open one with index.OpenPool)", dir)
	}
	sb, err := readSuperblock(pool)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", dir, err)
	}
	var lexSec, statsSec, fragMapSec *section
	metaSecs := make(map[uint32]*section)
	postSecs := make(map[uint32]*section)
	for i := range sb.sections {
		s := &sb.sections[i]
		switch s.kind {
		case secLexicon:
			lexSec = s
		case secStats:
			statsSec = s
		case secFragMap:
			fragMapSec = s
		case secMeta:
			metaSecs[s.frag] = s
		case secPostings:
			postSecs[s.frag] = s
		default:
			return nil, fmt.Errorf("index: open %s: unknown section kind %d: corrupt segment", dir, s.kind)
		}
	}
	if lexSec == nil || statsSec == nil {
		return nil, fmt.Errorf("index: open %s: missing lexicon or stats section: corrupt segment", dir)
	}
	if sb.numFrags < 1 || len(metaSecs) != sb.numFrags || len(postSecs) != sb.numFrags {
		return nil, fmt.Errorf("index: open %s: %d fragments but %d meta / %d postings sections: corrupt segment",
			dir, sb.numFrags, len(metaSecs), len(postSecs))
	}

	lexBytes, err := readSection(pool, *lexSec)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: lexicon: %w", dir, err)
	}
	lex, err := decodeLexicon(lexBytes)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: lexicon: %w", dir, err)
	}
	statsBytes, err := readSection(pool, *statsSec)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: stats: %w", dir, err)
	}
	stats, err := decodeStats(statsBytes)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: stats: %w", dir, err)
	}

	out := &openedSegment{sb: sb, lex: lex, stats: stats}
	if sb.flavor == flavorMulti {
		if fragMapSec == nil {
			return nil, fmt.Errorf("index: open %s: fragment chain lacks its term→fragment map: corrupt segment", dir)
		}
		fmBytes, err := readSection(pool, *fragMapSec)
		if err != nil {
			return nil, fmt.Errorf("index: open %s: fragment map: %w", dir, err)
		}
		if out.fragMap, err = decodeFragMap(fmBytes, lex.Size(), sb.numFrags); err != nil {
			return nil, fmt.Errorf("index: open %s: fragment map: %w", dir, err)
		}
	}
	for i := 0; i < sb.numFrags; i++ {
		ms, ok1 := metaSecs[uint32(i)]
		ps, ok2 := postSecs[uint32(i)]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("index: open %s: fragment %d sections missing: corrupt segment", dir, i)
		}
		metaBytes, err := readSection(pool, *ms)
		if err != nil {
			return nil, fmt.Errorf("index: open %s: fragment %d meta: %w", dir, i, err)
		}
		packed, err := decodeMetas(metaBytes, lex.Size(), ps.length)
		if err != nil {
			return nil, fmt.Errorf("index: open %s: fragment %d meta: %w", dir, i, err)
		}
		if err := verifySection(pool, *ps); err != nil {
			return nil, fmt.Errorf("index: open %s: fragment %d postings: %w", dir, i, err)
		}
		store, err := postings.NewPagedStore(pool, ps.startPage, ps.length)
		if err != nil {
			return nil, fmt.Errorf("index: open %s: fragment %d: %w", dir, i, err)
		}
		out.frags = append(out.frags, openedFrag{packed: packed, store: store})
	}
	return out, nil
}

// Open reopens an unfragmented index persisted with (*Index).Persist.
// The pool must come from index.OpenPool (or an equivalent FileDisk over
// the segment file): postings stay disk-resident and are faulted in
// block by block through it, so the pool capacity bounds the index's
// resident working set. The returned Index serves every engine exactly
// like its built counterpart — byte-identical results, the same
// decode/skip accounting, plus block-fault and pool hit/miss counters.
func Open(dir string, pool *storage.Pool) (*Index, error) {
	seg, err := openSegment(dir, pool)
	if err != nil {
		return nil, err
	}
	if seg.sb.flavor != flavorPlain {
		return nil, fmt.Errorf("index: open %s: segment holds flavor %d, want an unfragmented index (use OpenFragmented/OpenMulti)",
			dir, seg.sb.flavor)
	}
	ix := &Index{
		Lex:   seg.lex,
		Stats: seg.stats,
		store: seg.frags[0].store,
		metas: make([]postings.ListMeta, seg.lex.Size()),
	}
	for i, t := range seg.frags[0].packed.terms {
		ix.metas[t] = seg.frags[0].packed.metas[i]
	}
	return ix, nil
}

// OpenFragmented reopens a two-fragment index persisted with
// (*Fragmented).Persist. See Open for the pool contract.
func OpenFragmented(dir string, pool *storage.Pool) (*Fragmented, error) {
	seg, err := openSegment(dir, pool)
	if err != nil {
		return nil, err
	}
	if seg.sb.flavor != flavorFragmented || len(seg.frags) != 2 {
		return nil, fmt.Errorf("index: open %s: segment does not hold a two-fragment index (flavor %d, %d fragments)",
			dir, seg.sb.flavor, len(seg.frags))
	}
	fx := &Fragmented{
		Lex:         seg.lex,
		Stats:       seg.stats,
		DFThreshold: seg.sb.dfThreshold,
		BoundaryID:  lexicon.TermID(seg.sb.boundaryID),
	}
	fx.Small = restoreFragment(seg.frags[0])
	fx.Large = restoreFragment(seg.frags[1])
	return fx, nil
}

// OpenMulti reopens a fragment chain persisted with
// (*MultiFragmented).Persist. See Open for the pool contract.
func OpenMulti(dir string, pool *storage.Pool) (*MultiFragmented, error) {
	seg, err := openSegment(dir, pool)
	if err != nil {
		return nil, err
	}
	if seg.sb.flavor != flavorMulti {
		return nil, fmt.Errorf("index: open %s: segment does not hold a fragment chain (flavor %d)", dir, seg.sb.flavor)
	}
	mx := &MultiFragmented{
		Lex:    seg.lex,
		Stats:  seg.stats,
		fragOf: seg.fragMap,
	}
	for fi, of := range seg.frags {
		f := restoreFragment(of)
		mx.Fragments = append(mx.Fragments, f)
		// Every materialized list must agree with the persisted map.
		for _, t := range of.packed.terms {
			if mx.fragOf[t] != int8(fi) {
				return nil, fmt.Errorf("index: open %s: term %d materialized in fragment %d but mapped to %d: corrupt segment",
					dir, t, fi, mx.fragOf[t])
			}
		}
	}
	return mx, nil
}

// restoreFragment rebuilds a Fragment over a paged store.
func restoreFragment(of openedFrag) *Fragment {
	f := &Fragment{
		store: of.store,
		metas: make(map[lexicon.TermID]postings.ListMeta, len(of.packed.terms)),
	}
	for i, t := range of.packed.terms {
		f.metas[t] = of.packed.metas[i]
		f.postings += int64(of.packed.metas[i].DocFreq)
	}
	return f
}
