package index

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/storage"
)

// segmentSeedBytes builds a small valid segment and returns its raw
// file bytes — the fuzz corpus seed mutations grow from.
func segmentSeedBytes(f *testing.F) []byte {
	f.Helper()
	col, err := collection.Generate(collection.Config{NumDocs: 60, VocabSize: 500, MeanDocLen: 30, Seed: 99})
	if err != nil {
		f.Fatal(err)
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<12)
	if err != nil {
		f.Fatal(err)
	}
	idx, err := Build(col, pool)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	if err := idx.Persist(dir); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(SegmentPath(dir))
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzSegmentOpen feeds mutated segment files through index.Open: a
// valid segment opens and serves, and any mutation — a flipped
// superblock bit, a truncated section, an implausible count — must fail
// with a clean error. Never a panic, never an unbounded allocation
// (every length field is validated against the section payload before
// being trusted), never garbage results served as an index.
func FuzzSegmentOpen(f *testing.F) {
	raw := segmentSeedBytes(f)
	f.Add(raw)
	// Targeted superblock mutations: magic, version, section count, and a
	// section length, so the fuzzer starts at the interesting offsets.
	for _, off := range []int{0, 8, 32, 60} {
		if off < len(raw) {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add(raw[:storage.PageSize])             // superblock only, sections gone
	f.Add(append([]byte(nil), raw[4096:]...)) // superblock sheared off

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<22 {
			return // keep per-exec disk writes bounded
		}
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, SegmentFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		pool, fd, err := OpenPool(dir, 8)
		if err != nil {
			return // unreadable as a page device: a clean failure
		}
		defer fd.Close()
		ix, err := Open(dir, pool)
		if err != nil {
			return // corrupt segment rejected with an error — the contract
		}
		// A segment that opened must actually serve: walk a few lists end
		// to end so latent corruption surfaces as iterator errors, not
		// panics.
		terms := 0
		for id := 0; id < ix.Lex.Size() && terms < 16; id++ {
			it, ok, err := ix.Reader(lexicon.TermID(id))
			if err != nil || !ok {
				continue
			}
			for it.Next() {
			}
			_ = it.Err()
			it.Close()
			terms++
		}
	})
}
