package index

import (
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
)

// MultiFragmented generalizes the two-way split of Fragmented to an
// ordered chain of fragments from rarest to most frequent terms. This is
// the design the paper's research programme was heading towards (and
// Blok's subsequent work published): query processing walks the chain,
// accumulating contributions fragment by fragment, and a bound
// administration over the remaining fragments' maximal score mass decides
// when the top N is provably stable — the paper's "top N operators ...
// allow optimal utilization of the new structure of the data".
type MultiFragmented struct {
	Lex   *lexicon.Lexicon
	Stats Stats

	// Fragments are ordered rarest terms first. Every indexed term lives
	// in exactly one fragment.
	Fragments []*Fragment

	// fragOf maps a term to its fragment index (-1 when unindexed).
	fragOf []int8
}

// BuildMulti constructs a fragment chain over col. cuts are strictly
// increasing cumulative postings-volume fractions in (0, 1); the result
// has len(cuts)+1 fragments, fragment i holding the rarest terms between
// cut boundaries i-1 and i (fragment 0 from zero, the last fragment up to
// the full volume).
func BuildMulti(col *collection.Collection, pool *storage.Pool, cuts []float64) (*MultiFragmented, error) {
	if len(cuts) == 0 {
		return nil, fmt.Errorf("index: BuildMulti needs at least one cut")
	}
	if len(cuts) > 126 {
		return nil, fmt.Errorf("index: %d cuts exceed the supported fragment count", len(cuts))
	}
	prev := 0.0
	for _, c := range cuts {
		if c <= prev || c >= 1 {
			return nil, fmt.Errorf("index: cuts must be strictly increasing within (0,1), got %v", cuts)
		}
		prev = c
	}
	mx := &MultiFragmented{
		Lex:    col.Lex,
		Stats:  statsOf(col),
		fragOf: make([]int8, col.Lex.Size()),
	}
	for i := range mx.fragOf {
		mx.fragOf[i] = -1
	}
	numFrags := len(cuts) + 1
	for i := 0; i < numFrags; i++ {
		mx.Fragments = append(mx.Fragments, &Fragment{
			store: postings.NewStore(storage.NewFile(pool)),
			metas: map[lexicon.TermID]postings.ListMeta{},
		})
	}

	// Assign terms in ascending (df, id) order against the volume cuts.
	type termDF struct {
		id lexicon.TermID
		df int64
	}
	terms := make([]termDF, 0, col.Lex.Size())
	var total int64
	for id := 0; id < col.Lex.Size(); id++ {
		df := int64(col.Lex.Stats(lexicon.TermID(id)).DocFreq)
		if df > 0 {
			terms = append(terms, termDF{lexicon.TermID(id), df})
			total += df
		}
	}
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].df != terms[b].df {
			return terms[a].df < terms[b].df
		}
		return terms[a].id < terms[b].id
	})
	var acc int64
	frag := 0
	for _, t := range terms {
		for frag < len(cuts) && float64(acc+t.df) > cuts[frag]*float64(total) {
			frag++
		}
		acc += t.df
		mx.fragOf[t.id] = int8(frag)
	}

	// Materialize.
	byTerm := invert(col)
	for id, ps := range byTerm {
		if len(ps) == 0 {
			continue
		}
		fi := mx.fragOf[id]
		f := mx.Fragments[fi]
		meta, err := f.store.Put(ps)
		if err != nil {
			return nil, fmt.Errorf("index: term %d: %w", id, err)
		}
		f.metas[lexicon.TermID(id)] = meta
		f.postings += int64(len(ps))
	}
	return mx, nil
}

// FragmentIndexOf returns which fragment holds term (-1 when the term has
// no postings).
func (mx *MultiFragmented) FragmentIndexOf(term lexicon.TermID) int {
	if int(term) >= len(mx.fragOf) {
		return -1
	}
	return int(mx.fragOf[term])
}

// DocFreq returns the global document frequency of term.
func (mx *MultiFragmented) DocFreq(term lexicon.TermID) int {
	fi := mx.FragmentIndexOf(term)
	if fi < 0 {
		return 0
	}
	return mx.Fragments[fi].DocFreq(term)
}

// MaxTF returns the largest within-document frequency of term anywhere
// in the chain (0 when the term has no postings).
func (mx *MultiFragmented) MaxTF(term lexicon.TermID) uint32 {
	fi := mx.FragmentIndexOf(term)
	if fi < 0 {
		return 0
	}
	return mx.Fragments[fi].MaxTF(term)
}

// TotalPostings sums the chain's postings.
func (mx *MultiFragmented) TotalPostings() int64 {
	var n int64
	for _, f := range mx.Fragments {
		n += f.postings
	}
	return n
}

// ResetCounters zeroes every fragment's decode counters.
func (mx *MultiFragmented) ResetCounters() {
	for _, f := range mx.Fragments {
		f.store.Counters.Reset()
	}
}

// Decoded sums the chain's postings-decoded counters.
func (mx *MultiFragmented) Decoded() int64 {
	var n int64
	for _, f := range mx.Fragments {
		n += f.store.Counters.PostingsDecoded
	}
	return n
}

// SkipsTaken sums the chain's block-skip counters.
func (mx *MultiFragmented) SkipsTaken() int64 {
	var n int64
	for _, f := range mx.Fragments {
		n += f.store.Counters.SkipsTaken
	}
	return n
}
