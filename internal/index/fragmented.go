package index

import (
	"fmt"
	"sort"

	"repro/internal/collection"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/storage"
)

// Fragment is one horizontal fragment of an inverted file: a subset of the
// terms with their full postings lists, in its own storage file so its I/O
// is accounted separately.
type Fragment struct {
	store    *postings.Store
	metas    map[lexicon.TermID]postings.ListMeta
	postings int64
}

// Has reports whether the fragment holds a list for term.
func (f *Fragment) Has(term lexicon.TermID) bool {
	_, ok := f.metas[term]
	return ok
}

// Reader opens an iterator over term's list within this fragment.
func (f *Fragment) Reader(term lexicon.TermID) (*postings.Iterator, bool, error) {
	meta, ok := f.metas[term]
	if !ok {
		return nil, false, nil
	}
	it, err := f.store.NewIterator(meta)
	if err != nil {
		return nil, false, err
	}
	return it, true, nil
}

// Postings decodes term's full list within this fragment (nil when absent).
func (f *Fragment) Postings(term lexicon.TermID) ([]postings.Posting, error) {
	meta, ok := f.metas[term]
	if !ok {
		return nil, nil
	}
	return f.store.ReadAll(meta)
}

// DocFreq returns term's document frequency within this fragment.
func (f *Fragment) DocFreq(term lexicon.TermID) int {
	return int(f.metas[term].DocFreq)
}

// MaxTF returns the largest within-document frequency of term in this
// fragment (0 when absent) — the list-level input to TF-bounded score
// bounds.
func (f *Fragment) MaxTF(term lexicon.TermID) uint32 {
	return f.metas[term].MaxTF
}

// NumTerms returns how many terms the fragment holds.
func (f *Fragment) NumTerms() int { return len(f.metas) }

// TotalPostings returns the postings volume of the fragment.
func (f *Fragment) TotalPostings() int64 { return f.postings }

// SizeBytes returns the compressed byte size of the fragment.
func (f *Fragment) SizeBytes() int64 { return f.store.Size() }

// Counters exposes the fragment's decoding-work counters.
func (f *Fragment) Counters() *postings.Counters { return &f.store.Counters }

// Fragmented is the paper's Step 1 physical design: the inverted file
// split by document frequency into a small fragment (rare terms) and a
// large fragment (frequent terms).
//
// The fragmentation predicate is lexicographic on (DocFreq, TermID): a
// term is in the small fragment when its df is below DFThreshold, or equal
// to it with id at most BoundaryID. The tie-break on term id is needed
// because document frequencies cluster heavily (half the vocabulary can be
// hapax terms), so a pure df cut cannot hit a 5% volume target; the
// compound predicate is still a simple, statically evaluable horizontal
// selection, as the paper requires.
type Fragmented struct {
	Lex   *lexicon.Lexicon
	Stats Stats

	Small *Fragment
	Large *Fragment

	DFThreshold int32
	BoundaryID  lexicon.TermID
}

// inSmall evaluates the fragmentation predicate for a term with the given
// document frequency.
func (fx *Fragmented) inSmall(id lexicon.TermID, df int32) bool {
	if df != fx.DFThreshold {
		return df < fx.DFThreshold
	}
	return id <= fx.BoundaryID
}

// BuildFragmented constructs a two-fragment index over col. smallFrac is
// the target share of total postings volume for the small fragment (the
// paper's headline configuration is 0.05). The split is found by walking
// terms from rarest to most frequent and assigning them to the small
// fragment until the target volume is reached; the document-frequency
// threshold at that point becomes the fragmentation predicate, so the
// physical design is expressible as a simple horizontal selection, exactly
// as in the paper.
func BuildFragmented(col *collection.Collection, pool *storage.Pool, smallFrac float64) (*Fragmented, error) {
	if smallFrac < 0 || smallFrac > 1 {
		return nil, fmt.Errorf("index: smallFrac %v out of [0,1]", smallFrac)
	}
	fx := &Fragmented{
		Lex:   col.Lex,
		Stats: statsOf(col),
		Small: &Fragment{store: postings.NewStore(storage.NewFile(pool)), metas: map[lexicon.TermID]postings.ListMeta{}},
		Large: &Fragment{store: postings.NewStore(storage.NewFile(pool)), metas: map[lexicon.TermID]postings.ListMeta{}},
	}

	// Determine the df threshold from the target volume fraction.
	type termDF struct {
		id lexicon.TermID
		df int64
	}
	terms := make([]termDF, 0, col.Lex.Size())
	var total int64
	for id := 0; id < col.Lex.Size(); id++ {
		df := int64(col.Lex.Stats(lexicon.TermID(id)).DocFreq)
		if df > 0 {
			terms = append(terms, termDF{lexicon.TermID(id), df})
			total += df
		}
	}
	sort.Slice(terms, func(a, b int) bool {
		if terms[a].df != terms[b].df {
			return terms[a].df < terms[b].df
		}
		return terms[a].id < terms[b].id
	})
	budget := int64(smallFrac * float64(total))
	var acc int64
	fx.DFThreshold = 0
	fx.BoundaryID = 0
	for _, t := range terms {
		if acc+t.df > budget {
			break
		}
		acc += t.df
		fx.DFThreshold = int32(t.df)
		fx.BoundaryID = t.id
	}

	// Materialize both fragments.
	byTerm := invert(col)
	for id, ps := range byTerm {
		if len(ps) == 0 {
			continue
		}
		frag := fx.Large
		if fx.inSmall(lexicon.TermID(id), int32(len(ps))) {
			frag = fx.Small
		}
		meta, err := frag.store.Put(ps)
		if err != nil {
			return nil, fmt.Errorf("index: term %d: %w", id, err)
		}
		frag.metas[lexicon.TermID(id)] = meta
		frag.postings += int64(len(ps))
	}
	return fx, nil
}

// SmallFraction reports the realized postings-volume share of the small
// fragment; experiments report this next to the configured target.
func (fx *Fragmented) SmallFraction() float64 {
	total := fx.Small.postings + fx.Large.postings
	if total == 0 {
		return 0
	}
	return float64(fx.Small.postings) / float64(total)
}

// Fragments returns the fragment holding term (nil when the term has no
// postings at all). Every term lives in exactly one fragment.
func (fx *Fragmented) FragmentOf(term lexicon.TermID) *Fragment {
	if fx.Small.Has(term) {
		return fx.Small
	}
	if fx.Large.Has(term) {
		return fx.Large
	}
	return nil
}

// DocFreq returns the global document frequency of term (whichever
// fragment holds it).
func (fx *Fragmented) DocFreq(term lexicon.TermID) int {
	if f := fx.FragmentOf(term); f != nil {
		return f.DocFreq(term)
	}
	return 0
}

// ResetCounters zeroes both fragments' decoding counters.
func (fx *Fragmented) ResetCounters() {
	fx.Small.store.Counters.Reset()
	fx.Large.store.Counters.Reset()
}
