package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/server"
	"repro/internal/topk"
)

// Coordinator is a server.Backend that owns no index: it scatters each
// query to K replica /search endpoints and gathers through
// topk.MergeReplicas, so the merged answer carries the fleet-level
// exactness/degraded certificate — Exact only when every replica
// answered exactly at one shared generation; a lagging, unreachable,
// or internally degraded replica lands in the certificate's Skipped
// list with ShardsServed < ShardsTotal. Mounted behind internal/server
// it inherits all the front-end hardening (admission, rate limits,
// deadlines) unchanged.
type Coordinator struct {
	replicas []string
	client   *http.Client

	fanouts  atomic.Int64
	degraded atomic.Int64
	lastGen  atomic.Uint64
}

// NewCoordinator builds a scatter/gather backend over the replica base
// URLs. client nil means http.DefaultClient.
func NewCoordinator(replicas []string, client *http.Client) (*Coordinator, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("replica: a coordinator needs at least one replica")
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &Coordinator{replicas: replicas, client: client}, nil
}

// ReplStats reports the scatter/gather account (Stats is the
// server.Backend writer-accounting method).
func (c *Coordinator) ReplStats() server.ReplicationStats {
	return server.ReplicationStats{
		Role:           "coordinator",
		Ordinal:        c.lastGen.Load(),
		Replicas:       len(c.replicas),
		Fanouts:        c.fanouts.Load(),
		DegradedMerges: c.degraded.Load(),
	}
}

// SearchContext scatters the query to every replica and merges. In the
// returned Result, Segments and the certificate's shard counts are
// *replica* counts: the unit of coverage at this tier is a whole
// replica, exactly as a single node's unit is a segment.
func (c *Coordinator) SearchContext(ctx context.Context, terms []string, n int) (live.Result, error) {
	c.fanouts.Add(1)
	answers := make([]topk.ReplicaAnswer, len(c.replicas))
	var wg sync.WaitGroup
	for i, base := range c.replicas {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			answers[i] = c.ask(ctx, base, terms, n)
		}(i, base)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return live.Result{}, err
	}
	top, cert, gen := topk.MergeReplicas(answers, n)
	if cert.ShardsServed == 0 && len(cert.Skipped) == len(c.replicas) {
		allDown := true
		for _, a := range answers {
			if a.Err == nil {
				allDown = false
				break
			}
		}
		if allDown {
			return live.Result{}, fmt.Errorf("%w: no replica answered", server.ErrUnavailable)
		}
	}
	c.lastGen.Store(gen)
	if cert.Degraded {
		c.degraded.Add(1)
	}
	return live.Result{
		Top:        top,
		Exact:      cert.Exact,
		Degraded:   cert.Degraded,
		Cert:       cert,
		Segments:   len(c.replicas),
		Generation: gen,
	}, nil
}

// ask runs one replica's leg of the scatter.
func (c *Coordinator) ask(ctx context.Context, base string, terms []string, n int) topk.ReplicaAnswer {
	ans := topk.ReplicaAnswer{Name: base}
	fail := func(err error) topk.ReplicaAnswer {
		ans.Err = err
		return ans
	}
	body, err := json.Marshal(searchBody{Terms: terms, N: n, TimeoutMS: remainingMS(ctx)})
	if err != nil {
		return fail(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/search", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fail(fmt.Errorf("replica answered %s", resp.Status))
	}
	var sr server.SearchResponse
	if err := decodeJSON(resp.Body, &sr); err != nil {
		return fail(err)
	}
	ans.Generation = sr.Generation
	ans.Top = make([]rank.DocScore, len(sr.Results))
	for i, d := range sr.Results {
		ans.Top[i] = rank.DocScore{DocID: d.Doc, Score: d.Score}
	}
	// Reconstruct the replica's single-node certificate from the wire
	// fields (segment-level coverage).
	ans.Cert = topk.Certificate{
		Exact:        sr.Exact,
		Degraded:     sr.Degraded,
		ShardsServed: sr.SegmentsServed,
		ShardsTotal:  sr.Segments,
		Skipped:      sr.SegmentsSkipped,
	}
	return ans
}

// searchBody mirrors the server's searchRequest.
type searchBody struct {
	Terms     []string `json:"terms"`
	N         int      `json:"n"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// remainingMS converts the context deadline into the per-replica
// timeout_ms hint, so a replica's own default deadline never undercuts
// the coordinator's remaining budget.
func remainingMS(ctx context.Context) int {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := int(time.Until(dl).Milliseconds())
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Stats implements server.Backend: the coordinator's "writer" account
// is the fleet view — generation is the newest observed across
// replicas, segments the replica count.
func (c *Coordinator) Stats() live.WriterStats {
	return live.WriterStats{Generation: c.lastGen.Load(), Segments: len(c.replicas)}
}

// Counters implements server.Backend; a coordinator decodes nothing.
func (c *Coordinator) Counters() (decoded, skips, faulted int64) { return 0, 0, 0 }

// FaultStats implements server.Backend: degraded merges count as
// degraded queries at this tier.
func (c *Coordinator) FaultStats() live.FaultStats {
	return live.FaultStats{DegradedQueries: c.degraded.Load()}
}

// CacheStats implements server.Backend; the coordinator caches nothing.
func (c *Coordinator) CacheStats() live.CacheStats { return live.CacheStats{} }

// Close implements server.Backend.
func (c *Coordinator) Close() error {
	c.client.CloseIdleConnections()
	return nil
}
