package replica

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/server"
	"repro/internal/storage"
)

// Crash points of the pull protocol, in commit order. A FollowerConfig
// CrashHook returning true at one aborts the sync with ErrCrashPoint,
// leaving the directory exactly as a process death there would — the
// states the follower-reopen GC and crash-matrix tests recover from.
// A hook returning false is a pure observation point (the mid-pull-
// merge scenario uses CrashManifestFetched to retire segments between
// the follower's plan and its pulls).
const (
	// CrashManifestFetched fires after the wire manifest is decoded,
	// before any pull.
	CrashManifestFetched = "pull:manifest-fetched"
	// CrashMidSegment fires inside a segment pull, after its first file
	// landed in the staging directory.
	CrashMidSegment = "pull:mid-segment"
	// CrashBeforeCommit fires with a segment fully staged, before the
	// rename that commits its directory.
	CrashBeforeCommit = "pull:before-commit"
	// CrashBeforeApply fires with every segment directory committed,
	// before ApplyManifest writes the local manifest.
	CrashBeforeApply = "pull:before-apply"
)

// CrashPoints lists every pull crash point, for crash-matrix tests.
var CrashPoints = []string{CrashManifestFetched, CrashMidSegment, CrashBeforeCommit, CrashBeforeApply}

// ErrCrashPoint reports a sync aborted by an armed CrashHook.
var ErrCrashPoint = errors.New("replica: injected crash")

// errRetired marks a pull that hit 404: the leader merged the segment
// away between our manifest fetch and the pull. SyncOnce refetches the
// manifest and replans.
var errRetired = errors.New("replica: segment retired on the leader mid-pull")

// FollowerConfig tunes the pull client.
type FollowerConfig struct {
	// Client issues the HTTP requests. Default http.DefaultClient.
	Client *http.Client
	// FileRetries is how many times one file pull is retried after a
	// CRC mismatch or a truncated transfer before the sync fails (the
	// corrupt bytes are discarded either way — a mismatched file is
	// never committed). Default 3.
	FileRetries int
	// RetryBackoff is the pause between file retry attempts. Default
	// 50ms.
	RetryBackoff time.Duration
	// ReplanRetries is how many times a sync replans from a fresh
	// manifest after a mid-pull retirement (404). Default 3.
	ReplanRetries int
	// CrashHook, if set, is consulted at every named crash point.
	CrashHook func(point string) bool
}

func (c *FollowerConfig) fillDefaults() {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.FileRetries == 0 {
		c.FileRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.ReplanRetries == 0 {
		c.ReplanRetries = 3
	}
}

// Follower pulls a leader's committed state into a follower-mode live
// writer. Create with NewFollower, drive with SyncOnce (one catch-up
// attempt) or Run (a poll loop). Methods are safe for concurrent use
// with searches on the writer; syncs themselves serialize.
type Follower struct {
	w      *live.Writer
	leader string // base URL, e.g. "http://host:port"
	cfg    FollowerConfig

	syncs      atomic.Int64
	failures   atomic.Int64
	segsPulled atomic.Int64
	filesPull  atomic.Int64
	bytesPull  atomic.Int64
	crcRetries atomic.Int64
	leaderGen  atomic.Uint64
	localGen   atomic.Uint64
}

// NewFollower builds a puller feeding w (which must be open in
// follower mode) from the leader at baseURL.
func NewFollower(w *live.Writer, baseURL string, cfg FollowerConfig) (*Follower, error) {
	if !w.ReadOnly() {
		return nil, fmt.Errorf("replica: the writer must be opened with live.Config.Follower")
	}
	if baseURL == "" {
		return nil, fmt.Errorf("replica: leader URL is required")
	}
	cfg.fillDefaults()
	f := &Follower{w: w, leader: baseURL, cfg: cfg}
	f.localGen.Store(w.Manifest().Generation)
	return f, nil
}

// Stats reports the pull-side replication account.
func (f *Follower) Stats() server.ReplicationStats {
	local, leader := f.localGen.Load(), f.leaderGen.Load()
	var lag uint64
	if leader > local {
		lag = leader - local
	}
	return server.ReplicationStats{
		Role:           "follower",
		Ordinal:        local,
		Syncs:          f.syncs.Load(),
		SyncFailures:   f.failures.Load(),
		SegmentsPulled: f.segsPulled.Load(),
		FilesPulled:    f.filesPull.Load(),
		BytesPulled:    f.bytesPull.Load(),
		CRCRetries:     f.crcRetries.Load(),
		LagGenerations: lag,
	}
}

// Run polls the leader every interval until ctx fires, logging nothing
// and giving up on nothing: transient failures count in SyncFailures
// and the next tick tries again.
func (f *Follower) Run(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		_, _ = f.SyncOnce(ctx) // failures are counted and retried next tick
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// crash consults the armed hook at a named point.
func (f *Follower) crash(point string) error {
	if f.cfg.CrashHook != nil && f.cfg.CrashHook(point) {
		return fmt.Errorf("%w at %s", ErrCrashPoint, point)
	}
	return nil
}

// SyncOnce performs one catch-up attempt: fetch the leader's manifest,
// and if it is ahead, pull every file this follower is missing —
// resuming partial transfers, verifying every file's whole-file CRC
// before commit, and committing each segment directory with the same
// temp(staging)+rename+fsync protocol live uses — then install the new
// state through ApplyManifest. It reports whether the local generation
// advanced. A sync that finds the leader at (or behind) the local
// generation is a no-op.
//
// Failure atomicity: nothing under the index directory changes meaning
// until the local manifest swap inside ApplyManifest. A sync that dies
// earlier leaves staging directories and committed-but-unreferenced
// segment directories that reopen GC (or the next sync) reclaims; the
// serving generation is untouched.
func (f *Follower) SyncOnce(ctx context.Context) (advanced bool, err error) {
	defer func() {
		if err != nil {
			f.failures.Add(1)
		}
	}()
	for attempt := 0; ; attempt++ {
		wm, err := f.fetchManifest(ctx)
		if err != nil {
			return false, err
		}
		f.leaderGen.Store(wm.Generation)
		local := f.w.Manifest()
		f.localGen.Store(local.Generation)
		if wm.Generation == local.Generation {
			return false, nil
		}
		if wm.Generation < local.Generation {
			return false, fmt.Errorf("replica: leader at generation %d is behind this follower's %d (pointed at the wrong leader?)",
				wm.Generation, local.Generation)
		}
		if err := f.crash(CrashManifestFetched); err != nil {
			return false, err
		}
		err = f.pull(ctx, wm, local)
		if errors.Is(err, errRetired) && attempt < f.cfg.ReplanRetries {
			continue // the leader merged mid-pull; replan from a fresh manifest
		}
		if err != nil {
			return false, err
		}
		if err := f.crash(CrashBeforeApply); err != nil {
			return false, err
		}
		if err := f.w.ApplyManifest(wm.Manifest()); err != nil {
			// The pulled files passed their wire CRCs but failed the
			// install-time verification (section checksums, chain
			// validation). Discard what this sync committed so the next
			// one re-pulls from scratch instead of re-tripping on the
			// same bytes; the serving generation is still the old one —
			// a corrupt transfer is never installed.
			f.discard(wm, local)
			return false, err
		}
		f.localGen.Store(wm.Generation)
		f.syncs.Add(1)
		return true, nil
	}
}

// pull stages and commits every file the local manifest is missing
// relative to wm.
func (f *Follower) pull(ctx context.Context, wm *WireManifest, local live.Manifest) error {
	have := make(map[string]live.SegmentInfo, len(local.Segments))
	for _, s := range local.Segments {
		have[s.Name] = s
	}
	for _, ws := range wm.Segments {
		if err := checkSeqName(ws.SegmentInfo); err != nil {
			return err
		}
		if ls, ok := have[ws.Name]; ok {
			// Segment already served; only its alive bitmap can differ.
			if ls.Tomb != ws.Tomb && ws.Tomb != 0 {
				if err := f.pullAliveFile(ctx, ws); err != nil {
					return err
				}
			}
			continue
		}
		if err := f.pullSegment(ctx, ws); err != nil {
			return err
		}
	}
	return nil
}

// pullAliveFile fetches a new alive-bitmap version into an existing
// committed segment directory. Bitmaps are small: the file is fetched
// whole into memory, CRC-verified, and written atomically — the same
// temp+rename+fsync path live's own tombstone commits use. The bitmap
// becomes meaningful only when ApplyManifest lands the manifest
// referencing its version; a crash before that leaves an unreferenced
// version file reopen GC removes.
func (f *Follower) pullAliveFile(ctx context.Context, ws WireSegment) error {
	name := live.AliveFileName(ws.Tomb)
	wf, err := findFile(ws, name)
	if err != nil {
		return err
	}
	dst := filepath.Join(f.w.Dir(), ws.Name, name)
	if fileMatches(dst, wf) {
		return nil // an earlier aborted sync already landed it
	}
	var lastErr error
	for attempt := 0; attempt <= f.cfg.FileRetries; attempt++ {
		if attempt > 0 {
			f.crcRetries.Add(1)
			sleepCtx(ctx, f.cfg.RetryBackoff)
		}
		body, err := f.fetchWhole(ctx, ws.Seq, wf)
		if err != nil {
			if errors.Is(err, errRetired) || ctx.Err() != nil {
				return err
			}
			lastErr = err
			continue
		}
		if err := storage.AtomicWriteFile(dst, body); err != nil {
			return err
		}
		f.filesPull.Add(1)
		f.bytesPull.Add(int64(len(body)))
		return nil
	}
	return fmt.Errorf("replica: pulling %s/%s: %w", ws.Name, name, lastErr)
}

// pullSegment stages every file of one missing segment under
// "pull-<segname>", fsyncs, and commits the directory by rename. If
// the directory already exists fully verified (an earlier sync
// committed it but crashed before applying the manifest), the pull is
// skipped; a directory that exists but fails verification is discarded
// and re-pulled.
func (f *Follower) pullSegment(ctx context.Context, ws WireSegment) error {
	final := filepath.Join(f.w.Dir(), ws.Name)
	if _, err := os.Stat(final); err == nil {
		ok := true
		for _, wf := range ws.Files {
			if !fileMatches(filepath.Join(final, wf.Name), wf) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if err := os.RemoveAll(final); err != nil {
			return fmt.Errorf("replica: discarding divergent segment %s: %w", ws.Name, err)
		}
	}
	staging := filepath.Join(f.w.Dir(), "pull-"+ws.Name)
	if err := os.MkdirAll(staging, 0o755); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	for i, wf := range ws.Files {
		if !validFileName(wf.Name) {
			return fmt.Errorf("replica: leader lists illegal file %q in %s", wf.Name, ws.Name)
		}
		if i > 0 {
			if err := f.crash(CrashMidSegment); err != nil {
				return err
			}
		}
		if err := f.pullFile(ctx, staging, ws.Seq, wf); err != nil {
			return fmt.Errorf("replica: pulling %s/%s: %w", ws.Name, wf.Name, err)
		}
	}
	if err := syncDir(staging); err != nil {
		return err
	}
	if err := f.crash(CrashBeforeCommit); err != nil {
		return err
	}
	if err := os.Rename(staging, final); err != nil {
		return fmt.Errorf("replica: committing segment %s: %w", ws.Name, err)
	}
	if err := syncDir(f.w.Dir()); err != nil {
		return err
	}
	f.segsPulled.Add(1)
	return nil
}

// pullFile lands one file in the staging directory: resume any
// .partial left by an earlier attempt via a Range request, stream the
// rest while hashing, and promote to the final name only when size and
// CRC match the manifest. A mismatch discards the partial and retries
// from zero — corrupt bytes never survive an attempt, let alone reach
// a committed directory.
func (f *Follower) pullFile(ctx context.Context, staging string, seq uint64, wf WireFile) error {
	target := filepath.Join(staging, wf.Name)
	if fileMatches(target, wf) {
		return nil // landed by an earlier in-process attempt before a replan
	}
	partial := target + ".partial"
	var lastErr error
	for attempt := 0; attempt <= f.cfg.FileRetries; attempt++ {
		if attempt > 0 {
			f.crcRetries.Add(1)
			sleepCtx(ctx, f.cfg.RetryBackoff)
		}
		err := f.fetchInto(ctx, partial, seq, wf)
		if err == nil {
			if err := os.Rename(partial, target); err != nil {
				return err
			}
			f.filesPull.Add(1)
			f.bytesPull.Add(wf.Size)
			return nil
		}
		if errors.Is(err, errRetired) || ctx.Err() != nil {
			return err
		}
		// Corrupt or truncated: the partial cannot be trusted as a
		// resume base (the damage may be anywhere in it). Start over.
		if rerr := os.Remove(partial); rerr != nil && !os.IsNotExist(rerr) {
			return rerr
		}
		lastErr = err
	}
	return lastErr
}

// fetchInto appends to (or creates) the partial file at path until it
// holds wf.Size bytes, then verifies the whole-file CRC and fsyncs.
// An existing prefix is re-hashed and extended with a Range request —
// the resumable half of the protocol.
func (f *Follower) fetchInto(ctx context.Context, path string, seq uint64, wf WireFile) error {
	pf, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer pf.Close()
	h := crc32.NewIEEE()
	offset, err := io.Copy(h, pf)
	if err != nil {
		return err
	}
	if offset > wf.Size {
		return fmt.Errorf("partial is %d bytes, want %d: overlong transfer", offset, wf.Size)
	}
	if offset < wf.Size {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.fileURL(seq, wf.Name), nil)
		if err != nil {
			return err
		}
		if offset > 0 {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-", offset))
		}
		resp, err := f.cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if offset > 0 {
				// The leader ignored the Range; restart the hash and file.
				if err := pf.Truncate(0); err != nil {
					return err
				}
				if _, err := pf.Seek(0, io.SeekStart); err != nil {
					return err
				}
				h = crc32.NewIEEE()
				offset = 0
			}
		case http.StatusPartialContent:
			// Appending at offset, as requested.
		case http.StatusNotFound:
			return errRetired
		default:
			return fmt.Errorf("leader answered %s", resp.Status)
		}
		n, err := io.Copy(io.MultiWriter(pf, h), resp.Body)
		offset += n
		if err != nil {
			return err
		}
	}
	if offset != wf.Size {
		return fmt.Errorf("transfer ended at %d of %d bytes", offset, wf.Size)
	}
	if h.Sum32() != wf.CRC {
		return fmt.Errorf("CRC mismatch: got %08x, manifest says %08x (corrupt transfer)", h.Sum32(), wf.CRC)
	}
	return pf.Sync()
}

// fetchWhole gets one (small) file fully into memory, CRC-verified.
func (f *Follower) fetchWhole(ctx context.Context, seq uint64, wf WireFile) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.fileURL(seq, wf.Name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errRetired
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: leader answered %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, wf.Size+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) != wf.Size || crc32.ChecksumIEEE(body) != wf.CRC {
		return nil, fmt.Errorf("replica: %s: corrupt transfer (size %d/%d)", wf.Name, len(body), wf.Size)
	}
	return body, nil
}

// fetchManifest gets and decodes the leader's wire manifest.
func (f *Follower) fetchManifest(ctx context.Context) (*WireManifest, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.leader+ManifestPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replica: fetch manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: leader answered %s to a manifest fetch", resp.Status)
	}
	var wm WireManifest
	if err := decodeJSON(resp.Body, &wm); err != nil {
		return nil, fmt.Errorf("replica: decode manifest: %w", err)
	}
	return &wm, nil
}

// discard removes the segment directories this sync committed beyond
// the still-installed local manifest — the failure path when pulled
// files pass their wire CRCs but fail install-time verification.
func (f *Follower) discard(wm *WireManifest, local live.Manifest) {
	have := make(map[string]bool, len(local.Segments))
	for _, s := range local.Segments {
		have[s.Name] = true
	}
	for _, ws := range wm.Segments {
		if !have[ws.Name] {
			os.RemoveAll(filepath.Join(f.w.Dir(), ws.Name))
		}
	}
}

func (f *Follower) fileURL(seq uint64, name string) string {
	return fmt.Sprintf("%s%s%d/%s", f.leader, SegmentPathPrefix, seq, name)
}

// findFile locates name in the wire segment's inventory.
func findFile(ws WireSegment, name string) (WireFile, error) {
	for _, wf := range ws.Files {
		if wf.Name == name {
			return wf, nil
		}
	}
	return WireFile{}, fmt.Errorf("replica: leader's manifest lists no %s for %s", name, ws.Name)
}

// fileMatches reports whether the file at path already holds exactly
// the manifest's bytes (size and CRC).
func fileMatches(path string, wf WireFile) bool {
	fi, err := os.Stat(path)
	if err != nil || fi.Size() != wf.Size {
		return false
	}
	g, err := os.Open(path)
	if err != nil {
		return false
	}
	defer g.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, g); err != nil {
		return false
	}
	return h.Sum32() == wf.CRC
}

// syncDir fsyncs a directory, making renames into it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("replica: fsync %s: %w", dir, err)
	}
	return nil
}

// sleepCtx pauses for d or until ctx fires.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
