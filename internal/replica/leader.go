package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/server"
	"repro/internal/storage"
)

// LeaderConfig tunes the pull-serving side.
type LeaderConfig struct {
	// PoolPages is the buffer-pool capacity each segment-data transfer
	// reads through. Default 64.
	PoolPages int
	// WrapDevice, if set, wraps the page device under every
	// segment-data transfer — the fault-injection seam for the serving
	// path, mirroring live.Config.WrapDevice. A fault injected here
	// corrupts or fails the bytes a follower receives; the follower's
	// whole-file CRC check must catch it.
	WrapDevice func(segment string, dev storage.Device) storage.Device
}

// Leader serves the pull side of replication over a live writer: the
// wire manifest (committed state + file inventories + checksums) and
// the segment files themselves, with Range support for resumable
// pulls. It serves leaders and followers alike — a follower mounts one
// too, which is what makes chained replication work — and is safe for
// concurrent use.
type Leader struct {
	w   *live.Writer
	cfg LeaderConfig

	// crcs caches per-file size/CRC keyed "segname/filename". Every
	// key names immutable bytes (segments by unique seq, bitmaps by
	// version), so entries never invalidate; they are pruned when their
	// segment leaves the manifest.
	mu   sync.Mutex
	crcs map[string]WireFile

	manifests atomic.Int64
	files     atomic.Int64
	bytes     atomic.Int64
}

// NewLeader builds the pull-serving handler over w.
func NewLeader(w *live.Writer, cfg LeaderConfig) *Leader {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 64
	}
	return &Leader{w: w, cfg: cfg, crcs: map[string]WireFile{}}
}

// Stats reports the serving-side replication account.
func (l *Leader) Stats() server.ReplicationStats {
	return server.ReplicationStats{
		Role:            "leader",
		Ordinal:         l.w.Manifest().Generation,
		ManifestsServed: l.manifests.Load(),
		FilesServed:     l.files.Load(),
		BytesServed:     l.bytes.Load(),
	}
}

// ServeHTTP routes the /repl/ subtree.
func (l *Leader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case r.URL.Path == ManifestPath:
		l.serveManifest(w, r)
	case strings.HasPrefix(r.URL.Path, SegmentPathPrefix):
		l.serveFile(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveManifest answers GET /repl/manifest. The manifest and the file
// checksums are captured under one pinning snapshot (AcquireManifest),
// so every listed file exists and its recorded size/CRC describe the
// exact immutable bytes a follower will pull — even if a merge retires
// the segment a moment later.
func (l *Leader) serveManifest(w http.ResponseWriter, r *http.Request) {
	m, snap, err := l.w.AcquireManifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer snap.Close()
	wm := WireManifest{Generation: m.Generation, NextSeq: m.NextSeq}
	for _, info := range m.Segments {
		ws := WireSegment{SegmentInfo: info}
		for _, name := range segmentFiles(info) {
			wf, err := l.fileMeta(info.Name, name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			ws.Files = append(ws.Files, wf)
		}
		wm.Segments = append(wm.Segments, ws)
	}
	l.pruneCRCs(m)
	l.manifests.Add(1)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(wm) // the connection owns delivery failures
}

// fileMeta returns (computing and caching on first use) the size and
// whole-file CRC of one segment file.
func (l *Leader) fileMeta(segName, fileName string) (WireFile, error) {
	key := segName + "/" + fileName
	l.mu.Lock()
	wf, ok := l.crcs[key]
	l.mu.Unlock()
	if ok {
		return wf, nil
	}
	path := filepath.Join(l.w.Dir(), segName, fileName)
	f, err := os.Open(path)
	if err != nil {
		return WireFile{}, fmt.Errorf("replica: %s: %w", key, err)
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return WireFile{}, fmt.Errorf("replica: checksum %s: %w", key, err)
	}
	wf = WireFile{Name: fileName, Size: n, CRC: h.Sum32()}
	l.mu.Lock()
	l.crcs[key] = wf
	l.mu.Unlock()
	return wf, nil
}

// pruneCRCs drops cache entries whose segment the manifest no longer
// lists, bounding the cache by the live chain.
func (l *Leader) pruneCRCs(m live.Manifest) {
	active := make(map[string]bool, len(m.Segments))
	for _, s := range m.Segments {
		active[s.Name] = true
	}
	l.mu.Lock()
	for key := range l.crcs {
		if seg, _, ok := strings.Cut(key, "/"); ok && !active[seg] {
			delete(l.crcs, key)
		}
	}
	l.mu.Unlock()
}

// serveFile answers GET /repl/segment/{seq}/{file}. The paged postings
// file is read through the same device chain searches use — raw file,
// optional fault-injection wrapper, buffer pool with transient-read
// retry — so media trouble on the serving path surfaces here exactly
// as it would in a query (and lands in the follower's CRC check).
// Sidecars are small and carry their own checksums; they are served
// directly. A retired segment's files return 404: the follower
// refreshes its manifest and replans.
func (l *Leader) serveFile(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, SegmentPathPrefix)
	seqStr, fileName, ok := strings.Cut(rest, "/")
	if !ok || strings.Contains(fileName, "/") || !validFileName(fileName) {
		http.Error(w, "bad segment file path", http.StatusBadRequest)
		return
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		http.Error(w, "bad segment sequence number", http.StatusBadRequest)
		return
	}
	segName := live.SegmentDirName(seq)
	path := filepath.Join(l.w.Dir(), segName, fileName)

	if fileName != segmentDataFile {
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		l.files.Add(1)
		l.bytes.Add(fi.Size())
		http.ServeContent(w, r, fileName, time.Time{}, f)
		return
	}

	fd, err := storage.OpenFileDisk(path)
	if errors.Is(err, fs.ErrNotExist) {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer fd.Close()
	var dev storage.Device = fd
	if l.cfg.WrapDevice != nil {
		dev = l.cfg.WrapDevice(segName, dev)
	}
	pool, err := storage.NewPool(dev, l.cfg.PoolPages)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	size := int64(fd.NumPages()) * storage.PageSize
	l.files.Add(1)
	l.bytes.Add(size)
	http.ServeContent(w, r, fileName, time.Time{}, &pagedReader{pool: pool, size: size})
}

// pagedReader adapts a buffer pool over a page-aligned file to the
// io.ReadSeeker http.ServeContent needs. Reads fetch (and promptly
// unpin) one page at a time; a page that fails past the pool's retry
// budget aborts the transfer mid-stream, which truncates the response
// body — the follower's size/CRC check treats that as a failed pull.
type pagedReader struct {
	pool *storage.Pool
	size int64
	off  int64
}

func (pr *pagedReader) Read(p []byte) (int, error) {
	if pr.off >= pr.size {
		return 0, io.EOF
	}
	if rem := pr.size - pr.off; int64(len(p)) > rem {
		p = p[:rem]
	}
	var n int
	for len(p) > 0 {
		pageIdx := pr.off / storage.PageSize
		inPage := pr.off % storage.PageSize
		pg, err := pr.pool.Fetch(storage.PageID(pageIdx + 1)) // PageIDs are 1-based
		if err != nil {
			if n > 0 {
				return n, nil // deliver what we have; the error repeats next call
			}
			return 0, err
		}
		c := copy(p, pg.Data()[inPage:])
		if uerr := pr.pool.Unpin(pg, false); uerr != nil && n == 0 {
			return 0, uerr
		}
		n += c
		pr.off += int64(c)
		p = p[c:]
	}
	return n, nil
}

func (pr *pagedReader) Seek(offset int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		offset += pr.off
	case io.SeekEnd:
		offset += pr.size
	default:
		return 0, fmt.Errorf("replica: bad seek whence %d", whence)
	}
	if offset < 0 {
		return 0, fmt.Errorf("replica: negative seek offset")
	}
	pr.off = offset
	return offset, nil
}
