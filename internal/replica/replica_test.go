package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/live"
	"repro/internal/storage"
)

// genCol builds the deterministic corpus the replication tests ship.
func genCol(t testing.TB, docs int, seed uint64) *collection.Collection {
	t.Helper()
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: 6000, MeanDocLen: 90, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func docTerms(col *collection.Collection, d *collection.Document) []live.TermCount {
	out := make([]live.TermCount, len(d.Terms))
	for i, tf := range d.Terms {
		out[i] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
	}
	return out
}

func genQueries(t testing.TB, col *collection.Collection, seed uint64) [][]string {
	t.Helper()
	qs, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 15, MinTerms: 2, MaxTerms: 5, MaxDocFreqFrac: 0.3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := make([][]string, len(qs))
	for i, q := range qs {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = col.Lex.Name(term)
		}
	}
	return names
}

// testLeader is a live writer served through a Leader handler on a real
// localhost listener.
type testLeader struct {
	w   *live.Writer
	ld  *Leader
	ts  *httptest.Server
	col *collection.Collection
}

func newTestLeader(t *testing.T, docs int, cfg LeaderConfig) *testLeader {
	t.Helper()
	w, err := live.Open(live.Config{Dir: t.TempDir(), SealDocs: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ld := NewLeader(w, cfg)
	ts := httptest.NewServer(ld)
	t.Cleanup(func() { ts.Close(); w.Close() })
	return &testLeader{w: w, ld: ld, ts: ts, col: genCol(t, docs, 3)}
}

// ingest adds documents [lo, hi) of the corpus and seals.
func (l *testLeader) ingest(t *testing.T, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if _, err := l.w.Add(docTerms(l.col, &l.col.Docs[i])); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func newFollowerWriter(t *testing.T, dir string) *live.Writer {
	t.Helper()
	w, err := live.Open(live.Config{Dir: dir, Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// assertEquiv requires byte-identical rankings from both writers.
func assertEquiv(t *testing.T, lw, fw *live.Writer, queries [][]string) {
	t.Helper()
	ls, fs := lw.Searcher(), fw.Searcher()
	for i, names := range queries {
		lr, err := ls.Search(names, 10)
		if err != nil {
			t.Fatalf("leader query %d: %v", i, err)
		}
		fr, err := fs.Search(names, 10)
		if err != nil {
			t.Fatalf("follower query %d: %v", i, err)
		}
		if !lr.Exact || !fr.Exact || len(lr.Top) != len(fr.Top) {
			t.Fatalf("query %d: exact %v/%v, %d vs %d results", i, lr.Exact, fr.Exact, len(lr.Top), len(fr.Top))
		}
		for j := range lr.Top {
			if lr.Top[j] != fr.Top[j] {
				t.Fatalf("query %d position %d: follower %v, leader %v", i, j, fr.Top[j], lr.Top[j])
			}
		}
	}
}

// assertNoPullArtifacts requires an index directory free of staging
// dirs and partial/temp files.
func assertNoPullArtifacts(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "pull-") ||
			strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".partial") {
			t.Fatalf("pull artifact %s left in %s", name, dir)
		}
	}
}

// The lifecycle: a follower catches up across generations (fresh
// segments, tombstone sidecars, merges that retire segments), answers
// byte-identically at every step, and no-ops when already caught up.
// A second follower chained off the first proves the /repl/ subtree a
// follower serves is a real replication source.
func TestFollowerLifecycle(t *testing.T) {
	leader := newTestLeader(t, 600, LeaderConfig{})
	queries := genQueries(t, leader.col, 4)
	fdir := t.TempDir()
	fw := newFollowerWriter(t, fdir)
	defer fw.Close()
	fol, err := NewFollower(fw, leader.ts.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Several generations: four ingest batches, then deletes.
	for b := 0; b < 4; b++ {
		leader.ingest(t, b*150, (b+1)*150)
	}
	for id := uint32(0); id < 10; id++ {
		if err := leader.w.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.w.Flush(); err != nil {
		t.Fatal(err)
	}
	advanced, err := fol.SyncOnce(ctx)
	if err != nil || !advanced {
		t.Fatalf("sync: advanced=%v err=%v", advanced, err)
	}
	if lg, fg := leader.w.Manifest().Generation, fw.Manifest().Generation; lg != fg {
		t.Fatalf("follower at generation %d, leader at %d", fg, lg)
	}
	assertEquiv(t, leader.w, fw, queries)
	assertNoPullArtifacts(t, fdir)

	// Caught up: the next sync is a no-op.
	if advanced, err := fol.SyncOnce(ctx); err != nil || advanced {
		t.Fatalf("caught-up sync: advanced=%v err=%v", advanced, err)
	}

	// A merge retires segments; the follower adopts the merged chain and
	// drops its local copies of the retired directories.
	segsBefore := leader.w.Stats().Segments
	if err := leader.w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if segsAfter := leader.w.Stats().Segments; segsAfter >= segsBefore {
		t.Fatalf("merge retired nothing: %d -> %d segments", segsBefore, segsAfter)
	}
	if advanced, err := fol.SyncOnce(ctx); err != nil || !advanced {
		t.Fatalf("post-merge sync: advanced=%v err=%v", advanced, err)
	}
	ls, fs := leader.w.Stats(), fw.Stats()
	if ls.Generation != fs.Generation || ls.Segments != fs.Segments {
		t.Fatalf("post-merge: follower gen/segs %d/%d, leader %d/%d", fs.Generation, fs.Segments, ls.Generation, ls.Segments)
	}
	assertEquiv(t, leader.w, fw, queries)

	st := fol.Stats()
	if st.Role != "follower" || st.Syncs < 2 || st.SegmentsPulled < 2 || st.BytesPulled <= 0 || st.LagGenerations != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Chained replication: a third node follows the follower.
	fts := httptest.NewServer(NewLeader(fw, LeaderConfig{}))
	defer fts.Close()
	cdir := t.TempDir()
	cw := newFollowerWriter(t, cdir)
	defer cw.Close()
	chained, err := NewFollower(cw, fts.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if advanced, err := chained.SyncOnce(ctx); err != nil || !advanced {
		t.Fatalf("chained sync: advanced=%v err=%v", advanced, err)
	}
	assertEquiv(t, leader.w, cw, queries)
}

// Every crash point of the pull protocol: the sync dies, the serving
// state is untouched, reopen GC leaves a clean directory, and the next
// sync lands the generation in full.
func TestFollowerCrashMatrix(t *testing.T) {
	for _, point := range CrashPoints {
		t.Run(point, func(t *testing.T) {
			leader := newTestLeader(t, 300, LeaderConfig{})
			queries := genQueries(t, leader.col, 5)
			leader.ingest(t, 0, 150)
			leader.ingest(t, 150, 300)
			for id := uint32(0); id < 5; id++ {
				if err := leader.w.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			if err := leader.w.Flush(); err != nil {
				t.Fatal(err)
			}

			fdir := t.TempDir()
			fw := newFollowerWriter(t, fdir)
			armed := true
			fol, err := NewFollower(fw, leader.ts.URL, FollowerConfig{
				CrashHook: func(p string) bool { return armed && p == point },
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fol.SyncOnce(context.Background()); !errors.Is(err, ErrCrashPoint) {
				t.Fatalf("armed sync: %v, want ErrCrashPoint", err)
			}
			if g := fw.Manifest().Generation; g != 0 {
				t.Fatalf("crashed sync moved the serving generation to %d", g)
			}
			// The process dies here; a fresh one reopens the directory.
			if err := fw.Close(); err != nil {
				t.Fatal(err)
			}
			fw2 := newFollowerWriter(t, fdir)
			defer fw2.Close()
			assertNoPullArtifacts(t, fdir)
			if g := fw2.Manifest().Generation; g != 0 {
				t.Fatalf("reopen found generation %d, want 0", g)
			}
			armed = false
			fol2, err := NewFollower(fw2, leader.ts.URL, FollowerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if advanced, err := fol2.SyncOnce(context.Background()); err != nil || !advanced {
				t.Fatalf("recovery sync: advanced=%v err=%v", advanced, err)
			}
			if lg, fg := leader.w.Manifest().Generation, fw2.Manifest().Generation; lg != fg {
				t.Fatalf("recovered follower at %d, leader at %d", fg, lg)
			}
			assertEquiv(t, leader.w, fw2, queries)
		})
	}
}

// A fault device on the leader's serving path corrupts the bytes a
// follower receives. The follower must detect every corrupt transfer
// (wire CRC), retry, and — when the damage persists — fail the sync
// without installing anything. Once the device heals, a sync succeeds.
func TestFaultInjectedPullNeverInstalls(t *testing.T) {
	var corrupt atomic.Bool
	leader := newTestLeader(t, 300, LeaderConfig{
		WrapDevice: func(segment string, dev storage.Device) storage.Device {
			fd := storage.NewFaultDevice(dev, 7)
			if corrupt.Load() {
				fd.SetCorruptProb(1)
			}
			return fd
		},
	})
	queries := genQueries(t, leader.col, 6)
	leader.ingest(t, 0, 300)

	fdir := t.TempDir()
	fw := newFollowerWriter(t, fdir)
	defer fw.Close()
	fol, err := NewFollower(fw, leader.ts.URL, FollowerConfig{
		FileRetries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	corrupt.Store(true)
	advanced, err := fol.SyncOnce(context.Background())
	if err == nil || advanced {
		t.Fatalf("sync over a corrupting device: advanced=%v err=%v, want failure", advanced, err)
	}
	if g := fw.Manifest().Generation; g != 0 {
		t.Fatalf("corrupt transfer installed: generation %d", g)
	}
	entries, err := os.ReadDir(fdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			t.Fatalf("corrupt transfer committed segment directory %s", e.Name())
		}
	}
	if st := fol.Stats(); st.CRCRetries == 0 {
		t.Fatalf("corrupt transfers were not retried: %+v", st)
	}

	corrupt.Store(false)
	if advanced, err := fol.SyncOnce(context.Background()); err != nil || !advanced {
		t.Fatalf("sync after the device healed: advanced=%v err=%v", advanced, err)
	}
	assertEquiv(t, leader.w, fw, queries)
}

// Concurrent pulls, installs, and searches on one follower: the -race
// stress. Searches run continuously while the leader churns and the
// follower syncs; at the end the follower converges and answers
// byte-identically, every goroutine exits, and both writers close
// cleanly (a leaked snapshot would make Close fail or hang).
func TestConcurrentPullInstallSearch(t *testing.T) {
	leader := newTestLeader(t, 600, LeaderConfig{})
	queries := genQueries(t, leader.col, 7)
	leader.ingest(t, 0, 100)

	fdir := t.TempDir()
	fw := newFollowerWriter(t, fdir)
	closed := false
	defer func() {
		if !closed {
			fw.Close()
		}
	}()
	fol, err := NewFollower(fw, leader.ts.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// The puller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		fol.Run(ctx, time.Millisecond)
	}()
	// The searchers: continuous reads through snapshots that installs
	// keep swapping underneath.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fs := fw.Searcher()
			for i := 0; ctx.Err() == nil; i++ {
				if _, err := fs.Search(queries[(g+i)%len(queries)], 10); err != nil {
					t.Errorf("search under churn: %v", err)
					return
				}
			}
		}(g)
	}
	// The churn: five more batches with tombstones and a merge.
	for b := 1; b <= 5; b++ {
		leader.ingest(t, b*100, (b+1)*100)
		if err := leader.w.Delete(uint32(b * 7)); err != nil {
			t.Fatal(err)
		}
		if err := leader.w.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := leader.w.MergeAll(); err != nil {
		t.Fatal(err)
	}
	// Let the poll loop catch the final state, then stop everything.
	deadline := time.Now().Add(5 * time.Second)
	for leader.w.Manifest().Generation != fw.Manifest().Generation {
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %d vs leader %d",
				fw.Manifest().Generation, leader.w.Manifest().Generation)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	assertEquiv(t, leader.w, fw, queries)
	assertNoPullArtifacts(t, fdir)
	closed = true
	if err := fw.Close(); err != nil {
		t.Fatalf("close after stress (leaked snapshot?): %v", err)
	}
}

// Wire-protocol hygiene: resumable Range requests, method and path
// policing, and 404 for retired segments.
func TestLeaderWireProtocol(t *testing.T) {
	leader := newTestLeader(t, 200, LeaderConfig{})
	leader.ingest(t, 0, 200)
	client := leader.ts.Client()

	var wm WireManifest
	resp, err := client.Get(leader.ts.URL + ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeJSON(resp.Body, &wm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(wm.Segments) == 0 || wm.Generation == 0 {
		t.Fatalf("manifest: %+v", wm)
	}
	seg := wm.Segments[0]
	dataURL := fmt.Sprintf("%s%s%d/%s", leader.ts.URL, SegmentPathPrefix, seg.Seq, segmentDataFile)

	// Whole fetch, then a resumed fetch of the tail; bytes must agree.
	whole, err := client.Get(dataURL)
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(whole.Body)
	whole.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := findFile(seg, segmentDataFile)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) != wf.Size {
		t.Fatalf("served %d bytes, manifest says %d", len(all), wf.Size)
	}
	req, _ := http.NewRequest(http.MethodGet, dataURL, nil)
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-", wf.Size/2))
	tail, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tailBytes, err := io.ReadAll(tail.Body)
	tail.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tail.StatusCode != http.StatusPartialContent {
		t.Fatalf("range request answered %d", tail.StatusCode)
	}
	if string(tailBytes) != string(all[wf.Size/2:]) {
		t.Fatal("resumed bytes differ from the whole transfer")
	}

	for _, tc := range []struct {
		method, path string
		status       int
	}{
		{http.MethodPost, ManifestPath, http.StatusMethodNotAllowed},
		{http.MethodGet, SegmentPathPrefix + "1/../../live.json", http.StatusBadRequest},
		{http.MethodGet, SegmentPathPrefix + "1/secrets.txt", http.StatusBadRequest},
		{http.MethodGet, SegmentPathPrefix + "notanumber/" + segmentDataFile, http.StatusBadRequest},
		{http.MethodGet, fmt.Sprintf("%s%d/%s", SegmentPathPrefix, 999999, segmentDataFile), http.StatusNotFound},
		{http.MethodGet, Prefix + "/unknown", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, leader.ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Keep ".." out of the client's own path cleaning.
		req.URL.Opaque = "//" + req.URL.Host + tc.path
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s answered %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
	}
}

// NewFollower refuses a writable writer: replication must never race
// local writes.
func TestNewFollowerRequiresFollowerMode(t *testing.T) {
	w, err := live.Open(live.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := NewFollower(w, "http://localhost:1", FollowerConfig{}); err == nil {
		t.Fatal("NewFollower accepted a writable writer")
	}
}

// A leader pointed at by a follower that is somehow ahead must refuse
// to "catch down".
func TestSyncRefusesBackwardLeader(t *testing.T) {
	leader := newTestLeader(t, 100, LeaderConfig{})
	leader.ingest(t, 0, 100)
	fdir := t.TempDir()
	fw := newFollowerWriter(t, fdir)
	defer fw.Close()
	fol, err := NewFollower(fw, leader.ts.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Advance the follower past the leader by hand-crafting a manifest
	// apply is never supposed to see; simpler: point a fresh leader (gen
	// 0, empty) at the synced follower via a new Follower bound to an
	// empty leader.
	empty := newTestLeader(t, 10, LeaderConfig{})
	back, err := NewFollower(fw, empty.ts.URL, FollowerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync from a leader behind the follower succeeded")
	}
	if lag := back.Stats().LagGenerations; lag != 0 {
		t.Fatalf("negative lag clamped wrong: %d", lag)
	}
}
