// Package replica scales the live index out by segment shipping:
// followers poll a leader's manifest ordinal over HTTP, pull the
// immutable segment files they do not yet have (resumable, whole-file
// CRC-verified, committed with the same temp+rename+fsync protocol the
// live layer uses for its own commits), and install them through
// live.ApplyManifest — the follower-side half of the generation/
// refcount snapshot contract. A coordinator scatters queries to K
// replicas and gathers through topk.MergeReplicas, so a merged answer
// carries the same exactness/degraded certificate a single node
// produces: a lagging or unreachable replica degrades the certificate
// explicitly, it never silently ages the answer.
//
// The wire protocol is two GET endpoints a leader mounts under /repl/:
//
//	/repl/manifest            → WireManifest: the committed manifest
//	                            plus per-segment file lists with sizes
//	                            and CRC-32 (IEEE) checksums.
//	/repl/segment/{seq}/{file} → one immutable segment file, with Range
//	                            support so an interrupted pull resumes.
//
// Everything a follower pulls is immutable under its name: segment
// directories are named by a forever-unique sequence number and
// alive-bitmap sidecars by version, so there is no cache invalidation
// anywhere — only "have it or not". The manifest ordinal (Generation)
// is the replication clock: a follower is caught up exactly when its
// ordinal equals the leader's.
package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"

	"repro/internal/index"
	"repro/internal/live"
)

// decodeJSON decodes one JSON value from r.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

// The files a segment directory ships.
const (
	segmentDataFile = index.SegmentFile // paged, page-checksummed postings + metadata
	docTermsFile    = live.DocTermsFile // forward sidecar (trailing CRC-32)
)

// Wire paths.
const (
	// Prefix is the URL subtree a leader serves under (mount with
	// server.Mount(Prefix+"/", leader)).
	Prefix = "/repl"
	// ManifestPath serves the WireManifest.
	ManifestPath = Prefix + "/manifest"
	// SegmentPathPrefix precedes "{seq}/{file}" in file requests.
	SegmentPathPrefix = Prefix + "/segment/"
)

// WireFile is one file of a replicated segment: its name inside the
// segment directory, byte size, and whole-file CRC-32 (IEEE — the same
// polynomial the storage layer's section and page checksums use). The
// follower verifies the CRC while streaming and never commits a file
// that does not match.
type WireFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
}

// WireSegment is one active segment in the wire manifest: the live
// manifest entry plus the files a follower must hold to serve it.
type WireSegment struct {
	live.SegmentInfo
	Files []WireFile `json:"files"`
}

// WireManifest is the GET /repl/manifest payload: the leader's
// committed manifest with per-segment file inventories, all captured in
// one consistent snapshot.
type WireManifest struct {
	Generation uint64        `json:"generation"`
	NextSeq    uint64        `json:"next_seq"`
	Segments   []WireSegment `json:"segments"`
}

// Manifest strips the file inventories back to the live manifest form
// ApplyManifest installs.
func (wm *WireManifest) Manifest() live.Manifest {
	m := live.Manifest{Generation: wm.Generation, NextSeq: wm.NextSeq}
	for _, s := range wm.Segments {
		m.Segments = append(m.Segments, s.SegmentInfo)
	}
	return m
}

// aliveFileRe matches alive-bitmap sidecar file names (live.AliveFileName).
var aliveFileRe = regexp.MustCompile(`^alive-[0-9]{6}\.bm$`)

// validFileName whitelists the files the protocol ships: the paged
// postings file, the forward sidecar, and alive-bitmap versions.
// Anything else — and any path shape that could escape the segment
// directory — is rejected.
func validFileName(name string) bool {
	return name == segmentDataFile || name == docTermsFile || aliveFileRe.MatchString(name)
}

// segmentFiles lists the files a follower must pull to serve the
// segment described by info.
func segmentFiles(info live.SegmentInfo) []string {
	files := []string{segmentDataFile, docTermsFile}
	if info.Tomb > 0 {
		files = append(files, live.AliveFileName(info.Tomb))
	}
	return files
}

func checkSeqName(info live.SegmentInfo) error {
	if live.SegmentDirName(info.Seq) != info.Name {
		return fmt.Errorf("replica: segment %q does not match its sequence number %d", info.Name, info.Seq)
	}
	return nil
}
