package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeated values: %d unique of 100", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want about 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(21)
	b := New(21)
	fa := a.Fork()
	// Drawing from the fork must not change the parent's stream relative
	// to a parent that forked but never used the fork.
	_ = b.Fork()
	for i := 0; i < 100; i++ {
		fa.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("using a forked stream perturbed the parent stream")
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
