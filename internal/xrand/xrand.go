// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository.
//
// Every experiment in the paper reproduction must be bit-for-bit
// reproducible across runs and machines, so all randomness flows through
// this package rather than math/rand's global state. The generator is
// splitmix64 feeding xoshiro256**, the same construction used by the Go
// runtime for its fast paths; it is not cryptographically secure and must
// never be used for security purposes.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not usable; construct one with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit seed state and returns the next output.
// It is used only to expand the user seed into the xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators constructed with
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := (-uint64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask32
	t = aLo*bHi + m
	lo |= (t & mask32) << 32
	hi = aHi*bHi + c + t>>32
	return hi, lo
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the swap
// function, via the Fisher-Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator from the current one. Forked
// streams are used to give each experiment component (documents, queries,
// noise) its own stream so adding draws to one does not perturb another.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}
