// Package tune closes the loop between the cost model and the live
// counters: the paper's argument is plan selection by an explicit cost
// model, so the index's own upkeep should run on measured coefficients,
// not hard-coded guesses.
//
// A Tuner does three jobs:
//
//	calibrate  An online regression turns per-query (decodes, faults,
//	           span) observations and direct pool read-latency timings
//	           into the cost package's page-weight coefficient; EWMAs
//	           track the observed query fan-out (replacing the static
//	           terms-per-query guess) and the realized/predicted merge
//	           cost ratio (correcting future merge pricing).
//	decide     Knob recommendations — seal threshold, merge fan-in,
//	           pool pages, amortization horizon — adapt to the observed
//	           read/write mix and fault pressure, each clamped inside
//	           caller-configured Bounds. The live planner prices merge
//	           and purge candidates with the calibrated coefficients
//	           and ranks them by predicted net benefit.
//	account    Every knob change and executed merge/purge is recorded
//	           in a bounded decision log with a running FNV-1a digest
//	           over integer-only canonical strings, so two runs over
//	           the same workload are provably identical (the TUNE bench
//	           gate compares the digest exactly).
//
// Determinism: with Config.SpanModel set, spans are *computed* from the
// operation's decode/fault counts instead of measured — the injectable
// clock. Every tuner state transition is then a pure function of the
// observation stream, which is what keeps the bench regression gate
// byte-stable while still exercising the whole calibration path.
package tune

import (
	"fmt"
	"sync"
	"time"
)

// Bounds is the closed range a knob may adapt within. The zero value
// freezes the knob: recommendations return the caller's base unchanged.
type Bounds struct {
	Min, Max int
}

func (b Bounds) frozen() bool { return b.Min == 0 && b.Max == 0 }

func (b Bounds) clamp(v int) int {
	if v < b.Min {
		v = b.Min
	}
	if v > b.Max {
		v = b.Max
	}
	return v
}

// SpanModel computes operation spans from counters instead of the wall
// clock: span = decodes·DecodeCost + faults·FaultCost. It makes every
// tuner decision a deterministic function of the observation stream —
// set it in benches and tests; leave nil in production to measure real
// time.
type SpanModel struct {
	DecodeCost time.Duration // cost per decoded posting
	FaultCost  time.Duration // cost per faulted block / page read
}

// Config parameterizes a Tuner. The zero value is usable: wall-clock
// spans, every knob frozen, default decay rates.
type Config struct {
	// SpanModel, when set, derives spans from counters (see SpanModel).
	SpanModel *SpanModel
	// Now supplies timestamps in measured mode. nil means time.Now.
	Now func() time.Time
	// SealDocs / MergeFanIn / PoolPages bound the corresponding knob
	// recommendations. Zero Bounds freeze a knob at its base value.
	SealDocs   Bounds
	MergeFanIn Bounds
	PoolPages  Bounds
	// HorizonScale caps the adaptive amortization-horizon multiplier:
	// the effective horizon stays within [base/HorizonScale,
	// base×HorizonScale] (floored at 1). Default 8.
	HorizonScale float64
	// MinPageWeight / MaxPageWeight clamp the calibrated page weight.
	// Defaults 1 and 1e6.
	MinPageWeight, MaxPageWeight float64
	// Alpha is the per-observation decay of the regression and latency
	// EWMAs. Default 0.05.
	Alpha float64
	// MixAlpha is the decay of the read/write mix EWMA that drives the
	// knob policy. Default 0.02 (time constant ≈ 50 operations).
	MixAlpha float64
	// Recent bounds the retained decision ring surfaced by Stats.
	// Default 16.
	Recent int
}

func (c *Config) fillDefaults() {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.HorizonScale <= 0 {
		c.HorizonScale = 8
	}
	if c.MinPageWeight <= 0 {
		c.MinPageWeight = 1
	}
	if c.MaxPageWeight <= 0 {
		c.MaxPageWeight = 1e6
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.MixAlpha <= 0 {
		c.MixAlpha = 0.02
	}
	if c.Recent <= 0 {
		c.Recent = 16
	}
}

// Decision is one recorded tuner action: a knob change or an executed
// merge/purge with its price tag.
type Decision struct {
	Seq      int64   `json:"seq"`
	Kind     string  `json:"kind"`   // "seal-docs", "fan-in", "pool-pages", "horizon", "merge", "purge"
	Detail   string  `json:"detail"` // integer-only canonical description
	Horizon  int     `json:"horizon,omitempty"`
	PredGain float64 `json:"pred_gain,omitempty"` // weighted per-query gain at decision time
	PredCost float64 `json:"pred_cost,omitempty"` // predicted one-time weighted cost
	RealCost float64 `json:"real_cost,omitempty"` // realized weighted cost (merge/purge only)
}

// Stats is the tuner's observable state, surfaced on /metrics and /tune.
type Stats struct {
	Enabled       bool    `json:"enabled"`
	PageWeight    float64 `json:"page_weight"`
	DecodeNs      float64 `json:"decode_ns"`
	FaultNs       float64 `json:"fault_ns"`
	TermsPerQuery float64 `json:"terms_per_query"`
	CostRatio     float64 `json:"merge_cost_ratio"` // realized/predicted EWMA
	QueryMix      float64 `json:"query_mix"`        // EWMA fraction of ops that are queries

	Queries   int64 `json:"queries_observed"`
	Writes    int64 `json:"writes_observed"`
	Deletes   int64 `json:"deletes_observed"`
	Merges    int64 `json:"merges_observed"`
	PoolReads int64 `json:"pool_reads_observed"`

	SealDocs   int `json:"seal_docs,omitempty"` // last recommendation (0 before first ask)
	MergeFanIn int `json:"merge_fan_in,omitempty"`
	PoolPages  int `json:"pool_pages,omitempty"`
	Horizon    int `json:"horizon,omitempty"`

	Decisions      int64      `json:"decisions_total"`
	DecisionDigest uint32     `json:"decision_digest"`
	Recent         []Decision `json:"recent_decisions,omitempty"`
}

// Tuner is the calibrating, deciding, accounting core. All methods are
// safe for concurrent use and nil-safe (a nil Tuner observes nothing
// and recommends every base unchanged), so call sites need no guards.
// A Tuner must not be shared between writers: its decision log is the
// writer's audit trail.
type Tuner struct {
	cfg Config

	mu  sync.Mutex
	cal calibrator

	mix     ewma // 1 per query, 0 per write/delete
	faultsQ ewma // faults per query, the pool-pressure signal

	queries, writes, deletes, merges int64

	costRatio ewma // realized/predicted merge cost, clamped [1/4, 4]

	// last returned knob values, for change detection
	lastSeal, lastFan, lastPool, lastHorizon int

	decisions []Decision // ring, newest last, ≤ cfg.Recent
	decSeq    int64
	digest    uint32 // FNV-1a (32-bit) over canonical decision strings
}

const fnvOffset32, fnvPrime32 = 2166136261, 16777619

// New builds a Tuner. The zero Config is valid (see Config).
func New(cfg Config) *Tuner {
	cfg.fillDefaults()
	t := &Tuner{
		cfg:       cfg,
		cal:       newCalibrator(cfg.Alpha, cfg.Alpha),
		mix:       ewma{alpha: cfg.MixAlpha},
		faultsQ:   ewma{alpha: cfg.Alpha},
		costRatio: ewma{alpha: cfg.Alpha},
		digest:    fnvOffset32,
	}
	return t
}

// SpanToken carries the start timestamp of a measured span. In
// deterministic (SpanModel) mode it is empty and free.
type SpanToken struct {
	t time.Time
}

// StartSpan opens a span for a subsequent Observe call. Cheap in
// deterministic mode: no clock is read.
func (t *Tuner) StartSpan() SpanToken {
	if t == nil || t.cfg.SpanModel != nil {
		return SpanToken{}
	}
	return SpanToken{t: t.cfg.Now()}
}

// spanNs resolves a span in nanoseconds: modeled from counters when a
// SpanModel is set, measured otherwise.
func (t *Tuner) spanNs(tok SpanToken, decodes, faults int64) float64 {
	if m := t.cfg.SpanModel; m != nil {
		return float64(decodes)*float64(m.DecodeCost) + float64(faults)*float64(m.FaultCost)
	}
	if tok.t.IsZero() {
		return 0
	}
	return float64(t.cfg.Now().Sub(tok.t))
}

// ObserveQuery folds one completed query into the calibration state:
// resolved term fan-out, decode/fault counter deltas, and the span
// opened by StartSpan.
func (t *Tuner) ObserveQuery(terms int, decodes, faults int64, tok SpanToken) {
	if t == nil || decodes < 0 || faults < 0 {
		return
	}
	span := t.spanNs(tok, decodes, faults)
	t.mu.Lock()
	t.queries++
	t.mix.observe(1)
	if terms > 0 {
		t.cal.terms.observe(float64(terms))
	}
	t.faultsQ.observe(float64(faults))
	if span > 0 || t.cfg.SpanModel != nil {
		t.cal.observeQuery(decodes, faults, span)
	}
	t.mu.Unlock()
}

// ObserveWrite counts one accepted document write.
func (t *Tuner) ObserveWrite() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.writes++
	t.mix.observe(0)
	t.mu.Unlock()
}

// ObserveDelete counts one tombstoned document.
func (t *Tuner) ObserveDelete() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.deletes++
	t.mix.observe(0)
	t.mu.Unlock()
}

// ObservePoolReads folds n physical page reads totalling total into the
// direct fault-latency channel. In deterministic mode the measured
// duration is replaced by the span model's value, so the channel stays
// exercised without poisoning determinism.
func (t *Tuner) ObservePoolReads(n int64, total time.Duration) {
	if t == nil || n <= 0 {
		return
	}
	if m := t.cfg.SpanModel; m != nil {
		total = time.Duration(n) * m.FaultCost
	}
	t.mu.Lock()
	t.cal.observePoolReads(n, float64(total))
	t.mu.Unlock()
}

// MergeObs reports one committed merge or purge rewrite.
type MergeObs struct {
	Kind     string // "merge" or "purge"
	Inputs   int    // run length
	FirstSeq uint64 // sequence number of the run's first segment

	PagesRead    int64 // input pages read
	PagesWritten int64 // output pages written
	Reencoded    int64 // postings re-encoded into the output

	PredGain float64 // weighted per-query gain the plan predicted
	PredCost float64 // weighted one-time cost the plan predicted
	Horizon  int     // effective horizon the plan used
}

// ObserveMerge records a committed merge/purge: the realized weighted
// cost is computed from the measured page/re-encode counters with the
// current page weight, and the realized/predicted ratio (clamped to
// [1/4, 4]) corrects future merge pricing.
func (t *Tuner) ObserveMerge(o MergeObs) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.merges++
	w := t.cal.pageWeight(t.cfg.MinPageWeight, t.cfg.MaxPageWeight)
	real := w*float64(o.PagesRead+o.PagesWritten) + float64(o.Reencoded)
	if o.PredCost > 0 {
		ratio := real / o.PredCost
		if ratio < 0.25 {
			ratio = 0.25
		}
		if ratio > 4 {
			ratio = 4
		}
		t.costRatio.observe(ratio)
	}
	kind := o.Kind
	if kind != "purge" {
		kind = "merge"
	}
	t.addDecisionLocked(Decision{
		Kind:     kind,
		Detail:   fmt.Sprintf("k=%d seq=%d pages=%d reenc=%d", o.Inputs, o.FirstSeq, o.PagesRead+o.PagesWritten, o.Reencoded),
		Horizon:  o.Horizon,
		PredGain: o.PredGain,
		PredCost: o.PredCost,
		RealCost: real,
	})
	t.mu.Unlock()
}

// PageWeight is the calibrated page-touch/decode cost ratio for
// cost.EstimateMerge, clamped to the configured range.
func (t *Tuner) PageWeight() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cal.pageWeight(t.cfg.MinPageWeight, t.cfg.MaxPageWeight)
}

// TermsPerQuery is the observed query fan-out EWMA; 0 until the first
// query is observed (callers fall back to their static default).
func (t *Tuner) TermsPerQuery() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.cal.terms.seen {
		return 0
	}
	return t.cal.terms.v
}

// CostRatio is the realized/predicted merge-cost correction factor
// (1 until the first merge is observed).
func (t *Tuner) CostRatio() float64 {
	if t == nil {
		return 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.costRatio.seen {
		return 1
	}
	return t.costRatio.v
}

// queryWriteRatio derives the horizon multiplier from the mix EWMA,
// clamped to [1/scale, scale].
func (t *Tuner) queryWriteRatioLocked() float64 {
	if !t.mix.seen {
		return 1
	}
	m := t.mix.v
	if m >= 1 {
		return t.cfg.HorizonScale
	}
	qw := m / (1 - m)
	if qw < 1/t.cfg.HorizonScale {
		qw = 1 / t.cfg.HorizonScale
	}
	if qw > t.cfg.HorizonScale {
		qw = t.cfg.HorizonScale
	}
	return qw
}

// Horizon adapts the amortization horizon to the observed read/write
// mix: read-heavy phases stretch it (merges amortize over many queries
// to come), write-heavy phases shrink it (a merged run is soon buried
// under new segments). Clamped to [1, base×HorizonScale].
func (t *Tuner) Horizon(base int) int {
	if t == nil {
		return base
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := int(float64(base)*t.queryWriteRatioLocked() + 0.5)
	if h < 1 {
		h = 1
	}
	if max := int(float64(base) * t.cfg.HorizonScale); h > max && max >= 1 {
		h = max
	}
	t.noteKnobLocked("horizon", &t.lastHorizon, h)
	return h
}

// SealDocs recommends the seal threshold: write-heavy phases seal
// bigger segments (fewer fragments to merge back down), otherwise the
// base keeps ingest-to-visible latency low.
func (t *Tuner) SealDocs(base int) int {
	if t == nil || t.cfg.SealDocs.frozen() {
		return base
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := base
	if t.mix.seen && t.mix.v <= 0.25 {
		v = t.cfg.SealDocs.Max
	}
	v = t.cfg.SealDocs.clamp(v)
	t.noteKnobLocked("seal-docs", &t.lastSeal, v)
	return v
}

// MergeFanIn recommends the tiered-merge run length: read-heavy phases
// merge eagerly in small runs (fragmentation taxes every query),
// write-heavy phases wait for wider runs (each document is re-copied
// fewer times).
func (t *Tuner) MergeFanIn(base int) int {
	if t == nil || t.cfg.MergeFanIn.frozen() {
		return base
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := base
	if t.mix.seen {
		switch {
		case t.mix.v <= 0.25:
			v = t.cfg.MergeFanIn.Max
		case t.mix.v >= 0.75:
			v = t.cfg.MergeFanIn.Min
		}
	}
	v = t.cfg.MergeFanIn.clamp(v)
	t.noteKnobLocked("fan-in", &t.lastFan, v)
	return v
}

// FanInRange is the window of run lengths the tuned planner prices
// merge candidates at: the configured MergeFanIn bounds (floored at 2),
// or just the base when the knob is frozen. Unlike MergeFanIn it makes
// no mix-driven choice — the planner's net-benefit ranking picks the
// size that pays best.
func (t *Tuner) FanInRange(base int) (lo, hi int) {
	if t == nil || t.cfg.MergeFanIn.frozen() {
		return base, base
	}
	lo, hi = t.cfg.MergeFanIn.Min, t.cfg.MergeFanIn.Max
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// PoolPages recommends the per-segment buffer-pool capacity: sustained
// query fault pressure raises it toward the bound (trading memory for
// fewer page faults), calm phases return the base.
func (t *Tuner) PoolPages(base int) int {
	if t == nil || t.cfg.PoolPages.frozen() {
		return base
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := base
	if t.faultsQ.seen && t.faultsQ.v >= 1 {
		v = t.cfg.PoolPages.Max
	}
	v = t.cfg.PoolPages.clamp(v)
	t.noteKnobLocked("pool-pages", &t.lastPool, v)
	return v
}

// noteKnobLocked records a decision when a knob recommendation changes.
func (t *Tuner) noteKnobLocked(kind string, last *int, v int) {
	if *last == v {
		return
	}
	t.addDecisionLocked(Decision{Kind: kind, Detail: fmt.Sprintf("%d->%d", *last, v)})
	*last = v
}

// addDecisionLocked appends to the bounded ring and folds the decision
// into the running digest. The canonical string is integer-only — the
// float predictions are display data, not identity — so the digest is
// bit-stable across architectures.
func (t *Tuner) addDecisionLocked(d Decision) {
	t.decSeq++
	d.Seq = t.decSeq
	canonical := fmt.Sprintf("%d|%s|%s|%d;", d.Seq, d.Kind, d.Detail, d.Horizon)
	for i := 0; i < len(canonical); i++ {
		t.digest ^= uint32(canonical[i])
		t.digest *= fnvPrime32
	}
	t.decisions = append(t.decisions, d)
	if len(t.decisions) > t.cfg.Recent {
		t.decisions = t.decisions[len(t.decisions)-t.cfg.Recent:]
	}
}

// DecisionDigest is the running FNV-1a digest over every decision made
// so far. Two runs over the same deterministic workload must agree.
func (t *Tuner) DecisionDigest() uint32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.digest
}

// Stats snapshots the tuner for /metrics and /tune.
func (t *Tuner) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Enabled:        true,
		PageWeight:     t.cal.pageWeight(t.cfg.MinPageWeight, t.cfg.MaxPageWeight),
		DecodeNs:       t.cal.decodeNs,
		FaultNs:        t.cal.faultNs,
		Queries:        t.queries,
		Writes:         t.writes,
		Deletes:        t.deletes,
		Merges:         t.merges,
		PoolReads:      t.cal.poolReads,
		SealDocs:       t.lastSeal,
		MergeFanIn:     t.lastFan,
		PoolPages:      t.lastPool,
		Horizon:        t.lastHorizon,
		Decisions:      t.decSeq,
		DecisionDigest: t.digest,
		Recent:         append([]Decision(nil), t.decisions...),
	}
	if t.cal.terms.seen {
		s.TermsPerQuery = t.cal.terms.v
	}
	if t.costRatio.seen {
		s.CostRatio = t.costRatio.v
	} else {
		s.CostRatio = 1
	}
	if t.mix.seen {
		s.QueryMix = t.mix.v
	}
	return s
}
