package tune

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// planted true costs for the synthetic streams
const (
	plantDecodeNs = 120.0
	plantFaultNs  = 90_000.0
)

// feedPlanted streams n synthetic queries whose spans follow the
// planted linear model exactly, with decode and fault counts varied
// independently so both coefficients are identified.
func feedPlanted(c *calibrator, n int, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		d := int64(500 + rng.Intn(5000))
		f := int64(rng.Intn(40))
		span := plantDecodeNs*float64(d) + plantFaultNs*float64(f)
		c.observeQuery(d, f, span)
	}
}

// TestCalibratorConvergence: on an exactly linear observation stream
// the regression must recover the planted coefficients — and therefore
// the planted page weight — to high precision.
func TestCalibratorConvergence(t *testing.T) {
	c := newCalibrator(0.05, 0.05)
	feedPlanted(&c, 500, rand.New(rand.NewSource(1)))
	if rel := math.Abs(c.decodeNs-plantDecodeNs) / plantDecodeNs; rel > 1e-6 {
		t.Fatalf("decodeNs = %g, want %g (rel err %g)", c.decodeNs, plantDecodeNs, rel)
	}
	if rel := math.Abs(c.faultNs-plantFaultNs) / plantFaultNs; rel > 1e-6 {
		t.Fatalf("faultNs = %g, want %g (rel err %g)", c.faultNs, plantFaultNs, rel)
	}
	want := plantFaultNs / plantDecodeNs
	if got := c.pageWeight(1, 1e6); math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("pageWeight = %g, want %g", got, want)
	}
}

// TestCalibratorConvergenceNoisy: with bounded multiplicative noise the
// estimates still land within the noise band.
func TestCalibratorConvergenceNoisy(t *testing.T) {
	c := newCalibrator(0.05, 0.05)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		d := int64(500 + rng.Intn(5000))
		f := int64(rng.Intn(40))
		noise := 1 + 0.1*(rng.Float64()-0.5)
		span := (plantDecodeNs*float64(d) + plantFaultNs*float64(f)) * noise
		c.observeQuery(d, f, span)
	}
	if rel := math.Abs(c.decodeNs-plantDecodeNs) / plantDecodeNs; rel > 0.15 {
		t.Fatalf("decodeNs = %g, want %g ± 15%%", c.decodeNs, plantDecodeNs)
	}
	if rel := math.Abs(c.faultNs-plantFaultNs) / plantFaultNs; rel > 0.15 {
		t.Fatalf("faultNs = %g, want %g ± 15%%", c.faultNs, plantFaultNs)
	}
}

// TestCalibratorMonotoneInLatency: the same counter stream under a
// costlier fault latency must calibrate a strictly larger page weight —
// through the regression channel and through the direct pool channel.
func TestCalibratorMonotoneInLatency(t *testing.T) {
	weightAt := func(faultNs float64) float64 {
		c := newCalibrator(0.05, 0.05)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			d := int64(500 + rng.Intn(5000))
			f := int64(rng.Intn(40))
			c.observeQuery(d, f, plantDecodeNs*float64(d)+faultNs*float64(f))
		}
		return c.pageWeight(1, 1e6)
	}
	lo, mid, hi := weightAt(30_000), weightAt(90_000), weightAt(300_000)
	if !(lo < mid && mid < hi) {
		t.Fatalf("page weight not monotone in fault latency: %g, %g, %g", lo, mid, hi)
	}

	poolWeightAt := func(readNs float64) float64 {
		c := newCalibrator(0.05, 0.05)
		for i := 0; i < 100; i++ {
			c.observePoolReads(4, 4*readNs)
		}
		return c.pageWeight(1, 1e6)
	}
	lo, hi = poolWeightAt(50_000), poolWeightAt(500_000)
	if !(lo < hi) {
		t.Fatalf("page weight not monotone in pool read latency: %g vs %g", lo, hi)
	}
}

// TestCalibratorDegenerateStreams: streams that never vary one input
// identify only the other coefficient and keep the prior for the rest;
// estimates never go non-positive.
func TestCalibratorDegenerateStreams(t *testing.T) {
	// faults always zero: decode axis identified, fault prior retained
	c := newCalibrator(0.05, 0.05)
	for i := 0; i < 200; i++ {
		d := int64(1000 + 10*i)
		c.observeQuery(d, 0, plantDecodeNs*float64(d))
	}
	if rel := math.Abs(c.decodeNs-plantDecodeNs) / plantDecodeNs; rel > 1e-6 {
		t.Fatalf("decode-only stream: decodeNs = %g, want %g", c.decodeNs, plantDecodeNs)
	}
	if c.faultNs != initialFaultNs {
		t.Fatalf("decode-only stream moved faultNs to %g", c.faultNs)
	}

	// all-zero observations must not corrupt anything
	c = newCalibrator(0.05, 0.05)
	for i := 0; i < 50; i++ {
		c.observeQuery(0, 0, 0)
	}
	if c.decodeNs != initialDecodeNs || c.faultNs != initialFaultNs {
		t.Fatalf("zero stream moved coefficients: %g, %g", c.decodeNs, c.faultNs)
	}
}

// TestTunerDeterministicSpans: with a SpanModel, two tuners fed the
// same observation stream agree exactly — coefficients, digest, and
// decision log — and the calibrated weight equals the planted ratio.
func TestTunerDeterministicSpans(t *testing.T) {
	mk := func() *Tuner {
		return New(Config{
			SpanModel:  &SpanModel{DecodeCost: 100 * time.Nanosecond, FaultCost: 100 * time.Microsecond},
			SealDocs:   Bounds{Min: 100, Max: 400},
			MergeFanIn: Bounds{Min: 2, Max: 6},
			PoolPages:  Bounds{Min: 32, Max: 128},
		})
	}
	feed := func(tn *Tuner) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			if rng.Intn(3) == 0 {
				tn.ObserveWrite()
			} else {
				d := int64(200 + rng.Intn(3000))
				f := int64(rng.Intn(20))
				tn.ObserveQuery(2+rng.Intn(4), d, f, tn.StartSpan())
			}
			if i%16 == 0 {
				tn.SealDocs(100)
				tn.MergeFanIn(4)
				tn.PoolPages(32)
				tn.Horizon(1000)
			}
		}
		tn.ObserveMerge(MergeObs{Kind: "merge", Inputs: 4, FirstSeq: 9, PagesRead: 40, PagesWritten: 35, Reencoded: 20000, PredGain: 12000, PredCost: 95000, Horizon: 1000})
	}
	a, b := mk(), mk()
	feed(a)
	feed(b)
	if a.DecisionDigest() != b.DecisionDigest() {
		t.Fatalf("same stream, different digests: %d vs %d", a.DecisionDigest(), b.DecisionDigest())
	}
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("same stream, different stats: %+v vs %+v", sa, sb)
	}
	if math.Abs(sa.PageWeight-1000) > 1e-6 {
		t.Fatalf("modeled spans must calibrate the planted ratio 1000, got %g", sa.PageWeight)
	}
	if sa.Decisions == 0 || len(sa.Recent) == 0 {
		t.Fatal("no decisions recorded")
	}
}

// TestTunerKnobBoundsAndFreeze: recommendations stay inside Bounds,
// zero Bounds freeze the knob, and a nil Tuner recommends the base.
func TestTunerKnobBoundsAndFreeze(t *testing.T) {
	var nilT *Tuner
	if nilT.SealDocs(123) != 123 || nilT.Horizon(77) != 77 || nilT.PageWeight() != 0 {
		t.Fatal("nil tuner must pass bases through")
	}

	tn := New(Config{
		SealDocs:   Bounds{Min: 100, Max: 400},
		MergeFanIn: Bounds{Min: 2, Max: 6},
		PoolPages:  Bounds{Min: 32, Max: 128},
	})
	// Drive the mix write-heavy: every adaptive knob must still respect
	// its bounds.
	for i := 0; i < 500; i++ {
		tn.ObserveWrite()
	}
	if v := tn.SealDocs(100); v < 100 || v > 400 {
		t.Fatalf("SealDocs %d outside [100, 400]", v)
	}
	if v := tn.MergeFanIn(4); v < 2 || v > 6 {
		t.Fatalf("MergeFanIn %d outside [2, 6]", v)
	}
	if v := tn.PoolPages(32); v < 32 || v > 128 {
		t.Fatalf("PoolPages %d outside [32, 128]", v)
	}
	if h := tn.Horizon(1000); h < 1 || h > 8000 {
		t.Fatalf("Horizon %d outside [1, 8000]", h)
	}

	frozen := New(Config{})
	for i := 0; i < 500; i++ {
		frozen.ObserveWrite()
	}
	if frozen.SealDocs(123) != 123 || frozen.MergeFanIn(4) != 4 || frozen.PoolPages(64) != 64 {
		t.Fatal("zero Bounds must freeze knobs at their base")
	}
}

// TestTunerHorizonTracksMix: a read-heavy stream stretches the horizon,
// a write-heavy stream shrinks it, and both stay clamped.
func TestTunerHorizonTracksMix(t *testing.T) {
	reads := New(Config{})
	for i := 0; i < 500; i++ {
		reads.ObserveQuery(3, 1000, 2, reads.StartSpan())
	}
	writes := New(Config{})
	for i := 0; i < 500; i++ {
		writes.ObserveWrite()
	}
	hr, hw := reads.Horizon(1000), writes.Horizon(1000)
	if hr <= 1000 {
		t.Fatalf("read-heavy horizon %d not stretched above base", hr)
	}
	if hw >= 1000 {
		t.Fatalf("write-heavy horizon %d not shrunk below base", hw)
	}
	if hr > 8000 || hw < 1 {
		t.Fatalf("horizons %d/%d escaped the clamp", hr, hw)
	}
}

// TestTunerCostRatio: realized-vs-predicted feedback moves the ratio,
// clamped to [1/4, 4].
func TestTunerCostRatio(t *testing.T) {
	tn := New(Config{})
	if tn.CostRatio() != 1 {
		t.Fatalf("prior cost ratio = %g, want 1", tn.CostRatio())
	}
	for i := 0; i < 200; i++ {
		tn.ObserveMerge(MergeObs{Kind: "merge", Inputs: 2, PagesRead: 10, PagesWritten: 10, Reencoded: 0, PredCost: 1})
	}
	if got := tn.CostRatio(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("overrun ratio not clamped at 4: %g", got)
	}
}
