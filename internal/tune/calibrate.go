package tune

// ewma is an exponentially weighted moving average that seeds itself on
// the first observation.
type ewma struct {
	v     float64
	alpha float64
	seen  bool
}

func (e *ewma) observe(x float64) {
	if !e.seen {
		e.v, e.seen = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

// calibrator fits the cost model's two coefficients — nanoseconds per
// decoded posting and nanoseconds per block fault — from observed query
// spans by exponentially weighted least squares through the origin:
//
//	span ≈ decodeNs·decodes + faultNs·faults
//
// The decayed normal-equation sums make old workload phases fade at the
// same rate as the EWMAs. A second, direct channel measures physical
// page-read latency in isolation (storage.Pool timings); once it has
// data it overrides the regression's fault estimate, which is the
// harder coefficient to identify when warm caches keep faults rare.
type calibrator struct {
	alpha float64

	// decayed sums: S_xy = Σ decay^age · x·y
	sdd, sdf, sff, sdy, sfy float64

	decodeNs float64 // current estimate, ns per decoded posting
	faultNs  float64 // current estimate, ns per faulted block

	poolNs    ewma // direct physical-read latency channel, ns per read
	poolReads int64

	terms ewma // observed query fan-out (resolved terms per query)
}

// initialDecodeNs/initialFaultNs seed the coefficients at a ratio equal
// to cost.DefaultPageWeight (1000): a page fault is worth about a
// thousand posting decodes until measurements say otherwise.
const (
	initialDecodeNs = 100
	initialFaultNs  = 100_000
)

func newCalibrator(alpha, termsAlpha float64) calibrator {
	return calibrator{
		alpha:    alpha,
		decodeNs: initialDecodeNs,
		faultNs:  initialFaultNs,
		poolNs:   ewma{alpha: alpha},
		terms:    ewma{alpha: termsAlpha},
	}
}

// observeQuery folds one query's decode/fault counts and span (ns) into
// the regression and re-solves.
func (c *calibrator) observeQuery(decodes, faults int64, spanNs float64) {
	d, f := float64(decodes), float64(faults)
	decay := 1 - c.alpha
	c.sdd = c.sdd*decay + c.alpha*d*d
	c.sdf = c.sdf*decay + c.alpha*d*f
	c.sff = c.sff*decay + c.alpha*f*f
	c.sdy = c.sdy*decay + c.alpha*d*spanNs
	c.sfy = c.sfy*decay + c.alpha*f*spanNs
	c.solve()
}

// observePoolReads folds n physical page reads totalling totalNs into
// the direct fault-latency channel.
func (c *calibrator) observePoolReads(n int64, totalNs float64) {
	if n <= 0 || totalNs < 0 {
		return
	}
	c.poolReads += n
	c.poolNs.observe(totalNs / float64(n))
	c.solve()
}

// solve refreshes the coefficient estimates from the current sums. A
// coefficient only moves when the data identifies it: non-positive or
// ill-conditioned solutions keep the previous estimate.
func (c *calibrator) solve() {
	const eps = 1e-9
	switch {
	case c.sdd <= 0 && c.sff <= 0:
		// no data yet
	case c.sff <= eps*c.sdd:
		// faults never varied: identify the decode axis only
		if a := c.sdy / c.sdd; a > 0 {
			c.decodeNs = a
		}
	case c.sdd <= eps*c.sff:
		if b := c.sfy / c.sff; b > 0 {
			c.faultNs = b
		}
	default:
		det := c.sdd*c.sff - c.sdf*c.sdf
		if det > eps*c.sdd*c.sff {
			if a := (c.sdy*c.sff - c.sfy*c.sdf) / det; a > 0 {
				c.decodeNs = a
			}
			if b := (c.sfy*c.sdd - c.sdy*c.sdf) / det; b > 0 {
				c.faultNs = b
			}
		} else if a := c.sdy / c.sdd; a > 0 {
			// collinear inputs: attribute along the decode axis
			c.decodeNs = a
		}
	}
	if c.poolNs.seen {
		c.faultNs = c.poolNs.v
	}
}

// pageWeight is the calibrated fault/decode cost ratio, clamped.
func (c *calibrator) pageWeight(min, max float64) float64 {
	w := c.faultNs / c.decodeNs
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	return w
}
