// Package bench implements the experiment harness: one runner per table
// or figure of the reproduction (F1, E1..E10 in DESIGN.md §4), shared by
// the topnbench command and the repository's testing.B benchmarks.
//
// Every runner builds its own workload from deterministic seeds, executes
// the competing strategies, and returns a Table whose rows are the series
// the paper (or the cited baseline paper) reports: speedups, quality
// drops, access counts, crossover points. Wall-clock is reported where
// meaningful, but the primary measurements are the deterministic counters
// (postings decoded, page reads, sorted/random accesses, comparisons), so
// results are machine-independent.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment's output: a titled grid plus free-form notes
// (observations the experiment asserts, e.g. "crossover at k=...").
// Metrics carries the experiment's headline numbers in machine-readable
// form for the JSON report (decodes, skips, hit rate, ...); nil when a
// runner has none beyond its rows.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Metrics map[string]float64
}

// SetMetric records one machine-readable metric, allocating the map on
// first use.
func (t *Table) SetMetric(key string, v float64) {
	if t.Metrics == nil {
		t.Metrics = make(map[string]float64)
	}
	t.Metrics[key] = v
}

// AddRow appends a formatted row; values are Sprint-ed.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	if len(s) > 12 {
		s = fmt.Sprintf("%.3g", x)
	}
	return s
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Scale selects the experiment size. Unit tests and smoke runs use Small;
// the recorded EXPERIMENTS.md numbers use Full.
type Scale int

// The harness scales.
const (
	// ScaleSmall finishes each experiment in well under a second.
	ScaleSmall Scale = iota
	// ScaleFull is the experiment scale recorded in EXPERIMENTS.md.
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "small"
}
