package bench

import (
	"repro/internal/exec"
	"repro/internal/stopafter"
	"repro/internal/xrand"
)

// RunE7 regenerates the Carey-Kossmann STOP AFTER comparison: conservative
// vs aggressive stop placement over a selectivity sweep, reporting the
// expensive-predicate evaluations, restarts and total scan work. The
// crossover — aggressive wins at high selectivity, pays restarts at low —
// is the behaviour the original paper reports and the reason cost-based
// placement (Step 3) is needed.
func RunE7(s Scale, seed uint64) (*Table, error) {
	rows := 20000
	if s == ScaleFull {
		rows = 200000
	}
	rng := xrand.New(seed)
	table := make([]exec.Row, rows)
	for i := range table {
		table[i] = exec.Row{ID: uint32(i), Score: rng.Float64(), Attr: rng.Float64()}
	}
	t := &Table{
		ID:      "E7",
		Title:   "STOP AFTER n=10: conservative vs aggressive placement over selectivity",
		Columns: []string{"selectivity", "policy", "predEvals", "rowsScanned", "restarts"},
	}
	const n = 10
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		pred := func(r exec.Row) bool { return r.Attr < sel }
		cons, err := stopafter.Conservative(table, pred, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(sel, "conservative", cons.Stats.PredEvals, cons.Stats.RowsScanned, cons.Stats.Restarts)
		aggr, err := stopafter.Aggressive(table, pred, n, sel)
		if err != nil {
			return nil, err
		}
		t.AddRow(sel, "aggressive", aggr.Stats.PredEvals, aggr.Stats.RowsScanned, aggr.Stats.Restarts)
		// Also show the estimator-risk case: the optimizer believes the
		// predicate passes half the rows regardless of truth.
		mis, err := stopafter.Aggressive(table, pred, n, 0.5)
		if err != nil {
			return nil, err
		}
		t.AddRow(sel, "aggressive(est=0.5)", mis.Stats.PredEvals, mis.Stats.RowsScanned, mis.Stats.Restarts)
	}
	t.Notes = append(t.Notes,
		"expected shape: aggressive saves predicate work everywhere; bad estimates cost restarts at low selectivity")
	return t, nil
}
