package bench

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Report is the machine-readable counterpart of the rendered tables:
// one entry per experiment run, with wall-clock and the runner's
// headline metrics (decodes, skips, hit rate, ...) alongside the full
// row grid. topnbench -json writes one Report per invocation; CI
// uploads it as an artifact so benchmark trajectories accumulate across
// commits. GitSHA and Timestamp make each artifact a self-describing
// trajectory point; CompareReports ignores them (they differ by
// construction between a baseline and a fresh run).
type Report struct {
	Scale     string `json:"scale"`
	Seed      uint64 `json:"seed"`
	GitSHA    string `json:"git_sha,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`

	Experiments []ReportExperiment `json:"experiments"`
}

// Stamp fills the provenance fields: the current commit (best effort —
// `git rev-parse HEAD`, then the GITHUB_SHA environment CI exports,
// then "unknown") and the UTC wall time.
func (r *Report) Stamp() {
	r.Timestamp = time.Now().UTC().Format(time.RFC3339)
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		r.GitSHA = strings.TrimSpace(string(out))
		return
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		r.GitSHA = sha
		return
	}
	r.GitSHA = "unknown"
}

// ReportExperiment is one experiment's machine-readable record.
type ReportExperiment struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	WallMS  float64            `json:"wall_ms"`
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Notes   []string           `json:"notes,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Add records one finished experiment.
func (r *Report) Add(t *Table, wall time.Duration) {
	r.Experiments = append(r.Experiments, ReportExperiment{
		ID:      t.ID,
		Title:   t.Title,
		WallMS:  float64(wall.Microseconds()) / 1000,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
		Metrics: t.Metrics,
	})
}

// WriteJSON serializes the report, indented for artifact diffing.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
