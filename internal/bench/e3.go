package bench

import (
	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/rank"
)

// RunE3 regenerates the safe-switching measurement: a sweep over the
// quality-check threshold, reporting how often the plan switches to the
// large fragment, the resulting cost, and the restored quality. The
// paper: inserting the early check "improved the answer quality
// significantly but lowered the speed also quite a lot" — the table shows
// that trade-off as the threshold moves from never-switch (unsafe) to
// always-switch (full).
func RunE3(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	engine, fx, err := w.BuildEngine(fragFracFor(s), rank.NewBM25())
	if err != nil {
		return nil, err
	}
	// Ground truth from full processing.
	truth := make([]quality.Qrels, len(w.Queries))
	var fullDecodes int64
	for i, q := range w.Queries {
		fx.ResetCounters()
		res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			return nil, err
		}
		fullDecodes += decoded(fx)
		truth[i] = quality.NewQrels(res.Top)
	}

	t := &Table{
		ID:      "E3",
		Title:   "safe switching: quality-check threshold sweep",
		Columns: []string{"threshold", "switched", "decodes", "cost%ofFull", "P@10", "MAP"},
	}
	// 0.01 rather than 0: an explicit zero threshold would be replaced by
	// the option default, and a query whose coverage is exactly 0 (no
	// small-fragment term at all) should arguably switch anyway.
	for _, th := range []float64{0.01, 0.2, 0.4, 0.6, 0.8, 0.95, 1.01} {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			return nil, err
		}
		var decodes int64
		switched := 0
		for i, q := range w.Queries {
			fx.ResetCounters()
			res, err := engine.Search(q, core.Options{
				N: 10, Mode: core.ModeSafe, SwitchThreshold: th,
			})
			if err != nil {
				return nil, err
			}
			decodes += decoded(fx)
			if res.Switched {
				switched++
			}
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		t.AddRow(th, switched, decodes,
			100*float64(decodes)/float64(fullDecodes), sum.MeanPrecision, sum.MAP)
	}
	t.Notes = append(t.Notes,
		"threshold 0.01 is near-pure unsafe; threshold > 1 always consults the large fragment",
		"paper claim: the early check restores quality at a speed cost between unsafe and full")
	return t, nil
}

// fragFracFor picks the fragment fraction reproducing the paper's
// operating point at each scale (see the core test calibration: small
// corpora need a slightly larger fraction for the fragment to reach past
// the hapax terms).
func fragFracFor(s Scale) float64 {
	if s == ScaleFull {
		return 0.05
	}
	return 0.10
}
