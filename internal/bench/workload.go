package bench

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// Workload bundles the shared ingredients of the IR experiments: a
// collection, its query set, and a buffer-pooled disk to build indexes on.
type Workload struct {
	Col     *collection.Collection
	Queries []collection.Query
	Disk    *storage.Disk
	Pool    *storage.Pool
}

// workloadParams sizes a workload per scale.
type workloadParams struct {
	docs, vocab, meanLen, numQueries int
	dfCap                            float64
}

func params(s Scale) workloadParams {
	if s == ScaleFull {
		return workloadParams{docs: 25000, vocab: 120000, meanLen: 250, numQueries: 50, dfCap: 0.02}
	}
	return workloadParams{docs: 1500, vocab: 25000, meanLen: 150, numQueries: 20, dfCap: 0.02}
}

// NewWorkload generates the deterministic IR workload for a scale.
// The document-frequency cap on query terms models stopword removal; see
// collection.QueryConfig.
func NewWorkload(s Scale, seed uint64) (*Workload, error) {
	p := params(s)
	col, err := collection.Generate(collection.Config{
		NumDocs: p.docs, VocabSize: p.vocab, MeanDocLen: p.meanLen, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: p.numQueries, MinTerms: 2, MaxTerms: 6,
		MaxDocFreqFrac: p.dfCap, Seed: seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	disk := storage.NewDisk()
	pool, err := storage.NewPool(disk, 1<<15)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return &Workload{Col: col, Queries: queries, Disk: disk, Pool: pool}, nil
}

// BuildEngine fragments the workload's index at the given volume fraction
// and wraps it in an engine with the given scorer.
func (w *Workload) BuildEngine(smallFrac float64, scorer rank.Scorer) (*core.Engine, *index.Fragmented, error) {
	fx, err := index.BuildFragmented(w.Col, w.Pool, smallFrac)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %w", err)
	}
	e, err := core.NewEngine(fx, scorer)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %w", err)
	}
	return e, fx, nil
}

// decoded sums both fragments' decode counters.
func decoded(fx *index.Fragmented) int64 {
	return fx.Small.Counters().PostingsDecoded + fx.Large.Counters().PostingsDecoded
}

// skipsTaken sums both fragments' block-skip counters.
func skipsTaken(fx *index.Fragmented) int64 {
	return fx.Small.Counters().SkipsTaken + fx.Large.Counters().SkipsTaken
}
