package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/storage"
)

// chaosDevices is the WrapDevice seam of the CHAOS experiment: every
// segment the faulted index opens is wrapped in a seeded FaultDevice
// and remembered in open order, so the schedule can arm faults on one
// specific segment.
type chaosDevices struct {
	mu    sync.Mutex
	names []string
	devs  map[string]*storage.FaultDevice
}

func (r *chaosDevices) wrap(name string, dev storage.Device) storage.Device {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := storage.NewFaultDevice(dev, int64(len(r.names))+0xc4a05)
	r.names = append(r.names, name)
	r.devs[name] = f
	return f
}

// RunChaos (experiment CHAOS) replays a LIVE-style churned ingest into
// two identical live indexes — one pristine, one whose every segment
// device is wrapped in a scripted FaultDevice — and then probes the
// faulted index through three fault phases, holding every answer to the
// robustness contract: byte-identical to the fault-free answer, or
// explicitly degraded with a certificate naming the skipped segments
// and every served document carrying its true global score. Never
// silently wrong, never a failed query, never a panic.
//
// The phases:
//
//	transient: every page of every segment fails exactly once; the
//	           pool's bounded retry absorbs all of it — every answer
//	           exact and identical, retries counted, zero surfaced
//	           faults, zero quarantines.
//	permanent: one segment's device fails permanently; its first
//	           touch quarantines it and every later answer either
//	           matches the fault-free answer (query never needed the
//	           sick segment) or carries a degraded certificate.
//	recovered: the fault clears, one Reverify pass returns the
//	           segment to service, and every answer is exact and
//	           byte-identical to fault-free again.
//
// CHAOS generates its own workload instead of the shared one: the
// faulted index runs on a floor-sized buffer pool, and the queries use
// frequent terms (no stopword cap), so their postings dwarf the cache
// and every probe keeps performing physical reads — with the shared
// workload's rare-term queries the handful of relevant pages would sit
// fully cached and no probe would ever touch the fault layer. The
// chaos_* counters depend on cache scheduling (parallel probes race
// for pool pages), so the regression gate exempts them like load_*;
// the contract metrics (all_exact_or_degraded, silent_wrong,
// recovered_exact) are hard.
func RunChaos(s Scale, seed uint64) (*Table, error) {
	docs, batches := 5000, 2
	if s == ScaleFull {
		docs, batches = 15000, 5
	}
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: 6000, MeanDocLen: 90, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	queries, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 25, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.3, Seed: seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	const n = 10
	const churn = 0.1

	names := make([][]string, len(queries))
	for i, q := range queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = col.Lex.Name(term)
		}
	}
	docTerms := func(i int) []live.TermCount {
		d := &col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
		}
		return terms
	}

	refDir, err := os.MkdirTemp("", "topn-chaos-ref-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(refDir)
	fltDir, err := os.MkdirTemp("", "topn-chaos-flt-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(fltDir)

	// SealDocs above the collection size: segments come only from the
	// explicit per-batch Flush, so both indexes build the same layout.
	reg := &chaosDevices{devs: map[string]*storage.FaultDevice{}}
	ref, err := live.Open(live.Config{Dir: refDir, SealDocs: len(col.Docs) * 2})
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	flt, err := live.Open(live.Config{
		Dir: fltDir, SealDocs: len(col.Docs) * 2, PoolPages: 8, WrapDevice: reg.wrap,
	})
	if err != nil {
		return nil, err
	}
	defer flt.Close()

	// Identical churned ingest into both: per batch, add the slice, then
	// tombstone churn×batch alive documents (half deletes, half updates
	// re-ingesting the same content — both writers assign the same ids,
	// so one op sequence drives both), then seal.
	both := func(op func(lw *live.Writer) error) error {
		if err := op(ref); err != nil {
			return err
		}
		return op(flt)
	}
	content := map[uint32]int{}
	var aliveIDs []uint32
	rng := rand.New(rand.NewSource(int64(seed) + 0xc4a0))
	start := time.Now()
	for c := 0; c < batches; c++ {
		lo := c * len(col.Docs) / batches
		hi := (c + 1) * len(col.Docs) / batches
		for i := lo; i < hi; i++ {
			var id uint32
			err := both(func(lw *live.Writer) error {
				var err error
				id, err = lw.Add(docTerms(i))
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: CHAOS ingest doc %d: %w", i, err)
			}
			content[id] = i
			aliveIDs = append(aliveIDs, id)
		}
		kill := int(churn * float64(hi-lo))
		for k := 0; k < kill && len(aliveIDs) > 1; k++ {
			pick := rng.Intn(len(aliveIDs))
			id := aliveIDs[pick]
			aliveIDs = append(aliveIDs[:pick], aliveIDs[pick+1:]...)
			doc := content[id]
			delete(content, id)
			if k%2 == 0 {
				if err := both(func(lw *live.Writer) error { return lw.Delete(id) }); err != nil {
					return nil, fmt.Errorf("bench: CHAOS delete doc %d: %w", id, err)
				}
			} else {
				var nid uint32
				err := both(func(lw *live.Writer) error {
					var err error
					nid, err = lw.Update(id, docTerms(doc))
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("bench: CHAOS update doc %d: %w", id, err)
				}
				content[nid] = doc
				aliveIDs = append(aliveIDs, nid)
			}
		}
		if err := both(func(lw *live.Writer) error { return lw.Flush() }); err != nil {
			return nil, err
		}
	}
	ingest := time.Since(start)
	if got, want := flt.Stats().Segments, ref.Stats().Segments; got != want {
		return nil, fmt.Errorf("bench: CHAOS layouts diverged: %d vs %d segments", got, want)
	}

	// The fault-free truth: the top-n answer per query, plus the exact
	// global score of every matching document (a full-depth ranking) —
	// the measure a degraded answer's served documents are held to.
	refSearch := ref.Searcher()
	full := int(ref.Stats().DocsAlive)
	refTop := make([][]rank.DocScore, len(queries))
	refScore := make([]map[uint32]float64, len(queries))
	for i := range queries {
		res, err := refSearch.Search(names[i], n)
		if err != nil {
			return nil, err
		}
		refTop[i] = res.Top
		all, err := refSearch.Search(names[i], full)
		if err != nil {
			return nil, err
		}
		refScore[i] = make(map[uint32]float64, len(all.Top))
		for _, ds := range all.Top {
			refScore[i][ds.DocID] = ds.Score
		}
	}

	t := &Table{
		ID: "CHAOS",
		Title: fmt.Sprintf("fault injection: churned live index under transient/permanent/recovered fault schedules (%d docs, %d segments, %d queries/phase)",
			len(col.Docs), ref.Stats().Segments, len(queries)),
		Columns: []string{"phase", "queries", "exact", "degraded", "retries", "faults", "quarantined", "wall"},
		Metrics: map[string]float64{},
	}

	// probe runs the whole query set against the faulted index and holds
	// every answer to the contract. It returns how many answers were
	// explicitly degraded; anything silently wrong is an error.
	fltSearch := flt.Searcher()
	probe := func(phase string) (exact, degraded int, err error) {
		before := flt.FaultStats()
		start := time.Now()
		for i := range queries {
			res, err := fltSearch.Search(names[i], n)
			if err != nil {
				return 0, 0, fmt.Errorf("bench: CHAOS %s query %d failed instead of degrading: %w", phase, i, err)
			}
			if !res.Degraded {
				if !res.Exact {
					return 0, 0, fmt.Errorf("bench: CHAOS %s query %d neither exact nor degraded", phase, i)
				}
				if err := sameTop(res.Top, refTop[i]); err != nil {
					return 0, 0, fmt.Errorf("bench: CHAOS %s query %d silently wrong: %w", phase, i, err)
				}
				exact++
				continue
			}
			// A degraded answer must say so coherently and serve only
			// documents at their true global scores, in rank order.
			c := res.Cert
			if res.Exact || c.ShardsServed >= c.ShardsTotal || len(c.Skipped) == 0 {
				return 0, 0, fmt.Errorf("bench: CHAOS %s query %d has an incoherent certificate %+v", phase, i, c)
			}
			for j, ds := range res.Top {
				want, ok := refScore[i][ds.DocID]
				if !ok || math.Abs(ds.Score-want) > 1e-9 {
					return 0, 0, fmt.Errorf("bench: CHAOS %s query %d serves doc %d at score %v, true score %v",
						phase, i, ds.DocID, ds.Score, want)
				}
				if j > 0 && ds.Score > res.Top[j-1].Score {
					return 0, 0, fmt.Errorf("bench: CHAOS %s query %d degraded answer out of rank order", phase, i)
				}
			}
			degraded++
		}
		wall := time.Since(start)
		after := flt.FaultStats()
		t.AddRow(phase, len(queries), exact, degraded,
			after.ReadRetries-before.ReadRetries, after.ReadFaults-before.ReadFaults,
			after.QuarantinedSegments, wall)
		return exact, degraded, nil
	}

	// Phase 1 — transient: every page of every segment fails exactly
	// once; bounded retry absorbs all of it.
	reg.mu.Lock()
	devNames := append([]string(nil), reg.names...)
	reg.mu.Unlock()
	sort.Strings(devNames)
	for _, name := range devNames {
		dev := reg.devs[name]
		for id := storage.PageID(1); id <= 1<<14; id++ {
			dev.FailPage(id, 1)
		}
	}
	if _, degraded, err := probe("transient"); err != nil {
		return nil, err
	} else if degraded != 0 {
		return nil, fmt.Errorf("bench: CHAOS transient faults degraded %d answers; retry must absorb them", degraded)
	}
	fs := flt.FaultStats()
	if fs.ReadRetries == 0 {
		return nil, fmt.Errorf("bench: CHAOS probes never touched the fault layer — the experiment asserts nothing")
	}
	if fs.ReadFaults != 0 || fs.QuarantinedSegments != 0 {
		return nil, fmt.Errorf("bench: CHAOS transient phase surfaced faults: %+v", fs)
	}
	t.Metrics["chaos_transient_retries"] = float64(fs.ReadRetries)

	// Phase 2 — permanent: the last-opened (current) segment's device
	// fails for good; first touch quarantines it.
	sick := devNames[len(devNames)-1]
	reg.devs[sick].FailAll(true)
	_, degraded, err := probe("permanent")
	if err != nil {
		return nil, err
	}
	fs = flt.FaultStats()
	if degraded == 0 || fs.QuarantinedSegments != 1 {
		return nil, fmt.Errorf("bench: CHAOS permanent fault never degraded an answer (%d degraded, %+v)", degraded, fs)
	}
	t.Metrics["chaos_degraded_queries"] = float64(fs.DegradedQueries)
	t.Metrics["chaos_read_faults"] = float64(fs.ReadFaults)

	// Phase 3 — recovered: the fault clears, one re-verification pass
	// returns the segment to service.
	reg.devs[sick].Clear()
	if rec := flt.Reverify(); rec != 1 {
		return nil, fmt.Errorf("bench: CHAOS Reverify recovered %d segments after the fault cleared, want 1", rec)
	}
	exact, degraded, err := probe("recovered")
	if err != nil {
		return nil, err
	}
	if degraded != 0 || exact != len(queries) {
		return nil, fmt.Errorf("bench: CHAOS recovered index still degraded (%d exact, %d degraded)", exact, degraded)
	}
	fs = flt.FaultStats()

	// The contract metrics are hard (any violation errored out above);
	// the chaos_* counters ride along exempt from exact comparison.
	t.Metrics["all_exact_or_degraded"] = 1
	t.Metrics["silent_wrong"] = 0
	t.Metrics["recovered_exact"] = 1
	t.Metrics["quarantine_recovered"] = boolMetric(fs.Recovered >= 1 && fs.QuarantinedSegments == 0)
	t.Metrics["chaos_quarantines"] = float64(fs.Quarantines)
	t.Metrics["chaos_recovered"] = float64(fs.Recovered)
	t.Metrics["chaos_read_retries"] = float64(fs.ReadRetries)
	t.Metrics["chaos_ingest_docs_per_sec"] = rate(len(col.Docs), ingest)

	t.Notes = append(t.Notes,
		"every answer under every schedule is byte-identical to the fault-free answer or",
		"explicitly degraded (certificate names the skipped segments; served documents carry",
		"their true global scores in rank order) — never silently wrong, never a failed query",
		fmt.Sprintf("transient: one scripted failure per page, all absorbed by retry (%d retries);",
			int64(t.Metrics["chaos_transient_retries"])),
		fmt.Sprintf("permanent: segment %s quarantined on first touch, served around; recovered:", sick),
		"faults cleared, one Reverify pass returned it to service with exact answers")
	return t, nil
}
