package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunHot (experiment HOT) measures the cache-amortized query path: a
// repeat-heavy Zipf query stream over a churning live index, served by
// three identically-built indexes — `off` (no caches, the truth), `on`
// (result cache + hot-block cache), and `blk` (block cache only) — so
// every cached answer can be held byte-identical to the uncached one.
//
// The phases:
//
//	cold:     the stream runs on `on` with every answer compared to
//	          `off`; first occurrence of a query misses, repeats hit.
//	warm:     the stream replays on `on`; every request hits, and the
//	          snapshot's decode/fault counters do not move at all.
//	blk/cold: a distinct query set runs on `blk`; blocks fault in and
//	          are admitted.
//	blk/warm: the same set replays; zero block faults (the cache serves
//	          the bytes), yet the decode counters grow by exactly the
//	          cold pass's amount — the cache amortizes I/O, never the
//	          decode plan, so answers stay byte-identical.
//	swap:     documents that the cold phase actually served are deleted
//	          (plus fresh ingest) on `on` and `off` alike; the commit
//	          moves the generation, which invalidates every cached
//	          result wholesale. The replayed stream re-evaluates
//	          (decodes grow again) and matches `off`'s fresh answers —
//	          no stale answer survives a commit.
//	burst:    concurrent identical queries singleflight; its counters
//	          are scheduling-dependent and ride along gate-exempt under
//	          the hot_ metric prefix, which is also why it runs last:
//	          every deterministic metric is recorded before it.
//
// The experiment also enforces the allocation budget the hot loop was
// audited to: a warmed MaxScore or Progressive engine runs a complete
// search with zero heap allocations (maxscore_allocs_per_op,
// progressive_allocs_per_op — hard zeros). Under the race detector
// sync.Pool drops Puts at random, so the measurement is skipped and the
// gate value recorded as-is; the non-race CI step asserts it for real.
func RunHot(s Scale, seed uint64) (*Table, error) {
	docs, stream := 3000, 150
	if s == ScaleFull {
		docs, stream = 10000, 400
	}
	const n = 10
	col, err := collection.Generate(collection.Config{
		NumDocs: docs, VocabSize: 6000, MeanDocLen: 90, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	// setA feeds the repeat-heavy stream; setB (different seed) is the
	// block-cache probe — queries the result cache has never seen.
	setA, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 20, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.3, Seed: seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	setB, err := collection.GenerateQueries(col, collection.QueryConfig{
		NumQueries: 12, MinTerms: 2, MaxTerms: 6, MaxDocFreqFrac: 0.3, Seed: seed + 5,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	namesOf := func(qs []collection.Query) [][]string {
		out := make([][]string, len(qs))
		for i, q := range qs {
			out[i] = make([]string, len(q.Terms))
			for j, term := range q.Terms {
				out[i][j] = col.Lex.Name(term)
			}
		}
		return out
	}
	namesA, namesB := namesOf(setA), namesOf(setB)

	// The Zipf request stream: heavy repetition of the head queries —
	// the access pattern a result cache exists for.
	rng := rand.New(rand.NewSource(int64(seed) + 0x407))
	reqs := make([]int, stream)
	for i := range reqs {
		reqs[i] = int(math.Pow(rng.Float64(), 3) * float64(len(setA)))
	}

	// Three writers, identical layouts: seal only via the explicit
	// per-batch Flush, single-threaded segment fan-out so every counter
	// below is a deterministic function of the access sequence.
	open := func(tag string, resBytes, blkBytes int64) (*live.Writer, func(), error) {
		dir, err := os.MkdirTemp("", "topn-hot-"+tag+"-*")
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %w", err)
		}
		w, err := live.Open(live.Config{
			Dir: dir, SealDocs: docs * 2, PoolPages: 8, Workers: 1,
			ResultCacheBytes: resBytes, BlockCacheBytes: blkBytes,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return w, func() { w.Close(); os.RemoveAll(dir) }, nil
	}
	off, offDone, err := open("off", 0, 0)
	if err != nil {
		return nil, err
	}
	defer offDone()
	on, onDone, err := open("on", 32<<20, 8<<20)
	if err != nil {
		return nil, err
	}
	defer onDone()
	blk, blkDone, err := open("blk", 0, 8<<20)
	if err != nil {
		return nil, err
	}
	defer blkDone()
	all := []*live.Writer{off, on, blk}

	docTerms := func(i int) []live.TermCount {
		d := &col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: col.Lex.Name(tf.Term), TF: tf.TF}
		}
		return terms
	}
	each := func(op func(w *live.Writer) error) error {
		for _, w := range all {
			if err := op(w); err != nil {
				return err
			}
		}
		return nil
	}
	start := time.Now()
	for c := 0; c < 2; c++ {
		lo, hi := c*docs/2, (c+1)*docs/2
		for i := lo; i < hi; i++ {
			if err := each(func(w *live.Writer) error { _, err := w.Add(docTerms(i)); return err }); err != nil {
				return nil, fmt.Errorf("bench: HOT ingest doc %d: %w", i, err)
			}
		}
		if err := each(func(w *live.Writer) error { return w.Flush() }); err != nil {
			return nil, err
		}
	}
	ingest := time.Since(start)
	if on.Stats().Segments != off.Stats().Segments || blk.Stats().Segments != off.Stats().Segments {
		return nil, fmt.Errorf("bench: HOT layouts diverged: off %d, on %d, blk %d segments",
			off.Stats().Segments, on.Stats().Segments, blk.Stats().Segments)
	}

	// counters reads a writer's cumulative decode/fault counters through
	// a momentary snapshot (segments carry them across generations).
	counters := func(w *live.Writer) (decoded, faulted int64, err error) {
		snap, err := w.Acquire()
		if err != nil {
			return 0, 0, err
		}
		defer snap.Close()
		d, _, f := snap.Counters()
		return d, f, nil
	}
	sameAnswer := func(phase string, i int, got, want live.Result) error {
		if err := sameTop(got.Top, want.Top); err != nil {
			return fmt.Errorf("bench: HOT %s query %d diverges from the uncached answer: %w", phase, i, err)
		}
		if got.Exact != want.Exact || got.Degraded != want.Degraded {
			return fmt.Errorf("bench: HOT %s query %d certificate diverges: exact %v/%v degraded %v/%v",
				phase, i, got.Exact, want.Exact, got.Degraded, want.Degraded)
		}
		return nil
	}

	t := &Table{
		ID: "HOT",
		Title: fmt.Sprintf("cache-amortized hot query path: %d-request Zipf stream over %d queries, %d docs, %d segments",
			stream, len(setA), docs, off.Stats().Segments),
		Columns: []string{"phase", "requests", "res hits", "res misses", "decodedΔ", "faultedΔ", "blk hitsΔ", "wall"},
		Metrics: map[string]float64{},
	}
	offS, onS, blkS := off.Searcher(), on.Searcher(), blk.Searcher()

	// row brackets a phase on one writer with its counter deltas.
	row := func(w *live.Writer, phase string, body func() (int, error)) (live.CacheStats, int64, int64, error) {
		cs0 := w.CacheStats()
		d0, f0, err := counters(w)
		if err != nil {
			return live.CacheStats{}, 0, 0, err
		}
		phaseStart := time.Now()
		requests, err := body()
		if err != nil {
			return live.CacheStats{}, 0, 0, err
		}
		wall := time.Since(phaseStart)
		d1, f1, err := counters(w)
		if err != nil {
			return live.CacheStats{}, 0, 0, err
		}
		cs1 := w.CacheStats()
		delta := live.CacheStats{
			ResultHits:   cs1.ResultHits - cs0.ResultHits,
			ResultMisses: cs1.ResultMisses - cs0.ResultMisses,
			BlockHits:    cs1.BlockHits - cs0.BlockHits,
		}
		t.AddRow(phase, requests, delta.ResultHits, delta.ResultMisses, d1-d0, f1-f0, delta.BlockHits, wall)
		return delta, d1 - d0, f1 - f0, nil
	}

	// Phase 1 — cold: the stream on `on`, every answer held to `off`.
	coldTop := make(map[int]live.Result, len(setA))
	cold, _, _, err := row(on, "cold", func() (int, error) {
		for _, qi := range reqs {
			want, err := offS.Search(namesA[qi], n)
			if err != nil {
				return 0, err
			}
			got, err := onS.Search(namesA[qi], n)
			if err != nil {
				return 0, err
			}
			if err := sameAnswer("cold", qi, got, want); err != nil {
				return 0, err
			}
			coldTop[qi] = want
		}
		return len(reqs), nil
	})
	if err != nil {
		return nil, err
	}
	if cold.ResultHits+cold.ResultMisses != int64(stream) {
		return nil, fmt.Errorf("bench: HOT cold accounted %d+%d requests of %d",
			cold.ResultHits, cold.ResultMisses, stream)
	}
	if cold.ResultHits == 0 || cold.ResultMisses == 0 {
		return nil, fmt.Errorf("bench: HOT cold stream saw %d hits / %d misses; the Zipf mix must produce both",
			cold.ResultHits, cold.ResultMisses)
	}
	t.Metrics["cold_result_hits"] = float64(cold.ResultHits)
	t.Metrics["cold_result_misses"] = float64(cold.ResultMisses)

	// Phase 2 — warm: the replay is answered entirely from the result
	// cache; the engines do no work at all.
	warm, warmDec, warmFlt, err := row(on, "warm", func() (int, error) {
		for _, qi := range reqs {
			got, err := onS.Search(namesA[qi], n)
			if err != nil {
				return 0, err
			}
			if err := sameAnswer("warm", qi, got, coldTop[qi]); err != nil {
				return 0, err
			}
		}
		return len(reqs), nil
	})
	if err != nil {
		return nil, err
	}
	if warm.ResultHits != int64(stream) || warmDec != 0 || warmFlt != 0 {
		return nil, fmt.Errorf("bench: HOT warm replay not fully amortized: %d/%d hits, %d decodes, %d faults",
			warm.ResultHits, stream, warmDec, warmFlt)
	}
	t.Metrics["warm_all_hits"] = 1
	t.Metrics["warm_decoded_delta"] = float64(warmDec)
	t.Metrics["warm_faulted_delta"] = float64(warmFlt)

	// Phases 3/4 — the block cache alone (no result cache): the warm
	// pass repeats the cold pass's decode plan exactly while faulting
	// zero blocks.
	blkTop := make([]live.Result, len(setB))
	_, blkColdDec, blkColdFlt, err := row(blk, "blk/cold", func() (int, error) {
		for i := range setB {
			want, err := offS.Search(namesB[i], n)
			if err != nil {
				return 0, err
			}
			got, err := blkS.Search(namesB[i], n)
			if err != nil {
				return 0, err
			}
			if err := sameAnswer("blk/cold", i, got, want); err != nil {
				return 0, err
			}
			blkTop[i] = want
		}
		return len(setB), nil
	})
	if err != nil {
		return nil, err
	}
	blkWarm, blkWarmDec, blkWarmFlt, err := row(blk, "blk/warm", func() (int, error) {
		for i := range setB {
			got, err := blkS.Search(namesB[i], n)
			if err != nil {
				return 0, err
			}
			if err := sameAnswer("blk/warm", i, got, blkTop[i]); err != nil {
				return 0, err
			}
		}
		return len(setB), nil
	})
	if err != nil {
		return nil, err
	}
	if blkColdFlt == 0 {
		return nil, fmt.Errorf("bench: HOT blk/cold faulted no blocks — the probe never touched storage")
	}
	if blkWarmFlt != 0 || blkWarmDec != blkColdDec || blkWarm.BlockHits == 0 {
		return nil, fmt.Errorf("bench: HOT blk/warm: %d faults (want 0), %d decodes (cold %d), %d block hits",
			blkWarmFlt, blkWarmDec, blkColdDec, blkWarm.BlockHits)
	}
	t.Metrics["blk_warm_faults"] = float64(blkWarmFlt)
	t.Metrics["blk_decode_plan_stable"] = boolMetric(blkWarmDec == blkColdDec)
	t.Metrics["blk_warm_hits"] = float64(blkWarm.BlockHits)

	// Phase 5 — swap: churn both `on` and `off` identically, targeting
	// documents the cold phase served so the right answers provably
	// change, then hold the replay to `off`'s fresh answers.
	victims := map[uint32]bool{}
	for qi := 0; qi < len(setA) && len(victims) < 5; qi++ {
		if res, ok := coldTop[qi]; ok && len(res.Top) > 0 {
			victims[res.Top[0].DocID] = true
		}
	}
	churn := func(w *live.Writer) error {
		for id := range victims {
			if err := w.Delete(id); err != nil {
				return err
			}
		}
		for i := 0; i < 20; i++ {
			if _, err := w.Add(docTerms(i)); err != nil {
				return err
			}
		}
		return w.Flush()
	}
	if err := churn(off); err != nil {
		return nil, fmt.Errorf("bench: HOT churn: %w", err)
	}
	if err := churn(on); err != nil {
		return nil, fmt.Errorf("bench: HOT churn: %w", err)
	}
	changed := false
	swap, swapDec, _, err := row(on, "swap", func() (int, error) {
		fresh := make(map[int]live.Result, len(setA))
		for _, qi := range reqs {
			want, ok := fresh[qi]
			if !ok {
				var err error
				want, err = offS.Search(namesA[qi], n)
				if err != nil {
					return 0, err
				}
				fresh[qi] = want
				if prev := coldTop[qi]; sameTop(want.Top, prev.Top) != nil {
					changed = true
				}
			}
			got, err := onS.Search(namesA[qi], n)
			if err != nil {
				return 0, err
			}
			if err := sameAnswer("swap", qi, got, want); err != nil {
				return 0, err
			}
		}
		return len(reqs), nil
	})
	if err != nil {
		return nil, err
	}
	if swapDec == 0 {
		return nil, fmt.Errorf("bench: HOT swap replay decoded nothing — the commit did not invalidate the result cache")
	}
	if !changed {
		return nil, fmt.Errorf("bench: HOT churn changed no answer — the staleness probe proves nothing")
	}
	if swap.ResultHits+swap.ResultMisses != int64(stream) || swap.ResultMisses == 0 {
		return nil, fmt.Errorf("bench: HOT swap accounted %d+%d requests of %d",
			swap.ResultHits, swap.ResultMisses, stream)
	}
	t.Metrics["swap_fresh_identical"] = 1
	t.Metrics["swap_answers_changed"] = 1
	t.Metrics["swap_reevaluated"] = boolMetric(swapDec > 0)
	t.Metrics["swap_result_misses"] = float64(swap.ResultMisses)

	// Phase 6 — singleflight burst, deliberately last: its split between
	// cache hits, shared answers, and own evaluations depends on
	// goroutine scheduling, so everything it touches is hot_-prefixed
	// (gate-exempt) and no deterministic metric is read after it.
	burstBase := on.CacheStats()
	want, err := offS.Search(namesA[0], n)
	if err != nil {
		return nil, err
	}
	const burstG, burstR = 8, 25
	burstStart := time.Now()
	var wg sync.WaitGroup
	burstErrs := make([]error, burstG)
	for g := 0; g < burstG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < burstR; r++ {
				got, err := onS.SearchContext(context.Background(), namesA[0], n)
				if err != nil {
					burstErrs[g] = err
					return
				}
				if err := sameAnswer("burst", 0, got, want); err != nil {
					burstErrs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	burstWall := time.Since(burstStart)
	for _, err := range burstErrs {
		if err != nil {
			return nil, err
		}
	}
	burstCS := on.CacheStats()
	t.AddRow("burst", burstG*burstR, burstCS.ResultHits-burstBase.ResultHits,
		burstCS.ResultMisses-burstBase.ResultMisses, "-", "-",
		burstCS.BlockHits-burstBase.BlockHits, burstWall)
	t.Metrics["hot_burst_hits"] = float64(burstCS.ResultHits - burstBase.ResultHits)
	t.Metrics["hot_burst_shared"] = float64(burstCS.SingleflightShared - burstBase.SingleflightShared)
	t.Metrics["hot_replay_per_sec"] = rate(stream, ingest) // ingest-normalized throughput hint
	t.Metrics["hot_ingest_docs_per_sec"] = rate(docs, ingest)

	// Allocation gates: the audited hot loop of both engines runs a
	// warmed search with zero heap allocations.
	msAllocs, progAllocs, err := measureSearchAllocs(s, seed)
	if err != nil {
		return nil, err
	}
	if !raceEnabled && (msAllocs != 0 || progAllocs != 0) {
		return nil, fmt.Errorf("bench: HOT allocation budget broken: MaxScore %.1f, Progressive %.1f allocs/op (want 0)",
			msAllocs, progAllocs)
	}
	t.Metrics["maxscore_allocs_per_op"] = msAllocs
	t.Metrics["progressive_allocs_per_op"] = progAllocs

	t.Notes = append(t.Notes,
		"every cached answer is byte-identical to the uncached index's answer, including after",
		fmt.Sprintf("churn: a commit moves the generation and invalidates all %d cached results wholesale", int64(t.Metrics["cold_result_misses"])),
		"warm replay does zero decodes and zero faults; the block cache alone removes every warm",
		"fault while repeating the cold decode plan exactly (I/O amortized, plan untouched)",
		"a warmed MaxScore/Progressive search allocates nothing (testing.AllocsPerRun = 0)")
	if raceEnabled {
		t.Notes = append(t.Notes,
			"race detector active: sync.Pool drops Puts at random, so the alloc gate is informational here")
	}
	return t, nil
}

// measureSearchAllocs builds warmed MaxScore and Progressive engines
// over the shared workload and measures steady-state allocations per
// search — the same budget internal/core's alloc gates enforce, asserted
// here inside the benchmark suite so a regression fails the HOT table
// too. Under the race detector the measurement is skipped (reported as
// zero) because sync.Pool deliberately drops Puts there.
func measureSearchAllocs(s Scale, seed uint64) (msAllocs, progAllocs float64, err error) {
	if raceEnabled {
		return 0, 0, nil
	}
	w, err := NewWorkload(s, seed)
	if err != nil {
		return 0, 0, err
	}
	idx, err := index.Build(w.Col, w.Pool)
	if err != nil {
		return 0, 0, err
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		return 0, 0, err
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return 0, 0, err
	}
	mx, err := index.BuildMulti(w.Col, pool, []float64{0.02, 0.05, 0.15, 0.4})
	if err != nil {
		return 0, 0, err
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	opts := core.ProgressiveOptions{N: 10}
	dst := make([]rank.DocScore, 0, 16)
	for _, q := range w.Queries {
		if dst, err = ms.SearchContextInto(ctx, q, 10, dst[:0]); err != nil {
			return 0, 0, err
		}
		r, err := prog.SearchContextInto(ctx, q, opts, dst[:0])
		if err != nil {
			return 0, 0, err
		}
		dst = r.Top
	}
	// A GC here means pools emptied by an earlier collection refill
	// during warmup, not during measurement.
	runtime.GC()
	probe := w.Queries
	if len(probe) > 8 {
		probe = probe[:8]
	}
	for _, q := range probe {
		q := q
		a := testing.AllocsPerRun(10, func() {
			var err error
			if dst, err = ms.SearchContextInto(ctx, q, 10, dst[:0]); err != nil {
				panic(err)
			}
		})
		msAllocs = math.Max(msAllocs, a)
		a = testing.AllocsPerRun(10, func() {
			r, err := prog.SearchContextInto(ctx, q, opts, dst[:0])
			if err != nil {
				panic(err)
			}
			dst = r.Top
		})
		progAllocs = math.Max(progAllocs, a)
	}
	return msAllocs, progAllocs, nil
}
