package bench

import (
	"fmt"

	"repro/internal/rank"
	"repro/internal/topk"
	"repro/internal/vector"
	"repro/internal/xrand"
)

// RunE6 regenerates the Fagin-family measurement behind the paper's State
// of the Art: sorted/random access counts of FA, TA and NRA versus the
// exhaustive baseline, swept over N and the number of sources, on
// clustered (correlated) feature data. The paper's premise — "one can
// take advantage of lists being ordered ... allowing for ending the
// processing as soon as it is certain that the required top N answers have
// been computed" — shows as access counts that are a small fraction of the
// naive ones and grow slowly with N.
func RunE6(s Scale, seed uint64) (*Table, error) {
	numObj := 5000
	if s == ScaleFull {
		numObj = 50000
	}
	data, err := vector.Generate(vector.Config{
		NumObjects: numObj, Dim: 12, NumClusters: 15, ClusterStd: 0.08, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed + 1)
	t := &Table{
		ID:      "E6",
		Title:   "middleware algorithms: access counts vs exhaustive (sum aggregation)",
		Columns: []string{"sources", "N", "algorithm", "sortedAcc", "randomAcc", "%ofNaive"},
	}
	for _, m := range []int{2, 3} {
		// Query points drawn from the data so sources correlate.
		sources := make([]topk.Source, m)
		for i := range sources {
			src, err := data.Source(data.Vecs[rng.Intn(numObj)])
			if err != nil {
				return nil, err
			}
			sources[i] = src
		}
		for _, n := range []int{1, 10, 100} {
			naive, err := topk.Naive(sources, topk.SumAgg(), n)
			if err != nil {
				return nil, err
			}
			naiveAcc := naive.Accesses.Sorted + naive.Accesses.Random
			report := func(name string, res topk.Result) {
				total := res.Accesses.Sorted + res.Accesses.Random
				t.AddRow(m, n, name, res.Accesses.Sorted, res.Accesses.Random,
					fmt.Sprintf("%.1f", 100*float64(total)/float64(naiveAcc)))
			}
			report("naive", naive)
			fa, err := topk.FA(sources, topk.SumAgg(), n)
			if err != nil {
				return nil, err
			}
			report("fa", fa)
			ta, err := topk.TA(sources, topk.SumAgg(), n)
			if err != nil {
				return nil, err
			}
			report("ta", ta)
			nra, err := topk.NRA(sources, topk.SumAgg(), n)
			if err != nil {
				return nil, err
			}
			report("nra", nra)
			// Sanity: TA exactness against naive.
			for i := range ta.Top {
				if ta.Top[i].DocID != naive.Top[i].DocID {
					return nil, fmt.Errorf("bench: E6 TA diverged from naive")
				}
			}
			_ = rank.DocScore{}
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: bound administration touches a small, slowly-growing fraction of the lists")
	return t, nil
}
