package bench

import (
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/rank"
)

// RunE4 regenerates the non-dense-index measurement: when the safe plan
// must consult the large fragment, probing it with the small pass's
// candidate set through the postings skip index is compared against
// streaming the full lists. The paper proposes exactly this: "introduce a
// non-dense index ... to speed up processing the large fragment. This even
// will allow for extra computations while still decreasing execution
// time, bringing the answer quality nearer to or even on the same level as
// in the unfragmented case."
//
// The workload includes frequent terms (no stopword strip) because the
// probe targets precisely the long lists stopword stripping would hide.
func RunE4(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	p := params(s)
	freqQueries, err := collection.GenerateQueries(w.Col, collection.QueryConfig{
		NumQueries: p.numQueries, MinTerms: 3, MaxTerms: 6,
		MaxDocFreqFrac: 0.5, Seed: seed + 7,
	})
	if err != nil {
		return nil, err
	}
	engine, fx, err := w.BuildEngine(fragFracFor(s), rank.NewBM25())
	if err != nil {
		return nil, err
	}
	truth := make([]quality.Qrels, len(freqQueries))
	for i, q := range freqQueries {
		res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			return nil, err
		}
		truth[i] = quality.NewQrels(res.Top)
	}

	t := &Table{
		ID:      "E4",
		Title:   "large-fragment access: full stream vs non-dense-index probe",
		Columns: []string{"strategy", "largeDecodes", "skipsTaken", "P@10", "MAP"},
	}
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"unsafe (skip large)", core.Options{N: 10, Mode: core.ModeUnsafe}},
		{"safe-stream", core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2}},
		{"safe-probe", core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2, ProbeLarge: true}},
	}
	type measured struct {
		decodes, skips int64
		p10, ap        float64
	}
	out := map[string]measured{}
	for _, v := range variants {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			return nil, err
		}
		var dec, skips int64
		for i, q := range freqQueries {
			fx.ResetCounters()
			res, err := engine.Search(q, v.opts)
			if err != nil {
				return nil, err
			}
			dec += fx.Large.Counters().PostingsDecoded
			skips += fx.Large.Counters().SkipsTaken
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		out[v.name] = measured{dec, skips, sum.MeanPrecision, sum.MAP}
		t.AddRow(v.name, dec, skips, sum.MeanPrecision, sum.MAP)
	}
	stream, probe := out["safe-stream"], out["safe-probe"]
	if stream.decodes > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"probe decodes %.0f%% of the streamed large-fragment postings",
			100*float64(probe.decodes)/float64(stream.decodes)))
	}
	t.Notes = append(t.Notes,
		"paper claim: the non-dense index cuts large-fragment cost while lifting quality above unsafe")
	return t, nil
}
