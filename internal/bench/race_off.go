//go:build !race

package bench

// raceEnabled mirrors whether the binary was built with the race
// detector; the allocation gate is only meaningful without it (the race
// runtime drops sync.Pool Puts at random).
const raceEnabled = false
