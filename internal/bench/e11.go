package bench

import (
	"fmt"

	"repro/internal/collection"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunE11 measures the repository's extension of the paper's programme:
// multi-fragment progressive processing with bound-based early
// termination (the direction Blok's subsequent thesis work took). The
// chain is processed rarest-terms-first and each query stops as soon as
// its top N is provably stable (epsilon 0) or stable within a bounded
// relative error (epsilon > 0). Reported against the single-pass full
// evaluation: postings decoded, fragments touched, quality.
func RunE11(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	// Queries without stopword stripping: terms span the whole fragment
	// chain, so the stopping rule has a real spectrum to work over.
	p := params(s)
	queries, err := collection.GenerateQueries(w.Col, collection.QueryConfig{
		NumQueries: p.numQueries, MinTerms: 3, MaxTerms: 6,
		MaxDocFreqFrac: 0.5, Seed: seed + 9,
	})
	if err != nil {
		return nil, err
	}
	w.Queries = queries
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	mx, err := index.BuildMulti(w.Col, pool, []float64{0.02, 0.05, 0.15, 0.4})
	if err != nil {
		return nil, err
	}
	prog, err := core.NewProgressive(mx, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	// Full baseline: epsilon 0 with the stop check disabled is simply the
	// complete chain; measure it by running exact and recording when no
	// early stop happened. For the cost baseline we process everything:
	// a fragmented engine with frac so every list is "small".
	fullPool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	fullFX, err := index.BuildFragmented(w.Col, fullPool, 1.0)
	if err != nil {
		return nil, err
	}
	fullEngine, err := core.NewEngine(fullFX, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	truth := make([]quality.Qrels, len(w.Queries))
	var fullDecodes int64
	for i, q := range w.Queries {
		fullFX.ResetCounters()
		res, err := fullEngine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
		if err != nil {
			return nil, err
		}
		fullDecodes += fullFX.Small.Counters().PostingsDecoded
		truth[i] = quality.NewQrels(res.Top)
	}

	t := &Table{
		ID:      "E11",
		Title:   "progressive fragment-chain processing (extension): epsilon sweep",
		Columns: []string{"epsilon", "decodes", "cost%ofFull", "avgFragsUsed", "earlyStops", "P@10", "MAP"},
	}
	for _, eps := range []float64{0, 0.05, 0.2, 0.5, 1.0} {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			return nil, err
		}
		mx.ResetCounters()
		var fragsUsed, early int
		for i, q := range w.Queries {
			res, err := prog.Search(q, core.ProgressiveOptions{N: 10, Epsilon: eps})
			if err != nil {
				return nil, err
			}
			fragsUsed += res.FragmentsUsed
			if res.FragmentsUsed < len(mx.Fragments) {
				early++
			}
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		t.AddRow(eps, mx.Decoded(),
			100*float64(mx.Decoded())/float64(fullDecodes),
			fmt.Sprintf("%.2f", float64(fragsUsed)/float64(len(w.Queries))),
			early, sum.MeanPrecision, sum.MAP)
	}
	t.Notes = append(t.Notes,
		"epsilon 0 is provably exact (P@10 = 1 by construction); positive epsilon trades",
		"bounded score error for earlier stops — the safe/unsafe spectrum made continuous")
	return t, nil
}
