package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/rank"
)

// RunE1E2 regenerates the paper's central Step 1 measurement as one table:
// a sweep over the small-fragment volume fraction, reporting the unsafe
// strategy's cost reduction (E1, the paper: "speed up query processing
// ... with at least 60%" at the ~5% point) and its quality loss (E2, the
// paper: "answer quality dropped more than 30%").
//
// Cost is reported three ways: postings decoded (CPU), cold-cache page
// reads (I/O), and wall-clock. The 100% row is the unfragmented baseline
// the percentages are relative to.
func RunE1E2(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 1.0}
	t := &Table{
		ID:      "E1+E2",
		Title:   "fragment volume sweep: unsafe cost vs answer quality",
		Columns: []string{"fragment%", "decodes", "pageReads", "time", "speedup%", "P@10", "MAP", "qualityDrop%"},
	}

	// Baseline: the unfragmented cost and the ground-truth rankings.
	// frac=1.0 puts every list in the small fragment, so unsafe == full.
	baseEngine, baseFX, err := w.BuildEngine(1.0, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	truth := make([]quality.Qrels, len(w.Queries))
	var baseDecodes, basePages int64
	var baseTime time.Duration
	for i, q := range w.Queries {
		baseFX.ResetCounters()
		if err := w.Pool.DropAll(); err != nil {
			return nil, err
		}
		w.Disk.ResetStats()
		start := time.Now()
		res, err := baseEngine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
		if err != nil {
			return nil, err
		}
		baseTime += time.Since(start)
		baseDecodes += decoded(baseFX)
		basePages += w.Disk.Stats().PhysicalReads
		truth[i] = quality.NewQrels(res.Top)
	}

	for _, frac := range fracs {
		if frac == 1.0 {
			t.AddRow("100.0", baseDecodes, basePages, baseTime, 0.0, 1.0, 1.0, 0.0)
			continue
		}
		engine, fx, err := w.BuildEngine(frac, rank.NewBM25())
		if err != nil {
			return nil, err
		}
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			return nil, err
		}
		var decodes, pages int64
		var elapsed time.Duration
		for i, q := range w.Queries {
			fx.ResetCounters()
			if err := w.Pool.DropAll(); err != nil {
				return nil, err
			}
			w.Disk.ResetStats()
			start := time.Now()
			res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeUnsafe})
			if err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			decodes += decoded(fx)
			pages += w.Disk.Stats().PhysicalReads
			eval.Add(truth[i], res.Top)
		}
		sum := eval.Summary()
		speedup := 100 * (1 - float64(decodes)/float64(baseDecodes))
		t.AddRow(fmt.Sprintf("%.1f", 100*fx.SmallFraction()),
			decodes, pages, elapsed, speedup, sum.MeanPrecision, sum.MAP,
			100*(1-sum.MAP))
	}
	t.Notes = append(t.Notes,
		"paper claim: at the ~5% fragment point, >=60% speedup with >30% quality drop (unsafe)")
	return t, nil
}
