package bench

import (
	"fmt"

	"repro/internal/lexicon"
	"repro/internal/zipf"
)

// RunF1 regenerates the figure behind Step 1's premise: the rank-frequency
// law of the generated collection and the cumulative postings mass, i.e.
// how small a fragment holding the rarest X% of terms is. The paper's
// headline point — 95% of terms fit in ~5% of the postings volume — is the
// last column at the 95% row.
func RunF1(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	lex := w.Col.Lex
	freqs := make([]int, 0, lex.Size())
	for id := 0; id < lex.Size(); id++ {
		if cf := lex.Stats(lexicon.TermID(id)).CollFreq; cf > 0 {
			freqs = append(freqs, int(cf))
		}
	}
	fitted, r2, err := zipf.FitExponent(freqs)
	if err != nil {
		return nil, fmt.Errorf("bench: F1 fit: %w", err)
	}

	byDF := lex.TermsByDocFreq() // descending df
	total := lex.TotalPostings()
	t := &Table{
		ID:      "F1",
		Title:   "Zipf shape of the collection: rarest-terms fraction vs postings volume",
		Columns: []string{"rarestTerms%", "terms", "postings", "volume%"},
	}
	nTerms := len(byDF)
	// Cumulative postings of the rarest X% of the vocabulary.
	suffix := make([]int64, nTerms+1)
	for i := nTerms - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + int64(lex.Stats(byDF[i]).DocFreq)
	}
	for _, pct := range []int{50, 75, 90, 95, 99} {
		cut := nTerms * (100 - pct) / 100
		rare := suffix[cut]
		t.AddRow(pct, nTerms-cut, rare, 100*float64(rare)/float64(total))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fitted Zipf exponent s=%.2f (log-log R²=%.3f) over %d terms, %d postings",
			fitted, r2, nTerms, total))
	return t, nil
}
