package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunLive (experiment LIVE) measures the live-index layer end to end
// with an interleaved insert/delete/update/search workload: the
// collection streams through live.Writer in checkpointed batches, a
// deterministic churn pass deletes and updates a slice of the alive
// documents after every batch (churn is the fraction of the batch
// tombstoned, split evenly between plain deletes and updates that
// re-ingest the same content under a fresh id), and then the whole
// query workload probes the current snapshot. Each checkpoint reports
// ingest throughput, search latency, the segment count (the
// fragmentation queries pay for), cumulative merges, churn accounting,
// and the deterministic decode/fault counters of the probe pass.
//
// Merging runs through MergeAll between batches rather than the
// background goroutine, so the segment layout — and with it every
// counter — is reproducible for the CI regression gate; the background
// path is exercised by internal/live's -race stress. The final state is
// verified byte-identical to a one-shot index.Build over the surviving
// documents (MaxScore top-10 per query, ids mapped through the survivor
// order), reported as the equiv metric — the delete path's headline
// guarantee.
//
// sealDocs/fanIn <= 0 pick scale-appropriate defaults; churn < 0 picks
// the default mix (0.2).
func RunLive(s Scale, seed uint64, sealDocs, fanIn int, churn float64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	if sealDocs <= 0 {
		sealDocs = 200
		if s == ScaleFull {
			sealDocs = 2000
		}
	}
	if fanIn <= 0 {
		fanIn = 4
	}
	if churn < 0 {
		churn = 0.2
	}
	if churn > 1 {
		return nil, fmt.Errorf("bench: LIVE churn %v must be in [0, 1]", churn)
	}
	dir, err := os.MkdirTemp("", "topn-live-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)
	lw, err := live.Open(live.Config{Dir: dir, SealDocs: sealDocs, MergeFanIn: fanIn})
	if err != nil {
		return nil, err
	}
	defer lw.Close()

	const checkpoints = 5
	const n = 10
	t := &Table{
		ID: "LIVE",
		Title: fmt.Sprintf("live index: interleaved insert/delete/update/search (%d docs, %d queries/probe, seal=%d, fanIn=%d, churn=%.2g)",
			len(w.Col.Docs), len(w.Queries), sealDocs, fanIn, churn),
		Columns: []string{"docs", "deleted", "updated", "alive", "segments", "merges", "ingest", "docs/s", "probe", "ms/query", "decodes", "blockFaults", "allExact"},
		Metrics: map[string]float64{},
	}

	names := make([][]string, len(w.Queries))
	for i, q := range w.Queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = w.Col.Lex.Name(term)
		}
	}
	docTerms := func(i int) []live.TermCount {
		d := &w.Col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
		}
		return terms
	}

	// Alive bookkeeping: content[g] is the collection document the live
	// global id g currently carries (updates re-ingest the same content
	// under a fresh id). aliveIDs stays sorted by id — arrival order —
	// which is also the order the survivor baseline is built in.
	content := map[uint32]int{}
	var aliveIDs []uint32
	rng := rand.New(rand.NewSource(int64(seed) + 0x11fe))

	var probeDecodes, probeFaults int64
	var ingestTotal, searchTotal time.Duration
	var deleted, updated int64
	allExact := true
	for c := 0; c < checkpoints; c++ {
		lo := c * len(w.Col.Docs) / checkpoints
		hi := (c + 1) * len(w.Col.Docs) / checkpoints

		start := time.Now()
		for i := lo; i < hi; i++ {
			id, err := lw.Add(docTerms(i))
			if err != nil {
				return nil, fmt.Errorf("bench: LIVE ingest doc %d: %w", i, err)
			}
			content[id] = i
			aliveIDs = append(aliveIDs, id)
		}
		// Churn pass: tombstone churn×batch alive documents — half
		// deleted outright, half updated (delete + re-ingest under a new
		// id). Deterministic in the workload seed, so the gate's
		// counters are stable.
		kill := int(churn * float64(hi-lo))
		for k := 0; k < kill && len(aliveIDs) > 1; k++ {
			pick := rng.Intn(len(aliveIDs))
			id := aliveIDs[pick]
			aliveIDs = append(aliveIDs[:pick], aliveIDs[pick+1:]...)
			doc := content[id]
			delete(content, id)
			if k%2 == 0 {
				if err := lw.Delete(id); err != nil {
					return nil, fmt.Errorf("bench: LIVE delete doc %d: %w", id, err)
				}
				deleted++
			} else {
				nid, err := lw.Update(id, docTerms(doc))
				if err != nil {
					return nil, fmt.Errorf("bench: LIVE update doc %d: %w", id, err)
				}
				content[nid] = doc
				aliveIDs = append(aliveIDs, nid) // ids grow monotonically: still sorted
				updated++
			}
		}
		if err := lw.Flush(); err != nil {
			return nil, err
		}
		if err := lw.MergeAll(); err != nil {
			return nil, err
		}
		ingest := time.Since(start)
		ingestTotal += ingest

		snap, err := lw.Acquire()
		if err != nil {
			return nil, err
		}
		snap.ResetCounters()
		start = time.Now()
		exact := true
		for i := range w.Queries {
			res, err := snap.Search(names[i], n)
			if err != nil {
				snap.Close()
				return nil, fmt.Errorf("bench: LIVE probe query %d: %w", i, err)
			}
			exact = exact && res.Exact
		}
		probe := time.Since(start)
		searchTotal += probe
		decoded, _, faulted := snap.Counters()
		segments := snap.Segments()
		snap.Close()
		probeDecodes += decoded
		probeFaults += faulted
		allExact = allExact && exact

		// deleted counts plain deletes only; an update's tombstone is
		// reported in its own column (WriterStats.DocsDeleted would
		// count both and double-report updates).
		st := lw.Stats()
		t.AddRow(hi, deleted, updated, st.DocsAlive, segments, st.Merges, ingest,
			rate(hi-lo, ingest), probe, msPerQuery(probe, len(w.Queries)),
			decoded, faulted, exact)
	}

	// Equivalence: the final live state must answer exactly like a
	// one-shot build over the surviving documents — the churn-proof
	// guarantee. The baseline re-interns a fresh lexicon over the
	// survivors in arrival order, so its statistics cover exactly what
	// survived; live global ids map to baseline ids through the sorted
	// survivor list.
	sub, fromLive, err := survivorCollection(w.Col, aliveIDs, content)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		return nil, err
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	searcher := lw.Searcher()
	for i := range w.Queries {
		res, err := searcher.Search(names[i], n)
		if err != nil {
			return nil, err
		}
		q := collection.Query{}
		for _, name := range names[i] {
			if id := sub.Lex.Lookup(name); id != lexicon.InvalidTerm {
				q.Terms = append(q.Terms, id)
			}
		}
		want, err := ms.Search(q, n)
		if err != nil {
			return nil, err
		}
		for j := range want {
			want[j].DocID = fromLive[want[j].DocID]
		}
		if err := sameTop(res.Top, want); err != nil {
			return nil, fmt.Errorf("bench: LIVE diverged from the one-shot survivor build on query %d: %w", i, err)
		}
	}

	st := lw.Stats()
	t.Metrics["docs"] = float64(st.DocsSealed)
	t.Metrics["deleted"] = float64(deleted)
	t.Metrics["updated"] = float64(updated)
	t.Metrics["alive"] = float64(st.DocsAlive)
	t.Metrics["seals"] = float64(st.Seals)
	t.Metrics["merges"] = float64(st.Merges)
	t.Metrics["segments_final"] = float64(st.Segments)
	t.Metrics["probe_decodes"] = float64(probeDecodes)
	t.Metrics["probe_block_faults"] = float64(probeFaults)
	t.Metrics["all_exact"] = boolMetric(allExact)
	t.Metrics["equiv"] = 1
	t.Metrics["ingest_docs_per_sec"] = rate(len(w.Col.Docs), ingestTotal)
	t.Metrics["search_ms_per_query"] = msPerQuery(searchTotal, checkpoints*len(w.Queries))

	t.Notes = append(t.Notes,
		"every probe answer carries the merge's exactness certificate; the final state is",
		"verified byte-identical to a one-shot index.Build over the *surviving* documents",
		fmt.Sprintf("churn=%.2g: %d deletes + %d updates tombstoned; merges purge dead postings and", churn, deleted, updated),
		fmt.Sprintf("re-tighten bounds; seals=%d merges=%d -> %d active segments, %d docs alive",
			st.Seals, st.Merges, st.Segments, st.DocsAlive),
		"ingest includes seal+merge+tombstone time; decodes/blockFaults are probe-side only")
	return t, nil
}

// survivorCollection builds a fresh collection over the surviving
// documents in arrival (id) order: a new lexicon interned from scratch,
// so its statistics cover exactly the survivors — the reference a
// churned live index must match. It also returns the map from baseline
// ids back to live global ids.
func survivorCollection(col *collection.Collection, aliveIDs []uint32, content map[uint32]int) (*collection.Collection, []uint32, error) {
	sub := &collection.Collection{Lex: lexicon.New()}
	for i, id := range aliveIDs {
		src := &col.Docs[content[id]]
		d := collection.Document{ID: uint32(i)}
		for _, tf := range src.Terms {
			d.Terms = append(d.Terms, collection.TermFreq{
				Term: sub.Lex.Intern(col.Lex.Name(tf.Term)), TF: tf.TF,
			})
			d.Len += tf.TF
		}
		// Fresh interning order need not match the original: restore the
		// ascending-term-id invariant documents carry.
		sort.Slice(d.Terms, func(a, b int) bool { return d.Terms[a].Term < d.Terms[b].Term })
		for _, tf := range d.Terms {
			if err := sub.Lex.Record(tf.Term, int(tf.TF)); err != nil {
				return nil, nil, err
			}
		}
		sub.Docs = append(sub.Docs, d)
		sub.TotalTokens += int64(d.Len)
	}
	if len(sub.Docs) > 0 {
		sub.AvgDocLen = float64(sub.TotalTokens) / float64(len(sub.Docs))
	}
	return sub, aliveIDs, nil
}

// sameTop compares two rankings: identical ids in identical order,
// scores within float addition-order noise.
func sameTop(got, want []rank.DocScore) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID {
			return fmt.Errorf("position %d is doc %d, want %d", i, got[i].DocID, want[i].DocID)
		}
		if d := math.Abs(got[i].Score - want[i].Score); d > 1e-9 {
			return fmt.Errorf("score mismatch at %d: %v vs %v", i, got[i].Score, want[i].Score)
		}
	}
	return nil
}

func rate(items int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(items) / d.Seconds()
}

func msPerQuery(d time.Duration, queries int) float64 {
	if queries == 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000 / float64(queries)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
