package bench

import (
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunLive (experiment LIVE) measures the live-index layer end to end
// with an interleaved insert/search workload: the collection streams
// through live.Writer in checkpointed batches, and after every batch
// the whole query workload probes the current snapshot. Each checkpoint
// reports ingest throughput, search latency, the segment count (the
// fragmentation queries pay for), cumulative merges, and the
// deterministic decode/fault counters of the probe pass.
//
// Merging runs through MergeAll between batches rather than the
// background goroutine, so the segment layout — and with it every
// counter — is reproducible for the CI regression gate; the background
// path is exercised by internal/live's -race stress. The final state is
// verified byte-identical to a one-shot index.Build over the same
// corpus (MaxScore top-10 per query), reported as the equiv metric.
//
// sealDocs/fanIn <= 0 pick scale-appropriate defaults.
func RunLive(s Scale, seed uint64, sealDocs, fanIn int) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	if sealDocs <= 0 {
		sealDocs = 200
		if s == ScaleFull {
			sealDocs = 2000
		}
	}
	if fanIn <= 0 {
		fanIn = 4
	}
	dir, err := os.MkdirTemp("", "topn-live-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)
	lw, err := live.Open(live.Config{Dir: dir, SealDocs: sealDocs, MergeFanIn: fanIn})
	if err != nil {
		return nil, err
	}
	defer lw.Close()

	const checkpoints = 5
	const n = 10
	t := &Table{
		ID: "LIVE",
		Title: fmt.Sprintf("live index: interleaved insert/search (%d docs, %d queries/probe, seal=%d, fanIn=%d)",
			len(w.Col.Docs), len(w.Queries), sealDocs, fanIn),
		Columns: []string{"docs", "segments", "merges", "ingest", "docs/s", "probe", "ms/query", "decodes", "blockFaults", "allExact"},
		Metrics: map[string]float64{},
	}

	names := make([][]string, len(w.Queries))
	for i, q := range w.Queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = w.Col.Lex.Name(term)
		}
	}

	var probeDecodes, probeFaults int64
	var ingestTotal, searchTotal time.Duration
	allExact := true
	for c := 0; c < checkpoints; c++ {
		lo := c * len(w.Col.Docs) / checkpoints
		hi := (c + 1) * len(w.Col.Docs) / checkpoints

		start := time.Now()
		for i := lo; i < hi; i++ {
			d := &w.Col.Docs[i]
			terms := make([]live.TermCount, len(d.Terms))
			for j, tf := range d.Terms {
				terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
			}
			if _, err := lw.Add(terms); err != nil {
				return nil, fmt.Errorf("bench: LIVE ingest doc %d: %w", i, err)
			}
		}
		if err := lw.Flush(); err != nil {
			return nil, err
		}
		if err := lw.MergeAll(); err != nil {
			return nil, err
		}
		ingest := time.Since(start)
		ingestTotal += ingest

		snap, err := lw.Acquire()
		if err != nil {
			return nil, err
		}
		snap.ResetCounters()
		start = time.Now()
		exact := true
		for i := range w.Queries {
			res, err := snap.Search(names[i], n)
			if err != nil {
				snap.Close()
				return nil, fmt.Errorf("bench: LIVE probe query %d: %w", i, err)
			}
			exact = exact && res.Exact
		}
		probe := time.Since(start)
		searchTotal += probe
		decoded, _, faulted := snap.Counters()
		segments := snap.Segments()
		snap.Close()
		probeDecodes += decoded
		probeFaults += faulted
		allExact = allExact && exact

		st := lw.Stats()
		t.AddRow(hi, segments, st.Merges, ingest,
			rate(hi-lo, ingest), probe, msPerQuery(probe, len(w.Queries)),
			decoded, faulted, exact)
	}

	// Equivalence: the final live state must answer exactly like a
	// one-shot build over the same corpus.
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(w.Col, pool)
	if err != nil {
		return nil, err
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	searcher := lw.Searcher()
	for i, q := range w.Queries {
		res, err := searcher.Search(names[i], n)
		if err != nil {
			return nil, err
		}
		want, err := ms.Search(q, n)
		if err != nil {
			return nil, err
		}
		if err := sameTop(res.Top, want); err != nil {
			return nil, fmt.Errorf("bench: LIVE diverged from the one-shot build on query %d: %w", i, err)
		}
	}

	st := lw.Stats()
	t.Metrics["docs"] = float64(st.DocsSealed)
	t.Metrics["seals"] = float64(st.Seals)
	t.Metrics["merges"] = float64(st.Merges)
	t.Metrics["segments_final"] = float64(st.Segments)
	t.Metrics["probe_decodes"] = float64(probeDecodes)
	t.Metrics["probe_block_faults"] = float64(probeFaults)
	t.Metrics["all_exact"] = boolMetric(allExact)
	t.Metrics["equiv"] = 1
	t.Metrics["ingest_docs_per_sec"] = rate(len(w.Col.Docs), ingestTotal)
	t.Metrics["search_ms_per_query"] = msPerQuery(searchTotal, checkpoints*len(w.Queries))

	t.Notes = append(t.Notes,
		"every probe answer carries the merge's exactness certificate; the final state is",
		"verified byte-identical to a one-shot index.Build (MaxScore top-10 per query)",
		fmt.Sprintf("seals=%d merges=%d -> %d active segments; merges run deterministically between batches",
			st.Seals, st.Merges, st.Segments),
		"ingest includes seal+merge time (write amplification); decodes/blockFaults are probe-side only")
	return t, nil
}

// sameTop compares two rankings: identical ids in identical order,
// scores within float addition-order noise.
func sameTop(got, want []rank.DocScore) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].DocID {
			return fmt.Errorf("position %d is doc %d, want %d", i, got[i].DocID, want[i].DocID)
		}
		if d := math.Abs(got[i].Score - want[i].Score); d > 1e-9 {
			return fmt.Errorf("score mismatch at %d: %v vs %v", i, got[i].Score, want[i].Score)
		}
	}
	return nil
}

func rate(items int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(items) / d.Seconds()
}

func msPerQuery(d time.Duration, queries int) float64 {
	if queries == 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000 / float64(queries)
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
