package bench

import (
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/quality"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunE12 is the ablation DESIGN.md calls out for the paper's central
// design choice: what does *physical fragmentation* buy over a purely
// logical safe pruning technique (MaxScore) on the same index? MaxScore is
// exact and needs no restructuring; the fragmented strategies give up
// exactness (unsafe) or need the quality check (safe) but can skip whole
// lists. The table reports postings decoded and quality for all four on
// the same workload.
func RunE12(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	p := params(s)
	// The stopword-free workload exercises the regime where the
	// techniques genuinely differ (long lists present).
	queries, err := collection.GenerateQueries(w.Col, collection.QueryConfig{
		NumQueries: p.numQueries, MinTerms: 3, MaxTerms: 6,
		MaxDocFreqFrac: 0.5, Seed: seed + 11,
	})
	if err != nil {
		return nil, err
	}
	engine, fx, err := w.BuildEngine(fragFracFor(s), rank.NewBM25())
	if err != nil {
		return nil, err
	}
	msPool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(w.Col, msPool)
	if err != nil {
		return nil, err
	}
	ms, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		return nil, err
	}

	truth := make([]quality.Qrels, len(queries))
	var exhaustive int64
	for i, q := range queries {
		res, err := engine.Search(q, core.Options{N: 10, Mode: core.ModeFull})
		if err != nil {
			return nil, err
		}
		truth[i] = quality.NewQrels(res.Top)
		for _, term := range q.Terms {
			exhaustive += int64(idx.DocFreq(term))
		}
	}

	t := &Table{
		ID:      "E12",
		Title:   "ablation: physical fragmentation vs logical MaxScore pruning (n=10)",
		Columns: []string{"technique", "decodes", "skips", "cost%ofExhaustive", "P@10", "MAP", "exact"},
	}
	addRow := func(name string, decodes, skips int64, sum quality.Summary, exact bool) {
		t.AddRow(name, decodes, skips, 100*float64(decodes)/float64(exhaustive),
			sum.MeanPrecision, sum.MAP, exact)
		t.SetMetric("decodes."+name, float64(decodes))
		t.SetMetric("skips."+name, float64(skips))
	}

	// Exhaustive full evaluation (baseline).
	t.AddRow("full (exhaustive)", exhaustive, int64(0), 100.0, 1.0, 1.0, true)

	// MaxScore (block-max) on the unfragmented index.
	evalMS, err := quality.NewEvaluator(10)
	if err != nil {
		return nil, err
	}
	idx.Counters().Reset()
	for i, q := range queries {
		res, err := ms.Search(q, 10)
		if err != nil {
			return nil, err
		}
		evalMS.Add(truth[i], res)
	}
	addRow("maxscore(block-max)", idx.Counters().PostingsDecoded,
		idx.Counters().SkipsTaken, evalMS.Summary(), true)

	// Fragmented strategies.
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"fragment-unsafe", core.Options{N: 10, Mode: core.ModeUnsafe}},
		{"fragment-safe(0.8)", core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 0.8}},
		{"fragment-safe-probe", core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2, ProbeLarge: true}},
	} {
		eval, err := quality.NewEvaluator(10)
		if err != nil {
			return nil, err
		}
		fx.ResetCounters()
		for i, q := range queries {
			res, err := engine.Search(q, v.opts)
			if err != nil {
				return nil, err
			}
			eval.Add(truth[i], res.Top)
		}
		addRow(v.name, decoded(fx), skipsTaken(fx), eval.Summary(), false)
	}
	t.Notes = append(t.Notes,
		"maxscore is exact with no physical restructuring; block-max bounds prune below term level",
		"fragmentation buys deeper savings by giving up exactness (unsafe) or paying the switch",
		"(safe) — the paper's trade-off made explicit; skips counts sparse-index block",
		"jumps and probes pruned by a block bound before any decode")
	return t, nil
}
