package bench

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/probtopn"
	"repro/internal/xrand"
)

// RunE8 regenerates the Donjerkovic-Ramakrishnan probabilistic top-N
// trade-off: sweeping the inflation (confidence) factor, reporting per-
// attempt candidate volume, restart counts and heap work against the full
// reference, for both the scan and the score-indexed variants.
func RunE8(s Scale, seed uint64) (*Table, error) {
	rows := 20000
	buckets := 64
	if s == ScaleFull {
		rows = 200000
		// The exponential score tail needs finer resolution at scale for
		// the extreme quantiles the cutoff computation asks for.
		buckets = 512
	}
	rng := xrand.New(seed)
	table := make([]exec.Row, rows)
	scores := make([]float64, rows)
	for i := range table {
		v := rng.ExpFloat64() // skewed scores, the hard case for cutoffs
		table[i] = exec.Row{ID: uint32(i), Score: v}
		scores[i] = v
	}
	hist, err := cost.BuildHistogram(scores, buckets)
	if err != nil {
		return nil, err
	}
	sorted := append([]exec.Row(nil), table...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Score != sorted[j].Score {
			return sorted[i].Score > sorted[j].Score
		}
		return sorted[i].ID < sorted[j].ID
	})

	t := &Table{
		ID:      "E8",
		Title:   "probabilistic top-N (n=50): inflation sweep vs full ranking",
		Columns: []string{"variant", "inflation", "rowsScanned", "heapComparisons", "restarts"},
	}
	ref, err := probtopn.Reference(table, 50)
	if err != nil {
		return nil, err
	}
	t.AddRow("reference", "-", ref.Stats.RowsScanned, ref.Stats.Comparisons, 0)
	for _, infl := range []float64{1, 1.5, 2, 4} {
		scan, err := probtopn.TopN(table, 50, hist, infl)
		if err != nil {
			return nil, err
		}
		t.AddRow("scan+cutoff", infl, scan.Stats.RowsScanned, scan.Stats.Comparisons, scan.Stats.Restarts)
		idx, err := probtopn.TopNIndexed(sorted, 50, hist, infl)
		if err != nil {
			return nil, err
		}
		t.AddRow("score-index", infl, idx.Stats.RowsScanned, idx.Stats.Comparisons, idx.Stats.Restarts)
	}
	t.Notes = append(t.Notes,
		"expected shape: higher inflation scans more per attempt but restarts less;",
		"the indexed variant reads only the qualifying prefix")
	return t, nil
}
