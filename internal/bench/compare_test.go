package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func baseReport() *Report {
	return &Report{
		Scale: "small", Seed: 42,
		Experiments: []ReportExperiment{
			{
				ID: "E12", Title: "t", WallMS: 10,
				Columns: []string{"a", "b"},
				Rows:    [][]string{{"1", "2"}},
				Metrics: map[string]float64{"decodes": 14345, "skips": 120},
			},
			{
				ID: "LIVE", Title: "t", WallMS: 50,
				Columns: []string{"x"},
				Rows:    [][]string{{"1"}, {"2"}},
				Metrics: map[string]float64{"equiv": 1, "merges": 2, "search_ms_per_query": 0.5},
			},
		},
	}
}

func clone(t *testing.T, r *Report) *Report {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var cp Report
	if err := json.Unmarshal(buf.Bytes(), &cp); err != nil {
		t.Fatal(err)
	}
	return &cp
}

// TestCompareIdentical: a report must pass against its own JSON
// round-trip (the committed-baseline path), regardless of provenance
// stamps.
func TestCompareIdentical(t *testing.T) {
	b := baseReport()
	f := clone(t, b)
	f.GitSHA, f.Timestamp = "deadbeef", time.Now().Format(time.RFC3339)
	if diffs := CompareReports(b, f, CompareOptions{WallTolerance: 25}); len(diffs) != 0 {
		t.Fatalf("identical reports flagged: %v", diffs)
	}
}

// TestCompareCounterDrift: a deterministic counter moving by one must
// trip the gate.
func TestCompareCounterDrift(t *testing.T) {
	b := baseReport()
	f := clone(t, b)
	f.Experiments[0].Metrics["decodes"] = 14346
	diffs := CompareReports(b, f, CompareOptions{WallTolerance: 25})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "decodes") {
		t.Fatalf("counter drift not caught: %v", diffs)
	}
}

// TestCompareExactnessFlag: a lost exactness certificate must trip the
// gate.
func TestCompareExactnessFlag(t *testing.T) {
	b := baseReport()
	f := clone(t, b)
	f.Experiments[1].Metrics["equiv"] = 0
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 1 {
		t.Fatalf("exactness drift not caught: %v", diffs)
	}
}

// TestCompareTimingTolerance: timing metrics never compare strictly,
// and wall-clock only trips beyond the tolerance factor (never for
// being faster).
func TestCompareTimingTolerance(t *testing.T) {
	b := baseReport()
	f := clone(t, b)
	f.Experiments[1].Metrics["search_ms_per_query"] = 400 // machine-dependent: ignored
	f.Experiments[0].WallMS = 1                           // faster: fine
	f.Experiments[1].WallMS = 60                          // 1.2x: within 25x
	if diffs := CompareReports(b, f, CompareOptions{WallTolerance: 25}); len(diffs) != 0 {
		t.Fatalf("tolerated timings flagged: %v", diffs)
	}
	f.Experiments[1].WallMS = 50 * 26
	diffs := CompareReports(b, f, CompareOptions{WallTolerance: 25})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "wall") {
		t.Fatalf("wall regression not caught: %v", diffs)
	}
	// Disabled timing checks let even that through.
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 0 {
		t.Fatalf("disabled timing check still flagged: %v", diffs)
	}
}

// TestCompareShape: added/removed experiments, shifted columns, and
// changed row counts are structural drift.
func TestCompareShape(t *testing.T) {
	b := baseReport()
	f := clone(t, b)
	f.Experiments = f.Experiments[:1]
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 1 {
		t.Fatalf("missing experiment not caught: %v", diffs)
	}
	f = clone(t, b)
	f.Experiments[0].Columns[1] = "c"
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 1 {
		t.Fatalf("column drift not caught: %v", diffs)
	}
	f = clone(t, b)
	f.Experiments[1].Rows = f.Experiments[1].Rows[:1]
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 1 {
		t.Fatalf("row-count drift not caught: %v", diffs)
	}
	f = clone(t, b)
	f.Experiments[0].Metrics["novel"] = 3
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 1 {
		t.Fatalf("new metric not caught: %v", diffs)
	}
	f = clone(t, b)
	f.Scale = "full"
	f.Seed = 7
	if diffs := CompareReports(b, f, CompareOptions{}); len(diffs) != 2 {
		t.Fatalf("scale/seed drift not caught: %v", diffs)
	}
}

// TestStamp: reports stamp provenance (in this repo, a real commit).
func TestStamp(t *testing.T) {
	var r Report
	r.Stamp()
	if r.GitSHA == "" || r.Timestamp == "" {
		t.Fatalf("unstamped report: %+v", r)
	}
	if _, err := time.Parse(time.RFC3339, r.Timestamp); err != nil {
		t.Fatalf("timestamp %q not RFC3339: %v", r.Timestamp, err)
	}
}
