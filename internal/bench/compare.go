// Bench regression gate: CompareReports diffs a fresh run against a
// committed baseline (BENCH_baseline.json). The deterministic outputs —
// experiment set, table shapes, exactness flags, and the counter
// metrics (postings decoded, blocks skipped, page/block faults, hit
// rates) — must match *exactly*: they are machine-independent by
// design, so any drift is a behaviour change that either needs a bug
// fix or a deliberate baseline refresh. Wall-clock comparisons are
// tolerance-based, since CI hardware varies run to run.
package bench

import (
	"fmt"
	"strings"
)

// CompareOptions tunes the gate.
type CompareOptions struct {
	// WallTolerance is the multiplicative factor a fresh timing may
	// exceed its baseline by before the gate trips (fresh > baseline ×
	// tolerance). Timings below FloorMS are never compared — they are
	// scheduler noise. <= 0 disables timing checks entirely.
	WallTolerance float64
	// FloorMS is the minimum baseline milliseconds for a timing check to
	// apply. Default 5ms when WallTolerance is set.
	FloorMS float64
}

// timingMetric classifies metric keys whose values depend on the
// machine: they are checked against WallTolerance instead of exactly.
// The naming convention is enforced here — runners name timing metrics
// with an "_ms" / "per_sec" component, the LOAD experiment prefixes its
// scheduling-dependent counters (served/shed/timeout splits) with
// "load_", the CHAOS experiment prefixes its cache-scheduling-
// dependent fault counters (retries, degraded splits) with "chaos_",
// the HOT experiment prefixes its singleflight-burst counters
// (whose hit/shared/miss split depends on goroutine scheduling) with
// "hot_", the REPL experiment prefixes its transfer-timing numbers
// with "repl_", and the TUNE experiment prefixes its calibrated
// coefficient floats (page weight, terms-per-query EWMAs) with "tune_"
// — its verdict metrics (per-policy costs, adaptive_best,
// decision_digest, equiv) deliberately do NOT carry the prefix and are
// gated exactly; everything else must be deterministic.
func timingMetric(key string) bool {
	return strings.Contains(key, "_ms") || strings.Contains(key, "per_sec") ||
		strings.Contains(key, "wall") || strings.Contains(key, "latency") ||
		strings.HasPrefix(key, "load_") || strings.HasPrefix(key, "chaos_") ||
		strings.HasPrefix(key, "hot_") || strings.HasPrefix(key, "repl_") ||
		strings.HasPrefix(key, "tune_")
}

// CompareReports returns the list of regressions of fresh against
// baseline; empty means the gate passes. GitSHA and Timestamp are
// ignored (they differ by construction).
func CompareReports(baseline, fresh *Report, opts CompareOptions) []string {
	var diffs []string
	add := func(format string, args ...interface{}) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if opts.WallTolerance > 0 && opts.FloorMS == 0 {
		opts.FloorMS = 5
	}
	if baseline.Scale != fresh.Scale {
		add("scale: baseline %q vs fresh %q (rerun with the baseline's -scale)", baseline.Scale, fresh.Scale)
	}
	if baseline.Seed != fresh.Seed {
		add("seed: baseline %d vs fresh %d (rerun with the baseline's -seed)", baseline.Seed, fresh.Seed)
	}

	freshByID := make(map[string]*ReportExperiment, len(fresh.Experiments))
	for i := range fresh.Experiments {
		freshByID[fresh.Experiments[i].ID] = &fresh.Experiments[i]
	}
	seen := map[string]bool{}
	for i := range baseline.Experiments {
		b := &baseline.Experiments[i]
		seen[b.ID] = true
		f, ok := freshByID[b.ID]
		if !ok {
			add("%s: in baseline but missing from the fresh run", b.ID)
			continue
		}
		compareExperiment(b, f, opts, add)
	}
	for i := range fresh.Experiments {
		if !seen[fresh.Experiments[i].ID] {
			add("%s: ran fresh but absent from the baseline (refresh BENCH_baseline.json)", fresh.Experiments[i].ID)
		}
	}
	return diffs
}

func compareExperiment(b, f *ReportExperiment, opts CompareOptions, add func(string, ...interface{})) {
	if len(b.Columns) != len(f.Columns) {
		add("%s: %d columns, baseline has %d", b.ID, len(f.Columns), len(b.Columns))
	} else {
		for i := range b.Columns {
			if b.Columns[i] != f.Columns[i] {
				add("%s: column %d is %q, baseline %q", b.ID, i, f.Columns[i], b.Columns[i])
			}
		}
	}
	if len(b.Rows) != len(f.Rows) {
		add("%s: %d rows, baseline has %d", b.ID, len(f.Rows), len(b.Rows))
	}

	for key, bv := range b.Metrics {
		fv, ok := f.Metrics[key]
		if !ok {
			add("%s: metric %q in baseline but not in the fresh run", b.ID, key)
			continue
		}
		if timingMetric(key) {
			continue // machine-dependent; only WallMS is tolerance-checked below
		}
		if bv != fv {
			add("%s: metric %q = %v, baseline %v (deterministic counter drift)", b.ID, key, fv, bv)
		}
	}
	for key := range f.Metrics {
		if _, ok := b.Metrics[key]; !ok {
			add("%s: new metric %q not in the baseline (refresh BENCH_baseline.json)", b.ID, key)
		}
	}

	if opts.WallTolerance > 0 && b.WallMS >= opts.FloorMS && f.WallMS > b.WallMS*opts.WallTolerance {
		add("%s: wall %.1fms exceeds baseline %.1fms × %.0f tolerance", b.ID, f.WallMS, b.WallMS, opts.WallTolerance)
	}
}
