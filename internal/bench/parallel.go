package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunParallel (experiment PAR) measures the sharded concurrent search
// layer against the sequential engine: the whole query workload is run
// once query-at-a-time on a single core.Engine in ModeFull (the exact
// baseline) and then batched through parallel.Searcher at the given
// shard/worker configuration. Reported per configuration: wall-clock for
// the workload, throughput, speedup over sequential, and the exactness
// certificate (which must hold on every query at epsilon 0).
//
// Wall-clock is the measurement here — unlike the paper-reproduction
// experiments, the point of the layer is real concurrency, not counter
// reductions. The deterministic cross-check (sharded top N == sequential
// top N) lives in internal/parallel's equivalence test.
func RunParallel(s Scale, seed uint64, shards, workers int) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	engine, _, err := w.BuildEngine(0.05, rank.NewBM25())
	if err != nil {
		return nil, err
	}
	const n = 10

	// Sequential baseline: one engine, one goroutine, exact evaluation.
	seqStart := time.Now()
	for _, q := range w.Queries {
		if _, err := engine.Search(q, core.Options{N: n, Mode: core.ModeFull}); err != nil {
			return nil, err
		}
	}
	seqElapsed := time.Since(seqStart)

	t := &Table{
		ID:      "PAR",
		Title:   fmt.Sprintf("sharded concurrent search vs sequential (%d queries, N=%d)", len(w.Queries), n),
		Columns: []string{"config", "shards", "workers", "wall", "queries/s", "speedup", "allExact"},
	}
	qps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(len(w.Queries)) / d.Seconds()
	}
	t.AddRow("sequential", 1, 1, seqElapsed, qps(seqElapsed), 1.0, true)

	// One set of shards, swept over worker counts (the per-call Workers
	// override avoids rebuilding the sharded indexes per configuration).
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	searcher, err := parallel.NewSearcher(w.Col, pool, rank.NewBM25(),
		parallel.Config{Shards: shards, Workers: workers})
	if err != nil {
		return nil, err
	}
	workerSweep := []int{1}
	if workers > 1 {
		workerSweep = append(workerSweep, workers)
	}
	sweepExact := true
	for _, wk := range workerSweep {
		start := time.Now()
		batch, err := searcher.SearchBatch(w.Queries, parallel.Options{N: n, Workers: wk})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		allExact := true
		for _, r := range batch.Results {
			if !r.Exact {
				allExact = false
			}
		}
		sweepExact = sweepExact && allExact
		t.AddRow(
			fmt.Sprintf("sharded/w%d", wk),
			searcher.NumShards(), wk, elapsed, qps(elapsed),
			seqElapsed.Seconds()/elapsed.Seconds(), allExact)
	}
	// The exactness certificate is the experiment's deterministic
	// output; the regression gate checks it strictly (timing stays in
	// the rendered rows only).
	t.SetMetric("all_exact", boolMetric(sweepExact))
	t.SetMetric("shards", float64(searcher.NumShards()))
	t.Notes = append(t.Notes,
		"sequential = one core.Engine ModeFull, query at a time; sharded = parallel.Searcher batch",
		"epsilon 0 per shard, so every sharded answer carries an exactness certificate",
		fmt.Sprintf("results cross-checked exact vs sequential in internal/parallel tests; shards=%d workers=%d from flags", shards, workers))
	return t, nil
}
