package bench

import (
	"fmt"

	"repro/internal/moa"
	"repro/internal/optimizer"
)

// RunE5 regenerates the Example 1 measurement of Step 2: the inter-object
// rewrite select(projecttobag(L)) → projecttobag(select(L)) followed by
// the intra-object binary-search select, swept over list sizes. The
// columns report the evaluator's deterministic work counters for the
// naive plan, the inter-object-only plan, and the fully optimized plan.
func RunE5(s Scale, seed uint64) (*Table, error) {
	sizes := []int{1000, 10000, 100000}
	if s == ScaleFull {
		sizes = []int{1000, 10000, 100000, 1000000}
	}
	_ = seed // the expression is deterministic; the sweep needs no RNG
	reg := moa.NewRegistry()
	opt := optimizer.New(reg)

	t := &Table{
		ID:      "E5",
		Title:   "Example 1: inter-object + intra-object rewrite work reduction",
		Columns: []string{"listSize", "plan", "visits", "comparisons", "vsNaive"},
	}
	for _, n := range sizes {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(i)
		}
		lit := moa.Literal(moa.NewIntList(xs...))
		lo, hi := moa.Int(int64(n/2)), moa.Int(int64(n/2+n/100+1))
		naive := moa.SelectB(moa.ProjectToBag(lit), lo, hi)
		// Inter-object only: pushdown without the physical select.
		inter := moa.ProjectToBag(moa.SelectL(lit, lo, hi))
		full, traces, err := opt.Optimize(naive)
		if err != nil {
			return nil, err
		}
		if len(traces) == 0 {
			return nil, fmt.Errorf("bench: E5 optimizer applied no rewrites")
		}
		var naiveWork float64
		for _, plan := range []struct {
			name string
			e    *moa.Expr
		}{{"naive", naive}, {"inter-object", inter}, {"fully-optimized", full}} {
			ev := moa.NewEvaluator(reg)
			ev.CheckPhysical = false // precondition verified by the optimizer
			if _, err := ev.Eval(plan.e); err != nil {
				return nil, fmt.Errorf("bench: E5 %s: %w", plan.name, err)
			}
			work := float64(ev.Counters.ElementsVisited + ev.Counters.Comparisons)
			if plan.name == "naive" {
				naiveWork = work
			}
			t.AddRow(n, plan.name, ev.Counters.ElementsVisited, ev.Counters.Comparisons,
				fmt.Sprintf("%.4fx", work/naiveWork))
		}
	}
	t.Notes = append(t.Notes,
		"paper claim: the rewritten expression 'can be executed more efficient', and exploiting",
		"list ordering makes it 'even more efficient' — O(log n + k) vs O(n) select")
	return t, nil
}
