package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/rank"
	"repro/internal/storage"
)

// RunDisk measures the pluggable-backend axis end to end: the same
// block-max MaxScore engine over (a) the in-memory index and (b) the
// persisted segment served through a buffer pool deliberately smaller
// than the index, with the paged backend required to return
// byte-identical top-N answers. The table reports the paper-style
// deterministic counters on both sides — postings decoded, blocks
// skipped — plus the disk-resident side's paging behaviour: blocks
// faulted, page faults (pool misses = physical reads), and the pool hit
// rate, for a cold pass (empty pool) and a warm pass (same queries
// again).
//
// fromDir optionally points at a segment persisted earlier with
// `topnbench -persist`; it must have been written at the same scale and
// seed, or the equality check fails. poolPages <= 0 picks a capacity of
// 1/8th of the segment (at least 4 pages).
func RunDisk(s Scale, seed uint64, poolPages int, fromDir string) (*Table, error) {
	if fromDir != "" {
		if _, err := os.Stat(index.SegmentPath(fromDir)); err != nil {
			return nil, fmt.Errorf("%w: DISK needs the segment persisted under -from %s (run topnbench -persist first): %v",
				ErrSkipped, fromDir, err)
		}
	}
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	p := params(s)
	queries, err := collection.GenerateQueries(w.Col, collection.QueryConfig{
		NumQueries: p.numQueries, MinTerms: 3, MaxTerms: 6,
		MaxDocFreqFrac: 0.5, Seed: seed + 11,
	})
	if err != nil {
		return nil, err
	}

	// In-memory baseline.
	memPool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, err
	}
	idx, err := index.Build(w.Col, memPool)
	if err != nil {
		return nil, err
	}
	memMS, err := core.NewMaxScore(idx, rank.NewBM25())
	if err != nil {
		return nil, err
	}

	// Disk-resident side: persist (unless reusing a segment) and reopen
	// through a pool smaller than the segment.
	dir := fromDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "topn-disk-*")
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		defer os.RemoveAll(tmp)
		if err := idx.Persist(tmp); err != nil {
			return nil, err
		}
		dir = tmp
	}
	fd, err := storage.OpenFileDisk(index.SegmentPath(dir))
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	segPages := fd.NumPages()
	if poolPages <= 0 {
		poolPages = segPages / 8
		if poolPages < 4 {
			poolPages = 4
		}
	}
	pool, err := storage.NewPool(fd, poolPages)
	if err != nil {
		return nil, err
	}
	opened, err := index.Open(dir, pool)
	if err != nil {
		return nil, err
	}
	pagedMS, err := core.NewMaxScore(opened, rank.NewBM25())
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "DISK",
		Title: fmt.Sprintf("backend ablation: in-memory vs paged segment (%d pages, pool %d) (n=10)", segPages, poolPages),
		Columns: []string{"backend", "time", "decodes", "skips", "blockFaults",
			"pageFaults", "hitRate"},
		Metrics: map[string]float64{
			"segment_pages": float64(segPages),
			"pool_pages":    float64(poolPages),
		},
	}

	// Memory pass.
	idx.Counters().Reset()
	memTop := make([][]rank.DocScore, len(queries))
	start := time.Now()
	for i, q := range queries {
		res, err := memMS.Search(q, 10)
		if err != nil {
			return nil, err
		}
		memTop[i] = res
	}
	memTime := time.Since(start)
	memC := idx.Counters()
	t.AddRow("memory", memTime, memC.PostingsDecoded, memC.SkipsTaken,
		int64(0), int64(0), "-")
	t.Metrics["decodes"] = float64(memC.PostingsDecoded)
	t.Metrics["skips"] = float64(memC.SkipsTaken)

	// Paged passes: cold (pool emptied of the open-time verification
	// pages) then warm (immediately again over the now-populated pool).
	runPaged := func(label string) error {
		opened.Counters().Reset()
		pool.ResetCounters()
		fd.ResetStats()
		start := time.Now()
		for i, q := range queries {
			res, err := pagedMS.Search(q, 10)
			if err != nil {
				return fmt.Errorf("bench: DISK %s pass: %w", label, err)
			}
			if len(res) != len(memTop[i]) {
				return fmt.Errorf("bench: DISK: query %d returned %d results over the paged backend, %d in memory (segment from a different build?)",
					i, len(res), len(memTop[i]))
			}
			for j := range res {
				if res[j] != memTop[i][j] {
					return fmt.Errorf("bench: DISK: query %d rank %d diverged across backends: %+v vs %+v (segment from a different scale/seed?)",
						i, j, res[j], memTop[i][j])
				}
			}
		}
		elapsed := time.Since(start)
		c := opened.Counters()
		_, misses := pool.Counts()
		hitRate := pool.HitRate()
		t.AddRow("paged/"+label, elapsed, c.PostingsDecoded, c.SkipsTaken,
			c.BlocksFaulted, misses, hitRate)
		t.Metrics["block_faults_"+label] = float64(c.BlocksFaulted)
		t.Metrics["page_faults_"+label] = float64(misses)
		t.Metrics["hit_rate_"+label] = hitRate
		return nil
	}
	if err := pool.DropAll(); err != nil {
		return nil, err
	}
	if err := runPaged("cold"); err != nil {
		return nil, err
	}
	if err := runPaged("warm"); err != nil {
		return nil, err
	}
	t.Metrics["hit_rate"] = t.Metrics["hit_rate_warm"]

	t.Notes = append(t.Notes,
		"paged answers verified byte-identical to memory per query; pool capacity "+
			fmt.Sprintf("%d < %d segment pages, so the working set is pool-governed", poolPages, segPages),
		"pageFaults = pool misses = physical page reads; blockFaults counts block",
		"fetches through postings.PagedSource; decodes/skips match memory exactly —",
		"the decode plan is backend-independent, only the I/O attribution moves")
	return t, nil
}
