package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// runners lists every experiment for the smoke tests.
var runners = map[string]func(Scale, uint64) (*Table, error){
	"F1":  RunF1,
	"E1":  RunE1E2,
	"E3":  RunE3,
	"E4":  RunE4,
	"E5":  RunE5,
	"E6":  RunE6,
	"E7":  RunE7,
	"E8":  RunE8,
	"E9":  RunE9,
	"E10": RunE10,
	"E11": RunE11,
	"E12": RunE12,
	"PAR": func(s Scale, seed uint64) (*Table, error) { return RunParallel(s, seed, 4, 4) },
	"DISK": func(s Scale, seed uint64) (*Table, error) {
		return RunDisk(s, seed, 0, "")
	},
	"HOT":  RunHot,
	"REPL": RunRepl,
	"TUNE": RunTune,
}

func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	for name, run := range runners {
		t.Run(name, func(t *testing.T) {
			tbl, err := run(ScaleSmall, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			if !strings.Contains(buf.String(), tbl.Title) {
				t.Error("render lost the title")
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := RunE1E2(ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE1E2(ScaleSmall, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			// The wall-clock column is inherently noisy; skip it.
			if a.Columns[j] == "time" {
				continue
			}
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %s differs across identical runs: %s vs %s",
					i, a.Columns[j], a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// cell finds a row by first-column key and returns the named column value.
func cell(t *testing.T, tbl *Table, key, col string) string {
	t.Helper()
	ci := -1
	for i, c := range tbl.Columns {
		if c == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", col, tbl.Columns)
	}
	for _, row := range tbl.Rows {
		if row[0] == key {
			return row[ci]
		}
	}
	t.Fatalf("no row with key %q", key)
	return ""
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// TestE1ShapeHolds asserts the paper's central claim direction at small
// scale: some fragment point delivers a large speedup with a measurable
// quality drop.
func TestE1ShapeHolds(t *testing.T) {
	tbl, err := RunE1E2(ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	var bestSpeedup float64
	var sawDrop bool
	for _, row := range tbl.Rows {
		speedup := parse(t, row[4])
		drop := parse(t, row[7])
		if speedup > bestSpeedup {
			bestSpeedup = speedup
		}
		if drop > 5 && speedup > 30 {
			sawDrop = true
		}
	}
	if bestSpeedup < 50 {
		t.Errorf("best unsafe speedup %.1f%%; paper shape needs a large saving", bestSpeedup)
	}
	if !sawDrop {
		t.Error("no fragment point shows the speedup-with-quality-drop trade-off")
	}
}

// TestE5ShapeHolds asserts the rewrite's asymptotic advantage: at the
// largest size, the optimized plan does under 1% of the naive work.
func TestE5ShapeHolds(t *testing.T) {
	tbl, err := RunE5(ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[1] != "fully-optimized" {
		t.Fatalf("unexpected final row %v", last)
	}
	if ratio := parse(t, last[4]); ratio > 0.01 {
		t.Errorf("fully optimized plan does %.4f of naive work; want < 0.01", ratio)
	}
}

func TestE3MonotoneSwitching(t *testing.T) {
	tbl, err := RunE3(ScaleSmall, 42)
	if err != nil {
		t.Fatal(err)
	}
	prevSwitched, prevDecodes := -1.0, -1.0
	for _, row := range tbl.Rows {
		sw := parse(t, row[1])
		dec := parse(t, row[2])
		if sw < prevSwitched {
			t.Errorf("switch count not monotone in threshold: %v", tbl.Rows)
		}
		if dec < prevDecodes {
			t.Errorf("decode cost not monotone in threshold")
		}
		prevSwitched, prevDecodes = sw, dec
	}
}

// TestDiskBackendInvariants runs the DISK experiment (whose runner
// internally asserts byte-identical top-N across backends — it errors on
// any divergence) and checks the acceptance shape: the pool is genuinely
// smaller than the segment, page faults are reported, and the decode
// plan is backend-independent.
func TestDiskBackendInvariants(t *testing.T) {
	tbl, err := RunDisk(ScaleSmall, 42, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Metrics["pool_pages"] >= tbl.Metrics["segment_pages"] {
		t.Fatalf("pool %v pages not smaller than segment %v pages",
			tbl.Metrics["pool_pages"], tbl.Metrics["segment_pages"])
	}
	if tbl.Metrics["page_faults_cold"] <= 0 {
		t.Error("cold pass reported no page faults despite an empty pool")
	}
	if tbl.Metrics["block_faults_cold"] <= 0 {
		t.Error("cold pass reported no block faults")
	}
	if hr := tbl.Metrics["hit_rate_warm"]; hr <= 0 || hr > 1 {
		t.Errorf("warm hit rate %v out of (0,1]", hr)
	}
	memDecodes := cell(t, tbl, "memory", "decodes")
	for _, pass := range []string{"paged/cold", "paged/warm"} {
		if got := cell(t, tbl, pass, "decodes"); got != memDecodes {
			t.Errorf("%s decoded %s postings, memory decoded %s — decode plan must be backend-independent", pass, got, memDecodes)
		}
	}
}

// TestReportJSONRoundTrips: the machine-readable report must carry the
// tables and metrics faithfully through JSON.
func TestReportJSONRoundTrips(t *testing.T) {
	tbl, err := RunDisk(ScaleSmall, 7, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Scale: "small", Seed: 7}
	rep.Add(tbl, 1500*time.Microsecond)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].ID != "DISK" {
		t.Fatalf("round-trip lost the experiment: %+v", back)
	}
	e := back.Experiments[0]
	if e.WallMS != 1.5 {
		t.Errorf("wall_ms = %v, want 1.5", e.WallMS)
	}
	if len(e.Rows) != len(tbl.Rows) || len(e.Metrics) != len(tbl.Metrics) {
		t.Error("rows or metrics dropped in JSON round trip")
	}
	if e.Metrics["hit_rate_warm"] != tbl.Metrics["hit_rate_warm"] {
		t.Error("metric value changed in JSON round trip")
	}
}
