package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rank"
	"repro/internal/vector"
	"repro/internal/xrand"
)

// RunE10 regenerates the integrated MM query measurement: text ⊕ feature
// fusion (the "integrated top N queries on several content and alpha
// numerical types" of the paper's research goal), comparing the exhaustive
// plan against the middleware algorithms, and composing Step 1 by letting
// the text subplan run in unsafe mode.
func RunE10(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	engine, _, err := w.BuildEngine(fragFracFor(s), rank.NewBM25())
	if err != nil {
		return nil, err
	}
	data, err := vector.Generate(vector.Config{
		NumObjects: engine.FX.Stats.NumDocs, Dim: 12, NumClusters: 15, Seed: seed + 5,
	})
	if err != nil {
		return nil, err
	}
	fusion, err := core.NewFusion(engine, data)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed + 6)
	numQ := 10
	if s == ScaleFull {
		numQ = 25
	}
	if numQ > len(w.Queries) {
		numQ = len(w.Queries)
	}

	t := &Table{
		ID:      "E10",
		Title:   "integrated text+feature fusion top-10: algorithm and text-mode sweep",
		Columns: []string{"algorithm", "textMode", "sortedAcc", "randomAcc", "overlap@10"},
	}
	type cfg struct {
		alg  core.Algorithm
		mode core.Mode
	}
	cfgs := []cfg{
		{core.AlgNaive, core.ModeFull},
		{core.AlgFA, core.ModeFull},
		{core.AlgTA, core.ModeFull},
		{core.AlgNRA, core.ModeFull},
		{core.AlgTA, core.ModeSafe},
		{core.AlgTA, core.ModeUnsafe},
	}
	// Ground truth per query: naive over full text mode.
	type qspec struct {
		fq core.FusionQuery
	}
	specs := make([]qspec, numQ)
	truths := make([]map[uint32]bool, numQ)
	for i := 0; i < numQ; i++ {
		specs[i] = qspec{fq: core.FusionQuery{
			Text:    w.Queries[i],
			Points:  []vector.Vector{data.Vecs[rng.Intn(len(data.Vecs))]},
			Weights: []float64{1.0, 1.0},
		}}
		res, err := fusion.Search(specs[i].fq, 10, core.AlgNaive, core.ModeFull)
		if err != nil {
			return nil, err
		}
		truths[i] = map[uint32]bool{}
		for _, d := range res.Top {
			truths[i][d.DocID] = true
		}
	}
	for _, c := range cfgs {
		var sorted, random int64
		var overlapSum float64
		for i := 0; i < numQ; i++ {
			res, err := fusion.Search(specs[i].fq, 10, c.alg, c.mode)
			if err != nil {
				return nil, err
			}
			sorted += res.Accesses.Sorted
			random += res.Accesses.Random
			hits := 0
			for _, d := range res.Top {
				if truths[i][d.DocID] {
					hits++
				}
			}
			denom := len(truths[i])
			if denom > 0 {
				overlapSum += float64(hits) / float64(denom)
			}
		}
		t.AddRow(c.alg.String(), c.mode.String(), sorted, random,
			fmt.Sprintf("%.3f", overlapSum/float64(numQ)))
	}
	t.Notes = append(t.Notes,
		"expected shape: TA/NRA cut accesses sharply at exact (or near-exact) overlap;",
		"safe/unsafe text modes compose Step 1 with the middleware layer — the fused answer",
		"inherits the text subplan's quality trade-off (cf. E1+E2)")
	return t, nil
}
