package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/live"
	"repro/internal/server"
)

// RunLoad (experiment LOAD) measures the serving layer end to end: the
// workload's collection is ingested into a live index, topnserve's
// server package is mounted on a real localhost listener, and an
// open-loop client fires the query workload at a fixed arrival rate —
// requests launch on schedule whether or not earlier ones finished, the
// arrival process a network front end actually faces. A deliberate
// overload burst (far more simultaneous requests than MaxInFlight +
// QueueDepth admits) then exercises the shed path.
//
// Two classes of numbers come out. Machine-dependent ones — latency
// quantiles, served/shed/timeout splits, throughput — are reported for
// inspection but exempt from the regression gate's exact comparison
// (the load_ metric prefix marks them). The deterministic ones are the
// gate's contract: every request is answered (no transport errors),
// and a final unloaded pass verifies every query's HTTP answer is
// exactly the in-process live.Searcher answer — same documents, same
// float64 scores, same order (equiv). The serving layer schedules; it
// must never change an answer.
func RunLoad(s Scale, seed uint64, loadRate float64, loadRequests int) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	if loadRate <= 0 {
		loadRate = 500
	}
	if loadRequests <= 0 {
		loadRequests = 200
		if s == ScaleFull {
			loadRequests = 1000
		}
	}
	const n = 10
	const maxInFlight = 2
	const queueDepth = 4
	// serviceFloor is a synthetic minimum per-query service time the
	// bench backend adds (ctx-aware, before delegating — results are
	// untouched). The small-scale corpus answers in ~100µs, faster than
	// the HTTP accept path can even deliver arrivals, so without a floor
	// no offered load would ever fill admission and the shed path would
	// go unexercised; the floor models the multi-millisecond queries of a
	// realistically sized corpus. Capacity = maxInFlight/serviceFloor =
	// 1000/s, so the 500/s open loop mostly serves while the burst is
	// far beyond what the queue absorbs.
	const serviceFloor = 2 * time.Millisecond
	burst := 50 * (maxInFlight + queueDepth)

	names := make([][]string, len(w.Queries))
	for i, q := range w.Queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = w.Col.Lex.Name(term)
		}
	}

	dir, err := os.MkdirTemp("", "topn-load-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)
	lw, err := live.Open(live.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			lw.Close()
		}
	}()
	for i := range w.Col.Docs {
		d := &w.Col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
		}
		if _, err := lw.Add(terms); err != nil {
			return nil, fmt.Errorf("bench: LOAD ingest doc %d: %w", i, err)
		}
	}
	if err := lw.Flush(); err != nil {
		return nil, err
	}
	if err := lw.MergeAll(); err != nil {
		return nil, err
	}

	srv, err := server.New(pausedBackend{server.NewLiveBackend(lw), serviceFloor}, server.Config{
		MaxInFlight: maxInFlight,
		QueueDepth:  queueDepth,
		// Generous deadline: on a slow CI box a queued request must get
		// served (or shed), not converted into a 504 the gate would see.
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{}

	t := &Table{
		ID: "LOAD",
		Title: fmt.Sprintf("serving layer: open-loop load over HTTP (%d docs, rate=%g/s, %d requests, inflight=%d, queue=%d)",
			len(w.Col.Docs), loadRate, loadRequests, maxInFlight, queueDepth),
		Columns: []string{"phase", "requests", "served", "shed", "timeout", "failed", "p50ms", "p99ms", "req/s"},
		Metrics: map[string]float64{},
	}

	// Phase 1: open-loop arrivals at the target rate.
	openLoop := fireLoad(client, base, names, n, loadRequests, time.Duration(float64(time.Second)/loadRate))
	t.AddRow("open-loop", openLoop.requests, openLoop.served, openLoop.shed, openLoop.timeout, openLoop.failed,
		fmt.Sprintf("%.2f", openLoop.p50ms), fmt.Sprintf("%.2f", openLoop.p99ms),
		fmt.Sprintf("%.0f", rate(openLoop.requests, openLoop.wall)))

	// Phase 2: overload burst — everything at once, far beyond what
	// admission accepts, so the shed path (429 + Retry-After) carries
	// most of the weight.
	burstRes := fireLoad(client, base, names, n, burst, 0)
	t.AddRow("burst", burstRes.requests, burstRes.served, burstRes.shed, burstRes.timeout, burstRes.failed,
		fmt.Sprintf("%.2f", burstRes.p50ms), fmt.Sprintf("%.2f", burstRes.p99ms),
		fmt.Sprintf("%.0f", rate(burstRes.requests, burstRes.wall)))

	// Phase 3: unloaded equivalence sweep — one request per query, each
	// answer compared exactly against the in-process searcher.
	searcher := lw.Searcher()
	var equivFailed int
	for i := range names {
		resp, status, err := postSearch(client, base, names[i], n)
		if err != nil || status != http.StatusOK {
			equivFailed++
			continue
		}
		want, err := searcher.Search(names[i], n)
		if err != nil {
			return nil, fmt.Errorf("bench: LOAD in-process query %d: %w", i, err)
		}
		if !server.ResultEqual(resp, want) {
			return nil, fmt.Errorf("bench: LOAD HTTP answer for query %d differs from in-process live.Searcher", i)
		}
	}
	if equivFailed > 0 {
		return nil, fmt.Errorf("bench: LOAD equivalence sweep: %d/%d unloaded requests failed", equivFailed, len(names))
	}
	t.AddRow("equivalence", len(names), len(names), 0, 0, 0, "-", "-", "-")

	// Graceful shutdown: drain, close the index, and confirm the
	// listener really stopped.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("bench: LOAD shutdown: %w", err)
	}
	closed = true
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return nil, fmt.Errorf("bench: LOAD serve: %w", err)
	}

	totalReq := openLoop.requests + burstRes.requests
	answered := openLoop.served + openLoop.shed + openLoop.timeout +
		burstRes.served + burstRes.shed + burstRes.timeout
	// Deterministic contract: every request drew an HTTP answer — served,
	// shed, or deadline-expired, never a transport error or a crash.
	t.Metrics["requests"] = float64(totalReq + len(names))
	t.Metrics["queries"] = float64(len(names))
	t.Metrics["http_failures"] = float64(openLoop.failed + burstRes.failed)
	t.Metrics["all_answered"] = boolMetric(answered+openLoop.failed+burstRes.failed == totalReq)
	t.Metrics["equiv"] = 1 // the sweep above hard-fails on divergence
	// Machine-dependent, gate-exempt by the load_ prefix convention.
	t.Metrics["load_served"] = float64(openLoop.served + burstRes.served)
	t.Metrics["load_shed"] = float64(openLoop.shed + burstRes.shed)
	t.Metrics["load_timeout"] = float64(openLoop.timeout + burstRes.timeout)
	t.Metrics["load_p50_ms"] = openLoop.p50ms
	t.Metrics["load_p99_ms"] = openLoop.p99ms
	t.Metrics["load_req_per_sec"] = rate(openLoop.requests, openLoop.wall)

	t.Notes = append(t.Notes,
		"open-loop arrivals: requests fire on schedule regardless of completions, so queueing",
		"delay surfaces as latency instead of silently throttling the offered load;",
		fmt.Sprintf("the backend adds a %v service floor per query (answers untouched) to model a", serviceFloor),
		fmt.Sprintf("realistically sized corpus: capacity = inflight/floor = %d/s against %g/s offered;",
			int(float64(maxInFlight)/serviceFloor.Seconds()), loadRate),
		fmt.Sprintf("burst of %d simultaneous requests against inflight=%d queue=%d exercises shedding (429+Retry-After)",
			burst, maxInFlight, queueDepth),
		"served/shed splits and latency quantiles are machine-dependent and exempt from the gate;",
		"the gated facts: every request answered, and every unloaded HTTP answer byte-identical",
		"to the in-process live.Searcher (same docs, same float64 scores, same order)")
	return t, nil
}

// pausedBackend imposes a minimum service time per query (ctx-aware)
// and then delegates, so the load phases face realistic query costs
// while answers stay exactly the live backend's.
type pausedBackend struct {
	server.Backend
	pause time.Duration
}

func (b pausedBackend) SearchContext(ctx context.Context, terms []string, n int) (live.Result, error) {
	t := time.NewTimer(b.pause)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return live.Result{}, ctx.Err()
	}
	return b.Backend.SearchContext(ctx, terms, n)
}

// loadResult aggregates one load phase.
type loadResult struct {
	requests, served, shed, timeout, failed int
	p50ms, p99ms                            float64
	wall                                    time.Duration
}

// fireLoad sends count requests with the given inter-arrival gap (0 =
// all at once), cycling through the query workload, and aggregates the
// outcomes. Open loop: the sender never waits for responses.
func fireLoad(client *http.Client, base string, names [][]string, n, count int, gap time.Duration) loadResult {
	type outcome struct {
		status  int
		err     error
		latency time.Duration
	}
	outcomes := make([]outcome, count)
	var wg sync.WaitGroup
	// With no gap this is a true simultaneous burst: every goroutine
	// parks on the barrier before any request fires, so arrivals are not
	// serialized by goroutine launch skew (sub-millisecond queries would
	// otherwise drain between launches and nothing would ever shed).
	barrier := make(chan struct{})
	start := time.Now()
	for i := 0; i < count; i++ {
		if gap > 0 {
			// Fire at the schedule, not gap after the previous launch:
			// lateness must not thin the offered load.
			time.Sleep(time.Until(start.Add(time.Duration(i) * gap)))
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if gap == 0 {
				<-barrier
			}
			t0 := time.Now()
			_, status, err := postSearch(client, base, names[i%len(names)], n)
			outcomes[i] = outcome{status: status, err: err, latency: time.Since(t0)}
		}(i)
	}
	close(barrier)
	wg.Wait()
	res := loadResult{requests: count, wall: time.Since(start)}
	lats := make([]time.Duration, 0, count)
	for _, o := range outcomes {
		switch {
		case o.err != nil:
			res.failed++
		case o.status == http.StatusOK:
			res.served++
			lats = append(lats, o.latency)
		case o.status == http.StatusTooManyRequests:
			res.shed++
		case o.status == http.StatusGatewayTimeout:
			res.timeout++
		default:
			res.failed++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i].Microseconds()) / 1000
	}
	res.p50ms = q(0.50)
	res.p99ms = q(0.99)
	return res
}

// postSearch sends one /search request and decodes the 200 answer.
func postSearch(client *http.Client, base string, terms []string, n int) (server.SearchResponse, int, error) {
	body, err := json.Marshal(map[string]interface{}{"terms": terms, "n": n})
	if err != nil {
		return server.SearchResponse{}, 0, err
	}
	resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return server.SearchResponse{}, 0, err
	}
	defer resp.Body.Close()
	var out server.SearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return server.SearchResponse{}, resp.StatusCode, err
		}
	}
	return out, resp.StatusCode, nil
}
