package bench

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/tune"
)

// tunePageWeight prices one page touch (fault, seal write, merge
// read/write) in decode units for the TUNE verdict — the same ratio the
// deterministic span model plants (100µs fault / 100ns decode), and the
// cost package's default.
const tunePageWeight = 1000

// tuneShape is one workload shape the TUNE experiment drives every
// policy through: a deterministic interleaving of ingest batches, churn
// (tombstoning a fraction of each batch), and query sweeps.
type tuneShape struct {
	name     string
	batches  int     // ingest checkpoints
	sweeps   int     // query sweeps per read phase
	churn    float64 // fraction of each batch tombstoned after ingest
	burstGap bool    // bursty: write batches see no queries at all
}

// tunePolicy is one maintenance-policy configuration under test.
type tunePolicy struct {
	name     string
	horizon  int
	purge    float64
	fanIn    int
	pool     int
	adaptive bool // attach a tuner with adaptive bounds
}

// tuneOutcome is one (shape, policy) run's account.
type tuneOutcome struct {
	segments, merges int64
	probeDecodes     int64
	probeFaults      int64
	maint            live.MaintStats
	cost             int64 // the verdict currency; see tuneCost
	tops             [][]rank.DocScore
	digest           uint32
	pageWeight       float64
	termsPerQuery    float64
}

// tuneCost folds a run into the verdict currency: every decoded posting
// costs 1, every page touched — probe fault, seal write, merge read or
// write — costs tunePageWeight, and every posting re-encoded by
// maintenance costs 1. Integer arithmetic over deterministic counters,
// so the gate can compare it exactly.
func tuneCost(o *tuneOutcome) int64 {
	pages := o.probeFaults + o.maint.SealPagesWritten + o.maint.MergePagesRead + o.maint.MergePagesWritten
	return o.probeDecodes + o.maint.MergeReencoded + tunePageWeight*pages
}

// RunTune (experiment TUNE) closes the loop of the paper's cost-model
// argument: the index's own maintenance — when to merge, what to purge,
// how big to seal — runs on coefficients calibrated from live counters,
// and this experiment holds the adaptive policy to a hard verdict. Three
// workload shapes (read-heavy, churn-heavy, bursty) each run under four
// policies: the adaptive tuner and three static settings (eager, lazy,
// and the defaults). Every run is deterministic — one worker, explicit
// MergeAll checkpoints, modeled spans (100ns/decode, 100µs/page) — and
// every policy must answer the final probe byte-identically: adaptivity
// changes when and what gets merged, never what a query returns.
//
// The verdict charges each run's total cost in one currency (tuneCost):
// probe decodes and faults on the query side, seal/merge page traffic
// and re-encoded postings on the maintenance side. The gated
// <shape>_adaptive_best metrics assert the adaptive policy's cost is
// within tuneSlack of the best static on every shape — no static
// setting is safe across shapes, calibration is. decision_digest is the
// FNV fold of the three shapes' tuner decision logs: two runs over the
// same seed must produce the identical digest (CI runs the experiment
// twice and diffs exactly that).
func RunTune(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	sealDocs := len(w.Col.Docs) / 12
	if sealDocs < 20 {
		sealDocs = 20
	}

	shapes := []tuneShape{
		{name: "read", batches: 4, sweeps: 6, churn: 0},
		{name: "churn", batches: 6, sweeps: 1, churn: 0.5},
		{name: "bursty", batches: 6, sweeps: 4, churn: 0.1, burstGap: true},
	}
	policies := []tunePolicy{
		{name: "adaptive", horizon: 1000, purge: 0.5, fanIn: 4, pool: 64, adaptive: true},
		{name: "eager", horizon: 8000, purge: 0.25, fanIn: 2, pool: 256},
		{name: "lazy", horizon: 5, purge: 2.0, fanIn: 6, pool: 64},
		{name: "static", horizon: 1000, purge: 0.5, fanIn: 4, pool: 64},
	}

	t := &Table{
		ID: "TUNE",
		Title: fmt.Sprintf("self-tuning: adaptive vs static maintenance policies (%d docs, %d queries, seal=%d, 3 shapes)",
			len(w.Col.Docs), len(w.Queries), sealDocs),
		Columns: []string{"shape", "policy", "segments", "merges", "probeDecodes", "probeFaults", "sealPages", "mergePages", "reencoded", "cost", "best"},
		Metrics: map[string]float64{},
	}

	digest := uint32(2166136261)
	foldDigest := func(d uint32) {
		for shift := 0; shift < 32; shift += 8 {
			digest ^= (d >> shift) & 0xff
			digest *= 16777619
		}
	}

	for _, shape := range shapes {
		outcomes := make([]*tuneOutcome, len(policies))
		for i, pol := range policies {
			o, err := runTunePolicy(w, shape, pol, sealDocs, seed)
			if err != nil {
				return nil, fmt.Errorf("bench: TUNE %s/%s: %w", shape.name, pol.name, err)
			}
			outcomes[i] = o
		}
		// Byte-identical answers: the maintenance policy must never change
		// what a query returns.
		for i := 1; i < len(policies); i++ {
			for q := range outcomes[0].tops {
				if err := sameTop(outcomes[i].tops[q], outcomes[0].tops[q]); err != nil {
					return nil, fmt.Errorf("bench: TUNE %s: policy %s diverged from %s on query %d: %w",
						shape.name, policies[i].name, policies[0].name, q, err)
				}
			}
		}
		bestStatic := int64(-1)
		for i := 1; i < len(policies); i++ {
			if bestStatic < 0 || outcomes[i].cost < bestStatic {
				bestStatic = outcomes[i].cost
			}
		}
		adaptive := outcomes[0]
		best := adaptive.cost <= bestStatic
		for i, pol := range policies {
			o := outcomes[i]
			t.AddRow(shape.name, pol.name, o.segments, o.merges, o.probeDecodes, o.probeFaults,
				o.maint.SealPagesWritten, o.maint.MergePagesRead+o.maint.MergePagesWritten,
				o.maint.MergeReencoded, o.cost, pol.adaptive && best)
			t.Metrics[fmt.Sprintf("%s_%s_cost", shape.name, pol.name)] = float64(o.cost)
		}
		t.Metrics[shape.name+"_adaptive_best"] = boolMetric(best)
		t.Metrics["tune_"+shape.name+"_page_weight"] = adaptive.pageWeight
		t.Metrics["tune_"+shape.name+"_terms_per_query"] = adaptive.termsPerQuery
		foldDigest(adaptive.digest)
		if !best {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING %s: adaptive cost %d exceeds best static %d", shape.name, adaptive.cost, bestStatic))
		}
	}
	t.Metrics["decision_digest"] = float64(digest)
	t.Metrics["equiv"] = 1

	t.Notes = append(t.Notes,
		"every policy answers the final probe byte-identically; only maintenance timing differs",
		fmt.Sprintf("cost currency: decodes + reencodes + %d x pages (probe faults + seal/merge traffic)", tunePageWeight),
		"adaptive runs modeled spans (100ns/decode, 100us/page), so calibration lands on page weight 1000",
		"decision_digest folds the three shapes' tuner decision logs: same seed => same digest, exactly")
	return t, nil
}

// runTunePolicy drives one policy through one shape on a fresh live
// directory. The operation sequence — ingest order, tombstone schedule,
// query sweeps — is a function of (shape, seed) only, so every policy
// sees the same stream and must produce the same answers.
func runTunePolicy(w *Workload, shape tuneShape, pol tunePolicy, sealDocs int, seed uint64) (*tuneOutcome, error) {
	dir, err := os.MkdirTemp("", "topn-tune-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var tn *tune.Tuner
	if pol.adaptive {
		tn = tune.New(tune.Config{
			SpanModel:  &tune.SpanModel{DecodeCost: 100 * time.Nanosecond, FaultCost: 100 * time.Microsecond},
			SealDocs:   tune.Bounds{Min: sealDocs, Max: 4 * sealDocs},
			MergeFanIn: tune.Bounds{Min: 2, Max: 6},
			PoolPages:  tune.Bounds{Min: 64, Max: 256},
		})
	}
	lw, err := live.Open(live.Config{
		Dir:           dir,
		SealDocs:      sealDocs,
		Workers:       1,
		MergeHorizon:  pol.horizon,
		PurgeDeadFrac: pol.purge,
		MergeFanIn:    pol.fanIn,
		PoolPages:     pol.pool,
		Tune:          tn,
	})
	if err != nil {
		return nil, err
	}
	defer lw.Close()

	names := make([][]string, len(w.Queries))
	for i, q := range w.Queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = w.Col.Lex.Name(term)
		}
	}
	docTerms := func(i int) []live.TermCount {
		d := &w.Col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
		}
		return terms
	}

	o := &tuneOutcome{}
	var aliveIDs []uint32
	// The churn schedule depends only on (shape, seed): every policy
	// tombstones the same documents in the same order.
	rng := rand.New(rand.NewSource(int64(seed) + int64(len(shape.name))*7919))

	probe := func(sweeps int) error {
		snap, err := lw.Acquire()
		if err != nil {
			return err
		}
		defer snap.Close()
		snap.ResetCounters()
		o.tops = o.tops[:0]
		for s := 0; s < sweeps; s++ {
			for i := range names {
				res, err := snap.Search(names[i], 10)
				if err != nil {
					return fmt.Errorf("probe query %d: %w", i, err)
				}
				if !res.Exact || res.Degraded {
					return fmt.Errorf("probe query %d not exact: %+v", i, res.Cert)
				}
				if s == sweeps-1 {
					o.tops = append(o.tops, res.Top)
				}
			}
		}
		d, _, f := snap.Counters()
		o.probeDecodes += d
		o.probeFaults += f
		return nil
	}

	for b := 0; b < shape.batches; b++ {
		lo := b * len(w.Col.Docs) / shape.batches
		hi := (b + 1) * len(w.Col.Docs) / shape.batches
		for i := lo; i < hi; i++ {
			id, err := lw.Add(docTerms(i))
			if err != nil {
				return nil, fmt.Errorf("ingest doc %d: %w", i, err)
			}
			aliveIDs = append(aliveIDs, id)
		}
		if shape.churn > 0 {
			kill := int(shape.churn * float64(hi-lo))
			for k := 0; k < kill && len(aliveIDs) > 1; k++ {
				pick := rng.Intn(len(aliveIDs))
				id := aliveIDs[pick]
				aliveIDs = append(aliveIDs[:pick], aliveIDs[pick+1:]...)
				if err := lw.Delete(id); err != nil {
					return nil, fmt.Errorf("delete doc %d: %w", id, err)
				}
			}
		}
		if err := lw.Flush(); err != nil {
			return nil, err
		}
		if err := lw.MergeAll(); err != nil {
			return nil, err
		}
		// Bursty shapes only read on every other checkpoint; the others
		// probe at every one.
		if shape.burstGap && b%2 == 0 {
			continue
		}
		if err := probe(shape.sweeps); err != nil {
			return nil, err
		}
	}
	// Every shape ends with one final sweep — the answers the
	// byte-identity check compares across policies.
	if err := probe(1); err != nil {
		return nil, err
	}

	st := lw.Stats()
	o.segments = int64(st.Segments)
	o.merges = st.Merges
	o.maint = lw.MaintStats()
	o.cost = tuneCost(o)
	if tn != nil {
		ts := tn.Stats()
		o.digest = ts.DecisionDigest
		o.pageWeight = ts.PageWeight
		o.termsPerQuery = ts.TermsPerQuery
	}
	return o, nil
}
