package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rank"
)

// RunE9 measures Step 3's cost model against reality: for every query, the
// planner predicts the decode cost of the three plan alternatives; the
// harness then executes all three and reports the mean relative error and
// — the number that matters for plan choice — how often the predicted
// pairwise ordering matches the measured one.
func RunE9(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	engine, fx, err := w.BuildEngine(fragFracFor(s), rank.NewBM25())
	if err != nil {
		return nil, err
	}
	planner, err := core.NewPlanner(engine)
	if err != nil {
		return nil, err
	}
	alts := []struct {
		alt  core.PlanAlternative
		opts core.Options
	}{
		{core.PlanUnsafe, core.Options{N: 10, Mode: core.ModeUnsafe}},
		{core.PlanSafeStream, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2}},
		{core.PlanSafeProbe, core.Options{N: 10, Mode: core.ModeSafe, SwitchThreshold: 2, ProbeLarge: true}},
	}
	relErrSum := map[core.PlanAlternative]float64{}
	relErrN := map[core.PlanAlternative]int{}
	agree, totalPairs := 0, 0
	for _, q := range w.Queries {
		choice := planner.Plan(q)
		measured := map[core.PlanAlternative]int64{}
		for _, a := range alts {
			fx.ResetCounters()
			if _, err := engine.Search(q, a.opts); err != nil {
				return nil, err
			}
			measured[a.alt] = decoded(fx)
			if m := measured[a.alt]; m > 0 {
				pred := choice.Predicted[a.alt].Decodes
				err := pred/float64(m) - 1
				if err < 0 {
					err = -err
				}
				relErrSum[a.alt] += err
				relErrN[a.alt]++
			}
		}
		pairs := [][2]core.PlanAlternative{
			{core.PlanUnsafe, core.PlanSafeStream},
			{core.PlanUnsafe, core.PlanSafeProbe},
			{core.PlanSafeProbe, core.PlanSafeStream},
		}
		for _, pr := range pairs {
			predLess := choice.Predicted[pr[0]].Decodes <= choice.Predicted[pr[1]].Decodes
			measLess := measured[pr[0]] <= measured[pr[1]]
			totalPairs++
			if predLess == measLess {
				agree++
			}
		}
	}
	t := &Table{
		ID:      "E9",
		Title:   "cost model accuracy: predicted vs measured postings decoded",
		Columns: []string{"plan", "meanRelError%", "queries"},
	}
	for _, a := range alts {
		n := relErrN[a.alt]
		if n == 0 {
			t.AddRow(a.alt.String(), "-", 0)
			continue
		}
		t.AddRow(a.alt.String(), 100*relErrSum[a.alt]/float64(n), n)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"pairwise plan-ordering agreement: %d/%d (%.0f%%) — the decision-relevant accuracy",
		agree, totalPairs, 100*float64(agree)/float64(totalPairs)))
	return t, nil
}
