package bench

import "errors"

// ErrSkipped marks an experiment whose prerequisites are missing (for
// example, DISK pointed at a -from directory that does not exist).
// Runners wrap it with context via fmt.Errorf("%w: ...", ErrSkipped);
// the topnbench driver running "-exp all" prints the note and moves on
// instead of crashing, while a directly requested experiment still
// fails loudly.
var ErrSkipped = errors.New("bench: experiment skipped")
