package bench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/live"
	"repro/internal/rank"
	"repro/internal/replica"
	"repro/internal/server"
)

// RunRepl (experiment REPL) exercises the replication layer end to end:
// a leader live index served over a real localhost listener, a follower
// pulling its sealed segments + sidecars through the /repl/ wire
// protocol, and a coordinator scattering queries over both. Three
// properties are gated:
//
//  1. Catch-up under churn: across batches of inserts and deletes the
//     follower's manifest ordinal reaches the leader's after every
//     sync, and its answers are byte-identical to the leader's — same
//     documents, same float64 scores, same order. A crash injected
//     mid-pull (staging directory half-filled) is recovered by reopen
//     GC plus one clean re-sync, and a leader merge that retires
//     segments between the follower's manifest fetch and its pulls
//     (404 mid-pull) is absorbed by replanning from a fresh manifest.
//  2. Coordinator equivalence: with both replicas caught up, the
//     scatter/gather answer over HTTP is exact, non-degraded, and
//     byte-identical to the single-node answer.
//  3. Staleness is certified, never silent: a follower left behind (and
//     later, shut down) costs the merged certificate its exactness —
//     Degraded with ShardsServed < ShardsTotal and the lagging replica
//     named — while the results still match the freshest replica; with
//     every replica down the coordinator answers 503, not stale data.
//
// Counters that depend only on the deterministic workload — syncs,
// segments/files/bytes pulled, certificate splits, equivalence flags —
// are gated exactly; wall-clock style numbers carry the repl_ prefix
// and are exempt.
func RunRepl(s Scale, seed uint64) (*Table, error) {
	w, err := NewWorkload(s, seed)
	if err != nil {
		return nil, err
	}
	const n = 10
	const batches = 4
	names := make([][]string, len(w.Queries))
	for i, q := range w.Queries {
		names[i] = make([]string, len(q.Terms))
		for j, term := range q.Terms {
			names[i][j] = w.Col.Lex.Name(term)
		}
	}

	leaderDir, err := os.MkdirTemp("", "topn-repl-leader-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(leaderDir)
	followerDir, err := os.MkdirTemp("", "topn-repl-follower-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(followerDir)

	// Leader: explicit Flush control (SealDocs above any batch size,
	// merges only via MergeAll) so the segment chain is deterministic.
	lw, err := live.Open(live.Config{Dir: leaderDir, SealDocs: 1 << 30})
	if err != nil {
		return nil, err
	}
	lsrv, lbase, lerr, err := serveReplica(lw)
	if err != nil {
		lw.Close()
		return nil, err
	}
	shutdownLeader := shutdownOnce(lsrv, lerr) // closes lw too

	fw, err := live.Open(live.Config{Dir: followerDir, Follower: true})
	if err != nil {
		shutdownLeader()
		return nil, err
	}
	fwOpen := true
	defer func() {
		if fwOpen {
			fw.Close()
		}
	}()
	defer shutdownLeader()

	// The crash hook indirects through a reassignable func so each phase
	// arms its own behavior on the same Follower.
	var hook func(point string) bool
	fcfg := replica.FollowerConfig{CrashHook: func(p string) bool {
		if hook != nil {
			return hook(p)
		}
		return false
	}}
	fol, err := replica.NewFollower(fw, lbase, fcfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	t := &Table{
		ID: "REPL",
		Title: fmt.Sprintf("replication: segment shipping + distributed top-N (%d docs, %d batches, %d queries)",
			len(w.Col.Docs), batches, len(w.Queries)),
		Columns: []string{"phase", "leader gen", "follower gen", "segs pulled", "files pulled", "outcome"},
		Metrics: map[string]float64{},
	}
	syncStart := time.Now()

	// Phase 1: catch-up under churn. Each batch ingests a slice of the
	// corpus, tombstones a couple of earlier documents (so alive-bitmap
	// sidecars replicate too, not just fresh segments), seals, and syncs.
	var ids []uint32
	var docsDeleted int
	catchupSyncs := 0
	per := (len(w.Col.Docs) + batches - 1) / batches
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if hi > len(w.Col.Docs) {
			hi = len(w.Col.Docs)
		}
		for i := lo; i < hi; i++ {
			d := &w.Col.Docs[i]
			terms := make([]live.TermCount, len(d.Terms))
			for j, tf := range d.Terms {
				terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
			}
			id, err := lw.Add(terms)
			if err != nil {
				return nil, fmt.Errorf("bench: REPL ingest doc %d: %w", i, err)
			}
			ids = append(ids, id)
		}
		if b > 0 {
			// Tombstone two documents sealed in earlier batches.
			for k := 0; k < 2; k++ {
				if err := lw.Delete(ids[(b-1)*per+k]); err != nil {
					return nil, fmt.Errorf("bench: REPL delete: %w", err)
				}
				docsDeleted++
			}
		}
		if err := lw.Flush(); err != nil {
			return nil, err
		}
		advanced, err := fol.SyncOnce(ctx)
		if err != nil {
			return nil, fmt.Errorf("bench: REPL sync batch %d: %w", b, err)
		}
		if !advanced {
			return nil, fmt.Errorf("bench: REPL sync batch %d did not advance the follower", b)
		}
		catchupSyncs++
		if lg, fg := lw.Manifest().Generation, fw.Manifest().Generation; lg != fg {
			return nil, fmt.Errorf("bench: REPL after batch %d: follower at generation %d, leader at %d", b, fg, lg)
		}
	}
	st := fol.Stats()
	t.AddRow("churn catch-up", lw.Manifest().Generation, fw.Manifest().Generation,
		st.SegmentsPulled, st.FilesPulled, fmt.Sprintf("%d syncs", catchupSyncs))

	// Byte-identical answers after catch-up.
	if err := replEquiv(lw, fw, names, n); err != nil {
		return nil, err
	}

	// Phase 2: crash mid-pull, then reopen. The leader advances, the
	// follower dies with a staging directory half-filled; reopening the
	// follower index must GC the staging leftovers, and one clean sync
	// must land the batch.
	if err := replIngestExtra(lw, w, 0, 8); err != nil {
		return nil, err
	}
	hook = func(p string) bool { return p == replica.CrashMidSegment }
	if _, err := fol.SyncOnce(ctx); !errors.Is(err, replica.ErrCrashPoint) {
		return nil, fmt.Errorf("bench: REPL crash injection: got %v, want ErrCrashPoint", err)
	}
	hook = nil
	preGen := fw.Manifest().Generation // the serving state an aborted sync must not have touched
	if err := fw.Close(); err != nil {
		return nil, err
	}
	fwOpen = false
	fw, err = live.Open(live.Config{Dir: followerDir, Follower: true})
	if err != nil {
		return nil, fmt.Errorf("bench: REPL follower reopen after crash: %w", err)
	}
	fwOpen = true
	gcClean, err := replDirClean(followerDir)
	if err != nil {
		return nil, err
	}
	if !gcClean {
		return nil, fmt.Errorf("bench: REPL follower reopen left pull staging or temp artifacts in %s", followerDir)
	}
	if g := fw.Manifest().Generation; g != preGen {
		return nil, fmt.Errorf("bench: REPL crashed sync moved the follower generation %d -> %d", preGen, g)
	}
	fol2, err := replica.NewFollower(fw, lbase, fcfg)
	if err != nil {
		return nil, err
	}
	if advanced, err := fol2.SyncOnce(ctx); err != nil || !advanced {
		return nil, fmt.Errorf("bench: REPL re-sync after crash: advanced=%v err=%v", advanced, err)
	}
	if lg, fg := lw.Manifest().Generation, fw.Manifest().Generation; lg != fg {
		return nil, fmt.Errorf("bench: REPL after crash recovery: follower at %d, leader at %d", fg, lg)
	}
	st2 := fol2.Stats()
	t.AddRow("crash mid-pull + reopen", lw.Manifest().Generation, fw.Manifest().Generation,
		st.SegmentsPulled+st2.SegmentsPulled, st.FilesPulled+st2.FilesPulled, "recovered")

	// Phase 3: merge mid-pull. A cold follower must pull every segment
	// the manifest lists; between its manifest fetch and its pulls a
	// leader MergeAll retires a run of them. The resulting 404 must
	// trigger a replan from a fresh manifest, not a failure — and
	// certainly not an install of half-retired state.
	if err := replIngestExtra(lw, w, 8, 16); err != nil {
		return nil, err
	}
	coldDir, err := os.MkdirTemp("", "topn-repl-cold-*")
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(coldDir)
	cw, err := live.Open(live.Config{Dir: coldDir, Follower: true})
	if err != nil {
		return nil, err
	}
	defer cw.Close()
	segsBefore := lw.Stats().Segments
	merged := false
	chook := func(p string) bool {
		if p == replica.CrashManifestFetched && !merged {
			merged = true
			if err := lw.MergeAll(); err != nil {
				panic(fmt.Sprintf("bench: REPL mid-pull MergeAll: %v", err))
			}
		}
		return false
	}
	fol3, err := replica.NewFollower(cw, lbase, replica.FollowerConfig{CrashHook: chook})
	if err != nil {
		return nil, err
	}
	advanced, err := fol3.SyncOnce(ctx)
	if err != nil || !advanced {
		return nil, fmt.Errorf("bench: REPL cold sync across mid-pull merge: advanced=%v err=%v", advanced, err)
	}
	if !merged {
		return nil, fmt.Errorf("bench: REPL mid-pull merge never triggered")
	}
	if segsAfter := lw.Stats().Segments; segsAfter >= segsBefore {
		return nil, fmt.Errorf("bench: REPL mid-pull MergeAll retired nothing (%d -> %d segments), the 404 replan went unexercised",
			segsBefore, segsAfter)
	}
	if lg, cg := lw.Stats(), cw.Stats(); lg.Generation != cg.Generation || lg.Segments != cg.Segments {
		return nil, fmt.Errorf("bench: REPL after mid-pull merge: cold follower gen/segs %d/%d, leader %d/%d",
			cg.Generation, cg.Segments, lg.Generation, lg.Segments)
	}
	if err := replEquiv(lw, cw, names, n); err != nil {
		return nil, err
	}
	// The warm follower catches up to the post-merge chain too:
	// ApplyManifest drops its copies of the retired segments.
	if advanced, err := fol2.SyncOnce(ctx); err != nil || !advanced {
		return nil, fmt.Errorf("bench: REPL warm sync after merge: advanced=%v err=%v", advanced, err)
	}
	lstats, fstats := lw.Stats(), fw.Stats()
	if lstats.Generation != fstats.Generation || lstats.Segments != fstats.Segments {
		return nil, fmt.Errorf("bench: REPL after mid-pull merge: follower gen/segs %d/%d, leader %d/%d",
			fstats.Generation, fstats.Segments, lstats.Generation, lstats.Segments)
	}
	if err := replEquiv(lw, fw, names, n); err != nil {
		return nil, err
	}
	st2 = fol2.Stats()
	st3 := fol3.Stats()
	t.AddRow("merge mid-pull (404 replan)", lw.Manifest().Generation, fw.Manifest().Generation,
		st.SegmentsPulled+st2.SegmentsPulled+st3.SegmentsPulled,
		st.FilesPulled+st2.FilesPulled+st3.FilesPulled, "replanned")
	syncWall := time.Since(syncStart)

	// Phase 4: coordinator equivalence. Both replicas caught up and
	// serving HTTP; the scatter/gather answer must be exact and
	// byte-identical to the single-node answer for every query.
	fsrv, fbase, ferr, err := serveReplica(fw)
	if err != nil {
		return nil, err
	}
	fwOpen = false // the follower server owns fw now
	shutdownFollower := shutdownOnce(fsrv, ferr)
	defer shutdownFollower()
	coord, err := replica.NewCoordinator([]string{lbase, fbase}, nil)
	if err != nil {
		return nil, err
	}
	csrv, cbase, cerr, err := serveBackend(coord)
	if err != nil {
		return nil, err
	}
	shutdownCoord := shutdownOnce(csrv, cerr)
	defer shutdownCoord()

	client := &http.Client{}
	ls := lw.Searcher()
	for i := range names {
		want, err := ls.Search(names[i], n)
		if err != nil {
			return nil, fmt.Errorf("bench: REPL leader query %d: %w", i, err)
		}
		resp, status, err := postSearch(client, cbase, names[i], n)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("bench: REPL coordinator query %d: status %d err %v", i, status, err)
		}
		if !resp.Exact || resp.Degraded {
			return nil, fmt.Errorf("bench: REPL coordinator query %d not exact (exact=%v degraded=%v)", i, resp.Exact, resp.Degraded)
		}
		if !server.ResultEqual(resp, want) {
			return nil, fmt.Errorf("bench: REPL coordinator answer %d differs from the single-node answer", i)
		}
	}
	t.AddRow("coordinator scatter/gather", lw.Manifest().Generation, fw.Manifest().Generation,
		"-", "-", fmt.Sprintf("%d queries exact", len(names)))

	// Phase 5: stale follower. The leader advances; the follower does
	// not sync. The merged answer must match the fresh leader and carry
	// an explicit partial certificate — never an exact claim over stale
	// replicas.
	if err := replIngestExtra(lw, w, 16, 24); err != nil {
		return nil, err
	}
	staleWant, err := ls.Search(names[0], n)
	if err != nil {
		return nil, err
	}
	staleResp, status, err := postSearch(client, cbase, names[0], n)
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("bench: REPL stale-follower query: status %d err %v", status, err)
	}
	if staleResp.Exact || !staleResp.Degraded || staleResp.SegmentsServed != 1 || len(staleResp.SegmentsSkipped) != 1 {
		return nil, fmt.Errorf("bench: REPL stale follower not certified: exact=%v degraded=%v served=%d skipped=%v",
			staleResp.Exact, staleResp.Degraded, staleResp.SegmentsServed, staleResp.SegmentsSkipped)
	}
	if !strings.Contains(staleResp.SegmentsSkipped[0], fbase) {
		return nil, fmt.Errorf("bench: REPL stale certificate names %q, want the follower %s", staleResp.SegmentsSkipped[0], fbase)
	}
	if !server.ResultEqual(staleResp, staleWant) {
		return nil, fmt.Errorf("bench: REPL stale-follower answer differs from the fresh leader")
	}
	t.AddRow("stale follower", lw.Manifest().Generation, fw.Manifest().Generation,
		"-", "-", "degraded 1/2, results = fresh leader")

	// Phase 6: replicas going away. A downed follower degrades the
	// certificate; with every replica down the coordinator answers 503.
	shutdownFollower()
	downResp, status, err := postSearch(client, cbase, names[0], n)
	if err != nil || status != http.StatusOK {
		return nil, fmt.Errorf("bench: REPL downed-follower query: status %d err %v", status, err)
	}
	if downResp.Exact || !downResp.Degraded || downResp.SegmentsServed != 1 || !server.ResultEqual(downResp, staleWant) {
		return nil, fmt.Errorf("bench: REPL downed follower not certified: exact=%v degraded=%v served=%d",
			downResp.Exact, downResp.Degraded, downResp.SegmentsServed)
	}
	shutdownLeader()
	_, status, err = postSearch(client, cbase, names[0], n)
	if err != nil || status != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("bench: REPL all-replicas-down query: status %d err %v, want 503", status, err)
	}
	t.AddRow("replicas down", "-", "-", "-", "-", "1 down: degraded; all down: 503")
	shutdownCoord()

	totalSegs := st.SegmentsPulled + st2.SegmentsPulled + st3.SegmentsPulled
	totalFiles := st.FilesPulled + st2.FilesPulled + st3.FilesPulled
	totalBytes := st.BytesPulled + st2.BytesPulled + st3.BytesPulled

	// Deterministic contract.
	t.Metrics["batches"] = float64(batches)
	t.Metrics["docs_deleted"] = float64(docsDeleted)
	t.Metrics["queries"] = float64(len(names))
	t.Metrics["catchup_syncs"] = float64(catchupSyncs)
	t.Metrics["segments_pulled"] = float64(totalSegs)
	t.Metrics["files_pulled"] = float64(totalFiles)
	t.Metrics["bytes_pulled"] = float64(totalBytes)
	t.Metrics["crc_retries"] = float64(st.CRCRetries + st2.CRCRetries + st3.CRCRetries)
	t.Metrics["crash_recovered"] = 1 // the phase hard-fails otherwise
	t.Metrics["merge_replanned"] = 1 // likewise
	t.Metrics["coordinator_exact"] = 1
	t.Metrics["stale_degraded"] = 1
	t.Metrics["all_down_unavailable"] = 1
	t.Metrics["equiv"] = 1
	// Machine-dependent, gate-exempt by the repl_ prefix convention.
	t.Metrics["repl_sync_wall_ms"] = float64(syncWall.Microseconds()) / 1000
	t.Metrics["repl_pull_mb_per_sec"] = float64(totalBytes) / (1 << 20) / syncWall.Seconds()

	t.Notes = append(t.Notes,
		"followers pull immutable segment files (resumable Range requests, whole-file CRC-32)",
		"and commit with the same staging+rename+fsync protocol live's own commits use;",
		"the manifest ordinal is the replication clock: caught up ⇔ ordinals equal, and at equal",
		"ordinals leader and follower answers are byte-identical (same docs, scores, order);",
		"a crash mid-pull leaves staging the reopen GC reclaims; a leader merge mid-pull 404s",
		"the pull and the follower replans from a fresh manifest — neither installs partial state;",
		"the coordinator's certificate makes staleness explicit: a lagging, downed, or unreachable",
		"replica is Skipped with ShardsServed < ShardsTotal, and with no replicas it answers 503")
	return t, nil
}

// replIngestExtra re-ingests documents [lo, hi) of the workload corpus
// under fresh ids and seals — the "leader advances" step of the
// staleness phases.
func replIngestExtra(lw *live.Writer, w *Workload, lo, hi int) error {
	if hi > len(w.Col.Docs) {
		hi = len(w.Col.Docs)
	}
	for i := lo; i < hi; i++ {
		d := &w.Col.Docs[i]
		terms := make([]live.TermCount, len(d.Terms))
		for j, tf := range d.Terms {
			terms[j] = live.TermCount{Term: w.Col.Lex.Name(tf.Term), TF: tf.TF}
		}
		if _, err := lw.Add(terms); err != nil {
			return fmt.Errorf("bench: REPL ingest extra doc %d: %w", i, err)
		}
	}
	return lw.Flush()
}

// replEquiv verifies every query answers byte-identically on the leader
// and the follower.
func replEquiv(lw, fw *live.Writer, names [][]string, n int) error {
	ls, fs := lw.Searcher(), fw.Searcher()
	for i := range names {
		lr, err := ls.Search(names[i], n)
		if err != nil {
			return fmt.Errorf("bench: REPL leader query %d: %w", i, err)
		}
		fr, err := fs.Search(names[i], n)
		if err != nil {
			return fmt.Errorf("bench: REPL follower query %d: %w", i, err)
		}
		if !lr.Exact || !fr.Exact || !sameDocScores(lr.Top, fr.Top) {
			return fmt.Errorf("bench: REPL query %d: follower answer differs from leader", i)
		}
	}
	return nil
}

// sameDocScores reports exact equality of two rankings.
func sameDocScores(a, b []rank.DocScore) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// replDirClean reports whether an index directory holds no pull staging
// directories and no temp/partial files — what reopen GC must guarantee.
func replDirClean(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "pull-") ||
			strings.HasSuffix(name, ".tmp") || strings.HasSuffix(name, ".partial") {
			return false, nil
		}
	}
	return true, nil
}

// serveReplica mounts a live writer as a full replica node — /search
// backend plus the /repl/ pull subtree — on a real localhost listener.
func serveReplica(w *live.Writer) (*server.Server, string, chan error, error) {
	srv, err := server.New(server.NewLiveBackend(w), server.Config{
		MaxInFlight:    8,
		QueueDepth:     32,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, "", nil, err
	}
	srv.Mount(replica.Prefix+"/", replica.NewLeader(w, replica.LeaderConfig{}))
	return listenAndServe(srv)
}

// serveBackend mounts any backend (the coordinator) on a localhost
// listener.
func serveBackend(b server.Backend) (*server.Server, string, chan error, error) {
	srv, err := server.New(b, server.Config{
		MaxInFlight:    8,
		QueueDepth:     32,
		DefaultTimeout: 30 * time.Second,
	})
	if err != nil {
		return nil, "", nil, err
	}
	return listenAndServe(srv)
}

func listenAndServe(srv *server.Server) (*server.Server, string, chan error, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, fmt.Errorf("bench: %w", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	return srv, "http://" + l.Addr().String(), errc, nil
}

// shutdownOnce wraps a server teardown so deferred and explicit calls
// compose; shutdown failures surface as a panic because they mean the
// experiment's accounting can no longer be trusted.
func shutdownOnce(srv *server.Server, errc chan error) func() {
	done := false
	return func() {
		if done {
			return
		}
		done = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			panic(fmt.Sprintf("bench: REPL shutdown: %v", err))
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			panic(fmt.Sprintf("bench: REPL serve: %v", err))
		}
	}
}
