// Package zipf models the rank-frequency distribution of natural-language
// terms, which is the statistical foundation of the paper's Step 1.
//
// Blok's fragmentation argument rests on the observation (from the IR
// literature, notably Brown's thesis) that term occurrences follow a Zipf
// law: the frequency of the term of rank r is proportional to 1/r^s. The
// consequence exploited by the paper is that the *least frequent* terms —
// the ones carrying the most information for ranking — account for a tiny
// share of the total postings volume, so an index fragment holding only
// those terms is both small and highly useful.
//
// This package provides a sampler over a finite Zipf(-Mandelbrot)
// vocabulary, exact distribution quantities (probabilities, cumulative
// postings mass), a maximum-likelihood-style exponent fit used by the
// harness to verify that generated collections really are Zipfian, and the
// self-information ("interestingness") weights that drive fragmentation.
package zipf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Dist is a finite Zipf-Mandelbrot distribution over ranks 1..V:
//
//	P(rank = r) = (r + q)^(-s) / H(V, q, s)
//
// with exponent s > 0 and flattening parameter q >= 0 (q = 0 gives the
// classic Zipf law). Rank 1 is the most frequent term.
type Dist struct {
	V   int     // vocabulary size (number of ranks)
	S   float64 // exponent
	Q   float64 // Mandelbrot flattening parameter
	cdf []float64
}

// New constructs a Zipf-Mandelbrot distribution. It returns an error when
// the parameters do not define a valid distribution.
func New(v int, s, q float64) (*Dist, error) {
	if v <= 0 {
		return nil, fmt.Errorf("zipf: vocabulary size %d must be positive", v)
	}
	if s <= 0 {
		return nil, fmt.Errorf("zipf: exponent %v must be positive", s)
	}
	if q < 0 {
		return nil, fmt.Errorf("zipf: flattening %v must be non-negative", q)
	}
	d := &Dist{V: v, S: s, Q: q}
	d.cdf = make([]float64, v)
	var total float64
	for r := 1; r <= v; r++ {
		total += math.Pow(float64(r)+q, -s)
		d.cdf[r-1] = total
	}
	for i := range d.cdf {
		d.cdf[i] /= total
	}
	return d, nil
}

// MustNew is New but panics on error; intended for literal parameters in
// tests and examples.
func MustNew(v int, s, q float64) *Dist {
	d, err := New(v, s, q)
	if err != nil {
		panic(err)
	}
	return d
}

// Prob returns P(rank = r) for r in [1, V].
func (d *Dist) Prob(r int) float64 {
	if r < 1 || r > d.V {
		return 0
	}
	if r == 1 {
		return d.cdf[0]
	}
	return d.cdf[r-1] - d.cdf[r-2]
}

// CDF returns P(rank <= r). CDF(V) is 1 up to rounding.
func (d *Dist) CDF(r int) float64 {
	if r < 1 {
		return 0
	}
	if r > d.V {
		r = d.V
	}
	return d.cdf[r-1]
}

// Sample draws a rank in [1, V] using inverse-CDF sampling. It costs
// O(log V) per draw.
func (d *Dist) Sample(rng *xrand.RNG) int {
	u := rng.Float64()
	// Find the first index with cdf >= u.
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= d.V {
		i = d.V - 1
	}
	return i + 1
}

// HeadMassRank returns the smallest rank r such that terms of rank <= r
// carry at least frac of the total probability mass. This is the
// quantitative form of the paper's "the most frequent terms take up most
// of the storage": for s near 1 a tiny set of head ranks covers a large
// mass fraction.
func (d *Dist) HeadMassRank(frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return d.V
	}
	i := sort.SearchFloat64s(d.cdf, frac)
	if i >= d.V {
		i = d.V - 1
	}
	return i + 1
}

// TailVolumeFraction returns the fraction of total occurrence mass carried
// by terms of rank > r, i.e. the relative postings volume of the "rare
// terms" fragment when the split point is r. The paper's 5%-fragment claim
// corresponds to choosing r so that this is about 0.05.
func (d *Dist) TailVolumeFraction(r int) float64 {
	if r <= 0 {
		return 1
	}
	if r >= d.V {
		return 0
	}
	return 1 - d.cdf[r-1]
}

// SelfInformation returns -log2 P(rank = r), the information content of an
// occurrence of the rank-r term. Rare terms have high self-information;
// this is the "interestingness" the paper's fragmentation preserves in the
// small fragment.
func (d *Dist) SelfInformation(r int) float64 {
	p := d.Prob(r)
	if p <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(p)
}

// ErrInsufficientData is returned by FitExponent when fewer than two
// distinct positive frequencies are supplied.
var ErrInsufficientData = errors.New("zipf: need at least two positive frequencies to fit")

// FitExponent estimates the Zipf exponent s from observed term frequencies
// (any order; zeros are ignored) by least-squares regression of
// log(frequency) on log(rank). It returns the fitted exponent and the R²
// of the log-log fit, which the harness uses to assert the synthetic
// collection is convincingly Zipfian (R² close to 1).
func FitExponent(freqs []int) (s, r2 float64, err error) {
	f := make([]int, 0, len(freqs))
	for _, v := range freqs {
		if v > 0 {
			f = append(f, v)
		}
	}
	if len(f) < 2 {
		return 0, 0, ErrInsufficientData
	}
	sort.Sort(sort.Reverse(sort.IntSlice(f)))
	n := float64(len(f))
	var sx, sy, sxx, sxy, syy float64
	for i, v := range f {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(v))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0, ErrInsufficientData
	}
	slope := (n*sxy - sx*sy) / denom
	// slope is d log f / d log r, which is -s for a Zipf law.
	s = -slope
	// Coefficient of determination of the regression.
	ssTot := syy - sy*sy/n
	ssRes := ssTot - slope*(sxy-sx*sy/n)
	if ssTot <= 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return s, r2, nil
}

// Harmonic returns the generalized harmonic number H_{n,s} = sum_{r=1..n} r^-s.
// It is exposed for cost-model formulas that need expected postings sizes.
func Harmonic(n int, s float64) float64 {
	var h float64
	for r := 1; r <= n; r++ {
		h += math.Pow(float64(r), -s)
	}
	return h
}
