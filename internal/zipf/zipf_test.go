package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		v    int
		s, q float64
	}{
		{0, 1, 0},
		{-5, 1, 0},
		{10, 0, 0},
		{10, -1, 0},
		{10, 1, -0.5},
	}
	for _, c := range cases {
		if _, err := New(c.v, c.s, c.q); err == nil {
			t.Errorf("New(%d,%v,%v) accepted invalid parameters", c.v, c.s, c.q)
		}
	}
	if _, err := New(10, 1, 0); err != nil {
		t.Errorf("New(10,1,0) rejected valid parameters: %v", err)
	}
}

func TestProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0.7, 1.0, 1.3} {
		d := MustNew(500, s, 0)
		var sum float64
		for r := 1; r <= d.V; r++ {
			sum += d.Prob(r)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: probabilities sum to %v", s, sum)
		}
	}
}

func TestProbMonotoneDecreasing(t *testing.T) {
	d := MustNew(1000, 1.1, 2)
	for r := 2; r <= d.V; r++ {
		if d.Prob(r) > d.Prob(r-1)+1e-15 {
			t.Fatalf("Prob not decreasing at rank %d: %v > %v", r, d.Prob(r), d.Prob(r-1))
		}
	}
}

func TestProbOutOfRange(t *testing.T) {
	d := MustNew(10, 1, 0)
	if d.Prob(0) != 0 || d.Prob(11) != 0 || d.Prob(-3) != 0 {
		t.Error("Prob outside [1,V] must be 0")
	}
}

func TestCDFBoundaries(t *testing.T) {
	d := MustNew(100, 1, 0)
	if d.CDF(0) != 0 {
		t.Errorf("CDF(0) = %v, want 0", d.CDF(0))
	}
	if math.Abs(d.CDF(100)-1) > 1e-12 {
		t.Errorf("CDF(V) = %v, want 1", d.CDF(100))
	}
	if math.Abs(d.CDF(1000)-1) > 1e-12 {
		t.Errorf("CDF beyond V = %v, want 1", d.CDF(1000))
	}
}

func TestCDFConsistentWithProb(t *testing.T) {
	d := MustNew(200, 1.2, 1)
	if err := quick.Check(func(raw uint8) bool {
		r := int(raw)%d.V + 1
		return math.Abs(d.CDF(r)-d.CDF(r-1)-d.Prob(r)) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	d := MustNew(50, 1.0, 0)
	rng := xrand.New(1)
	const draws = 200000
	counts := make([]int, d.V+1)
	for i := 0; i < draws; i++ {
		r := d.Sample(rng)
		if r < 1 || r > d.V {
			t.Fatalf("sample %d out of range", r)
		}
		counts[r]++
	}
	// Check the head ranks, where counts are large enough for a tight test.
	for r := 1; r <= 5; r++ {
		got := float64(counts[r]) / draws
		want := d.Prob(r)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v vs true %v", r, got, want)
		}
	}
}

func TestHeadMassRank(t *testing.T) {
	d := MustNew(10000, 1.0, 0)
	r := d.HeadMassRank(0.95)
	if r <= 0 || r > d.V {
		t.Fatalf("HeadMassRank out of range: %d", r)
	}
	if d.CDF(r) < 0.95 {
		t.Errorf("CDF(HeadMassRank(0.95)) = %v < 0.95", d.CDF(r))
	}
	if r > 1 && d.CDF(r-1) >= 0.95 {
		t.Errorf("HeadMassRank not minimal: CDF(%d) = %v already >= 0.95", r-1, d.CDF(r-1))
	}
	if d.HeadMassRank(0) != 0 {
		t.Error("HeadMassRank(0) should be 0")
	}
	if d.HeadMassRank(1) != d.V {
		t.Error("HeadMassRank(1) should be V")
	}
}

// TestPaperShape verifies the quantitative premise of the paper's Step 1:
// the 95% rarest terms (the "most interesting" ones) carry only a small
// fraction (~5%) of the total postings volume, so a fragment holding them
// is ~5% of the unfragmented size. This holds for Zipf exponents around
// 1.25-1.3, which is what empirical document-frequency distributions show
// and what the collection generator uses as its default.
func TestPaperShape(t *testing.T) {
	d := MustNew(100000, 1.3, 0)
	// Head = the 5% most frequent terms; tail = the 95% rarest.
	headRanks := d.V / 20
	tail := d.TailVolumeFraction(headRanks)
	if tail > 0.055 {
		t.Errorf("95%% rarest terms carry %.1f%% of volume, want about 5%%", 100*tail)
	}
	// The effect must strengthen with the exponent: steeper law, lighter tail.
	flatter := MustNew(100000, 1.0, 0)
	if flatter.TailVolumeFraction(headRanks) <= tail {
		t.Error("tail volume should shrink as the Zipf exponent grows")
	}
}

func TestTailVolumeFraction(t *testing.T) {
	d := MustNew(100, 1, 0)
	if got := d.TailVolumeFraction(0); got != 1 {
		t.Errorf("TailVolumeFraction(0) = %v, want 1", got)
	}
	if got := d.TailVolumeFraction(100); got != 0 {
		t.Errorf("TailVolumeFraction(V) = %v, want 0", got)
	}
	prev := 1.0
	for r := 1; r < 100; r++ {
		cur := d.TailVolumeFraction(r)
		if cur > prev {
			t.Fatalf("TailVolumeFraction increased at %d", r)
		}
		prev = cur
	}
}

func TestSelfInformationIncreasesWithRank(t *testing.T) {
	d := MustNew(1000, 1.1, 0)
	if d.SelfInformation(1) >= d.SelfInformation(1000) {
		t.Error("rare terms must carry more self-information than frequent ones")
	}
	if !math.IsInf(d.SelfInformation(0), 1) {
		t.Error("out-of-range rank should have infinite self-information")
	}
}

func TestFitExponentRecoversParameter(t *testing.T) {
	for _, trueS := range []float64{0.8, 1.0, 1.2} {
		d := MustNew(2000, trueS, 0)
		// Build exact expected frequencies for a large synthetic corpus.
		const total = 10_000_000
		freqs := make([]int, d.V)
		for r := 1; r <= d.V; r++ {
			freqs[r-1] = int(d.Prob(r) * total)
		}
		s, r2, err := FitExponent(freqs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-trueS) > 0.1 {
			t.Errorf("true s=%v: fitted %v", trueS, s)
		}
		if r2 < 0.99 {
			t.Errorf("true s=%v: R² = %v, want near 1", trueS, r2)
		}
	}
}

func TestFitExponentErrors(t *testing.T) {
	if _, _, err := FitExponent(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := FitExponent([]int{5}); err == nil {
		t.Error("single frequency should error")
	}
	if _, _, err := FitExponent([]int{0, 0, 3}); err == nil {
		t.Error("single positive frequency should error")
	}
	if _, _, err := FitExponent([]int{3, 4}); err != nil {
		t.Errorf("two positive frequencies should fit: %v", err)
	}
}

func TestHarmonic(t *testing.T) {
	if got := Harmonic(1, 1); got != 1 {
		t.Errorf("H(1,1) = %v", got)
	}
	if got, want := Harmonic(4, 1), 1+0.5+1.0/3+0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("H(4,1) = %v, want %v", got, want)
	}
	if got, want := Harmonic(3, 2), 1+0.25+1.0/9; math.Abs(got-want) > 1e-12 {
		t.Errorf("H(3,2) = %v, want %v", got, want)
	}
}

func BenchmarkSample(b *testing.B) {
	d := MustNew(100000, 1.05, 0)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
