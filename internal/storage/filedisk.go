package storage

import (
	"fmt"
	"os"
	"sync"
)

// FileDisk serves a persisted segment file as a read-only page device:
// page id k (1-based, like Disk's ids) is the byte range
// [(k-1)*PageSize, k*PageSize) of the file. Layered under a Pool it
// turns the pool into the working-set governor of a disk-resident index:
// every page the index touches is either a pool hit or one counted
// physical read against the file.
//
// A FileDisk is safe for concurrent use. It never writes: allocation and
// write attempts fail with ErrReadOnlyDevice, so a pool over a FileDisk
// can only cache, never mutate, the segment.
type FileDisk struct {
	mu    sync.Mutex
	f     *os.File
	pages int
	stats Stats
}

// OpenFileDisk opens path as a page device. The file must be a non-empty
// whole number of pages — segment writers pad every section to a page
// boundary, so a remainder means truncation or a foreign file.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat segment: %w", err)
	}
	if st.Size() == 0 || st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: segment %s has size %d, not a positive multiple of the %d-byte page size (truncated or not a segment)",
			path, st.Size(), PageSize)
	}
	return &FileDisk{f: f, pages: int(st.Size() / PageSize)}, nil
}

// NumPages reports how many pages the backing file holds.
func (d *FileDisk) NumPages() int { return d.pages }

// Stats returns a snapshot of the access counters.
func (d *FileDisk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the access counters so an experiment can measure a
// query window in isolation.
func (d *FileDisk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Close releases the underlying file. The owning pool must be done with
// the device first.
func (d *FileDisk) Close() error { return d.f.Close() }

func (d *FileDisk) readPage(id PageID, buf *[PageSize]byte) error {
	if id == InvalidPage || int(id) > d.pages {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	if _, err := d.f.ReadAt(buf[:], int64(id-1)*PageSize); err != nil {
		// An OS-level read error on an immutable, size-checked segment
		// file is classified permanent: retrying in-process rarely helps,
		// and the live layer's re-verify loop is the recovery path that
		// returns the segment to service once the media heals.
		return &ReadFault{Page: id, Transient: false, Err: fmt.Errorf("storage: segment page %d: %w", id, err)}
	}
	d.mu.Lock()
	d.stats.PhysicalReads++
	d.mu.Unlock()
	return nil
}

func (d *FileDisk) writePage(PageID, *[PageSize]byte) error { return ErrReadOnlyDevice }

func (d *FileDisk) allocatePage() (PageID, error) { return InvalidPage, ErrReadOnlyDevice }

func (d *FileDisk) noteLogicalRead() {
	d.mu.Lock()
	d.stats.LogicalReads++
	d.mu.Unlock()
}
