package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile persists data at path with the full crash-safe
// sequence every sidecar and manifest in this repository relies on:
// write to a temp file, fsync it, rename over the destination, and
// fsync the parent directory so the rename itself survives power loss.
// After it returns nil the content is durable; a crash at any earlier
// point leaves either the old file or a stray .tmp, never a torn
// destination. The shared helper exists so the crash behavior of every
// atomically-written file stays identical by construction.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}
