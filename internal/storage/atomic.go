package storage

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

// cleanupLogf reports best-effort cleanup failures that must not mask
// the primary error but should not vanish silently either (a stray
// .tmp is operator-visible debris). Replaceable in tests.
var cleanupLogf = log.Printf

// removeTemp best-effort deletes a stray temp file after a failed
// atomic write, logging (not propagating) failure: the caller is
// already returning the real error.
func removeTemp(tmp string) {
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		cleanupLogf("storage: removing stray temp %s: %v", tmp, err)
	}
}

// AtomicWriteFile persists data at path with the full crash-safe
// sequence every sidecar and manifest in this repository relies on:
// write to a temp file, fsync it, rename over the destination, and
// fsync the parent directory so the rename itself survives power loss.
// After it returns nil the content is durable; a crash at any earlier
// point leaves either the old file or a stray .tmp, never a torn
// destination. The shared helper exists so the crash behavior of every
// atomically-written file stays identical by construction.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		removeTemp(tmp)
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		removeTemp(tmp)
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: %w", path, err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}
