// Package storage provides a simulated page-based storage substrate with a
// buffer pool and exact I/O accounting.
//
// The original system (Moa on the Monet binary-relation kernel) measured
// its optimizations in real disk time on the TREC FT collection. We do not
// have that testbed, so this package plays Monet's role: data structures
// above it (postings lists, columns) allocate fixed-size pages from a
// simulated disk, access goes through a buffer pool, and every physical
// read and write is counted. Experiments report those deterministic
// counters alongside wall-clock time, which makes the cost model (Step 3
// of the paper) testable: its predictions are compared against counters
// that do not depend on the machine the reproduction runs on.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes. 8 KiB matches the unit used
// by contemporary systems of the paper's era and keeps postings-per-page
// arithmetic simple.
const PageSize = 8192

// PageID identifies a page on the simulated disk. Valid IDs are assigned
// by Disk.Allocate starting from 1; 0 is the invalid page.
type PageID uint32

// InvalidPage is the zero PageID, never returned by Allocate.
const InvalidPage PageID = 0

// Page is a fixed-size block of bytes plus bookkeeping. Callers obtain
// pages through a Pool and must not retain the data slice past Unpin.
type Page struct {
	id    PageID
	data  [PageSize]byte
	dirty atomic.Bool // atomic: pinners MarkDirty outside the pool lock
	pins  int
}

// ID returns the page's identifier.
func (p *Page) ID() PageID { return p.id }

// Data returns the page's byte payload. Mutating it requires calling
// MarkDirty so the pool writes the page back on eviction. The pool
// serializes page loads and eviction against pins, but concurrent
// pinners of the same page coordinate their own reads vs writes — the
// usual buffer-manager contract (a page latch, or write-once-then-read
// usage as the index builders do).
func (p *Page) Data() *[PageSize]byte { return &p.data }

// MarkDirty records that the page's contents changed and must be flushed.
// It may be called while the page is pinned, concurrently with pool
// maintenance, hence the atomic flag.
func (p *Page) MarkDirty() { p.dirty.Store(true) }

// Stats aggregates the physical access counters of a Disk. All experiment
// cost reporting is derived from these numbers.
type Stats struct {
	PhysicalReads  int64 // pages read from the simulated disk
	PhysicalWrites int64 // pages written to the simulated disk
	LogicalReads   int64 // page requests satisfied from the buffer pool
	Allocations    int64 // pages ever allocated
}

// Disk is a simulated disk: a growable array of pages with access
// counters. It is safe for concurrent use.
type Disk struct {
	mu        sync.Mutex
	pages     map[PageID][]byte
	next      PageID
	stats     Stats
	failAfter int64 // remaining successful reads before injection; -1 = off
}

// NewDisk returns an empty simulated disk.
func NewDisk() *Disk {
	return &Disk{pages: make(map[PageID][]byte), next: 1, failAfter: -1}
}

// ErrInjected is the failure FailReadsAfter injects; tests use it to
// verify that read errors propagate through every layer instead of
// panicking or being swallowed.
var ErrInjected = errors.New("storage: injected read failure")

// FailReadsAfter arms failure injection: the next n physical reads
// succeed, every one after that returns ErrInjected. A negative n disarms.
func (d *Disk) FailReadsAfter(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failAfter = n
}

// Allocate reserves a new zeroed page and returns its ID.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	d.pages[id] = make([]byte, PageSize)
	d.stats.Allocations++
	return id
}

// ErrNoSuchPage is returned when reading or writing an unallocated page.
var ErrNoSuchPage = errors.New("storage: no such page")

func (d *Disk) read(id PageID, buf *[PageSize]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter == 0 {
		return fmt.Errorf("%w: page %d", ErrInjected, id)
	}
	if d.failAfter > 0 {
		d.failAfter--
	}
	src, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	copy(buf[:], src)
	d.stats.PhysicalReads++
	return nil
}

func (d *Disk) write(id PageID, buf *[PageSize]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dst, ok := d.pages[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchPage, id)
	}
	copy(dst, buf[:])
	d.stats.PhysicalWrites++
	return nil
}

// Stats returns a snapshot of the access counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the access counters (allocation count included) so an
// experiment can measure a single query in isolation.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// NumPages reports how many pages have been allocated.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}
