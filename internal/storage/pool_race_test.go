package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/xrand"
)

// TestPoolRaceStress hammers one Pool from many goroutines — Fetch/Unpin
// of a shared hot set, MarkDirty while pinned, NewPage allocation, and
// periodic FlushAll — with the capacity low enough that eviction runs
// constantly. Run under -race (CI does) it is the pool's concurrency
// certificate; in any mode it asserts the HitRate accounting invariant:
// every Fetch is exactly one hit or one miss.
func TestPoolRaceStress(t *testing.T) {
	const (
		goroutines = 8
		pages      = 64
		capacity   = goroutines + 4 // << pages: constant eviction pressure
		opsPerG    = 2000
	)
	d := NewDisk()
	p, err := NewPool(d, capacity)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]PageID, pages)
	for i := range ids {
		ids[i] = d.Allocate()
	}

	var fetches int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < opsPerG; i++ {
				switch rng.Intn(10) {
				case 0: // allocate a fresh page, scribble, release
					pg, err := p.NewPage()
					if err != nil {
						t.Errorf("NewPage: %v", err)
						return
					}
					pg.Data()[0] = byte(seed)
					if err := p.Unpin(pg, true); err != nil {
						t.Errorf("Unpin new page: %v", err)
						return
					}
				case 1: // flush concurrently with pinners
					if err := p.FlushAll(); err != nil {
						t.Errorf("FlushAll: %v", err)
						return
					}
				default: // fetch a shared page, read it, sometimes dirty it
					id := ids[rng.Intn(len(ids))]
					atomic.AddInt64(&fetches, 1)
					pg, err := p.Fetch(id)
					if err != nil {
						t.Errorf("Fetch(%d): %v", id, err)
						return
					}
					_ = pg.Data()[1]
					// Shared pages are only read: concurrent pinners
					// coordinating writes is the caller's job (Page.Data
					// contract), so writing here would be a test-induced
					// race, not a pool one. The dirty-flag path itself is
					// still exercised concurrently.
					dirty := rng.Intn(4) == 0
					if dirty {
						pg.MarkDirty()
					}
					if err := p.Unpin(pg, dirty); err != nil {
						t.Errorf("Unpin(%d): %v", id, err)
						return
					}
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()

	hits, misses := p.Counts()
	if got, want := hits+misses, atomic.LoadInt64(&fetches); got != want {
		t.Errorf("hits+misses = %d, want %d (one per Fetch)", got, want)
	}
	if hr := p.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("HitRate = %v out of [0,1]", hr)
	}
	if err := p.DropAll(); err != nil {
		t.Fatalf("DropAll after stress: %v", err)
	}
}

// TestPoolAllPinned verifies the ErrPoolFull path under pressure: with
// every frame pinned, both Fetch of an uncached page and NewPage must
// fail with ErrPoolFull, and the pool must recover once pins drop.
func TestPoolAllPinned(t *testing.T) {
	d := NewDisk()
	p, err := NewPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	extra := d.Allocate()
	a, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(extra); !errors.Is(err, ErrPoolFull) {
		t.Errorf("Fetch with all frames pinned: err = %v, want ErrPoolFull", err)
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Errorf("NewPage with all frames pinned: err = %v, want ErrPoolFull", err)
	}
	if err := p.Unpin(a, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(b, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fetch(extra); err != nil {
		t.Errorf("Fetch after unpinning: %v", err)
	}
}
