package storage

import (
	"testing"
	"time"
)

// TestPoolReadLatency: every physical (miss) read is counted and timed
// on the injectable clock; hits are free; ResetCounters zeroes both.
func TestPoolReadLatency(t *testing.T) {
	d, p := newPool(t, 4)
	// Fake clock: every call advances 1ms, so each timed read spans
	// exactly 1ms (one call at start, one at end → 2ms-1ms... the delta
	// between the two calls is 1ms).
	var ticks int64
	p.SetReadClock(func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	})

	var ids []PageID
	for i := 0; i < 3; i++ {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, pg.ID())
		if err := p.Unpin(pg, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	if n, total := p.ReadLatency(); n != 0 || total != 0 {
		t.Fatalf("fresh pool reports %d reads / %v", n, total)
	}

	for _, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Unpin(pg, false); err != nil {
			t.Fatal(err)
		}
	}
	n, total := p.ReadLatency()
	if n != 3 {
		t.Fatalf("3 miss reads, counted %d", n)
	}
	if total != 3*time.Millisecond {
		t.Fatalf("total read latency %v, want 3ms on the fake clock", total)
	}

	// Hits do not touch the device and must not move the counters.
	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(pg, false); err != nil {
		t.Fatal(err)
	}
	if n2, total2 := p.ReadLatency(); n2 != n || total2 != total {
		t.Fatalf("hit moved read latency: %d/%v -> %d/%v", n, total, n2, total2)
	}

	p.ResetCounters()
	if n, total := p.ReadLatency(); n != 0 || total != 0 {
		t.Fatalf("ResetCounters left %d reads / %v", n, total)
	}
	_ = d
}
