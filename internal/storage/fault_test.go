package storage

import (
	"errors"
	"testing"
	"time"
)

// noSleep is the injectable backoff sleeper for retry tests: it records
// the delays instead of sleeping.
type noSleep struct{ delays []time.Duration }

func (s *noSleep) sleep(d time.Duration) { s.delays = append(s.delays, d) }

func testPolicy(s *noSleep) RetryPolicy {
	return RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Sleep: s.sleep}
}

// seedDisk builds a Disk with n allocated pages of distinct content.
func seedDisk(t *testing.T, n int) *Disk {
	t.Helper()
	d := NewDisk()
	var buf [PageSize]byte
	for i := 0; i < n; i++ {
		id := d.Allocate()
		buf[0] = byte(i + 1)
		if err := d.write(id, &buf); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestFaultDeviceScriptedPage(t *testing.T) {
	d := seedDisk(t, 2)
	fd := NewFaultDevice(d, 1)
	fd.FailPage(1, 2)

	var buf [PageSize]byte
	for i := 0; i < 2; i++ {
		err := fd.readPage(1, &buf)
		if !IsTransient(err) {
			t.Fatalf("scripted read %d: err = %v, want transient fault", i, err)
		}
	}
	if err := fd.readPage(1, &buf); err != nil {
		t.Fatalf("script exhausted, read should succeed: %v", err)
	}
	if buf[0] != 1 {
		t.Fatalf("page content %d, want 1", buf[0])
	}

	fd.FailPage(2, -1)
	err := fd.readPage(2, &buf)
	if !IsReadFault(err) || IsTransient(err) {
		t.Fatalf("permanent page: err = %v, want permanent fault", err)
	}
	fd.Clear()
	if err := fd.readPage(2, &buf); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
	st := fd.Stats()
	if st.InjectedErrors != 3 {
		t.Fatalf("InjectedErrors = %d, want 3", st.InjectedErrors)
	}
}

func TestFaultDeviceScheduleWindow(t *testing.T) {
	d := seedDisk(t, 1)
	fd := NewFaultDevice(d, 1)
	var buf [PageSize]byte
	if err := fd.readPage(1, &buf); err != nil { // ordinal 0
		t.Fatal(err)
	}
	fd.FailReads(1, 2) // ordinals 1 and 2 fail
	for i := 0; i < 2; i++ {
		if err := fd.readPage(1, &buf); !IsTransient(err) {
			t.Fatalf("windowed read %d: err = %v, want transient fault", i, err)
		}
	}
	if err := fd.readPage(1, &buf); err != nil { // ordinal 3
		t.Fatalf("past the window: %v", err)
	}
}

func TestFaultDeviceCorruptionDetectedByVerifiedDevice(t *testing.T) {
	d := seedDisk(t, 4)
	fd := NewFaultDevice(d, 7)
	vd := NewVerifiedDevice(fd, 4)
	if err := vd.Prime(); err != nil {
		t.Fatal(err)
	}
	fd.SetCorruptProb(1) // every read returns a flipped bit
	var buf [PageSize]byte
	err := vd.readPage(1, &buf)
	if !errors.Is(err, ErrCorruptPage) || !IsTransient(err) {
		t.Fatalf("err = %v, want transient ErrCorruptPage fault", err)
	}
	fd.SetCorruptProb(0)
	if err := vd.readPage(1, &buf); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	if err := vd.Verify(); err != nil {
		t.Fatalf("Verify on clean device: %v", err)
	}
	fd.SetCorruptProb(1)
	if err := vd.Verify(); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("Verify under corruption: err = %v, want ErrCorruptPage", err)
	}
}

func TestPoolRetryAbsorbsTransientFaults(t *testing.T) {
	d := seedDisk(t, 1)
	fd := NewFaultDevice(d, 1)
	p, err := NewPool(fd, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := &noSleep{}
	p.SetRetryPolicy(testPolicy(s))

	fd.FailPage(1, 2) // two transient failures, then clean
	pg, err := p.Fetch(1)
	if err != nil {
		t.Fatalf("retry should absorb the transient faults: %v", err)
	}
	p.Unpin(pg, false)
	retries, faults := p.FaultCounts()
	if retries != 2 || faults != 0 {
		t.Fatalf("retries, faults = %d, %d; want 2, 0", retries, faults)
	}
	// Exponential backoff: 1ms then 2ms.
	if len(s.delays) != 2 || s.delays[0] != time.Millisecond || s.delays[1] != 2*time.Millisecond {
		t.Fatalf("backoff delays = %v, want [1ms 2ms]", s.delays)
	}
	hits, misses := p.Counts()
	if hits != 0 || misses != 1 {
		t.Fatalf("hits, misses = %d, %d; want 0, 1 (a retried fetch is one miss)", hits, misses)
	}
}

func TestPoolRetryBudgetExhausted(t *testing.T) {
	d := seedDisk(t, 1)
	fd := NewFaultDevice(d, 1)
	p, err := NewPool(fd, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := &noSleep{}
	p.SetRetryPolicy(testPolicy(s))

	fd.FailPage(1, 10) // more than the budget
	if _, err := p.Fetch(1); !IsTransient(err) {
		t.Fatalf("err = %v, want the transient fault to escape after the budget", err)
	}
	retries, faults := p.FaultCounts()
	if retries != 3 || faults != 1 {
		t.Fatalf("retries, faults = %d, %d; want 3, 1", retries, faults)
	}
	// Backoff caps at MaxDelay: 1ms, 2ms, 4ms.
	if len(s.delays) != 3 || s.delays[2] != 4*time.Millisecond {
		t.Fatalf("backoff delays = %v, want cap at 4ms", s.delays)
	}
}

func TestPoolPermanentFaultNotRetried(t *testing.T) {
	d := seedDisk(t, 1)
	fd := NewFaultDevice(d, 1)
	p, err := NewPool(fd, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := &noSleep{}
	p.SetRetryPolicy(testPolicy(s))
	fd.FailPage(1, -1)
	if _, err := p.Fetch(1); !IsReadFault(err) || IsTransient(err) {
		t.Fatalf("err = %v, want a permanent fault", err)
	}
	if len(s.delays) != 0 {
		t.Fatalf("permanent fault must not back off, slept %v", s.delays)
	}
	retries, faults := p.FaultCounts()
	if retries != 0 || faults != 1 {
		t.Fatalf("retries, faults = %d, %d; want 0, 1", retries, faults)
	}
}

// TestRepeatedFailingFetchesLeakNothing is the mid-fetch bookkeeping
// proof: a failing fetch must return its frame to the free list (no
// leaked capacity) and keep every counter consistent, no matter how
// often it is repeated.
func TestRepeatedFailingFetchesLeakNothing(t *testing.T) {
	d := seedDisk(t, 2)
	fd := NewFaultDevice(d, 1)
	p, err := NewPool(fd, 2) // capacity 2: a single leaked frame shows up fast
	if err != nil {
		t.Fatal(err)
	}
	s := &noSleep{}
	p.SetRetryPolicy(testPolicy(s))

	fd.FailPage(1, -1)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		if _, err := p.Fetch(1); err == nil {
			t.Fatalf("round %d: fetch should fail", i)
		}
	}
	hits, misses := p.Counts()
	if hits != 0 || misses != rounds {
		t.Fatalf("hits, misses = %d, %d; want 0, %d (each failed fetch is one miss)", hits, misses, rounds)
	}
	retries, faults := p.FaultCounts()
	if retries != 0 || faults != rounds {
		t.Fatalf("retries, faults = %d, %d; want 0, %d", retries, faults, rounds)
	}

	// Full capacity must still be available: pin capacity pages at once.
	fd.Clear()
	a, err := p.Fetch(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Fetch(2)
	if err != nil {
		t.Fatal(err)
	}
	// A third pinned page must fail with ErrPoolFull — proving the failed
	// fetches left no phantom frame eating capacity either way.
	if _, err := p.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull with capacity fully pinned", err)
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
	if err := p.DropAll(); err != nil {
		t.Fatalf("DropAll after the failure storm: %v", err)
	}
}

func TestFaultDeviceLatency(t *testing.T) {
	d := seedDisk(t, 1)
	fd := NewFaultDevice(d, 1)
	var slept []time.Duration
	fd.sleep = func(dur time.Duration) { slept = append(slept, dur) }
	fd.SetLatency(3 * time.Millisecond)
	var buf [PageSize]byte
	if err := fd.readPage(1, &buf); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 3*time.Millisecond {
		t.Fatalf("slept %v, want [3ms]", slept)
	}
	if fd.Stats().DelayedReads != 1 {
		t.Fatalf("DelayedReads = %d, want 1", fd.Stats().DelayedReads)
	}
}

func TestFaultDeviceFailAll(t *testing.T) {
	d := seedDisk(t, 2)
	fd := NewFaultDevice(d, 1)
	var buf [PageSize]byte
	fd.FailAll(true)
	for id := PageID(1); id <= 2; id++ {
		if err := fd.readPage(id, &buf); !IsReadFault(err) || IsTransient(err) {
			t.Fatalf("page %d: err = %v, want permanent fault", id, err)
		}
	}
	fd.Clear()
	if err := fd.readPage(1, &buf); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}
