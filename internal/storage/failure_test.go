package storage

import (
	"errors"
	"testing"
)

func TestFailReadsAfter(t *testing.T) {
	d := NewDisk()
	p, err := NewPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.NewPage()
	id := pg.ID()
	p.Unpin(pg, true)
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}

	d.FailReadsAfter(1)
	// First read succeeds.
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("first read should succeed: %v", err)
	}
	p.Unpin(g, false)
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Second read fails with the injected error.
	if _, err := p.Fetch(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Disarm: reads work again.
	d.FailReadsAfter(-1)
	g, err = p.Fetch(id)
	if err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	p.Unpin(g, false)
}

func TestFailedFetchLeavesPoolConsistent(t *testing.T) {
	d := NewDisk()
	p, err := NewPool(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	pg, _ := p.NewPage()
	id := pg.ID()
	p.Unpin(pg, true)
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	d.FailReadsAfter(0)
	if _, err := p.Fetch(id); err == nil {
		t.Fatal("expected failure")
	}
	d.FailReadsAfter(-1)
	// The failed fetch must not have leaked a pinned frame: the pool can
	// still hold two pages.
	a, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(a, false)
	p.Unpin(b, false)
}

func TestFileReadFailurePropagates(t *testing.T) {
	d := NewDisk()
	p, err := NewPool(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFile(p)
	data := make([]byte, 3*PageSize)
	if _, err := f.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	d.FailReadsAfter(1)
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
