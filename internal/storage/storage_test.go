package storage

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newPool(t *testing.T, capacity int) (*Disk, *Pool) {
	t.Helper()
	d := NewDisk()
	p, err := NewPool(d, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestNewPoolValidation(t *testing.T) {
	d := NewDisk()
	if _, err := NewPool(d, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewPool(d, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestAllocateAndFetch(t *testing.T) {
	d, p := newPool(t, 4)
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID()
	if id == InvalidPage {
		t.Fatal("NewPage returned invalid ID")
	}
	copy(pg.Data()[:], "hello")
	if err := p.Unpin(pg, true); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	pg2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(pg2.Data()[:5]); got != "hello" {
		t.Errorf("page contents = %q, want hello", got)
	}
	if err := p.Unpin(pg2, false); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.PhysicalReads != 1 {
		t.Errorf("physical reads = %d, want 1", s.PhysicalReads)
	}
}

func TestFetchUnknownPage(t *testing.T) {
	_, p := newPool(t, 2)
	if _, err := p.Fetch(999); !errors.Is(err, ErrNoSuchPage) {
		t.Errorf("err = %v, want ErrNoSuchPage", err)
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	d, p := newPool(t, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		pg, err := p.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0] = byte('a' + i)
		ids = append(ids, pg.ID())
		if err := p.Unpin(pg, true); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2, three pages created: the first must have been evicted
	// and persisted. Re-fetch and verify contents survived.
	for i, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		if pg.Data()[0] != byte('a'+i) {
			t.Errorf("page %d: got %c, want %c", id, pg.Data()[0], 'a'+i)
		}
		if err := p.Unpin(pg, false); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.PhysicalWrites == 0 {
		t.Error("expected at least one eviction write")
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	_, p := newPool(t, 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	// Both frames pinned: next allocation must fail.
	if _, err := p.NewPage(); !errors.Is(err, ErrPoolFull) {
		t.Errorf("err = %v, want ErrPoolFull", err)
	}
	if err := p.Unpin(a, false); err != nil {
		t.Fatal(err)
	}
	// One frame free now.
	c, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(b, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(c, false); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinErrors(t *testing.T) {
	_, p := newPool(t, 2)
	pg, _ := p.NewPage()
	if err := p.Unpin(pg, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Unpin(pg, false); err == nil {
		t.Error("double unpin accepted")
	}
	bogus := &Page{id: 12345}
	if err := p.Unpin(bogus, false); err == nil {
		t.Error("unpin of unknown page accepted")
	}
}

func TestLRUOrder(t *testing.T) {
	d, p := newPool(t, 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	p.Unpin(a, true)
	p.Unpin(b, true)
	// Touch a so b becomes LRU.
	pg, _ := p.Fetch(a.ID())
	p.Unpin(pg, false)
	// New page should evict b, not a.
	c, _ := p.NewPage()
	p.Unpin(c, true)
	d.ResetStats()
	pg, err := p.Fetch(a.ID())
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(pg, false)
	if s := d.Stats(); s.PhysicalReads != 0 {
		t.Errorf("fetching recently used page caused %d physical reads, want 0 (still cached)", s.PhysicalReads)
	}
}

func TestHitRate(t *testing.T) {
	_, p := newPool(t, 4)
	pg, _ := p.NewPage()
	id := pg.ID()
	p.Unpin(pg, true)
	for i := 0; i < 9; i++ {
		g, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(g, false)
	}
	if hr := p.HitRate(); hr != 1.0 {
		t.Errorf("hit rate = %v, want 1.0 (page never left pool)", hr)
	}
	p.ResetCounters()
	if hr := p.HitRate(); hr != 0 {
		t.Errorf("hit rate after reset = %v, want 0", hr)
	}
}

func TestDropAllRefusesPinned(t *testing.T) {
	_, p := newPool(t, 2)
	pg, _ := p.NewPage()
	if err := p.DropAll(); err == nil {
		t.Error("DropAll succeeded with a pinned page")
	}
	p.Unpin(pg, false)
	if err := p.DropAll(); err != nil {
		t.Error(err)
	}
}

func TestFileAppendRead(t *testing.T) {
	_, p := newPool(t, 8)
	f := NewFile(p)
	msg := []byte("the quick brown fox")
	off, err := f.Append(msg)
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Errorf("first append offset = %d, want 0", off)
	}
	buf := make([]byte, len(msg))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("read %q, want %q", buf, msg)
	}
}

func TestFileCrossesPageBoundaries(t *testing.T) {
	_, p := newPool(t, 16)
	f := NewFile(p)
	rng := xrand.New(99)
	data := make([]byte, 3*PageSize+137)
	for i := range data {
		data[i] = byte(rng.Uint64())
	}
	// Append in odd-sized chunks to exercise page-boundary splits.
	for i := 0; i < len(data); {
		n := 1000 + rng.Intn(2000)
		if i+n > len(data) {
			n = len(data) - i
		}
		if _, err := f.Append(data[i : i+n]); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d, want %d", f.Size(), len(data))
	}
	if want := (len(data) + PageSize - 1) / PageSize; f.NumPages() != want {
		t.Fatalf("pages = %d, want %d", f.NumPages(), want)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip across page boundaries corrupted data")
	}
	// Random interior reads.
	for trial := 0; trial < 50; trial++ {
		off := rng.Intn(len(data) - 1)
		n := 1 + rng.Intn(len(data)-off)
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, int64(off)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data[off:off+n]) {
			t.Fatalf("interior read [%d:%d] mismatch", off, off+n)
		}
	}
}

func TestFileReadPastEOF(t *testing.T) {
	_, p := newPool(t, 4)
	f := NewFile(p)
	f.Append([]byte("abc"))
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestFileReader(t *testing.T) {
	_, p := newPool(t, 8)
	f := NewFile(p)
	f.Append([]byte("0123456789"))
	r := f.Reader(2, 5)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "23456" {
		t.Errorf("Reader(2,5) = %q, want 23456", got)
	}
	r = f.Reader(5, -1)
	got, _ = io.ReadAll(r)
	if string(got) != "56789" {
		t.Errorf("Reader(5,-1) = %q, want 56789", got)
	}
}

// TestFileRoundTripProperty: any sequence of appended chunks reads back
// identically, regardless of chunk sizes relative to the page size.
func TestFileRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(func(chunks [][]byte) bool {
		_, pool := func() (*Disk, *Pool) {
			d := NewDisk()
			p, _ := NewPool(d, 64)
			return d, p
		}()
		f := NewFile(pool)
		var all []byte
		for _, c := range chunks {
			if len(c) > 20000 {
				c = c[:20000]
			}
			off, err := f.Append(c)
			if err != nil {
				return false
			}
			if off != int64(len(all)) {
				return false
			}
			all = append(all, c...)
		}
		if len(all) == 0 {
			return f.Size() == 0
		}
		got := make([]byte, len(all))
		if _, err := f.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, all)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	d, p := newPool(t, 2)
	pg, _ := p.NewPage()
	id := pg.ID()
	p.Unpin(pg, true)
	d.ResetStats()
	g, _ := p.Fetch(id) // cached: logical only
	p.Unpin(g, false)
	s := d.Stats()
	if s.LogicalReads != 1 {
		t.Errorf("logical reads = %d, want 1", s.LogicalReads)
	}
	if s.PhysicalReads != 0 {
		t.Errorf("physical reads = %d, want 0", s.PhysicalReads)
	}
	if err := p.DropAll(); err != nil {
		t.Fatal(err)
	}
	g, _ = p.Fetch(id) // cold: logical + physical
	p.Unpin(g, false)
	s = d.Stats()
	if s.PhysicalReads != 1 {
		t.Errorf("physical reads after drop = %d, want 1", s.PhysicalReads)
	}
}
