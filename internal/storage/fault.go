package storage

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"time"
)

// This file is the storage layer's failure model:
//
//   - ReadFault classifies every failed page read as transient (worth
//     retrying: the media may serve good bytes on the next attempt) or
//     permanent (retry is pointless: the page is gone or the request is
//     malformed). Pool.Fetch retries transient faults with bounded
//     exponential backoff; what escapes after the budget is spent is a
//     fault the caller must absorb (the live layer quarantines the
//     affected segment).
//   - FaultDevice is the seedable fault injector: a Device wrapper that
//     produces read errors, torn/bit-flipped pages, and latency — by
//     page id, by probability, or on a scripted schedule — so failure
//     paths are exercised deterministically instead of waiting for real
//     hardware to misbehave.
//   - VerifiedDevice is the detector that keeps bit flips from becoming
//     silently wrong answers: it records a CRC per page on a trusted
//     priming pass and verifies every later read against it, turning
//     corruption into a classified ReadFault.

// ReadFault is a classified page-read failure. Transient faults are
// worth retrying (a later read of the same page may succeed); permanent
// faults are not. Checksum mismatches are classified transient — a
// one-off bit flip on the wire is healed by a re-read, and persistent
// corruption still escapes once the retry budget is spent.
type ReadFault struct {
	Page      PageID
	Transient bool
	Err       error
}

func (e *ReadFault) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("storage: %s read fault on page %d: %v", kind, e.Page, e.Err)
}

func (e *ReadFault) Unwrap() error { return e.Err }

// IsReadFault reports whether err carries a classified page-read fault
// anywhere in its chain.
func IsReadFault(err error) bool {
	var rf *ReadFault
	return errors.As(err, &rf)
}

// IsTransient reports whether err is a read fault classified transient —
// the retry predicate Pool.Fetch uses.
func IsTransient(err error) bool {
	var rf *ReadFault
	return errors.As(err, &rf) && rf.Transient
}

// ErrInjectedFault marks errors produced by a FaultDevice.
var ErrInjectedFault = errors.New("storage: injected fault")

// ErrCorruptPage marks a page whose contents failed checksum
// verification against the primed CRC table.
var ErrCorruptPage = errors.New("storage: page checksum mismatch")

// FaultDevice wraps a Device with seedable, scriptable fault injection.
// All knobs start disarmed: a fresh FaultDevice is transparent. Faults
// can be injected three ways, checked in this order per read:
//
//	page id      FailPage(id, n) fails the next n reads of that page
//	             transiently (n < 0: permanently, until Clear).
//	schedule     FailReads(from, count) fails the reads whose global
//	             ordinal falls in [from, from+count) transiently.
//	probability  SetReadErrorProb(p) fails each remaining read with
//	             probability p (transient); SetCorruptProb(p) lets the
//	             read succeed but flips one seeded-random bit of the
//	             returned page — a torn/corrupted page the device
//	             itself does not detect.
//
// SetLatency delays every physical read. The same seed replays the
// same fault sequence for a given read order; concurrent readers make
// the order itself scheduling-dependent, so benchmarks that need exact
// replay drive reads single-threaded or assert invariants rather than
// exact fault counts. A FaultDevice is safe for concurrent use.
type FaultDevice struct {
	mu      sync.Mutex
	dev     Device
	rng     *rand.Rand
	errProb float64
	corProb float64
	latency time.Duration
	sleep   func(time.Duration)

	permPages   map[PageID]bool
	scriptPages map[PageID]int
	winFrom     int64
	winTo       int64

	reads     int64
	injErrs   int64
	injTorn   int64
	slowReads int64
}

// FaultStats counts what a FaultDevice saw and did.
type FaultStats struct {
	Reads              int64 // physical reads requested through the wrapper
	InjectedErrors     int64 // reads failed by injection
	InjectedCorruption int64 // reads that returned a flipped bit
	DelayedReads       int64 // reads that paid the configured latency
}

// NewFaultDevice wraps dev; seed fixes the probabilistic fault sequence.
func NewFaultDevice(dev Device, seed int64) *FaultDevice {
	return &FaultDevice{
		dev:         dev,
		rng:         rand.New(rand.NewSource(seed)),
		sleep:       time.Sleep,
		permPages:   make(map[PageID]bool),
		scriptPages: make(map[PageID]int),
	}
}

// SetReadErrorProb arms (or, with 0, disarms) probabilistic transient
// read errors.
func (f *FaultDevice) SetReadErrorProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errProb = p
}

// SetCorruptProb arms (or disarms) probabilistic single-bit corruption
// of successfully read pages.
func (f *FaultDevice) SetCorruptProb(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corProb = p
}

// SetLatency delays every physical read by d (0 disarms).
func (f *FaultDevice) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// FailPage scripts failures for one page: the next n reads of id fail
// transiently; n < 0 makes every read of id fail permanently until
// Clear; n == 0 removes the script for id.
func (f *FaultDevice) FailPage(id PageID, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case n < 0:
		f.permPages[id] = true
		delete(f.scriptPages, id)
	case n == 0:
		delete(f.permPages, id)
		delete(f.scriptPages, id)
	default:
		f.scriptPages[id] = n
		delete(f.permPages, id)
	}
}

// FailAll makes every read fail until Clear — permanently when
// permanent is true, transiently otherwise. It is the "device
// unplugged" schedule.
func (f *FaultDevice) FailAll(permanent bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if permanent {
		f.winFrom, f.winTo = 0, 0
		f.permPages[InvalidPage] = true // sentinel: matchLocked treats it as match-all
	} else {
		f.winFrom, f.winTo = f.reads, int64(1)<<62
	}
}

// FailReads scripts a transient-failure window on the global read
// ordinal: reads from..from+count-1 (counted since construction) fail.
func (f *FaultDevice) FailReads(from, count int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.winFrom, f.winTo = from, from+count
}

// Clear disarms every fault source and the latency knob; counters are
// kept.
func (f *FaultDevice) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errProb, f.corProb, f.latency = 0, 0, 0
	f.winFrom, f.winTo = 0, 0
	f.permPages = make(map[PageID]bool)
	f.scriptPages = make(map[PageID]int)
}

// Stats snapshots the injection counters.
func (f *FaultDevice) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{
		Reads:              f.reads,
		InjectedErrors:     f.injErrs,
		InjectedCorruption: f.injTorn,
		DelayedReads:       f.slowReads,
	}
}

func (f *FaultDevice) readPage(id PageID, buf *[PageSize]byte) error {
	f.mu.Lock()
	ord := f.reads
	f.reads++
	delay := f.latency
	if delay > 0 {
		f.slowReads++
	}
	fail, transient := false, false
	switch {
	case f.permPages[InvalidPage] || f.permPages[id]:
		fail, transient = true, false
	case f.scriptPages[id] > 0:
		f.scriptPages[id]--
		if f.scriptPages[id] == 0 {
			delete(f.scriptPages, id)
		}
		fail, transient = true, true
	case ord >= f.winFrom && ord < f.winTo:
		fail, transient = true, true
	case f.errProb > 0 && f.rng.Float64() < f.errProb:
		fail, transient = true, true
	}
	flipByte, flipBit := -1, 0
	if !fail && f.corProb > 0 && f.rng.Float64() < f.corProb {
		flipByte = f.rng.Intn(PageSize)
		flipBit = f.rng.Intn(8)
		f.injTorn++
	}
	if fail {
		f.injErrs++
	}
	f.mu.Unlock()

	if delay > 0 {
		f.sleep(delay)
	}
	if fail {
		return &ReadFault{Page: id, Transient: transient, Err: ErrInjectedFault}
	}
	if err := f.dev.readPage(id, buf); err != nil {
		return err
	}
	if flipByte >= 0 {
		buf[flipByte] ^= 1 << flipBit
	}
	return nil
}

func (f *FaultDevice) writePage(id PageID, buf *[PageSize]byte) error {
	return f.dev.writePage(id, buf)
}

func (f *FaultDevice) allocatePage() (PageID, error) { return f.dev.allocatePage() }

func (f *FaultDevice) noteLogicalRead() { f.dev.noteLogicalRead() }

// VerifiedDevice wraps a Device with per-page CRC verification: Prime
// reads every page once and records its checksum (the trusted pass —
// the live layer primes at segment open, where the section checksums
// independently vouch for the same bytes), and every later readPage is
// verified against the table. A mismatch is returned as a transient
// ReadFault wrapping ErrCorruptPage: a one-off flip is healed by the
// pool's retry, persistent corruption escapes after the budget and the
// caller quarantines. Verify re-runs the full pass — the re-verify
// loop's probe that a quarantined segment's media serves clean bytes
// again.
type VerifiedDevice struct {
	dev   Device
	pages int

	mu     sync.Mutex
	sums   []uint32
	primed bool
}

// NewVerifiedDevice wraps dev, which must hold exactly pages pages.
func NewVerifiedDevice(dev Device, pages int) *VerifiedDevice {
	return &VerifiedDevice{dev: dev, pages: pages}
}

// Prime reads every page and records its checksum as the trusted
// reference. It may be called again to re-trust current contents (not
// needed for immutable segment files).
func (v *VerifiedDevice) Prime() error {
	sums := make([]uint32, v.pages)
	var buf [PageSize]byte
	for i := 0; i < v.pages; i++ {
		if err := v.dev.readPage(PageID(i+1), &buf); err != nil {
			return fmt.Errorf("storage: prime page %d: %w", i+1, err)
		}
		sums[i] = crc32.ChecksumIEEE(buf[:])
	}
	v.mu.Lock()
	v.sums = sums
	v.primed = true
	v.mu.Unlock()
	return nil
}

// Verify re-reads every page and checks it against the primed table,
// returning the first failure. The read path stays verified while
// Verify runs.
func (v *VerifiedDevice) Verify() error {
	v.mu.Lock()
	primed := v.primed
	v.mu.Unlock()
	if !primed {
		return fmt.Errorf("storage: verify before prime")
	}
	var buf [PageSize]byte
	for i := 0; i < v.pages; i++ {
		if err := v.readPage(PageID(i+1), &buf); err != nil {
			return err
		}
	}
	return nil
}

func (v *VerifiedDevice) readPage(id PageID, buf *[PageSize]byte) error {
	if err := v.dev.readPage(id, buf); err != nil {
		return err
	}
	v.mu.Lock()
	want, have := uint32(0), false
	if v.primed && id != InvalidPage && int(id) <= len(v.sums) {
		want, have = v.sums[id-1], true
	}
	v.mu.Unlock()
	if have && crc32.ChecksumIEEE(buf[:]) != want {
		return &ReadFault{Page: id, Transient: true, Err: ErrCorruptPage}
	}
	return nil
}

func (v *VerifiedDevice) writePage(id PageID, buf *[PageSize]byte) error {
	// Writing would invalidate the primed table; verified devices sit
	// over immutable media only.
	return ErrReadOnlyDevice
}

func (v *VerifiedDevice) allocatePage() (PageID, error) { return InvalidPage, ErrReadOnlyDevice }

func (v *VerifiedDevice) noteLogicalRead() { v.dev.noteLogicalRead() }
