package storage

import (
	"fmt"
	"io"
)

// File is an append-only byte stream laid out across disk pages. Inverted
// lists and column segments are stored in Files so that reading them costs
// a predictable, countable number of page fetches. A File is written once
// by a builder and then read many times by queries.
type File struct {
	pool  *Pool
	pages []PageID
	size  int64 // total bytes written
}

// NewFile creates an empty file backed by pool.
func NewFile(pool *Pool) *File {
	return &File{pool: pool}
}

// Size returns the number of bytes written to the file.
func (f *File) Size() int64 { return f.size }

// NumPages returns the number of pages the file occupies.
func (f *File) NumPages() int { return len(f.pages) }

// Append writes b at the end of the file and returns the byte offset at
// which it was placed.
func (f *File) Append(b []byte) (int64, error) {
	start := f.size
	for len(b) > 0 {
		off := int(f.size % PageSize)
		if off == 0 && f.size == int64(len(f.pages))*PageSize {
			pg, err := f.pool.NewPage()
			if err != nil {
				return 0, err
			}
			f.pages = append(f.pages, pg.ID())
			if err := f.pool.Unpin(pg, true); err != nil {
				return 0, err
			}
		}
		pid := f.pages[f.size/PageSize]
		pg, err := f.pool.Fetch(pid)
		if err != nil {
			return 0, err
		}
		n := copy(pg.Data()[off:], b)
		if err := f.pool.Unpin(pg, true); err != nil {
			return 0, err
		}
		b = b[n:]
		f.size += int64(n)
	}
	return start, nil
}

// ReadAt reads len(b) bytes starting at byte offset off, fetching each
// covered page through the buffer pool. It returns io.EOF when the range
// extends past the end of the file.
func (f *File) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	read := 0
	for read < len(b) {
		if off >= f.size {
			return read, io.EOF
		}
		pidx := off / PageSize
		poff := int(off % PageSize)
		pg, err := f.pool.Fetch(f.pages[pidx])
		if err != nil {
			return read, err
		}
		avail := PageSize - poff
		if rem := f.size - off; int64(avail) > rem {
			avail = int(rem)
		}
		n := copy(b[read:], pg.Data()[poff:poff+avail])
		if err := f.pool.Unpin(pg, false); err != nil {
			return read, err
		}
		read += n
		off += int64(n)
	}
	return read, nil
}

// Reader returns an io.Reader over the file contents starting at offset
// off and limited to n bytes (or to end of file when n < 0).
func (f *File) Reader(off, n int64) io.Reader {
	if n < 0 {
		n = f.size - off
	}
	return &fileReader{f: f, off: off, remaining: n}
}

type fileReader struct {
	f         *File
	off       int64
	remaining int64
}

func (r *fileReader) Read(b []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(b)) > r.remaining {
		b = b[:r.remaining]
	}
	n, err := r.f.ReadAt(b, r.off)
	r.off += int64(n)
	r.remaining -= int64(n)
	return n, err
}
