package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Pool is a buffer pool caching disk pages with LRU replacement. Pages are
// pinned while in use; only unpinned pages are eviction candidates. The
// pool distinguishes logical reads (hits plus misses) from the physical
// reads it forwards to the disk, so experiments can report both the
// work a plan requests and the I/O the storage layer actually performs.
type Pool struct {
	mu       sync.Mutex
	disk     *Disk
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds *frame
	hits     int64
	misses   int64
}

type frame struct {
	page Page
	elem *list.Element
}

// NewPool creates a buffer pool over disk holding at most capacity pages.
func NewPool(disk *Disk, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: pool capacity %d must be positive", capacity)
	}
	return &Pool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}, nil
}

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested; callers hold too many pages at once.
var ErrPoolFull = errors.New("storage: all buffer frames pinned")

// Fetch pins the page with the given ID, reading it from disk on a miss,
// and returns it. The caller must call Unpin when done.
func (p *Pool) Fetch(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.disk.mu.Lock()
	p.disk.stats.LogicalReads++
	p.disk.mu.Unlock()

	if f, ok := p.frames[id]; ok {
		p.hits++
		f.page.pins++
		p.lru.MoveToFront(f.elem)
		return &f.page, nil
	}
	p.misses++
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	f.page.id = id
	f.page.dirty = false
	f.page.pins = 1
	if err := p.disk.read(id, &f.page.data); err != nil {
		// Roll the frame back out so the pool stays consistent.
		p.lru.Remove(f.elem)
		return nil, err
	}
	p.frames[id] = f
	return &f.page, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns it zeroed.
func (p *Pool) NewPage() (*Page, error) {
	id := p.disk.Allocate()
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	f.page.id = id
	f.page.data = [PageSize]byte{}
	f.page.dirty = true
	f.page.pins = 1
	p.frames[id] = f
	return &f.page, nil
}

// allocFrameLocked finds a free frame, evicting the least recently used
// unpinned page if the pool is at capacity. The returned frame is already
// on the LRU list front but not yet in the frames map.
func (p *Pool) allocFrameLocked() (*frame, error) {
	if len(p.frames) < p.capacity {
		f := &frame{}
		f.elem = p.lru.PushFront(f)
		return f, nil
	}
	// Evict from the back of the LRU list.
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.page.pins > 0 {
			continue
		}
		if f.page.dirty {
			if err := p.disk.write(f.page.id, &f.page.data); err != nil {
				return nil, err
			}
		}
		delete(p.frames, f.page.id)
		p.lru.MoveToFront(e)
		return f, nil
	}
	return nil, ErrPoolFull
}

// Unpin releases one pin on the page. dirty indicates whether the caller
// modified the page contents.
func (p *Pool) Unpin(pg *Page, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg.id]
	if !ok {
		return fmt.Errorf("storage: unpin of page %d not in pool", pg.id)
	}
	if f.page.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", pg.id)
	}
	if dirty {
		f.page.dirty = true
	}
	f.page.pins--
	return nil
}

// FlushAll writes every dirty page back to disk. Pages remain cached.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.page.dirty {
			if err := p.disk.write(f.page.id, &f.page.data); err != nil {
				return err
			}
			f.page.dirty = false
		}
	}
	return nil
}

// DropAll flushes dirty pages and empties the cache. Experiments call this
// between runs to measure cold-cache behaviour. It fails if any page is
// still pinned.
func (p *Pool) DropAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.page.pins > 0 {
			return fmt.Errorf("storage: page %d still pinned", id)
		}
		if f.page.dirty {
			if err := p.disk.write(f.page.id, &f.page.data); err != nil {
				return err
			}
		}
	}
	p.frames = make(map[PageID]*frame)
	p.lru.Init()
	return nil
}

// HitRate reports the buffer pool hit ratio since construction (or the
// last ResetCounters); it returns 0 when no fetches happened.
func (p *Pool) HitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// ResetCounters zeroes the hit/miss counters.
func (p *Pool) ResetCounters() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits, p.misses = 0, 0
}

// Capacity returns the maximum number of cached pages.
func (p *Pool) Capacity() int { return p.capacity }
