package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a buffer pool caching device pages with LRU replacement. Pages
// are pinned while in use; only unpinned pages are eviction candidates.
// The pool distinguishes logical reads (hits plus misses) from the
// physical reads it forwards to the device, so experiments can report
// both the work a plan requests and the I/O the storage layer actually
// performs. The device may be the simulated in-memory Disk (build-time
// media) or a read-only FileDisk over a persisted segment, in which case
// the pool's capacity bounds the resident working set of a disk-backed
// index.
type Pool struct {
	mu       sync.Mutex
	dev      Device
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; holds *frame
	hits     int64
	misses   int64

	retry RetryPolicy
	// Fault accounting, atomic because miss reads run outside the pool
	// lock: retries counts transient re-reads issued, faults counts
	// fetches that still failed after the retry budget. They sit next to
	// hits/misses but do not disturb the hits+misses == fetches
	// invariant — a failed fetch is still exactly one miss.
	retries atomic.Int64
	faults  atomic.Int64

	// Physical-read latency accounting, the self-tuning calibrator's
	// direct measurement of what one page fault costs: reads counts
	// completed readWithRetry calls, readNanos their summed duration —
	// retry backoff included, because that is the latency the faulting
	// query actually paid. readClock is injectable for deterministic
	// tests (SetReadClock).
	reads     atomic.Int64
	readNanos atomic.Int64
	readClock func() time.Time
}

// RetryPolicy bounds the transient-read retry loop in Fetch. A read
// failing with a transient ReadFault (see fault.go) is re-issued up to
// MaxRetries times with exponential backoff (BaseDelay doubling per
// attempt, capped at MaxDelay); permanent faults and non-classified
// errors are returned immediately. The zero value takes the defaults.
type RetryPolicy struct {
	// MaxRetries is the number of re-reads after the first failure.
	// Default 3; negative disables retrying.
	MaxRetries int
	// BaseDelay is the backoff before the first retry. Default 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff. Default 8ms.
	MaxDelay time.Duration
	// Sleep is the backoff sleeper, injectable so retry tests are
	// deterministic and fast. Default time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 8 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

type frame struct {
	page Page
	elem *list.Element

	// Miss loads run outside the pool lock so cache hits on other pages
	// never wait behind device I/O. While loading is set the frame is
	// pinned (hence unevictable) and concurrent fetchers of the same
	// page wait on ready instead of issuing a second read; loadErr
	// carries a failed read to those waiters.
	loading bool
	loadErr error
	ready   chan struct{}
}

// NewPool creates a buffer pool over dev holding at most capacity pages.
func NewPool(dev Device, capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: pool capacity %d must be positive", capacity)
	}
	if dev == nil {
		return nil, fmt.Errorf("storage: nil device")
	}
	return &Pool{
		dev:       dev,
		capacity:  capacity,
		frames:    make(map[PageID]*frame),
		lru:       list.New(),
		retry:     RetryPolicy{}.withDefaults(),
		readClock: time.Now,
	}, nil
}

// SetReadClock replaces the clock behind the physical-read latency
// counters (ReadLatency). Call before the pool is shared across
// goroutines.
func (p *Pool) SetReadClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	p.readClock = now
}

// SetRetryPolicy replaces the transient-read retry policy. Call before
// the pool is shared across goroutines.
func (p *Pool) SetRetryPolicy(rp RetryPolicy) { p.retry = rp.withDefaults() }

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested; callers hold too many pages at once.
var ErrPoolFull = errors.New("storage: all buffer frames pinned")

// Fetch pins the page with the given ID, reading it from the device on a
// miss, and returns it. The caller must call Unpin when done.
//
// The pool lock is NOT held across the miss read: the frame is
// published in a loading state (pinned, so eviction cannot reclaim it)
// and the device read runs unlocked, so concurrent hits — and misses on
// other pages — proceed while a physical read is in flight. A second
// Fetch of the same page during the load waits for that one read
// instead of issuing its own.
func (p *Pool) Fetch(id PageID) (*Page, error) {
	p.mu.Lock()
	p.dev.noteLogicalRead()

	if f, ok := p.frames[id]; ok {
		p.hits++
		f.page.pins++
		p.lru.MoveToFront(f.elem)
		if !f.loading {
			p.mu.Unlock()
			return &f.page, nil
		}
		ready := f.ready
		p.mu.Unlock()
		<-ready
		// The loader has published the outcome; on failure it already
		// removed the frame, so the optimistic pin dies with it.
		if err := f.loadErr; err != nil {
			return nil, err
		}
		return &f.page, nil
	}
	p.misses++
	f, err := p.allocFrameLocked()
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f.page.id = id
	f.page.dirty.Store(false)
	f.page.pins = 1
	f.loading = true
	f.loadErr = nil
	f.ready = make(chan struct{})
	p.frames[id] = f
	p.mu.Unlock()

	rerr := p.readWithRetry(id, &f.page.data)

	p.mu.Lock()
	f.loading = false
	if rerr != nil {
		// Roll the frame back out so the pool stays consistent; waiters
		// observe the error through loadErr.
		f.loadErr = rerr
		delete(p.frames, id)
		p.lru.Remove(f.elem)
	}
	close(f.ready)
	p.mu.Unlock()
	if rerr != nil {
		return nil, rerr
	}
	return &f.page, nil
}

// readWithRetry issues the physical read, re-issuing transient faults
// (classified by the device as ReadFault{Transient: true} — injected
// hiccups and checksum mismatches) with bounded exponential backoff.
// It runs outside the pool lock, so a retrying fetch delays only its
// own page. A read that still fails counts one fault.
func (p *Pool) readWithRetry(id PageID, buf *[PageSize]byte) error {
	start := p.readClock()
	defer func() {
		p.reads.Add(1)
		p.readNanos.Add(int64(p.readClock().Sub(start)))
	}()
	err := p.dev.readPage(id, buf)
	delay := p.retry.BaseDelay
	for attempt := 0; err != nil && IsTransient(err) && attempt < p.retry.MaxRetries; attempt++ {
		p.retries.Add(1)
		p.retry.Sleep(delay)
		delay *= 2
		if delay > p.retry.MaxDelay {
			delay = p.retry.MaxDelay
		}
		err = p.dev.readPage(id, buf)
	}
	if err != nil {
		p.faults.Add(1)
	}
	return err
}

// NewPage allocates a fresh page on the device, pins it, and returns it
// zeroed. It fails with ErrReadOnlyDevice when the device cannot grow
// (a persisted segment).
func (p *Pool) NewPage() (*Page, error) {
	id, err := p.dev.allocatePage()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	f.page.id = id
	f.page.data = [PageSize]byte{}
	f.page.dirty.Store(true)
	f.page.pins = 1
	p.frames[id] = f
	return &f.page, nil
}

// allocFrameLocked finds a free frame, evicting the least recently used
// unpinned page if the pool is at capacity. The returned frame is already
// on the LRU list front but not yet in the frames map.
func (p *Pool) allocFrameLocked() (*frame, error) {
	if len(p.frames) < p.capacity {
		f := &frame{}
		f.elem = p.lru.PushFront(f)
		return f, nil
	}
	// Evict from the back of the LRU list.
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*frame)
		if f.page.pins > 0 {
			continue
		}
		if f.page.dirty.Load() {
			if err := p.dev.writePage(f.page.id, &f.page.data); err != nil {
				return nil, err
			}
		}
		delete(p.frames, f.page.id)
		p.lru.MoveToFront(e)
		return f, nil
	}
	return nil, ErrPoolFull
}

// Unpin releases one pin on the page. dirty indicates whether the caller
// modified the page contents.
func (p *Pool) Unpin(pg *Page, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[pg.id]
	if !ok {
		return fmt.Errorf("storage: unpin of page %d not in pool", pg.id)
	}
	if f.page.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", pg.id)
	}
	if dirty {
		f.page.dirty.Store(true)
	}
	f.page.pins--
	return nil
}

// FlushAll writes every unpinned dirty page back to the device. Pages
// remain cached. Pinned pages are skipped — their holders may still be
// mutating the contents, so writing them here would race; they are
// flushed on eviction or a later FlushAll once unpinned.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.page.pins == 0 && f.page.dirty.Load() {
			if err := p.dev.writePage(f.page.id, &f.page.data); err != nil {
				return err
			}
			f.page.dirty.Store(false)
		}
	}
	return nil
}

// DropAll flushes dirty pages and empties the cache. Experiments call this
// between runs to measure cold-cache behaviour. It fails if any page is
// still pinned.
func (p *Pool) DropAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, f := range p.frames {
		if f.page.pins > 0 {
			return fmt.Errorf("storage: page %d still pinned", id)
		}
		if f.page.dirty.Load() {
			if err := p.dev.writePage(f.page.id, &f.page.data); err != nil {
				return err
			}
		}
	}
	p.frames = make(map[PageID]*frame)
	p.lru.Init()
	return nil
}

// HitRate reports the buffer pool hit ratio since construction (or the
// last ResetCounters); it returns 0 when no fetches happened.
func (p *Pool) HitRate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Counts returns the hit and miss tallies behind HitRate. Every Fetch is
// exactly one hit or one miss, so hits+misses equals the fetches issued
// since the last ResetCounters — the invariant the race stress test
// asserts.
func (p *Pool) Counts() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// FaultCounts returns the transient-retry and failed-fetch tallies —
// the fault accounting next to Counts' hits/misses. A fetch that
// succeeds on a retry contributes retries but no fault; a fetch that
// exhausts the budget (or fails permanently) contributes one fault.
func (p *Pool) FaultCounts() (retries, faults int64) {
	return p.retries.Load(), p.faults.Load()
}

// ReadLatency returns the number of physical page reads issued and
// their total duration, retry backoff included — the measured cost of
// page faults, feeding the self-tuning calibrator. Monotone between
// ResetCounters calls.
func (p *Pool) ReadLatency() (reads int64, total time.Duration) {
	return p.reads.Load(), time.Duration(p.readNanos.Load())
}

// ResetCounters zeroes the hit/miss, retry/fault, and read-latency
// counters.
func (p *Pool) ResetCounters() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits, p.misses = 0, 0
	p.retries.Store(0)
	p.faults.Store(0)
	p.reads.Store(0)
	p.readNanos.Store(0)
}

// Capacity returns the maximum number of cached pages.
func (p *Pool) Capacity() int { return p.capacity }
