package storage

import "errors"

// Device is the page-addressed medium beneath a Pool. Two implementations
// exist: the simulated in-memory Disk (the build-time medium, where pages
// are allocated as structures are built) and the read-only FileDisk (a
// persisted segment file served page by page). The methods are unexported
// on purpose: a Device is a storage-internal contract between the pool
// and its media, not an extension point for other packages.
type Device interface {
	// readPage fills buf with page id's contents, counting one physical
	// read.
	readPage(id PageID, buf *[PageSize]byte) error
	// writePage persists buf as page id's contents, counting one physical
	// write. Read-only devices return ErrReadOnlyDevice.
	writePage(id PageID, buf *[PageSize]byte) error
	// allocatePage reserves a fresh zeroed page. Read-only devices return
	// ErrReadOnlyDevice.
	allocatePage() (PageID, error)
	// noteLogicalRead counts one page request the pool received,
	// regardless of whether it hit the cache.
	noteLogicalRead()
}

// ErrReadOnlyDevice is returned when a page allocation or write reaches a
// device that cannot grow or change, such as a persisted segment file.
var ErrReadOnlyDevice = errors.New("storage: device is read-only")

// Disk's Device implementation: thin wrappers over its existing
// counted read/write/allocate paths.

func (d *Disk) readPage(id PageID, buf *[PageSize]byte) error  { return d.read(id, buf) }
func (d *Disk) writePage(id PageID, buf *[PageSize]byte) error { return d.write(id, buf) }

func (d *Disk) allocatePage() (PageID, error) { return d.Allocate(), nil }

func (d *Disk) noteLogicalRead() {
	d.mu.Lock()
	d.stats.LogicalReads++
	d.mu.Unlock()
}
