package vector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topk"
	"repro/internal/xrand"
)

func TestL2(t *testing.T) {
	a := Vector{0, 0}
	b := Vector{3, 4}
	if got, err := L2(a, b); err != nil || math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 = %v (err %v), want 5", got, err)
	}
	if got, err := L2(a, a); err != nil || got != 0 {
		t.Errorf("L2 self = %v (err %v)", got, err)
	}
}

func TestL2RejectsMismatch(t *testing.T) {
	if _, err := L2(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	if _, err := Cosine(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("cosine dimension mismatch not reported")
	}
	ds := &Dataset{Dim: 2, Vecs: []Vector{{1, 2}}}
	if _, err := ds.ScoreAll(Vector{1}); err == nil {
		t.Fatal("ScoreAll dimension mismatch not reported")
	}
	if _, err := ds.Source(Vector{1, 2, 3}); err == nil {
		t.Fatal("Source dimension mismatch not reported")
	}
	if _, err := ds.KNN(Vector{}, 1); err == nil {
		t.Fatal("KNN dimension mismatch not reported")
	}
}

func TestL2Properties(t *testing.T) {
	rng := xrand.New(5)
	mk := func() Vector {
		v := make(Vector, 8)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	dist := func(a, b Vector) float64 {
		d, err := L2(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if err := quick.Check(func(seed uint8) bool {
		a, b, c := mk(), mk(), mk()
		// Symmetry, non-negativity, triangle inequality.
		if math.Abs(dist(a, b)-dist(b, a)) > 1e-9 {
			return false
		}
		if dist(a, b) < 0 {
			return false
		}
		return dist(a, c) <= dist(a, b)+dist(b, c)+1e-9
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	cos := func(a, b Vector) float64 {
		c, err := Cosine(a, b)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if got := cos(Vector{1, 0}, Vector{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel = %v", got)
	}
	if got := cos(Vector{1, 0}, Vector{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal = %v", got)
	}
	if got := cos(Vector{1, 0}, Vector{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("antiparallel = %v", got)
	}
	if got := cos(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
}

func TestSimilarityMonotone(t *testing.T) {
	if Similarity(0) != 1 {
		t.Error("similarity at distance 0 must be 1")
	}
	prev := 2.0
	for d := 0.0; d < 10; d += 0.5 {
		s := Similarity(d)
		if s <= 0 || s > 1 {
			t.Fatalf("similarity out of (0,1]: %v", s)
		}
		if s >= prev {
			t.Fatal("similarity not strictly decreasing")
		}
		prev = s
	}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(Config{NumObjects: 500, Dim: 8, NumClusters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vecs) != 500 || ds.Dim != 8 {
		t.Fatalf("shape %d×%d", len(ds.Vecs), ds.Dim)
	}
	for _, v := range ds.Vecs {
		if len(v) != 8 {
			t.Fatal("inconsistent dimension")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumObjects: 100, Dim: 4, Seed: 11}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.Vecs {
		for d := range a.Vecs[i] {
			if a.Vecs[i][d] != b.Vecs[i][d] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumObjects: -1}); err == nil {
		t.Error("negative objects accepted")
	}
}

func TestGenerateClustered(t *testing.T) {
	// With tight clusters, average distance to the nearest other point
	// must be much smaller than to a random point.
	ds, err := Generate(Config{NumObjects: 300, Dim: 6, NumClusters: 4, ClusterStd: 0.02, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	var nearSum, randSum float64
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		i := rng.Intn(len(ds.Vecs))
		near := math.Inf(1)
		for j := range ds.Vecs {
			if j == i {
				continue
			}
			if d := l2(ds.Vecs[i], ds.Vecs[j]); d < near {
				near = d
			}
		}
		nearSum += near
		randSum += l2(ds.Vecs[i], ds.Vecs[rng.Intn(len(ds.Vecs))])
	}
	if nearSum >= randSum/3 {
		t.Errorf("nearest-neighbour distance %.3f not clearly below random distance %.3f; data not clustered",
			nearSum/trials, randSum/trials)
	}
}

func TestKNNMatchesExhaustive(t *testing.T) {
	ds, err := Generate(Config{NumObjects: 200, Dim: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Vecs[42]
	got, err := ds.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("returned %d", len(got))
	}
	if got[0].DocID != 42 {
		t.Errorf("nearest to itself is %d", got[0].DocID)
	}
	if math.Abs(got[0].Score-1) > 1e-12 {
		t.Errorf("self-similarity = %v", got[0].Score)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("KNN not sorted by similarity")
		}
	}
}

func TestSourceFeedsFagin(t *testing.T) {
	ds, err := Generate(Config{NumObjects: 300, Dim: 4, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	q1, q2 := ds.Vecs[0], ds.Vecs[1]
	s1, err := ds.Source(q1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ds.Source(q2)
	if err != nil {
		t.Fatal(err)
	}
	sources := []topk.Source{s1, s2}
	res, err := topk.TA(sources, topk.MinAgg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := topk.Naive(sources, topk.MinAgg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range naive.Top {
		if res.Top[i].DocID != naive.Top[i].DocID {
			t.Fatal("TA over feature sources disagrees with exhaustive")
		}
	}
}
