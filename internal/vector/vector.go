// Package vector provides the multimedia feature-space substrate: feature
// vectors (stand-ins for the colour histograms and texture descriptors of
// an MM DBMS), distance and similarity measures, and graded Sources
// feeding the Fagin-style middleware algorithms.
//
// Substitution note (DESIGN.md §2): the paper's MM content is replaced by
// synthetic clustered vectors. Fagin's algorithms — and the paper's
// integrated text⊕feature queries — only require monotone aggregation of
// per-source grades; clustered synthetic features exercise exactly that
// code path while keeping ground truth computable.
package vector

import (
	"fmt"
	"math"

	"repro/internal/rank"
	"repro/internal/topk"
	"repro/internal/xrand"
)

// Vector is a dense feature vector.
type Vector []float64

// L2 returns the Euclidean distance between a and b. Mismatched
// dimensions are an error, not a panic: query vectors arrive from
// outside the process now, so a malformed one must fail its own request
// rather than crash the server.
func L2(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("vector: dimension mismatch %d vs %d", len(a), len(b))
	}
	return l2(a, b), nil
}

// l2 is L2 for callers that have already established len(a) == len(b).
func l2(a, b Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [-1, 1]; 0 when
// either vector is zero. Mismatched dimensions are an error, as in L2.
func Cosine(a, b Vector) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("vector: dimension mismatch %d vs %d", len(a), len(b))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}

// Similarity converts an L2 distance into a grade in (0, 1]: 1/(1+d).
// Monotone decreasing in distance, as the middleware algorithms require.
func Similarity(d float64) float64 { return 1 / (1 + d) }

// Dataset is a collection of feature vectors, one per object id (the
// index in Vecs).
type Dataset struct {
	Dim  int
	Vecs []Vector
}

// Config controls synthetic feature generation.
type Config struct {
	NumObjects  int     // default 10000
	Dim         int     // default 16
	NumClusters int     // default 20
	ClusterStd  float64 // within-cluster standard deviation; default 0.1
	Seed        uint64  // default 3
}

func (c *Config) fillDefaults() {
	if c.NumObjects == 0 {
		c.NumObjects = 10000
	}
	if c.Dim == 0 {
		c.Dim = 16
	}
	if c.NumClusters == 0 {
		c.NumClusters = 20
	}
	if c.ClusterStd == 0 {
		c.ClusterStd = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
}

// Generate produces a clustered dataset: cluster centres uniform in the
// unit cube, members Gaussian around them. Clustering matters because it
// creates the grade correlation across feature sources under which
// Fagin-style early termination shines (and real images show it).
func Generate(cfg Config) (*Dataset, error) {
	cfg.fillDefaults()
	if cfg.NumObjects < 0 || cfg.Dim <= 0 || cfg.NumClusters <= 0 {
		return nil, fmt.Errorf("vector: invalid config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	centres := make([]Vector, cfg.NumClusters)
	for i := range centres {
		c := make(Vector, cfg.Dim)
		for d := range c {
			c[d] = rng.Float64()
		}
		centres[i] = c
	}
	ds := &Dataset{Dim: cfg.Dim, Vecs: make([]Vector, cfg.NumObjects)}
	for i := 0; i < cfg.NumObjects; i++ {
		c := centres[rng.Intn(cfg.NumClusters)]
		v := make(Vector, cfg.Dim)
		for d := range v {
			v[d] = c[d] + cfg.ClusterStd*rng.NormFloat64()
		}
		ds.Vecs[i] = v
	}
	return ds, nil
}

// ScoreAll grades every object against query by L2 similarity and returns
// the full graded list (unsorted, by object id). The query's dimension is
// validated once against the dataset's; every stored vector shares it by
// construction.
func (ds *Dataset) ScoreAll(query Vector) ([]rank.DocScore, error) {
	if len(query) != ds.Dim {
		return nil, fmt.Errorf("vector: query dimension %d, dataset dimension %d", len(query), ds.Dim)
	}
	out := make([]rank.DocScore, len(ds.Vecs))
	for i, v := range ds.Vecs {
		out[i] = rank.DocScore{DocID: uint32(i), Score: Similarity(l2(query, v))}
	}
	return out, nil
}

// Source builds a sorted-access Source over the dataset for a query point,
// for use with topk.FA/TA/NRA. Building it costs a full scoring pass —
// the same cost a real system pays to maintain a feature index; the
// middleware algorithms then save by reading only a prefix.
func (ds *Dataset) Source(query Vector) (*topk.SliceSource, error) {
	scored, err := ds.ScoreAll(query)
	if err != nil {
		return nil, err
	}
	return topk.NewSliceSource(scored), nil
}

// KNN returns the k nearest objects to query by L2 distance, graded by
// similarity, best first — exhaustive ground truth for the MM experiments.
func (ds *Dataset) KNN(query Vector, k int) ([]rank.DocScore, error) {
	scored, err := ds.ScoreAll(query)
	if err != nil {
		return nil, err
	}
	return topk.SelectTop(scored, k), nil
}
