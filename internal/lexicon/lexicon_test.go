package lexicon

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternIdempotent(t *testing.T) {
	l := New()
	a := l.Intern("apple")
	b := l.Intern("banana")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if l.Intern("apple") != a {
		t.Fatal("re-interning changed the id")
	}
	if l.Size() != 2 {
		t.Fatalf("size = %d, want 2", l.Size())
	}
}

func TestLookupUnknown(t *testing.T) {
	l := New()
	l.Intern("x")
	if l.Lookup("x") == InvalidTerm {
		t.Error("known term not found")
	}
	if l.Lookup("y") != InvalidTerm {
		t.Error("unknown term found")
	}
}

func TestNameRoundTrip(t *testing.T) {
	l := New()
	terms := []string{"alpha", "beta", "gamma", ""}
	for _, s := range terms {
		id := l.Intern(s)
		if l.Name(id) != s {
			t.Errorf("Name(Intern(%q)) = %q", s, l.Name(id))
		}
	}
}

func TestRecordAccumulates(t *testing.T) {
	l := New()
	id := l.Intern("term")
	if err := l.Record(id, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(id, 5); err != nil {
		t.Fatal(err)
	}
	s := l.Stats(id)
	if s.DocFreq != 2 {
		t.Errorf("DocFreq = %d, want 2", s.DocFreq)
	}
	if s.CollFreq != 8 {
		t.Errorf("CollFreq = %d, want 8", s.CollFreq)
	}
}

func TestRecordValidation(t *testing.T) {
	l := New()
	id := l.Intern("t")
	if err := l.Record(id, 0); err == nil {
		t.Error("tf=0 accepted")
	}
	if err := l.Record(TermID(99), 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTermsByDocFreqOrdering(t *testing.T) {
	l := New()
	// Create terms with known doc freqs: term i appears in i+1 documents.
	const n = 10
	ids := make([]TermID, n)
	for i := 0; i < n; i++ {
		ids[i] = l.Intern(fmt.Sprintf("t%d", i))
		for d := 0; d <= i; d++ {
			if err := l.Record(ids[i], 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	sorted := l.TermsByDocFreq()
	if len(sorted) != n {
		t.Fatalf("got %d ids", len(sorted))
	}
	for i := 1; i < n; i++ {
		if l.DocFreq(sorted[i]) > l.DocFreq(sorted[i-1]) {
			t.Fatal("not sorted by descending doc freq")
		}
	}
	if sorted[0] != ids[n-1] || sorted[n-1] != ids[0] {
		t.Error("extremes misplaced")
	}
}

func TestTermsByDocFreqTieBreak(t *testing.T) {
	l := New()
	a := l.Intern("a")
	b := l.Intern("b")
	l.Record(a, 1)
	l.Record(b, 1)
	sorted := l.TermsByDocFreq()
	if sorted[0] != a || sorted[1] != b {
		t.Error("ties must break by ascending id for determinism")
	}
}

func TestTotalPostings(t *testing.T) {
	l := New()
	a := l.Intern("a")
	b := l.Intern("b")
	l.Record(a, 10)
	l.Record(a, 1)
	l.Record(b, 2)
	if got := l.TotalPostings(); got != 3 {
		t.Errorf("TotalPostings = %d, want 3 (postings, not occurrences)", got)
	}
}

func TestDocFreqsVector(t *testing.T) {
	l := New()
	a := l.Intern("a")
	l.Intern("b") // never recorded
	l.Record(a, 1)
	l.Record(a, 1)
	dfs := l.DocFreqs()
	if len(dfs) != 2 || dfs[0] != 2 || dfs[1] != 0 {
		t.Errorf("DocFreqs = %v, want [2 0]", dfs)
	}
}

func TestInternProperty(t *testing.T) {
	// Ids are dense, stable, and name-reversible for any term multiset.
	if err := quick.Check(func(terms []string) bool {
		l := New()
		seen := map[string]TermID{}
		for _, s := range terms {
			id := l.Intern(s)
			if prev, ok := seen[s]; ok && prev != id {
				return false
			}
			seen[s] = id
			if l.Name(id) != s {
				return false
			}
		}
		return l.Size() == len(seen)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
