// Package lexicon maintains the term dictionary of an index: the mapping
// between term strings and dense integer term ids, together with the
// per-term statistics (document frequency, collection frequency) that both
// the ranking formulas and the fragmentation decision in Step 1 of the
// paper depend on.
package lexicon

import (
	"fmt"
	"sort"
)

// TermID is a dense identifier assigned to terms in insertion order.
type TermID uint32

// InvalidTerm is returned by Lookup for unknown terms.
const InvalidTerm TermID = ^TermID(0)

// Stats holds the corpus statistics of one term.
type Stats struct {
	DocFreq  int32 // number of documents containing the term
	CollFreq int64 // total number of occurrences across the collection
}

// Lexicon is the term dictionary. It is built once during indexing and
// read-only afterwards; it is not safe for concurrent mutation.
type Lexicon struct {
	byName map[string]TermID
	names  []string
	stats  []Stats
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{byName: make(map[string]TermID)}
}

// Intern returns the id for term, assigning a fresh one on first sight.
func (l *Lexicon) Intern(term string) TermID {
	if id, ok := l.byName[term]; ok {
		return id
	}
	id := TermID(len(l.names))
	l.byName[term] = id
	l.names = append(l.names, term)
	l.stats = append(l.stats, Stats{})
	return id
}

// Restore rebuilds a lexicon from persisted names and per-term
// statistics, in term-id order: names[i] becomes TermID(i). It is the
// inverse of walking Name/Stats over [0, Size()) — the segment reader
// uses it to reopen an on-disk index without replaying the collection.
func Restore(names []string, stats []Stats) (*Lexicon, error) {
	if len(names) != len(stats) {
		return nil, fmt.Errorf("lexicon: %d names but %d stat records", len(names), len(stats))
	}
	l := New()
	for i, name := range names {
		if id := l.Intern(name); int(id) != i {
			return nil, fmt.Errorf("lexicon: duplicate term %q at ids %d and %d", name, id, i)
		}
		l.stats[i] = stats[i]
	}
	return l, nil
}

// Clone returns an independent copy of the lexicon: the name strings are
// shared (they are immutable), the statistics and the name→id map are
// copied. A live index freezes one clone per generation so searches read
// a consistent statistics snapshot while the master lexicon keeps
// absorbing writes; term ids are assigned append-only, so every clone
// agrees with every later clone on the ids it knows.
func (l *Lexicon) Clone() *Lexicon {
	cp := &Lexicon{
		byName: make(map[string]TermID, len(l.byName)),
		names:  append([]string(nil), l.names...),
		stats:  append([]Stats(nil), l.stats...),
	}
	for name, id := range l.byName {
		cp.byName[name] = id
	}
	return cp
}

// Lookup returns the id for term, or InvalidTerm when absent.
func (l *Lexicon) Lookup(term string) TermID {
	if id, ok := l.byName[term]; ok {
		return id
	}
	return InvalidTerm
}

// Name returns the string of a term id. It panics on an invalid id, which
// always indicates a programming error rather than bad input.
func (l *Lexicon) Name(id TermID) string { return l.names[id] }

// Size returns the number of distinct terms.
func (l *Lexicon) Size() int { return len(l.names) }

// Record adds one document's worth of occurrences for a term: docFreq is
// incremented by one, collFreq by tf.
func (l *Lexicon) Record(id TermID, tf int) error {
	if int(id) >= len(l.stats) {
		return fmt.Errorf("lexicon: unknown term id %d", id)
	}
	if tf <= 0 {
		return fmt.Errorf("lexicon: non-positive tf %d for term %d", tf, id)
	}
	l.stats[id].DocFreq++
	l.stats[id].CollFreq += int64(tf)
	return nil
}

// Subtract removes previously recorded statistics for a term — the
// delete path's inverse of Record. Underflow means the caller is
// subtracting occurrences that were never recorded (a corrupt tombstone
// ledger), so it fails instead of leaving negative frequencies for the
// ranking formulas to divide by.
func (l *Lexicon) Subtract(id TermID, s Stats) error {
	if int(id) >= len(l.stats) {
		return fmt.Errorf("lexicon: unknown term id %d", id)
	}
	if s.DocFreq < 0 || s.CollFreq < 0 {
		return fmt.Errorf("lexicon: negative subtraction for term %d", id)
	}
	st := &l.stats[id]
	if st.DocFreq < s.DocFreq || st.CollFreq < s.CollFreq {
		return fmt.Errorf("lexicon: term %d statistics underflow (have df=%d cf=%d, subtracting df=%d cf=%d)",
			id, st.DocFreq, st.CollFreq, s.DocFreq, s.CollFreq)
	}
	st.DocFreq -= s.DocFreq
	st.CollFreq -= s.CollFreq
	return nil
}

// Unrecord removes one document's worth of occurrences for a term — the
// exact inverse of Record, used when a buffered (never-sealed) document
// is deleted before it reaches a snapshot.
func (l *Lexicon) Unrecord(id TermID, tf int) error {
	if tf <= 0 {
		return fmt.Errorf("lexicon: non-positive tf %d for term %d", tf, id)
	}
	return l.Subtract(id, Stats{DocFreq: 1, CollFreq: int64(tf)})
}

// Stats returns the statistics of a term id.
func (l *Lexicon) Stats(id TermID) Stats { return l.stats[id] }

// DocFreq is a convenience accessor for the document frequency of id.
func (l *Lexicon) DocFreq(id TermID) int { return int(l.stats[id].DocFreq) }

// TotalPostings returns the sum of document frequencies over all terms —
// the total number of postings an unfragmented index stores. Fragment
// size fractions in the experiments are computed against this.
func (l *Lexicon) TotalPostings() int64 {
	var total int64
	for _, s := range l.stats {
		total += int64(s.DocFreq)
	}
	return total
}

// TermsByDocFreq returns all term ids sorted by descending document
// frequency (ties broken by id for determinism). This ordering defines the
// paper's fragmentation split: the head of the slice is the frequent,
// "uninteresting" terms that dominate storage; the tail is the rare,
// high-information terms the small fragment keeps.
func (l *Lexicon) TermsByDocFreq() []TermID {
	ids := make([]TermID, len(l.stats))
	for i := range ids {
		ids[i] = TermID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := l.stats[ids[a]].DocFreq, l.stats[ids[b]].DocFreq
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// DocFreqs returns the document frequency of every term, indexed by term
// id. The Zipf-fit verification in the harness consumes this.
func (l *Lexicon) DocFreqs() []int {
	out := make([]int, len(l.stats))
	for i, s := range l.stats {
		out[i] = int(s.DocFreq)
	}
	return out
}
