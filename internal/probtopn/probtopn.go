// Package probtopn implements Donjerkovic & Ramakrishnan's probabilistic
// top-N optimization (TR-1395, U. Wisconsin-Madison, 1999), the second
// database-side baseline in the paper's State of the Art.
//
// The idea: instead of sorting everything to find the top n, derive a
// score cutoff κ from a histogram such that, with high probability, at
// least n rows score at or above κ. Evaluate the cheap predicate
// "score >= κ" first and only rank the survivors. Choosing κ trades
// expected work against restart probability: an aggressive (high) κ ranks
// few rows but risks finding fewer than n and having to restart with a
// lower cutoff; a timid κ never restarts but saves little. The inflation
// parameter makes this trade-off explicit, and experiment E8 sweeps it.
package probtopn

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/rank"
	"repro/internal/topk"
)

// Result carries the answer rows (descending score) and work counters.
type Result struct {
	Rows    []exec.Row
	Stats   exec.Stats
	Cutoffs []float64 // the κ values tried, in order
}

// TopN evaluates a probabilistic top-N over an unsorted table. hist must
// summarize the table's score distribution (in a DBMS it would be the
// maintained column statistics). inflation >= 1 widens the candidate set
// beyond the bare estimate.
func TopN(table []exec.Row, n int, hist *cost.Histogram, inflation float64) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("probtopn: n = %d must be positive", n)
	}
	if hist == nil {
		return Result{}, fmt.Errorf("probtopn: histogram required")
	}
	if inflation < 1 {
		return Result{}, fmt.Errorf("probtopn: inflation %v must be >= 1", inflation)
	}
	var res Result
	if len(table) == 0 {
		return res, nil
	}
	kappa := hist.CutoffForTopN(n, inflation)
	for {
		res.Cutoffs = append(res.Cutoffs, kappa)
		plan := exec.NewStopAfter(
			exec.NewFilter(exec.NewScan(table, &res.Stats),
				func(r exec.Row) bool { return r.Score >= kappa }, &res.Stats),
			n, &res.Stats)
		rows, err := exec.Drain(plan)
		if err != nil {
			return Result{}, err
		}
		// Success: any excluded row scores below κ and therefore below
		// every returned row, so the n survivors are the global top n.
		if len(rows) >= n || math.IsInf(kappa, -1) {
			res.Rows = rows
			return res, nil
		}
		res.Stats.Restarts++
		kappa = retreat(hist, n, &inflation, kappa)
	}
}

// retreat lowers the cutoff one confidence notch: double the required
// candidate mass; once the histogram is exhausted (which can happen when
// its statistics are stale and no longer reflect the data), fall back to
// the unbounded query, which always terminates.
func retreat(hist *cost.Histogram, n int, inflation *float64, kappa float64) float64 {
	if kappa <= hist.Min() {
		return math.Inf(-1)
	}
	*inflation *= 2
	next := hist.CutoffForTopN(n, *inflation)
	if next >= kappa {
		next = hist.Min()
	}
	return next
}

// TopNIndexed is the variant with a B-tree-style score index available: the
// table is pre-sorted descending by score, so evaluating "score >= κ" is a
// prefix read and no full scan happens. This is the configuration where
// the original paper reports its largest wins. sortedDesc must be in
// non-increasing score order.
func TopNIndexed(sortedDesc []exec.Row, n int, hist *cost.Histogram, inflation float64) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("probtopn: n = %d must be positive", n)
	}
	if hist == nil {
		return Result{}, fmt.Errorf("probtopn: histogram required")
	}
	if inflation < 1 {
		return Result{}, fmt.Errorf("probtopn: inflation %v must be >= 1", inflation)
	}
	var res Result
	if len(sortedDesc) == 0 {
		return res, nil
	}
	kappa := hist.CutoffForTopN(n, inflation)
	for {
		res.Cutoffs = append(res.Cutoffs, kappa)
		// Prefix read: rows with score >= κ.
		count := 0
		for count < len(sortedDesc) && sortedDesc[count].Score >= kappa {
			count++
		}
		res.Stats.RowsScanned += int64(count)
		if count >= n || count == len(sortedDesc) || math.IsInf(kappa, -1) {
			rows := append([]exec.Row(nil), sortedDesc[:count]...)
			if len(rows) > n {
				rows = rows[:n]
			}
			res.Rows = rows
			return res, nil
		}
		res.Stats.Restarts++
		kappa = retreat(hist, n, &inflation, kappa)
	}
}

// Reference is the unoptimized answer: rank the whole table.
func Reference(table []exec.Row, n int) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("probtopn: n = %d must be positive", n)
	}
	var res Result
	h, err := topk.NewHeap(n)
	if err != nil {
		return Result{}, err
	}
	byID := make(map[uint32]exec.Row, n)
	for _, r := range table {
		res.Stats.RowsScanned++
		res.Stats.Comparisons++
		if h.Offer(rank.DocScore{DocID: r.ID, Score: r.Score}) {
			byID[r.ID] = r
		}
	}
	for _, ds := range h.Results() {
		res.Rows = append(res.Rows, byID[ds.DocID])
	}
	return res, nil
}
