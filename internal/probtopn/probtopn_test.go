package probtopn

import (
	"sort"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/xrand"
)

func table(n int, seed uint64) ([]exec.Row, *cost.Histogram) {
	rng := xrand.New(seed)
	rows := make([]exec.Row, n)
	scores := make([]float64, n)
	for i := range rows {
		s := rng.Float64()
		rows[i] = exec.Row{ID: uint32(i), Score: s}
		scores[i] = s
	}
	h, err := cost.BuildHistogram(scores, 64)
	if err != nil {
		panic(err)
	}
	return rows, h
}

func sortedCopy(rows []exec.Row) []exec.Row {
	out := append([]exec.Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func assertSameIDs(t *testing.T, name string, got, want []exec.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: position %d is %d, want %d", name, i, got[i].ID, want[i].ID)
		}
	}
}

func TestMatchesReference(t *testing.T) {
	rows, h := table(5000, 3)
	for _, n := range []int{1, 10, 100} {
		for _, inflation := range []float64{1, 1.5, 3} {
			ref, err := Reference(rows, n)
			if err != nil {
				t.Fatal(err)
			}
			got, err := TopN(rows, n, h, inflation)
			if err != nil {
				t.Fatal(err)
			}
			assertSameIDs(t, "scan", got.Rows, ref.Rows)
			idx, err := TopNIndexed(sortedCopy(rows), n, h, inflation)
			if err != nil {
				t.Fatal(err)
			}
			assertSameIDs(t, "indexed", idx.Rows, ref.Rows)
		}
	}
}

func TestCutoffReducesRankingWork(t *testing.T) {
	rows, h := table(50000, 5)
	ref, _ := Reference(rows, 10)
	got, err := TopN(rows, 10, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The scan variant still reads the table once, but the ranking heap
	// only sees the survivors.
	if got.Stats.Comparisons*100 > ref.Stats.Comparisons {
		t.Errorf("heap comparisons %d vs reference %d: cutoff should shrink ranking work ~1000x",
			got.Stats.Comparisons, ref.Stats.Comparisons)
	}
}

func TestIndexedReadsPrefixOnly(t *testing.T) {
	rows, h := table(50000, 7)
	srt := sortedCopy(rows)
	got, err := TopNIndexed(srt, 10, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.RowsScanned > 2000 {
		t.Errorf("indexed variant read %d rows of 50000", got.Stats.RowsScanned)
	}
	if got.Stats.Restarts > 0 {
		t.Errorf("restarted %d times with inflation 2", got.Stats.Restarts)
	}
}

func TestAggressiveCutoffRestarts(t *testing.T) {
	// Force restarts by lying to the algorithm with a histogram over a
	// different (higher-scoring) distribution: the cutoff lands too high.
	rng := xrand.New(11)
	rows := make([]exec.Row, 10000)
	for i := range rows {
		rows[i] = exec.Row{ID: uint32(i), Score: rng.Float64() * 0.5} // true scores in [0, 0.5)
	}
	fake := make([]float64, 10000)
	for i := range fake {
		fake[i] = 0.5 + rng.Float64()*0.5 // histogram believes [0.5, 1)
	}
	h, _ := cost.BuildHistogram(fake, 32)
	got, err := TopN(rows, 50, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Restarts == 0 {
		t.Error("no restarts despite a misleading histogram")
	}
	ref, _ := Reference(rows, 50)
	assertSameIDs(t, "after-restarts", got.Rows, ref.Rows)
	if len(got.Cutoffs) < 2 {
		t.Errorf("cutoff history %v should show the retreat", got.Cutoffs)
	}
}

func TestInflationTradeoff(t *testing.T) {
	// Higher inflation → more candidates scanned per attempt but fewer
	// restarts. Verify both directions on the indexed variant, averaged
	// over queries.
	rows, h := table(20000, 13)
	srt := sortedCopy(rows)
	timid, err := TopNIndexed(srt, 100, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := TopNIndexed(srt, 100, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if timid.Stats.Restarts > bare.Stats.Restarts {
		t.Errorf("inflation 4 restarted more (%d) than inflation 1 (%d)",
			timid.Stats.Restarts, bare.Stats.Restarts)
	}
	if bare.Stats.Restarts == 0 && timid.Stats.RowsScanned < bare.Stats.RowsScanned {
		t.Errorf("with no restarts anywhere, higher inflation cannot scan less (%d < %d)",
			timid.Stats.RowsScanned, bare.Stats.RowsScanned)
	}
}

func TestValidation(t *testing.T) {
	rows, h := table(10, 1)
	if _, err := TopN(rows, 0, h, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := TopN(rows, 5, nil, 1); err == nil {
		t.Error("nil histogram accepted")
	}
	if _, err := TopN(rows, 5, h, 0.5); err == nil {
		t.Error("inflation < 1 accepted")
	}
	if _, err := TopNIndexed(rows, 0, h, 1); err == nil {
		t.Error("indexed n=0 accepted")
	}
	if _, err := Reference(rows, 0); err == nil {
		t.Error("reference n=0 accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	_, h := table(10, 1)
	res, err := TopN(nil, 5, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("rows from empty table")
	}
	res, err = TopNIndexed(nil, 5, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Error("rows from empty sorted table")
	}
}

func TestNLargerThanTable(t *testing.T) {
	rows, h := table(20, 9)
	got, err := TopN(rows, 100, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 20 {
		t.Errorf("returned %d rows, want all 20", len(got.Rows))
	}
	idx, err := TopNIndexed(sortedCopy(rows), 100, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Rows) != 20 {
		t.Errorf("indexed returned %d rows, want all 20", len(idx.Rows))
	}
}
