// Package rank implements the additive ranking models used by the
// reproduction: TF-IDF, Okapi BM25, and the Hiemstra language model that
// the paper's group used in the mi:Ror system at TREC.
//
// All three models share the structure that top-N optimization exploits:
// a document's score for a query is the sum over query terms of a
// per-(term, document) contribution that is monotone in the within-
// document term frequency and bounded above by a term-level constant. The
// bound is what makes Fagin-style upper/lower bound administration and the
// paper's safe fragment-switch check possible: skipping a term forfeits at
// most UpperBound(term) score per document.
package rank

import (
	"fmt"
	"math"
	"sort"
)

// TermStat carries the corpus statistics of one term, as maintained by the
// lexicon.
type TermStat struct {
	DocFreq  int   // documents containing the term
	CollFreq int64 // total occurrences in the collection
}

// CorpusStat carries collection-level statistics.
type CorpusStat struct {
	NumDocs     int
	AvgDocLen   float64
	TotalTokens int64
}

// Scorer computes the contribution of a single query term to a single
// document's score. Implementations must be additive across query terms,
// monotone non-decreasing in tf, and bounded by UpperBound.
type Scorer interface {
	// Name identifies the model in experiment output.
	Name() string
	// Score returns the contribution of a term occurring tf times in a
	// document of length docLen.
	Score(tf, docLen int32, t TermStat, c CorpusStat) float64
	// UpperBound returns the maximum possible Score over all valid
	// (tf, docLen) pairs. Used for bound administration.
	UpperBound(t TermStat, c CorpusStat) float64
}

// TFIDF is the classic vector-space weighting: relative term frequency
// scaled by inverse document frequency.
type TFIDF struct{}

// Name implements Scorer.
func (TFIDF) Name() string { return "tfidf" }

// Score implements Scorer: (tf/docLen) · ln(1 + N/df).
func (TFIDF) Score(tf, docLen int32, t TermStat, c CorpusStat) float64 {
	if tf <= 0 || docLen <= 0 || t.DocFreq <= 0 {
		return 0
	}
	return float64(tf) / float64(docLen) * math.Log(1+float64(c.NumDocs)/float64(t.DocFreq))
}

// TFBoundedScorer is implemented by scorers whose per-term bound
// tightens when the maximum within-document term frequency over some
// posting range (a block, or a whole list) is known. The postings layer
// records that maximum per block, which is what turns a term-level
// MaxScore bound into a Block-Max bound: same answer, tighter pruning.
type TFBoundedScorer interface {
	Scorer
	// UpperBoundTF returns the maximum possible Score over documents
	// whose term frequency is at most maxTF. It must never exceed
	// UpperBound and must be monotone non-decreasing in maxTF.
	UpperBoundTF(maxTF int32, t TermStat, c CorpusStat) float64
}

// UpperBoundTF returns the tightest available bound for a term whose
// frequency is known to be at most maxTF: the scorer's TF-bounded bound
// when it implements TFBoundedScorer, its plain UpperBound otherwise.
// Ratio-form scorers (TFIDF, LM) peak at tf == docLen regardless of the
// absolute frequency, so for them the plain bound is already tight and
// they deliberately do not implement the refinement.
func UpperBoundTF(s Scorer, maxTF int32, t TermStat, c CorpusStat) float64 {
	if b, ok := s.(TFBoundedScorer); ok {
		return b.UpperBoundTF(maxTF, t, c)
	}
	return s.UpperBound(t, c)
}

// UpperBound implements Scorer: attained when the document consists solely
// of the term (tf == docLen).
func (TFIDF) UpperBound(t TermStat, c CorpusStat) float64 {
	if t.DocFreq <= 0 {
		return 0
	}
	return math.Log(1 + float64(c.NumDocs)/float64(t.DocFreq))
}

// BM25 is the Okapi probabilistic weighting with the usual saturation and
// length-normalization parameters.
type BM25 struct {
	K1 float64 // tf saturation; typical 1.2
	B  float64 // length normalization; typical 0.75
}

// NewBM25 returns a BM25 scorer with the standard parameters k1=1.2, b=0.75.
func NewBM25() BM25 { return BM25{K1: 1.2, B: 0.75} }

// Name implements Scorer.
func (s BM25) Name() string { return fmt.Sprintf("bm25(k1=%.2g,b=%.2g)", s.K1, s.B) }

func (s BM25) idf(t TermStat, c CorpusStat) float64 {
	if t.DocFreq <= 0 {
		return 0
	}
	// The non-negative "plus one" IDF variant, so contributions are
	// monotone and bounded as Scorer requires even for df > N/2.
	return math.Log(1 + (float64(c.NumDocs)-float64(t.DocFreq)+0.5)/(float64(t.DocFreq)+0.5))
}

// Score implements Scorer.
func (s BM25) Score(tf, docLen int32, t TermStat, c CorpusStat) float64 {
	if tf <= 0 || t.DocFreq <= 0 {
		return 0
	}
	norm := 1 - s.B + s.B*float64(docLen)/c.AvgDocLen
	ftf := float64(tf)
	return s.idf(t, c) * ftf * (s.K1 + 1) / (ftf + s.K1*norm)
}

// UpperBound implements Scorer: the tf term saturates at (k1+1) as tf→∞
// and the length norm is bounded below by (1-b), so the supremum is
// idf·(k1+1)·1/(1·...) — conservatively idf·(k1+1).
func (s BM25) UpperBound(t TermStat, c CorpusStat) float64 {
	return s.idf(t, c) * (s.K1 + 1)
}

// UpperBoundTF implements TFBoundedScorer. The tf factor
// tf·(k1+1)/(tf+k1·norm) is increasing in tf and decreasing in norm, so
// with tf ≤ maxTF and norm ≥ 1-b the supremum is
// idf·(k1+1)·maxTF/(maxTF+k1·(1-b)) — strictly below the saturation
// bound whenever maxTF is finite, which is what makes per-block max-TF
// metadata worth storing.
func (s BM25) UpperBoundTF(maxTF int32, t TermStat, c CorpusStat) float64 {
	if maxTF <= 0 {
		return 0
	}
	ftf := float64(maxTF)
	return s.idf(t, c) * ftf * (s.K1 + 1) / (ftf + s.K1*(1-s.B))
}

// LM is Hiemstra's linearly interpolated language model, the ranking
// formula of the mi:Ror system referenced by the paper ([VH99]). The score
// of a term is log(1 + (λ·tf·T)/((1-λ)·cf·docLen)), summed over matching
// query terms; documents not containing any query term score zero,
// matching the implementation trick that makes LM usable with inverted
// files.
type LM struct {
	Lambda float64 // interpolation weight of the document model; typical 0.15
}

// NewLM returns an LM scorer with the standard λ = 0.15.
func NewLM() LM { return LM{Lambda: 0.15} }

// Name implements Scorer.
func (s LM) Name() string { return fmt.Sprintf("lm(lambda=%.2g)", s.Lambda) }

// Score implements Scorer.
func (s LM) Score(tf, docLen int32, t TermStat, c CorpusStat) float64 {
	if tf <= 0 || docLen <= 0 || t.CollFreq <= 0 || c.TotalTokens <= 0 {
		return 0
	}
	ratio := (s.Lambda * float64(tf) * float64(c.TotalTokens)) /
		((1 - s.Lambda) * float64(t.CollFreq) * float64(docLen))
	return math.Log(1 + ratio)
}

// UpperBound implements Scorer: maximized at tf == docLen.
func (s LM) UpperBound(t TermStat, c CorpusStat) float64 {
	if t.CollFreq <= 0 || c.TotalTokens <= 0 {
		return 0
	}
	ratio := (s.Lambda * float64(c.TotalTokens)) / ((1 - s.Lambda) * float64(t.CollFreq))
	return math.Log(1 + ratio)
}

// DocScore pairs a document with its accumulated score.
type DocScore struct {
	DocID uint32
	Score float64
}

// SortByScore orders descending by score, breaking ties by ascending
// document id so rankings are deterministic.
func SortByScore(ds []DocScore) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Score != ds[j].Score {
			return ds[i].Score > ds[j].Score
		}
		return ds[i].DocID < ds[j].DocID
	})
}

// Less reports whether a ranks strictly after b (lower score, or equal
// score with higher doc id) — the comparator shared by every top-N
// structure in the repository so all algorithms agree on ranking order.
func Less(a, b DocScore) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.DocID > b.DocID
}

// Accumulator gathers per-document partial scores during term-at-a-time
// evaluation. It is a dense array with an explicit touched list, which is
// both faster than a map at IR scales and gives deterministic iteration.
type Accumulator struct {
	scores  []float64
	touched []uint32
	seen    []bool
}

// NewAccumulator returns an accumulator sized for numDocs documents.
func NewAccumulator(numDocs int) *Accumulator {
	return &Accumulator{
		scores: make([]float64, numDocs),
		seen:   make([]bool, numDocs),
	}
}

// Add accumulates delta onto doc's score.
func (a *Accumulator) Add(doc uint32, delta float64) {
	if !a.seen[doc] {
		a.seen[doc] = true
		a.touched = append(a.touched, doc)
	}
	a.scores[doc] += delta
}

// Get returns doc's accumulated score.
func (a *Accumulator) Get(doc uint32) float64 { return a.scores[doc] }

// Touched returns the number of documents with a non-zero accumulator —
// the "objects taken into consideration" the paper wants to minimize.
func (a *Accumulator) Touched() int { return len(a.touched) }

// Results returns all touched documents with their scores, sorted by
// descending score (ties by ascending id).
func (a *Accumulator) Results() []DocScore {
	out := make([]DocScore, 0, len(a.touched))
	for _, doc := range a.touched {
		out = append(out, DocScore{DocID: doc, Score: a.scores[doc]})
	}
	SortByScore(out)
	return out
}

// Each calls f for every touched document with its accumulated score,
// in touch order. It is the allocation-free alternative to Results for
// callers (bounded heaps) that do their own selection.
func (a *Accumulator) Each(f func(doc uint32, score float64)) {
	for _, doc := range a.touched {
		f(doc, a.scores[doc])
	}
}

// AppendTouched appends the touched document ids to dst in touch order
// and returns the extended slice.
func (a *Accumulator) AppendTouched(dst []uint32) []uint32 {
	return append(dst, a.touched...)
}

// Reset clears the accumulator for reuse without reallocating.
func (a *Accumulator) Reset() {
	for _, doc := range a.touched {
		a.scores[doc] = 0
		a.seen[doc] = false
	}
	a.touched = a.touched[:0]
}
