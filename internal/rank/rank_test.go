package rank

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

var testCorpus = CorpusStat{NumDocs: 10000, AvgDocLen: 300, TotalTokens: 3_000_000}

func allScorers() []Scorer {
	return []Scorer{TFIDF{}, NewBM25(), NewLM()}
}

func TestScoreZeroCases(t *testing.T) {
	ts := TermStat{DocFreq: 100, CollFreq: 500}
	for _, s := range allScorers() {
		if got := s.Score(0, 300, ts, testCorpus); got != 0 {
			t.Errorf("%s: tf=0 scored %v", s.Name(), got)
		}
		if got := s.Score(5, 300, TermStat{}, testCorpus); got != 0 {
			t.Errorf("%s: empty term stat scored %v", s.Name(), got)
		}
	}
}

func TestScorePositive(t *testing.T) {
	ts := TermStat{DocFreq: 100, CollFreq: 500}
	for _, s := range allScorers() {
		if got := s.Score(3, 300, ts, testCorpus); got <= 0 {
			t.Errorf("%s: positive match scored %v", s.Name(), got)
		}
	}
}

func TestScoreMonotoneInTF(t *testing.T) {
	ts := TermStat{DocFreq: 100, CollFreq: 2000}
	for _, s := range allScorers() {
		prev := 0.0
		for tf := int32(1); tf <= 50; tf++ {
			cur := s.Score(tf, 300, ts, testCorpus)
			if cur < prev {
				t.Errorf("%s: score decreased at tf=%d", s.Name(), tf)
			}
			prev = cur
		}
	}
}

func TestRareTermsScoreHigher(t *testing.T) {
	// The foundation of the paper's fragmentation: rare terms carry more
	// weight per occurrence than frequent ones.
	rare := TermStat{DocFreq: 5, CollFreq: 10}
	freq := TermStat{DocFreq: 5000, CollFreq: 200000}
	for _, s := range allScorers() {
		r := s.Score(2, 300, rare, testCorpus)
		f := s.Score(2, 300, freq, testCorpus)
		if r <= f {
			t.Errorf("%s: rare term %v <= frequent term %v", s.Name(), r, f)
		}
	}
}

// TestUpperBoundHolds is the key property for bound administration: no
// achievable (tf, docLen) combination may exceed UpperBound.
func TestUpperBoundHolds(t *testing.T) {
	rng := xrand.New(17)
	for _, s := range allScorers() {
		for trial := 0; trial < 5000; trial++ {
			df := 1 + rng.Intn(testCorpus.NumDocs)
			cf := int64(df) + int64(rng.Intn(1000))*int64(df)/10
			ts := TermStat{DocFreq: df, CollFreq: cf}
			docLen := int32(1 + rng.Intn(2000))
			tf := int32(1 + rng.Intn(int(docLen)))
			score := s.Score(tf, docLen, ts, testCorpus)
			bound := s.UpperBound(ts, testCorpus)
			if score > bound+1e-12 {
				t.Fatalf("%s: score %v exceeds bound %v (tf=%d dl=%d df=%d cf=%d)",
					s.Name(), score, bound, tf, docLen, df, cf)
			}
		}
	}
}

func TestUpperBoundTight(t *testing.T) {
	// For TFIDF and LM the bound is attained at tf == docLen; check the
	// bound is not wildly loose (within 1%).
	ts := TermStat{DocFreq: 50, CollFreq: 80}
	for _, s := range []Scorer{TFIDF{}, NewLM()} {
		best := s.Score(200, 200, ts, testCorpus)
		bound := s.UpperBound(ts, testCorpus)
		if bound > best*1.01 {
			t.Errorf("%s: bound %v much looser than attainable %v", s.Name(), bound, best)
		}
	}
}

func TestBM25Saturation(t *testing.T) {
	s := NewBM25()
	ts := TermStat{DocFreq: 100, CollFreq: 400}
	low := s.Score(1, 300, ts, testCorpus)
	high := s.Score(100, 300, ts, testCorpus)
	bound := s.UpperBound(ts, testCorpus)
	if high <= low {
		t.Error("BM25 not increasing")
	}
	if high >= bound {
		t.Error("BM25 must stay strictly under its saturation bound")
	}
	// Doubling tf from 50 to 100 must matter far less than 1 to 2
	// (diminishing returns).
	gain12 := s.Score(2, 300, ts, testCorpus) - s.Score(1, 300, ts, testCorpus)
	gain50 := s.Score(100, 300, ts, testCorpus) - s.Score(50, 300, ts, testCorpus)
	if gain50 >= gain12 {
		t.Error("BM25 saturation broken: late gains not smaller than early gains")
	}
}

func TestBM25LengthNormalization(t *testing.T) {
	s := NewBM25()
	ts := TermStat{DocFreq: 100, CollFreq: 400}
	short := s.Score(5, 100, ts, testCorpus)
	long := s.Score(5, 1000, ts, testCorpus)
	if short <= long {
		t.Error("same tf in a shorter document must score higher")
	}
}

func TestLMLambdaEffect(t *testing.T) {
	ts := TermStat{DocFreq: 100, CollFreq: 400}
	weak := LM{Lambda: 0.05}.Score(5, 300, ts, testCorpus)
	strong := LM{Lambda: 0.8}.Score(5, 300, ts, testCorpus)
	if weak >= strong {
		t.Error("higher lambda must weight document evidence more")
	}
}

func TestSortByScoreDeterministic(t *testing.T) {
	ds := []DocScore{{3, 1.0}, {1, 2.0}, {2, 1.0}, {0, 0.5}}
	SortByScore(ds)
	want := []DocScore{{1, 2.0}, {2, 1.0}, {3, 1.0}, {0, 0.5}}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, ds[i], want[i])
		}
	}
}

func TestLessTotalOrder(t *testing.T) {
	if err := quick.Check(func(aID, bID uint16, aS, bS float64) bool {
		a := DocScore{uint32(aID), aS}
		b := DocScore{uint32(bID), bS}
		if a == b {
			return !Less(a, b) && !Less(b, a)
		}
		// Antisymmetry for distinct values.
		return Less(a, b) != Less(b, a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessAgreesWithSort(t *testing.T) {
	ds := []DocScore{{3, 1.0}, {1, 2.0}, {2, 1.0}, {0, 0.5}, {9, 2.0}}
	SortByScore(ds)
	for i := 1; i < len(ds); i++ {
		if Less(ds[i-1], ds[i]) {
			t.Fatalf("sorted order violates Less at %d", i)
		}
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(100)
	a.Add(5, 1.5)
	a.Add(10, 0.5)
	a.Add(5, 1.0)
	if got := a.Get(5); got != 2.5 {
		t.Errorf("Get(5) = %v, want 2.5", got)
	}
	if a.Touched() != 2 {
		t.Errorf("Touched = %d, want 2", a.Touched())
	}
	res := a.Results()
	if len(res) != 2 || res[0].DocID != 5 || res[1].DocID != 10 {
		t.Errorf("Results = %v", res)
	}
	a.Reset()
	if a.Touched() != 0 || a.Get(5) != 0 {
		t.Error("Reset incomplete")
	}
	// Reuse after reset.
	a.Add(7, 3.0)
	if a.Touched() != 1 || a.Get(7) != 3.0 {
		t.Error("accumulator unusable after reset")
	}
}

func TestAccumulatorMatchesMap(t *testing.T) {
	rng := xrand.New(23)
	a := NewAccumulator(1000)
	ref := map[uint32]float64{}
	for i := 0; i < 5000; i++ {
		doc := uint32(rng.Intn(1000))
		delta := rng.Float64()
		a.Add(doc, delta)
		ref[doc] += delta
	}
	if a.Touched() != len(ref) {
		t.Fatalf("touched %d, want %d", a.Touched(), len(ref))
	}
	for doc, want := range ref {
		if got := a.Get(doc); math.Abs(got-want) > 1e-9 {
			t.Fatalf("doc %d: %v, want %v", doc, got, want)
		}
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	a := NewAccumulator(100000)
	rng := xrand.New(1)
	docs := make([]uint32, 4096)
	for i := range docs {
		docs[i] = uint32(rng.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(docs[i&4095], 1.0)
	}
}

func BenchmarkBM25Score(b *testing.B) {
	s := NewBM25()
	ts := TermStat{DocFreq: 1000, CollFreq: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(int32(i&15+1), 300, ts, testCorpus)
	}
}
