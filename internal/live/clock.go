package live

import "time"

// Clock abstracts the timer source of the writer's background flush
// loop, so seal-timer behavior is deterministically testable: tests
// inject a fake clock and fire ticks explicitly instead of sleeping.
type Clock interface {
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the minimal surface of time.Ticker the flush loop uses.
type Ticker interface {
	// Chan returns the channel ticks are delivered on.
	Chan() <-chan time.Time
	// Stop releases the ticker's resources.
	Stop()
}

// wallClock is the production Clock, backed by time.NewTicker.
type wallClock struct{}

func (wallClock) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) Chan() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()                  { w.t.Stop() }
