package live

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/blockcache"
	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/postings"
	"repro/internal/rank"
	"repro/internal/storage"
	"repro/internal/tune"
)

// Writer is the mutable front of a live index: it buffers incoming
// documents in memory, seals the buffer into immutable on-disk segments,
// and (with BackgroundMerge) compacts small segments in the background.
// All methods are safe for concurrent use; searches go through Acquire /
// Searcher and never block writes beyond the shared mutex's critical
// sections.
//
// Failure model: an error while sealing or merging poisons the writer
// (Err returns it, further writes fail) but never corrupts what is
// already committed — the manifest swap is atomic, so the on-disk index
// is always a consistent earlier state.
type Writer struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	// applyMu serializes ApplyManifest calls on a follower-mode writer
	// (see replication.go); held across the heavy open/validate work so
	// only the final commit needs mu.
	applyMu sync.Mutex

	lex *lexicon.Lexicon // master lexicon; guarded by mu
	// sealedSnap is the immutable snapshot of the most recent committed
	// seal (or of reopen): it covers *exactly* the sealed documents,
	// unlike the master, whose statistics already include buffered
	// ones. It is what merges persist into their output segment, so a
	// crash can never resurrect statistics of documents that were lost
	// with the buffer. sealedSnapID is its capture ordinal (snapID
	// counts captures); segments record the ordinal they persist, and
	// reopen restores the master from the max-ordinal segment.
	sealedSnap   *lexicon.Lexicon
	sealedSnapID uint64
	snapID       uint64
	scratch      map[lexicon.TermID]int32
	buf          []collection.Document // local ids 0..len-1; global id = base + local
	bufTokens    int64
	bufDead      int    // buffered documents deleted before sealing (id holes)
	base         uint32 // global id of buf[0] == documents sealed or sealing

	// deadStats is the tombstone ledger: the summed term statistics of
	// every sealed document that has been deleted, purged or not. The
	// persisted lexicon snapshots are purge-agnostic (they count every
	// document ever sealed), so subtracting this ledger from the frozen
	// snapshot at generation install yields statistics over exactly the
	// surviving documents — the invariant that keeps live results
	// byte-identical to a one-shot build over the survivors. On reopen
	// the ledger is rebuilt from the alive bitmaps plus the forward
	// sidecars, whose entries are retained even after a purge.
	deadStats map[lexicon.TermID]lexicon.Stats
	// tight is sealedSnap with the ledger already subtracted — the
	// statistics every generation ranks with. It is maintained
	// incrementally (rebuilt per seal, cloned-and-decremented per
	// delete) so a deletion commit costs one lexicon clone plus the
	// dead document's terms, not a replay of the whole ledger. Like
	// sealedSnap it is immutable once installed: generations share it.
	tight *lexicon.Lexicon

	seq   uint64 // next segment sequence number
	genID uint64
	segs  []*segment
	cur   *generation

	sealing        bool
	sealLo, sealHi uint32 // global id range of the in-flight seal's documents
	mergeBusy      bool
	closed         bool
	failed         error // sticky background failure

	docsAdded   int64
	docsDeleted int64
	seals       int64
	merges      int64

	// Physical maintenance work, accumulated at commit time: pages
	// written by seals, pages read/written and postings re-encoded by
	// merges and purges. The TUNE bench charges this account against the
	// query-side savings, so a policy cannot win by merging for free.
	sealPagesWritten  int64
	mergePagesRead    int64
	mergePagesWritten int64
	mergeReencoded    int64

	// fc is the fault-handling account, shared with snapshots (searches
	// quarantine segments and mark queries degraded without the writer
	// lock). See FaultStats.
	fc faultCounters

	// resCache memoizes whole query answers per generation; nil unless
	// Config.ResultCacheBytes is set. blockCache is the shared hot-block
	// cache every segment's postings store reads through; nil unless
	// Config.BlockCacheBytes is set. Both are safe for concurrent use
	// without the writer mutex.
	resCache   *resultCache
	blockCache *blockcache.Cache

	mergeKick chan struct{}
	stop      chan struct{}
	bgDone    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	// lockFile holds the flock on Dir for the writer's lifetime, so a
	// second process opening the same directory fails cleanly instead
	// of silently interleaving manifests and GC-ing the other's
	// segments. The kernel drops the lock on process death, so a crash
	// never wedges the directory. See lock_unix.go / lock_other.go.
	lockFile *os.File
}

// Open opens (or creates) the live index under cfg.Dir: it reads the
// manifest, garbage-collects stale segment directories, opens every
// listed segment through its own buffer pool, restores the master
// lexicon from the newest segment's persisted snapshot, and installs the
// initial searchable generation. Close the writer to release the
// segment files.
func Open(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("live: Config.Dir is required")
	}
	if cfg.Follower && (cfg.BackgroundMerge || cfg.FlushEvery > 0) {
		return nil, fmt.Errorf("live: follower mode is read-only: BackgroundMerge and FlushEvery do not apply")
	}
	// Negative knobs are rejected, not defaulted: fillDefaults only
	// replaces exact zeros, so a negative MergeHorizon would otherwise
	// pass through and make Worthwhile false forever — silently disabling
	// all background merging — and a negative PurgeDeadFrac would mark
	// every segment purge-eligible.
	if cfg.MergeHorizon < 0 {
		return nil, fmt.Errorf("live: Config.MergeHorizon must be >= 0, got %d", cfg.MergeHorizon)
	}
	if cfg.PurgeDeadFrac < 0 {
		return nil, fmt.Errorf("live: Config.PurgeDeadFrac must be >= 0, got %g", cfg.PurgeDeadFrac)
	}
	cfg.fillDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	m, err := readManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		// Fresh directory: establish the root of truth before GC, so a
		// half-copied directory of segments without a manifest reads as
		// empty rather than as garbage results.
		m = &manifest{Version: 1}
		if err := writeManifest(cfg.Dir, *m); err != nil {
			return nil, err
		}
	}
	if _, err := gcStale(cfg.Dir, m); err != nil {
		return nil, err
	}

	w := &Writer{
		cfg:       cfg,
		scratch:   make(map[lexicon.TermID]int32),
		deadStats: make(map[lexicon.TermID]lexicon.Stats),
		seq:       m.NextSeq,
		genID:     m.Generation,
		mergeKick: make(chan struct{}, 1),
		stop:      make(chan struct{}),
		lockFile:  lock,
	}
	w.cond = sync.NewCond(&w.mu)
	if cfg.ResultCacheBytes > 0 {
		w.resCache = newResultCache(cfg.ResultCacheBytes)
	}
	if cfg.BlockCacheBytes > 0 {
		w.blockCache = blockcache.New(cfg.BlockCacheBytes)
	}

	defer func() {
		if !ok {
			for _, s := range w.segs {
				s.release()
			}
		}
	}()
	var newest *segment
	for _, ms := range m.Segments {
		seg, err := openSegment(cfg, ms.Name, ms.Seq, ms.Snap, ms.Base, ms.Tomb, w.blockCache)
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, seg)
		if seg.docs != ms.Docs {
			return nil, fmt.Errorf("live: segment %s holds %d documents, manifest says %d (corrupt?)",
				ms.Name, seg.docs, ms.Docs)
		}
		if seg.aliveDocs != ms.Alive {
			return nil, fmt.Errorf("live: segment %s bitmap leaves %d documents alive, manifest says %d (corrupt?)",
				ms.Name, seg.aliveDocs, ms.Alive)
		}
		// Rebuild the tombstone ledger: every dead document with a
		// non-empty forward entry was sealed (its statistics live in the
		// persisted snapshots) and must be subtracted. Documents deleted
		// while buffered sealed as empty entries and never entered a
		// snapshot; purged documents keep their entries exactly so this
		// reconstruction stays possible after compaction.
		n, err := foldDeadStats(seg, seg.alive, w.deadStats)
		if err != nil {
			return nil, fmt.Errorf("live: segment %s: %w", ms.Name, err)
		}
		w.docsDeleted += n
		w.base += uint32(seg.docs)
		if newest == nil || seg.snap > newest.snap {
			newest = seg
		}
	}
	// The max-snapshot-ordinal segment's lexicon covers every sealed
	// document (every document's statistics are recorded before the
	// capture of the seal that sealed it, and captures are ordered by
	// ordinal), so it restores the master exactly. Buffered documents
	// lost in a crash left no statistics behind either — the reopened
	// state is self-consistent.
	if newest != nil {
		w.lex = newest.idx.Lex.Clone()
		w.snapID = newest.snap
	} else {
		w.lex = lexicon.New()
	}
	w.sealedSnap = w.lex.Clone() // buffer is empty: sealed == everything
	w.sealedSnapID = w.snapID
	if w.tight, err = tightenLexicon(w.sealedSnap, w.deadStats); err != nil {
		return nil, err
	}

	w.mu.Lock()
	err = w.installLocked()
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}

	if cfg.BackgroundMerge {
		w.bgDone.Add(1)
		go w.mergerLoop()
		w.kickMerger() // pre-existing segments may already warrant a merge
	}
	if cfg.FlushEvery > 0 {
		w.bgDone.Add(1)
		go w.flushLoop()
	}
	if cfg.ReverifyEvery > 0 {
		w.bgDone.Add(1)
		go w.reverifyLoop()
	}
	ok = true
	return w, nil
}

// Add accepts one document as a bag of term counts (duplicate terms are
// coalesced) and returns its global document id. Ids are assigned in
// arrival order. When the buffer trips a seal threshold, Add seals it
// synchronously before returning — the caller pays the seal, keeping
// ingestion self-throttling.
func (w *Writer) Add(terms []TermCount) (uint32, error) {
	if w.cfg.Follower {
		return 0, ErrReadOnly
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	doc, err := w.normalizeLocked(terms)
	if err != nil {
		w.mu.Unlock()
		return 0, err
	}
	global, need, err := w.recordLocked(doc)
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if need {
		if err := w.Flush(); err != nil {
			return global, err
		}
	}
	return global, nil
}

// normalizeLocked validates one incoming document and normalizes it
// into the buffer representation: duplicate terms coalesced, term ids
// interned against the master lexicon, ascending term order. It is the
// single validation path — Add and Update share it, so their document
// contracts cannot drift. Validation is all-or-nothing: nothing is
// recorded here, so a rejected document leaves no phantom
// DocFreq/CollFreq behind. (Intern alone is safe — a name without
// statistics is inert.)
func (w *Writer) normalizeLocked(terms []TermCount) (collection.Document, error) {
	var doc collection.Document
	if len(terms) == 0 {
		return doc, fmt.Errorf("live: empty document")
	}
	clear(w.scratch)
	var docLen int64
	for _, tc := range terms {
		if tc.TF <= 0 {
			return doc, fmt.Errorf("live: non-positive tf %d for term %q", tc.TF, tc.Term)
		}
		id := w.lex.Intern(tc.Term)
		if w.scratch[id] > math.MaxInt32-tc.TF {
			return doc, fmt.Errorf("live: term %q frequency overflows int32", tc.Term)
		}
		w.scratch[id] += tc.TF
		docLen += int64(tc.TF)
	}
	if docLen > math.MaxInt32 {
		return doc, fmt.Errorf("live: document length %d overflows int32", docLen)
	}
	doc.Terms = make([]collection.TermFreq, 0, len(w.scratch))
	for id, tf := range w.scratch {
		doc.Terms = append(doc.Terms, collection.TermFreq{Term: id, TF: tf})
		doc.Len += tf
	}
	sort.Slice(doc.Terms, func(a, b int) bool { return doc.Terms[a].Term < doc.Terms[b].Term })
	return doc, nil
}

// recordLocked appends a normalized document to the buffer, recording
// its statistics into the master lexicon and assigning its global id.
// need reports whether the buffer tripped a seal threshold (the caller
// runs Flush after unlocking).
func (w *Writer) recordLocked(doc collection.Document) (global uint32, need bool, err error) {
	doc.ID = uint32(len(w.buf))
	for _, tf := range doc.Terms {
		if err := w.lex.Record(tf.Term, int(tf.TF)); err != nil {
			return 0, false, err
		}
	}
	global = w.base + doc.ID
	w.buf = append(w.buf, doc)
	w.bufTokens += int64(doc.Len)
	w.docsAdded++
	// The seal threshold is the tuner's when one is attached (write-heavy
	// phases seal bigger segments, within the configured bounds); the
	// tuner takes only its own lock, so calling it under w.mu is safe.
	sealDocs := w.cfg.SealDocs
	if w.cfg.Tune != nil {
		w.cfg.Tune.ObserveWrite()
		sealDocs = w.cfg.Tune.SealDocs(sealDocs)
	}
	need = len(w.buf) >= sealDocs || w.bufTokens >= w.cfg.SealTokens
	return global, need, nil
}

// Flush seals the buffered documents into a new on-disk segment and
// commits it, making them searchable. A no-op on an empty buffer.
// Concurrent flushes serialize; writes proceed while the segment is
// being built (only the buffer capture holds the lock).
func (w *Writer) Flush() error {
	if w.cfg.Follower {
		return ErrReadOnly
	}
	w.mu.Lock()
	for w.sealing && !w.closed && w.failed == nil {
		w.cond.Wait()
	}
	if w.closed || w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	if len(w.buf) == 0 {
		w.mu.Unlock()
		return nil
	}
	docs := w.buf
	tokens := w.bufTokens
	w.buf = nil
	w.bufTokens = 0
	w.bufDead = 0
	segBase := w.base
	w.base += uint32(len(docs))
	// Publish the in-flight seal's id range: a Delete targeting one of
	// these documents waits until the seal commits (the document is in
	// neither the buffer nor any segment while the build runs).
	w.sealLo, w.sealHi = segBase, w.base
	// The snapshot is taken in the same critical section that drains the
	// buffer, so it covers exactly the documents sealed so far — the
	// invariant both the persisted segment lexicon and the committed
	// generation rely on (see commitLocked for why reusing it at commit
	// is sound even when merges interleave).
	frozen := w.lex.Clone()
	w.snapID++
	snap := w.snapID
	seq := w.seq
	w.seq++
	w.sealing = true
	w.mu.Unlock()

	var seg *segment
	err := w.crash(CrashSealBeforePersist)
	if err == nil {
		seg, err = buildSegment(w.cfg, docs, tokens, seq, snap, segBase, frozen, w.blockCache)
	}

	w.mu.Lock()
	w.sealing = false
	if err == nil {
		if cerr := w.crash(CrashSealBeforeCommit); cerr != nil {
			// Simulated death between persist and commit: close the built
			// segment's files but leave its directory — the uncommitted
			// orphan reopen's GC must reclaim.
			err = cerr
			seg.release()
		}
	}
	if err == nil {
		w.segs = append(w.segs, seg)
		w.seals++
		w.sealPagesWritten += (seg.bytes + storage.PageSize - 1) / storage.PageSize
		w.sealedSnap = frozen // newest exactly-sealed-docs snapshot
		w.sealedSnapID = snap
		// A new snapshot means a fresh tightened clone: the one full
		// ledger replay each seal pays, so deletions don't have to.
		w.tight, err = tightenLexicon(frozen, w.deadStats)
		if err == nil {
			err = w.commitLocked()
		}
		if err == nil {
			// Simulated death after the manifest swap: the seal is durable
			// and searchable on reopen; only the poisoned writer notices.
			err = w.crash(CrashSealAfterCommit)
		}
	}
	if err != nil && w.failed == nil {
		w.failed = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.kickMerger()
	return nil
}

// buildSegment builds the buffered documents into a block-max index,
// persists it as segment seq together with its forward sidecar (one
// term-list entry per document, empty for documents deleted while still
// buffered) and — when such deletions left holes — an alive bitmap, and
// reopens it through its own pool. A buffered document deleted before
// the seal is a Document with no terms: it keeps its id slot (a hole)
// but contributes no postings, no length, and no statistics anywhere.
func buildSegment(cfg Config, docs []collection.Document, tokens int64, seq, snap uint64, base uint32, frozen *lexicon.Lexicon, bc *blockcache.Cache) (*segment, error) {
	// The sealed segment reopens through a pool sized by the tuner when
	// one is attached (fault pressure earns more frames, within bounds).
	if cfg.Tune != nil {
		if v := cfg.Tune.PoolPages(cfg.PoolPages); v >= 8 {
			cfg.PoolPages = v
		}
	}
	sub := &collection.Collection{Docs: docs, Lex: frozen, TotalTokens: tokens}
	if len(docs) > 0 {
		sub.AvgDocLen = float64(tokens) / float64(len(docs))
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, fmt.Errorf("live: seal: %w", err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		return nil, fmt.Errorf("live: seal: %w", err)
	}
	name := segmentName(seq)
	dir := filepath.Join(cfg.Dir, name)
	cleanup := func(err error) (*segment, error) {
		// The persisted directory is not yet in the manifest; remove it so
		// it cannot linger as a stale orphan.
		if rerr := os.RemoveAll(dir); rerr != nil {
			cleanupLogf("live: removing abandoned seal output %s: %v (reopen GC will retry)", dir, rerr)
		}
		return nil, err
	}
	if err := idx.Persist(dir); err != nil {
		return cleanup(fmt.Errorf("live: seal: %w", err))
	}
	blobs := make([][]byte, len(docs))
	var bm *postings.AliveBitmap
	for i := range docs {
		if len(docs[i].Terms) == 0 {
			if bm == nil {
				bm = postings.NewAliveBitmap(len(docs))
			}
			bm.Kill(uint32(i))
			continue
		}
		blobs[i] = encodeDocEntry(docs[i].Terms)
	}
	if err := writeDocTerms(dir, blobs); err != nil {
		return cleanup(err)
	}
	var tomb uint64
	if bm != nil {
		tomb = 1
		if err := index.WriteAlive(filepath.Join(dir, aliveName(tomb)), bm); err != nil {
			return cleanup(err)
		}
	}
	seg, err := openSegment(cfg, name, seq, snap, base, tomb, bc)
	if err != nil {
		return cleanup(err)
	}
	return seg, nil
}

// commitLocked writes the manifest for the current chain and installs a
// new searchable generation ranking with w.tight — the current sealed
// snapshot with the tombstone ledger subtracted. The snapshot under it
// (sealedSnap) extends every segment's persisted lexicon: every segment
// in the chain persists either an earlier seal's snapshot or — for
// merges — the sealedSnap of a seal no later than the current one, and
// a seal committing during a merge's build has already advanced
// sealedSnap (and rebuilt tight) past every segment in the chain. So
// the generation's statistics cover exactly the sealed, searchable,
// non-deleted documents.
func (w *Writer) commitLocked() error {
	w.samplePoolLatencyLocked()
	w.genID++
	m := manifest{Version: 1, Generation: w.genID, NextSeq: w.seq}
	for _, s := range w.segs {
		m.Segments = append(m.Segments, manifestSegment{
			Name: s.name, Seq: s.seq, Snap: s.snap, Base: s.base, Docs: s.docs,
			Alive: s.aliveDocs, Tomb: s.aliveVer,
		})
	}
	if err := writeManifest(w.cfg.Dir, m); err != nil {
		return err
	}
	return w.installLocked()
}

// samplePoolLatencyLocked feeds each segment pool's physical-read
// latency accumulated since the last sample into the tuner's direct
// fault-latency channel. Sampled at every commit — the natural points
// where the writer already holds the mutex that guards the segments'
// high-water marks. A no-op without a tuner.
func (w *Writer) samplePoolLatencyLocked() {
	tn := w.cfg.Tune
	if tn == nil {
		return
	}
	for _, s := range w.segs {
		reads, total := s.pool.ReadLatency()
		dn := reads - s.lastPoolReads
		dt := int64(total) - s.lastPoolNanos
		if dn > 0 && dt >= 0 {
			tn.ObservePoolReads(dn, time.Duration(dt))
		}
		s.lastPoolReads, s.lastPoolNanos = reads, int64(total)
	}
}

// installLocked swaps in a new generation over the current chain,
// ranking with the maintained ledger-tightened snapshot.
func (w *Writer) installLocked() error {
	g, err := newGeneration(w.genID, w.tight, w.corpusLocked(),
		append([]*segment(nil), w.segs...), w.cfg.Scorer)
	if err != nil {
		return err
	}
	old := w.cur
	w.cur = g
	if old != nil {
		old.release()
	}
	// Every cached answer names the outgoing generation in its key, so
	// none can be served again; clear wholesale to release the bytes.
	if w.resCache != nil {
		w.resCache.clear()
	}
	return nil
}

// tightenLexicon returns frozen with the tombstone ledger subtracted —
// a fresh clone when the ledger is non-empty, frozen itself otherwise
// (it is immutable either way). Underflow means the ledger claims
// deletions the snapshot never recorded: corruption, never a valid
// state.
func tightenLexicon(frozen *lexicon.Lexicon, dead map[lexicon.TermID]lexicon.Stats) (*lexicon.Lexicon, error) {
	if len(dead) == 0 {
		return frozen, nil
	}
	tight := frozen.Clone()
	for id, s := range dead {
		if err := tight.Subtract(id, s); err != nil {
			return nil, fmt.Errorf("live: tombstone ledger: %w", err)
		}
	}
	return tight, nil
}

// addStat accumulates one document's contribution into a ledger entry.
func addStat(s lexicon.Stats, docs int32, coll int64) lexicon.Stats {
	s.DocFreq += docs
	s.CollFreq += coll
	return s
}

// corpusLocked computes the corpus statistics over the alive sealed
// documents — the global statistics every generation ranks with, equal
// by construction to what a one-shot build over the survivors records.
func (w *Writer) corpusLocked() rank.CorpusStat {
	var docs int
	var tokens int64
	for _, s := range w.segs {
		docs += s.aliveDocs
		tokens += s.aliveTokens
	}
	c := rank.CorpusStat{NumDocs: docs, TotalTokens: tokens}
	if docs > 0 {
		c.AvgDocLen = float64(tokens) / float64(docs)
	}
	return c
}

// flushLoop seals a non-empty buffer every cfg.FlushEvery, on ticks of
// the injected clock.
func (w *Writer) flushLoop() {
	defer w.bgDone.Done()
	t := w.cfg.Clock.NewTicker(w.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.Chan():
			w.mu.Lock()
			n := len(w.buf) - w.bufDead
			bad := w.closed || w.failed != nil
			w.mu.Unlock()
			if n > 0 && !bad {
				w.Flush() // a failure is sticky in w.failed
			}
		}
	}
}

// Stats samples the writer's accounting.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sealed, alive int64
	for _, s := range w.segs {
		sealed += int64(s.docs)
		alive += int64(s.aliveDocs)
	}
	return WriterStats{
		DocsAdded:    w.docsAdded,
		DocsSealed:   sealed,
		DocsDeleted:  w.docsDeleted,
		DocsAlive:    alive,
		BufferedDocs: len(w.buf) - w.bufDead,
		Seals:        w.seals,
		Merges:       w.merges,
		Segments:     len(w.segs),
		Generation:   w.genID,
	}
}

// MaintStats is the writer's physical maintenance-work account: pages
// written by seals, pages read and written and postings re-encoded by
// merges and purge rewrites. The TUNE bench charges this account
// against query-side savings when comparing maintenance policies.
type MaintStats struct {
	SealPagesWritten  int64
	MergePagesRead    int64
	MergePagesWritten int64
	MergeReencoded    int64
}

// MaintStats samples the maintenance-work counters.
func (w *Writer) MaintStats() MaintStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return MaintStats{
		SealPagesWritten:  w.sealPagesWritten,
		MergePagesRead:    w.mergePagesRead,
		MergePagesWritten: w.mergePagesWritten,
		MergeReencoded:    w.mergeReencoded,
	}
}

// TuneStats snapshots the attached tuner's observable state; the zero
// Stats (Enabled false) when the writer runs the static policy.
func (w *Writer) TuneStats() tune.Stats {
	return w.cfg.Tune.Stats() // nil-safe
}

// Err reports the sticky background failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Close stops the background goroutines, waits for in-flight seal and
// merge work, and releases the writer's generation reference. Buffered
// documents that were never flushed are discarded (call Flush first for
// durability). Segments held by outstanding Snapshots stay open until
// those snapshots are closed. Close returns the sticky background
// failure, if any; closing twice is a no-op.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() {
		close(w.stop)
		w.bgDone.Wait()
		w.mu.Lock()
		for w.sealing || w.mergeBusy {
			w.cond.Wait()
		}
		w.closed = true
		g := w.cur
		w.cur = nil
		segs := w.segs
		w.segs = nil
		w.closeErr = w.failed
		w.cond.Broadcast()
		w.mu.Unlock()
		if g != nil {
			g.release()
		}
		for _, s := range segs {
			s.release() // the chain's reference
		}
		if err := w.lockFile.Close(); err != nil {
			// The kernel releases a leaked flock at process exit; log so a
			// wedged fd is visible anyway.
			cleanupLogf("live: releasing directory lock: %v", err)
		}
	})
	return w.closeErr
}
