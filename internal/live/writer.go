package live

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/index"
	"repro/internal/lexicon"
	"repro/internal/rank"
	"repro/internal/storage"
)

// Writer is the mutable front of a live index: it buffers incoming
// documents in memory, seals the buffer into immutable on-disk segments,
// and (with BackgroundMerge) compacts small segments in the background.
// All methods are safe for concurrent use; searches go through Acquire /
// Searcher and never block writes beyond the shared mutex's critical
// sections.
//
// Failure model: an error while sealing or merging poisons the writer
// (Err returns it, further writes fail) but never corrupts what is
// already committed — the manifest swap is atomic, so the on-disk index
// is always a consistent earlier state.
type Writer struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	lex *lexicon.Lexicon // master lexicon; guarded by mu
	// sealedSnap is the immutable snapshot of the most recent committed
	// seal (or of reopen): it covers *exactly* the sealed documents,
	// unlike the master, whose statistics already include buffered
	// ones. It is what merges persist into their output segment, so a
	// crash can never resurrect statistics of documents that were lost
	// with the buffer. sealedSnapID is its capture ordinal (snapID
	// counts captures); segments record the ordinal they persist, and
	// reopen restores the master from the max-ordinal segment.
	sealedSnap   *lexicon.Lexicon
	sealedSnapID uint64
	snapID       uint64
	scratch      map[lexicon.TermID]int32
	buf          []collection.Document // local ids 0..len-1; global id = base + local
	bufTokens    int64
	base         uint32 // global id of buf[0] == documents sealed or sealing

	seq         uint64 // next segment sequence number
	genID       uint64
	totalTokens int64 // tokens across sealed segments
	segs        []*segment
	cur         *generation

	sealing   bool
	mergeBusy bool
	closed    bool
	failed    error // sticky background failure

	docsAdded int64
	seals     int64
	merges    int64

	mergeKick chan struct{}
	stop      chan struct{}
	bgDone    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	// lockFile holds the flock on Dir for the writer's lifetime, so a
	// second process opening the same directory fails cleanly instead
	// of silently interleaving manifests and GC-ing the other's
	// segments. The kernel drops the lock on process death, so a crash
	// never wedges the directory. See lock_unix.go / lock_other.go.
	lockFile *os.File
}

// Open opens (or creates) the live index under cfg.Dir: it reads the
// manifest, garbage-collects stale segment directories, opens every
// listed segment through its own buffer pool, restores the master
// lexicon from the newest segment's persisted snapshot, and installs the
// initial searchable generation. Close the writer to release the
// segment files.
func Open(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("live: Config.Dir is required")
	}
	cfg.fillDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.Close()
		}
	}()
	m, err := readManifest(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		// Fresh directory: establish the root of truth before GC, so a
		// half-copied directory of segments without a manifest reads as
		// empty rather than as garbage results.
		m = &manifest{Version: 1}
		if err := writeManifest(cfg.Dir, *m); err != nil {
			return nil, err
		}
	}
	if _, err := gcStale(cfg.Dir, m); err != nil {
		return nil, err
	}

	w := &Writer{
		cfg:       cfg,
		scratch:   make(map[lexicon.TermID]int32),
		seq:       m.NextSeq,
		genID:     m.Generation,
		mergeKick: make(chan struct{}, 1),
		stop:      make(chan struct{}),
		lockFile:  lock,
	}
	w.cond = sync.NewCond(&w.mu)

	defer func() {
		if !ok {
			for _, s := range w.segs {
				s.release()
			}
		}
	}()
	var newest *segment
	for _, ms := range m.Segments {
		seg, err := openSegment(cfg.Dir, ms.Name, ms.Seq, ms.Snap, ms.Base, cfg.PoolPages)
		if err != nil {
			return nil, err
		}
		w.segs = append(w.segs, seg)
		if seg.docs != ms.Docs {
			return nil, fmt.Errorf("live: segment %s holds %d documents, manifest says %d (corrupt?)",
				ms.Name, seg.docs, ms.Docs)
		}
		w.totalTokens += seg.idx.Stats.TotalTokens
		w.base += uint32(seg.docs)
		if newest == nil || seg.snap > newest.snap {
			newest = seg
		}
	}
	// The max-snapshot-ordinal segment's lexicon covers every sealed
	// document (every document's statistics are recorded before the
	// capture of the seal that sealed it, and captures are ordered by
	// ordinal), so it restores the master exactly. Buffered documents
	// lost in a crash left no statistics behind either — the reopened
	// state is self-consistent.
	if newest != nil {
		w.lex = newest.idx.Lex.Clone()
		w.snapID = newest.snap
	} else {
		w.lex = lexicon.New()
	}
	w.sealedSnap = w.lex.Clone() // buffer is empty: sealed == everything
	w.sealedSnapID = w.snapID

	w.mu.Lock()
	err = w.installLocked(w.sealedSnap) // immutable; buffer is empty, so it covers everything
	w.mu.Unlock()
	if err != nil {
		return nil, err
	}

	if cfg.BackgroundMerge {
		w.bgDone.Add(1)
		go w.mergerLoop()
		w.kickMerger() // pre-existing segments may already warrant a merge
	}
	if cfg.FlushEvery > 0 {
		w.bgDone.Add(1)
		go w.flushLoop()
	}
	ok = true
	return w, nil
}

// Add accepts one document as a bag of term counts (duplicate terms are
// coalesced) and returns its global document id. Ids are assigned in
// arrival order. When the buffer trips a seal threshold, Add seals it
// synchronously before returning — the caller pays the seal, keeping
// ingestion self-throttling.
func (w *Writer) Add(terms []TermCount) (uint32, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		return 0, err
	}
	if len(terms) == 0 {
		w.mu.Unlock()
		return 0, fmt.Errorf("live: empty document")
	}
	// Validation is all-or-nothing: per-term statistics are recorded
	// into the master lexicon only after the whole document checks out,
	// so a rejected document leaves no phantom DocFreq/CollFreq behind.
	// (Intern alone is safe — a name without statistics is inert.)
	clear(w.scratch)
	var docLen int64
	for _, tc := range terms {
		if tc.TF <= 0 {
			w.mu.Unlock()
			return 0, fmt.Errorf("live: non-positive tf %d for term %q", tc.TF, tc.Term)
		}
		id := w.lex.Intern(tc.Term)
		if w.scratch[id] > math.MaxInt32-tc.TF {
			w.mu.Unlock()
			return 0, fmt.Errorf("live: term %q frequency overflows int32", tc.Term)
		}
		w.scratch[id] += tc.TF
		docLen += int64(tc.TF)
	}
	if docLen > math.MaxInt32 {
		w.mu.Unlock()
		return 0, fmt.Errorf("live: document length %d overflows int32", docLen)
	}
	doc := collection.Document{ID: uint32(len(w.buf))}
	doc.Terms = make([]collection.TermFreq, 0, len(w.scratch))
	for id, tf := range w.scratch {
		doc.Terms = append(doc.Terms, collection.TermFreq{Term: id, TF: tf})
		doc.Len += tf
	}
	sort.Slice(doc.Terms, func(a, b int) bool { return doc.Terms[a].Term < doc.Terms[b].Term })
	for _, tf := range doc.Terms {
		if err := w.lex.Record(tf.Term, int(tf.TF)); err != nil {
			w.mu.Unlock()
			return 0, err
		}
	}
	global := w.base + doc.ID
	w.buf = append(w.buf, doc)
	w.bufTokens += int64(doc.Len)
	w.docsAdded++
	need := len(w.buf) >= w.cfg.SealDocs || w.bufTokens >= w.cfg.SealTokens
	w.mu.Unlock()

	if need {
		if err := w.Flush(); err != nil {
			return global, err
		}
	}
	return global, nil
}

// Flush seals the buffered documents into a new on-disk segment and
// commits it, making them searchable. A no-op on an empty buffer.
// Concurrent flushes serialize; writes proceed while the segment is
// being built (only the buffer capture holds the lock).
func (w *Writer) Flush() error {
	w.mu.Lock()
	for w.sealing && !w.closed && w.failed == nil {
		w.cond.Wait()
	}
	if w.closed || w.failed != nil {
		err := w.failed
		w.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	if len(w.buf) == 0 {
		w.mu.Unlock()
		return nil
	}
	docs := w.buf
	tokens := w.bufTokens
	w.buf = nil
	w.bufTokens = 0
	segBase := w.base
	w.base += uint32(len(docs))
	// The snapshot is taken in the same critical section that drains the
	// buffer, so it covers exactly the documents sealed so far — the
	// invariant both the persisted segment lexicon and the committed
	// generation rely on (see commitLocked for why reusing it at commit
	// is sound even when merges interleave).
	frozen := w.lex.Clone()
	w.snapID++
	snap := w.snapID
	seq := w.seq
	w.seq++
	w.sealing = true
	w.mu.Unlock()

	seg, err := buildSegment(w.cfg, docs, tokens, seq, snap, segBase, frozen)

	w.mu.Lock()
	w.sealing = false
	if err == nil {
		w.segs = append(w.segs, seg)
		w.totalTokens += tokens
		w.seals++
		w.sealedSnap = frozen // newest exactly-sealed-docs snapshot
		w.sealedSnapID = snap
		err = w.commitLocked(frozen)
	}
	if err != nil && w.failed == nil {
		w.failed = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	w.kickMerger()
	return nil
}

// buildSegment builds the buffered documents into a block-max index,
// persists it as segment seq, and reopens it through its own pool.
func buildSegment(cfg Config, docs []collection.Document, tokens int64, seq, snap uint64, base uint32, frozen *lexicon.Lexicon) (*segment, error) {
	sub := &collection.Collection{Docs: docs, Lex: frozen, TotalTokens: tokens}
	if len(docs) > 0 {
		sub.AvgDocLen = float64(tokens) / float64(len(docs))
	}
	pool, err := storage.NewPool(storage.NewDisk(), 1<<15)
	if err != nil {
		return nil, fmt.Errorf("live: seal: %w", err)
	}
	idx, err := index.Build(sub, pool)
	if err != nil {
		return nil, fmt.Errorf("live: seal: %w", err)
	}
	name := segmentName(seq)
	if err := idx.Persist(filepath.Join(cfg.Dir, name)); err != nil {
		return nil, fmt.Errorf("live: seal: %w", err)
	}
	seg, err := openSegment(cfg.Dir, name, seq, snap, base, cfg.PoolPages)
	if err != nil {
		// The persisted directory is not yet in the manifest; remove it so
		// it cannot linger as a stale orphan.
		os.RemoveAll(filepath.Join(cfg.Dir, name))
		return nil, err
	}
	return seg, nil
}

// commitLocked writes the manifest for the current chain and installs a
// new searchable generation ranking with the frozen snapshot. frozen
// must extend every segment's persisted lexicon; both commit paths
// guarantee it without cloning the master again: a seal passes its
// capture-time snapshot (every segment in the chain persists either an
// earlier seal's snapshot or — for merges — the sealedSnap of a seal
// no later than this one, all subsets of this capture), and a merge
// passes the current sealedSnap read under this same lock (which a
// seal committing during the merge's build has already advanced past
// every segment in the chain). Either way the generation's statistics
// cover exactly the sealed, searchable documents.
func (w *Writer) commitLocked(frozen *lexicon.Lexicon) error {
	w.genID++
	m := manifest{Version: 1, Generation: w.genID, NextSeq: w.seq}
	for _, s := range w.segs {
		m.Segments = append(m.Segments, manifestSegment{
			Name: s.name, Seq: s.seq, Snap: s.snap, Base: s.base, Docs: s.docs,
		})
	}
	if err := writeManifest(w.cfg.Dir, m); err != nil {
		return err
	}
	return w.installLocked(frozen)
}

// installLocked swaps in a new generation over the current chain.
func (w *Writer) installLocked(frozen *lexicon.Lexicon) error {
	g, err := newGeneration(w.genID, frozen, w.corpusLocked(),
		append([]*segment(nil), w.segs...), w.cfg.Scorer)
	if err != nil {
		return err
	}
	old := w.cur
	w.cur = g
	if old != nil {
		old.release()
	}
	return nil
}

// corpusLocked computes the corpus statistics over all sealed documents
// — the global statistics every generation ranks with.
func (w *Writer) corpusLocked() rank.CorpusStat {
	var docs int
	for _, s := range w.segs {
		docs += s.docs
	}
	c := rank.CorpusStat{NumDocs: docs, TotalTokens: w.totalTokens}
	if docs > 0 {
		c.AvgDocLen = float64(w.totalTokens) / float64(docs)
	}
	return c
}

// flushLoop seals a non-empty buffer every cfg.FlushEvery.
func (w *Writer) flushLoop() {
	defer w.bgDone.Done()
	t := time.NewTicker(w.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			n := len(w.buf)
			bad := w.closed || w.failed != nil
			w.mu.Unlock()
			if n > 0 && !bad {
				w.Flush() // a failure is sticky in w.failed
			}
		}
	}
}

// Stats samples the writer's accounting.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sealed int64
	for _, s := range w.segs {
		sealed += int64(s.docs)
	}
	return WriterStats{
		DocsAdded:    w.docsAdded,
		DocsSealed:   sealed,
		BufferedDocs: len(w.buf),
		Seals:        w.seals,
		Merges:       w.merges,
		Segments:     len(w.segs),
		Generation:   w.genID,
	}
}

// Err reports the sticky background failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Close stops the background goroutines, waits for in-flight seal and
// merge work, and releases the writer's generation reference. Buffered
// documents that were never flushed are discarded (call Flush first for
// durability). Segments held by outstanding Snapshots stay open until
// those snapshots are closed. Close returns the sticky background
// failure, if any; closing twice is a no-op.
func (w *Writer) Close() error {
	w.closeOnce.Do(func() {
		close(w.stop)
		w.bgDone.Wait()
		w.mu.Lock()
		for w.sealing || w.mergeBusy {
			w.cond.Wait()
		}
		w.closed = true
		g := w.cur
		w.cur = nil
		segs := w.segs
		w.segs = nil
		w.closeErr = w.failed
		w.cond.Broadcast()
		w.mu.Unlock()
		if g != nil {
			g.release()
		}
		for _, s := range segs {
			s.release() // the chain's reference
		}
		w.lockFile.Close() // drops the flock; the directory is reusable
	})
	return w.closeErr
}
